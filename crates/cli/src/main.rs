#![warn(missing_docs)]

//! `baryon-cli` — run hybrid-memory experiments from the command line.
//!
//! ```text
//! baryon-cli list
//! baryon-cli run --workload 505.mcf_r --controller baryon --insts 150000
//! baryon-cli run --workload pr.twi --controller dice --scale=512 --csv out.csv
//! baryon-cli compare --workload ycsb-a
//! baryon-cli record --workload ycsb-a --ops 100000 --out trace.bin
//! baryon-cli serve --port 8677 --workers 4 --queue-depth 32
//! baryon-cli fleet --port 8678 --shards 3 --workers 2
//! baryon-cli fleet admin stage --file policy.json
//! baryon-cli fleet admin commit
//! ```
//!
//! Controllers: `baryon`, `baryon-fa`, `baryon-mixed`, `simple`, `unison`,
//! `dice`, `hybrid2`, `micro-sector`, `os-paging`, `trimma` — the
//! [`FamilyId`](baryon_core::family::FamilyId) registry is the single
//! source of truth for these names.
//!
//! `serve` and `fleet` print `ADDR <socket-addr>` as their first stdout
//! line once bound — the machine-readable spawn contract supervisors and
//! scripts key on (with `--port 0` it carries the ephemeral port). Launch
//! failures exit with typed statuses: 3 when the port cannot be bound, 4
//! when a worker shard cannot be spawned (see [`launch`]).
//!
//! # Chaos injection (testing only)
//!
//! Every process honors the seeded fault-injection knobs from
//! [`baryon_sim::faultfs`] via its environment — all default off, and a
//! run with no `BARYON_CHAOS_*` variable set is bit-identical to a build
//! without the layer:
//!
//! ```text
//! BARYON_CHAOS_SEED                  RNG seed for every injection decision
//! BARYON_CHAOS_WRITE_FAIL_PPM        short writes (a prefix persists, the call errors)
//! BARYON_CHAOS_ENOSPC_PPM            writes fail with "no space", nothing persists
//! BARYON_CHAOS_FSYNC_FAIL_PPM        sync_data errors (data stays in the page cache)
//! BARYON_CHAOS_READ_FLIP_PPM         single-byte flip in a read buffer
//! BARYON_CHAOS_CORRUPT_PPM           silent single-byte flip on disk after a write
//! BARYON_CHAOS_RESPONSE_CORRUPT_PPM  single-byte flip in an HTTP body after its CRC
//! ```
//!
//! Rates are parts-per-million per I/O call. A `serve` or `fleet` shard
//! started under these variables injects faults into its own journal,
//! checkpoints, and responses — the degradation ladder (checkpoint
//! quarantine, shard quarantine, failover, reply validation) is expected
//! to absorb them; `chaos_gate` in CI holds it to that. The fleet
//! supervisor's crash-loop budget is `BARYON_FLEET_QUARANTINE_AFTER`
//! rapid respawns (default 8, `0` disables quarantine).

use baryon_bench::spec::{resume_from, RunSpec};
use baryon_core::checkpoint::atomic_write;
use baryon_core::family::FamilyId;
use baryon_core::metrics::RunResult;
use baryon_core::system::{ControllerKind, System, SystemConfig};
use baryon_fleet::{Fleet, FleetConfig, ShardLauncher};
use baryon_serve::{ServeConfig, Server};
use baryon_workloads::{by_name, registry, RecordedTrace};
use std::path::Path;
use std::process::ExitCode;

mod admin;
mod args;
mod launch;

use args::Args;
use launch::LaunchError;

fn usage() -> ! {
    eprintln!(
        "usage:\n  baryon-cli list\n  baryon-cli run --workload <name> [--controller <name>] \
         [--insts N] [--warmup N] [--scale D] [--seed S] [--mlp N] [--telemetry true] \
         [--threads N] [--csv FILE] [--json FILE]\n      \
         [--checkpoint-every OPS] [--checkpoint-dir DIR] [--checkpoint-keep K]\n  \
         baryon-cli run --resume-from FILE [--csv FILE] [--json FILE]\n  \
         baryon-cli compare --workload <name> [--insts N] [--scale D]\n  \
         baryon-cli record --workload <name> --out FILE [--ops N] [--core C]\n  \
         baryon-cli serve [--port P] [--workers N] [--queue-depth N] [--deadline-ms MS]\n      \
         [--journal-dir DIR] [--policy FILE]\n  \
         baryon-cli fleet [--port P] [--shards N] [--workers N] [--queue-depth N]\n      \
         [--queue-cap N] [--max-in-flight N] [--journal-root DIR] [--shard-program EXE]\n  \
         baryon-cli fleet admin status|stage|commit|rollback [--addr HOST:PORT] [--file FILE]\n\n\
         flags accept both `--flag value` and `--flag=value`\n\
         controllers: {}",
        FamilyId::NAMES.join(" ")
    );
    std::process::exit(2)
}

fn print_result(r: &RunResult) {
    println!("{r}");
}

fn csv_line(r: &RunResult) -> String {
    format!(
        "{},{},{},{},{:.4},{:.4},{:.4},{},{},{},{:.4}",
        r.controller,
        r.workload,
        r.total_cycles,
        r.instructions,
        r.ipc(),
        r.serve.fast_serve_rate(),
        r.serve.bloat_factor(),
        r.read_latency.percentile(50.0),
        r.read_latency.percentile(99.0),
        r.llc_misses,
        r.energy_mj()
    )
}

const CSV_HEADER: &str = "controller,workload,cycles,instructions,ipc,serve_rate,\
                          bloat,lat_p50,lat_p99,llc_misses,energy_mj";

fn cmd_list(args: &Args) -> ExitCode {
    let scale = args.scale();
    println!(
        "{:<18} {:>10} {:>7} {:<8} pattern",
        "workload", "footprint", "shared", "gap"
    );
    for w in registry(scale) {
        println!(
            "{:<18} {:>7} MB {:>7} {:<8.1} {:?}",
            w.name,
            w.footprint >> 20,
            w.shared,
            w.mean_gap,
            w.kind
        );
    }
    ExitCode::SUCCESS
}

/// Writes the `--csv` / `--json` outputs atomically (temp file + rename),
/// so an interrupted CLI never leaves a torn result file behind.
fn write_outputs(args: &Args, r: &RunResult) -> ExitCode {
    if let Some(path) = args.get("csv") {
        let body = format!("{CSV_HEADER}\n{}\n", csv_line(r));
        if let Err(e) = atomic_write(Path::new(&path), body.as_bytes()) {
            eprintln!("cannot write {path}: {e}");
            return ExitCode::FAILURE;
        }
        println!("csv             : {path}");
    }
    if let Some(path) = args.get("json") {
        let mut body = r.to_json().render();
        body.push('\n');
        if let Err(e) = atomic_write(Path::new(&path), body.as_bytes()) {
            eprintln!("cannot write {path}: {e}");
            return ExitCode::FAILURE;
        }
        println!("json            : {path}");
    }
    ExitCode::SUCCESS
}

fn cmd_run(args: &Args) -> ExitCode {
    if let Some(path) = args.get("resume-from") {
        let (spec, r) = match resume_from(Path::new(&path)) {
            Ok(out) => out,
            Err(e) => {
                eprintln!("cannot resume from {path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        println!(
            "resumed {} / {} (seed {}) from {path}",
            spec.workload, spec.controller, spec.seed
        );
        print_result(&r);
        return write_outputs(args, &r);
    }
    let spec = RunSpec {
        workload: args.require("workload"),
        controller: args.get("controller").unwrap_or_else(|| "baryon".into()),
        insts: args.num("insts", 150_000),
        warmup: args.num("warmup", 50_000),
        scale: args.num("scale", 256),
        seed: args.num("seed", 42),
        mlp: args.num("mlp", 1),
        telemetry: args.bool_flag("telemetry", false),
        threads: args.num("threads", 1).max(1),
    };
    let every = args.num("checkpoint-every", 0);
    let run = if every > 0 {
        let dir = args
            .get("checkpoint-dir")
            .unwrap_or_else(|| "baryon-checkpoints".into());
        let keep = args.num("checkpoint-keep", 2).max(1) as usize;
        spec.execute_with_checkpoints(Path::new(&dir), every, keep)
    } else {
        spec.execute()
    };
    let r = match run {
        Ok(r) => r,
        Err(e) => {
            eprintln!("{e}; try `baryon-cli list`");
            return ExitCode::FAILURE;
        }
    };
    print_result(&r);
    write_outputs(args, &r)
}

fn cmd_compare(args: &Args) -> ExitCode {
    let scale = args.scale();
    let wname = args.require("workload");
    let Some(workload) = by_name(&wname, scale) else {
        eprintln!("unknown workload {wname}");
        return ExitCode::FAILURE;
    };
    let insts = args.num("insts", 100_000);
    println!(
        "{:<14} {:>12} {:>8} {:>8} {:>9} {:>9}",
        "controller", "cycles", "speedup", "serve%", "lat p50", "lat p99"
    );
    // Every registry family, baselines first so the table reads
    // worst-to-best; speedups are normalized to the `simple` baseline.
    let mut families: Vec<FamilyId> = FamilyId::ALL
        .into_iter()
        .filter(|f| !matches!(f.kind(scale), ControllerKind::Baryon(_)))
        .collect();
    families.extend(
        FamilyId::ALL
            .into_iter()
            .filter(|f| matches!(f.kind(scale), ControllerKind::Baryon(_))),
    );
    let mut base = None;
    for family in families {
        let kind = family.kind(scale);
        let mut cfg = SystemConfig::with_controller(scale, kind);
        cfg.warmup_insts = args.num("warmup", 50_000);
        let r = System::new(cfg, &workload, args.num("seed", 42)).run(insts);
        let base_cycles = *base.get_or_insert(r.total_cycles);
        println!(
            "{:<14} {:>12} {:>7.2}x {:>7.1}% {:>9} {:>9}",
            r.controller,
            r.total_cycles,
            base_cycles as f64 / r.total_cycles as f64,
            100.0 * r.serve.fast_serve_rate(),
            r.read_latency.percentile(50.0),
            r.read_latency.percentile(99.0),
        );
    }
    ExitCode::SUCCESS
}

fn cmd_record(args: &Args) -> ExitCode {
    let scale = args.scale();
    let wname = args.require("workload");
    let Some(workload) = by_name(&wname, scale) else {
        eprintln!("unknown workload {wname}");
        return ExitCode::FAILURE;
    };
    let out = args.require("out");
    let ops = args.num("ops", 100_000) as usize;
    let core = args.num("core", 0) as usize;
    let mut g = workload.spawn_core(core, 16, args.num("seed", 42));
    let trace = RecordedTrace::record(g.as_mut(), ops);
    match std::fs::File::create(&out).and_then(|f| trace.save(f)) {
        Ok(()) => {
            println!("recorded {ops} ops of {wname} (core {core}) to {out}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("cannot write {out}: {e}");
            ExitCode::FAILURE
        }
    }
}

fn cmd_serve(args: &Args) -> ExitCode {
    // A fleet commit respawns shards with `--policy <staged file>`; the
    // flag is therefore part of the spawn contract, not just a user knob.
    let policy = match args.get("policy") {
        None => None,
        Some(path) => match baryon_core::policy::FleetPolicy::load(Path::new(&path)) {
            Ok(policy) => Some(policy),
            Err(e) => {
                eprintln!("cannot load policy {path}: {e}");
                return ExitCode::from(5);
            }
        },
    };
    let deadline_ms = args.num("deadline-ms", 0);
    let cfg = ServeConfig {
        port: args.num("port", 8677) as u16,
        workers: (args.num("workers", 2) as usize).max(1),
        queue_depth: (args.num("queue-depth", 16) as usize).max(1),
        job_deadline: (deadline_ms > 0).then(|| std::time::Duration::from_millis(deadline_ms)),
        journal_dir: args.get("journal-dir").map(std::path::PathBuf::from),
        finished_cap: (args.num("finished-cap", 256) as usize).max(1),
        policy,
    };
    let server = match Server::bind(cfg.clone()) {
        Ok(server) => server,
        Err(source) => {
            return LaunchError::Bind {
                port: cfg.port,
                source,
            }
            .report()
        }
    };
    // The spawn contract: the first stdout line is machine-readable, so a
    // fleet coordinator (or any script) can supervise this process.
    println!("ADDR {}", server.local_addr());
    println!(
        "baryon-serve listening on http://{} ({} workers, queue depth {})",
        server.local_addr(),
        cfg.workers,
        cfg.queue_depth
    );
    if let Some(dir) = &cfg.journal_dir {
        println!("journal & checkpoints: {}", dir.display());
    }
    println!("submit jobs with POST /v1/jobs; stop with POST /v1/shutdown");
    match server.run() {
        Ok(()) => {
            println!("drained and shut down");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("server error: {e}");
            ExitCode::FAILURE
        }
    }
}

fn cmd_fleet(args: &Args) -> ExitCode {
    let program = match args.get("shard-program") {
        Some(path) => std::path::PathBuf::from(path),
        None => match std::env::current_exe() {
            Ok(exe) => exe,
            Err(source) => {
                return LaunchError::Spawn {
                    program: "<current executable>".to_owned(),
                    source,
                }
                .report()
            }
        },
    };
    let cfg = FleetConfig {
        port: args.num("port", 8678) as u16,
        shards: (args.num("shards", 3) as usize).max(1),
        workers_per_shard: (args.num("workers", 2) as usize).max(1),
        shard_queue_depth: (args.num("queue-depth", 64) as usize).max(1),
        queue_cap: (args.num("queue-cap", 256) as usize).max(1),
        max_in_flight_per_client: (args.num("max-in-flight", 8) as usize).max(1),
        journal_root: std::path::PathBuf::from(
            args.get("journal-root")
                .unwrap_or_else(|| "fleet-journal".into()),
        ),
    };
    let launcher = ShardLauncher {
        program: program.clone(),
        // Each shard is this CLI (or --shard-program) running `serve`.
        prefix_args: vec!["serve".to_owned()],
        workers: cfg.workers_per_shard,
        queue_depth: cfg.shard_queue_depth,
        // The coordinator fills this in when a committed config rollout
        // (or a restored slot file) dictates the shards' policy.
        policy_path: None,
        extra_env: Vec::new(),
    };
    let fleet = match Fleet::bind(cfg.clone(), launcher) {
        Ok(fleet) => fleet,
        Err(e) => {
            return LaunchError::classify_fleet(cfg.port, &program.display().to_string(), e)
                .report()
        }
    };
    println!("ADDR {}", fleet.local_addr());
    println!(
        "baryon-fleet coordinator on http://{} ({} shards x {} workers, journals under {})",
        fleet.local_addr(),
        cfg.shards,
        cfg.workers_per_shard,
        cfg.journal_root.display()
    );
    println!(
        "submit jobs with POST /v1/jobs (x-baryon-class: interactive|batch); \
         stop with POST /v1/shutdown"
    );
    match fleet.run() {
        Ok(()) => {
            println!("fleet drained and shut down");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("fleet error: {e}");
            ExitCode::FAILURE
        }
    }
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    // `fleet admin <action>` carries a second positional the flag parser
    // doesn't model; route it before general parsing.
    if argv.first().map(String::as_str) == Some("fleet")
        && argv.get(1).map(String::as_str) == Some("admin")
    {
        let action = argv.get(2).cloned();
        let args = Args::parse(argv.into_iter().skip(3));
        return admin::cmd_admin(action.as_deref(), &args);
    }
    let args = Args::parse(argv);
    match args.command() {
        Some("list") => cmd_list(&args),
        Some("run") => cmd_run(&args),
        Some("compare") => cmd_compare(&args),
        Some("record") => cmd_record(&args),
        Some("serve") => cmd_serve(&args),
        Some("fleet") => cmd_fleet(&args),
        _ => usage(),
    }
}

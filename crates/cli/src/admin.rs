//! `baryon-cli fleet admin` — stage, commit, roll back, and inspect the
//! fleet's A/B configuration over the coordinator's `/v1/admin` surface.
//!
//! ```text
//! baryon-cli fleet admin status   [--addr HOST:PORT]
//! baryon-cli fleet admin stage    --file policy.json [--addr HOST:PORT]
//! baryon-cli fleet admin commit   [--addr HOST:PORT]
//! baryon-cli fleet admin rollback [--addr HOST:PORT]
//! ```
//!
//! Each command prints the coordinator's JSON answer on stdout. Exit
//! statuses mirror the server's typed error codes so scripts can branch
//! without parsing: 0 success, 2 usage, 5 the policy failed validation
//! (`invalid_json` / `invalid_config`), 6 the rollout was refused or
//! rolled back (`conflict` / `rollout_failed`), 7 the coordinator is
//! unreachable, 1 anything else.

use crate::args::Args;
use baryon_serve::client::{Client, ClientError};
use baryon_serve::ErrorCode;
use baryon_sim::json::Json;
use std::net::SocketAddr;
use std::process::ExitCode;
use std::time::Duration;

/// Where `baryon-cli fleet` binds by default.
const DEFAULT_ADDR: &str = "127.0.0.1:8678";

/// A committed rollout drains and canaries every shard in turn, so the
/// read timeout must cover the whole fleet roll, not one request.
const COMMIT_TIMEOUT: Duration = Duration::from_secs(600);

fn admin_usage() -> ExitCode {
    eprintln!(
        "usage:\n  baryon-cli fleet admin status   [--addr HOST:PORT]\n  \
         baryon-cli fleet admin stage    --file policy.json [--addr HOST:PORT]\n  \
         baryon-cli fleet admin commit   [--addr HOST:PORT]\n  \
         baryon-cli fleet admin rollback [--addr HOST:PORT]\n\n\
         default --addr is {DEFAULT_ADDR}"
    );
    ExitCode::from(2)
}

/// Runs one admin action against the coordinator.
pub fn cmd_admin(action: Option<&str>, args: &Args) -> ExitCode {
    let addr_text = args.get("addr").unwrap_or_else(|| DEFAULT_ADDR.to_owned());
    let addr: SocketAddr = match addr_text.parse() {
        Ok(addr) => addr,
        Err(e) => {
            eprintln!("bad --addr {addr_text}: {e}");
            return ExitCode::from(2);
        }
    };
    let client = Client::new(addr)
        .connect_timeout(Duration::from_secs(2))
        .read_timeout(COMMIT_TIMEOUT);
    let outcome = match action {
        Some("status") => client.admin_config(),
        Some("stage") => {
            let Ok(path) = args.try_require("file") else {
                eprintln!("stage needs --file policy.json");
                return ExitCode::from(2);
            };
            let body = match std::fs::read_to_string(&path) {
                Ok(body) => body,
                Err(e) => {
                    eprintln!("cannot read {path}: {e}");
                    return ExitCode::FAILURE;
                }
            };
            client.admin_stage(&body)
        }
        Some("commit") => client.admin_commit(),
        Some("rollback") => client.admin_rollback(),
        _ => return admin_usage(),
    };
    match outcome {
        Ok(resp) => {
            println!("{}", resp.body.trim_end());
            if action == Some("status") {
                render_staged_diff(&resp.body);
            }
            ExitCode::SUCCESS
        }
        Err(e) => report(&e),
    }
}

/// Renders the coordinator's `staged_diff` block (if any) as a
/// human-readable summary on stderr, keeping stdout pure JSON for
/// scripts. Silent when nothing is staged or the body is not the
/// expected shape — the JSON on stdout is always the source of truth.
fn render_staged_diff(body: &str) {
    let Ok(doc) = baryon_sim::json::parse(body) else {
        return;
    };
    let Some(diff) = field(&doc, "staged_diff") else {
        return;
    };
    let (Some(Json::U64(from)), Some(Json::U64(to))) =
        (field(diff, "from_generation"), field(diff, "to_generation"))
    else {
        return;
    };
    let Some(Json::Obj(changes)) = field(diff, "changes") else {
        return;
    };
    eprintln!(
        "staged: generation {from} -> {to} ({} change{})",
        changes.len(),
        if changes.len() == 1 { "" } else { "s" }
    );
    for (knob, change) in changes {
        let side = |name| match field(change, name) {
            Some(Json::Str(s)) => s.clone(),
            _ => "?".to_owned(),
        };
        eprintln!("  {knob}: {} -> {}", side("from"), side("to"));
    }
}

/// Looks up `name` in a JSON object; `None` for non-objects.
fn field<'a>(doc: &'a Json, name: &str) -> Option<&'a Json> {
    let Json::Obj(pairs) = doc else {
        return None;
    };
    pairs.iter().find(|(k, _)| k == name).map(|(_, v)| v)
}

/// Maps a client failure onto the documented exit statuses.
fn report(e: &ClientError) -> ExitCode {
    eprintln!("fleet admin: {e}");
    let status = match e {
        ClientError::Connect(_) => 7,
        _ => match e.code() {
            Some(ErrorCode::InvalidJson | ErrorCode::InvalidConfig) => 5,
            Some(ErrorCode::Conflict | ErrorCode::RolloutFailed) => 6,
            _ => 1,
        },
    };
    ExitCode::from(status)
}

//! Typed launch failures for the serving commands.
//!
//! `serve` and `fleet` are the two commands that acquire host resources
//! (a TCP port, worker-shard processes) before doing anything useful.
//! Their failures are classified into [`LaunchError`] so scripts can
//! branch on the exit code instead of grepping stderr:
//!
//! * exit [`BIND_EXIT`] (3) — the coordinator/server port could not be
//!   bound (taken, privileged, or unroutable);
//! * exit [`SPAWN_EXIT`] (4) — worker shards could not be spawned or
//!   never announced their address.
//!
//! (Exit 2 remains the argument-shape error, exit 1 a runtime failure
//! after a successful launch.)

use std::io;
use std::process::ExitCode;

/// Exit status for a failed port bind.
pub const BIND_EXIT: u8 = 3;
/// Exit status for a failed shard spawn.
pub const SPAWN_EXIT: u8 = 4;

/// Why a serving command never came up.
#[derive(Debug)]
pub enum LaunchError {
    /// The listener port could not be bound.
    Bind {
        /// The requested port.
        port: u16,
        /// The underlying bind failure.
        source: io::Error,
    },
    /// A worker shard could not be spawned, or exited before announcing
    /// its address.
    Spawn {
        /// The shard executable that was being launched.
        program: String,
        /// The underlying spawn failure.
        source: io::Error,
    },
}

impl LaunchError {
    /// Classifies a [`Fleet::bind`](baryon_fleet::Fleet::bind) failure.
    /// The listener is bound before any shard is spawned, so the
    /// address-shaped error kinds can only have come from the bind; all
    /// other failures are shard-launch problems.
    pub fn classify_fleet(port: u16, program: &str, source: io::Error) -> LaunchError {
        match source.kind() {
            io::ErrorKind::AddrInUse
            | io::ErrorKind::AddrNotAvailable
            | io::ErrorKind::PermissionDenied => LaunchError::Bind { port, source },
            _ => LaunchError::Spawn {
                program: program.to_owned(),
                source,
            },
        }
    }

    /// The command's exit status for this failure.
    pub fn exit_code(&self) -> ExitCode {
        match self {
            LaunchError::Bind { .. } => ExitCode::from(BIND_EXIT),
            LaunchError::Spawn { .. } => ExitCode::from(SPAWN_EXIT),
        }
    }

    /// Prints the error to stderr and returns the matching exit code.
    pub fn report(self) -> ExitCode {
        eprintln!("{self}");
        self.exit_code()
    }
}

impl std::fmt::Display for LaunchError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LaunchError::Bind { port, source } => {
                write!(f, "error[bind]: cannot bind 127.0.0.1:{port}: {source}")
            }
            LaunchError::Spawn { program, source } => {
                write!(f, "error[spawn]: cannot launch shard {program:?}: {source}")
            }
        }
    }
}

impl std::error::Error for LaunchError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            LaunchError::Bind { source, .. } | LaunchError::Spawn { source, .. } => Some(source),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn address_kinds_classify_as_bind() {
        for kind in [
            io::ErrorKind::AddrInUse,
            io::ErrorKind::AddrNotAvailable,
            io::ErrorKind::PermissionDenied,
        ] {
            let e = LaunchError::classify_fleet(80, "prog", io::Error::new(kind, "x"));
            assert!(matches!(e, LaunchError::Bind { port: 80, .. }), "{kind:?}");
        }
    }

    #[test]
    fn other_kinds_classify_as_spawn() {
        for kind in [
            io::ErrorKind::NotFound,
            io::ErrorKind::InvalidData,
            io::ErrorKind::BrokenPipe,
        ] {
            let e = LaunchError::classify_fleet(80, "prog", io::Error::new(kind, "x"));
            assert!(matches!(e, LaunchError::Spawn { .. }), "{kind:?}");
        }
    }

    #[test]
    fn messages_name_the_resource() {
        let bind = LaunchError::Bind {
            port: 8678,
            source: io::Error::new(io::ErrorKind::AddrInUse, "taken"),
        };
        let text = bind.to_string();
        assert!(text.contains("error[bind]"), "{text}");
        assert!(text.contains("8678"), "{text}");
        let spawn = LaunchError::Spawn {
            program: "/bin/missing".to_owned(),
            source: io::Error::new(io::ErrorKind::NotFound, "no such file"),
        };
        let text = spawn.to_string();
        assert!(text.contains("error[spawn]"), "{text}");
        assert!(text.contains("/bin/missing"), "{text}");
    }
}

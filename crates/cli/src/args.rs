//! Minimal `--flag value` argument parsing (no external dependencies).

use baryon_workloads::Scale;
use std::collections::BTreeMap;

/// Parsed command line: one positional command plus `--key value` flags.
#[derive(Debug, Clone, Default)]
pub struct Args {
    command: Option<String>,
    flags: BTreeMap<String, String>,
}

impl Args {
    /// Parses an iterator of arguments (without the program name).
    ///
    /// Unknown shapes (`--flag` without a value, stray positionals after
    /// the command) abort with an error message, keeping mistakes loud.
    pub fn parse<I: IntoIterator<Item = String>>(items: I) -> Self {
        let mut out = Args::default();
        let mut it = items.into_iter();
        while let Some(item) = it.next() {
            if let Some(key) = item.strip_prefix("--") {
                match it.next() {
                    Some(value) => {
                        out.flags.insert(key.to_owned(), value);
                    }
                    None => {
                        eprintln!("flag --{key} needs a value");
                        std::process::exit(2);
                    }
                }
            } else if out.command.is_none() {
                out.command = Some(item);
            } else {
                eprintln!("unexpected argument: {item}");
                std::process::exit(2);
            }
        }
        out
    }

    /// The positional command, if given.
    pub fn command(&self) -> Option<&str> {
        self.command.as_deref()
    }

    /// A flag's value, if present.
    pub fn get(&self, key: &str) -> Option<String> {
        self.flags.get(key).cloned()
    }

    /// A mandatory flag; exits with a message if missing.
    pub fn require(&self, key: &str) -> String {
        self.get(key).unwrap_or_else(|| {
            eprintln!("missing required flag --{key}");
            std::process::exit(2);
        })
    }

    /// A numeric flag with a default; exits on unparsable input.
    pub fn num(&self, key: &str, default: u64) -> u64 {
        match self.flags.get(key) {
            None => default,
            Some(v) => v.parse().unwrap_or_else(|_| {
                eprintln!("flag --{key} expects a number, got {v}");
                std::process::exit(2);
            }),
        }
    }

    /// The capacity scale (`--scale` divisor, default 256).
    pub fn scale(&self) -> Scale {
        Scale {
            divisor: self.num("scale", 256),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(items: &[&str]) -> Args {
        Args::parse(items.iter().map(|s| s.to_string()))
    }

    #[test]
    fn command_and_flags() {
        let a = parse(&["run", "--workload", "505.mcf_r", "--insts", "1000"]);
        assert_eq!(a.command(), Some("run"));
        assert_eq!(a.get("workload").as_deref(), Some("505.mcf_r"));
        assert_eq!(a.num("insts", 5), 1000);
        assert_eq!(a.num("warmup", 7), 7);
    }

    #[test]
    fn empty_args() {
        let a = parse(&[]);
        assert_eq!(a.command(), None);
        assert!(a.get("x").is_none());
    }

    #[test]
    fn scale_default() {
        assert_eq!(parse(&["list"]).scale().divisor, 256);
        assert_eq!(parse(&["list", "--scale", "512"]).scale().divisor, 512);
    }
}

//! Minimal argument parsing (no external dependencies).
//!
//! Flags come as `--flag value` or `--flag=value`; one positional command
//! leads. The fallible core (`try_*` methods) returns [`ArgError`] so it
//! is unit-testable; the CLI binary wraps it with exit-on-error helpers.

use baryon_workloads::Scale;
use std::collections::BTreeMap;

/// A command-line shape error, displayed to the user verbatim.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArgError(pub String);

impl std::fmt::Display for ArgError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for ArgError {}

/// Parsed command line: one positional command plus `--key value` /
/// `--key=value` flags.
#[derive(Debug, Clone, Default)]
pub struct Args {
    command: Option<String>,
    flags: BTreeMap<String, String>,
}

impl Args {
    /// Parses an iterator of arguments (without the program name).
    ///
    /// # Errors
    ///
    /// Unknown shapes — `--flag` without a value, an empty flag name,
    /// stray positionals after the command — fail loudly.
    pub fn try_parse<I: IntoIterator<Item = String>>(items: I) -> Result<Self, ArgError> {
        let mut out = Args::default();
        let mut it = items.into_iter();
        while let Some(item) = it.next() {
            if let Some(key) = item.strip_prefix("--") {
                let (key, value) = match key.split_once('=') {
                    Some((key, value)) => (key, value.to_owned()),
                    None => match it.next() {
                        Some(value) => (key, value),
                        None => return Err(ArgError(format!("flag --{key} needs a value"))),
                    },
                };
                if key.is_empty() {
                    return Err(ArgError(format!("malformed flag `{item}`")));
                }
                out.flags.insert(key.to_owned(), value);
            } else if out.command.is_none() {
                out.command = Some(item);
            } else {
                return Err(ArgError(format!("unexpected argument: {item}")));
            }
        }
        Ok(out)
    }

    /// Parses, printing the error and exiting with status 2 on bad shapes.
    pub fn parse<I: IntoIterator<Item = String>>(items: I) -> Self {
        Self::try_parse(items).unwrap_or_else(|e| {
            eprintln!("{e}");
            std::process::exit(2);
        })
    }

    /// The positional command, if given.
    pub fn command(&self) -> Option<&str> {
        self.command.as_deref()
    }

    /// A flag's value, if present.
    pub fn get(&self, key: &str) -> Option<String> {
        self.flags.get(key).cloned()
    }

    /// A mandatory flag.
    ///
    /// # Errors
    ///
    /// Fails if the flag is missing.
    pub fn try_require(&self, key: &str) -> Result<String, ArgError> {
        self.get(key)
            .ok_or_else(|| ArgError(format!("missing required flag --{key}")))
    }

    /// A numeric flag with a default.
    ///
    /// # Errors
    ///
    /// Fails on unparsable input.
    pub fn try_num(&self, key: &str, default: u64) -> Result<u64, ArgError> {
        match self.flags.get(key) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| ArgError(format!("flag --{key} expects a number, got {v}"))),
        }
    }

    /// A mandatory flag; exits with a message if missing.
    pub fn require(&self, key: &str) -> String {
        self.try_require(key).unwrap_or_else(|e| {
            eprintln!("{e}");
            std::process::exit(2);
        })
    }

    /// A numeric flag with a default; exits on unparsable input.
    pub fn num(&self, key: &str, default: u64) -> u64 {
        self.try_num(key, default).unwrap_or_else(|e| {
            eprintln!("{e}");
            std::process::exit(2);
        })
    }

    /// A boolean flag with a default (`--key true|false|1|0|on|off`).
    ///
    /// # Errors
    ///
    /// Fails on values outside that set.
    pub fn try_bool(&self, key: &str, default: bool) -> Result<bool, ArgError> {
        match self.flags.get(key).map(String::as_str) {
            None => Ok(default),
            Some("true" | "1" | "on") => Ok(true),
            Some("false" | "0" | "off") => Ok(false),
            Some(v) => Err(ArgError(format!(
                "flag --{key} expects true/false, got {v}"
            ))),
        }
    }

    /// A boolean flag with a default; exits on unparsable input.
    pub fn bool_flag(&self, key: &str, default: bool) -> bool {
        self.try_bool(key, default).unwrap_or_else(|e| {
            eprintln!("{e}");
            std::process::exit(2);
        })
    }

    /// The capacity scale (`--scale` divisor, default 256).
    pub fn scale(&self) -> Scale {
        Scale {
            divisor: self.num("scale", 256),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(items: &[&str]) -> Args {
        Args::try_parse(items.iter().map(|s| s.to_string())).expect("well-formed")
    }

    fn parse_err(items: &[&str]) -> ArgError {
        Args::try_parse(items.iter().map(|s| s.to_string())).expect_err("malformed")
    }

    #[test]
    fn command_and_flags() {
        let a = parse(&["run", "--workload", "505.mcf_r", "--insts", "1000"]);
        assert_eq!(a.command(), Some("run"));
        assert_eq!(a.get("workload").as_deref(), Some("505.mcf_r"));
        assert_eq!(a.num("insts", 5), 1000);
        assert_eq!(a.num("warmup", 7), 7);
    }

    #[test]
    fn equals_shape_is_equivalent() {
        let a = parse(&["run", "--workload=505.mcf_r", "--insts=1000"]);
        assert_eq!(a.get("workload").as_deref(), Some("505.mcf_r"));
        assert_eq!(a.num("insts", 5), 1000);
        // Mixed shapes in one line.
        let a = parse(&["run", "--workload=ycsb-a", "--seed", "9"]);
        assert_eq!(a.get("workload").as_deref(), Some("ycsb-a"));
        assert_eq!(a.num("seed", 0), 9);
        // Values may contain `=` themselves.
        let a = parse(&["run", "--csv=out=weird.csv"]);
        assert_eq!(a.get("csv").as_deref(), Some("out=weird.csv"));
        // An explicit empty value is allowed.
        let a = parse(&["run", "--csv="]);
        assert_eq!(a.get("csv").as_deref(), Some(""));
    }

    #[test]
    fn empty_args() {
        let a = parse(&[]);
        assert_eq!(a.command(), None);
        assert!(a.get("x").is_none());
    }

    #[test]
    fn scale_default() {
        assert_eq!(parse(&["list"]).scale().divisor, 256);
        assert_eq!(parse(&["list", "--scale", "512"]).scale().divisor, 512);
        assert_eq!(parse(&["list", "--scale=512"]).scale().divisor, 512);
    }

    #[test]
    fn bool_flags_parse_the_usual_spellings() {
        assert!(!parse(&["run"]).bool_flag("telemetry", false));
        assert!(parse(&["run"]).bool_flag("telemetry", true));
        for on in ["true", "1", "on"] {
            assert!(parse(&["run", "--telemetry", on]).bool_flag("telemetry", false));
        }
        for off in ["false", "0", "off"] {
            assert!(!parse(&["run", "--telemetry", off]).bool_flag("telemetry", true));
        }
        let a = parse(&["run", "--telemetry", "maybe"]);
        assert!(a.try_bool("telemetry", false).is_err());
    }

    #[test]
    fn malformed_shapes_error() {
        assert!(parse_err(&["run", "--insts"]).0.contains("needs a value"));
        assert!(parse_err(&["run", "extra"]).0.contains("unexpected"));
        assert!(parse_err(&["run", "--=5"]).0.contains("malformed flag"));
        assert!(parse_err(&["run", "--"]).0.contains("needs a value"));
    }

    #[test]
    fn fallible_accessors_report_instead_of_exiting() {
        let a = parse(&["run", "--insts", "abc"]);
        assert!(a.try_require("workload").is_err());
        assert_eq!(a.try_require("insts").as_deref(), Ok("abc"));
        assert!(a.try_num("insts", 1).unwrap_err().0.contains("number"));
        assert_eq!(a.try_num("missing", 17), Ok(17));
    }
}

//! Exit-code contract of the serving commands.
//!
//! Scripts supervise `baryon-cli serve` / `baryon-cli fleet` by exit
//! status, so the statuses are part of the CLI's API:
//!
//! * 2 — malformed arguments (never launched anything),
//! * 3 — the listener port could not be bound,
//! * 4 — a worker shard could not be spawned or never announced `ADDR`.
//!
//! Each failure must also leave a typed one-line diagnostic on stderr
//! (`error[bind]: ...` / `error[spawn]: ...`) and nothing on stdout
//! before the `ADDR` line.

use std::net::TcpListener;
use std::process::Command;

fn cli() -> Command {
    Command::new(env!("CARGO_BIN_EXE_baryon-cli"))
}

/// Holds a port open so bind attempts against it fail deterministically.
fn occupied_port() -> (TcpListener, u16) {
    let listener = TcpListener::bind("127.0.0.1:0").expect("ephemeral bind");
    let port = listener.local_addr().expect("addr").port();
    (listener, port)
}

#[test]
fn serve_on_a_taken_port_exits_3_with_a_typed_error() {
    let (_hold, port) = occupied_port();
    let out = cli()
        .args(["serve", &format!("--port={port}")])
        .output()
        .expect("run baryon-cli");
    assert_eq!(out.status.code(), Some(3), "{out:?}");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("error[bind]"), "{stderr}");
    assert!(stderr.contains(&port.to_string()), "{stderr}");
    assert!(
        out.stdout.is_empty(),
        "no stdout before ADDR on failure: {:?}",
        String::from_utf8_lossy(&out.stdout)
    );
}

#[test]
fn fleet_on_a_taken_port_exits_3_with_a_typed_error() {
    let (_hold, port) = occupied_port();
    let tmp = std::env::temp_dir().join(format!("baryon-cli-fleet-bind-{port}"));
    let out = cli()
        .args([
            "fleet",
            &format!("--port={port}"),
            "--shards=1",
            &format!("--journal-root={}", tmp.display()),
        ])
        .output()
        .expect("run baryon-cli");
    let _ = std::fs::remove_dir_all(&tmp);
    assert_eq!(out.status.code(), Some(3), "{out:?}");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("error[bind]"), "{stderr}");
}

#[test]
fn fleet_with_an_unspawnable_shard_exits_4_with_a_typed_error() {
    // `/bin/true` spawns but exits without ever printing `ADDR`, and a
    // missing path does not spawn at all; both are launch failures.
    for program in ["/bin/true", "/nonexistent/baryon-shard"] {
        let tmp = std::env::temp_dir().join(format!(
            "baryon-cli-fleet-spawn-{}",
            program.len() // distinct dir per case
        ));
        let out = cli()
            .args([
                "fleet",
                "--port=0",
                "--shards=1",
                &format!("--shard-program={program}"),
                &format!("--journal-root={}", tmp.display()),
            ])
            .output()
            .expect("run baryon-cli");
        let _ = std::fs::remove_dir_all(&tmp);
        assert_eq!(out.status.code(), Some(4), "{program}: {out:?}");
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert!(stderr.contains("error[spawn]"), "{program}: {stderr}");
        assert!(stderr.contains(program), "{program}: {stderr}");
    }
}

#[test]
fn malformed_arguments_still_exit_2() {
    let out = cli()
        .args(["fleet", "--shards"])
        .output()
        .expect("run baryon-cli");
    assert_eq!(out.status.code(), Some(2), "{out:?}");
}

//! Table-driven CRC32 (IEEE 802.3 / zlib polynomial), built in-repo so
//! the workspace stays hermetic.
//!
//! The table is generated at compile time by a `const fn`; the hot path
//! is the classic one-lookup-per-byte reflected implementation. Used by
//! [`crate::frame`] to seal every compressed block with an end-to-end
//! checksum of the *raw* (uncompressed) bytes, so corruption anywhere in
//! the compress → store → fetch → decompress pipeline is detected.
//!
//! # Examples
//!
//! ```
//! // The standard CRC-32 check value.
//! assert_eq!(baryon_compress::crc::crc32(b"123456789"), 0xCBF4_3926);
//! ```

/// The reflected IEEE 802.3 polynomial (0x04C11DB7 bit-reversed).
const POLY: u32 = 0xEDB8_8320;

const fn build_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0usize;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 == 1 { POLY ^ (c >> 1) } else { c >> 1 };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

static TABLE: [u32; 256] = build_table();

/// An incremental CRC32 hasher.
#[derive(Debug, Clone)]
pub struct Crc32 {
    state: u32,
}

impl Default for Crc32 {
    fn default() -> Self {
        Self::new()
    }
}

impl Crc32 {
    /// Starts a fresh checksum.
    pub fn new() -> Self {
        Crc32 { state: 0xFFFF_FFFF }
    }

    /// Folds `bytes` into the checksum.
    pub fn update(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.state = TABLE[((self.state ^ b as u32) & 0xFF) as usize] ^ (self.state >> 8);
        }
    }

    /// The final CRC32 value.
    pub fn finish(&self) -> u32 {
        self.state ^ 0xFFFF_FFFF
    }
}

/// One-shot CRC32 of `bytes`.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut h = Crc32::new();
    h.update(bytes);
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Standard check values shared by zlib, PNG, Ethernet.
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn incremental_matches_one_shot() {
        let data: Vec<u8> = (0..=255u8).cycle().take(10_000).collect();
        let mut h = Crc32::new();
        for chunk in data.chunks(37) {
            h.update(chunk);
        }
        assert_eq!(h.finish(), crc32(&data));
    }

    #[test]
    fn single_bit_flips_always_detected() {
        let data: Vec<u8> = (0..256u32)
            .flat_map(|i| i.wrapping_mul(2654435761).to_le_bytes())
            .collect();
        let clean = crc32(&data);
        let mut corrupt = data.clone();
        for bit in (0..data.len() * 8).step_by(97) {
            corrupt[bit / 8] ^= 1 << (bit % 8);
            assert_ne!(crc32(&corrupt), clean, "flip at bit {bit} undetected");
            corrupt[bit / 8] ^= 1 << (bit % 8);
        }
    }
}

//! Base-Delta-Immediate (BDI) compression.
//!
//! BDI [Pekhimenko et al., PACT 2012] represents a chunk as an array of
//! fixed-size elements (8, 4, or 2 bytes) expressed as small signed deltas
//! from one of two bases: an arbitrary base chosen from the data and an
//! implicit zero base ("immediate"). Encodings tried, in order of preference:
//!
//! * all-zero chunk (1 byte),
//! * repeated 8-byte value (8 bytes),
//! * base8-Δ1 / base8-Δ2 / base8-Δ4,
//! * base4-Δ1 / base4-Δ2,
//! * base2-Δ1.
//!
//! Sizes follow the BDI paper's layout: `base + n·Δ + ceil(n/8)` where the
//! final term is the per-element base-selection bitmask.

use crate::frame::IntegrityError;

/// One (element size, delta size) BDI encoding.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Encoding {
    /// Element size in bytes: 8, 4, or 2.
    pub elem: usize,
    /// Delta size in bytes, strictly smaller than `elem`.
    pub delta: usize,
}

/// The eight canonical encodings, in the order the hardware tries them.
pub const ENCODINGS: [Encoding; 6] = [
    Encoding { elem: 8, delta: 1 },
    Encoding { elem: 8, delta: 2 },
    Encoding { elem: 8, delta: 4 },
    Encoding { elem: 4, delta: 1 },
    Encoding { elem: 4, delta: 2 },
    Encoding { elem: 2, delta: 1 },
];

fn read_elem(data: &[u8], idx: usize, elem: usize) -> i64 {
    let mut buf = [0u8; 8];
    buf[..elem].copy_from_slice(&data[idx * elem..(idx + 1) * elem]);
    // Sign-extend.
    let raw = i64::from_le_bytes(buf);
    let shift = 64 - 8 * elem as u32;
    (raw << shift) >> shift
}

fn delta_fits(delta: i64, bytes: usize) -> bool {
    let shift = 64 - 8 * bytes as u32;
    ((delta << shift) >> shift) == delta
}

/// Size in bytes of a chunk under `enc`, or `None` if it does not apply.
///
/// The base is the first element that is not representable as a delta from
/// the implicit zero base (the greedy hardware choice).
pub fn size_with(data: &[u8], enc: Encoding) -> Option<usize> {
    if !data.len().is_multiple_of(enc.elem) {
        return None;
    }
    let n = data.len() / enc.elem;
    let mut base: Option<i64> = None;
    for i in 0..n {
        let v = read_elem(data, i, enc.elem);
        if delta_fits(v, enc.delta) {
            continue; // zero base covers it
        }
        match base {
            None => base = Some(v),
            Some(b) => {
                if !delta_fits(v.wrapping_sub(b), enc.delta) {
                    return None;
                }
            }
        }
    }
    Some(enc.elem + n * enc.delta + n.div_ceil(8))
}

/// BDI-compressed size of `data` in bytes (best applicable encoding).
///
/// Falls back to `data.len()` when nothing applies. Special cases: an
/// all-zero chunk costs 1 byte; a chunk that is one repeated 8-byte value
/// costs 8 bytes.
///
/// # Examples
///
/// ```
/// assert_eq!(baryon_compress::bdi::compressed_size(&[0u8; 64]), 1);
/// ```
///
/// # Panics
///
/// Panics if `data` is not a multiple of 8 bytes.
pub fn compressed_size(data: &[u8]) -> usize {
    assert!(
        data.len().is_multiple_of(8),
        "BDI needs whole 64-bit elements"
    );
    if data.iter().all(|b| *b == 0) {
        return 1;
    }
    if data.chunks_exact(8).all(|c| c == &data[..8]) {
        return 8;
    }
    ENCODINGS
        .iter()
        .filter_map(|e| size_with(data, *e))
        .min()
        .unwrap_or(data.len())
        .min(data.len())
}

/// A decodable BDI representation (for lossless round-trip tests).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Encoded {
    /// All-zero chunk of the given byte length.
    Zeros(usize),
    /// One 8-byte value repeated to fill the chunk.
    Repeat([u8; 8], usize),
    /// Delta-encoded payload.
    Deltas {
        /// Encoding used.
        enc: Encoding,
        /// The non-zero base value.
        base: i64,
        /// Per-element flag: true if the element uses `base`, false for zero.
        uses_base: Vec<bool>,
        /// Per-element deltas.
        deltas: Vec<i64>,
    },
    /// Raw fallback.
    Raw(Vec<u8>),
}

/// Losslessly encodes `data` with the best applicable BDI encoding.
///
/// # Panics
///
/// Panics if `data` is not a multiple of 8 bytes.
pub fn encode(data: &[u8]) -> Encoded {
    assert!(
        data.len().is_multiple_of(8),
        "BDI needs whole 64-bit elements"
    );
    if data.iter().all(|b| *b == 0) {
        return Encoded::Zeros(data.len());
    }
    if data.chunks_exact(8).all(|c| c == &data[..8]) {
        return Encoded::Repeat(data[..8].try_into().expect("8 bytes"), data.len());
    }
    let best = ENCODINGS
        .iter()
        .filter(|e| size_with(data, **e).is_some())
        .min_by_key(|e| size_with(data, **e).expect("filtered"));
    let Some(&enc) = best else {
        return Encoded::Raw(data.to_vec());
    };
    let n = data.len() / enc.elem;
    let mut base = 0i64;
    for i in 0..n {
        let v = read_elem(data, i, enc.elem);
        if !delta_fits(v, enc.delta) {
            base = v;
            break;
        }
    }
    let mut uses_base = Vec::with_capacity(n);
    let mut deltas = Vec::with_capacity(n);
    for i in 0..n {
        let v = read_elem(data, i, enc.elem);
        if delta_fits(v, enc.delta) {
            uses_base.push(false);
            deltas.push(v);
        } else {
            uses_base.push(true);
            deltas.push(v.wrapping_sub(base));
        }
    }
    Encoded::Deltas {
        enc,
        base,
        uses_base,
        deltas,
    }
}

/// Decodes an [`encode`]d chunk back to its original bytes.
///
/// # Errors
///
/// Returns [`IntegrityError::Malformed`] when the representation is
/// structurally inconsistent (an encoding the hardware cannot emit,
/// mismatched per-element arrays, or a length that is not a multiple of
/// the element size).
pub fn decode(encoded: &Encoded) -> Result<Vec<u8>, IntegrityError> {
    Ok(match encoded {
        Encoded::Zeros(len) => {
            if !len.is_multiple_of(8) {
                return Err(IntegrityError::Malformed("BDI zero length unaligned"));
            }
            vec![0u8; *len]
        }
        Encoded::Repeat(val, len) => {
            if !len.is_multiple_of(8) {
                return Err(IntegrityError::Malformed("BDI repeat length unaligned"));
            }
            val.iter().copied().cycle().take(*len).collect()
        }
        Encoded::Raw(bytes) => {
            if !bytes.len().is_multiple_of(8) {
                return Err(IntegrityError::Malformed("BDI raw length unaligned"));
            }
            bytes.clone()
        }
        Encoded::Deltas {
            enc,
            base,
            uses_base,
            deltas,
        } => {
            if !ENCODINGS.contains(enc) {
                return Err(IntegrityError::Malformed("unknown BDI encoding"));
            }
            if uses_base.len() != deltas.len() {
                return Err(IntegrityError::Malformed("BDI flag/delta arrays differ"));
            }
            let mut out = Vec::with_capacity(uses_base.len() * enc.elem);
            for (ub, d) in uses_base.iter().zip(deltas) {
                let v = if *ub { base.wrapping_add(*d) } else { *d };
                out.extend_from_slice(&v.to_le_bytes()[..enc.elem]);
            }
            out
        }
    })
}

/// Serializes [`encode`]'s representation into a byte stream so BDI
/// blocks can travel through [`crate::frame`] like the bit-stream
/// compressors:
///
/// ```text
/// [0][len u16]                                  Zeros
/// [1][len u16][value 8 B]                       Repeat
/// [2][elem][delta][base 8 B][n u16][mask][Δ…]   Deltas
/// [3][len u16][bytes]                           Raw
/// ```
///
/// # Panics
///
/// Panics if `data` is not a multiple of 8 bytes or exceeds
/// `u16::MAX` bytes.
pub fn encode_bytes(data: &[u8]) -> Vec<u8> {
    assert!(data.len() <= u16::MAX as usize, "chunk too large");
    let mut out = Vec::new();
    match encode(data) {
        Encoded::Zeros(len) => {
            out.push(0);
            out.extend_from_slice(&(len as u16).to_le_bytes());
        }
        Encoded::Repeat(val, len) => {
            out.push(1);
            out.extend_from_slice(&(len as u16).to_le_bytes());
            out.extend_from_slice(&val);
        }
        Encoded::Deltas {
            enc,
            base,
            uses_base,
            deltas,
        } => {
            out.push(2);
            out.push(enc.elem as u8);
            out.push(enc.delta as u8);
            out.extend_from_slice(&base.to_le_bytes());
            out.extend_from_slice(&(uses_base.len() as u16).to_le_bytes());
            let mut mask = vec![0u8; uses_base.len().div_ceil(8)];
            for (i, ub) in uses_base.iter().enumerate() {
                if *ub {
                    mask[i / 8] |= 1 << (i % 8);
                }
            }
            out.extend_from_slice(&mask);
            for d in &deltas {
                out.extend_from_slice(&d.to_le_bytes()[..enc.delta]);
            }
        }
        Encoded::Raw(bytes) => {
            out.push(3);
            out.extend_from_slice(&(bytes.len() as u16).to_le_bytes());
            out.extend_from_slice(&bytes);
        }
    }
    out
}

/// Parses an [`encode_bytes`] stream and decodes it.
///
/// # Errors
///
/// Returns a typed [`IntegrityError`] for truncated or structurally
/// invalid streams; never silent garbage.
pub fn decode_bytes(stream: &[u8]) -> Result<Vec<u8>, IntegrityError> {
    let need = |context| IntegrityError::Truncated { context };
    let tag = *stream.first().ok_or(need("BDI tag"))?;
    let rest = &stream[1..];
    let read_u16 = |s: &[u8]| -> Result<usize, IntegrityError> {
        Ok(u16::from_le_bytes([
            *s.first().ok_or(need("BDI length"))?,
            *s.get(1).ok_or(need("BDI length"))?,
        ]) as usize)
    };
    let encoded = match tag {
        0 => Encoded::Zeros(read_u16(rest)?),
        1 => {
            let len = read_u16(rest)?;
            let val: [u8; 8] = rest
                .get(2..10)
                .ok_or(need("BDI repeat value"))?
                .try_into()
                .expect("8 bytes");
            Encoded::Repeat(val, len)
        }
        2 => {
            let elem = *rest.first().ok_or(need("BDI element size"))? as usize;
            let delta = *rest.get(1).ok_or(need("BDI delta size"))? as usize;
            let enc = Encoding { elem, delta };
            if !ENCODINGS.contains(&enc) {
                return Err(IntegrityError::Malformed("unknown BDI encoding"));
            }
            let base = i64::from_le_bytes(
                rest.get(2..10)
                    .ok_or(need("BDI base"))?
                    .try_into()
                    .expect("8 bytes"),
            );
            let n = read_u16(rest.get(10..).ok_or(need("BDI count"))?)?;
            let mask_bytes = n.div_ceil(8);
            let mask = rest.get(12..12 + mask_bytes).ok_or(need("BDI mask"))?;
            let deltas_raw = rest.get(12 + mask_bytes..).ok_or(need("BDI deltas"))?;
            if deltas_raw.len() < n * delta {
                return Err(need("BDI deltas"));
            }
            let mut uses_base = Vec::with_capacity(n);
            let mut deltas = Vec::with_capacity(n);
            for i in 0..n {
                uses_base.push(mask[i / 8] >> (i % 8) & 1 == 1);
                let mut buf = [0u8; 8];
                buf[..delta].copy_from_slice(&deltas_raw[i * delta..(i + 1) * delta]);
                let shift = 64 - 8 * delta as u32;
                deltas.push((i64::from_le_bytes(buf) << shift) >> shift);
            }
            Encoded::Deltas {
                enc,
                base,
                uses_base,
                deltas,
            }
        }
        3 => {
            let len = read_u16(rest)?;
            let bytes = rest.get(2..2 + len).ok_or(need("BDI raw bytes"))?;
            Encoded::Raw(bytes.to_vec())
        }
        _ => return Err(IntegrityError::Malformed("unknown BDI tag")),
    };
    decode(&encoded)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(data: &[u8]) {
        let enc = encode(data);
        let dec = decode(&enc).expect("encoder output decodes");
        assert_eq!(dec, data, "BDI roundtrip failed for {enc:?}");
        let bytes = encode_bytes(data);
        assert_eq!(
            decode_bytes(&bytes).expect("serialized form decodes"),
            data,
            "BDI byte-stream roundtrip failed"
        );
    }

    #[test]
    fn inconsistent_representations_are_errors() {
        let bad = Encoded::Deltas {
            enc: Encoding { elem: 8, delta: 3 },
            base: 0,
            uses_base: vec![false],
            deltas: vec![0],
        };
        assert!(matches!(decode(&bad), Err(IntegrityError::Malformed(_))));
        let bad = Encoded::Deltas {
            enc: Encoding { elem: 8, delta: 1 },
            base: 0,
            uses_base: vec![false, true],
            deltas: vec![0],
        };
        assert!(matches!(decode(&bad), Err(IntegrityError::Malformed(_))));
        assert!(decode(&Encoded::Zeros(13)).is_err());
    }

    #[test]
    fn truncated_byte_streams_are_errors() {
        let mut data = Vec::new();
        for i in 0..8u64 {
            data.extend_from_slice(&(0x7000_0000_0000u64 + i).to_le_bytes());
        }
        let bytes = encode_bytes(&data);
        for cut in 0..bytes.len() {
            assert!(
                decode_bytes(&bytes[..cut]).is_err(),
                "cut at {cut} should fail to decode"
            );
        }
        assert!(matches!(
            decode_bytes(&[9, 0, 0]),
            Err(IntegrityError::Malformed(_))
        ));
    }

    #[test]
    fn zeros() {
        assert_eq!(compressed_size(&[0u8; 64]), 1);
        roundtrip(&[0u8; 64]);
    }

    #[test]
    fn repeated_value() {
        let mut data = Vec::new();
        for _ in 0..8 {
            data.extend_from_slice(&0xDEAD_BEEF_CAFE_F00Du64.to_le_bytes());
        }
        assert_eq!(compressed_size(&data), 8);
        roundtrip(&data);
    }

    #[test]
    fn base8_delta1() {
        // Pointers into the same region: large shared base, tiny deltas.
        let base = 0x0000_7F1A_2B3C_4000u64;
        let mut data = Vec::new();
        for i in 0..8u64 {
            data.extend_from_slice(&(base + i * 8).to_le_bytes());
        }
        let sz = size_with(&data, Encoding { elem: 8, delta: 1 }).expect("applies");
        assert_eq!(sz, 8 + 8 + 1);
        assert_eq!(compressed_size(&data), 17);
        roundtrip(&data);
    }

    #[test]
    fn base4_delta1_narrow_ints() {
        // 32-bit counters around a common value.
        let mut data = Vec::new();
        for i in 0..16u32 {
            data.extend_from_slice(&(1_000_000 + i).to_le_bytes());
        }
        let sz = size_with(&data, Encoding { elem: 4, delta: 1 }).expect("applies");
        assert_eq!(sz, 4 + 16 + 2);
        roundtrip(&data);
    }

    #[test]
    fn mixed_zero_and_base_elements() {
        // Some elements near zero, some near a big base: the dual-base trick.
        let mut data = Vec::new();
        for i in 0..8u64 {
            let v = if i % 2 == 0 {
                i
            } else {
                0x7700_0000_0000_0000 + i
            };
            data.extend_from_slice(&v.to_le_bytes());
        }
        assert!(compressed_size(&data) < 64);
        roundtrip(&data);
    }

    #[test]
    fn incompressible() {
        let mut data = Vec::new();
        for i in 0..8u64 {
            data.extend_from_slice(
                &(0x0123_4567_89AB_CDEFu64.wrapping_mul(2 * i + 3)).to_le_bytes(),
            );
        }
        assert_eq!(compressed_size(&data), 64);
        roundtrip(&data);
    }

    #[test]
    fn negative_deltas() {
        let base = 0x1000_0000_0000u64;
        let mut data = Vec::new();
        for i in 0..8i64 {
            data.extend_from_slice(&((base as i64) + 4 - i).to_le_bytes());
        }
        assert!(compressed_size(&data) <= 17);
        roundtrip(&data);
    }

    #[test]
    fn larger_chunks_supported() {
        // 256 B chunk of 32-bit floats with identical exponents compresses.
        let mut data = Vec::new();
        for i in 0..64u32 {
            data.extend_from_slice(&(1.0f32 + i as f32 * 1e-6).to_bits().to_le_bytes());
        }
        assert!(compressed_size(&data) < 256);
        roundtrip(&data);
    }

    #[test]
    #[should_panic(expected = "64-bit elements")]
    fn unaligned_panics() {
        compressed_size(&[0u8; 12]);
    }

    #[test]
    fn size_with_rejects_wrong_alignment() {
        assert_eq!(size_with(&[0u8; 10], Encoding { elem: 8, delta: 1 }), None);
    }
}

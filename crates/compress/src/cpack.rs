//! C-Pack cache compression (Chen et al., TVLSI 2010).
//!
//! The Baryon paper uses FPC + BDI but notes alternative schemes "can also
//! be used and the exact choices are orthogonal" (§III-B), citing C-Pack.
//! This module provides it as an optional third compressor.
//!
//! C-Pack combines static patterns with a small FIFO dictionary of recently
//! seen 32-bit words. Each word is coded as one of:
//!
//! | code   | pattern                        | payload bits | total |
//! |--------|--------------------------------|--------------|-------|
//! | `00`   | `zzzz` all-zero word           | 0            | 2     |
//! | `01`   | `xxxx` unmatched word          | 32           | 34    |
//! | `10`   | `mmmm` full dictionary match   | 4 (index)    | 6     |
//! | `1100` | `mmxx` dict match, low 2 B new | 4 + 16       | 24    |
//! | `1101` | `zzzx` three zero bytes + 1 B  | 8            | 12    |
//! | `1110` | `mmmx` dict match, low 1 B new | 4 + 8        | 16    |
//!
//! Unmatched and partially matched words push into the 16-entry FIFO
//! dictionary, exactly as the hardware does.

use crate::fpc::{BitReader, BitWriter};
use crate::frame::IntegrityError;

const DICT_WORDS: usize = 16;

#[derive(Debug, Clone)]
struct Dictionary {
    words: [u32; DICT_WORDS],
    len: usize,
    next: usize,
}

impl Dictionary {
    fn new() -> Self {
        Dictionary {
            words: [0; DICT_WORDS],
            len: 0,
            next: 0,
        }
    }

    fn lookup(&self, word: u32) -> Option<(usize, Match)> {
        let mut best: Option<(usize, Match)> = None;
        for i in 0..self.len {
            let d = self.words[i];
            let m = if d == word {
                Match::Full
            } else if d >> 16 == word >> 16 {
                if d >> 8 == word >> 8 {
                    Match::High3
                } else {
                    Match::High2
                }
            } else {
                continue;
            };
            best = match best {
                Some((_, prev)) if prev >= m => best,
                _ => Some((i, m)),
            };
        }
        best
    }

    fn push(&mut self, word: u32) {
        self.words[self.next] = word;
        self.next = (self.next + 1) % DICT_WORDS;
        self.len = (self.len + 1).min(DICT_WORDS);
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum Match {
    /// Upper 2 bytes match (`mmxx`).
    High2,
    /// Upper 3 bytes match (`mmmx`).
    High3,
    /// Whole word matches (`mmmm`).
    Full,
}

fn words(data: &[u8]) -> impl Iterator<Item = u32> + '_ {
    data.chunks_exact(4)
        .map(|c| u32::from_le_bytes(c.try_into().expect("4-byte chunk")))
}

/// C-Pack compressed size of `data` in bytes.
///
/// # Examples
///
/// ```
/// // A repeating word costs one unmatched emission then 6-bit matches:
/// // 34 + 15 x 6 = 124 bits = 16 bytes for a 64-byte line.
/// let mut data = Vec::new();
/// for _ in 0..16 {
///     data.extend_from_slice(&0xABCD_1234u32.to_le_bytes());
/// }
/// assert_eq!(baryon_compress::cpack::compressed_size(&data), 16);
/// ```
///
/// # Panics
///
/// Panics if `data` is not a multiple of 4 bytes.
pub fn compressed_size(data: &[u8]) -> usize {
    assert!(
        data.len().is_multiple_of(4),
        "C-Pack needs whole 32-bit words"
    );
    let mut dict = Dictionary::new();
    let mut bits = 0usize;
    for word in words(data) {
        if word == 0 {
            bits += 2;
            continue;
        }
        if word & 0xFFFF_FF00 == 0 {
            bits += 12; // zzzx
            continue;
        }
        match dict.lookup(word) {
            Some((_, Match::Full)) => bits += 6,
            Some((_, Match::High3)) => {
                bits += 16;
                dict.push(word);
            }
            Some((_, Match::High2)) => {
                bits += 24;
                dict.push(word);
            }
            None => {
                bits += 34;
                dict.push(word);
            }
        }
    }
    bits.div_ceil(8)
}

/// Losslessly C-Pack-encodes `data`.
///
/// # Panics
///
/// Panics if `data` is not a multiple of 4 bytes.
pub fn encode(data: &[u8]) -> Vec<u8> {
    assert!(
        data.len().is_multiple_of(4),
        "C-Pack needs whole 32-bit words"
    );
    let mut dict = Dictionary::new();
    let mut w = BitWriter::new();
    for word in words(data) {
        if word == 0 {
            w.push(0b00, 2);
            continue;
        }
        if word & 0xFFFF_FF00 == 0 {
            // `11` escape followed by the `01` (zzzx) selector: pushed as
            // two 2-bit groups so the LSB-first reader sees them in order.
            w.push(0b11, 2);
            w.push(0b01, 2);
            w.push(word & 0xFF, 8);
            continue;
        }
        match dict.lookup(word) {
            Some((i, Match::Full)) => {
                w.push(0b10, 2);
                w.push(i as u32, 4);
            }
            Some((i, Match::High3)) => {
                w.push(0b11, 2);
                w.push(0b10, 2); // mmmx
                w.push(i as u32, 4);
                w.push(word & 0xFF, 8);
                dict.push(word);
            }
            Some((i, Match::High2)) => {
                w.push(0b11, 2);
                w.push(0b00, 2); // mmxx
                w.push(i as u32, 4);
                w.push(word & 0xFFFF, 16);
                dict.push(word);
            }
            None => {
                w.push(0b01, 2);
                w.push(word, 32);
                dict.push(word);
            }
        }
    }
    w.into_bytes()
}

/// Decodes an [`encode`]d stream back into `word_count` words.
///
/// # Errors
///
/// Returns [`IntegrityError::Truncated`] when the stream runs dry and
/// [`IntegrityError::Malformed`] on the reserved `1111` code (which the
/// encoder never emits, so seeing it means corruption).
pub fn decode(stream: &[u8], word_count: usize) -> Result<Vec<u8>, IntegrityError> {
    let mut dict = Dictionary::new();
    let mut r = BitReader::new(stream);
    let mut out = Vec::with_capacity(word_count * 4);
    let need = |context| IntegrityError::Truncated { context };
    for _ in 0..word_count {
        let word = match r.try_read(2).ok_or(need("C-Pack code"))? {
            0b00 => 0,
            0b01 => {
                let w = r.try_read(32).ok_or(need("C-Pack word"))?;
                dict.push(w);
                w
            }
            0b10 => {
                let i = r.try_read(4).ok_or(need("C-Pack index"))? as usize;
                dict.words[i]
            }
            _ => match r.try_read(2).ok_or(need("C-Pack escape"))? {
                0b00 => {
                    // 1100 mmxx
                    let i = r.try_read(4).ok_or(need("C-Pack index"))? as usize;
                    let low = r.try_read(16).ok_or(need("C-Pack low bytes"))?;
                    let w = (dict.words[i] & 0xFFFF_0000) | low;
                    dict.push(w);
                    w
                }
                0b01 => r.try_read(8).ok_or(need("C-Pack byte"))?, // 1101 zzzx
                0b10 => {
                    // 1110 mmmx
                    let i = r.try_read(4).ok_or(need("C-Pack index"))? as usize;
                    let low = r.try_read(8).ok_or(need("C-Pack low byte"))?;
                    let w = (dict.words[i] & 0xFFFF_FF00) | low;
                    dict.push(w);
                    w
                }
                _ => return Err(IntegrityError::Malformed("reserved C-Pack code 1111")),
            },
        };
        out.extend_from_slice(&word.to_le_bytes());
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(data: &[u8]) {
        let enc = encode(data);
        let dec = decode(&enc, data.len() / 4).expect("clean stream decodes");
        assert_eq!(dec, data, "C-Pack roundtrip");
        assert_eq!(
            enc.len(),
            compressed_size(data),
            "size model matches encoder"
        );
    }

    #[test]
    fn reserved_code_is_a_typed_error() {
        // 0b1111 in the first four bits hits the reserved escape.
        assert_eq!(
            decode(&[0b1111], 1),
            Err(IntegrityError::Malformed("reserved C-Pack code 1111"))
        );
    }

    #[test]
    fn truncated_streams_are_errors() {
        let mut data = Vec::new();
        for i in 0..16u32 {
            data.extend_from_slice(&0x9E37_79B9u32.wrapping_mul(2 * i + 1).to_le_bytes());
        }
        let enc = encode(&data);
        for cut in 0..enc.len() {
            assert!(
                matches!(
                    decode(&enc[..cut], data.len() / 4),
                    Err(IntegrityError::Truncated { .. })
                ),
                "cut at {cut} should be a truncation error"
            );
        }
    }

    #[test]
    fn zero_line() {
        let data = [0u8; 64];
        roundtrip(&data);
        assert_eq!(compressed_size(&data), 4); // 16 words x 2 bits
    }

    #[test]
    fn repeated_word_uses_dictionary() {
        let mut data = Vec::new();
        for _ in 0..16 {
            data.extend_from_slice(&0xDEAD_BEEFu32.to_le_bytes());
        }
        roundtrip(&data);
        // 1 x 34 bits + 15 x 6 bits = 124 bits -> 16 B.
        assert_eq!(compressed_size(&data), 16);
    }

    #[test]
    fn high_bytes_match_partial() {
        // Words sharing upper 3 bytes: mmmx after the first.
        let mut data = Vec::new();
        for i in 0..16u32 {
            data.extend_from_slice(&(0x1234_5600 | i).to_le_bytes());
        }
        roundtrip(&data);
        assert!(compressed_size(&data) < 40, "partial matches compress");
    }

    #[test]
    fn small_byte_words() {
        let mut data = Vec::new();
        for i in 1..=16u32 {
            data.extend_from_slice(&(i % 200).to_le_bytes());
        }
        roundtrip(&data);
        // zzzx: 12 bits per word.
        assert_eq!(compressed_size(&data), 24);
    }

    #[test]
    fn incompressible_data() {
        let mut data = Vec::new();
        for i in 0..16u32 {
            data.extend_from_slice(&0x9E37_79B9u32.wrapping_mul(2 * i + 1).to_le_bytes());
        }
        roundtrip(&data);
        assert!(
            compressed_size(&data) >= 64,
            "random words cost >= 34 bits each"
        );
    }

    #[test]
    fn mixed_content() {
        let mut data = Vec::new();
        for i in 0..64u32 {
            let w = match i % 4 {
                0 => 0,
                1 => 0x4242_0000 | i,
                2 => i % 256,
                _ => 0xCAFE_BABE,
            };
            data.extend_from_slice(&w.to_le_bytes());
        }
        roundtrip(&data);
    }

    #[test]
    fn dictionary_wraps_fifo() {
        // More than 16 distinct words: the FIFO must recycle correctly.
        let mut data = Vec::new();
        for i in 0..40u32 {
            data.extend_from_slice(&(0x1111_0000u32 + i * 0x0101).to_le_bytes());
        }
        // Repeat the tail so late matches hit recycled entries.
        for i in 24..40u32 {
            data.extend_from_slice(&(0x1111_0000u32 + i * 0x0101).to_le_bytes());
        }
        roundtrip(&data);
    }

    #[test]
    #[should_panic(expected = "32-bit words")]
    fn unaligned_panics() {
        compressed_size(&[1, 2, 3]);
    }
}

#![warn(missing_docs)]

//! Hardware-style memory compression for the Baryon reproduction.
//!
//! Baryon (HPCA 2023, §III-B) feeds every to-be-compressed chunk into two
//! hardware compressors — **FPC** (Frequent Pattern Compression) and **BDI**
//! (Base-Delta-Immediate) — and keeps whichever result is smaller. This crate
//! implements both algorithms bit-accurately enough to compute real compressed
//! sizes from real data bytes, plus:
//!
//! * [`best_compressed_size`] — the best-of-both selection used everywhere,
//! * [`Cf`] — Baryon's three supported compression factors (1, 2, 4),
//! * [`RangeCompressor`] — the *cacheline-aligned* range compression rule of
//!   §III-E (each 64·n-byte chunk of a CF=n range must independently compress
//!   to ≤ 64 B, so that a single DDRx 64 B transfer can be decompressed alone),
//! * zero-block detection for the `Z`-bit optimization,
//! * [`frame`] — CRC32-sealed block framing ([`crc`] is the hermetic
//!   table-driven checksum) so a corrupted block is a typed
//!   [`IntegrityError`], never silent garbage.
//!
//! Both algorithms also have full encoders/decoders so tests can verify
//! losslessness, not just size models; every decoder returns `Result`
//! and surfaces truncation or malformed codes as [`IntegrityError`].
//!
//! # Examples
//!
//! ```
//! use baryon_compress::{best_compressed_size, Cf, RangeCompressor};
//!
//! // A run of small integers compresses well under both FPC and BDI.
//! let mut data = [0u8; 64];
//! for (i, w) in data.chunks_exact_mut(4).enumerate() {
//!     w.copy_from_slice(&(i as u32).to_le_bytes());
//! }
//! assert!(best_compressed_size(&data) < 64);
//!
//! // The whole 256 B sub-block range logic:
//! let zeros = vec![0u8; 1024];
//! let rc = RangeCompressor::cacheline_aligned();
//! assert_eq!(rc.max_cf(&zeros), Some(Cf::X4));
//! ```

pub mod bdi;
pub mod cpack;
pub mod crc;
pub mod fpc;
pub mod frame;
pub mod range;

pub use frame::IntegrityError;
pub use range::{Cf, RangeCompressor};

/// The cacheline size all compressors are designed around (64 B, Table I).
pub const CACHELINE_BYTES: usize = 64;

/// The sub-block size of Baryon (256 B, §III-B).
pub const SUB_BLOCK_BYTES: usize = 256;

/// Which algorithm produced the winning (smallest) compressed size.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Algorithm {
    /// Frequent Pattern Compression (word-level prefix codes).
    Fpc,
    /// Base-Delta-Immediate compression.
    Bdi,
    /// C-Pack dictionary compression (optional third algorithm).
    CPack,
    /// Data stored uncompressed (no algorithm shrank it).
    Raw,
}

/// Result of compressing one chunk: winning algorithm and byte size.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Compressed {
    /// The smaller of the FPC and BDI encodings (or raw).
    pub algorithm: Algorithm,
    /// Compressed size in bytes, never larger than the input.
    pub size: usize,
}

/// Compresses `data` with both FPC and BDI and returns the better result.
///
/// The returned size is capped at `data.len()`: if neither algorithm helps,
/// the chunk is stored raw ([`Algorithm::Raw`]), exactly as the hardware
/// would fall back to the uncompressed representation.
///
/// # Examples
///
/// ```
/// use baryon_compress::{compress, Algorithm};
/// let zeros = [0u8; 64];
/// let c = compress(&zeros);
/// assert!(c.size <= 8);
/// assert_ne!(c.algorithm, Algorithm::Raw);
/// ```
///
/// # Panics
///
/// Panics if `data` is empty or not a multiple of 8 bytes (hardware
/// compressors operate on word-aligned chunks).
pub fn compress(data: &[u8]) -> Compressed {
    assert!(
        !data.is_empty() && data.len().is_multiple_of(8),
        "compressors need a non-empty multiple of 8 bytes, got {}",
        data.len()
    );
    let fpc = fpc::compressed_size(data);
    let bdi = bdi::compressed_size(data);
    let (algorithm, size) = if fpc <= bdi {
        (Algorithm::Fpc, fpc)
    } else {
        (Algorithm::Bdi, bdi)
    };
    if size >= data.len() {
        Compressed {
            algorithm: Algorithm::Raw,
            size: data.len(),
        }
    } else {
        Compressed { algorithm, size }
    }
}

/// Shorthand for `compress(data).size`.
pub fn best_compressed_size(data: &[u8]) -> usize {
    compress(data).size
}

/// Like [`compress`] but additionally tries the optional C-Pack
/// compressor ([`cpack`]). The paper's default hardware only implements
/// FPC + BDI; this is the "alternative schemes" extension of §III-B.
///
/// # Panics
///
/// Panics if `data` is empty or not a multiple of 8 bytes.
pub fn compress_extended(data: &[u8]) -> Compressed {
    let base = compress(data);
    let cp = cpack::compressed_size(data);
    if cp < base.size {
        Compressed {
            algorithm: Algorithm::CPack,
            size: cp,
        }
    } else {
        base
    }
}

/// Returns true if every byte of `data` is zero (the `Z`-bit case).
///
/// # Examples
///
/// ```
/// assert!(baryon_compress::is_all_zero(&[0u8; 256]));
/// assert!(!baryon_compress::is_all_zero(&[0, 0, 1, 0]));
/// ```
pub fn is_all_zero(data: &[u8]) -> bool {
    data.iter().all(|b| *b == 0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pattern(f: impl Fn(usize) -> u8, n: usize) -> Vec<u8> {
        (0..n).map(f).collect()
    }

    #[test]
    fn zeros_compress_extremely_well() {
        let c = compress(&[0u8; 64]);
        assert!(c.size <= 8, "zero line compressed to {}", c.size);
    }

    #[test]
    fn random_like_data_stays_raw() {
        // A byte pattern with no FPC/BDI structure.
        let data = pattern(|i| (i as u8).wrapping_mul(131).wrapping_add(17) ^ 0x5A, 64);
        let c = compress(&data);
        assert_eq!(c.algorithm, Algorithm::Raw);
        assert_eq!(c.size, 64);
    }

    #[test]
    fn size_never_exceeds_input() {
        for len in [8usize, 64, 128, 256] {
            let data = pattern(|i| i as u8, len);
            assert!(compress(&data).size <= len);
        }
    }

    #[test]
    #[should_panic(expected = "multiple of 8")]
    fn odd_length_panics() {
        compress(&[1, 2, 3]);
    }

    #[test]
    #[should_panic(expected = "multiple of 8")]
    fn empty_panics() {
        compress(&[]);
    }

    #[test]
    fn is_all_zero_works() {
        assert!(is_all_zero(&[]));
        assert!(is_all_zero(&[0; 3]));
        assert!(!is_all_zero(&[0, 1]));
    }

    #[test]
    fn small_ints_pick_a_compressor() {
        let mut data = vec![0u8; 64];
        for (i, w) in data.chunks_exact_mut(4).enumerate() {
            w.copy_from_slice(&(i as u32 + 100).to_le_bytes());
        }
        let c = compress(&data);
        assert_ne!(c.algorithm, Algorithm::Raw);
        assert!(c.size < 40);
    }
}

//! CRC-framed compressed blocks and the typed integrity error.
//!
//! Every compressed block that crosses a device boundary is wrapped in a
//! small frame carrying the winning algorithm, the raw length, and a
//! CRC32 of the *uncompressed* bytes:
//!
//! ```text
//! [algo: u8][raw_len: u16 LE][crc32(raw): u32 LE][compressed payload]
//! ```
//!
//! Checksumming the raw side (not the payload) makes the check
//! end-to-end: [`open`] decompresses first and then verifies, so
//! corruption anywhere in compress → store → fetch → decompress is
//! caught, including decoder bugs. The guarantee is "never silent
//! garbage": `open` either returns exactly the sealed bytes or a typed
//! [`IntegrityError`].
//!
//! # Examples
//!
//! ```
//! use baryon_compress::frame;
//!
//! let data = [7u8; 64];
//! let sealed = frame::seal(&data);
//! assert_eq!(frame::open(&sealed).unwrap(), data);
//!
//! let mut bad = sealed.clone();
//! *bad.last_mut().unwrap() ^= 0x10;
//! assert!(frame::open(&bad).is_err());
//! ```

use crate::crc::crc32;
use crate::{bdi, cpack, fpc, Algorithm};
use std::fmt;

/// Why a compressed block failed its integrity checks.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IntegrityError {
    /// The stream ended before the decoder got the bits it needed.
    Truncated {
        /// What the decoder was reading when it ran out.
        context: &'static str,
    },
    /// The decompressed bytes hash differently than the sealed CRC.
    ChecksumMismatch {
        /// CRC32 recorded in the frame at seal time.
        expected: u32,
        /// CRC32 of what actually decompressed.
        actual: u32,
    },
    /// The decompressed length disagrees with the frame header.
    LengthMismatch {
        /// Raw length recorded in the frame.
        expected: usize,
        /// Length actually produced.
        actual: usize,
    },
    /// Structurally invalid data (bad tag, reserved code, inconsistent
    /// fields).
    Malformed(&'static str),
}

impl fmt::Display for IntegrityError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IntegrityError::Truncated { context } => {
                write!(f, "stream truncated while reading {context}")
            }
            IntegrityError::ChecksumMismatch { expected, actual } => {
                write!(
                    f,
                    "CRC32 mismatch: sealed {expected:#010x}, decoded {actual:#010x}"
                )
            }
            IntegrityError::LengthMismatch { expected, actual } => {
                write!(
                    f,
                    "length mismatch: frame says {expected} bytes, decoded {actual}"
                )
            }
            IntegrityError::Malformed(what) => write!(f, "malformed stream: {what}"),
        }
    }
}

impl std::error::Error for IntegrityError {}

/// Frame header size: algorithm tag + raw length + CRC32.
pub const HEADER_BYTES: usize = 7;

fn algo_tag(algorithm: Algorithm) -> u8 {
    match algorithm {
        Algorithm::Raw => 0,
        Algorithm::Fpc => 1,
        Algorithm::Bdi => 2,
        Algorithm::CPack => 3,
    }
}

fn tag_algo(tag: u8) -> Result<Algorithm, IntegrityError> {
    Ok(match tag {
        0 => Algorithm::Raw,
        1 => Algorithm::Fpc,
        2 => Algorithm::Bdi,
        3 => Algorithm::CPack,
        _ => return Err(IntegrityError::Malformed("unknown algorithm tag")),
    })
}

/// Seals `data` with the algorithm [`crate::compress`] would pick.
///
/// # Panics
///
/// Panics if `data` is empty, longer than `u16::MAX` bytes, or not a
/// multiple of 8 bytes (the same contract as [`crate::compress`]).
pub fn seal(data: &[u8]) -> Vec<u8> {
    seal_with(data, crate::compress(data).algorithm)
}

/// Seals `data` under a caller-chosen algorithm.
///
/// # Panics
///
/// Panics under the same conditions as [`seal`].
pub fn seal_with(data: &[u8], algorithm: Algorithm) -> Vec<u8> {
    assert!(
        !data.is_empty() && data.len().is_multiple_of(8),
        "frames need a non-empty multiple of 8 bytes, got {}",
        data.len()
    );
    assert!(data.len() <= u16::MAX as usize, "block too large to frame");
    let payload = match algorithm {
        Algorithm::Raw => data.to_vec(),
        Algorithm::Fpc => fpc::encode(data),
        Algorithm::Bdi => bdi::encode_bytes(data),
        Algorithm::CPack => cpack::encode(data),
    };
    let mut out = Vec::with_capacity(HEADER_BYTES + payload.len());
    out.push(algo_tag(algorithm));
    out.extend_from_slice(&(data.len() as u16).to_le_bytes());
    out.extend_from_slice(&crc32(data).to_le_bytes());
    out.extend_from_slice(&payload);
    out
}

/// Opens a sealed frame, returning the verified raw bytes.
///
/// # Errors
///
/// Returns a typed [`IntegrityError`] when the frame is truncated, the
/// payload does not decode, the decoded length disagrees with the
/// header, or the decoded bytes fail the CRC. Never returns bytes that
/// differ from what [`seal`] was given.
pub fn open(framed: &[u8]) -> Result<Vec<u8>, IntegrityError> {
    if framed.len() < HEADER_BYTES {
        return Err(IntegrityError::Truncated {
            context: "frame header",
        });
    }
    let algorithm = tag_algo(framed[0])?;
    let raw_len = u16::from_le_bytes([framed[1], framed[2]]) as usize;
    let expected = u32::from_le_bytes([framed[3], framed[4], framed[5], framed[6]]);
    let payload = &framed[HEADER_BYTES..];
    if raw_len == 0 || !raw_len.is_multiple_of(8) {
        return Err(IntegrityError::Malformed("raw length not a word multiple"));
    }
    let raw = match algorithm {
        Algorithm::Raw => {
            if payload.len() < raw_len {
                return Err(IntegrityError::Truncated {
                    context: "raw payload",
                });
            }
            payload[..raw_len].to_vec()
        }
        Algorithm::Fpc => fpc::decode(payload, raw_len / 4)?,
        Algorithm::Bdi => bdi::decode_bytes(payload)?,
        Algorithm::CPack => cpack::decode(payload, raw_len / 4)?,
    };
    if raw.len() != raw_len {
        return Err(IntegrityError::LengthMismatch {
            expected: raw_len,
            actual: raw.len(),
        });
    }
    let actual = crc32(&raw);
    if actual != expected {
        return Err(IntegrityError::ChecksumMismatch { expected, actual });
    }
    Ok(raw)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn patterns() -> Vec<Vec<u8>> {
        let mut cases: Vec<Vec<u8>> = vec![
            vec![0u8; 64],
            vec![0u8; 256],
            (0..64).map(|i| i as u8).collect(),
            (0..256)
                .map(|i| (i as u8).wrapping_mul(131) ^ 0x5A)
                .collect(),
        ];
        // Pointer-like data (BDI territory).
        let mut ptrs = Vec::new();
        for i in 0..32u64 {
            ptrs.extend_from_slice(&(0x7F00_0000_1000u64 + i * 16).to_le_bytes());
        }
        cases.push(ptrs);
        // Small ints (FPC territory).
        let mut ints = Vec::new();
        for i in 0..64u32 {
            ints.extend_from_slice(&(i % 7).to_le_bytes());
        }
        cases.push(ints);
        cases
    }

    #[test]
    fn seal_open_roundtrip_all_algorithms() {
        for data in patterns() {
            for algo in [
                Algorithm::Raw,
                Algorithm::Fpc,
                Algorithm::Bdi,
                Algorithm::CPack,
            ] {
                let sealed = seal_with(&data, algo);
                assert_eq!(
                    open(&sealed).expect("clean frame opens"),
                    data,
                    "roundtrip failed for {algo:?}"
                );
            }
            let sealed = seal(&data);
            assert_eq!(open(&sealed).unwrap(), data);
        }
    }

    #[test]
    fn every_single_bit_flip_is_never_silent_garbage() {
        // The core guarantee: a corrupted frame either fails to open or
        // opens to exactly the original bytes (a flip in dead padding).
        for data in patterns() {
            let sealed = seal(&data);
            for bit in 0..sealed.len() * 8 {
                let mut bad = sealed.clone();
                bad[bit / 8] ^= 1 << (bit % 8);
                match open(&bad) {
                    Err(_) => {}
                    Ok(got) => assert_eq!(got, data, "bit {bit} flip produced silent garbage"),
                }
            }
        }
    }

    #[test]
    fn truncated_frames_are_typed_errors() {
        let sealed = seal(&[5u8; 64]);
        for len in 0..HEADER_BYTES {
            assert_eq!(
                open(&sealed[..len]),
                Err(IntegrityError::Truncated {
                    context: "frame header"
                })
            );
        }
        // Chopping the payload is detected too (truncated or CRC).
        assert!(open(&sealed[..sealed.len() - 1]).is_err());
    }

    #[test]
    fn errors_render_helpfully() {
        let e = IntegrityError::ChecksumMismatch {
            expected: 0xDEAD_BEEF,
            actual: 0,
        };
        assert!(e.to_string().contains("0xdeadbeef"));
        let e = IntegrityError::Truncated { context: "header" };
        assert!(e.to_string().contains("header"));
    }
}

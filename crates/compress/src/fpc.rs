//! Frequent Pattern Compression (FPC).
//!
//! FPC [Alameldeen & Wood, 2004] scans a chunk as 32-bit words and encodes
//! each word with a 3-bit prefix selecting one of eight frequent patterns:
//!
//! | prefix | pattern                                   | payload bits |
//! |--------|-------------------------------------------|--------------|
//! | 000    | run of 1–8 zero words                     | 3            |
//! | 001    | 4-bit sign-extended                       | 4            |
//! | 010    | 8-bit sign-extended                       | 8            |
//! | 011    | 16-bit sign-extended                      | 16           |
//! | 100    | halfword padded with a zero halfword      | 16           |
//! | 101    | two halfwords, each 8-bit sign-extended   | 16           |
//! | 110    | word of repeated bytes                    | 8            |
//! | 111    | uncompressed word                         | 32           |
//!
//! [`compressed_size`] is the size model used in the simulator's hot path;
//! [`encode`]/[`decode`] are a real lossless bitstream used to validate it.

use crate::frame::IntegrityError;

/// A little-endian bit stream writer used by the FPC encoder.
#[derive(Debug, Default, Clone)]
pub struct BitWriter {
    bits: Vec<bool>,
}

impl BitWriter {
    /// Creates an empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends the low `n` bits of `value`, LSB first.
    pub fn push(&mut self, value: u32, n: usize) {
        for i in 0..n {
            self.bits.push((value >> i) & 1 == 1);
        }
    }

    /// Number of bits written so far.
    pub fn len(&self) -> usize {
        self.bits.len()
    }

    /// True if nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.bits.is_empty()
    }

    /// Packs the bits into bytes (zero-padded).
    pub fn into_bytes(self) -> Vec<u8> {
        let mut out = vec![0u8; self.bits.len().div_ceil(8)];
        for (i, bit) in self.bits.iter().enumerate() {
            if *bit {
                out[i / 8] |= 1 << (i % 8);
            }
        }
        out
    }
}

/// A little-endian bit stream reader matching [`BitWriter`].
#[derive(Debug, Clone)]
pub struct BitReader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> BitReader<'a> {
    /// Wraps a byte slice.
    pub fn new(bytes: &'a [u8]) -> Self {
        BitReader { bytes, pos: 0 }
    }

    /// Reads `n` bits, LSB first, or `None` if the stream is exhausted.
    pub fn try_read(&mut self, n: usize) -> Option<u32> {
        if self.pos + n > self.bytes.len() * 8 {
            self.pos = self.bytes.len() * 8;
            return None;
        }
        let mut v = 0u32;
        for i in 0..n {
            let byte = self.bytes[self.pos / 8];
            if (byte >> (self.pos % 8)) & 1 == 1 {
                v |= 1 << i;
            }
            self.pos += 1;
        }
        Some(v)
    }

    /// Reads `n` bits, LSB first.
    ///
    /// # Panics
    ///
    /// Panics if the stream is exhausted; decoders use
    /// [`BitReader::try_read`] and surface a typed error instead.
    pub fn read(&mut self, n: usize) -> u32 {
        self.try_read(n).expect("bit stream exhausted")
    }
}

/// Per-word FPC classification.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Pattern {
    Zero,
    Se4,
    Se8,
    Se16,
    HalfPadded,
    TwoHalfSe8,
    RepBytes,
    Raw,
}

fn sign_extends(word: u32, bits: u32) -> bool {
    let shift = 32 - bits;
    (((word as i32) << shift) >> shift) as u32 == word
}

fn classify(word: u32) -> Pattern {
    if word == 0 {
        Pattern::Zero
    } else if sign_extends(word, 4) {
        Pattern::Se4
    } else if sign_extends(word, 8) {
        Pattern::Se8
    } else if sign_extends(word, 16) {
        Pattern::Se16
    } else if word & 0xFFFF == 0 {
        Pattern::HalfPadded
    } else if sign_extends16(word as u16) && sign_extends16((word >> 16) as u16) {
        Pattern::TwoHalfSe8
    } else if word.to_le_bytes().windows(2).all(|w| w[0] == w[1]) {
        Pattern::RepBytes
    } else {
        Pattern::Raw
    }
}

fn sign_extends16(half: u16) -> bool {
    (((half as i16) << 8) >> 8) as u16 == half
}

fn payload_bits(p: Pattern) -> usize {
    match p {
        Pattern::Zero => 3,
        Pattern::Se4 => 4,
        Pattern::Se8 => 8,
        Pattern::Se16 | Pattern::HalfPadded | Pattern::TwoHalfSe8 => 16,
        Pattern::RepBytes => 8,
        Pattern::Raw => 32,
    }
}

fn prefix(p: Pattern) -> u32 {
    match p {
        Pattern::Zero => 0b000,
        Pattern::Se4 => 0b001,
        Pattern::Se8 => 0b010,
        Pattern::Se16 => 0b011,
        Pattern::HalfPadded => 0b100,
        Pattern::TwoHalfSe8 => 0b101,
        Pattern::RepBytes => 0b110,
        Pattern::Raw => 0b111,
    }
}

fn words(data: &[u8]) -> impl Iterator<Item = u32> + '_ {
    data.chunks_exact(4)
        .map(|c| u32::from_le_bytes(c.try_into().expect("4-byte chunk")))
}

/// Computes the FPC-compressed size of `data` in bytes.
///
/// Runs of up to eight zero words collapse into a single 6-bit token.
/// The result is the bit count rounded up to whole bytes and is *not*
/// capped at the input size (callers cap via `compress`).
///
/// # Examples
///
/// ```
/// // 64 zero bytes = 16 zero words = two 8-runs = 12 bits -> 2 bytes.
/// assert_eq!(baryon_compress::fpc::compressed_size(&[0u8; 64]), 2);
/// ```
///
/// # Panics
///
/// Panics if `data` is not a multiple of 4 bytes.
pub fn compressed_size(data: &[u8]) -> usize {
    assert!(data.len().is_multiple_of(4), "FPC needs whole 32-bit words");
    let mut bits = 0usize;
    let mut zero_run = 0u32;
    for word in words(data) {
        if word == 0 {
            zero_run += 1;
            if zero_run == 8 {
                bits += 3 + 3;
                zero_run = 0;
            }
        } else {
            if zero_run > 0 {
                bits += 3 + 3;
                zero_run = 0;
            }
            let p = classify(word);
            bits += 3 + payload_bits(p);
        }
    }
    if zero_run > 0 {
        bits += 3 + 3;
    }
    bits.div_ceil(8)
}

/// Losslessly FPC-encodes `data` into a packed bitstream.
///
/// # Panics
///
/// Panics if `data` is not a multiple of 4 bytes.
pub fn encode(data: &[u8]) -> Vec<u8> {
    assert!(data.len().is_multiple_of(4), "FPC needs whole 32-bit words");
    let mut w = BitWriter::new();
    let mut zero_run = 0u32;
    let flush_run = |w: &mut BitWriter, run: &mut u32| {
        if *run > 0 {
            w.push(prefix(Pattern::Zero), 3);
            w.push(*run - 1, 3);
            *run = 0;
        }
    };
    for word in words(data) {
        if word == 0 {
            zero_run += 1;
            if zero_run == 8 {
                flush_run(&mut w, &mut zero_run);
            }
            continue;
        }
        flush_run(&mut w, &mut zero_run);
        let p = classify(word);
        w.push(prefix(p), 3);
        match p {
            Pattern::Zero => unreachable!("zero handled via runs"),
            Pattern::Se4 => w.push(word & 0xF, 4),
            Pattern::Se8 => w.push(word & 0xFF, 8),
            Pattern::Se16 => w.push(word & 0xFFFF, 16),
            Pattern::HalfPadded => w.push(word >> 16, 16),
            Pattern::TwoHalfSe8 => {
                w.push(word & 0xFF, 8);
                w.push((word >> 16) & 0xFF, 8);
            }
            Pattern::RepBytes => w.push(word & 0xFF, 8),
            Pattern::Raw => w.push(word, 32),
        }
    }
    flush_run(&mut w, &mut zero_run);
    w.into_bytes()
}

/// Decodes an [`encode`]d stream back into `word_count` 32-bit words.
///
/// # Errors
///
/// Returns [`IntegrityError::Truncated`] when the stream runs out of
/// bits before `word_count` words are reconstructed.
pub fn decode(stream: &[u8], word_count: usize) -> Result<Vec<u8>, IntegrityError> {
    let mut r = BitReader::new(stream);
    let mut out: Vec<u8> = Vec::with_capacity(word_count * 4);
    let need = |context| IntegrityError::Truncated { context };
    while out.len() < word_count * 4 {
        let pfx = r.try_read(3).ok_or(need("FPC prefix"))?;
        let word: u32 = match pfx {
            0b000 => {
                let run = r.try_read(3).ok_or(need("FPC zero-run length"))? + 1;
                for _ in 0..run {
                    out.extend_from_slice(&0u32.to_le_bytes());
                }
                continue;
            }
            0b001 => sign_extend(r.try_read(4).ok_or(need("FPC payload"))?, 4),
            0b010 => sign_extend(r.try_read(8).ok_or(need("FPC payload"))?, 8),
            0b011 => sign_extend(r.try_read(16).ok_or(need("FPC payload"))?, 16),
            0b100 => r.try_read(16).ok_or(need("FPC payload"))? << 16,
            0b101 => {
                let lo = sign_extend(r.try_read(8).ok_or(need("FPC payload"))?, 8) & 0xFFFF;
                let hi = sign_extend(r.try_read(8).ok_or(need("FPC payload"))?, 8) & 0xFFFF;
                lo | (hi << 16)
            }
            0b110 => {
                let b = r.try_read(8).ok_or(need("FPC payload"))?;
                b | (b << 8) | (b << 16) | (b << 24)
            }
            0b111 => r.try_read(32).ok_or(need("FPC payload"))?,
            _ => unreachable!("3-bit prefix"),
        };
        out.extend_from_slice(&word.to_le_bytes());
    }
    out.truncate(word_count * 4);
    Ok(out)
}

fn sign_extend(v: u32, bits: u32) -> u32 {
    let shift = 32 - bits;
    (((v as i32) << shift) >> shift) as u32
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(data: &[u8]) {
        let enc = encode(data);
        let dec = decode(&enc, data.len() / 4).expect("clean stream decodes");
        assert_eq!(dec, data, "FPC roundtrip failed");
        // The size model must match the real encoder exactly.
        assert_eq!(enc.len(), compressed_size(data));
    }

    #[test]
    fn truncated_streams_are_errors_not_garbage() {
        let mut data = Vec::new();
        for i in 0..16u32 {
            data.extend_from_slice(&(0x1234_5678u32.wrapping_mul(i + 3)).to_le_bytes());
        }
        let enc = encode(&data);
        for cut in 0..enc.len() {
            assert!(
                matches!(
                    decode(&enc[..cut], data.len() / 4),
                    Err(IntegrityError::Truncated { .. })
                ),
                "cut at {cut} should be a typed truncation error"
            );
        }
    }

    #[test]
    fn zero_line() {
        roundtrip(&[0u8; 64]);
        assert_eq!(compressed_size(&[0u8; 64]), 2);
    }

    #[test]
    fn small_signed_values() {
        let mut data = Vec::new();
        for v in [-3i32, 5, -8, 7, 0, 2, -1, 6, 3, -5, 1, 4, -2, 0, 7, -6] {
            data.extend_from_slice(&(v as u32).to_le_bytes());
        }
        roundtrip(&data);
        assert!(compressed_size(&data) < 24);
    }

    #[test]
    fn halfword_padded() {
        let mut data = Vec::new();
        for v in [0x1234_0000u32, 0xABCD_0000, 0x8000_0000, 0x0001_0000] {
            data.extend_from_slice(&v.to_le_bytes());
        }
        roundtrip(&data);
        assert!(compressed_size(&data) < 16);
    }

    #[test]
    fn two_half_se8() {
        // Halves that genuinely sign-extend from 8 bits: hi=18, lo=-12.
        let w = 0x0012_FFF4u32;
        let mut data = Vec::new();
        for _ in 0..8 {
            data.extend_from_slice(&w.to_le_bytes());
        }
        roundtrip(&data);
    }

    #[test]
    fn repeated_bytes() {
        let mut data = Vec::new();
        for b in [0x7Au8, 0x55, 0xAA, 0x33] {
            data.extend_from_slice(&u32::from_le_bytes([b; 4]).to_le_bytes());
        }
        roundtrip(&data);
        assert!(compressed_size(&data) <= 8);
    }

    #[test]
    fn incompressible_words() {
        let mut data = Vec::new();
        for i in 0..16u32 {
            data.extend_from_slice(
                &(0x1234_5678u32.wrapping_mul(i + 3) | 0x0101_0100).to_le_bytes(),
            );
        }
        roundtrip(&data);
        // 3 prefix + 32 payload per word, 16 words = 560 bits = 70 bytes.
        assert!(compressed_size(&data) >= 64);
    }

    #[test]
    fn long_zero_runs_collapse() {
        // 64 zero words = 8 full runs = 48 bits = 6 bytes.
        assert_eq!(compressed_size(&[0u8; 256]), 6);
    }

    #[test]
    fn mixed_content_roundtrip() {
        let mut data = Vec::new();
        for i in 0..64u32 {
            let w = match i % 5 {
                0 => 0,
                1 => i,
                2 => 0xDEAD_0000,
                3 => u32::from_le_bytes([i as u8; 4]),
                _ => 0x9234_5678 ^ i.rotate_left(13),
            };
            data.extend_from_slice(&w.to_le_bytes());
        }
        roundtrip(&data);
    }

    #[test]
    #[should_panic(expected = "32-bit words")]
    fn non_word_multiple_panics() {
        compressed_size(&[0u8; 6]);
    }

    #[test]
    fn bitio_roundtrip() {
        let mut w = BitWriter::new();
        w.push(0b101, 3);
        w.push(0xABCD, 16);
        w.push(1, 1);
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes);
        assert_eq!(r.read(3), 0b101);
        assert_eq!(r.read(16), 0xABCD);
        assert_eq!(r.read(1), 1);
    }
}

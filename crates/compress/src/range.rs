//! Baryon's contiguous-and-aligned range compression (§III-B, §III-E).
//!
//! Baryon fetches sub-blocks in *contiguous, aligned ranges* of 1, 2, or 4
//! sub-blocks (Rule 2), each range compressed into exactly one 256 B physical
//! sub-block slot, giving a compression factor ([`Cf`]) of 1, 2, or 4.
//!
//! With **cacheline-aligned compression** (Fig 7), a CF = n range must have
//! every 64·n-byte chunk *independently* compressible to ≤ 64 B, so a single
//! DDRx 64 B burst can be decompressed without fetching the rest of the slot.
//! Without it (the Fig 12 ablation), the whole 256·n bytes only need to
//! compress to ≤ 256 B jointly, which compresses better but forces the whole
//! slot to be transferred per access.

use crate::{best_compressed_size, compress_extended, CACHELINE_BYTES, SUB_BLOCK_BYTES};

/// A Baryon compression factor: how many 256 B sub-blocks fit in one slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Cf {
    /// Uncompressed: one sub-block per slot.
    X1,
    /// Two sub-blocks per slot.
    X2,
    /// Four sub-blocks per slot.
    X4,
}

impl Cf {
    /// The numeric factor (1, 2, or 4).
    pub fn factor(self) -> usize {
        match self {
            Cf::X1 => 1,
            Cf::X2 => 2,
            Cf::X4 => 4,
        }
    }

    /// Number of sub-blocks covered by a range of this CF.
    pub fn sub_blocks(self) -> usize {
        self.factor()
    }

    /// All CFs from largest to smallest, the order fetch trials run in.
    pub fn descending() -> [Cf; 3] {
        [Cf::X4, Cf::X2, Cf::X1]
    }

    /// Builds a CF from its numeric factor.
    ///
    /// # Examples
    ///
    /// ```
    /// use baryon_compress::Cf;
    /// assert_eq!(Cf::from_factor(4), Some(Cf::X4));
    /// assert_eq!(Cf::from_factor(3), None);
    /// ```
    pub fn from_factor(factor: usize) -> Option<Cf> {
        match factor {
            1 => Some(Cf::X1),
            2 => Some(Cf::X2),
            4 => Some(Cf::X4),
            _ => None,
        }
    }
}

impl std::fmt::Display for Cf {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}x", self.factor())
    }
}

/// Decides whether sub-block ranges fit in one slot under a compression mode.
///
/// The sub-block (slot) size defaults to Baryon's 256 B but is configurable
/// for the Baryon-64B variant evaluated in Fig 9.
///
/// # Examples
///
/// ```
/// use baryon_compress::{Cf, RangeCompressor};
///
/// let rc = RangeCompressor::cacheline_aligned();
/// // 512 B of zeros: both 256 B chunks compress to ≤ 64 B, so CF=2 fits.
/// assert!(rc.fits(&vec![0u8; 512], Cf::X2));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RangeCompressor {
    cacheline_aligned: bool,
    sub_bytes: usize,
    cpack: bool,
}

impl RangeCompressor {
    /// The default Baryon mode: every 64·n-byte chunk independently
    /// compressible (Fig 7 right), 256 B sub-blocks.
    pub fn cacheline_aligned() -> Self {
        RangeCompressor {
            cacheline_aligned: true,
            sub_bytes: SUB_BLOCK_BYTES,
            cpack: false,
        }
    }

    /// The ablation mode: the range only needs to compress jointly
    /// (Fig 7 left / Fig 12 "w/o cacheline-aligned"), 256 B sub-blocks.
    pub fn whole_range() -> Self {
        RangeCompressor {
            cacheline_aligned: false,
            sub_bytes: SUB_BLOCK_BYTES,
            cpack: false,
        }
    }

    /// Returns a copy using a different sub-block (slot) size.
    ///
    /// # Panics
    ///
    /// Panics unless `sub_bytes` is a multiple of 64.
    pub fn with_sub_bytes(mut self, sub_bytes: usize) -> Self {
        assert!(
            sub_bytes >= CACHELINE_BYTES && sub_bytes.is_multiple_of(CACHELINE_BYTES),
            "sub-block size must be a multiple of 64 B"
        );
        self.sub_bytes = sub_bytes;
        self
    }

    /// Returns a copy that also tries the C-Pack compressor (an extension
    /// beyond the paper's FPC + BDI hardware).
    pub fn with_cpack(mut self) -> Self {
        self.cpack = true;
        self
    }

    /// Whether cacheline-aligned chunking is enforced.
    pub fn is_cacheline_aligned(&self) -> bool {
        self.cacheline_aligned
    }

    /// The best compressed size of a chunk under this compressor set.
    pub fn chunk_size(&self, data: &[u8]) -> usize {
        if self.cpack {
            compress_extended(data).size
        } else {
            best_compressed_size(data)
        }
    }

    /// The sub-block (slot) size in bytes.
    pub fn sub_bytes(&self) -> usize {
        self.sub_bytes
    }

    /// Does a range of `cf.sub_blocks()` sub-blocks, whose raw bytes are
    /// `data`, fit in one sub-block slot at compression factor `cf`?
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != cf.sub_blocks() * self.sub_bytes()`.
    pub fn fits(&self, data: &[u8], cf: Cf) -> bool {
        assert_eq!(
            data.len(),
            cf.sub_blocks() * self.sub_bytes,
            "range data must be exactly {} sub-blocks",
            cf.sub_blocks()
        );
        match cf {
            Cf::X1 => true, // an uncompressed sub-block always fits its slot
            _ => {
                if self.cacheline_aligned {
                    let chunk = CACHELINE_BYTES * cf.factor();
                    data.chunks_exact(chunk)
                        .all(|c| self.chunk_size(c) <= CACHELINE_BYTES)
                } else {
                    self.chunk_size(data) <= self.sub_bytes
                }
            }
        }
    }

    /// The largest CF at which `data` (which must be exactly 4 sub-blocks,
    /// i.e. a maximal candidate range) can be stored: tries CF=4 over the
    /// whole window, then CF=2 over the aligned half containing `pos`, then
    /// CF=1.
    ///
    /// `pos` is the index (0–3) of the demanded sub-block within the 4-range.
    ///
    /// Returns the chosen CF and the offset (in sub-blocks, relative to the
    /// 4-range start) of the chosen range.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != 4 * self.sub_bytes()` or `pos >= 4`.
    pub fn best_range(&self, data: &[u8], pos: usize) -> (Cf, usize) {
        assert_eq!(
            data.len(),
            4 * self.sub_bytes,
            "need a full 4-sub-block window"
        );
        assert!(pos < 4, "pos must be 0..4");
        if self.fits(data, Cf::X4) {
            return (Cf::X4, 0);
        }
        let half = pos / 2;
        let half_data = &data[half * 2 * self.sub_bytes..(half + 1) * 2 * self.sub_bytes];
        if self.fits(half_data, Cf::X2) {
            return (Cf::X2, half * 2);
        }
        (Cf::X1, pos)
    }

    /// The maximum CF for a buffer that is exactly 1, 2, or 4 sub-blocks,
    /// testing the whole buffer as a single range.
    ///
    /// Returns `None` if the buffer length is not 1, 2, or 4 sub-blocks.
    pub fn max_cf(&self, data: &[u8]) -> Option<Cf> {
        if !data.len().is_multiple_of(self.sub_bytes) {
            return None;
        }
        let cf = Cf::from_factor(data.len() / self.sub_bytes)?;
        self.fits(data, cf).then_some(cf)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn compressible(n: usize) -> Vec<u8> {
        // Small 32-bit integers: FPC-friendly everywhere.
        let mut v = Vec::with_capacity(n);
        let mut i = 0u32;
        while v.len() < n {
            v.extend_from_slice(&(i % 7).to_le_bytes());
            i += 1;
        }
        v
    }

    fn incompressible(n: usize) -> Vec<u8> {
        let mut v = Vec::with_capacity(n);
        let mut x = 0x9E37_79B9_7F4A_7C15u64;
        while v.len() < n {
            x = x
                .wrapping_mul(0xD120_0000_0FB3_C1E7)
                .wrapping_add(0x2545_F491_4F6C_DD1D);
            v.extend_from_slice(&x.to_le_bytes());
        }
        v
    }

    #[test]
    fn cf_factors() {
        assert_eq!(Cf::X1.factor(), 1);
        assert_eq!(Cf::X2.factor(), 2);
        assert_eq!(Cf::X4.factor(), 4);
        assert_eq!(Cf::descending(), [Cf::X4, Cf::X2, Cf::X1]);
    }

    #[test]
    fn cf1_always_fits() {
        let rc = RangeCompressor::cacheline_aligned();
        assert!(rc.fits(&incompressible(256), Cf::X1));
    }

    #[test]
    fn zeros_fit_cf4_both_modes() {
        for rc in [
            RangeCompressor::cacheline_aligned(),
            RangeCompressor::whole_range(),
        ] {
            assert!(rc.fits(&vec![0u8; 1024], Cf::X4));
        }
    }

    #[test]
    fn incompressible_fails_cf2() {
        let rc = RangeCompressor::cacheline_aligned();
        assert!(!rc.fits(&incompressible(512), Cf::X2));
    }

    #[test]
    fn cacheline_aligned_is_stricter() {
        // Build 512 B that compresses jointly but where one 128 B chunk does
        // not independently reach 2x: half small ints, half random.
        let mut data = compressible(384);
        data.extend_from_slice(&incompressible(128));
        let loose = RangeCompressor::whole_range();
        let strict = RangeCompressor::cacheline_aligned();
        if loose.fits(&data, Cf::X2) {
            assert!(!strict.fits(&data, Cf::X2));
        } else {
            // At minimum, strict can never accept what loose rejects.
            assert!(!strict.fits(&data, Cf::X2));
        }
    }

    #[test]
    fn best_range_prefers_cf4() {
        let rc = RangeCompressor::cacheline_aligned();
        let (cf, off) = rc.best_range(&compressible(1024), 2);
        assert_eq!(cf, Cf::X4);
        assert_eq!(off, 0);
    }

    #[test]
    fn best_range_falls_back_to_half() {
        let rc = RangeCompressor::cacheline_aligned();
        // First half compressible, second half random; demand sub-block 0.
        let mut data = compressible(512);
        data.extend_from_slice(&incompressible(512));
        let (cf, off) = rc.best_range(&data, 0);
        assert_eq!(cf, Cf::X2);
        assert_eq!(off, 0);
        // Demand sub-block 3: its half is random, so CF1 at its position.
        let (cf, off) = rc.best_range(&data, 3);
        assert_eq!(cf, Cf::X1);
        assert_eq!(off, 3);
    }

    #[test]
    fn best_range_all_raw() {
        let rc = RangeCompressor::cacheline_aligned();
        let (cf, off) = rc.best_range(&incompressible(1024), 1);
        assert_eq!(cf, Cf::X1);
        assert_eq!(off, 1);
    }

    #[test]
    fn max_cf_checks_length() {
        let rc = RangeCompressor::cacheline_aligned();
        assert_eq!(rc.max_cf(&vec![0u8; 768]), None);
        assert_eq!(rc.max_cf(&vec![0u8; 512]), Some(Cf::X2));
        assert_eq!(rc.max_cf(&incompressible(512)), None);
    }

    #[test]
    #[should_panic(expected = "exactly")]
    fn fits_length_mismatch_panics() {
        RangeCompressor::cacheline_aligned().fits(&[0u8; 100], Cf::X1);
    }

    #[test]
    fn from_factor_roundtrip() {
        for cf in Cf::descending() {
            assert_eq!(Cf::from_factor(cf.factor()), Some(cf));
        }
    }

    #[test]
    fn display() {
        assert_eq!(Cf::X4.to_string(), "4x");
    }
}

//! The workload catalog: scaled analogues of the paper's benchmark suite.

use crate::content::{MemoryContents, ProfileMix};
use crate::gens::{BfsGen, ChaseGen, GraphGen, StreamGen, TensorGen, ZipfGen};
use crate::trace::TraceGen;
use baryon_sim::rng::mix64;

/// The capacity scale of an experiment.
///
/// The paper simulates 4 GB fast + 32 GB slow memory and GB-scale footprints.
/// Experiments here divide all capacities and footprints by `divisor`
/// (default 256: 16 MB fast + 128 MB slow) while keeping block, sub-block,
/// super-block and cacheline sizes unchanged.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Scale {
    /// Capacity divisor relative to the paper's configuration.
    pub divisor: u64,
}

impl Default for Scale {
    fn default() -> Self {
        Scale { divisor: 256 }
    }
}

impl Scale {
    /// Scaled fast-memory capacity in bytes (paper: 4 GB).
    pub fn fast_bytes(&self) -> u64 {
        (4 << 30) / self.divisor
    }

    /// Scaled slow-memory capacity in bytes (paper: 32 GB).
    pub fn slow_bytes(&self) -> u64 {
        (32 << 30) / self.divisor
    }

    /// Scales a paper-scale footprint given in GB to bytes, 2 kB aligned.
    pub fn gb(&self, paper_gb: f64) -> u64 {
        let bytes = (paper_gb * (1u64 << 30) as f64 / self.divisor as f64) as u64;
        bytes & !2047
    }
}

/// The access-pattern family and parameters of one workload.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum WorkloadKind {
    /// Interleaved sequential array sweeps.
    Stream {
        /// Total number of concurrent arrays.
        streams: usize,
        /// How many of them are written.
        write_streams: usize,
    },
    /// Pointer chasing with block-level locality `stay`.
    Chase {
        /// Probability of staying within the current 2 kB block.
        stay: f64,
        /// Fraction of stores.
        write_frac: f64,
    },
    /// YCSB-style zipfian key-value store.
    Zipf {
        /// Record size in bytes.
        record_bytes: u64,
        /// Zipf skew.
        theta: f64,
        /// Fraction of update queries.
        update_frac: f64,
    },
    /// GAP-style graph iteration.
    Graph {
        /// Mean out-degree.
        mean_degree: u32,
        /// Gather popularity skew.
        skew: f64,
    },
    /// GAP-style direction-optimizing breadth-first search.
    Bfs,
    /// CNN inference sweeps.
    Tensor {
        /// Layers per batch.
        layers: u32,
    },
}

/// A workload: pattern, footprint, value contents and instruction mix.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Workload {
    /// Name matching the paper's figures (e.g. `505.mcf_r`, `pr.twi`).
    pub name: &'static str,
    /// Pattern family and parameters.
    pub kind: WorkloadKind,
    /// Total footprint in bytes (already scaled).
    pub footprint: u64,
    /// Value-content mixture controlling compressibility.
    pub mix: ProfileMix,
    /// Mean non-memory instructions between memory ops.
    pub mean_gap: f64,
    /// True if all cores share one address space (GAP/DNN/YCSB);
    /// false for SPEC rate mode (16 private copies).
    pub shared: bool,
}

impl Workload {
    /// Builds the memory-content model for this workload.
    pub fn contents(&self, seed: u64) -> MemoryContents {
        MemoryContents::new(self.mix, mix64(seed, name_hash(self.name)))
    }

    /// Spawns the trace generator for one core.
    ///
    /// # Panics
    ///
    /// Panics if `core >= cores` or `cores == 0`.
    pub fn spawn_core(&self, core: usize, cores: usize, seed: u64) -> Box<dyn TraceGen> {
        assert!(cores > 0 && core < cores, "core {core} of {cores}");
        let gen_seed = mix64(mix64(seed, name_hash(self.name)), core as u64 + 1);
        let (base, size) = if self.shared {
            (0, self.footprint)
        } else {
            let per_core = (self.footprint / cores as u64) & !2047;
            (core as u64 * per_core, per_core)
        };
        match self.kind {
            WorkloadKind::Stream {
                streams,
                write_streams,
            } => Box::new(StreamGen::new(
                base,
                size,
                streams,
                write_streams,
                self.mean_gap,
                gen_seed,
            )),
            WorkloadKind::Chase { stay, write_frac } => Box::new(ChaseGen::new(
                base,
                size,
                stay,
                write_frac,
                self.mean_gap,
                gen_seed,
            )),
            WorkloadKind::Zipf {
                record_bytes,
                theta,
                update_frac,
            } => Box::new(ZipfGen::new(
                base,
                size / record_bytes,
                record_bytes,
                theta,
                update_frac,
                self.mean_gap,
                gen_seed,
            )),
            WorkloadKind::Graph { mean_degree, skew } => Box::new(GraphGen::new(
                base,
                size,
                mean_degree,
                skew,
                self.mean_gap,
                gen_seed,
            )),
            WorkloadKind::Bfs => Box::new(BfsGen::new(base, size, self.mean_gap, gen_seed)),
            WorkloadKind::Tensor { layers } => {
                Box::new(TensorGen::new(base, size, layers, self.mean_gap, gen_seed))
            }
        }
    }
}

fn name_hash(name: &str) -> u64 {
    name.bytes().fold(0xcbf2_9ce4_8422_2325u64, |h, b| {
        (h ^ b as u64).wrapping_mul(0x1000_0000_01b3)
    })
}

/// The full workload suite at a given scale, in the order the paper's
/// figures list them.
pub fn registry(scale: Scale) -> Vec<Workload> {
    let s = &scale;
    vec![
        // ----- SPEC CPU2017 (rate mode, 16 private copies) -----
        Workload {
            name: "503.bwaves_r",
            kind: WorkloadKind::Stream {
                streams: 5,
                write_streams: 1,
            },
            footprint: s.gb(11.4),
            mix: ProfileMix {
                zero: 0.1,
                narrow_int: 0.1,
                pointer: 0.0,
                float_similar: 0.4,
                float_random: 0.4,
                text: 0.0,
                random: 0.0,
            },
            mean_gap: 5.0,
            shared: false,
        },
        Workload {
            name: "505.mcf_r",
            kind: WorkloadKind::Chase {
                stay: 0.85,
                write_frac: 0.25,
            },
            footprint: s.gb(8.3),
            mix: ProfileMix {
                zero: 0.05,
                narrow_int: 0.45,
                pointer: 0.3,
                float_similar: 0.0,
                float_random: 0.0,
                text: 0.0,
                random: 0.2,
            },
            mean_gap: 8.0,
            shared: false,
        },
        Workload {
            name: "507.cactuBSSN_r",
            kind: WorkloadKind::Stream {
                streams: 8,
                write_streams: 2,
            },
            footprint: s.gb(7.1),
            mix: ProfileMix {
                zero: 0.2,
                narrow_int: 0.0,
                pointer: 0.0,
                float_similar: 0.35,
                float_random: 0.45,
                text: 0.0,
                random: 0.0,
            },
            mean_gap: 7.0,
            shared: false,
        },
        Workload {
            name: "519.lbm_r",
            kind: WorkloadKind::Stream {
                streams: 4,
                write_streams: 2,
            },
            footprint: s.gb(6.9),
            mix: ProfileMix {
                zero: 0.0,
                narrow_int: 0.0,
                pointer: 0.0,
                float_similar: 0.02,
                float_random: 0.88,
                text: 0.0,
                random: 0.10,
            },
            mean_gap: 6.0,
            shared: false,
        },
        Workload {
            name: "520.omnetpp_r",
            kind: WorkloadKind::Chase {
                stay: 0.75,
                write_frac: 0.3,
            },
            footprint: s.gb(6.2),
            mix: ProfileMix {
                zero: 0.1,
                narrow_int: 0.3,
                pointer: 0.35,
                float_similar: 0.0,
                float_random: 0.0,
                text: 0.15,
                random: 0.1,
            },
            mean_gap: 10.0,
            shared: false,
        },
        Workload {
            name: "549.fotonik3d_r",
            kind: WorkloadKind::Stream {
                streams: 6,
                write_streams: 2,
            },
            footprint: s.gb(13.4),
            mix: ProfileMix {
                zero: 0.3,
                narrow_int: 0.18,
                pointer: 0.0,
                float_similar: 0.5,
                float_random: 0.02,
                text: 0.0,
                random: 0.0,
            },
            mean_gap: 5.0,
            shared: false,
        },
        Workload {
            name: "554.roms_r",
            kind: WorkloadKind::Stream {
                streams: 4,
                write_streams: 1,
            },
            footprint: s.gb(10.2),
            mix: ProfileMix {
                zero: 0.2,
                narrow_int: 0.0,
                pointer: 0.0,
                float_similar: 0.3,
                float_random: 0.5,
                text: 0.0,
                random: 0.0,
            },
            mean_gap: 6.0,
            shared: false,
        },
        Workload {
            name: "557.xz_r",
            kind: WorkloadKind::Chase {
                stay: 0.55,
                write_frac: 0.3,
            },
            footprint: s.gb(5.8),
            mix: ProfileMix {
                zero: 0.05,
                narrow_int: 0.25,
                pointer: 0.0,
                float_similar: 0.0,
                float_random: 0.0,
                text: 0.3,
                random: 0.4,
            },
            mean_gap: 12.0,
            shared: false,
        },
        // ----- GAP graph kernels (16 threads, shared graph) -----
        Workload {
            name: "pr.twi",
            kind: WorkloadKind::Graph {
                mean_degree: 35,
                skew: 0.99,
            },
            footprint: s.gb(30.0),
            mix: ProfileMix {
                zero: 0.2,
                narrow_int: 0.6,
                pointer: 0.0,
                float_similar: 0.0,
                float_random: 0.0,
                text: 0.0,
                random: 0.2,
            },
            mean_gap: 4.0,
            shared: true,
        },
        Workload {
            name: "pr.web",
            kind: WorkloadKind::Graph {
                mean_degree: 20,
                skew: 0.6,
            },
            footprint: s.gb(25.0),
            mix: ProfileMix {
                zero: 0.25,
                narrow_int: 0.6,
                pointer: 0.0,
                float_similar: 0.0,
                float_random: 0.0,
                text: 0.0,
                random: 0.15,
            },
            mean_gap: 4.0,
            shared: true,
        },
        Workload {
            name: "cc.twi",
            kind: WorkloadKind::Graph {
                mean_degree: 35,
                skew: 0.99,
            },
            footprint: s.gb(28.0),
            mix: ProfileMix {
                zero: 0.15,
                narrow_int: 0.7,
                pointer: 0.0,
                float_similar: 0.0,
                float_random: 0.0,
                text: 0.0,
                random: 0.15,
            },
            mean_gap: 4.0,
            shared: true,
        },
        Workload {
            name: "bfs.twi",
            kind: WorkloadKind::Bfs,
            footprint: s.gb(26.0),
            mix: ProfileMix {
                zero: 0.25,
                narrow_int: 0.6,
                pointer: 0.0,
                float_similar: 0.0,
                float_random: 0.0,
                text: 0.0,
                random: 0.15,
            },
            mean_gap: 4.0,
            shared: true,
        },
        // ----- OneDNN CNN inference (16 threads) -----
        Workload {
            name: "resnet50",
            kind: WorkloadKind::Tensor { layers: 50 },
            footprint: s.gb(14.6),
            mix: ProfileMix {
                zero: 0.1,
                narrow_int: 0.0,
                pointer: 0.0,
                float_similar: 0.55,
                float_random: 0.35,
                text: 0.0,
                random: 0.0,
            },
            mean_gap: 4.0,
            shared: true,
        },
        Workload {
            name: "resnext50",
            kind: WorkloadKind::Tensor { layers: 64 },
            footprint: s.gb(18.6),
            mix: ProfileMix {
                zero: 0.1,
                narrow_int: 0.0,
                pointer: 0.0,
                float_similar: 0.5,
                float_random: 0.4,
                text: 0.0,
                random: 0.0,
            },
            mean_gap: 4.0,
            shared: true,
        },
        // ----- memcached + YCSB (16 threads, 30 GB of 1 kB records) -----
        // The loading phase: every record written once, sequentially
        // (the paper simulates "both the loading and transactional
        // phases"). Modelled as parallel write streams over the store.
        Workload {
            name: "ycsb-load",
            kind: WorkloadKind::Stream {
                streams: 2,
                write_streams: 2,
            },
            footprint: s.gb(30.0),
            mix: ProfileMix {
                zero: 0.25,
                narrow_int: 0.25,
                pointer: 0.0,
                float_similar: 0.0,
                float_random: 0.0,
                text: 0.5,
                random: 0.0,
            },
            mean_gap: 6.0,
            shared: false,
        },
        Workload {
            name: "ycsb-a",
            kind: WorkloadKind::Zipf {
                record_bytes: 1024,
                theta: 0.99,
                update_frac: 0.5,
            },
            footprint: s.gb(30.0),
            mix: ProfileMix {
                zero: 0.25,
                narrow_int: 0.25,
                pointer: 0.0,
                float_similar: 0.0,
                float_random: 0.0,
                text: 0.5,
                random: 0.0,
            },
            mean_gap: 6.0,
            shared: true,
        },
        Workload {
            name: "ycsb-b",
            kind: WorkloadKind::Zipf {
                record_bytes: 1024,
                theta: 0.99,
                update_frac: 0.05,
            },
            footprint: s.gb(30.0),
            mix: ProfileMix {
                zero: 0.25,
                narrow_int: 0.25,
                pointer: 0.0,
                float_similar: 0.0,
                float_random: 0.0,
                text: 0.5,
                random: 0.0,
            },
            mean_gap: 6.0,
            shared: true,
        },
    ]
}

/// Looks a workload up by name at the given scale.
pub fn by_name(name: &str, scale: Scale) -> Option<Workload> {
    registry(scale).into_iter().find(|w| w.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_has_all_families() {
        let r = registry(Scale::default());
        assert!(r.len() >= 15);
        assert!(r
            .iter()
            .any(|w| matches!(w.kind, WorkloadKind::Stream { .. })));
        assert!(r
            .iter()
            .any(|w| matches!(w.kind, WorkloadKind::Chase { .. })));
        assert!(r
            .iter()
            .any(|w| matches!(w.kind, WorkloadKind::Zipf { .. })));
        assert!(r
            .iter()
            .any(|w| matches!(w.kind, WorkloadKind::Graph { .. })));
        assert!(r
            .iter()
            .any(|w| matches!(w.kind, WorkloadKind::Tensor { .. })));
    }

    #[test]
    fn names_unique() {
        let r = registry(Scale::default());
        let mut names: Vec<_> = r.iter().map(|w| w.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), r.len());
    }

    #[test]
    fn footprints_exceed_fast_memory() {
        // The paper selects workloads whose footprints exceed fast memory.
        let s = Scale::default();
        for w in registry(s) {
            assert!(
                w.footprint > s.fast_bytes(),
                "{} footprint {} <= fast {}",
                w.name,
                w.footprint,
                s.fast_bytes()
            );
        }
    }

    #[test]
    fn footprints_fit_total_memory() {
        let s = Scale::default();
        for w in registry(s) {
            assert!(
                w.footprint <= s.fast_bytes() + s.slow_bytes(),
                "{} footprint too large",
                w.name
            );
        }
    }

    #[test]
    fn scale_ratios() {
        let s = Scale::default();
        assert_eq!(s.fast_bytes(), 16 << 20);
        assert_eq!(s.slow_bytes(), 128 << 20);
        assert_eq!(s.slow_bytes() / s.fast_bytes(), 8, "paper's 1:8 ratio");
    }

    #[test]
    fn by_name_finds_and_misses() {
        let s = Scale::default();
        assert!(by_name("505.mcf_r", s).is_some());
        assert!(by_name("nonexistent", s).is_none());
    }

    #[test]
    fn all_workloads_spawn_all_cores() {
        let s = Scale::default();
        for w in registry(s) {
            for core in [0usize, 7, 15] {
                let mut g = w.spawn_core(core, 16, 1);
                let op = g.next_op();
                assert!(op.addr < w.footprint, "{}: addr out of footprint", w.name);
            }
        }
    }

    #[test]
    fn rate_mode_partitions_disjoint() {
        let s = Scale::default();
        let w = by_name("505.mcf_r", s).expect("exists");
        assert!(!w.shared);
        let mut g0 = w.spawn_core(0, 16, 1);
        let mut g1 = w.spawn_core(1, 16, 1);
        let per_core = (w.footprint / 16) & !2047;
        for _ in 0..500 {
            assert!(g0.next_op().addr < per_core);
            let a1 = g1.next_op().addr;
            assert!((per_core..2 * per_core).contains(&a1));
        }
    }

    #[test]
    fn shared_mode_overlaps() {
        let s = Scale::default();
        let w = by_name("pr.twi", s).expect("exists");
        assert!(w.shared);
        let touched = |core| {
            let mut g = w.spawn_core(core, 16, 1);
            let mut set = std::collections::HashSet::new();
            for _ in 0..3000 {
                set.insert(g.next_op().addr / 2048);
            }
            set
        };
        let t0 = touched(0);
        let t1 = touched(1);
        assert!(t0.intersection(&t1).count() > 0, "shared workloads overlap");
    }

    #[test]
    fn contents_seeded_per_workload() {
        let s = Scale::default();
        let a = by_name("ycsb-a", s).expect("exists").contents(1);
        let b = by_name("ycsb-b", s).expect("exists").contents(1);
        // Same mix but different name -> different content seeds.
        let differs = (0..64u64).any(|i| a.line(i * 2048) != b.line(i * 2048));
        assert!(differs);
    }

    #[test]
    #[should_panic(expected = "core")]
    fn bad_core_panics() {
        let s = Scale::default();
        by_name("505.mcf_r", s)
            .expect("exists")
            .spawn_core(16, 16, 1);
    }
}

//! The trace interface between workload generators and the system driver.

/// One memory operation emitted by a core's trace generator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Op {
    /// Byte address (the driver aligns to 64 B lines internally).
    pub addr: u64,
    /// True for a store, false for a load.
    pub write: bool,
    /// Non-memory instructions executed before this operation; the op itself
    /// counts as one more instruction for MPKI purposes.
    pub gap: u32,
}

impl Op {
    /// Instructions represented by this op (gap + the memory instruction).
    pub fn instructions(&self) -> u64 {
        self.gap as u64 + 1
    }
}

/// A per-core stream of memory operations.
///
/// Generators are infinite: the driver decides when to stop. They must be
/// deterministic functions of their construction seed.
pub trait TraceGen: Send {
    /// Produces the next operation.
    fn next_op(&mut self) -> Op;
}

impl TraceGen for Box<dyn TraceGen> {
    fn next_op(&mut self) -> Op {
        (**self).next_op()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Fixed(u64);
    impl TraceGen for Fixed {
        fn next_op(&mut self) -> Op {
            self.0 += 64;
            Op {
                addr: self.0,
                write: false,
                gap: 3,
            }
        }
    }

    #[test]
    fn op_instruction_count() {
        let op = Op {
            addr: 0,
            write: true,
            gap: 9,
        };
        assert_eq!(op.instructions(), 10);
    }

    #[test]
    fn boxed_dispatch_works() {
        let mut boxed: Box<dyn TraceGen> = Box::new(Fixed(0));
        assert_eq!(boxed.next_op().addr, 64);
        assert_eq!(boxed.next_op().addr, 128);
    }
}

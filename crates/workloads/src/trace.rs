//! The trace interface between workload generators and the system driver.

use baryon_sim::wire::{Reader, WireError, Writer};

/// One memory operation emitted by a core's trace generator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Op {
    /// Byte address (the driver aligns to 64 B lines internally).
    pub addr: u64,
    /// True for a store, false for a load.
    pub write: bool,
    /// Non-memory instructions executed before this operation; the op itself
    /// counts as one more instruction for MPKI purposes.
    pub gap: u32,
}

impl Op {
    /// Instructions represented by this op (gap + the memory instruction).
    pub fn instructions(&self) -> u64 {
        self.gap as u64 + 1
    }
}

/// A per-core stream of memory operations.
///
/// Generators are infinite: the driver decides when to stop. They must be
/// deterministic functions of their construction seed.
pub trait TraceGen: Send {
    /// Produces the next operation.
    fn next_op(&mut self) -> Op;

    /// Serializes the generator's mutable state (cursors, RNG streams) for
    /// checkpointing. Structural parameters (region bases, sizes,
    /// distributions) are not written: restore first rebuilds the generator
    /// from its construction seed, then overlays this state.
    fn save_state(&self, w: &mut Writer);

    /// Overlays checkpointed [`TraceGen::save_state`] bytes onto this
    /// (freshly constructed) generator; the op stream then continues
    /// bit-identically to the checkpointed run.
    ///
    /// # Errors
    ///
    /// Returns [`WireError`] on a truncated or mismatched payload.
    fn load_state(&mut self, r: &mut Reader<'_>) -> Result<(), WireError>;
}

impl TraceGen for Box<dyn TraceGen> {
    fn next_op(&mut self) -> Op {
        (**self).next_op()
    }

    fn save_state(&self, w: &mut Writer) {
        (**self).save_state(w);
    }

    fn load_state(&mut self, r: &mut Reader<'_>) -> Result<(), WireError> {
        (**self).load_state(r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Fixed(u64);
    impl TraceGen for Fixed {
        fn next_op(&mut self) -> Op {
            self.0 += 64;
            Op {
                addr: self.0,
                write: false,
                gap: 3,
            }
        }

        fn save_state(&self, w: &mut Writer) {
            w.u64(self.0);
        }

        fn load_state(&mut self, r: &mut Reader<'_>) -> Result<(), WireError> {
            self.0 = r.u64()?;
            Ok(())
        }
    }

    #[test]
    fn op_instruction_count() {
        let op = Op {
            addr: 0,
            write: true,
            gap: 9,
        };
        assert_eq!(op.instructions(), 10);
    }

    #[test]
    fn boxed_dispatch_works() {
        let mut boxed: Box<dyn TraceGen> = Box::new(Fixed(0));
        assert_eq!(boxed.next_op().addr, 64);
        assert_eq!(boxed.next_op().addr, 128);
    }
}

//! Recorded traces: capture any generator's op stream, persist it in a
//! compact binary format, and replay it later (e.g. to feed the simulator
//! a trace captured from a real machine instead of a synthetic generator).
//!
//! Format (little-endian): magic `b"BTR1"`, `u64` op count, then per op
//! `u64` address, `u32` gap, `u8` flags (bit 0 = write).

use crate::trace::{Op, TraceGen};
use baryon_sim::wire::{Reader, WireError, Writer};
use std::io::{self, Read, Write};

const MAGIC: &[u8; 4] = b"BTR1";

/// A finite trace replayed cyclically (generators must be infinite).
///
/// # Examples
///
/// ```
/// use baryon_workloads::recorded::RecordedTrace;
/// use baryon_workloads::{Op, TraceGen};
///
/// let mut t = RecordedTrace::new(vec![
///     Op { addr: 0, write: false, gap: 1 },
///     Op { addr: 64, write: true, gap: 2 },
/// ]);
/// assert_eq!(t.next_op().addr, 0);
/// assert_eq!(t.next_op().addr, 64);
/// assert_eq!(t.next_op().addr, 0, "wraps around");
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecordedTrace {
    ops: Vec<Op>,
    pos: usize,
}

impl RecordedTrace {
    /// Wraps a list of operations.
    ///
    /// # Panics
    ///
    /// Panics on an empty trace (replay would emit nothing).
    pub fn new(ops: Vec<Op>) -> Self {
        assert!(
            !ops.is_empty(),
            "a recorded trace must have at least one op"
        );
        RecordedTrace { ops, pos: 0 }
    }

    /// Records `n` operations from any generator.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn record(source: &mut dyn TraceGen, n: usize) -> Self {
        assert!(n > 0, "cannot record an empty trace");
        Self::new((0..n).map(|_| source.next_op()).collect())
    }

    /// The recorded operations.
    pub fn ops(&self) -> &[Op] {
        &self.ops
    }

    /// Number of recorded operations.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Always false (empty traces cannot be constructed).
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Serializes into the binary trace format.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the writer; a `&mut Vec<u8>` never fails.
    pub fn save<W: Write>(&self, mut w: W) -> io::Result<()> {
        w.write_all(MAGIC)?;
        w.write_all(&(self.ops.len() as u64).to_le_bytes())?;
        for op in &self.ops {
            w.write_all(&op.addr.to_le_bytes())?;
            w.write_all(&op.gap.to_le_bytes())?;
            w.write_all(&[op.write as u8])?;
        }
        Ok(())
    }

    /// Deserializes from the binary trace format.
    ///
    /// Every malformation is rejected with a typed [`io::Error`] rather
    /// than a panic: a truncated header or payload, a declared op count
    /// that does not match the payload length (in either direction — too
    /// short *or* trailing bytes), and reserved flag bits. A hostile
    /// header declaring billions of ops cannot pre-allocate memory; the
    /// payload is read op by op and fails at the first missing byte.
    ///
    /// # Errors
    ///
    /// * [`io::ErrorKind::UnexpectedEof`] — stream ends inside the header.
    /// * [`io::ErrorKind::InvalidData`] — bad magic, zero op count,
    ///   payload shorter or longer than the declared count, or reserved
    ///   flag bits set.
    pub fn load<R: Read>(mut r: R) -> io::Result<Self> {
        let invalid = |msg: String| io::Error::new(io::ErrorKind::InvalidData, msg);
        let mut magic = [0u8; 4];
        r.read_exact(&mut magic)?;
        if &magic != MAGIC {
            return Err(invalid(format!(
                "not a baryon trace (magic {magic:02x?}, expected {MAGIC:02x?})"
            )));
        }
        let mut count = [0u8; 8];
        r.read_exact(&mut count)?;
        let count = u64::from_le_bytes(count);
        if count == 0 {
            return Err(invalid("trace declares zero ops".to_owned()));
        }
        let mut ops = Vec::with_capacity(count.min(1 << 24) as usize);
        let mut record = [0u8; 13]; // u64 addr + u32 gap + u8 flags
        for i in 0..count {
            r.read_exact(&mut record).map_err(|e| {
                if e.kind() == io::ErrorKind::UnexpectedEof {
                    invalid(format!(
                        "trace declares {count} ops but payload ends at op {i}"
                    ))
                } else {
                    e
                }
            })?;
            let flags = record[12];
            if flags & !1 != 0 {
                return Err(invalid(format!(
                    "op {i} has reserved flag bits set ({flags:#04x})"
                )));
            }
            ops.push(Op {
                addr: u64::from_le_bytes(record[..8].try_into().expect("8 bytes")),
                gap: u32::from_le_bytes(record[8..12].try_into().expect("4 bytes")),
                write: flags & 1 == 1,
            });
        }
        if r.read(&mut [0u8; 1])? != 0 {
            return Err(invalid(format!(
                "trailing bytes after the declared {count} ops"
            )));
        }
        Ok(Self::new(ops))
    }
}

impl TraceGen for RecordedTrace {
    fn next_op(&mut self) -> Op {
        let op = self.ops[self.pos];
        self.pos = (self.pos + 1) % self.ops.len();
        op
    }

    fn save_state(&self, w: &mut Writer) {
        w.usize(self.pos);
    }

    fn load_state(&mut self, r: &mut Reader<'_>) -> Result<(), WireError> {
        let pos = r.usize()?;
        if pos >= self.ops.len() {
            return Err(WireError::BadLength(pos as u64));
        }
        self.pos = pos;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gens::ChaseGen;

    fn sample() -> RecordedTrace {
        let mut g = ChaseGen::new(0, 1 << 20, 0.5, 0.3, 4.0, 9);
        RecordedTrace::record(&mut g, 100)
    }

    #[test]
    fn record_captures_generator_output() {
        let mut g1 = ChaseGen::new(0, 1 << 20, 0.5, 0.3, 4.0, 9);
        let t = {
            let mut g2 = ChaseGen::new(0, 1 << 20, 0.5, 0.3, 4.0, 9);
            RecordedTrace::record(&mut g2, 50)
        };
        for op in t.ops() {
            assert_eq!(*op, g1.next_op());
        }
    }

    #[test]
    fn save_load_roundtrip() {
        let t = sample();
        let mut buf = Vec::new();
        t.save(&mut buf).expect("writing to a Vec cannot fail");
        let loaded = RecordedTrace::load(buf.as_slice()).expect("well-formed");
        assert_eq!(loaded, t);
    }

    #[test]
    fn replay_wraps() {
        let mut t = RecordedTrace::new(vec![
            Op {
                addr: 1,
                write: false,
                gap: 0,
            },
            Op {
                addr: 2,
                write: false,
                gap: 0,
            },
        ]);
        let seq: Vec<u64> = (0..5).map(|_| t.next_op().addr).collect();
        assert_eq!(seq, [1, 2, 1, 2, 1]);
    }

    #[test]
    fn bad_magic_rejected() {
        let err = RecordedTrace::load(&b"NOPE\0\0\0\0\0\0\0\0"[..]).expect_err("bad magic");
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn truncated_stream_rejected() {
        let t = sample();
        let mut buf = Vec::new();
        t.save(&mut buf).expect("vec write");
        buf.truncate(buf.len() - 3);
        assert!(RecordedTrace::load(buf.as_slice()).is_err());
    }

    #[test]
    fn empty_trace_rejected() {
        let mut buf = Vec::new();
        buf.extend_from_slice(MAGIC);
        buf.extend_from_slice(&0u64.to_le_bytes());
        assert!(RecordedTrace::load(buf.as_slice()).is_err());
    }

    #[test]
    #[should_panic(expected = "at least one op")]
    fn empty_constructor_panics() {
        RecordedTrace::new(Vec::new());
    }

    #[test]
    fn declared_count_longer_than_payload_rejected() {
        let mut buf = Vec::new();
        sample().save(&mut buf).expect("vec write");
        // Claim 100 more ops than the payload holds.
        buf[4..12].copy_from_slice(&200u64.to_le_bytes());
        let err = RecordedTrace::load(buf.as_slice()).expect_err("count mismatch");
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("declares 200 ops"), "{err}");
    }

    #[test]
    fn trailing_bytes_after_payload_rejected() {
        let mut buf = Vec::new();
        sample().save(&mut buf).expect("vec write");
        buf.push(0xAB);
        let err = RecordedTrace::load(buf.as_slice()).expect_err("trailing data");
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("trailing"), "{err}");
    }

    #[test]
    fn reserved_flag_bits_rejected() {
        let mut buf = Vec::new();
        sample().save(&mut buf).expect("vec write");
        // Corrupt the first op's flags byte (offset 12 header + 12 into op).
        buf[12 + 12] |= 0x80;
        let err = RecordedTrace::load(buf.as_slice()).expect_err("reserved bits");
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("reserved flag bits"), "{err}");
    }

    #[test]
    fn hostile_op_count_fails_without_allocating() {
        let mut buf = Vec::new();
        buf.extend_from_slice(MAGIC);
        buf.extend_from_slice(&u64::MAX.to_le_bytes());
        // No payload at all: must error promptly, not try to reserve
        // u64::MAX records.
        let err = RecordedTrace::load(buf.as_slice()).expect_err("hostile count");
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn truncated_header_is_unexpected_eof() {
        let err = RecordedTrace::load(&b"BTR1\x01\x00"[..]).expect_err("short header");
        assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof);
    }

    #[test]
    fn prop_save_load_roundtrip() {
        baryon_sim::check::props("recorded_trace_roundtrip").run(|g| {
            let ops = g.vec(1, 64, |g| Op {
                addr: g.u64(),
                gap: g.u32(),
                write: g.bool(),
            });
            let trace = RecordedTrace::new(ops);
            let mut buf = Vec::new();
            trace.save(&mut buf).expect("writing to a Vec cannot fail");
            let loaded = RecordedTrace::load(buf.as_slice()).expect("own output loads");
            assert_eq!(loaded, trace);
        });
    }
}

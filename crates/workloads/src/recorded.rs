//! Recorded traces: capture any generator's op stream, persist it in a
//! compact binary format, and replay it later (e.g. to feed the simulator
//! a trace captured from a real machine instead of a synthetic generator).
//!
//! Format (little-endian): magic `b"BTR1"`, `u64` op count, then per op
//! `u64` address, `u32` gap, `u8` flags (bit 0 = write).

use crate::trace::{Op, TraceGen};
use std::io::{self, Read, Write};

const MAGIC: &[u8; 4] = b"BTR1";

/// A finite trace replayed cyclically (generators must be infinite).
///
/// # Examples
///
/// ```
/// use baryon_workloads::recorded::RecordedTrace;
/// use baryon_workloads::{Op, TraceGen};
///
/// let mut t = RecordedTrace::new(vec![
///     Op { addr: 0, write: false, gap: 1 },
///     Op { addr: 64, write: true, gap: 2 },
/// ]);
/// assert_eq!(t.next_op().addr, 0);
/// assert_eq!(t.next_op().addr, 64);
/// assert_eq!(t.next_op().addr, 0, "wraps around");
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecordedTrace {
    ops: Vec<Op>,
    pos: usize,
}

impl RecordedTrace {
    /// Wraps a list of operations.
    ///
    /// # Panics
    ///
    /// Panics on an empty trace (replay would emit nothing).
    pub fn new(ops: Vec<Op>) -> Self {
        assert!(
            !ops.is_empty(),
            "a recorded trace must have at least one op"
        );
        RecordedTrace { ops, pos: 0 }
    }

    /// Records `n` operations from any generator.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn record(source: &mut dyn TraceGen, n: usize) -> Self {
        assert!(n > 0, "cannot record an empty trace");
        Self::new((0..n).map(|_| source.next_op()).collect())
    }

    /// The recorded operations.
    pub fn ops(&self) -> &[Op] {
        &self.ops
    }

    /// Number of recorded operations.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Always false (empty traces cannot be constructed).
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Serializes into the binary trace format.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the writer; a `&mut Vec<u8>` never fails.
    pub fn save<W: Write>(&self, mut w: W) -> io::Result<()> {
        w.write_all(MAGIC)?;
        w.write_all(&(self.ops.len() as u64).to_le_bytes())?;
        for op in &self.ops {
            w.write_all(&op.addr.to_le_bytes())?;
            w.write_all(&op.gap.to_le_bytes())?;
            w.write_all(&[op.write as u8])?;
        }
        Ok(())
    }

    /// Deserializes from the binary trace format.
    ///
    /// # Errors
    ///
    /// Returns `InvalidData` for a bad magic, a zero-length trace, or a
    /// truncated stream.
    pub fn load<R: Read>(mut r: R) -> io::Result<Self> {
        let mut magic = [0u8; 4];
        r.read_exact(&mut magic)?;
        if &magic != MAGIC {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "not a baryon trace",
            ));
        }
        let mut count = [0u8; 8];
        r.read_exact(&mut count)?;
        let count = u64::from_le_bytes(count) as usize;
        if count == 0 {
            return Err(io::Error::new(io::ErrorKind::InvalidData, "empty trace"));
        }
        let mut ops = Vec::with_capacity(count.min(1 << 24));
        for _ in 0..count {
            let mut addr = [0u8; 8];
            let mut gap = [0u8; 4];
            let mut flags = [0u8; 1];
            r.read_exact(&mut addr)?;
            r.read_exact(&mut gap)?;
            r.read_exact(&mut flags)?;
            ops.push(Op {
                addr: u64::from_le_bytes(addr),
                gap: u32::from_le_bytes(gap),
                write: flags[0] & 1 == 1,
            });
        }
        Ok(Self::new(ops))
    }
}

impl TraceGen for RecordedTrace {
    fn next_op(&mut self) -> Op {
        let op = self.ops[self.pos];
        self.pos = (self.pos + 1) % self.ops.len();
        op
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gens::ChaseGen;

    fn sample() -> RecordedTrace {
        let mut g = ChaseGen::new(0, 1 << 20, 0.5, 0.3, 4.0, 9);
        RecordedTrace::record(&mut g, 100)
    }

    #[test]
    fn record_captures_generator_output() {
        let mut g1 = ChaseGen::new(0, 1 << 20, 0.5, 0.3, 4.0, 9);
        let t = {
            let mut g2 = ChaseGen::new(0, 1 << 20, 0.5, 0.3, 4.0, 9);
            RecordedTrace::record(&mut g2, 50)
        };
        for op in t.ops() {
            assert_eq!(*op, g1.next_op());
        }
    }

    #[test]
    fn save_load_roundtrip() {
        let t = sample();
        let mut buf = Vec::new();
        t.save(&mut buf).expect("writing to a Vec cannot fail");
        let loaded = RecordedTrace::load(buf.as_slice()).expect("well-formed");
        assert_eq!(loaded, t);
    }

    #[test]
    fn replay_wraps() {
        let mut t = RecordedTrace::new(vec![
            Op {
                addr: 1,
                write: false,
                gap: 0,
            },
            Op {
                addr: 2,
                write: false,
                gap: 0,
            },
        ]);
        let seq: Vec<u64> = (0..5).map(|_| t.next_op().addr).collect();
        assert_eq!(seq, [1, 2, 1, 2, 1]);
    }

    #[test]
    fn bad_magic_rejected() {
        let err = RecordedTrace::load(&b"NOPE\0\0\0\0\0\0\0\0"[..]).expect_err("bad magic");
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn truncated_stream_rejected() {
        let t = sample();
        let mut buf = Vec::new();
        t.save(&mut buf).expect("vec write");
        buf.truncate(buf.len() - 3);
        assert!(RecordedTrace::load(buf.as_slice()).is_err());
    }

    #[test]
    fn empty_trace_rejected() {
        let mut buf = Vec::new();
        buf.extend_from_slice(MAGIC);
        buf.extend_from_slice(&0u64.to_le_bytes());
        assert!(RecordedTrace::load(buf.as_slice()).is_err());
    }

    #[test]
    #[should_panic(expected = "at least one op")]
    fn empty_constructor_panics() {
        RecordedTrace::new(Vec::new());
    }
}

#![warn(missing_docs)]

//! Synthetic workload substitutes for the paper's benchmark suite.
//!
//! The paper evaluates Baryon with SPEC CPU2017 (rate mode, 16 copies), GAP
//! graph kernels on twitter/web graphs, OneDNN CNN inference, and
//! memcached/YCSB. None of those can run inside this reproduction, so this
//! crate provides generators that reproduce the four properties those
//! workloads exert on a hybrid memory system:
//!
//! 1. the **spatial/temporal locality** of the LLC-miss address stream,
//! 2. the **read/write mix**,
//! 3. the **value compressibility** of the data (real bytes fed to FPC/BDI),
//! 4. the **footprint pressure** relative to fast-memory capacity.
//!
//! Memory contents are modelled deterministically: every 2 kB block is
//! assigned a [`content::ValueProfile`] by hashing its index against the
//! workload's profile mix, and the bytes of each 64 B line are a pure
//! function of `(address, version, profile)`. Writes bump a per-line version
//! so contents — and hence compressibility — drift over time, which is what
//! produces Baryon's *write overflow* events.
//!
//! # Examples
//!
//! ```
//! use baryon_workloads::{registry, Scale};
//!
//! let scale = Scale::default();
//! let workloads = registry(scale);
//! assert!(workloads.iter().any(|w| w.name == "505.mcf_r"));
//!
//! let w = baryon_workloads::by_name("ycsb-a", scale).expect("known workload");
//! let mut contents = w.contents(1);
//! let line = contents.line(0);
//! assert_eq!(line.len(), 64);
//! ```

pub mod content;
pub mod gens;
pub mod recorded;
pub mod registry;
pub mod trace;

pub use content::{MemoryContents, ProfileMix, ValueProfile};
pub use recorded::RecordedTrace;
pub use registry::{by_name, registry, Scale, Workload, WorkloadKind};
pub use trace::{Op, TraceGen};

//! Deterministic memory-content model.
//!
//! Contents must be *real bytes* because the simulator runs real FPC/BDI over
//! them, but storing a multi-GB image is impossible. Instead every 64 B line
//! is a pure function of `(line address, version, block profile)`:
//!
//! * the **profile** of a 2 kB block is chosen by hashing the block index
//!   against the workload's [`ProfileMix`], so it is stable across the run;
//! * the **version** of a line starts at 0 and is bumped by every write, so
//!   written data drifts (each profile has a *dirty entropy* giving the
//!   probability a rewritten line degenerates to incompressible bytes).

use baryon_sim::flatmap::OpenMap;
use baryon_sim::rng::mix64;
use baryon_sim::wire::{Reader, WireError, Writer};

/// Bytes per cacheline.
pub const LINE_BYTES: u64 = 64;

/// Bytes per 2 kB data block (the profile granularity).
pub const BLOCK_BYTES: u64 = 2048;

/// The value-content class of a 2 kB block.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ValueProfile {
    /// Untouched / zero-initialized data. Compresses to nothing (CF 4).
    Zero,
    /// 32-bit integers clustered around a per-block base (counters, indices).
    /// BDI base4-Δ1 territory: reaches CF 2 under cacheline alignment.
    NarrowInt,
    /// 64-bit pointers into a shared heap region (linked structures).
    /// BDI base8-Δ2 territory: CF 2.
    Pointer,
    /// 32-bit floats with a shared exponent and small mantissa spread
    /// (stencil grids, NN activations). CF 2 when the spread is small.
    FloatSimilar,
    /// 32-bit floats with full-range mantissas (chaotic solvers). CF 1.
    FloatRandom,
    /// ASCII-ish text payloads (key-value records). Weakly compressible.
    Text,
    /// High-entropy bytes (encrypted/compressed data). CF 1.
    Random,
}

impl ValueProfile {
    /// Probability that a rewritten line degenerates to random bytes.
    fn dirty_entropy(self) -> f64 {
        match self {
            ValueProfile::Zero => 0.9, // writing a zero page materializes data
            ValueProfile::NarrowInt => 0.05,
            ValueProfile::Pointer => 0.05,
            ValueProfile::FloatSimilar => 0.15,
            ValueProfile::FloatRandom => 0.0, // already incompressible
            ValueProfile::Text => 0.10,
            ValueProfile::Random => 0.0,
        }
    }
}

/// Relative weights of each profile for one workload.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ProfileMix {
    /// Weight of [`ValueProfile::Zero`].
    pub zero: f64,
    /// Weight of [`ValueProfile::NarrowInt`].
    pub narrow_int: f64,
    /// Weight of [`ValueProfile::Pointer`].
    pub pointer: f64,
    /// Weight of [`ValueProfile::FloatSimilar`].
    pub float_similar: f64,
    /// Weight of [`ValueProfile::FloatRandom`].
    pub float_random: f64,
    /// Weight of [`ValueProfile::Text`].
    pub text: f64,
    /// Weight of [`ValueProfile::Random`].
    pub random: f64,
}

impl ProfileMix {
    /// A mix that is entirely one profile.
    pub fn pure(profile: ValueProfile) -> Self {
        let mut mix = ProfileMix {
            zero: 0.0,
            narrow_int: 0.0,
            pointer: 0.0,
            float_similar: 0.0,
            float_random: 0.0,
            text: 0.0,
            random: 0.0,
        };
        match profile {
            ValueProfile::Zero => mix.zero = 1.0,
            ValueProfile::NarrowInt => mix.narrow_int = 1.0,
            ValueProfile::Pointer => mix.pointer = 1.0,
            ValueProfile::FloatSimilar => mix.float_similar = 1.0,
            ValueProfile::FloatRandom => mix.float_random = 1.0,
            ValueProfile::Text => mix.text = 1.0,
            ValueProfile::Random => mix.random = 1.0,
        }
        mix
    }

    fn entries(&self) -> [(ValueProfile, f64); 7] {
        [
            (ValueProfile::Zero, self.zero),
            (ValueProfile::NarrowInt, self.narrow_int),
            (ValueProfile::Pointer, self.pointer),
            (ValueProfile::FloatSimilar, self.float_similar),
            (ValueProfile::FloatRandom, self.float_random),
            (ValueProfile::Text, self.text),
            (ValueProfile::Random, self.random),
        ]
    }

    /// Total weight.
    ///
    /// # Panics
    ///
    /// Never panics; a zero total is caught in [`MemoryContents::new`].
    pub fn total(&self) -> f64 {
        self.entries().iter().map(|(_, w)| w).sum()
    }

    /// Picks the profile for a block index, deterministically.
    fn pick(&self, block_idx: u64, seed: u64) -> ValueProfile {
        let total = self.total();
        let h = mix64(seed ^ 0xB10C_B10C, block_idx);
        let mut x = (h >> 11) as f64 / (1u64 << 53) as f64 * total;
        for (p, w) in self.entries() {
            if x < w {
                return p;
            }
            x -= w;
        }
        ValueProfile::Random
    }
}

/// The deterministic contents of the simulated physical memory.
///
/// # Examples
///
/// ```
/// use baryon_workloads::content::{MemoryContents, ProfileMix, ValueProfile};
///
/// let mut mem = MemoryContents::new(ProfileMix::pure(ValueProfile::Zero), 7);
/// assert_eq!(mem.line(0), [0u8; 64]);
/// mem.write_line(0);
/// // After a write the line is no longer (all) zero.
/// assert_ne!(mem.line(0), [0u8; 64]);
/// ```
#[derive(Debug, Clone)]
pub struct MemoryContents {
    mix: ProfileMix,
    seed: u64,
    salt: u64,
    versions: OpenMap<u32>,
}

impl MemoryContents {
    /// Creates contents for a workload's profile mix.
    ///
    /// # Panics
    ///
    /// Panics if the mix has zero total weight.
    pub fn new(mix: ProfileMix, seed: u64) -> Self {
        assert!(mix.total() > 0.0, "profile mix must have positive weight");
        let mut salt = mix64(seed, 0x5A17);
        for (_, weight) in mix.entries() {
            salt = mix64(salt, weight.to_bits());
        }
        MemoryContents {
            mix,
            seed,
            salt,
            versions: OpenMap::new(),
        }
    }

    /// A value identifying this content model (seed and profile mix, the
    /// immutable inputs of [`MemoryContents::line`]). Two contents with
    /// the same salt and the same per-line versions render identical
    /// bytes, which is what lets controllers memoize compression verdicts
    /// keyed by `(salt, address, versions)` instead of re-rendering.
    pub fn salt(&self) -> u64 {
        self.salt
    }

    /// Writes the versions of the `len / 64` lines starting at
    /// line-aligned `addr` into `out`, returning the line count, or
    /// `None` if the range spans more lines than `out` holds.
    ///
    /// # Panics
    ///
    /// Panics if `addr` or `len` is not 64 B aligned.
    pub fn versions_into(&self, addr: u64, len: usize, out: &mut [u32]) -> Option<usize> {
        assert!(
            addr.is_multiple_of(LINE_BYTES) && (len as u64).is_multiple_of(LINE_BYTES),
            "range must be line-aligned"
        );
        let lines = len / LINE_BYTES as usize;
        if lines > out.len() {
            return None;
        }
        let first = addr / LINE_BYTES;
        for (i, slot) in out.iter_mut().enumerate().take(lines) {
            *slot = self.versions.get_copied(first + i as u64).unwrap_or(0);
        }
        Some(lines)
    }

    /// The profile of the 2 kB block containing `addr`.
    pub fn profile_of(&self, addr: u64) -> ValueProfile {
        self.mix.pick(addr / BLOCK_BYTES, self.seed)
    }

    /// Current version of the line containing `addr` (0 if never written).
    pub fn version_of(&self, addr: u64) -> u32 {
        self.versions.get_copied(addr / LINE_BYTES).unwrap_or(0)
    }

    /// Records a write to the line containing `addr`, bumping its version.
    pub fn write_line(&mut self, addr: u64) {
        *self.versions.entry_or_default(addr / LINE_BYTES) += 1;
    }

    /// Number of lines ever written (for memory-usage introspection).
    pub fn written_lines(&self) -> usize {
        self.versions.len()
    }

    /// Serializes the write-version map (the only mutable state; the mix
    /// and seed are rebuilt from the workload definition on restore). The
    /// map is written in sorted line order so the byte stream is canonical.
    pub fn save_state(&self, w: &mut Writer) {
        let mut lines: Vec<(u64, u32)> = self.versions.iter().map(|(k, v)| (k, *v)).collect();
        lines.sort_unstable();
        w.seq(lines.len());
        for (line, version) in lines {
            w.u64(line);
            w.u32(version);
        }
    }

    /// Overlays a checkpointed version map.
    ///
    /// # Errors
    ///
    /// Returns [`WireError`] on a truncated payload.
    pub fn load_state(&mut self, r: &mut Reader<'_>) -> Result<(), WireError> {
        let n = r.seq()?;
        self.versions.clear();
        for _ in 0..n {
            let line = r.u64()?;
            self.versions.insert(line, r.u32()?);
        }
        Ok(())
    }

    /// The 64 bytes of the line containing `addr` (line-aligned).
    pub fn line(&self, addr: u64) -> [u8; 64] {
        let line_addr = addr & !(LINE_BYTES - 1);
        let version = self.version_of(line_addr);
        let profile = self.profile_of(line_addr);
        render_line(profile, line_addr, version, self.seed)
    }

    /// Assembles `len` bytes starting at line-aligned `addr`.
    ///
    /// # Panics
    ///
    /// Panics if `addr` or `len` is not 64 B aligned.
    pub fn range(&self, addr: u64, len: usize) -> Vec<u8> {
        assert!(
            addr.is_multiple_of(LINE_BYTES) && (len as u64).is_multiple_of(LINE_BYTES),
            "range must be line-aligned"
        );
        let mut out = Vec::with_capacity(len);
        self.range_into(addr, len, &mut out);
        out
    }

    /// Assembles `len` bytes starting at line-aligned `addr` into a
    /// caller-provided buffer (cleared first), so hot paths can reuse one
    /// allocation across calls.
    ///
    /// # Panics
    ///
    /// Panics if `addr` or `len` is not 64 B aligned.
    pub fn range_into(&self, addr: u64, len: usize, out: &mut Vec<u8>) {
        assert!(
            addr.is_multiple_of(LINE_BYTES) && (len as u64).is_multiple_of(LINE_BYTES),
            "range must be line-aligned"
        );
        out.clear();
        out.reserve(len);
        let mut a = addr;
        while out.len() < len {
            out.extend_from_slice(&self.line(a));
            a += LINE_BYTES;
        }
    }
}

/// Renders one line's bytes. Pure function of its arguments.
fn render_line(profile: ValueProfile, line_addr: u64, version: u32, seed: u64) -> [u8; 64] {
    let mut out = [0u8; 64];
    if version == 0 && profile == ValueProfile::Zero {
        return out;
    }
    // Dirty-entropy: rewritten lines may degenerate to random bytes.
    if version > 0 {
        let h = mix64(seed ^ 0xD1A7, mix64(line_addr, version as u64));
        let p = (h >> 11) as f64 / (1u64 << 53) as f64;
        if p < profile.dirty_entropy() {
            return random_bytes(line_addr, version, seed ^ 0xE57);
        }
    }
    let vseed = mix64(seed, mix64(line_addr / BLOCK_BYTES, version as u64 >> 3));
    // Intra-block heterogeneity: a quarter of the 256 B sub-blocks in a
    // compressible block carry "hard" values (wide deltas / noisy
    // mantissas) that only reach CF 1. Real data mixes hot irregular
    // fields with regular ones; this is what makes Baryon's per-range CF
    // choice (and the Fig 12 CF-restriction analysis) non-trivial.
    let sub_idx = (line_addr % BLOCK_BYTES) / 256;
    let hard = mix64(mix64(seed ^ 0x4A8D, line_addr / BLOCK_BYTES), sub_idx).is_multiple_of(4);
    match profile {
        ValueProfile::Zero => {
            // A written zero line that did not degenerate: small integers.
            fill_narrow_ints(&mut out, line_addr, version, vseed, hard);
        }
        ValueProfile::NarrowInt => fill_narrow_ints(&mut out, line_addr, version, vseed, hard),
        ValueProfile::Pointer => {
            // Pointers share their upper 48 bits within a block.
            let base = (vseed & 0x0000_7FFF_FFFF_0000) as i64;
            let spread = if hard { 1 << 28 } else { 4096 };
            for (i, w) in out.chunks_exact_mut(8).enumerate() {
                let delta = (mix64(line_addr + i as u64, version as u64) % spread) as i64 * 8;
                w.copy_from_slice(&(base + delta).to_le_bytes());
            }
        }
        ValueProfile::FloatSimilar => {
            // Shared exponent, small mantissa spread -> BDI-friendly.
            let base = 1.0f32 + (vseed % 1000) as f32 / 1000.0;
            let scale = if hard { 1e-3 } else { 1e-7 };
            for (i, w) in out.chunks_exact_mut(4).enumerate() {
                let wiggle = (mix64(line_addr + i as u64, version as u64) % 100) as f32 * scale;
                w.copy_from_slice(&(base + wiggle).to_bits().to_le_bytes());
            }
        }
        ValueProfile::FloatRandom => {
            for (i, w) in out.chunks_exact_mut(4).enumerate() {
                let bits = mix64(line_addr + i as u64 * 7, version as u64 ^ vseed) as u32;
                // Keep it a plausible normal float but with a chaotic mantissa.
                let f = f32::from_bits((bits & 0x007F_FFFF) | 0x3F80_0000);
                w.copy_from_slice(&(f * (1.0 + (bits >> 24) as f32)).to_bits().to_le_bytes());
            }
        }
        ValueProfile::Text => {
            const ALPHABET: &[u8] =
                b"abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789 .,;";
            let mut h = mix64(vseed, line_addr ^ version as u64);
            for b in &mut out {
                h = mix64(h, 0x7E57);
                *b = ALPHABET[(h % ALPHABET.len() as u64) as usize];
            }
        }
        ValueProfile::Random => {
            out = random_bytes(line_addr, version, seed);
        }
    }
    out
}

fn fill_narrow_ints(out: &mut [u8; 64], line_addr: u64, version: u32, vseed: u64, hard: bool) {
    // 32-bit values near a per-block base; soft sub-blocks keep deltas in
    // a signed byte, hard sub-blocks spread over 20 bits (CF 1).
    let base = (vseed % 1_000_000) as u32;
    let spread = if hard { 1 << 20 } else { 100 };
    for (i, w) in out.chunks_exact_mut(4).enumerate() {
        let delta = (mix64(line_addr + i as u64, version as u64) % spread) as u32;
        w.copy_from_slice(&(base + delta).to_le_bytes());
    }
}

fn random_bytes(line_addr: u64, version: u32, seed: u64) -> [u8; 64] {
    let mut out = [0u8; 64];
    for (i, w) in out.chunks_exact_mut(8).enumerate() {
        let v = mix64(mix64(line_addr, seed), (i as u64) << 32 | version as u64);
        w.copy_from_slice(&v.to_le_bytes());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use baryon_compress::{best_compressed_size, RangeCompressor};

    fn mem(profile: ValueProfile) -> MemoryContents {
        MemoryContents::new(ProfileMix::pure(profile), 42)
    }

    #[test]
    fn deterministic() {
        let a = mem(ValueProfile::NarrowInt);
        let b = mem(ValueProfile::NarrowInt);
        for addr in [0u64, 64, 2048, 1 << 20] {
            assert_eq!(a.line(addr), b.line(addr));
        }
    }

    #[test]
    fn zero_profile_is_zero_until_written() {
        let mut m = mem(ValueProfile::Zero);
        assert!(m.line(128).iter().all(|b| *b == 0));
        m.write_line(128);
        assert_eq!(m.version_of(128), 1);
        assert!(m.line(128).iter().any(|b| *b != 0));
        // Other lines unaffected.
        assert!(m.line(192).iter().all(|b| *b == 0));
    }

    #[test]
    fn narrow_ints_reach_cf2_at_cacheline_alignment() {
        let m = mem(ValueProfile::NarrowInt);
        let rc = RangeCompressor::cacheline_aligned();
        let data = m.range(0, 512);
        assert_eq!(
            rc.max_cf(&data),
            Some(baryon_compress::Cf::X2),
            "narrow ints should hit CF2"
        );
    }

    #[test]
    fn random_profile_is_incompressible() {
        let m = mem(ValueProfile::Random);
        for addr in [0u64, 4096] {
            assert_eq!(best_compressed_size(&m.line(addr)), 64);
        }
    }

    #[test]
    fn pointers_compress() {
        let m = mem(ValueProfile::Pointer);
        let chunk = m.range(0, 128);
        assert!(
            best_compressed_size(&chunk) <= 64,
            "pointer chunk should 2x compress"
        );
    }

    #[test]
    fn float_similar_compresses_float_random_does_not() {
        let sim = mem(ValueProfile::FloatSimilar);
        let rnd = mem(ValueProfile::FloatRandom);
        let sim_sz = best_compressed_size(&sim.range(0, 128));
        let rnd_sz = best_compressed_size(&rnd.range(0, 128));
        assert!(sim_sz <= 64, "similar floats {sim_sz}");
        assert!(rnd_sz > 64, "random floats {rnd_sz}");
    }

    #[test]
    fn version_changes_content() {
        let mut m = mem(ValueProfile::NarrowInt);
        let before = m.line(0);
        m.write_line(0);
        let after = m.line(0);
        assert_ne!(before, after);
    }

    #[test]
    fn mixture_produces_multiple_profiles() {
        let mix = ProfileMix {
            zero: 1.0,
            narrow_int: 1.0,
            pointer: 1.0,
            float_similar: 1.0,
            float_random: 1.0,
            text: 1.0,
            random: 1.0,
        };
        let m = MemoryContents::new(mix, 3);
        let mut seen = std::collections::HashSet::new();
        for blk in 0..200u64 {
            seen.insert(m.profile_of(blk * BLOCK_BYTES));
        }
        assert!(seen.len() >= 5, "only saw {seen:?}");
    }

    #[test]
    fn profile_stable_within_block() {
        let m = MemoryContents::new(
            ProfileMix {
                zero: 1.0,
                narrow_int: 1.0,
                pointer: 1.0,
                float_similar: 0.0,
                float_random: 0.0,
                text: 0.0,
                random: 1.0,
            },
            9,
        );
        for blk in 0..50u64 {
            let base = blk * BLOCK_BYTES;
            let p = m.profile_of(base);
            for off in (0..BLOCK_BYTES).step_by(64) {
                assert_eq!(m.profile_of(base + off), p);
            }
        }
    }

    #[test]
    fn range_is_line_concatenation() {
        let m = mem(ValueProfile::Text);
        let r = m.range(0, 256);
        assert_eq!(&r[..64], &m.line(0));
        assert_eq!(&r[64..128], &m.line(64));
    }

    #[test]
    #[should_panic(expected = "line-aligned")]
    fn unaligned_range_panics() {
        mem(ValueProfile::Zero).range(32, 64);
    }

    #[test]
    #[should_panic(expected = "positive weight")]
    fn empty_mix_panics() {
        let mut mix = ProfileMix::pure(ValueProfile::Zero);
        mix.zero = 0.0;
        MemoryContents::new(mix, 0);
    }

    #[test]
    fn dirty_entropy_degrades_zero_pages() {
        let mut m = mem(ValueProfile::Zero);
        let mut degenerated = 0;
        for i in 0..100u64 {
            let addr = i * 64;
            m.write_line(addr);
            if best_compressed_size(&m.line(addr)) == 64 {
                degenerated += 1;
            }
        }
        // dirty_entropy(Zero)=0.9: most written zero lines become random.
        assert!(degenerated > 70, "only {degenerated}/100 degenerated");
    }
}

//! The concrete trace generators.
//!
//! Each generator targets the access-pattern profile of one workload family
//! (see the crate docs for the fidelity argument):
//!
//! * [`StreamGen`] — array sweeps (lbm, fotonik3d, bwaves, roms, DNN-free),
//! * [`ChaseGen`] — pointer chasing with tunable block locality (mcf,
//!   omnetpp, xz),
//! * [`ZipfGen`] — YCSB-style record store with zipfian popularity,
//! * [`GraphGen`] — GAP-style pull-mode PageRank/CC iteration,
//! * [`BfsGen`] — direction-optimizing breadth-first search,
//! * [`TensorGen`] — layer-by-layer CNN inference sweeps.

use crate::trace::{Op, TraceGen};
use baryon_sim::rng::SimRng;
use baryon_sim::wire::{Reader, WireError, Writer};
use baryon_sim::zipf::Zipfian;

const LINE: u64 = 64;

fn save_rng(w: &mut Writer, rng: &SimRng) {
    for word in rng.state() {
        w.u64(word);
    }
}

fn load_rng(r: &mut Reader<'_>) -> Result<SimRng, WireError> {
    let mut s = [0u64; 4];
    for word in &mut s {
        *word = r.u64()?;
    }
    Ok(SimRng::from_state(s))
}

fn sample_gap(rng: &mut SimRng, mean: f64) -> u32 {
    // Geometric with the given mean, capped to keep cycles bounded.
    if mean <= 0.0 {
        return 0;
    }
    let p = 1.0 / (mean + 1.0);
    let u = rng.gen_f64().max(1e-12);
    ((u.ln() / (1.0 - p).ln()).floor() as u32).min(10_000)
}

/// Streaming sweeps over `streams` interleaved arrays inside one region.
///
/// Mimics stencil/array codes: each op advances one of the round-robin
/// streams by 64 B; a configurable fraction of streams are write streams.
#[derive(Debug)]
pub struct StreamGen {
    base: u64,
    stream_size: u64,
    cursors: Vec<u64>,
    writes: Vec<bool>,
    next_stream: usize,
    mean_gap: f64,
    rng: SimRng,
}

impl StreamGen {
    /// Creates a generator over `[base, base + size)` split into `streams`
    /// equal arrays, the last `write_streams` of which are written.
    ///
    /// # Panics
    ///
    /// Panics if `streams == 0`, `write_streams > streams`, or the region is
    /// too small for one line per stream.
    pub fn new(
        base: u64,
        size: u64,
        streams: usize,
        write_streams: usize,
        mean_gap: f64,
        seed: u64,
    ) -> Self {
        assert!(streams > 0, "need at least one stream");
        assert!(write_streams <= streams, "more write streams than streams");
        let stream_size = (size / streams as u64) & !(LINE - 1);
        assert!(
            stream_size >= LINE,
            "region too small for {streams} streams"
        );
        let mut rng = SimRng::from_seed(seed);
        // Start each stream at a distinct phase for realism.
        let cursors = (0..streams)
            .map(|_| rng.gen_range(0, stream_size / LINE) * LINE)
            .collect();
        StreamGen {
            base,
            stream_size,
            cursors,
            writes: (0..streams).map(|i| i >= streams - write_streams).collect(),
            next_stream: 0,
            mean_gap,
            rng,
        }
    }
}

impl TraceGen for StreamGen {
    fn next_op(&mut self) -> Op {
        let s = self.next_stream;
        self.next_stream = (self.next_stream + 1) % self.cursors.len();
        let addr = self.base + s as u64 * self.stream_size + self.cursors[s];
        self.cursors[s] = (self.cursors[s] + LINE) % self.stream_size;
        Op {
            addr,
            write: self.writes[s],
            gap: sample_gap(&mut self.rng, self.mean_gap),
        }
    }

    fn save_state(&self, w: &mut Writer) {
        w.seq(self.cursors.len());
        for c in &self.cursors {
            w.u64(*c);
        }
        w.usize(self.next_stream);
        save_rng(w, &self.rng);
    }

    fn load_state(&mut self, r: &mut Reader<'_>) -> Result<(), WireError> {
        let n = r.seq()?;
        if n != self.cursors.len() {
            return Err(WireError::BadLength(n as u64));
        }
        for c in &mut self.cursors {
            *c = r.u64()?;
        }
        self.next_stream = r.usize()?;
        self.rng = load_rng(r)?;
        Ok(())
    }
}

/// Pointer chasing with tunable spatial locality.
///
/// With probability `stay` the next access is another line in the current
/// 2 kB block (sub-block locality); otherwise it jumps to a random block.
/// A fraction `write_frac` of accesses are stores.
#[derive(Debug)]
pub struct ChaseGen {
    base: u64,
    blocks: u64,
    cur_block: u64,
    stay: f64,
    write_frac: f64,
    touched_in_block: u32,
    mean_gap: f64,
    /// Sequential lines left in the current object access run.
    run_left: u32,
    run_line: u64,
    rng: SimRng,
}

impl ChaseGen {
    /// Creates a chaser over `[base, base + size)`.
    ///
    /// # Panics
    ///
    /// Panics if the region is smaller than one 2 kB block.
    pub fn new(base: u64, size: u64, stay: f64, write_frac: f64, mean_gap: f64, seed: u64) -> Self {
        let blocks = size / 2048;
        assert!(blocks > 0, "region must hold at least one 2 kB block");
        let mut rng = SimRng::from_seed(seed);
        let cur_block = rng.gen_range(0, blocks);
        ChaseGen {
            base,
            blocks,
            cur_block,
            stay,
            write_frac,
            touched_in_block: 0,
            mean_gap,
            run_left: 0,
            run_line: 0,
            rng,
        }
    }
}

impl TraceGen for ChaseGen {
    fn next_op(&mut self) -> Op {
        // Objects span a few consecutive lines: after landing on one, a
        // short sequential run reads its fields (pointer + payload).
        if self.run_left == 0 {
            if !self.rng.gen_bool(self.stay) || self.touched_in_block > 32 {
                self.cur_block = self.rng.gen_range(0, self.blocks);
                self.touched_in_block = 0;
            }
            self.touched_in_block += 1;
            // Each block has a stable hot half (the object fields the code
            // actually uses): the paper's key observation is that per-block
            // footprints stabilize, which uniform line sampling would
            // violate. 85% of landings stay inside the hot window.
            let lines = 2048 / LINE;
            let window = lines / 2;
            let window_start =
                baryon_sim::rng::splitmix64(self.cur_block ^ 0xC0FFEE) % (lines - window + 1);
            self.run_line = if self.rng.gen_bool(0.85) {
                window_start + self.rng.gen_range(0, window)
            } else {
                self.rng.gen_range(0, lines)
            };
            self.run_left = 1 + self.rng.gen_range(0, 3) as u32;
        }
        self.run_left -= 1;
        let line = self.run_line;
        self.run_line = (self.run_line + 1) % (2048 / LINE);
        let addr = self.base + self.cur_block * 2048 + line * LINE;
        Op {
            addr,
            write: self.rng.gen_bool(self.write_frac),
            gap: sample_gap(&mut self.rng, self.mean_gap),
        }
    }

    fn save_state(&self, w: &mut Writer) {
        w.u64(self.cur_block);
        w.u32(self.touched_in_block);
        w.u32(self.run_left);
        w.u64(self.run_line);
        save_rng(w, &self.rng);
    }

    fn load_state(&mut self, r: &mut Reader<'_>) -> Result<(), WireError> {
        self.cur_block = r.u64()?;
        self.touched_in_block = r.u32()?;
        self.run_left = r.u32()?;
        self.run_line = r.u64()?;
        self.rng = load_rng(r)?;
        Ok(())
    }
}

/// YCSB-style key-value store over fixed-size records.
///
/// Each query picks a record by zipfian popularity. Reads scan the whole
/// record; updates rewrite a small field (two lines).
#[derive(Debug)]
pub struct ZipfGen {
    base: u64,
    record_lines: u64,
    zipf: Zipfian,
    update_frac: f64,
    pending: Vec<Op>,
    mean_gap: f64,
    rng: SimRng,
}

impl ZipfGen {
    /// Creates a store of `records` records of `record_bytes` each.
    ///
    /// # Panics
    ///
    /// Panics if `record_bytes < 128` or `records == 0`.
    pub fn new(
        base: u64,
        records: u64,
        record_bytes: u64,
        theta: f64,
        update_frac: f64,
        mean_gap: f64,
        seed: u64,
    ) -> Self {
        assert!(record_bytes >= 128, "records must be at least two lines");
        assert!(records > 0, "need at least one record");
        ZipfGen {
            base,
            record_lines: record_bytes / LINE,
            zipf: Zipfian::new(records, theta),
            update_frac,
            pending: Vec::new(),
            mean_gap,
            rng: SimRng::from_seed(seed),
        }
    }
}

impl TraceGen for ZipfGen {
    fn next_op(&mut self) -> Op {
        if let Some(op) = self.pending.pop() {
            return op;
        }
        // Spread the zipf rank over the key space so hot records are not
        // physically adjacent (hashing, as memcached's slab allocator does).
        let rank = self.zipf.sample(&mut self.rng);
        let record = baryon_sim::rng::splitmix64(rank) % self.zipf.n();
        let rec_base = self.base + record * self.record_lines * LINE;
        let gap = sample_gap(&mut self.rng, self.mean_gap);
        if self.rng.gen_bool(self.update_frac) {
            // Update: read one line then write two field lines.
            let field = self.rng.gen_range(0, self.record_lines - 1);
            self.pending.push(Op {
                addr: rec_base + (field + 1) * LINE,
                write: true,
                gap: 1,
            });
            Op {
                addr: rec_base + field * LINE,
                write: true,
                gap,
            }
        } else {
            // Scan the record front to back: queue lines so pops come in
            // ascending address order.
            for l in (1..self.record_lines).rev() {
                self.pending.push(Op {
                    addr: rec_base + l * LINE,
                    write: false,
                    gap: 1,
                });
            }
            Op {
                addr: rec_base,
                write: false,
                gap,
            }
        }
    }

    fn save_state(&self, w: &mut Writer) {
        w.seq(self.pending.len());
        for op in &self.pending {
            w.u64(op.addr);
            w.bool(op.write);
            w.u32(op.gap);
        }
        save_rng(w, &self.rng);
    }

    fn load_state(&mut self, r: &mut Reader<'_>) -> Result<(), WireError> {
        let n = r.seq()?;
        self.pending.clear();
        for _ in 0..n {
            self.pending.push(Op {
                addr: r.u64()?,
                write: r.bool()?,
                gap: r.u32()?,
            });
        }
        self.rng = load_rng(r)?;
        Ok(())
    }
}

/// GAP-style pull-mode graph iteration (PageRank / connected components).
///
/// Memory layout: an edge array streamed sequentially, a source-value array
/// gathered at random (power-law biased) node indices, and a destination
/// array written sequentially. This is the classic three-stream signature of
/// `pr` and `cc` whose gathers dominate the LLC-miss stream.
#[derive(Debug)]
pub struct GraphGen {
    edges_base: u64,
    edges_size: u64,
    src_base: u64,
    dst_base: u64,
    values_size: u64,
    edge_cursor: u64,
    node_cursor: u64,
    degree_left: u32,
    mean_degree: u32,
    zipf: Zipfian,
    write_dst: bool,
    mean_gap: f64,
    rng: SimRng,
}

impl GraphGen {
    /// Creates a graph iteration over a region of `size` bytes.
    ///
    /// The region is split 70% edges / 15% source values / 15% destination
    /// values. `skew` controls gather popularity (twitter-like graphs are
    /// highly skewed, web-like less so).
    ///
    /// # Panics
    ///
    /// Panics if the region is too small (< 64 kB).
    pub fn new(
        base: u64,
        size: u64,
        mean_degree: u32,
        skew: f64,
        mean_gap: f64,
        seed: u64,
    ) -> Self {
        assert!(size >= 64 << 10, "graph region too small");
        let edges_size = (size * 7 / 10) & !(LINE - 1);
        let values_size = (size * 15 / 100) & !(LINE - 1);
        let nodes = values_size / 4; // 4-byte values per node
        let mut rng = SimRng::from_seed(seed);
        let edge_cursor = rng.gen_range(0, edges_size / LINE) * LINE;
        GraphGen {
            edges_base: base,
            edges_size,
            src_base: base + edges_size,
            dst_base: base + edges_size + values_size,
            values_size,
            edge_cursor,
            node_cursor: 0,
            degree_left: 0,
            mean_degree,
            zipf: Zipfian::new(nodes.max(2), skew),
            write_dst: false,
            mean_gap,
            rng,
        }
    }
}

impl TraceGen for GraphGen {
    fn next_op(&mut self) -> Op {
        let gap = sample_gap(&mut self.rng, self.mean_gap);
        if self.write_dst {
            // Finish the node: write its accumulated value.
            self.write_dst = false;
            let addr = self.dst_base + (self.node_cursor * 4) % self.values_size;
            self.node_cursor += 1;
            return Op {
                addr: addr & !(LINE - 1),
                write: true,
                gap,
            };
        }
        if self.degree_left == 0 {
            // Start the next node: stream its edge list entry.
            self.degree_left = 1 + (self.rng.gen_range(0, 2 * self.mean_degree as u64) as u32);
            let addr = self.edges_base + self.edge_cursor;
            self.edge_cursor = (self.edge_cursor + LINE) % self.edges_size;
            return Op {
                addr,
                write: false,
                gap,
            };
        }
        // Gather one neighbour's value at a popularity-skewed index.
        self.degree_left -= 1;
        if self.degree_left == 0 {
            self.write_dst = true;
        }
        let node = self.zipf.sample(&mut self.rng);
        // Hash to de-cluster hot nodes, as real vertex IDs are arbitrary.
        let node = baryon_sim::rng::splitmix64(node) % self.zipf.n();
        let addr = self.src_base + (node * 4) % self.values_size;
        Op {
            addr: addr & !(LINE - 1),
            write: false,
            gap,
        }
    }

    fn save_state(&self, w: &mut Writer) {
        w.u64(self.edge_cursor);
        w.u64(self.node_cursor);
        w.u32(self.degree_left);
        w.bool(self.write_dst);
        save_rng(w, &self.rng);
    }

    fn load_state(&mut self, r: &mut Reader<'_>) -> Result<(), WireError> {
        self.edge_cursor = r.u64()?;
        self.node_cursor = r.u64()?;
        self.degree_left = r.u32()?;
        self.write_dst = r.bool()?;
        self.rng = load_rng(r)?;
        Ok(())
    }
}

/// GAP-style direction-optimizing BFS.
///
/// Alternates *top-down* phases (pop the frontier queue, stream the popped
/// node's edge list, probe the visited/parent array at random indices and
/// append discoveries to the next queue) with *bottom-up* phases (dense
/// sequential scans of the visited array with occasional edge probes) — the
/// bursty two-regime signature of `bfs` in the GAP suite.
#[derive(Debug)]
pub struct BfsGen {
    queue_base: u64,
    queue_size: u64,
    edges_base: u64,
    edges_size: u64,
    visited_base: u64,
    visited_size: u64,
    queue_head: u64,
    queue_tail: u64,
    edge_cursor: u64,
    scan_cursor: u64,
    /// Ops left in the current phase; sign of phase: top-down vs bottom-up.
    phase_left: u32,
    top_down: bool,
    state: u8, // 0 pop, 1 edges, 2 probe, 3 push
    edges_left: u32,
    zipf: Zipfian,
    mean_gap: f64,
    rng: SimRng,
}

impl BfsGen {
    /// Creates a BFS over `[base, base + size)`: 10% frontier queues,
    /// 60% edges, 30% visited/parent values.
    ///
    /// # Panics
    ///
    /// Panics if the region is smaller than 64 kB.
    pub fn new(base: u64, size: u64, mean_gap: f64, seed: u64) -> Self {
        assert!(size >= 64 << 10, "bfs region too small");
        let queue_size = (size / 10) & !(LINE - 1);
        let edges_size = (size * 6 / 10) & !(LINE - 1);
        let visited_size = (size - queue_size - edges_size) & !(LINE - 1);
        let mut rng = SimRng::from_seed(seed);
        let phase_left = 2_000 + rng.gen_range(0, 2_000) as u32;
        BfsGen {
            queue_base: base,
            queue_size,
            edges_base: base + queue_size,
            edges_size,
            visited_base: base + queue_size + edges_size,
            visited_size,
            queue_head: 0,
            queue_tail: queue_size / 2,
            edge_cursor: 0,
            scan_cursor: 0,
            phase_left,
            top_down: true,
            state: 0,
            edges_left: 0,
            zipf: Zipfian::new((visited_size / 4).max(2), 0.8),
            mean_gap,
            rng,
        }
    }
}

impl TraceGen for BfsGen {
    fn next_op(&mut self) -> Op {
        let gap = sample_gap(&mut self.rng, self.mean_gap);
        if self.phase_left == 0 {
            self.top_down = !self.top_down;
            self.phase_left = 2_000 + self.rng.gen_range(0, 4_000) as u32;
            self.state = 0;
        }
        self.phase_left -= 1;
        if !self.top_down {
            // Bottom-up: dense sequential scan of the visited array with an
            // occasional edge-list probe.
            if self.rng.gen_bool(0.2) {
                let addr = self.edges_base + self.edge_cursor;
                self.edge_cursor = (self.edge_cursor + LINE) % self.edges_size;
                return Op {
                    addr,
                    write: false,
                    gap,
                };
            }
            let addr = self.visited_base + self.scan_cursor;
            self.scan_cursor = (self.scan_cursor + LINE) % self.visited_size;
            // A fraction of scanned nodes get claimed (written).
            let write = self.rng.gen_bool(0.15);
            return Op { addr, write, gap };
        }
        // Top-down state machine.
        match self.state {
            0 => {
                // Pop the frontier queue (sequential read).
                let addr = self.queue_base + self.queue_head;
                self.queue_head = (self.queue_head + LINE) % self.queue_size;
                self.state = 1;
                self.edges_left = 1 + self.rng.gen_range(0, 6) as u32;
                Op {
                    addr,
                    write: false,
                    gap,
                }
            }
            1 => {
                // Stream the node's edge list.
                let addr = self.edges_base + self.edge_cursor;
                self.edge_cursor = (self.edge_cursor + LINE) % self.edges_size;
                self.edges_left -= 1;
                if self.edges_left == 0 {
                    self.state = 2;
                }
                Op {
                    addr,
                    write: false,
                    gap,
                }
            }
            2 => {
                // Probe a neighbour's visited flag (random, skewed).
                let node = self.zipf.sample(&mut self.rng);
                let node = baryon_sim::rng::splitmix64(node) % self.zipf.n();
                let addr = (self.visited_base + (node * 4) % self.visited_size) & !(LINE - 1);
                // Half the probes discover a new node -> claim + push.
                self.state = if self.rng.gen_bool(0.5) { 3 } else { 0 };
                Op {
                    addr,
                    write: self.state == 3,
                    gap,
                }
            }
            _ => {
                // Append the discovery to the next frontier queue.
                let addr = self.queue_base + self.queue_tail;
                self.queue_tail = (self.queue_tail + LINE) % self.queue_size;
                self.state = 0;
                Op {
                    addr,
                    write: true,
                    gap,
                }
            }
        }
    }

    fn save_state(&self, w: &mut Writer) {
        w.u64(self.queue_head);
        w.u64(self.queue_tail);
        w.u64(self.edge_cursor);
        w.u64(self.scan_cursor);
        w.u32(self.phase_left);
        w.bool(self.top_down);
        w.u8(self.state);
        w.u32(self.edges_left);
        save_rng(w, &self.rng);
    }

    fn load_state(&mut self, r: &mut Reader<'_>) -> Result<(), WireError> {
        self.queue_head = r.u64()?;
        self.queue_tail = r.u64()?;
        self.edge_cursor = r.u64()?;
        self.scan_cursor = r.u64()?;
        self.phase_left = r.u32()?;
        self.top_down = r.bool()?;
        self.state = r.u8()?;
        self.edges_left = r.u32()?;
        self.rng = load_rng(r)?;
        Ok(())
    }
}

/// CNN inference: layer-by-layer weight and activation sweeps.
///
/// Weights are re-read every batch (strong temporal reuse at multi-MB
/// granularity); activations ping-pong between two buffers.
#[derive(Debug)]
pub struct TensorGen {
    weights_base: u64,
    act_base: u64,
    layers: u32,
    layer: u32,
    phase: u8, // 0 = weights, 1 = input act, 2 = output act
    cursor: u64,
    layer_weight_size: u64,
    layer_act_size: u64,
    mean_gap: f64,
    rng: SimRng,
}

impl TensorGen {
    /// Creates a CNN-like sweep: 80% of the region is weights, 20% is two
    /// activation buffers, processed as `layers` layers per batch.
    ///
    /// # Panics
    ///
    /// Panics if the region is too small (< 64 kB) or `layers == 0`.
    pub fn new(base: u64, size: u64, layers: u32, mean_gap: f64, seed: u64) -> Self {
        assert!(size >= 64 << 10, "tensor region too small");
        assert!(layers > 0, "need at least one layer");
        let weights_size = (size * 8 / 10) & !(LINE - 1);
        let act_size = (size - weights_size) & !(LINE - 1);
        TensorGen {
            weights_base: base,
            act_base: base + weights_size,
            layers,
            layer: 0,
            phase: 0,
            cursor: 0,
            layer_weight_size: (weights_size / layers as u64).max(LINE) & !(LINE - 1),
            layer_act_size: (act_size / 2).max(LINE) & !(LINE - 1),
            mean_gap,
            rng: SimRng::from_seed(seed),
        }
    }
}

impl TraceGen for TensorGen {
    fn next_op(&mut self) -> Op {
        let gap = sample_gap(&mut self.rng, self.mean_gap);
        let (addr, write, limit) = match self.phase {
            0 => (
                self.weights_base + self.layer as u64 * self.layer_weight_size + self.cursor,
                false,
                self.layer_weight_size,
            ),
            1 => (
                self.act_base + (self.layer as u64 % 2) * self.layer_act_size + self.cursor,
                false,
                self.layer_act_size,
            ),
            _ => (
                self.act_base + ((self.layer as u64 + 1) % 2) * self.layer_act_size + self.cursor,
                true,
                self.layer_act_size,
            ),
        };
        self.cursor += LINE;
        if self.cursor >= limit {
            self.cursor = 0;
            self.phase += 1;
            if self.phase > 2 {
                self.phase = 0;
                self.layer = (self.layer + 1) % self.layers;
            }
        }
        Op { addr, write, gap }
    }

    fn save_state(&self, w: &mut Writer) {
        w.u32(self.layer);
        w.u8(self.phase);
        w.u64(self.cursor);
        save_rng(w, &self.rng);
    }

    fn load_state(&mut self, r: &mut Reader<'_>) -> Result<(), WireError> {
        self.layer = r.u32()?;
        self.phase = r.u8()?;
        self.cursor = r.u64()?;
        self.rng = load_rng(r)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drive(mut g: impl TraceGen, n: usize) -> Vec<Op> {
        (0..n).map(|_| g.next_op()).collect()
    }

    #[test]
    fn stream_stays_in_region_and_wraps() {
        let ops = drive(StreamGen::new(4096, 8192, 2, 1, 5.0, 1), 1000);
        for op in &ops {
            assert!(op.addr >= 4096 && op.addr < 4096 + 8192);
        }
        // Both read and write streams exist.
        assert!(ops.iter().any(|o| o.write) && ops.iter().any(|o| !o.write));
    }

    #[test]
    fn stream_is_sequential_per_stream() {
        let ops = drive(StreamGen::new(0, 1 << 20, 1, 0, 0.0, 2), 100);
        for w in ops.windows(2) {
            let d = w[1].addr.wrapping_sub(w[0].addr);
            assert!(d == 64 || w[1].addr < w[0].addr, "stride must be one line");
        }
    }

    #[test]
    fn chase_respects_region() {
        let ops = drive(ChaseGen::new(1 << 20, 1 << 20, 0.7, 0.3, 10.0, 3), 5000);
        for op in &ops {
            assert!(op.addr >= 1 << 20 && op.addr < 2 << 20);
        }
        let writes = ops.iter().filter(|o| o.write).count();
        let frac = writes as f64 / ops.len() as f64;
        assert!((frac - 0.3).abs() < 0.05, "write frac {frac}");
    }

    #[test]
    fn chase_locality_knob_matters() {
        let block_switches = |stay: f64| {
            let ops = drive(ChaseGen::new(0, 16 << 20, stay, 0.0, 0.0, 4), 10_000);
            ops.windows(2)
                .filter(|w| w[0].addr / 2048 != w[1].addr / 2048)
                .count()
        };
        assert!(block_switches(0.95) < block_switches(0.2) / 2);
    }

    #[test]
    fn zipf_reads_scan_records() {
        let mut g = ZipfGen::new(0, 100, 1024, 0.99, 0.0, 2.0, 5);
        let first = g.next_op();
        assert!(!first.write);
        // The next 15 ops scan the rest of the 16-line record sequentially.
        let mut prev = first.addr;
        for _ in 0..15 {
            let op = g.next_op();
            assert_eq!(op.addr, prev + 64);
            prev = op.addr;
        }
    }

    #[test]
    fn zipf_update_fraction_respected() {
        let ops = drive(ZipfGen::new(0, 1000, 1024, 0.99, 1.0, 2.0, 6), 100);
        // All queries are updates: every op is a write.
        assert!(ops.iter().all(|o| o.write));
    }

    #[test]
    fn zipf_addresses_in_store() {
        let ops = drive(ZipfGen::new(4096, 50, 1024, 0.99, 0.5, 2.0, 7), 2000);
        for op in &ops {
            assert!(op.addr >= 4096 && op.addr < 4096 + 50 * 1024);
        }
    }

    #[test]
    fn graph_has_three_region_signature() {
        let size = 4u64 << 20;
        let ops = drive(GraphGen::new(0, size, 8, 0.99, 3.0, 8), 20_000);
        // Recompute the generator's aligned region boundaries.
        let edges_end = (size * 7 / 10) & !63;
        let src_end = edges_end + ((size * 15 / 100) & !63);
        let edge_ops = ops.iter().filter(|o| o.addr < edges_end).count();
        let gathers = ops
            .iter()
            .filter(|o| o.addr >= edges_end && o.addr < src_end)
            .count();
        let writes = ops.iter().filter(|o| o.addr >= src_end).count();
        assert!(edge_ops > 0 && gathers > 0 && writes > 0);
        assert!(gathers > edge_ops, "gathers dominate");
        assert!(
            ops.iter().filter(|o| o.write).count() == writes,
            "only dst is written"
        );
    }

    #[test]
    fn tensor_writes_only_output_acts() {
        let ops = drive(TensorGen::new(0, 1 << 20, 4, 1.0, 9), 50_000);
        let weights_end = ((1u64 << 20) * 8 / 10) & !63;
        for op in &ops {
            if op.write {
                assert!(op.addr >= weights_end, "weights must not be written");
            }
        }
        assert!(ops.iter().any(|o| o.write));
    }

    #[test]
    fn tensor_weights_reused_across_batches() {
        let mut g = TensorGen::new(0, 256 << 10, 2, 0.0, 10);
        let mut first_pass = std::collections::HashSet::new();
        let mut reuse = false;
        for i in 0..200_000 {
            let op = g.next_op();
            if op.addr < (256u64 << 10) * 8 / 10 && !first_pass.insert(op.addr) {
                reuse = true;
                break;
            }
            if i > 150_000 {
                break;
            }
        }
        assert!(reuse, "weights should be re-read on the next batch");
    }

    #[test]
    fn generators_are_deterministic() {
        let a = drive(ChaseGen::new(0, 1 << 20, 0.5, 0.2, 5.0, 42), 100);
        let b = drive(ChaseGen::new(0, 1 << 20, 0.5, 0.2, 5.0, 42), 100);
        assert_eq!(a, b);
    }

    #[test]
    fn gap_mean_roughly_matches() {
        let ops = drive(StreamGen::new(0, 1 << 20, 1, 0, 20.0, 11), 20_000);
        let mean = ops.iter().map(|o| o.gap as f64).sum::<f64>() / ops.len() as f64;
        assert!((mean - 20.0).abs() < 2.0, "gap mean {mean}");
    }

    #[test]
    #[should_panic(expected = "at least one stream")]
    fn zero_streams_panics() {
        StreamGen::new(0, 1 << 20, 0, 0, 1.0, 0);
    }

    #[test]
    fn save_load_resumes_every_generator_bit_identically() {
        let builders: Vec<fn() -> Box<dyn TraceGen>> = vec![
            || Box::new(StreamGen::new(0, 1 << 20, 4, 1, 5.0, 42)),
            || Box::new(ChaseGen::new(0, 1 << 20, 0.7, 0.3, 10.0, 42)),
            || Box::new(ZipfGen::new(0, 500, 1024, 0.99, 0.4, 2.0, 42)),
            || Box::new(GraphGen::new(0, 4 << 20, 8, 0.99, 3.0, 42)),
            || Box::new(BfsGen::new(0, 4 << 20, 3.0, 42)),
            || Box::new(TensorGen::new(0, 1 << 20, 4, 1.0, 42)),
        ];
        for (i, build) in builders.iter().enumerate() {
            let mut live = build();
            for _ in 0..777 {
                live.next_op();
            }
            let mut w = Writer::new();
            live.save_state(&mut w);
            let bytes = w.into_bytes();
            let mut restored = build();
            let mut r = Reader::new(&bytes);
            restored.load_state(&mut r).expect("state loads");
            r.finish().expect("no trailing bytes");
            for k in 0..2000 {
                assert_eq!(
                    live.next_op(),
                    restored.next_op(),
                    "generator {i} diverged at op {k} after restore"
                );
            }
        }
    }
}

#[cfg(test)]
mod bfs_tests {
    use super::*;

    fn drive(mut g: impl TraceGen, n: usize) -> Vec<Op> {
        (0..n).map(|_| g.next_op()).collect()
    }

    #[test]
    fn bfs_stays_in_region() {
        let ops = drive(BfsGen::new(4096, 4 << 20, 3.0, 5), 30_000);
        for op in &ops {
            assert!(op.addr >= 4096 && op.addr < 4096 + (4 << 20));
        }
    }

    #[test]
    fn bfs_mixes_reads_and_writes() {
        let ops = drive(BfsGen::new(0, 4 << 20, 3.0, 5), 30_000);
        let writes = ops.iter().filter(|o| o.write).count() as f64 / ops.len() as f64;
        assert!((0.05..0.5).contains(&writes), "bfs write fraction {writes}");
    }

    #[test]
    fn bfs_touches_all_three_regions() {
        let size = 4u64 << 20;
        let ops = drive(BfsGen::new(0, size, 3.0, 5), 30_000);
        let queue_end = (size / 10) & !63;
        let edges_end = queue_end + ((size * 6 / 10) & !63);
        let queue = ops.iter().filter(|o| o.addr < queue_end).count();
        let edges = ops
            .iter()
            .filter(|o| o.addr >= queue_end && o.addr < edges_end)
            .count();
        let visited = ops.iter().filter(|o| o.addr >= edges_end).count();
        assert!(
            queue > 0 && edges > 0 && visited > 0,
            "q {queue} e {edges} v {visited}"
        );
        assert!(edges > queue, "edge streaming dominates queue traffic");
    }

    #[test]
    fn bfs_alternates_phases() {
        // Bottom-up phases are visited-array dense: measure the visited
        // share in windows and expect both low and high windows.
        let size = 4u64 << 20;
        let ops = drive(BfsGen::new(0, size, 0.0, 6), 60_000);
        let edges_end = ((size / 10) & !63) + ((size * 6 / 10) & !63);
        let mut shares = Vec::new();
        for window in ops.chunks(2_000) {
            let v =
                window.iter().filter(|o| o.addr >= edges_end).count() as f64 / window.len() as f64;
            shares.push(v);
        }
        let min = shares.iter().cloned().fold(1.0f64, f64::min);
        let max = shares.iter().cloned().fold(0.0f64, f64::max);
        assert!(
            max - min > 0.3,
            "phase contrast too weak: {min:.2}..{max:.2}"
        );
    }

    #[test]
    fn bfs_deterministic() {
        let a = drive(BfsGen::new(0, 1 << 20, 2.0, 9), 500);
        let b = drive(BfsGen::new(0, 1 << 20, 2.0, 9), 500);
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "too small")]
    fn bfs_tiny_region_panics() {
        BfsGen::new(0, 1024, 1.0, 0);
    }
}

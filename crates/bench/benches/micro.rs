//! Microbenchmarks for the hot primitives: FPC/BDI/C-Pack compression,
//! the cacheline-aligned range check, metadata codecs, the sub-block
//! locator, the device models, and end-to-end simulator stepping. These are
//! not paper figures; they guard the simulator's own performance.
//!
//! Hermetic replacement for the former criterion harness: each benchmark is
//! a closure timed with `std::time::Instant` after automatic calibration
//! (iterations double until a run exceeds the measurement window). Results
//! print as ns/iter and land in `baryon-results/micro.csv`.
//!
//! Knobs:
//!
//! * `BARYON_MICRO_MS` — target measurement window per benchmark in
//!   milliseconds (default 20),
//! * `BARYON_MICRO_QUICK` — if set, use a 2 ms window for smoke runs.

use baryon_compress::{bdi, cpack, fpc, Cf, RangeCompressor};
use baryon_core::metadata::stage_entry::RangeRef;
use baryon_core::metadata::{locate_sub_block, RemapEntry};
use baryon_mem::frfcfs::DetailedDram;
use baryon_mem::{DeviceConfig, MemDevice};
use std::hint::black_box;
use std::time::{Duration, Instant};

/// One measured benchmark: calibrates an iteration count whose wall time
/// exceeds the window, then reports mean ns/iter over the final batch.
struct Bench {
    window: Duration,
    rows: Vec<String>,
}

impl Bench {
    fn new() -> Bench {
        let quick = std::env::var("BARYON_MICRO_QUICK").is_ok();
        let ms = std::env::var("BARYON_MICRO_MS")
            .ok()
            .and_then(|v| v.parse::<u64>().ok())
            .unwrap_or(if quick { 2 } else { 20 });
        Bench {
            window: Duration::from_millis(ms),
            rows: Vec::new(),
        }
    }

    fn run(&mut self, name: &str, mut f: impl FnMut()) {
        // Warm-up and calibration: double the batch until it fills the
        // window, then measure that batch.
        let mut iters: u64 = 1;
        let ns_per_iter = loop {
            let t0 = Instant::now();
            for _ in 0..iters {
                f();
            }
            let elapsed = t0.elapsed();
            if elapsed >= self.window || iters >= 1 << 30 {
                break elapsed.as_nanos() as f64 / iters as f64;
            }
            // Jump straight toward the window once we have a rate estimate.
            let scale =
                (self.window.as_nanos() as f64 / elapsed.as_nanos().max(1) as f64).clamp(2.0, 1e6);
            iters = (iters as f64 * scale).ceil() as u64;
        };
        println!("{name:<34} {ns_per_iter:>12.1} ns/iter  ({iters} iters)");
        self.rows.push(format!("{name},{ns_per_iter:.1},{iters}"));
    }
}

fn narrow_ints(n: usize) -> Vec<u8> {
    let mut v = Vec::with_capacity(n);
    let mut i = 0u32;
    while v.len() < n {
        v.extend_from_slice(&(1_000_000 + i % 100).to_le_bytes());
        i += 1;
    }
    v
}

fn random_bytes(n: usize) -> Vec<u8> {
    let mut v = Vec::with_capacity(n);
    let mut x = 0x12345u64;
    while v.len() < n {
        x = x
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        v.extend_from_slice(&x.to_le_bytes());
    }
    v
}

fn bench_compressors(b: &mut Bench) {
    let compressible = narrow_ints(64);
    let incompressible = random_bytes(64);
    b.run("fpc_size_64B_compressible", || {
        black_box(fpc::compressed_size(black_box(&compressible)));
    });
    b.run("fpc_size_64B_random", || {
        black_box(fpc::compressed_size(black_box(&incompressible)));
    });
    b.run("bdi_size_64B_compressible", || {
        black_box(bdi::compressed_size(black_box(&compressible)));
    });
    b.run("bdi_size_64B_random", || {
        black_box(bdi::compressed_size(black_box(&incompressible)));
    });
    b.run("cpack_size_64B_compressible", || {
        black_box(cpack::compressed_size(black_box(&compressible)));
    });
    b.run("cpack_size_64B_random", || {
        black_box(cpack::compressed_size(black_box(&incompressible)));
    });
    let big = narrow_ints(1024);
    let rc = RangeCompressor::cacheline_aligned();
    b.run("range_best_1kB", || {
        black_box(rc.best_range(black_box(&big), 1));
    });
}

fn bench_metadata(b: &mut Bench) {
    let mut entry = RemapEntry::empty();
    entry.set_range(0, Cf::X4);
    entry.set_range(4, Cf::X2);
    entry.set_range(6, Cf::X1);
    b.run("remap_encode16", || {
        black_box(black_box(entry).encode16());
    });
    let bits = entry.encode16();
    b.run("remap_decode16", || {
        black_box(RemapEntry::decode16(black_box(bits)));
    });
    let range = RangeRef {
        blk_off: 7,
        sub_off: 2,
        cf: Cf::X2,
        dirty: true,
    };
    b.run("stage_slot_encode8", || {
        black_box(black_box(range).encode8());
    });

    let entries: Vec<RemapEntry> = (0..8)
        .map(|i| {
            let mut e = RemapEntry::empty();
            e.set_range(0, Cf::X2);
            e.set_range(4, if i % 2 == 0 { Cf::X4 } else { Cf::X2 });
            e
        })
        .collect();
    b.run("locate_sub_block", || {
        black_box(locate_sub_block(black_box(&entries), 6, 5));
    });
}

fn bench_devices(b: &mut Bench) {
    // Device state is tiny; constructing it inside the timed closure keeps
    // each iteration independent (the former `iter_batched` pattern).
    b.run("dram_simple_model_stream", || {
        let mut d = MemDevice::new(DeviceConfig::ddr4_3200());
        let mut now = 0u64;
        for i in 0..256u64 {
            now += 40;
            d.access(now, i * 64, 64, false);
        }
        black_box(&d);
    });
    b.run("dram_detailed_model_stream", || {
        let mut d = DetailedDram::table1();
        let mut now = 0u64;
        for i in 0..256u64 {
            now += 40;
            d.access(now, i * 64, 64, false);
        }
        black_box(&d);
    });
}

fn bench_simulator_throughput(b: &mut Bench) {
    use baryon_core::config::BaryonConfig;
    use baryon_core::system::{ControllerKind, System, SystemConfig};
    use baryon_workloads::{by_name, Scale};
    let scale = Scale { divisor: 2048 };
    let w = by_name("505.mcf_r", scale).expect("workload");
    b.run("system_step_1k_insts_per_core", || {
        let mut cfg = SystemConfig::with_controller(
            scale,
            ControllerKind::Baryon(BaryonConfig::default_cache_mode(scale)),
        );
        cfg.warmup_insts = 0;
        let mut sys = System::new(cfg, &w, 1);
        black_box(sys.run(1_000));
    });
}

fn main() {
    baryon_bench::banner("micro", "simulator hot-path microbenchmarks");
    let mut b = Bench::new();
    bench_compressors(&mut b);
    bench_metadata(&mut b);
    bench_devices(&mut b);
    bench_simulator_throughput(&mut b);
    baryon_bench::write_csv("micro", "benchmark,ns_per_iter,iters", &b.rows);
}

//! Criterion microbenchmarks for the hot primitives: FPC/BDI compression,
//! the cacheline-aligned range check, metadata codecs, and the sub-block
//! locator. These are not paper figures; they guard the simulator's own
//! performance.

use baryon_compress::{bdi, cpack, fpc, Cf, RangeCompressor};
use baryon_mem::frfcfs::DetailedDram;
use baryon_mem::{DeviceConfig, MemDevice};
use baryon_core::metadata::stage_entry::RangeRef;
use baryon_core::metadata::{locate_sub_block, RemapEntry};
use criterion::{black_box, criterion_group, criterion_main, Criterion};

fn narrow_ints(n: usize) -> Vec<u8> {
    let mut v = Vec::with_capacity(n);
    let mut i = 0u32;
    while v.len() < n {
        v.extend_from_slice(&(1_000_000 + i % 100).to_le_bytes());
        i += 1;
    }
    v
}

fn random_bytes(n: usize) -> Vec<u8> {
    let mut v = Vec::with_capacity(n);
    let mut x = 0x12345u64;
    while v.len() < n {
        x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        v.extend_from_slice(&x.to_le_bytes());
    }
    v
}

fn bench_compressors(c: &mut Criterion) {
    let compressible = narrow_ints(64);
    let incompressible = random_bytes(64);
    c.bench_function("fpc_size_64B_compressible", |b| {
        b.iter(|| fpc::compressed_size(black_box(&compressible)))
    });
    c.bench_function("fpc_size_64B_random", |b| {
        b.iter(|| fpc::compressed_size(black_box(&incompressible)))
    });
    c.bench_function("bdi_size_64B_compressible", |b| {
        b.iter(|| bdi::compressed_size(black_box(&compressible)))
    });
    c.bench_function("bdi_size_64B_random", |b| {
        b.iter(|| bdi::compressed_size(black_box(&incompressible)))
    });
    let big = narrow_ints(1024);
    c.bench_function("range_best_1kB", |b| {
        let rc = RangeCompressor::cacheline_aligned();
        b.iter(|| rc.best_range(black_box(&big), 1))
    });
}

fn bench_metadata(c: &mut Criterion) {
    let mut entry = RemapEntry::empty();
    entry.set_range(0, Cf::X4);
    entry.set_range(4, Cf::X2);
    entry.set_range(6, Cf::X1);
    c.bench_function("remap_encode16", |b| {
        b.iter(|| black_box(entry).encode16())
    });
    let bits = entry.encode16();
    c.bench_function("remap_decode16", |b| {
        b.iter(|| RemapEntry::decode16(black_box(bits)))
    });
    let range = RangeRef {
        blk_off: 7,
        sub_off: 2,
        cf: Cf::X2,
        dirty: true,
    };
    c.bench_function("stage_slot_encode8", |b| b.iter(|| black_box(range).encode8()));

    let entries: Vec<RemapEntry> = (0..8)
        .map(|i| {
            let mut e = RemapEntry::empty();
            e.set_range(0, Cf::X2);
            e.set_range(4, if i % 2 == 0 { Cf::X4 } else { Cf::X2 });
            e
        })
        .collect();
    c.bench_function("locate_sub_block", |b| {
        b.iter(|| locate_sub_block(black_box(&entries), 6, 5))
    });
}

fn bench_devices(c: &mut Criterion) {
    c.bench_function("dram_simple_model_stream", |b| {
        b.iter_batched(
            || MemDevice::new(DeviceConfig::ddr4_3200()),
            |mut d| {
                let mut now = 0u64;
                for i in 0..256u64 {
                    now += 40;
                    d.access(now, i * 64, 64, false);
                }
                d
            },
            criterion::BatchSize::SmallInput,
        )
    });
    c.bench_function("dram_detailed_model_stream", |b| {
        b.iter_batched(
            DetailedDram::table1,
            |mut d| {
                let mut now = 0u64;
                for i in 0..256u64 {
                    now += 40;
                    d.access(now, i * 64, 64, false);
                }
                d
            },
            criterion::BatchSize::SmallInput,
        )
    });
}

fn bench_cpack(c: &mut Criterion) {
    let compressible = narrow_ints(64);
    let incompressible = random_bytes(64);
    c.bench_function("cpack_size_64B_compressible", |b| {
        b.iter(|| cpack::compressed_size(black_box(&compressible)))
    });
    c.bench_function("cpack_size_64B_random", |b| {
        b.iter(|| cpack::compressed_size(black_box(&incompressible)))
    });
}

fn bench_simulator_throughput(c: &mut Criterion) {
    use baryon_core::config::BaryonConfig;
    use baryon_core::system::{ControllerKind, System, SystemConfig};
    use baryon_workloads::{by_name, Scale};
    let scale = Scale { divisor: 2048 };
    let w = by_name("505.mcf_r", scale).expect("workload");
    c.bench_function("system_step_1k_insts_per_core", |b| {
        b.iter_batched(
            || {
                let mut cfg = SystemConfig::with_controller(
                    scale,
                    ControllerKind::Baryon(BaryonConfig::default_cache_mode(scale)),
                );
                cfg.warmup_insts = 0;
                System::new(cfg, &w, 1)
            },
            |mut sys| sys.run(1_000),
            criterion::BatchSize::SmallInput,
        )
    });
}

criterion_group!(
    benches,
    bench_compressors,
    bench_cpack,
    bench_metadata,
    bench_devices,
    bench_simulator_throughput
);
criterion_main!(benches);

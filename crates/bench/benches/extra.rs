//! Beyond-the-figures ablations the paper reports in prose or discusses in
//! §III-F, on the representative subset (normalized to default Baryon):
//!
//! * **compressed fast-to-slow writeback** on/off — the paper reports the
//!   optimization saving 7.2% slow-memory bandwidth and 3.1% performance;
//! * **cache-area associativity** 1/2/4/8 and fully-associative (§III-F
//!   "supporting high associativities");
//! * **victim policy** LRU / FIFO / random (§III-E calls these orthogonal);
//! * **C-Pack as a third compressor** (§III-B "alternative schemes");
//! * the **static mixed cache + flat partition** (§III-A) across flat
//!   fractions;
//! * **related design points**: the OS page-migration strawman of §II-A
//!   and the micro-sector cache of §V.

use baryon_bench::{banner, run, timed, write_csv, Params};
use baryon_core::config::{BaryonConfig, VictimPolicy};
use baryon_core::system::ControllerKind;
use baryon_sim::summary::geomean;

/// Design points beyond the paper's evaluated baselines (§II-A's OS-based
/// strawman and §V's micro-sector cache), compared against Baryon.
fn related_design_points(params: &Params, rows: &mut Vec<String>) {
    println!("\n--- related design points (speedup over os-paging) ---");
    println!(
        "{:<16} {:>10} {:>13} {:>9}",
        "workload", "os-paging", "micro-sector", "baryon"
    );
    let mut geos: [Vec<f64>; 2] = Default::default();
    for w in params.representative() {
        let os = timed(&format!("{} os-paging", w.name), || {
            run(params, &w, ControllerKind::OsPaging)
        });
        let ms = timed(&format!("{} micro-sector", w.name), || {
            run(params, &w, ControllerKind::MicroSector)
        });
        let ba = timed(&format!("{} baryon", w.name), || {
            run(
                params,
                &w,
                ControllerKind::Baryon(BaryonConfig::default_cache_mode(params.scale)),
            )
        });
        let s_ms = os.total_cycles as f64 / ms.total_cycles as f64;
        let s_ba = os.total_cycles as f64 / ba.total_cycles as f64;
        geos[0].push(s_ms);
        geos[1].push(s_ba);
        println!(
            "{:<16} {:>10.3} {:>12.3}x {:>8.3}x",
            w.name, 1.0, s_ms, s_ba
        );
        rows.push(format!("design_points,{},{:.4},{:.4}", w.name, s_ms, s_ba));
    }
    let g_ms = geomean(&geos[0]).unwrap_or(0.0);
    let g_ba = geomean(&geos[1]).unwrap_or(0.0);
    println!(
        "{:<16} {:>10.3} {:>12.3}x {:>8.3}x",
        "geomean", 1.0, g_ms, g_ba
    );
    rows.push(format!("design_points,geomean,{g_ms:.4},{g_ba:.4}"));
    println!("(hardware management beats OS paging; packing sectors from");
    println!(" multiple blocks helps; compression + staging helps further)");
}

type Tweak = Box<dyn Fn(&mut BaryonConfig)>;

/// §III-A's static cache + flat combination across partition fractions,
/// compared to the pure schemes on the representative subset.
fn mixed_partition_sweep(params: &Params, rows: &mut Vec<String>) {
    println!("\n--- mixed cache+flat partition (geomean cycles vs pure flat) ---");
    let mut results: Vec<(String, Vec<f64>)> = Vec::new();
    let points: Vec<(String, ControllerKind)> = vec![
        (
            "flat-1.00".into(),
            ControllerKind::Baryon(BaryonConfig::default_flat_fa(params.scale)),
        ),
        (
            "mixed-0.75".into(),
            ControllerKind::Baryon(BaryonConfig::default_mixed(params.scale, 0.75)),
        ),
        (
            "mixed-0.50".into(),
            ControllerKind::Baryon(BaryonConfig::default_mixed(params.scale, 0.5)),
        ),
        (
            "mixed-0.25".into(),
            ControllerKind::Baryon(BaryonConfig::default_mixed(params.scale, 0.25)),
        ),
    ];
    for (label, kind) in &points {
        let mut cycles = Vec::new();
        for w in params.representative() {
            let r = timed(&format!("{} {label}", w.name), || {
                run(params, &w, kind.clone())
            });
            cycles.push(r.total_cycles as f64);
        }
        results.push((label.clone(), cycles));
    }
    let base = results[0].1.clone();
    for (label, cycles) in &results {
        let rel: Vec<f64> = cycles.iter().zip(&base).map(|(c, b)| b / c).collect();
        let g = geomean(&rel).unwrap_or(0.0);
        println!("{label:<12} {g:>8.3}");
        rows.push(format!("mixed,{label},{g:.4}"));
    }
    println!("(smaller flat partitions trade OS-visible capacity for cache");
    println!(" flexibility; the paper supports any static split, §III-A)");
}

fn main() {
    let params = Params::from_env();
    banner("Extra", "prose claims and §III-F discussions");

    let subset = params.representative();
    let mut variants: Vec<(String, Tweak)> = vec![
        ("default".into(), Box::new(|_| {})),
        (
            "no-compressed-writeback".into(),
            Box::new(|c| c.compressed_writeback = false),
        ),
        ("cpack".into(), Box::new(|c| c.use_cpack = true)),
        (
            "policy-fifo".into(),
            Box::new(|c| c.victim_policy = VictimPolicy::Fifo),
        ),
        (
            "policy-random".into(),
            Box::new(|c| c.victim_policy = VictimPolicy::Random),
        ),
        (
            "policy-clock".into(),
            Box::new(|c| c.victim_policy = VictimPolicy::Clock),
        ),
        (
            "policy-lfu".into(),
            Box::new(|c| c.victim_policy = VictimPolicy::Lfu),
        ),
    ];
    for assoc in [1usize, 2, 8] {
        variants.push((format!("assoc-{assoc}"), Box::new(move |c| c.assoc = assoc)));
    }
    variants.push(("assoc-full".into(), Box::new(|c| c.assoc = usize::MAX)));

    // Baseline runs (also capture slow-memory traffic for the bandwidth
    // claim).
    let mut rows = Vec::new();
    let mut base: std::collections::BTreeMap<&str, (u64, u64)> = Default::default();
    for w in &subset {
        let r = timed(&format!("{} default", w.name), || {
            run(
                &params,
                w,
                ControllerKind::Baryon(BaryonConfig::default_cache_mode(params.scale)),
            )
        });
        base.insert(w.name, (r.total_cycles, r.serve.slow_bytes));
    }

    println!("\n{:<26} {:>10} {:>16}", "variant", "perf", "slow-traffic");
    for (label, tweak) in &variants {
        let mut perfs = Vec::new();
        let mut traffic = Vec::new();
        for w in &subset {
            let mut cfg = BaryonConfig::default_cache_mode(params.scale);
            tweak(&mut cfg);
            let (cycles, slow) = if label == "default" {
                base[w.name]
            } else {
                let r = timed(&format!("{} {label}", w.name), || {
                    run(&params, w, ControllerKind::Baryon(cfg.clone()))
                });
                (r.total_cycles, r.serve.slow_bytes)
            };
            let (bc, bs) = base[w.name];
            perfs.push(bc as f64 / cycles as f64);
            traffic.push(slow as f64 / bs.max(1) as f64);
        }
        let gp = geomean(&perfs).unwrap_or(0.0);
        let gt = geomean(&traffic).unwrap_or(0.0);
        println!("{label:<26} {gp:>10.3} {gt:>15.3}x");
        rows.push(format!("{label},{gp:.4},{gt:.4}"));
    }

    mixed_partition_sweep(&params, &mut rows);
    related_design_points(&params, &mut rows);

    println!("\npaper prose: removing compressed writeback should cost ~3.1%");
    println!("performance and ~7.2% slow bandwidth; higher associativity helps");
    println!("conflict misses; the victim policy is a second-order effect.");

    write_csv("extra", "variant,rel_perf,rel_slow_traffic", &rows);
}

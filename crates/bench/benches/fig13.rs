//! Fig 13: design-parameter exploration, all normalized to the default
//! Baryon configuration on the representative subset:
//!
//! (a) two-level replacement vs sub-block-only replacement (paper: ~25%
//!     degradation without block-level replacements),
//! (b) super-block size in blocks (2/4/8/16/32; paper: 8 is sufficient,
//!     very large sizes can hurt, e.g. mcf -50%),
//! (c) stage-area size sweep including no-stage (paper: no stage loses
//!     34.5% on average; larger stage helps up to ~64 MB),
//! (d) selective-commit parameter k in {0, 1, 2, 4, inf} plus commit-all.

use baryon_bench::{banner, run, timed, write_csv, Params};
use baryon_core::config::BaryonConfig;
use baryon_core::system::ControllerKind;
use baryon_sim::summary::geomean;
use std::collections::BTreeMap;

type Tweak = Box<dyn Fn(&mut BaryonConfig)>;

fn main() {
    let params = Params::from_env();
    banner(
        "Fig 13",
        "design-parameter exploration (normalized to default)",
    );

    let subset = params.representative();
    let default_stage = BaryonConfig::default_stage_bytes(params.scale);

    let mut variants: Vec<(String, String, Tweak)> = vec![
        ("a".into(), "default".into(), Box::new(|_| {})),
        (
            "a".into(),
            "sub-block-only".into(),
            Box::new(|c| c.two_level_replacement = false),
        ),
    ];
    for bps in [2u64, 4, 8, 16, 32] {
        variants.push((
            "b".into(),
            format!("superblock-{bps}"),
            Box::new(move |c| c.geometry.blocks_per_super = bps),
        ));
    }
    for frac in [0u64, 8, 4, 2, 1] {
        let (label, bytes) = match default_stage.checked_div(frac) {
            None => ("no-stage".to_owned(), 0),
            Some(b) => (format!("stage-{}kB", b >> 10), b),
        };
        variants.push(("c".into(), label, Box::new(move |c| c.stage_bytes = bytes)));
    }
    for k in [0.0f64, 1.0, 2.0, 4.0] {
        variants.push((
            "d".into(),
            format!("k={k}"),
            Box::new(move |c| c.commit_k = k),
        ));
    }
    variants.push((
        "d".into(),
        "k=inf".into(),
        Box::new(|c| c.commit_k = f64::INFINITY),
    ));
    variants.push((
        "d".into(),
        "commit-all".into(),
        Box::new(|c| c.commit_all = true),
    ));

    // Baseline cycles per workload (default config).
    let mut base: BTreeMap<&str, u64> = BTreeMap::new();
    for w in &subset {
        let r = timed(&format!("{} default", w.name), || {
            run(
                &params,
                w,
                ControllerKind::Baryon(BaryonConfig::default_cache_mode(params.scale)),
            )
        });
        base.insert(w.name, r.total_cycles);
    }

    let mut rows = Vec::new();
    println!(
        "\n{:<6} {:<18} {}",
        "panel",
        "variant",
        subset
            .iter()
            .map(|w| format!("{:>10}", &w.name[..w.name.len().min(10)]))
            .collect::<String>()
            + "    geomean"
    );
    for (panel, label, tweak) in &variants {
        let mut perfs = Vec::new();
        let mut line = format!("{panel:<6} {label:<18}");
        let mut csv = format!("{panel},{label}");
        for w in &subset {
            let mut cfg = BaryonConfig::default_cache_mode(params.scale);
            tweak(&mut cfg);
            let r = if *label == "default" {
                None
            } else {
                Some(timed(&format!("{} {label}", w.name), || {
                    run(&params, w, ControllerKind::Baryon(cfg.clone()))
                }))
            };
            let cycles = r.map_or(base[w.name], |r| r.total_cycles);
            let perf = base[w.name] as f64 / cycles as f64;
            perfs.push(perf);
            line.push_str(&format!(" {perf:>9.3}"));
            csv.push_str(&format!(",{perf:.4}"));
        }
        let g = geomean(&perfs).unwrap_or(0.0);
        line.push_str(&format!(" {g:>10.3}"));
        csv.push_str(&format!(",{g:.4}"));
        println!("{line}");
        rows.push(csv);
    }

    println!("\npaper shape: (a) sub-block-only loses ~25%; (b) 8-block super-blocks");
    println!("suffice and 32 can hurt; (c) no stage loses 34.5% avg; (d) k=1..4 are");
    println!("similar and beat k=0, k=inf, and commit-all.");

    let header = format!(
        "panel,variant,{},geomean",
        subset.iter().map(|w| w.name).collect::<Vec<_>>().join(",")
    );
    write_csv("fig13", &header, &rows);
}

//! Fig 3: access-type breakdown with the stage area.
//!
//! (a) Access classes (hit / sub-block miss / write overflow) for blocks in
//!     their stage phase ("S") vs after commit ("C"), at the default stage
//!     size. The paper shows misses and overflows dropping sharply after
//!     commit (to <5% and <1% on average).
//! (b) The same committed-phase breakdown for different stage-area sizes.
//!
//! Measurement note (see EXPERIMENTS.md): the paper samples windows around
//! each stage/commit event of its 5-billion-instruction runs; at this
//! scale the unbiased equivalent is the steady-state ratio conditioned on
//! the block's phase — S = case-1 hits vs case-3 misses vs stage
//! overflows, C = case-2 hits vs case-4 bypasses vs committed overflows.

use baryon_bench::{banner, run_with_system, timed, write_csv, Params};
use baryon_core::config::BaryonConfig;
use baryon_core::controller::BaryonCounters;
use baryon_core::system::ControllerKind;

fn pct(n: u64, d: u64) -> f64 {
    if d == 0 {
        0.0
    } else {
        100.0 * n as f64 / d as f64
    }
}

fn staged_breakdown(c: &BaryonCounters) -> (f64, f64, f64) {
    let t = c.case1_stage_hits + c.case3_stage_misses + c.stage_overflows;
    (
        pct(c.case1_stage_hits, t),
        pct(c.case3_stage_misses, t),
        pct(c.stage_overflows, t),
    )
}

fn committed_breakdown(c: &BaryonCounters) -> (f64, f64, f64) {
    let t = c.case2_commit_hits + c.case4_bypasses + c.committed_overflows;
    (
        pct(c.case2_commit_hits, t),
        pct(c.case4_bypasses, t),
        pct(c.committed_overflows, t),
    )
}

fn main() {
    let mut params = Params::from_env();
    // Committed-phase statistics need committed blocks to be *re-used*: the
    // streaming workloads only wrap their arrays after ~2-3x the default
    // instruction budget, so this figure runs longer than the rest.
    params.insts *= 3;
    banner("Fig 3", "stage (S) vs committed (C) access breakdown");

    // The SPEC subset, as in the paper.
    let spec: Vec<_> = params
        .workloads()
        .into_iter()
        .filter(|w| w.name.as_bytes()[0].is_ascii_digit())
        .collect();

    let mut rows = Vec::new();

    // ---- (a) S vs C at the default stage size -------------------------
    println!("\n--- (a) staged (S) vs committed (C) access breakdown, default stage ---");
    println!(
        "{:<16} {:>7} {:>7} {:>7}   {:>7} {:>7} {:>7}",
        "workload", "S-hit%", "S-miss%", "S-ovf%", "C-hit%", "C-miss%", "C-ovf%"
    );
    for w in &spec {
        let cfg = BaryonConfig::default_cache_mode(params.scale);
        let (_, system) = timed(w.name, || {
            run_with_system(&params, w, ControllerKind::Baryon(cfg.clone()), |_| {})
        });
        let c = *system.controller().as_baryon().expect("baryon").counters();
        let (sh, sm, so) = staged_breakdown(&c);
        let (ch, cm, co) = committed_breakdown(&c);
        println!(
            "{:<16} {sh:>7.1} {sm:>7.1} {so:>7.1}   {ch:>7.1} {cm:>7.1} {co:>7.1}",
            w.name
        );
        rows.push(format!(
            "a,{},default,{sh:.2},{sm:.2},{so:.2},{ch:.2},{cm:.2},{co:.2}",
            w.name
        ));
    }

    // ---- (b) C breakdown across stage sizes ----------------------------
    // Paper sweeps 16/32/64/128 MB at 4 GB fast; we sweep the same
    // fractions of the default (x0.25, x0.5, x1).
    let default_stage = BaryonConfig::default_stage_bytes(params.scale);
    println!("\n--- (b) committed-phase breakdown vs stage-area size ---");
    println!(
        "{:<16} {:>10} {:>7} {:>7} {:>7}",
        "workload", "stage", "C-hit%", "C-miss%", "C-ovf%"
    );
    for w in &spec {
        for factor in [4u64, 2, 1] {
            let stage = default_stage / factor;
            let mut cfg = BaryonConfig::default_cache_mode(params.scale);
            cfg.stage_bytes = stage;
            let label = format!("{}kB", stage >> 10);
            let (_, system) = timed(&format!("{} {label}", w.name), || {
                run_with_system(&params, w, ControllerKind::Baryon(cfg.clone()), |_| {})
            });
            let c = *system.controller().as_baryon().expect("baryon").counters();
            let (ch, cm, co) = committed_breakdown(&c);
            println!("{:<16} {label:>10} {ch:>7.1} {cm:>7.1} {co:>7.1}", w.name);
            rows.push(format!("b,{},{label},,,,{ch:.2},{cm:.2},{co:.2}", w.name));
        }
    }

    println!("\npaper shape: committed phases have far fewer misses/overflows than");
    println!("stage phases, and larger stage areas further reduce them.");

    write_csv(
        "fig3",
        "panel,workload,stage,s_hit,s_miss,s_ovf,c_hit,c_miss,c_ovf",
        &rows,
    );
}

//! Fig 4: stage-area miss-ratio distribution across the (normalized)
//! stage phase of sampled blocks.
//!
//! The paper samples 1k blocks, normalizes each block's stage phase to
//! x in [0, 1], and shows box plots (25/75 quartiles, 5/95 whiskers) of the
//! stage-area MPKI per time bucket: misses start high and drop by an order
//! of magnitude before the phase midpoint.

use baryon_bench::{banner, run_with_system, timed, write_csv, Params};
use baryon_core::config::BaryonConfig;
use baryon_core::controller::phase::PHASE_BUCKETS;
use baryon_core::system::ControllerKind;
use baryon_sim::summary::BoxSummary;

fn main() {
    let params = Params::from_env();
    banner(
        "Fig 4",
        "stage-phase miss-ratio distribution (normalized time)",
    );

    // Mixed sample across the suite, as the paper aggregates workloads.
    let sample: Vec<_> = params.representative();
    let mut all_buckets: [Vec<f64>; PHASE_BUCKETS] = Default::default();
    let mut committed = 0usize;
    let mut evicted = 0usize;

    for w in &sample {
        let cfg = BaryonConfig::default_cache_mode(params.scale);
        let (_, system) = timed(w.name, || {
            run_with_system(&params, w, ControllerKind::Baryon(cfg.clone()), |sys| {
                sys.controller_mut()
                    .as_baryon_mut()
                    .expect("baryon")
                    .enable_phase_tracking(64, 1_000);
            })
        });
        let tracker = system
            .controller()
            .as_baryon()
            .expect("baryon")
            .phase_tracker();
        let ratios = tracker.bucket_miss_ratios();
        for (acc, r) in all_buckets.iter_mut().zip(ratios) {
            acc.extend(r);
        }
        for p in tracker.phases() {
            if p.committed {
                committed += 1;
            } else {
                evicted += 1;
            }
        }
    }

    println!(
        "\nsampled {} stage phases ({} committed, {} evicted)",
        committed + evicted,
        committed,
        evicted
    );
    println!(
        "\n{:>6} {:>8} {:>8} {:>8} {:>8} {:>8} {:>7}",
        "x", "p5", "p25", "p50", "p75", "p95", "n"
    );
    let mut rows = Vec::new();
    let mut early = 0.0;
    let mut late = 0.0;
    for (i, bucket) in all_buckets.iter().enumerate() {
        let x = (i as f64 + 0.5) / PHASE_BUCKETS as f64;
        match BoxSummary::from_values(bucket) {
            Some(b) => {
                println!(
                    "{x:>6.2} {:>8.4} {:>8.4} {:>8.4} {:>8.4} {:>8.4} {:>7}",
                    b.p5,
                    b.p25,
                    b.p50,
                    b.p75,
                    b.p95,
                    bucket.len()
                );
                rows.push(format!(
                    "{x:.2},{:.5},{:.5},{:.5},{:.5},{:.5},{}",
                    b.p5,
                    b.p25,
                    b.p50,
                    b.p75,
                    b.p95,
                    bucket.len()
                ));
                if i == 0 {
                    early = b.p50.max(1e-4);
                }
                if i == PHASE_BUCKETS - 1 {
                    late = b.p50.max(1e-4);
                }
            }
            None => println!("{x:>6.2} (no samples)"),
        }
    }

    println!(
        "\nmedian miss ratio drops {:.1}x from the first to the last bucket",
        early / late
    );
    println!("\nphases ending in commit: {committed}; ending in eviction: {evicted}");
    println!("(the paper's selective-commit policy exists exactly because the");
    println!(" evicted minority keeps missing through its whole phase — the");
    println!(" p95 whisker above)");
    println!("\npaper shape: an order-of-magnitude drop, stabilizing past x = 0.5,");
    println!("with a high 95% tail (the unstable blocks motivating selective commit).");

    write_csv("fig4", "x,p5,p25,p50,p75,p95,samples", &rows);
}

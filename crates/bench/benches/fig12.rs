//! Fig 12: impact of the compression-scheme choices on performance and
//! compression factor, on the representative subset:
//!
//! * the zero-block (`Z` bit) optimization on/off,
//! * cacheline-aligned compression on/off,
//! * decompression latency 0/1/5/10 cycles,
//! * the aligned same-CF range restriction: achieved CF vs an offline
//!   per-chunk ideal (the metadata-free upper bound; see EXPERIMENTS.md).

use baryon_bench::{banner, run_with_system, timed, write_csv, Params};
use baryon_compress::best_compressed_size;
use baryon_core::config::BaryonConfig;
use baryon_core::system::ControllerKind;
use baryon_sim::summary::geomean;

/// A named configuration tweak.
type Variant = (&'static str, Box<dyn Fn(&mut BaryonConfig)>);

fn main() {
    let params = Params::from_env();
    banner(
        "Fig 12",
        "compression-scheme ablations (performance and CF)",
    );

    let subset = params.representative();
    let mut rows = Vec::new();

    let variants: Vec<Variant> = vec![
        ("default", Box::new(|_c: &mut BaryonConfig| {})),
        ("no-zero-opt", Box::new(|c| c.zero_opt = false)),
        (
            "no-cacheline-aligned",
            Box::new(|c| c.cacheline_aligned = false),
        ),
        ("decompress-0cyc", Box::new(|c| c.decompress_cycles = 0)),
        ("decompress-1cyc", Box::new(|c| c.decompress_cycles = 1)),
        ("decompress-10cyc", Box::new(|c| c.decompress_cycles = 10)),
    ];

    println!(
        "\n{:<16} {:<22} {:>10} {:>8} {:>8}",
        "workload", "variant", "cycles", "perf", "avg CF"
    );
    let mut per_variant: std::collections::BTreeMap<String, Vec<f64>> = Default::default();
    for w in &subset {
        let mut base_cycles = 0u64;
        for (label, tweak) in &variants {
            let mut cfg = BaryonConfig::default_cache_mode(params.scale);
            tweak(&mut cfg);
            let (r, system) = timed(&format!("{} {label}", w.name), || {
                run_with_system(&params, w, ControllerKind::Baryon(cfg.clone()), |_| {})
            });
            if *label == "default" {
                base_cycles = r.total_cycles;
            }
            let perf = base_cycles as f64 / r.total_cycles as f64;
            let cf = system
                .controller()
                .as_baryon()
                .expect("baryon")
                .counters()
                .avg_cf();
            println!(
                "{:<16} {:<22} {:>10} {:>8.3} {:>8.2}",
                w.name, label, r.total_cycles, perf, cf
            );
            per_variant.entry(label.to_string()).or_default().push(perf);
            rows.push(format!(
                "{},{label},{},{perf:.4},{cf:.3}",
                w.name, r.total_cycles
            ));
        }
        println!();
    }

    println!("--- geomean performance relative to default ---");
    for (label, _) in &variants {
        let g = geomean(&per_variant[*label]).unwrap_or(0.0);
        println!("{label:<22} {g:.3}");
        rows.push(format!("geomean,{label},,{g:.4},"));
    }

    // ---- aligned same-CF restriction: CF upper bound -------------------
    // Offline scan: for each sampled 2 kB block, the ideal CF treats every
    // 64 B chunk independently (size 64/32/16 -> factor 1/2/4), with no
    // alignment or uniform-CF restriction; Baryon's achievable CF groups
    // chunks into aligned ranges sharing one CF.
    println!("\n--- CF restriction (offline content scan) ---");
    println!("{:<16} {:>10} {:>10}", "workload", "baryon CF", "ideal CF");
    for w in &subset {
        let mem = w.contents(params.seed);
        let mut ideal_slots = 0f64;
        let mut restricted_slots = 0f64;
        let blocks = 512u64;
        for b in 0..blocks {
            let addr = (b * 7919) % (w.footprint / 2048) * 2048;
            for sub4 in 0..2u64 {
                let window = mem.range(addr + sub4 * 1024, 1024);
                // Ideal: each 64 B chunk compresses independently.
                for chunk in window.chunks_exact(64) {
                    let s = best_compressed_size(chunk);
                    ideal_slots += if s <= 16 {
                        0.25
                    } else if s <= 32 {
                        0.5
                    } else {
                        1.0
                    };
                }
                // Restricted: Baryon's aligned uniform-CF ranges.
                let rc = baryon_compress::RangeCompressor::cacheline_aligned();
                if rc.fits(&window, baryon_compress::Cf::X4) {
                    restricted_slots += 4.0; // 16 lines in 4 slots of 4 lines
                } else {
                    for half in window.chunks_exact(512) {
                        if rc.fits(half, baryon_compress::Cf::X2) {
                            restricted_slots += 4.0; // 8 lines in 4 x 0.5
                        } else {
                            restricted_slots += 8.0;
                        }
                    }
                }
            }
        }
        // Both costs are in 64 B line-slots; CF = raw lines / line-slots.
        let lines = blocks as f64 * 32.0;
        let ideal_cf = lines / ideal_slots.max(1.0);
        let restricted_cf = lines / restricted_slots.max(1.0);
        println!("{:<16} {:>10.2} {:>10.2}", w.name, restricted_cf, ideal_cf);
        rows.push(format!(
            "cf_restriction,{},{restricted_cf:.3},{ideal_cf:.3},",
            w.name
        ));
    }
    println!("(the gap is the CF lost to the aligned same-CF metadata format;");
    println!(" the paper reports the resulting performance loss stays <= 12%)");

    write_csv("fig12", "workload,variant,cycles,rel_perf,avg_cf", &rows);
}

//! Fig 9: cache-mode performance of Simple / Unison Cache / DICE /
//! Baryon-64B / Baryon across the workload suite, normalized to Simple.
//!
//! The paper reports Baryon at 1.38x (up to 2.46x) over Unison Cache and
//! 1.27x (up to 1.68x) over DICE on geomean.

use baryon_bench::{banner, fig9_contenders, run_grid, timed, write_csv, Params};
use baryon_sim::summary::geomean;
use std::collections::BTreeMap;

fn main() {
    let params = Params::from_env();
    banner("Fig 9", "cache-mode speedups normalized to Simple");

    let contenders = fig9_contenders(params.scale);
    let mut per_ctrl: BTreeMap<String, Vec<f64>> = BTreeMap::new();
    let mut rows = Vec::new();

    println!(
        "{:<16} {:>8} {:>8} {:>8} {:>10} {:>8}",
        "workload", "simple", "unison", "dice", "baryon-64b", "baryon"
    );
    // Build the whole grid and run it across worker threads.
    let workloads = params.workloads();
    let jobs: Vec<_> = workloads
        .iter()
        .flat_map(|w| contenders.iter().map(move |(_, k)| (*w, k.clone())))
        .collect();
    let results = timed("full fig9 grid", || run_grid(&params, jobs));
    for (wi, w) in workloads.iter().enumerate() {
        let mut cycles = Vec::new();
        for (ci, (label, _)) in contenders.iter().enumerate() {
            let r = &results[wi * contenders.len() + ci];
            cycles.push((label.clone(), r.total_cycles));
        }
        let base = cycles[0].1 as f64;
        let mut line = format!("{:<16}", w.name);
        let mut csv = w.name.to_owned();
        for (label, c) in &cycles {
            let speedup = base / *c as f64;
            per_ctrl.entry(label.clone()).or_default().push(speedup);
            line.push_str(&format!(" {speedup:>8.3}"));
            csv.push_str(&format!(",{speedup:.4}"));
        }
        println!("{line}");
        rows.push(csv);
    }

    let mut geo_line = format!("{:<16}", "geomean");
    let mut geo_csv = String::from("geomean");
    for (label, _) in &contenders {
        let g = geomean(&per_ctrl[label]).unwrap_or(0.0);
        geo_line.push_str(&format!(" {g:>8.3}"));
        geo_csv.push_str(&format!(",{g:.4}"));
    }
    println!("{}", "-".repeat(64));
    println!("{geo_line}");
    rows.push(geo_csv);

    let b = geomean(&per_ctrl["baryon"]).unwrap_or(0.0);
    let u = geomean(&per_ctrl["unison"]).unwrap_or(1.0);
    let d = geomean(&per_ctrl["dice"]).unwrap_or(1.0);
    let b64 = geomean(&per_ctrl["baryon-64b"]).unwrap_or(1.0);
    println!(
        "\nBaryon vs Unison Cache : {:.2}x (paper: 1.38x avg, 2.46x max)",
        b / u
    );
    println!(
        "Baryon vs DICE         : {:.2}x (paper: 1.27x avg, 1.68x max)",
        b / d
    );
    println!(
        "Baryon vs Baryon-64B   : {:.2}x (paper: +12.2% from the 256 B granularity)",
        b / b64
    );

    write_csv(
        "fig9",
        "workload,simple,unison,dice,baryon_64b,baryon",
        &rows,
    );
}

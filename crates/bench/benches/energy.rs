//! §IV-B energy comparison: memory-system energy of Baryon vs the cache-
//! and flat-mode baselines.
//!
//! The paper reports Baryon saving 31.9% vs Unison Cache, 13.0% vs DICE,
//! and Baryon-FA saving 14.5% vs Hybrid2, mostly from reduced slow-memory
//! traffic.

use baryon_bench::{banner, run, timed, write_csv, Params};
use baryon_core::config::BaryonConfig;
use baryon_core::system::ControllerKind;
use baryon_sim::summary::geomean;
use std::collections::BTreeMap;

fn main() {
    let params = Params::from_env();
    banner("Energy", "memory-system energy, normalized per workload");

    let cache_contenders: Vec<(&str, ControllerKind)> = vec![
        ("unison", ControllerKind::Unison),
        ("dice", ControllerKind::Dice),
        (
            "baryon",
            ControllerKind::Baryon(BaryonConfig::default_cache_mode(params.scale)),
        ),
    ];
    let flat_contenders: Vec<(&str, ControllerKind)> = vec![
        ("hybrid2", ControllerKind::Hybrid2),
        (
            "baryon-fa",
            ControllerKind::Baryon(BaryonConfig::default_flat_fa(params.scale)),
        ),
    ];

    let mut rows = Vec::new();
    let mut ratios: BTreeMap<&str, Vec<f64>> = BTreeMap::new();

    println!("\n--- cache mode: energy (mJ) ---");
    println!(
        "{:<16} {:>9} {:>9} {:>9}",
        "workload", "unison", "dice", "baryon"
    );
    for w in params.workloads() {
        let mut energies = Vec::new();
        for (label, kind) in &cache_contenders {
            let r = timed(&format!("{} {}", w.name, label), || {
                run(&params, &w, kind.clone())
            });
            energies.push((*label, r.energy_mj()));
        }
        println!(
            "{:<16} {:>9.3} {:>9.3} {:>9.3}",
            w.name, energies[0].1, energies[1].1, energies[2].1
        );
        let baryon = energies[2].1;
        ratios
            .entry("vs_unison")
            .or_default()
            .push(baryon / energies[0].1);
        ratios
            .entry("vs_dice")
            .or_default()
            .push(baryon / energies[1].1);
        rows.push(format!(
            "cache,{},{:.4},{:.4},{:.4}",
            w.name, energies[0].1, energies[1].1, energies[2].1
        ));
    }

    println!("\n--- flat mode: energy (mJ) ---");
    println!("{:<16} {:>9} {:>9}", "workload", "hybrid2", "baryon-fa");
    for w in params.workloads() {
        let mut energies = Vec::new();
        for (label, kind) in &flat_contenders {
            let r = timed(&format!("{} {}", w.name, label), || {
                run(&params, &w, kind.clone())
            });
            energies.push((*label, r.energy_mj()));
        }
        println!(
            "{:<16} {:>9.3} {:>9.3}",
            w.name, energies[0].1, energies[1].1
        );
        ratios
            .entry("vs_hybrid2")
            .or_default()
            .push(energies[1].1 / energies[0].1);
        rows.push(format!(
            "flat,{},{:.4},{:.4},",
            w.name, energies[0].1, energies[1].1
        ));
    }

    println!("\n--- geomean energy savings ---");
    for (key, paper) in [("vs_unison", 31.9), ("vs_dice", 13.0), ("vs_hybrid2", 14.5)] {
        let g = geomean(&ratios[key]).unwrap_or(1.0);
        println!(
            "baryon {key:<11}: {:+.1}% (paper: -{paper:.1}%)",
            (g - 1.0) * 100.0
        );
        rows.push(format!("summary,{key},{:.4},,", g));
    }

    write_csv("energy", "mode,workload,a,b,c", &rows);
}

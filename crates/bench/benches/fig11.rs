//! Fig 11: performance analysis on representative workloads (cache mode):
//! left — fast-memory serve rate (higher is better); right — fast-memory
//! bandwidth bloat factor (total fast traffic / useful LLC traffic, lower
//! is better). Includes the geomean over the full suite, as the paper does,
//! plus a read-latency distribution table (p50/p95/p99) that the paper's
//! serve-rate argument implies but does not plot.

use baryon_bench::{banner, fig9_contenders, run, timed, write_csv, Params};
use baryon_sim::summary::geomean;
use std::collections::BTreeMap;

fn main() {
    let params = Params::from_env();
    banner(
        "Fig 11",
        "fast-memory serve rate and bandwidth bloat factor",
    );

    // The paper compares Unison / DICE / Baryon here.
    let contenders: Vec<_> = fig9_contenders(params.scale)
        .into_iter()
        .filter(|(n, _)| ["unison", "dice", "baryon"].contains(&n.as_str()))
        .collect();

    let representative = params.representative();
    let all = params.workloads();
    let mut serve: BTreeMap<(String, String), f64> = BTreeMap::new();
    let mut bloat: BTreeMap<(String, String), f64> = BTreeMap::new();
    let mut latency: BTreeMap<(String, String), (u64, u64, u64)> = BTreeMap::new();

    for w in &all {
        for (label, kind) in &contenders {
            let r = timed(&format!("{} {}", w.name, label), || {
                run(&params, w, kind.clone())
            });
            serve.insert((w.name.into(), label.clone()), r.serve.fast_serve_rate());
            bloat.insert((w.name.into(), label.clone()), r.serve.bloat_factor());
            latency.insert(
                (w.name.into(), label.clone()),
                (
                    r.read_latency.percentile(50.0),
                    r.read_latency.percentile(95.0),
                    r.read_latency.percentile(99.0),
                ),
            );
        }
    }

    let mut rows = Vec::new();
    println!("\n--- fast memory serve rate (%) ---");
    println!(
        "{:<16} {:>8} {:>8} {:>8}",
        "workload", "unison", "dice", "baryon"
    );
    let print_row = |name: &str, table: &BTreeMap<(String, String), f64>, pct: bool| {
        let mut line = format!("{name:<16}");
        let mut csv = name.to_owned();
        for (label, _) in &contenders {
            let v = table[&(name.to_owned(), label.clone())];
            line.push_str(&format!(" {:>8.2}", if pct { v * 100.0 } else { v }));
            csv.push_str(&format!(",{v:.4}"));
        }
        println!("{line}");
        csv
    };
    for w in &representative {
        let csv = print_row(w.name, &serve, true);
        rows.push(format!("serve,{csv}"));
    }
    // Geomean over the whole suite.
    let geo = |table: &BTreeMap<(String, String), f64>| -> Vec<f64> {
        contenders
            .iter()
            .map(|(label, _)| {
                let vals: Vec<f64> = all
                    .iter()
                    .map(|w| table[&(w.name.to_owned(), label.clone())].max(1e-9))
                    .collect();
                geomean(&vals).unwrap_or(0.0)
            })
            .collect()
    };
    let g = geo(&serve);
    println!(
        "{:<16} {:>8.2} {:>8.2} {:>8.2}",
        "geomean(all)",
        g[0] * 100.0,
        g[1] * 100.0,
        g[2] * 100.0
    );
    rows.push(format!("serve,geomean,{:.4},{:.4},{:.4}", g[0], g[1], g[2]));

    println!("\n--- bandwidth bloat factor (fast traffic / useful traffic) ---");
    println!(
        "{:<16} {:>8} {:>8} {:>8}",
        "workload", "unison", "dice", "baryon"
    );
    for w in &representative {
        let csv = print_row(w.name, &bloat, false);
        rows.push(format!("bloat,{csv}"));
    }
    let g = geo(&bloat);
    println!(
        "{:<16} {:>8.2} {:>8.2} {:>8.2}",
        "geomean(all)", g[0], g[1], g[2]
    );
    rows.push(format!("bloat,geomean,{:.4},{:.4},{:.4}", g[0], g[1], g[2]));

    println!("\n--- memory read latency, cycles (p50 / p95 / p99) ---");
    println!(
        "{:<16} {:>20} {:>20} {:>20}",
        "workload", "unison", "dice", "baryon"
    );
    for w in &representative {
        let mut line = format!("{:<16}", w.name);
        let mut csv = format!("latency,{}", w.name);
        for (label, _) in &contenders {
            let (p50, p95, p99) = latency[&(w.name.to_owned(), label.clone())];
            line.push_str(&format!(" {:>20}", format!("{p50}/{p95}/{p99}")));
            csv.push_str(&format!(",{p50}/{p95}/{p99}"));
        }
        println!("{line}");
        rows.push(csv);
    }

    println!("\npaper shape: Baryon has the highest serve rates (e.g. pr.twi 77% vs");
    println!("37%/44% for Unison/DICE) and the lowest bloat (pr.twi 1.8 vs 3.2/2.4).");

    write_csv("fig11", "metric,workload,unison,dice,baryon", &rows);
}

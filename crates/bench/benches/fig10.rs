//! Fig 10: flat-mode performance — fully-associative Baryon (Baryon-FA)
//! vs Hybrid2, normalized to Hybrid2.
//!
//! The paper reports 1.18x average and up to 2.50x.

use baryon_bench::{banner, run_grid, timed, write_csv, Params};
use baryon_core::config::BaryonConfig;
use baryon_core::system::ControllerKind;
use baryon_sim::summary::geomean;

fn main() {
    let params = Params::from_env();
    banner("Fig 10", "flat-mode speedup of Baryon-FA over Hybrid2");

    let mut speedups = Vec::new();
    let mut rows = Vec::new();
    println!(
        "{:<16} {:>12} {:>12} {:>9}",
        "workload", "hybrid2", "baryon-fa", "speedup"
    );
    let workloads = params.workloads();
    let jobs: Vec<_> = workloads
        .iter()
        .flat_map(|w| {
            [
                (*w, ControllerKind::Hybrid2),
                (
                    *w,
                    ControllerKind::Baryon(BaryonConfig::default_flat_fa(params.scale)),
                ),
            ]
        })
        .collect();
    let results = timed("full fig10 grid", || run_grid(&params, jobs));
    for (wi, w) in workloads.iter().enumerate() {
        let h = &results[wi * 2];
        let b = &results[wi * 2 + 1];
        let s = h.total_cycles as f64 / b.total_cycles as f64;
        speedups.push(s);
        println!(
            "{:<16} {:>12} {:>12} {:>8.3}x",
            w.name, h.total_cycles, b.total_cycles, s
        );
        rows.push(format!(
            "{},{},{},{:.4}",
            w.name, h.total_cycles, b.total_cycles, s
        ));
    }
    let g = geomean(&speedups).unwrap_or(0.0);
    let max = speedups.iter().cloned().fold(0.0f64, f64::max);
    println!("{}", "-".repeat(52));
    println!("geomean {g:.3}x, max {max:.3}x  (paper: 1.18x avg, 2.50x max)");
    rows.push(format!("geomean,,,{g:.4}"));

    write_csv(
        "fig10",
        "workload,hybrid2_cycles,baryon_fa_cycles,speedup",
        &rows,
    );
}

//! Table I: system configuration. Prints the resolved simulated machine and
//! the metadata/SRAM budget claims of §III-B (448 kB stage tag array at
//! paper scale, 2 B remap entries = 0.1% of memory, 32 kB remap cache).

use baryon_bench::{banner, write_csv, Params};
use baryon_cache::HierarchyConfig;
use baryon_core::config::BaryonConfig;
use baryon_mem::DeviceConfig;
use baryon_workloads::Scale;

fn main() {
    let params = Params::from_env();
    banner(
        "Table I",
        "system configuration (paper scale and bench scale)",
    );

    let mut rows = Vec::new();
    for scale in [Scale { divisor: 1 }, params.scale] {
        let cfg = BaryonConfig::default_cache_mode(scale);
        let hier = if scale.divisor == 1 {
            HierarchyConfig::table1()
        } else {
            HierarchyConfig::table1_scaled(scale.divisor)
        };
        let dram = DeviceConfig::ddr4_3200();
        let nvm = DeviceConfig::nvm();
        let (stage_tag, remap_cache) = cfg.sram_budget();
        let label = if scale.divisor == 1 {
            "paper (divisor 1)".to_owned()
        } else {
            format!("bench (divisor {})", scale.divisor)
        };

        println!("\n--- {label} ---");
        println!("cores             : {} x86-64 @ 3.2 GHz", hier.cores);
        println!(
            "L1D               : {}-way, {} kB/core",
            hier.l1d.ways,
            hier.l1d.capacity() >> 10
        );
        println!(
            "L2                : {}-way, {} kB/core, {}-cycle",
            hier.l2.ways,
            hier.l2.capacity() >> 10,
            hier.l2.latency
        );
        println!(
            "LLC               : {}-way, {} kB shared, {}-cycle",
            hier.llc.ways,
            hier.llc.capacity() >> 10,
            hier.llc.latency
        );
        println!(
            "stage tag array   : {} sets, {}-way, {}-cycle ({} kB SRAM)",
            cfg.stage_sets(),
            cfg.stage_ways,
            cfg.stage_tag_latency,
            stage_tag >> 10
        );
        println!(
            "remap cache       : {} kB, {}-cycle",
            remap_cache >> 10,
            cfg.remap_cache_latency
        );
        println!(
            "compressor        : FPC/BDI, {}-cycle decompression",
            cfg.decompress_cycles
        );
        println!(
            "fast memory       : {} ({} MB, {} ch x {} rk x {} banks)",
            dram.name,
            cfg.fast_bytes >> 20,
            dram.channels,
            dram.ranks,
            dram.banks_per_rank
        );
        println!(
            "slow memory       : {} ({} MB, {} ch x {} rk x {} banks, rd {} cyc / wr +{} cyc)",
            nvm.name,
            cfg.slow_bytes >> 20,
            nvm.channels,
            nvm.ranks,
            nvm.banks_per_rank,
            nvm.hit_latency,
            nvm.write_extra
        );
        println!(
            "stage area        : {} kB ({} blocks); data area {} kB",
            cfg.stage_bytes >> 10,
            cfg.stage_blocks(),
            cfg.data_area_bytes() >> 10
        );
        let remap_frac = cfg.remap_table_bytes() as f64 / (cfg.fast_bytes + cfg.slow_bytes) as f64;
        println!(
            "remap table       : {} kB = {:.3}% of total memory (paper: ~0.1%)",
            cfg.remap_table_bytes() >> 10,
            100.0 * remap_frac
        );

        rows.push(format!(
            "{label},{},{},{},{},{},{},{:.5}",
            hier.cores,
            cfg.fast_bytes,
            cfg.slow_bytes,
            cfg.stage_bytes,
            stage_tag,
            remap_cache,
            remap_frac
        ));
    }

    // Paper-scale checks printed as assertions so regressions are loud.
    let paper = BaryonConfig::default_cache_mode(Scale { divisor: 1 });
    let (stage_tag, remap_cache) = paper.sram_budget();
    assert_eq!(
        stage_tag,
        448 << 10,
        "stage tag array must be 448 kB at paper scale"
    );
    assert_eq!(remap_cache, 32 << 10);
    assert_eq!(paper.stage_sets(), 8192);
    println!("\npaper-scale invariants hold: 448 kB stage tags, 8192 sets, 32 kB remap cache");

    // The §II-B/§III-B metadata-cost argument, quantified.
    let budget = baryon_core::budget::MetadataBudget::of(&paper);
    println!(
        "metadata budget   : remap table {} MB ({:.3}% of memory); a naive \
         per-sub-block scheme would be {:.0}x bigger ({} MB); total \
         controller SRAM {} kB",
        budget.remap_table_bytes >> 20,
        100.0 * budget.table_fraction(),
        budget.naive_blowup(),
        budget.naive_subblock_table_bytes >> 20,
        budget.total_sram_bytes() >> 10
    );

    write_csv(
        "table1",
        "config,cores,fast_bytes,slow_bytes,stage_bytes,stage_tag_sram,remap_cache_sram,remap_table_frac",
        &rows,
    );
}

//! The `threads` knob is a pure host-side throughput lever: however the
//! per-core shard refills are scheduled across worker threads, the merge
//! loop consumes steps in one canonical order, so every observable output
//! must be bit-identical to the single-threaded run.
//!
//! Two locks here:
//!
//! * a grid of controller × workload cells comparing `threads=1` against
//!   `threads=8` byte for byte (full result JSON, plus the telemetry
//!   snapshot with wall-clock spans stripped), and
//! * a property test that cuts a `threads=8` run at a random op index —
//!   usually mid-lookahead, with steps still buffered — checkpoints it,
//!   resumes, and demands the single-threaded golden.

use baryon_bench::spec::{resume_from, RunSpec};
use baryon_sim::check::props;
use std::fmt::Write as _;

fn spec(workload: &str, controller: &str, threads: u64, telemetry: bool) -> RunSpec {
    RunSpec {
        workload: workload.to_owned(),
        controller: controller.to_owned(),
        insts: 2_500,
        warmup: 800,
        scale: 2048,
        seed: 42,
        mlp: 1,
        telemetry,
        threads,
    }
}

/// Telemetry snapshot with the `*.span.*` wall-clock summaries removed
/// (spans legitimately vary run to run; everything else may not).
fn stripped_snapshot(r: &baryon_core::metrics::RunResult) -> String {
    let mut out = String::new();
    for (k, v) in r.snapshot() {
        if !k.contains("span.") {
            let _ = write!(out, "{k}={v:?};");
        }
    }
    out
}

#[test]
fn eight_threads_match_one_thread_bit_for_bit() {
    // Controllers with the most divergent internal state, on workloads
    // covering zipf, streaming and pointer-chasing patterns.
    for controller in ["baryon", "simple", "dice", "os-paging"] {
        for workload in ["ycsb-a", "505.mcf_r", "pr.twi"] {
            let serial = spec(workload, controller, 1, false)
                .execute()
                .unwrap_or_else(|e| panic!("{controller}/{workload} threads=1: {e}"));
            let parallel = spec(workload, controller, 8, false)
                .execute()
                .unwrap_or_else(|e| panic!("{controller}/{workload} threads=8: {e}"));
            assert_eq!(
                serial.to_json().render(),
                parallel.to_json().render(),
                "{controller}/{workload}: threads=8 diverged from threads=1"
            );
        }
    }
}

#[test]
fn telemetry_snapshot_is_thread_invariant() {
    let serial = spec("ycsb-a", "baryon", 1, true).execute().expect("runs");
    let parallel = spec("ycsb-a", "baryon", 8, true).execute().expect("runs");
    assert_eq!(
        stripped_snapshot(&serial),
        stripped_snapshot(&parallel),
        "non-span telemetry diverged between threads=1 and threads=8"
    );
}

#[test]
fn parallel_run_cut_and_resumed_matches_serial_golden() {
    const CONTROLLERS: [&str; 3] = ["baryon", "simple", "unison"];
    let dir = std::env::temp_dir().join(format!("baryon-par-ckpt-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("mkdir");

    props("parallel_cut_resume_bit_identical")
        .cases(8)
        .run(|g| {
            let mut par = spec("ycsb-a", CONTROLLERS[g.choice(CONTROLLERS.len())], 8, false);
            par.seed = g.range(1, 1 << 20);
            let mut serial = par.clone();
            serial.threads = 1;
            g.note(format!("controller={} seed={}", par.controller, par.seed));
            let golden = serial.execute().expect("serial golden");

            // Interrupt the parallel run mid-flight; the cut almost always
            // lands inside a lookahead window, so the checkpoint must carry
            // the buffered shard steps.
            let mut system = par.build_system().expect("system");
            system.begin(par.insts);
            let cut = g.range(1, 3_500);
            g.note(format!("cut at op {cut}"));
            if system.advance(cut) {
                let r = system.finish();
                assert_eq!(r.to_json().render(), golden.to_json().render());
                return;
            }
            let path = dir.join(format!("case-{}-{cut}.ckpt", par.seed));
            par.checkpoint_of(&system)
                .write_to(&path)
                .expect("write checkpoint");
            drop(system);

            let (back, resumed) = resume_from(&path).expect("resume");
            assert_eq!(back.threads, 8, "threads did not survive the round trip");
            assert_eq!(
                resumed.to_json().render(),
                golden.to_json().render(),
                "parallel resumed run diverged from the serial golden"
            );
            std::fs::remove_file(&path).expect("cleanup case file");
        });

    std::fs::remove_dir_all(&dir).expect("cleanup");
}

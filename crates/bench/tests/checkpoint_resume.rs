//! Property: a run interrupted at an arbitrary point and resumed from a
//! checkpoint is bit-identical to the same run performed uninterrupted.
//!
//! Each case draws a controller, a seed, and a random interruption index,
//! runs the spec once to completion for the golden result, then replays it
//! with `begin`/`advance`, snapshots at the drawn index, rebuilds a fresh
//! system from the checkpoint, and runs the tail. The full result document
//! (cycles, serve counters, latency histogram, telemetry snapshot) must
//! match the golden byte for byte.

use baryon_bench::spec::{resume_from, RunSpec};
use baryon_sim::check::props;

fn spec_for(controller: &str, seed: u64) -> RunSpec {
    RunSpec {
        workload: "ycsb-a".into(),
        controller: controller.into(),
        insts: 3_000,
        warmup: 1_000,
        scale: 2048,
        seed,
        mlp: 1,
        telemetry: false,
        threads: 1,
    }
}

/// The multi-level remap store has by far the most structural checkpoint
/// state (live leaves, free-slot stack, two hot caches), so trimma gets a
/// dedicated pinned property on top of the mixed draw below.
#[test]
fn trimma_resume_at_random_cut_is_bit_identical() {
    let dir = std::env::temp_dir().join(format!("baryon-ckpt-trimma-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("mkdir");

    props("trimma_checkpoint_resume").cases(8).run(|g| {
        let spec = spec_for("trimma", g.range(1, 1 << 20));
        let golden = spec.execute().expect("golden run");
        let mut system = spec.build_system().expect("system");
        system.begin(spec.insts);
        let cut = g.range(1, 4_000);
        g.note(format!("seed={} cut at op {cut}", spec.seed));
        if system.advance(cut) {
            let r = system.finish();
            assert_eq!(r.to_json().render(), golden.to_json().render());
            return;
        }
        let path = dir.join(format!("trimma-{}-{cut}.ckpt", spec.seed));
        spec.checkpoint_of(&system)
            .write_to(&path)
            .expect("write checkpoint");
        drop(system);

        let (back, resumed) = resume_from(&path).expect("resume");
        assert_eq!(back, spec, "spec did not survive the round trip");
        assert_eq!(
            resumed.to_json().render(),
            golden.to_json().render(),
            "trimma resume diverged from the uninterrupted golden"
        );
        std::fs::remove_file(&path).expect("cleanup case file");
    });

    std::fs::remove_dir_all(&dir).expect("cleanup");
}

#[test]
fn resume_at_random_index_is_bit_identical() {
    // Cover the tentpole controller plus a spread of baselines whose
    // internal state differs the most (set-assoc ways, footprint maps,
    // OS paging epochs, the multi-level remap store's live leaves).
    const CONTROLLERS: [&str; 5] = ["baryon", "simple", "unison", "os-paging", "trimma"];
    let dir = std::env::temp_dir().join(format!("baryon-ckpt-prop-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("mkdir");

    props("checkpoint_resume_bit_identical").cases(12).run(|g| {
        let spec = spec_for(
            CONTROLLERS[g.choice(CONTROLLERS.len())],
            g.range(1, 1 << 20),
        );
        g.note(format!("controller={} seed={}", spec.controller, spec.seed));
        let golden = spec.execute().expect("golden run");

        // Replay incrementally and interrupt at a random op index.
        let mut system = spec.build_system().expect("system");
        system.begin(spec.insts);
        let cut = g.range(1, 4_000);
        g.note(format!("cut at op {cut}"));
        if system.advance(cut) {
            // The whole run fit under the cut: nothing to resume,
            // but the incremental result must still match.
            let r = system.finish();
            assert_eq!(r.to_json().render(), golden.to_json().render());
            return;
        }
        let path = dir.join(format!("case-{}-{cut}.ckpt", spec.seed));
        spec.checkpoint_of(&system)
            .write_to(&path)
            .expect("write checkpoint");
        drop(system); // the interrupted run is gone for good

        let (back, resumed) = resume_from(&path).expect("resume");
        assert_eq!(back, spec, "spec did not survive the round trip");
        assert_eq!(
            resumed.to_json().render(),
            golden.to_json().render(),
            "resumed run diverged from the uninterrupted golden"
        );
        std::fs::remove_file(&path).expect("cleanup case file");
    });

    std::fs::remove_dir_all(&dir).expect("cleanup");
}

//! Locks in `run_grid`'s contract: parallelism only reorders wall-clock
//! execution, never the per-run random streams or results. A grid run with
//! one worker thread must be bit-identical to the same grid with eight.

use baryon_bench::{run_grid, Params};
use baryon_core::system::ControllerKind;
use baryon_workloads::{by_name, Scale};

#[test]
fn parallel_grid_matches_serial_grid() {
    let params = Params {
        insts: 2_000,
        warmup: 500,
        scale: Scale { divisor: 2048 },
        quick: true,
        seed: 7,
    };
    let jobs: Vec<_> = ["505.mcf_r", "pr.twi"]
        .into_iter()
        .flat_map(|name| {
            let w = by_name(name, params.scale).expect("workload");
            [(w, ControllerKind::Simple), (w, ControllerKind::Unison)]
        })
        .collect();

    // This test owns BARYON_BENCH_THREADS: it is the only test in this
    // binary, so no other thread observes the mutation.
    std::env::set_var("BARYON_BENCH_THREADS", "1");
    let serial = run_grid(&params, jobs.clone());
    std::env::set_var("BARYON_BENCH_THREADS", "8");
    let parallel = run_grid(&params, jobs.clone());
    std::env::remove_var("BARYON_BENCH_THREADS");

    assert_eq!(serial.len(), jobs.len());
    assert_eq!(parallel.len(), jobs.len());
    for (i, (s, p)) in serial.iter().zip(&parallel).enumerate() {
        assert_eq!(s, p, "job {i} diverged between 1 and 8 threads");
    }
    // Sanity: the runs did real work.
    assert!(serial.iter().all(|r| r.total_cycles > 0));
}

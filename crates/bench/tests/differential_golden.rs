//! Differential goldens for the data-oriented hot-path refactor: every
//! controller family runs on every registry workload (telemetry off and
//! on) and the full `RunResult` JSON must hash to the values blessed
//! before the refactor. The fixture is the oracle — the arena-backed
//! structures must be *bit-identical* to the map-backed originals, not
//! merely statistically close.
//!
//! Regenerate (only when a behaviour change is intended and explained in
//! the commit message):
//!
//! ```sh
//! BARYON_BLESS_GOLDENS=1 cargo test -p baryon-bench --test differential_golden
//! ```

use baryon_bench::spec::{RunSpec, CONTROLLER_NAMES};
use baryon_workloads::{registry, Scale};
use std::fmt::Write as _;
use std::path::PathBuf;

/// Small but non-trivial: enough instructions that every controller
/// exercises fills, evictions, commits and writebacks on every workload,
/// small enough that the 10×17 matrix stays affordable in debug builds.
const INSTS: u64 = 1_200;
const WARMUP: u64 = 300;
const SCALE: u64 = 2048;
const SEED: u64 = 42;

fn fixture_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/differential_goldens.txt")
}

/// FNV-1a 64-bit: tiny, dependency-free, and stable across platforms.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

fn spec(workload: &str, controller: &str, telemetry: bool) -> RunSpec {
    RunSpec {
        workload: workload.to_owned(),
        controller: controller.to_owned(),
        insts: INSTS,
        warmup: WARMUP,
        scale: SCALE,
        seed: SEED,
        mlp: 1,
        telemetry,
        threads: 1,
    }
}

/// Runs one (controller, workload) cell with telemetry off and on and
/// returns `(off_hash, on_hash)`.
///
/// * `off_hash` covers the complete `RunResult::to_json` rendering —
///   every counter, byte count, latency bucket and telemetry metric.
/// * `on_hash` covers the telemetry-on snapshot with the wall-clock
///   `*.span.*` summaries stripped (spans legitimately vary run to run;
///   everything else may not).
///
/// The pair also cross-checks that enabling telemetry does not perturb
/// the simulation itself.
fn hash_cell(workload: &str, controller: &str) -> (u64, u64) {
    let off = spec(workload, controller, false)
        .execute()
        .unwrap_or_else(|e| panic!("{controller}/{workload} (telemetry off): {e}"));
    let on = spec(workload, controller, true)
        .execute()
        .unwrap_or_else(|e| panic!("{controller}/{workload} (telemetry on): {e}"));
    assert_eq!(
        (off.total_cycles, off.instructions, off.llc_misses),
        (on.total_cycles, on.instructions, on.llc_misses),
        "{controller}/{workload}: telemetry flag perturbed the simulation"
    );
    let off_hash = fnv1a(off.to_json().render().as_bytes());
    let mut stripped = String::new();
    for (k, v) in on.snapshot() {
        if !k.contains("span.") {
            let _ = write!(stripped, "{k}={v:?};");
        }
    }
    (off_hash, fnv1a(stripped.as_bytes()))
}

#[test]
fn all_controllers_match_pre_refactor_goldens() {
    let scale = Scale { divisor: SCALE };
    let workloads: Vec<String> = registry(scale).iter().map(|w| w.name.to_owned()).collect();
    assert!(workloads.len() >= 15, "registry unexpectedly small");

    let mut lines = Vec::new();
    for controller in CONTROLLER_NAMES {
        for workload in &workloads {
            let (off, on) = hash_cell(workload, controller);
            lines.push(format!("{controller} {workload} {off:016x} {on:016x}"));
        }
    }
    let actual = lines.join("\n") + "\n";

    let path = fixture_path();
    if std::env::var_os("BARYON_BLESS_GOLDENS").is_some() {
        std::fs::create_dir_all(path.parent().expect("fixture dir")).expect("mkdir fixtures");
        std::fs::write(&path, &actual).expect("write goldens");
        eprintln!("blessed {} golden cells to {}", lines.len(), path.display());
        return;
    }

    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden fixture {} ({e}); run with BARYON_BLESS_GOLDENS=1 to create it",
            path.display()
        )
    });
    if expected == actual {
        return;
    }
    // Report every diverging cell, not just the first.
    let mut diffs = Vec::new();
    for (want, got) in expected.lines().zip(actual.lines()) {
        if want != got {
            diffs.push(format!("  expected: {want}\n  actual:   {got}"));
        }
    }
    let want_n = expected.lines().count();
    let got_n = actual.lines().count();
    if want_n != got_n {
        diffs.push(format!("  cell count changed: {want_n} -> {got_n}"));
    }
    panic!(
        "{} golden cell(s) diverged from the pre-refactor oracle:\n{}\n\
         (intended behaviour change? re-bless with BARYON_BLESS_GOLDENS=1 and justify in the commit)",
        diffs.len(),
        diffs.join("\n")
    );
}

//! Deterministic scatter/gather planning for fleet grid sweeps.
//!
//! A [`crate::spec::GridSpec`] submitted to a fleet coordinator is split
//! into its row-major cells and scattered across N worker shards; results
//! come back whenever shards finish them, and the gather step reassembles
//! the exact `{"results": [...]}` document a single-process
//! [`crate::spec::JobSpec::execute`] would have produced. The plan is
//! pure data — which cell goes where is fixed by `(cell index, shard
//! count)` alone — so the same sweep always scatters the same way and the
//! gathered document is byte-identical no matter which shards finished
//! first, crashed, or were restarted along the way.

use crate::spec::{GridSpec, RunSpec};
use baryon_sim::json::Json;

/// One scattered cell: its position in the grid's row-major order (which
/// fixes its slot in the gathered document) and the shard that executes it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlannedCell {
    /// Row-major cell index within the grid.
    pub index: usize,
    /// The shard assigned to execute this cell.
    pub shard: usize,
    /// The fully-expanded run.
    pub spec: RunSpec,
}

/// The deterministic scatter of a grid across `shards` workers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BatchPlan {
    /// Every cell, in row-major grid order.
    pub cells: Vec<PlannedCell>,
    /// Number of shards the plan scatters over.
    pub shards: usize,
}

impl BatchPlan {
    /// Scatters `grid` across `shards` workers: cell `i` goes to shard
    /// `i % shards` (round-robin keeps the load within one cell of even,
    /// and the assignment is a pure function of the plan inputs).
    ///
    /// # Panics
    ///
    /// Panics if `shards` is zero.
    pub fn scatter(grid: &GridSpec, shards: usize) -> BatchPlan {
        assert!(shards > 0, "cannot scatter over zero shards");
        let cells = grid
            .expand()
            .into_iter()
            .enumerate()
            .map(|(index, spec)| PlannedCell {
                index,
                shard: index % shards,
                spec,
            })
            .collect();
        BatchPlan { cells, shards }
    }

    /// The cells assigned to one shard, in row-major order.
    pub fn cells_for(&self, shard: usize) -> impl Iterator<Item = &PlannedCell> {
        self.cells.iter().filter(move |c| c.shard == shard)
    }

    /// Reassembles per-cell result documents (indexed row-major, i.e.
    /// `results[i]` is cell `i`'s document) into the grid job's result:
    /// `{"results": [...]}` — byte-identical to a single-process
    /// [`crate::spec::JobSpec::execute`] of the same grid.
    ///
    /// # Errors
    ///
    /// Names the first cell still missing a result.
    pub fn gather(&self, results: Vec<Option<Json>>) -> Result<Json, String> {
        if results.len() != self.cells.len() {
            return Err(format!(
                "gather got {} slots for {} cells",
                results.len(),
                self.cells.len()
            ));
        }
        let mut out = Vec::with_capacity(results.len());
        for (i, slot) in results.into_iter().enumerate() {
            match slot {
                Some(doc) => out.push(doc),
                None => {
                    let cell = &self.cells[i];
                    return Err(format!(
                        "cell {i} ({} / {}) has no result",
                        cell.spec.workload, cell.spec.controller
                    ));
                }
            }
        }
        Ok(Json::obj([("results", Json::Arr(out))]))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::JobSpec;

    fn grid() -> GridSpec {
        GridSpec {
            workloads: vec!["ycsb-a".into(), "pr.twi".into()],
            controllers: vec!["simple".into(), "dice".into(), "unison".into()],
            base: RunSpec {
                insts: 2_000,
                warmup: 500,
                scale: 2048,
                ..RunSpec::default()
            },
        }
    }

    #[test]
    fn scatter_is_round_robin_and_total() {
        let plan = BatchPlan::scatter(&grid(), 3);
        assert_eq!(plan.cells.len(), 6);
        let shards: Vec<usize> = plan.cells.iter().map(|c| c.shard).collect();
        assert_eq!(shards, [0, 1, 2, 0, 1, 2]);
        // Cells keep row-major order and match the grid expansion.
        let expanded = grid().expand();
        for (i, cell) in plan.cells.iter().enumerate() {
            assert_eq!(cell.index, i);
            assert_eq!(cell.spec, expanded[i]);
        }
        // Per-shard views partition the plan.
        let total: usize = (0..3).map(|s| plan.cells_for(s).count()).sum();
        assert_eq!(total, 6);
    }

    #[test]
    fn scatter_uneven_shard_counts_stay_balanced() {
        let plan = BatchPlan::scatter(&grid(), 4);
        let counts: Vec<usize> = (0..4).map(|s| plan.cells_for(s).count()).collect();
        assert_eq!(counts.iter().sum::<usize>(), 6);
        assert!(counts.iter().all(|&c| c == 1 || c == 2), "{counts:?}");
    }

    #[test]
    fn gather_matches_single_process_grid_execute() {
        let g = grid();
        let golden = JobSpec::Grid(g.clone()).execute().expect("grid runs");
        let plan = BatchPlan::scatter(&g, 3);
        // Execute cells out of order (as shards would) and gather.
        let mut slots: Vec<Option<Json>> = vec![None; plan.cells.len()];
        for cell in plan.cells.iter().rev() {
            slots[cell.index] = Some(cell.spec.execute().expect("cell runs").to_json());
        }
        let gathered = plan.gather(slots).expect("complete");
        assert_eq!(gathered.render(), golden.render());
    }

    #[test]
    fn gather_reports_missing_cells() {
        let plan = BatchPlan::scatter(&grid(), 2);
        let mut slots: Vec<Option<Json>> = vec![Some(Json::Null); plan.cells.len()];
        slots[4] = None;
        let err = plan.gather(slots).expect_err("missing cell");
        assert!(err.contains("cell 4"), "{err}");
        let err = plan.gather(vec![]).expect_err("wrong arity");
        assert!(err.contains("0 slots"), "{err}");
    }
}

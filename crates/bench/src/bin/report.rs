//! Assembles every `target/baryon-results/*.csv` produced by the bench
//! targets into a single markdown report.
//!
//! ```sh
//! cargo bench -p baryon-bench            # generate all results
//! cargo run -p baryon-bench --bin report # render baryon-results/report.md
//! ```

use std::fmt::Write as _;
use std::fs;
use std::path::PathBuf;

/// The benches, in the paper's presentation order, with one-line blurbs.
const SECTIONS: [(&str, &str); 10] = [
    (
        "table1",
        "Table I: resolved system configuration and SRAM budget",
    ),
    (
        "fig3",
        "Fig 3: staged (S) vs committed (C) access breakdown",
    ),
    (
        "fig4",
        "Fig 4: stage-phase miss-rate distribution (normalized time)",
    ),
    ("fig9", "Fig 9: cache-mode speedups, normalized to Simple"),
    ("fig10", "Fig 10: flat mode — Baryon-FA over Hybrid2"),
    (
        "fig11",
        "Fig 11: fast-memory serve rate and bandwidth bloat",
    ),
    ("fig12", "Fig 12: compression-scheme ablations"),
    ("fig13", "Fig 13: design-parameter exploration"),
    ("energy", "§IV-B: memory-system energy"),
    (
        "extra",
        "Prose claims, §III-F discussions and related design points",
    ),
];

fn csv_to_markdown(csv: &str) -> String {
    let mut out = String::new();
    let mut lines = csv.lines().filter(|l| !l.trim().is_empty());
    let Some(header) = lines.next() else {
        return "(empty)\n".to_owned();
    };
    let cols = header.split(',').count();
    let fmt_row = |line: &str| {
        let mut cells: Vec<&str> = line.split(',').collect();
        cells.resize(cols, "");
        format!("| {} |", cells.join(" | "))
    };
    let _ = writeln!(out, "{}", fmt_row(header));
    let _ = writeln!(out, "|{}", "---|".repeat(cols));
    for line in lines {
        let _ = writeln!(out, "{}", fmt_row(line));
    }
    out
}

fn results_dir() -> PathBuf {
    std::env::var("BARYON_RESULTS_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|_| {
            PathBuf::from(env!("CARGO_MANIFEST_DIR"))
                .join("../..")
                .join("baryon-results")
        })
}

fn main() {
    let dir = results_dir();
    let mut report = String::new();
    let _ = writeln!(report, "# Baryon reproduction — collected results\n");
    let _ = writeln!(
        report,
        "Rendered from the CSV outputs of `cargo bench -p baryon-bench`. \
         See EXPERIMENTS.md for the paper-vs-measured analysis.\n"
    );

    let mut missing = Vec::new();
    for (id, blurb) in SECTIONS {
        let path = dir.join(format!("{id}.csv"));
        let _ = writeln!(report, "## {id}\n\n{blurb}\n");
        match fs::read_to_string(&path) {
            Ok(csv) => {
                let _ = writeln!(report, "{}", csv_to_markdown(&csv));
            }
            Err(_) => {
                missing.push(id);
                let _ = writeln!(
                    report,
                    "*(not yet generated — run `cargo bench -p baryon-bench --bench {id}`)*\n"
                );
            }
        }
    }

    fs::create_dir_all(&dir).expect("create results dir");
    let out = dir.join("report.md");
    fs::write(&out, &report).expect("write report");
    println!("report written to {}", out.display());
    if missing.is_empty() {
        println!("all {} sections present", SECTIONS.len());
    } else {
        println!("missing sections: {missing:?}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn csv_renders_as_table() {
        let md = csv_to_markdown("a,b\n1,2\n3,4\n");
        assert!(md.starts_with("| a | b |"));
        assert!(md.contains("|---|---|"));
        assert!(md.contains("| 3 | 4 |"));
    }

    #[test]
    fn ragged_rows_are_padded() {
        let md = csv_to_markdown("a,b,c\n1\n");
        assert!(md.contains("| 1 |  |  |"));
    }

    #[test]
    fn empty_csv_is_marked() {
        assert_eq!(csv_to_markdown(""), "(empty)\n");
    }
}

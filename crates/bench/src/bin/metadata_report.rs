//! `metadata_report` — the remap-metadata benchmark and CI gate.
//!
//! Runs the full registry of workloads through `baryon` (flat remap
//! table), `hybrid2` (per-block metadata lines), and `trimma` (the
//! multi-level remap store) with telemetry on, and writes
//! `BENCH_metadata.json` at the repository root with, per workload:
//!
//! * **metadata footprint bytes** — flat and hybrid2 are provisioned
//!   up front (analytic: the structures exist whether or not blocks
//!   migrate); trimma reports the *live* footprint gauge (root level
//!   plus only the leaves that migrations actually allocated), plus its
//!   worst-case reservation for context,
//! * **remap-walk span time** — the `ctrl.span.remap_walk` wall-clock
//!   summary of the baryon-family controllers,
//! * **hot-level hit latency and hit rate** — the configured SRAM
//!   latency of each store's metadata cache and its measured hit rate.
//!
//! The process exits non-zero when trimma's live footprint fails to
//! undercut the flat table on at least `BARYON_METADATA_MIN_WINS`
//! workloads (default 9 of the 17-workload registry): sparse and
//! low-migration workloads are exactly where the multi-level structure
//! must pay off, and losing that property is a regression.
//!
//! ```text
//! cargo run --release -p baryon-bench --bin metadata_report
//! BARYON_METADATA_MIN_WINS=5 BARYON_METADATA_INSTS=50000 ... metadata_report
//! ```

use baryon_bench::spec::RunSpec;
use baryon_core::checkpoint::atomic_write;
use baryon_core::config::BaryonConfig;
use baryon_core::metrics::RunResult;
use baryon_sim::json::Json;
use baryon_workloads::{registry, Scale};
use std::path::PathBuf;
use std::process::ExitCode;

const SCALE: u64 = 1024;

fn env_u64(key: &str, default: u64) -> u64 {
    std::env::var(key)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn spec(workload: &str, controller: &str, insts: u64) -> RunSpec {
    RunSpec {
        workload: workload.to_owned(),
        controller: controller.to_owned(),
        insts,
        warmup: insts / 4,
        scale: SCALE,
        seed: 42,
        mlp: 1,
        telemetry: true,
        threads: 1,
    }
}

/// The `ctrl.span.remap_walk` summary: (samples, mean ns).
fn walk_span(r: &RunResult) -> Option<(u64, f64)> {
    r.telemetry
        .summaries()
        .find(|(name, _)| *name == "ctrl.span.remap_walk")
        .map(|(_, h)| (h.count(), h.mean()))
}

fn span_json(r: &RunResult) -> Json {
    match walk_span(r) {
        Some((count, mean_ns)) => Json::obj([
            ("samples", Json::from(count)),
            ("mean_ns", Json::from(mean_ns)),
        ]),
        None => Json::Null,
    }
}

fn main() -> ExitCode {
    let insts = env_u64("BARYON_METADATA_INSTS", 20_000);
    let scale = Scale { divisor: SCALE };
    let workloads: Vec<String> = registry(scale).iter().map(|w| w.name.to_owned()).collect();
    let min_wins = env_u64("BARYON_METADATA_MIN_WINS", (workloads.len() as u64) / 2 + 1);

    // Provisioned footprints are a property of the design point, not the
    // workload: the flat table and hybrid2's per-block metadata lines
    // exist in full from cycle zero.
    let flat_cfg = BaryonConfig::default_cache_mode(scale);
    let trimma_cfg = BaryonConfig::default_trimma(scale);
    let flat_bytes = flat_cfg.remap_table_bytes();
    let trimma_reserved = trimma_cfg.remap_reserved_bytes();
    // Hybrid2's MetaModel keeps one 64 B metadata line per OS block.
    let hybrid2_bytes = flat_cfg.os_blocks() * 64;

    let mut rows = Vec::new();
    let mut wins = 0u64;
    println!(
        "{:<16} {:>12} {:>12} {:>14} {:>10} {:>10}",
        "workload", "flat B", "trimma B", "trimma/flat", "flat walk", "trimma walk"
    );
    for workload in &workloads {
        let run = |controller: &str| {
            spec(workload, controller, insts)
                .execute()
                .unwrap_or_else(|e| panic!("{controller}/{workload}: {e}"))
        };
        let baryon = run("baryon");
        let hybrid2 = run("hybrid2");
        let trimma = run("trimma");

        let trimma_live = trimma.telemetry.gauge("ctrl.remap.footprint_bytes");
        if trimma_live <= 0.0 {
            eprintln!("metadata_report: {workload}: trimma exported no footprint gauge");
            return ExitCode::FAILURE;
        }
        let ratio = trimma_live / flat_bytes as f64;
        if (trimma_live as u64) < flat_bytes {
            wins += 1;
        }
        let fmt_walk = |r: &RunResult| match walk_span(r) {
            Some((_, mean)) => format!("{mean:.0} ns"),
            None => "-".to_owned(),
        };
        println!(
            "{workload:<16} {flat_bytes:>12} {:>12} {ratio:>13.2}x {:>10} {:>10}",
            trimma_live as u64,
            fmt_walk(&baryon),
            fmt_walk(&trimma),
        );
        rows.push(Json::obj([
            ("workload", Json::from(workload.as_str())),
            (
                "baryon",
                Json::obj([
                    ("footprint_bytes", Json::from(flat_bytes)),
                    ("hot_hit_latency", Json::from(flat_cfg.remap_cache_latency)),
                    (
                        "hot_hit_rate",
                        Json::from(baryon.telemetry.gauge("ctrl.remap.cache_hit_rate")),
                    ),
                    ("remap_walk", span_json(&baryon)),
                    ("cycles", Json::from(baryon.total_cycles)),
                ]),
            ),
            (
                "hybrid2",
                Json::obj([
                    ("footprint_bytes", Json::from(hybrid2_bytes)),
                    ("hot_hit_latency", Json::from(3u64)),
                    ("cycles", Json::from(hybrid2.total_cycles)),
                ]),
            ),
            (
                "trimma",
                Json::obj([
                    ("footprint_bytes", Json::from(trimma_live as u64)),
                    ("reserved_bytes", Json::from(trimma_reserved)),
                    ("footprint_vs_flat", Json::from(ratio)),
                    (
                        "live_leaves",
                        Json::from(trimma.telemetry.gauge("ctrl.remap.live_leaves")),
                    ),
                    (
                        "leaves_allocated",
                        Json::from(trimma.counter("ctrl.remap.leaves_allocated")),
                    ),
                    (
                        "leaves_freed",
                        Json::from(trimma.counter("ctrl.remap.leaves_freed")),
                    ),
                    (
                        "hot_hit_latency",
                        Json::from(match trimma_cfg.remap {
                            baryon_core::config::RemapKind::MultiLevel { hot_latency, .. } => {
                                hot_latency
                            }
                            baryon_core::config::RemapKind::Flat => {
                                unreachable!("trimma is multi-level")
                            }
                        }),
                    ),
                    (
                        "hot_hit_rate",
                        Json::from(trimma.telemetry.gauge("ctrl.remap.cache_hit_rate")),
                    ),
                    ("remap_walk", span_json(&trimma)),
                    ("cycles", Json::from(trimma.total_cycles)),
                ]),
            ),
        ]));
    }

    let pass = wins >= min_wins;
    let doc = Json::obj([
        ("bench", Json::from("metadata")),
        ("scale", Json::from(SCALE)),
        ("insts", Json::from(insts)),
        ("workloads_run", Json::from(workloads.len() as u64)),
        ("footprint_wins", Json::from(wins)),
        ("min_wins", Json::from(min_wins)),
        ("pass", Json::Bool(pass)),
        ("workloads", Json::Arr(rows)),
    ]);
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_metadata.json");
    let mut body = doc.render();
    body.push('\n');
    if let Err(e) = atomic_write(&path, body.as_bytes()) {
        eprintln!("metadata_report: cannot write {}: {e}", path.display());
        return ExitCode::FAILURE;
    }
    println!(
        "trimma undercuts the flat table on {wins}/{} workloads (min {min_wins}) -> {}",
        workloads.len(),
        path.display()
    );
    if !pass {
        eprintln!(
            "metadata_report: regression: trimma's live metadata footprint beat the flat table \
             on only {wins} workloads (need {min_wins})"
        );
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

//! Declarative run specifications.
//!
//! A [`RunSpec`] names one `(workload, controller)` simulation with all of
//! its knobs; a [`GridSpec`] is the cross product of several. Both
//! round-trip through [`baryon_sim::json`], which is how jobs travel over
//! the wire to `baryon-serve` and how `baryon-cli run` describes the run
//! it is about to execute. Keeping the execution path here — one function,
//! used by the CLI and by every server worker — is what makes a job
//! submitted remotely byte-identical to the same run performed locally.

use baryon_core::checkpoint::{Checkpoint, RestoreError};
use baryon_core::family::FamilyId;
use baryon_core::metrics::RunResult;
use baryon_core::policy::FleetPolicy;
use baryon_core::system::{ControllerKind, RunProgress, System, SystemConfig};
use baryon_sim::json::{parse, Json};
use baryon_sim::wire::{Reader, Writer};
use baryon_workloads::{by_name, Scale};
use std::path::Path;

/// File-name prefix used by [`RunSpec::execute_with_checkpoints`] for its
/// rotating checkpoint files (`ckpt-<ops>.ckpt`).
pub const CHECKPOINT_PREFIX: &str = "ckpt";

/// Controller names accepted by [`controller_kind`], in presentation
/// order — the [`FamilyId`] registry's name table.
pub const CONTROLLER_NAMES: &[&str] = &FamilyId::NAMES;

/// Resolves a controller name to its configuration at the given scale
/// through the [`FamilyId`] registry.
///
/// Returns `None` for unknown names; see [`CONTROLLER_NAMES`].
pub fn controller_kind(name: &str, scale: Scale) -> Option<ControllerKind> {
    Some(FamilyId::parse(name).ok()?.kind(scale))
}

/// Overlays a fleet policy's controller overrides onto a resolved
/// [`ControllerKind`]. Baseline controllers (non-Baryon) carry no tunable
/// knobs and pass through unchanged.
fn apply_policy(kind: ControllerKind, policy: Option<&FleetPolicy>) -> ControllerKind {
    match (kind, policy) {
        (ControllerKind::Baryon(cfg), Some(p)) => ControllerKind::Baryon(p.apply(cfg)),
        (kind, _) => kind,
    }
}

/// Stamps the policy's config generation into a finished result.
fn stamp_generation(mut result: RunResult, policy: Option<&FleetPolicy>) -> RunResult {
    result.config_generation = policy.map_or(0, |p| p.generation);
    result
}

/// One fully-specified simulation run.
///
/// Defaults match `baryon-cli run` exactly, so a spec built from a sparse
/// JSON document runs the same experiment the CLI would.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunSpec {
    /// Workload name (see `baryon-cli list`).
    pub workload: String,
    /// Controller name (see [`CONTROLLER_NAMES`]).
    pub controller: String,
    /// Measured instructions per core.
    pub insts: u64,
    /// Warm-up instructions per core.
    pub warmup: u64,
    /// Capacity scale divisor vs the paper's machine.
    pub scale: u64,
    /// RNG seed shared by workload generation and the system.
    pub seed: u64,
    /// Memory-level parallelism per core.
    pub mlp: u64,
    /// Collect wall-clock spans (`*.span.*` summaries) during the run.
    /// Off by default: disabled runs never read the host clock, keeping
    /// results bit-identical.
    pub telemetry: bool,
    /// Host threads used to refill per-core trace shards. Purely a
    /// throughput knob: any value produces bit-identical results.
    pub threads: u64,
}

impl Default for RunSpec {
    fn default() -> Self {
        RunSpec {
            workload: "505.mcf_r".to_owned(),
            controller: "baryon".to_owned(),
            insts: 150_000,
            warmup: 50_000,
            scale: 256,
            seed: 42,
            mlp: 1,
            telemetry: false,
            threads: 1,
        }
    }
}

fn field_str(key: &str, value: &Json) -> Result<String, String> {
    match value {
        Json::Str(s) => Ok(s.clone()),
        other => Err(format!(
            "field `{key}` must be a string, got {}",
            other.render()
        )),
    }
}

fn field_u64(key: &str, value: &Json) -> Result<u64, String> {
    match value {
        Json::U64(n) => Ok(*n),
        Json::I64(n) if *n >= 0 => Ok(*n as u64),
        other => Err(format!(
            "field `{key}` must be a non-negative integer, got {}",
            other.render()
        )),
    }
}

fn field_bool(key: &str, value: &Json) -> Result<bool, String> {
    match value {
        Json::Bool(b) => Ok(*b),
        other => Err(format!(
            "field `{key}` must be a boolean, got {}",
            other.render()
        )),
    }
}

fn field_str_list(key: &str, value: &Json) -> Result<Vec<String>, String> {
    let Json::Arr(items) = value else {
        return Err(format!(
            "field `{key}` must be an array of strings, got {}",
            value.render()
        ));
    };
    items.iter().map(|v| field_str(key, v)).collect()
}

impl RunSpec {
    /// Builds a spec from a JSON object, starting from [`Default`] and
    /// overriding any of `workload`, `controller`, `insts`, `warmup`,
    /// `scale`, `seed`, `mlp`, `telemetry`, `threads`.
    ///
    /// # Errors
    ///
    /// Rejects non-objects, unknown fields (typos should fail loudly, not
    /// silently run the default experiment), and ill-typed values.
    pub fn from_json(doc: &Json) -> Result<RunSpec, String> {
        let Json::Obj(pairs) = doc else {
            return Err(format!("run spec must be an object, got {}", doc.render()));
        };
        let mut spec = RunSpec::default();
        for (key, value) in pairs {
            match key.as_str() {
                "workload" => spec.workload = field_str(key, value)?,
                "controller" => spec.controller = field_str(key, value)?,
                "insts" => spec.insts = field_u64(key, value)?,
                "warmup" => spec.warmup = field_u64(key, value)?,
                "scale" => spec.scale = field_u64(key, value)?,
                "seed" => spec.seed = field_u64(key, value)?,
                "mlp" => spec.mlp = field_u64(key, value)?,
                "telemetry" => spec.telemetry = field_bool(key, value)?,
                "threads" => spec.threads = field_u64(key, value)?,
                other => return Err(format!("unknown run spec field `{other}`")),
            }
        }
        spec.validate()?;
        Ok(spec)
    }

    /// The spec as a JSON object (every field, in declaration order).
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("workload", Json::from(self.workload.as_str())),
            ("controller", Json::from(self.controller.as_str())),
            ("insts", Json::from(self.insts)),
            ("warmup", Json::from(self.warmup)),
            ("scale", Json::from(self.scale)),
            ("seed", Json::from(self.seed)),
            ("mlp", Json::from(self.mlp)),
            ("telemetry", Json::Bool(self.telemetry)),
            ("threads", Json::from(self.threads)),
        ])
    }

    /// Checks names and numeric ranges without running anything.
    ///
    /// # Errors
    ///
    /// Returns a message naming the offending field.
    pub fn validate(&self) -> Result<(), String> {
        let scale = Scale {
            divisor: self.scale.max(1),
        };
        if by_name(&self.workload, scale).is_none() {
            return Err(format!("unknown workload `{}`", self.workload));
        }
        if controller_kind(&self.controller, scale).is_none() {
            return Err(format!("unknown controller `{}`", self.controller));
        }
        if self.scale == 0 {
            return Err("`scale` must be at least 1".to_owned());
        }
        if self.insts == 0 {
            return Err("`insts` must be at least 1".to_owned());
        }
        if self.mlp == 0 {
            return Err("`mlp` must be at least 1".to_owned());
        }
        if self.threads == 0 {
            return Err("`threads` must be at least 1".to_owned());
        }
        Ok(())
    }

    /// Runs the spec to completion. The construction mirrors
    /// `baryon-cli run` line for line, so results (and their
    /// [`RunResult::to_json`] renderings) are identical across entry
    /// points.
    ///
    /// # Errors
    ///
    /// Returns the [`RunSpec::validate`] error for bad names or ranges.
    pub fn execute(&self) -> Result<RunResult, String> {
        self.execute_with(None)
    }

    /// [`RunSpec::execute`] under a fleet policy: controller overrides are
    /// overlaid onto the run's design point and the policy's config
    /// generation is stamped into the result. `None` is the baseline and
    /// bit-identical to [`RunSpec::execute`].
    ///
    /// # Errors
    ///
    /// Returns the [`RunSpec::validate`] error for bad names or ranges.
    pub fn execute_with(&self, policy: Option<&FleetPolicy>) -> Result<RunResult, String> {
        let mut system = self.build_system_with(policy)?;
        Ok(stamp_generation(system.run(self.insts), policy))
    }

    /// Constructs the [`System`] this spec describes without running it —
    /// the shared front half of [`RunSpec::execute`] and the checkpoint
    /// paths, so a resumed run is built from byte-identical configuration.
    ///
    /// # Errors
    ///
    /// Returns the [`RunSpec::validate`] error for bad names or ranges.
    pub fn build_system(&self) -> Result<System, String> {
        self.build_system_with(None)
    }

    /// [`RunSpec::build_system`] with a fleet policy overlaid onto the
    /// resolved controller configuration.
    ///
    /// # Errors
    ///
    /// Returns the [`RunSpec::validate`] error for bad names or ranges.
    pub fn build_system_with(&self, policy: Option<&FleetPolicy>) -> Result<System, String> {
        self.validate()?;
        let scale = Scale {
            divisor: self.scale,
        };
        let workload = by_name(&self.workload, scale).expect("validated");
        let kind = apply_policy(
            controller_kind(&self.controller, scale).expect("validated"),
            policy,
        );
        let mut cfg = SystemConfig::with_controller(scale, kind);
        cfg.warmup_insts = self.warmup;
        cfg.mlp = self.mlp as usize;
        cfg.telemetry = self.telemetry;
        cfg.threads = self.threads as usize;
        Ok(System::new(cfg, &workload, self.seed))
    }

    /// Snapshots an in-progress run of this spec as a [`Checkpoint`].
    pub fn checkpoint_of(&self, system: &System) -> Checkpoint {
        let mut w = Writer::new();
        system.save_state(&mut w);
        Checkpoint {
            spec_json: self.to_json().render(),
            workload: self.workload.clone(),
            seed: self.seed,
            ops: system.run_ops(),
            state: w.into_bytes(),
        }
    }

    /// Runs the spec to completion, writing a rotating checkpoint into
    /// `dir` every `every` trace operations (the newest `keep` are
    /// retained). The returned result is bit-identical to
    /// [`RunSpec::execute`] — checkpointing only observes the run, it
    /// never perturbs it.
    ///
    /// # Errors
    ///
    /// Returns the [`RunSpec::validate`] error. A checkpoint that cannot
    /// be written (full or faulty disk) is logged and skipped — the run
    /// itself never fails over its recovery accelerator.
    pub fn execute_with_checkpoints(
        &self,
        dir: &Path,
        every: u64,
        keep: usize,
    ) -> Result<RunResult, String> {
        self.execute_observed(every, Some((dir, keep)), &mut |_| {})
    }

    /// Runs the spec to completion incrementally, invoking `observe` with
    /// a [`RunProgress`] snapshot every `every` trace operations (and once
    /// more when the run completes). When `checkpoints` is
    /// `Some((dir, keep))`, a rotating checkpoint is also written at each
    /// step. Observation and checkpointing only watch the run — the
    /// result is bit-identical to [`RunSpec::execute`].
    ///
    /// # Errors
    ///
    /// Returns the [`RunSpec::validate`] error. A checkpoint that cannot
    /// be written (full or faulty disk) is logged and skipped — the run
    /// itself never fails over its recovery accelerator.
    pub fn execute_observed(
        &self,
        every: u64,
        checkpoints: Option<(&Path, usize)>,
        observe: &mut dyn FnMut(RunProgress),
    ) -> Result<RunResult, String> {
        self.execute_observed_with(every, checkpoints, observe, None)
    }

    /// [`RunSpec::execute_observed`] under a fleet policy (see
    /// [`RunSpec::execute_with`]).
    ///
    /// # Errors
    ///
    /// Returns the [`RunSpec::validate`] error. A checkpoint that cannot
    /// be written (full or faulty disk) is logged and skipped — the run
    /// itself never fails over its recovery accelerator.
    pub fn execute_observed_with(
        &self,
        every: u64,
        checkpoints: Option<(&Path, usize)>,
        observe: &mut dyn FnMut(RunProgress),
        policy: Option<&FleetPolicy>,
    ) -> Result<RunResult, String> {
        let every = every.max(1);
        let mut system = self.build_system_with(policy)?;
        system.begin(self.insts);
        loop {
            let done = system.advance(every);
            if let Some((dir, keep)) = checkpoints {
                if !done {
                    // Checkpoints are a recovery accelerator, not the source
                    // of truth (the journal is): a write failure — a full or
                    // lying disk under chaos — degrades resume granularity
                    // but must never fail the run itself.
                    if let Err(e) =
                        self.checkpoint_of(&system)
                            .save_rotating(dir, CHECKPOINT_PREFIX, keep)
                    {
                        eprintln!("baryon: skipping checkpoint into {}: {e}", dir.display());
                    }
                }
            }
            observe(system.run_progress().expect("run in progress"));
            if done {
                return Ok(stamp_generation(system.finish(), policy));
            }
        }
    }
}

/// Restores the run captured by the checkpoint at `path` and runs it to
/// completion, returning the embedded spec and the final result. The
/// result is bit-identical to an uninterrupted [`RunSpec::execute`] of
/// the same spec.
///
/// # Errors
///
/// Any [`RestoreError`]: an unreadable/corrupt file, a state blob that
/// does not decode against the rebuilt system, or an embedded spec that
/// disagrees with the checkpoint envelope.
pub fn resume_from(path: &Path) -> Result<(RunSpec, RunResult), RestoreError> {
    resume_from_with(path, None)
}

/// [`resume_from`] under a fleet policy: the system is rebuilt with the
/// same overlaid configuration the checkpointed run executed with, so a
/// shard respawned mid-generation resumes its jobs correctly.
///
/// # Errors
///
/// Any [`RestoreError`] (see [`resume_from`]).
pub fn resume_from_with(
    path: &Path,
    policy: Option<&FleetPolicy>,
) -> Result<(RunSpec, RunResult), RestoreError> {
    let ckpt = Checkpoint::read_from(path)?;
    let doc = parse(&ckpt.spec_json)
        .map_err(|e| RestoreError::SpecMismatch(format!("embedded spec is not valid JSON: {e}")))?;
    let spec = RunSpec::from_json(&doc).map_err(RestoreError::SpecMismatch)?;
    if spec.workload != ckpt.workload {
        return Err(RestoreError::SpecMismatch(format!(
            "envelope workload `{}` disagrees with embedded spec `{}`",
            ckpt.workload, spec.workload
        )));
    }
    if spec.seed != ckpt.seed {
        return Err(RestoreError::SpecMismatch(format!(
            "envelope seed {} disagrees with embedded spec {}",
            ckpt.seed, spec.seed
        )));
    }
    let mut system = spec
        .build_system_with(policy)
        .map_err(RestoreError::SpecMismatch)?;
    let mut r = Reader::new(&ckpt.state);
    system.load_state(&mut r)?;
    r.finish()?;
    if !system.run_in_progress() {
        return Err(RestoreError::SpecMismatch(
            "checkpoint does not carry an in-progress run".to_owned(),
        ));
    }
    system.advance(u64::MAX);
    Ok((spec, stamp_generation(system.finish(), policy)))
}

/// A cross product of workloads × controllers sharing one set of knobs —
/// the shape of every figure sweep in the paper's evaluation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GridSpec {
    /// Workload names (the grid's rows).
    pub workloads: Vec<String>,
    /// Controller names (the grid's columns).
    pub controllers: Vec<String>,
    /// Knobs shared by every cell (its `workload`/`controller` are ignored).
    pub base: RunSpec,
}

impl GridSpec {
    /// Builds a grid from a JSON object with `workloads` and `controllers`
    /// string arrays plus any [`RunSpec`] knob overrides.
    ///
    /// # Errors
    ///
    /// Rejects empty axes, unknown fields, and ill-typed values.
    pub fn from_json(doc: &Json) -> Result<GridSpec, String> {
        let Json::Obj(pairs) = doc else {
            return Err(format!("grid spec must be an object, got {}", doc.render()));
        };
        let mut workloads = Vec::new();
        let mut controllers = Vec::new();
        let mut base = RunSpec::default();
        for (key, value) in pairs {
            match key.as_str() {
                "workloads" => workloads = field_str_list(key, value)?,
                "controllers" => controllers = field_str_list(key, value)?,
                "insts" => base.insts = field_u64(key, value)?,
                "warmup" => base.warmup = field_u64(key, value)?,
                "scale" => base.scale = field_u64(key, value)?,
                "seed" => base.seed = field_u64(key, value)?,
                "mlp" => base.mlp = field_u64(key, value)?,
                "telemetry" => base.telemetry = field_bool(key, value)?,
                "threads" => base.threads = field_u64(key, value)?,
                other => return Err(format!("unknown grid spec field `{other}`")),
            }
        }
        if workloads.is_empty() {
            return Err("grid spec needs a non-empty `workloads` array".to_owned());
        }
        if controllers.is_empty() {
            return Err("grid spec needs a non-empty `controllers` array".to_owned());
        }
        let grid = GridSpec {
            workloads,
            controllers,
            base,
        };
        for cell in grid.expand() {
            cell.validate()?;
        }
        Ok(grid)
    }

    /// The individual runs, row-major (`workloads` outer, `controllers`
    /// inner) — the order every figure table uses.
    pub fn expand(&self) -> Vec<RunSpec> {
        let mut cells = Vec::with_capacity(self.workloads.len() * self.controllers.len());
        for w in &self.workloads {
            for c in &self.controllers {
                let mut cell = self.base.clone();
                cell.workload = w.clone();
                cell.controller = c.clone();
                cells.push(cell);
            }
        }
        cells
    }
}

/// A job body as accepted by `baryon-serve`: either one run or a grid
/// (an object whose single distinguishing key is `grid`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JobSpec {
    /// One simulation.
    Run(RunSpec),
    /// A workloads × controllers sweep.
    Grid(GridSpec),
}

impl JobSpec {
    /// Parses either shape: `{"grid": {...}}` or a bare [`RunSpec`] object.
    ///
    /// # Errors
    ///
    /// Propagates the underlying spec errors.
    pub fn from_json(doc: &Json) -> Result<JobSpec, String> {
        if let Json::Obj(pairs) = doc {
            if let Some((_, grid)) = pairs.iter().find(|(k, _)| k == "grid") {
                if pairs.len() != 1 {
                    return Err("a grid job must contain only the `grid` field".to_owned());
                }
                return GridSpec::from_json(grid).map(JobSpec::Grid);
            }
        }
        RunSpec::from_json(doc).map(JobSpec::Run)
    }

    /// The spec echoed back as JSON (what `GET /v1/jobs/<id>` reports).
    pub fn to_json(&self) -> Json {
        match self {
            JobSpec::Run(spec) => spec.to_json(),
            JobSpec::Grid(grid) => Json::obj([(
                "grid",
                Json::obj([
                    (
                        "workloads",
                        Json::arr(grid.workloads.iter().map(|w| Json::from(w.as_str()))),
                    ),
                    (
                        "controllers",
                        Json::arr(grid.controllers.iter().map(|c| Json::from(c.as_str()))),
                    ),
                    ("insts", Json::from(grid.base.insts)),
                    ("warmup", Json::from(grid.base.warmup)),
                    ("scale", Json::from(grid.base.scale)),
                    ("seed", Json::from(grid.base.seed)),
                    ("mlp", Json::from(grid.base.mlp)),
                    ("telemetry", Json::Bool(grid.base.telemetry)),
                    ("threads", Json::from(grid.base.threads)),
                ]),
            )]),
        }
    }

    /// Number of individual simulations this job performs.
    pub fn runs(&self) -> usize {
        match self {
            JobSpec::Run(_) => 1,
            JobSpec::Grid(grid) => grid.workloads.len() * grid.controllers.len(),
        }
    }

    /// Executes the job, producing its result document: a bare
    /// [`RunResult::to_json`] for a single run, or
    /// `{"results": [...]}` (row-major) for a grid.
    ///
    /// # Errors
    ///
    /// Returns the first cell's error message; cells are validated up
    /// front so partial grids are not silently dropped.
    pub fn execute(&self) -> Result<Json, String> {
        match self {
            JobSpec::Run(spec) => spec.execute().map(|r| r.to_json()),
            JobSpec::Grid(grid) => {
                let results = grid
                    .expand()
                    .iter()
                    .map(|cell| cell.execute().map(|r| r.to_json()))
                    .collect::<Result<Vec<_>, _>>()?;
                Ok(Json::obj([("results", Json::Arr(results))]))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use baryon_sim::json::parse;

    #[test]
    fn controller_names_all_resolve() {
        let scale = Scale { divisor: 1024 };
        for name in CONTROLLER_NAMES {
            assert!(controller_kind(name, scale).is_some(), "{name}");
        }
        assert!(controller_kind("nope", scale).is_none());
    }

    #[test]
    fn run_spec_json_roundtrip() {
        let spec = RunSpec {
            workload: "ycsb-a".into(),
            controller: "dice".into(),
            insts: 1000,
            warmup: 10,
            scale: 1024,
            seed: 7,
            mlp: 2,
            telemetry: true,
            threads: 4,
        };
        let back = RunSpec::from_json(&spec.to_json()).expect("roundtrip");
        assert_eq!(back, spec);
    }

    #[test]
    fn sparse_spec_fills_cli_defaults() {
        let doc = parse(r#"{"workload":"ycsb-a"}"#).expect("valid json");
        let spec = RunSpec::from_json(&doc).expect("valid spec");
        assert_eq!(spec.workload, "ycsb-a");
        assert_eq!(spec.controller, "baryon");
        assert_eq!(spec.insts, 150_000);
        assert_eq!(spec.warmup, 50_000);
        assert_eq!(spec.scale, 256);
        assert_eq!(spec.seed, 42);
        assert_eq!(spec.mlp, 1);
        assert_eq!(spec.threads, 1);
    }

    #[test]
    fn unknown_and_ill_typed_fields_rejected() {
        for bad in [
            r#"{"workloadd":"ycsb-a"}"#,
            r#"{"insts":"many"}"#,
            r#"{"insts":-5}"#,
            r#"{"workload":7}"#,
            r#"{"workload":"nope"}"#,
            r#"{"controller":"nope"}"#,
            r#"{"insts":0}"#,
            r#"{"scale":0}"#,
            r#"{"mlp":0}"#,
            r#"{"threads":0}"#,
            r#"[1,2]"#,
        ] {
            let doc = parse(bad).expect("valid json");
            assert!(RunSpec::from_json(&doc).is_err(), "accepted {bad}");
        }
    }

    #[test]
    fn execute_matches_direct_system_run() {
        let spec = RunSpec {
            workload: "ycsb-a".into(),
            controller: "simple".into(),
            insts: 5_000,
            warmup: 1_000,
            scale: 1024,
            seed: 9,
            mlp: 1,
            telemetry: false,
            threads: 1,
        };
        let via_spec = spec.execute().expect("runs");

        let scale = Scale { divisor: 1024 };
        let workload = by_name("ycsb-a", scale).expect("known");
        let kind = controller_kind("simple", scale).expect("known");
        let mut cfg = SystemConfig::with_controller(scale, kind);
        cfg.warmup_insts = 1_000;
        cfg.mlp = 1;
        let direct = System::new(cfg, &workload, 9).run(5_000);

        assert_eq!(via_spec.to_json().render(), direct.to_json().render());
    }

    #[test]
    fn grid_expands_row_major() {
        let doc = parse(
            r#"{"grid":{"workloads":["ycsb-a","pr.twi"],
                      "controllers":["simple","dice"],
                      "insts":1000,"scale":1024}}"#,
        )
        .expect("valid json");
        let JobSpec::Grid(grid) = JobSpec::from_json(&doc).expect("valid grid") else {
            panic!("expected a grid job");
        };
        let cells = grid.expand();
        let names: Vec<(String, String)> = cells
            .iter()
            .map(|c| (c.workload.clone(), c.controller.clone()))
            .collect();
        assert_eq!(
            names,
            [
                ("ycsb-a".to_owned(), "simple".to_owned()),
                ("ycsb-a".to_owned(), "dice".to_owned()),
                ("pr.twi".to_owned(), "simple".to_owned()),
                ("pr.twi".to_owned(), "dice".to_owned()),
            ]
        );
        assert!(cells.iter().all(|c| c.insts == 1000 && c.scale == 1024));
    }

    #[test]
    fn grid_rejects_empty_axes_and_extras() {
        for bad in [
            r#"{"grid":{"controllers":["simple"]}}"#,
            r#"{"grid":{"workloads":["ycsb-a"]}}"#,
            r#"{"grid":{"workloads":[],"controllers":["simple"]}}"#,
            r#"{"grid":{"workloads":["ycsb-a"],"controllers":["nope"]}}"#,
            r#"{"grid":{"workloads":["ycsb-a"],"controllers":["simple"]},"insts":5}"#,
        ] {
            let doc = parse(bad).expect("valid json");
            assert!(JobSpec::from_json(&doc).is_err(), "accepted {bad}");
        }
    }

    fn temp_dir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("baryon-spec-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn small_spec() -> RunSpec {
        RunSpec {
            workload: "ycsb-a".into(),
            controller: "baryon".into(),
            insts: 5_000,
            warmup: 2_000,
            scale: 1024,
            seed: 11,
            mlp: 1,
            telemetry: false,
            threads: 1,
        }
    }

    #[test]
    fn checkpointed_run_matches_uninterrupted() {
        let spec = small_spec();
        let golden = spec.execute().expect("golden run");

        let dir = temp_dir("ckpt");
        let observed = spec
            .execute_with_checkpoints(&dir, 500, 3)
            .expect("checkpointed run");
        assert_eq!(
            observed.to_json().render(),
            golden.to_json().render(),
            "checkpointing perturbed the run"
        );

        // At most `keep` files remain, and the newest resumes to the
        // same result as the uninterrupted golden.
        let latest = Checkpoint::latest_in(&dir, CHECKPOINT_PREFIX)
            .expect("scan checkpoints")
            .expect("at least one checkpoint");
        let files = std::fs::read_dir(&dir).expect("dir").count();
        assert!(files <= 3, "rotation kept {files} files");
        let (back_spec, resumed) = resume_from(&latest).expect("resume");
        assert_eq!(back_spec, spec);
        assert_eq!(
            resumed.to_json().render(),
            golden.to_json().render(),
            "resumed run diverged from golden"
        );
        std::fs::remove_dir_all(&dir).expect("cleanup");
    }

    #[test]
    fn resume_rejects_tampered_envelope() {
        let spec = small_spec();
        let dir = temp_dir("tamper");
        std::fs::create_dir_all(&dir).expect("mkdir");

        let mut system = spec.build_system().expect("system");
        system.begin(spec.insts);
        assert!(!system.advance(500), "run too short for test");
        let mut ckpt = spec.checkpoint_of(&system);
        ckpt.seed = spec.seed + 1; // envelope no longer matches the spec
        let path = dir.join("bad.ckpt");
        ckpt.write_to(&path).expect("write");
        match resume_from(&path) {
            Err(RestoreError::SpecMismatch(msg)) => assert!(msg.contains("seed"), "{msg}"),
            other => panic!("expected SpecMismatch, got {other:?}"),
        }
        std::fs::remove_dir_all(&dir).expect("cleanup");
    }

    #[test]
    fn policy_overlay_changes_run_and_stamps_generation() {
        let spec = small_spec();
        let baseline = spec.execute().expect("baseline");
        // An empty policy at generation 0 is bit-identical to no policy.
        let noop = FleetPolicy::default();
        let under_noop = spec.execute_with(Some(&noop)).expect("noop policy");
        assert_eq!(under_noop.to_json().render(), baseline.to_json().render());
        // A real override perturbs the run and stamps its generation.
        let policy = FleetPolicy {
            generation: 5,
            commit_all: Some(true),
            ..FleetPolicy::default()
        };
        let under_policy = spec.execute_with(Some(&policy)).expect("policy run");
        assert_eq!(under_policy.config_generation, 5);
        assert!(
            under_policy
                .to_json()
                .render()
                .contains("\"config_generation\":5"),
            "generation missing from the document"
        );
        assert_ne!(
            under_policy.total_cycles, baseline.total_cycles,
            "commit-all override did not change the run"
        );
    }

    #[test]
    fn policy_resume_matches_uninterrupted_policy_run() {
        let spec = small_spec();
        let policy = FleetPolicy {
            generation: 2,
            zero_opt: Some(false),
            ..FleetPolicy::default()
        };
        let golden = spec.execute_with(Some(&policy)).expect("golden");
        let dir = temp_dir("policy-ckpt");
        std::fs::create_dir_all(&dir).expect("mkdir");
        let observed = spec
            .execute_observed_with(500, Some((&dir, 3)), &mut |_| {}, Some(&policy))
            .expect("checkpointed run");
        assert_eq!(observed.to_json().render(), golden.to_json().render());
        let latest = Checkpoint::latest_in(&dir, CHECKPOINT_PREFIX)
            .expect("scan")
            .expect("checkpoint exists");
        let (_, resumed) = resume_from_with(&latest, Some(&policy)).expect("resume");
        assert_eq!(
            resumed.to_json().render(),
            golden.to_json().render(),
            "policy-aware resume diverged"
        );
        std::fs::remove_dir_all(&dir).expect("cleanup");
    }

    #[test]
    fn job_spec_dispatches_on_grid_key() {
        let run = parse(r#"{"workload":"ycsb-a"}"#).expect("json");
        assert!(matches!(
            JobSpec::from_json(&run).expect("run"),
            JobSpec::Run(_)
        ));
        let grid =
            parse(r#"{"grid":{"workloads":["ycsb-a"],"controllers":["simple"]}}"#).expect("json");
        let job = JobSpec::from_json(&grid).expect("grid");
        assert!(matches!(job, JobSpec::Grid(_)));
        assert_eq!(job.runs(), 1);
        // The echo names both axes.
        let echo = job.to_json().render();
        assert!(echo.contains("\"workloads\""), "{echo}");
    }
}

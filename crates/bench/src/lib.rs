#![warn(missing_docs)]

//! Benchmark harness regenerating the paper's tables and figures.
//!
//! Every `cargo bench` target under `benches/` corresponds to one table or
//! figure of the evaluation section (see DESIGN.md §3 for the index). Each
//! target prints the same rows/series the paper reports and writes a
//! machine-readable copy to `baryon-results/<id>.csv`.
//!
//! Knobs (environment variables):
//!
//! * `BARYON_BENCH_INSTS` — measured instructions per core (default 150000),
//! * `BARYON_BENCH_WARMUP` — warm-up instructions per core (default 50000),
//! * `BARYON_BENCH_SCALE` — capacity divisor vs the paper (default 256),
//! * `BARYON_BENCH_QUICK` — if set, runs a reduced workload set.

pub mod batch;
pub mod spec;

use baryon_core::config::BaryonConfig;
use baryon_core::metrics::RunResult;
use baryon_core::system::{ControllerKind, System, SystemConfig};
use baryon_workloads::{registry, Scale, Workload};
use std::fs;
use std::path::PathBuf;
use std::time::Instant;

/// Shared run parameters.
#[derive(Debug, Clone, Copy)]
pub struct Params {
    /// Measured instructions per core.
    pub insts: u64,
    /// Warm-up instructions per core.
    pub warmup: u64,
    /// Capacity scale.
    pub scale: Scale,
    /// Reduced workload set for smoke runs.
    pub quick: bool,
    /// Seed shared by all runs.
    pub seed: u64,
}

impl Params {
    /// Reads parameters from the environment.
    pub fn from_env() -> Self {
        let get = |k: &str, d: u64| {
            std::env::var(k)
                .ok()
                .and_then(|v| v.parse().ok())
                .unwrap_or(d)
        };
        Params {
            insts: get("BARYON_BENCH_INSTS", 150_000),
            warmup: get("BARYON_BENCH_WARMUP", 50_000),
            scale: Scale {
                divisor: get("BARYON_BENCH_SCALE", 256),
            },
            quick: std::env::var("BARYON_BENCH_QUICK").is_ok(),
            seed: get("BARYON_BENCH_SEED", 42),
        }
    }

    /// The full workload suite (or the quick subset).
    pub fn workloads(&self) -> Vec<Workload> {
        let all = registry(self.scale);
        if self.quick {
            all.into_iter()
                .filter(|w| ["505.mcf_r", "549.fotonik3d_r", "pr.twi", "ycsb-a"].contains(&w.name))
                .collect()
        } else {
            all
        }
    }

    /// The representative subset used by the paper's analysis figures
    /// (Fig 11–13 style).
    pub fn representative(&self) -> Vec<Workload> {
        registry(self.scale)
            .into_iter()
            .filter(|w| {
                [
                    "505.mcf_r",
                    "520.omnetpp_r",
                    "549.fotonik3d_r",
                    "pr.twi",
                    "resnet50",
                    "ycsb-a",
                ]
                .contains(&w.name)
            })
            .collect()
    }
}

/// Runs one (workload, controller) pair and returns the measured result.
///
/// With `BARYON_BENCH_SEEDS > 1` the run repeats over consecutive seeds and
/// the cycle counts / serve statistics are averaged, trading wall-clock for
/// lower seed sensitivity.
pub fn run(params: &Params, workload: &Workload, kind: ControllerKind) -> RunResult {
    let seeds = std::env::var("BARYON_BENCH_SEEDS")
        .ok()
        .and_then(|v| v.parse::<u64>().ok())
        .unwrap_or(1)
        .max(1);
    let mut results: Vec<RunResult> = (0..seeds)
        .map(|k| {
            let mut cfg = SystemConfig::with_controller(params.scale, kind.clone());
            cfg.warmup_insts = params.warmup;
            let mut system = System::new(cfg, workload, params.seed + k);
            system.run(params.insts)
        })
        .collect();
    if results.len() == 1 {
        return results.pop().expect("one result");
    }
    average_runs(results)
}

/// Averages cycle counts and serve statistics over same-length runs.
///
/// # Panics
///
/// Panics on an empty slice.
pub fn average_runs(results: Vec<RunResult>) -> RunResult {
    assert!(!results.is_empty(), "cannot average zero runs");
    let n = results.len() as u64;
    let mut acc = results[0].clone();
    acc.total_cycles = results.iter().map(|r| r.total_cycles).sum::<u64>() / n;
    acc.instructions = results.iter().map(|r| r.instructions).sum::<u64>() / n;
    acc.llc_misses = results.iter().map(|r| r.llc_misses).sum::<u64>() / n;
    acc.serve.reads = results.iter().map(|r| r.serve.reads).sum::<u64>() / n;
    acc.serve.fast_served = results.iter().map(|r| r.serve.fast_served).sum::<u64>() / n;
    acc.serve.writebacks = results.iter().map(|r| r.serve.writebacks).sum::<u64>() / n;
    acc.serve.useful_bytes = results.iter().map(|r| r.serve.useful_bytes).sum::<u64>() / n;
    acc.serve.fast_bytes = results.iter().map(|r| r.serve.fast_bytes).sum::<u64>() / n;
    acc.serve.slow_bytes = results.iter().map(|r| r.serve.slow_bytes).sum::<u64>() / n;
    acc.serve.energy_pj = results.iter().map(|r| r.serve.energy_pj).sum::<f64>() / n as f64;
    for r in &results[1..] {
        acc.read_latency.merge(&r.read_latency);
    }
    acc
}

/// Runs with access to the system after the run (for Baryon-specific
/// instrumentation like the phase tracker).
pub fn run_with_system(
    params: &Params,
    workload: &Workload,
    kind: ControllerKind,
    prepare: impl FnOnce(&mut System),
) -> (RunResult, System) {
    let mut cfg = SystemConfig::with_controller(params.scale, kind);
    cfg.warmup_insts = params.warmup;
    let mut system = System::new(cfg, workload, params.seed);
    prepare(&mut system);
    let result = system.run(params.insts);
    (result, system)
}

/// Runs a grid of (workload, controller) jobs in parallel worker threads,
/// returning results in job order. The thread count follows
/// `BARYON_BENCH_THREADS` (default: available parallelism, capped at the
/// job count). Every run stays deterministic — parallelism only reorders
/// wall-clock execution, never the per-run streams.
pub fn run_grid(params: &Params, jobs: Vec<(Workload, ControllerKind)>) -> Vec<RunResult> {
    let threads = std::env::var("BARYON_BENCH_THREADS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        })
        .clamp(1, jobs.len().max(1));
    if threads <= 1 || jobs.len() <= 1 {
        return jobs.into_iter().map(|(w, k)| run(params, &w, k)).collect();
    }
    let next = std::sync::atomic::AtomicUsize::new(0);
    let (tx, rx) = std::sync::mpsc::channel::<(usize, RunResult)>();
    std::thread::scope(|scope| {
        for _ in 0..threads {
            let tx = tx.clone();
            let next = &next;
            let jobs = &jobs;
            scope.spawn(move || loop {
                let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                if i >= jobs.len() {
                    break;
                }
                let (w, k) = &jobs[i];
                let result = run(params, w, k.clone());
                tx.send((i, result)).expect("collector alive");
            });
        }
    });
    drop(tx);
    let mut slots: Vec<Option<RunResult>> = (0..jobs.len()).map(|_| None).collect();
    for (i, result) in rx {
        slots[i] = Some(result);
    }
    slots
        .into_iter()
        .map(|r| r.expect("every job filled"))
        .collect()
}

/// The standard cache-mode contenders of Fig 9, in plot order.
pub fn fig9_contenders(scale: Scale) -> Vec<(String, ControllerKind)> {
    let baryon = BaryonConfig::default_cache_mode(scale);
    let mut baryon64 = baryon.clone();
    baryon64.geometry = baryon_core::Geometry::baryon_64b();
    vec![
        ("simple".into(), ControllerKind::Simple),
        ("unison".into(), ControllerKind::Unison),
        ("dice".into(), ControllerKind::Dice),
        ("baryon-64b".into(), ControllerKind::Baryon(baryon64)),
        ("baryon".into(), ControllerKind::Baryon(baryon)),
    ]
}

/// Where CSV outputs go: `baryon-results/` at the workspace root (bench
/// binaries run with the package directory as CWD, and anything under
/// `target/` may be garbage-collected by cargo). Overridable via
/// `BARYON_RESULTS_DIR`.
pub fn results_dir() -> PathBuf {
    let dir = std::env::var("BARYON_RESULTS_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|_| {
            PathBuf::from(env!("CARGO_MANIFEST_DIR"))
                .join("../..")
                .join("baryon-results")
        });
    fs::create_dir_all(&dir).expect("create results dir");
    dir
}

/// Writes a CSV file into the results directory.
pub fn write_csv(id: &str, header: &str, rows: &[String]) {
    let mut body = String::from(header);
    body.push('\n');
    for r in rows {
        body.push_str(r);
        body.push('\n');
    }
    let path = results_dir().join(format!("{id}.csv"));
    fs::write(&path, body).expect("write csv");
    println!("\n[{} rows written to {}]", rows.len(), path.display());
}

/// A simple progress banner.
pub fn banner(id: &str, what: &str) {
    println!("==========================================================");
    println!("  {id}: {what}");
    println!("==========================================================");
}

/// Formats elapsed time for progress lines.
pub fn timed<T>(label: &str, f: impl FnOnce() -> T) -> T {
    let t0 = Instant::now();
    let out = f();
    eprintln!("    [{label}: {:.1}s]", t0.elapsed().as_secs_f32());
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn params_default() {
        let p = Params::from_env();
        assert!(p.insts > 0);
        assert_eq!(p.scale.divisor, 256);
    }

    #[test]
    fn contenders_cover_fig9() {
        let names: Vec<String> = fig9_contenders(Scale::default())
            .into_iter()
            .map(|(n, _)| n)
            .collect();
        assert_eq!(names, ["simple", "unison", "dice", "baryon-64b", "baryon"]);
    }

    #[test]
    fn representative_subset_nonempty() {
        let p = Params {
            insts: 1,
            warmup: 0,
            scale: Scale::default(),
            quick: false,
            seed: 1,
        };
        assert_eq!(p.representative().len(), 6);
        assert!(p.workloads().len() >= 15);
    }

    #[test]
    fn quick_mode_reduces() {
        let p = Params {
            insts: 1,
            warmup: 0,
            scale: Scale::default(),
            quick: true,
            seed: 1,
        };
        assert_eq!(p.workloads().len(), 4);
    }

    #[test]
    fn average_runs_means_counters() {
        let p = Params {
            insts: 2_000,
            warmup: 0,
            scale: Scale { divisor: 2048 },
            quick: true,
            seed: 1,
        };
        let w = baryon_workloads::by_name("505.mcf_r", p.scale).expect("workload");
        let a = run(&p, &w, ControllerKind::Simple);
        let b = {
            let mut p2 = p;
            p2.seed = 2;
            run(&p2, &w, ControllerKind::Simple)
        };
        let avg = average_runs(vec![a.clone(), b.clone()]);
        assert_eq!(avg.total_cycles, (a.total_cycles + b.total_cycles) / 2);
        assert_eq!(
            avg.read_latency.count(),
            a.read_latency.count() + b.read_latency.count()
        );
    }

    #[test]
    fn smoke_run() {
        let p = Params {
            insts: 3_000,
            warmup: 1_000,
            scale: Scale { divisor: 2048 },
            quick: true,
            seed: 1,
        };
        let w = baryon_workloads::by_name("505.mcf_r", p.scale).expect("workload");
        let r = run(&p, &w, ControllerKind::Simple);
        assert!(r.total_cycles > 0);
    }
}

//! Unison Cache [31]: a die-stacked DRAM cache with 2 kB pages, embedded
//! in-DRAM tags with way prediction, and footprint-predicted 64 B
//! sub-blocking — no compression (§IV-A).
//!
//! Fidelity notes (see DESIGN.md): the footprint history table is indexed
//! by a hash of the page address (synthetic traces carry no PCs); way
//! prediction is MRU-based, and a misprediction costs one extra in-DRAM
//! tag+data access, as in the original design.

use crate::ctrl::{Devices, MemoryController, Request, Response, ServeCounter, ServeStats};
use baryon_sim::rng::splitmix64;
use baryon_sim::telemetry::Registry;
use baryon_sim::wire::{Reader, WireError, Writer};
use baryon_sim::Cycle;
use baryon_workloads::{MemoryContents, Scale};
use std::collections::BTreeMap;

const BLOCK: u64 = 2048;
const LINES: usize = 32; // 64 B lines per 2 kB page

#[derive(Debug, Clone, Copy, Default)]
struct Way {
    block: Option<u64>,
    present: u32,
    dirty: u32,
    stamp: u64,
    mru: bool,
}

/// Unison-specific counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct UnisonCounters {
    /// Line hits.
    pub hits: u64,
    /// Sub-block (line) misses within a present page.
    pub sub_misses: u64,
    /// Page misses (new allocations).
    pub page_misses: u64,
    /// Way mispredictions (extra tag probe).
    pub way_mispredicts: u64,
    /// Lines fetched by the footprint predictor.
    pub predicted_lines: u64,
}

/// The Unison Cache baseline.
#[derive(Debug, Clone)]
pub struct UnisonCache {
    sets: usize,
    assoc: usize,
    ways: Vec<Way>,
    /// Footprint history: page hash -> last-residency line mask. Ordered
    /// so that capacity eviction (and checkpointing) is deterministic.
    footprints: BTreeMap<u64, u32>,
    footprint_cap: usize,
    /// EWMA footprint density (lines touched / 32) across evictions — the
    /// generalization a PC-indexed predictor provides across same-code
    /// pages; used when a page has no private history.
    density_ewma: f64,
    devices: Devices,
    serve: ServeCounter,
    counters: UnisonCounters,
    tick: u64,
    data_base: u64,
}

impl UnisonCache {
    /// Builds the cache over the scaled fast memory.
    ///
    /// # Panics
    ///
    /// Panics if the scaled fast memory holds fewer than 4 pages.
    pub fn new(scale: Scale) -> Self {
        let fast = scale.fast_bytes();
        // Tags are embedded in DRAM; only the way-predictor/footprint SRAM
        // is on-chip. Keep the whole fast memory as data+tags.
        let data_blocks = (fast / BLOCK) as usize;
        let assoc = 4;
        let sets = data_blocks / assoc;
        assert!(sets > 0, "fast memory too small");
        // The paper scales Unison's SRAM proportionally to fast memory.
        let footprint_cap = (data_blocks * 4).max(1024);
        UnisonCache {
            sets,
            assoc,
            ways: vec![Way::default(); sets * assoc],
            footprints: BTreeMap::new(),
            footprint_cap,
            density_ewma: 4.0 / LINES as f64,
            devices: Devices::table1(),
            serve: ServeCounter::default(),
            counters: UnisonCounters::default(),
            tick: 0,
            data_base: 0,
        }
    }

    /// Event counters.
    pub fn counters(&self) -> &UnisonCounters {
        &self.counters
    }

    fn set_of(&self, block: u64) -> usize {
        (block % self.sets as u64) as usize
    }

    fn find(&self, block: u64) -> Option<usize> {
        let base = self.set_of(block) * self.assoc;
        (base..base + self.assoc).find(|i| self.ways[*i].block == Some(block))
    }

    fn fast_addr(&self, way: usize, addr: u64) -> u64 {
        self.data_base + way as u64 * BLOCK + addr % BLOCK
    }

    fn touch(&mut self, way: usize) {
        self.tick += 1;
        let set = way / self.assoc * self.assoc;
        for i in set..set + self.assoc {
            self.ways[i].mru = false;
        }
        self.ways[way].stamp = self.tick;
        self.ways[way].mru = true;
    }

    /// Charges the in-DRAM tag+data probe; a way misprediction costs one
    /// extra fast access.
    fn probe(&mut self, now: Cycle, way: Option<usize>, addr: u64) -> Cycle {
        let predicted_hit = way.is_some_and(|w| self.ways[w].mru);
        let target = way.map_or(addr % (self.sets as u64 * BLOCK), |w| {
            self.fast_addr(w, addr)
        });
        let done = self.devices.fast.access(now, target, 64, false);
        if !predicted_hit {
            self.counters.way_mispredicts += 1;
            let done2 = self.devices.fast.access(done, target ^ BLOCK, 64, false);
            return done2 - now;
        }
        done - now
    }

    fn predicted_mask(&self, block: u64, line: usize) -> u32 {
        // History hit: replay the page's last footprint. Otherwise predict
        // from the learned average density (at least the demanded 4-line
        // group), the generalization a PC-indexed table gives new pages.
        let key = splitmix64(block);
        if let Some(mask) = self.footprints.get(&key) {
            return mask | (1 << line);
        }
        let predicted = ((self.density_ewma * LINES as f64).round() as usize).clamp(4, LINES);
        let start = line / 4 * 4;
        let mut mask = 0u32;
        for k in 0..predicted {
            mask |= 1 << ((start + k) % LINES);
        }
        mask | (1 << line)
    }

    fn evict(&mut self, now: Cycle, way: usize) {
        let w = self.ways[way];
        if let Some(old) = w.block {
            // Record the observed footprint for the next residency.
            if self.footprints.len() >= self.footprint_cap {
                // Bounded table: drop the smallest key (deterministic).
                if let Some(k) = self.footprints.keys().next().copied() {
                    self.footprints.remove(&k);
                }
            }
            self.footprints.insert(splitmix64(old), w.present);
            let density = w.present.count_ones() as f64 / LINES as f64;
            self.density_ewma = 0.95 * self.density_ewma + 0.05 * density;
            let dirty_lines = w.dirty.count_ones() as usize;
            if dirty_lines > 0 {
                self.devices
                    .fast
                    .access(now, self.fast_addr(way, 0), dirty_lines * 64, false);
                self.devices
                    .slow
                    .access(now, old * BLOCK, dirty_lines * 64, true);
            }
        }
    }

    /// Serializes mutable state for checkpointing; geometry is rebuilt by
    /// [`UnisonCache::new`].
    pub fn save_state(&self, w: &mut Writer) {
        w.seq(self.ways.len());
        for way in &self.ways {
            w.opt(way.block.is_some());
            if let Some(b) = way.block {
                w.u64(b);
            }
            w.u32(way.present);
            w.u32(way.dirty);
            w.u64(way.stamp);
            w.bool(way.mru);
        }
        w.seq(self.footprints.len());
        for (k, mask) in &self.footprints {
            w.u64(*k);
            w.u32(*mask);
        }
        w.f64(self.density_ewma);
        self.devices.save_state(w);
        self.serve.save_state(w);
        w.u64(self.counters.hits);
        w.u64(self.counters.sub_misses);
        w.u64(self.counters.page_misses);
        w.u64(self.counters.way_mispredicts);
        w.u64(self.counters.predicted_lines);
        w.u64(self.tick);
    }

    /// Overlays checkpointed state onto this freshly constructed cache.
    ///
    /// # Errors
    ///
    /// Returns [`WireError`] on a truncated payload or geometry mismatch.
    pub fn load_state(&mut self, r: &mut Reader<'_>) -> Result<(), WireError> {
        let n = r.seq()?;
        if n != self.ways.len() {
            return Err(WireError::BadLength(n as u64));
        }
        for way in &mut self.ways {
            way.block = if r.opt()? { Some(r.u64()?) } else { None };
            way.present = r.u32()?;
            way.dirty = r.u32()?;
            way.stamp = r.u64()?;
            way.mru = r.bool()?;
        }
        let n = r.seq()?;
        if n > self.footprint_cap {
            return Err(WireError::BadLength(n as u64));
        }
        self.footprints = (0..n)
            .map(|_| Ok((r.u64()?, r.u32()?)))
            .collect::<Result<_, WireError>>()?;
        self.density_ewma = r.f64()?;
        self.devices.load_state(r)?;
        self.serve.load_state(r)?;
        self.counters.hits = r.u64()?;
        self.counters.sub_misses = r.u64()?;
        self.counters.page_misses = r.u64()?;
        self.counters.way_mispredicts = r.u64()?;
        self.counters.predicted_lines = r.u64()?;
        self.tick = r.u64()?;
        Ok(())
    }
}

impl MemoryController for UnisonCache {
    fn read(&mut self, now: Cycle, req: Request, _mem: &mut MemoryContents) -> Response {
        let block = req.addr / BLOCK;
        let line = ((req.addr % BLOCK) / 64) as usize;
        let way = self.find(block);
        match way {
            Some(w) if self.ways[w].present >> line & 1 == 1 => {
                self.counters.hits += 1;
                let lat = self.probe(now, Some(w), req.addr);
                self.touch(w);
                self.serve.record_read(true);
                Response {
                    latency: lat,
                    served_by_fast: true,
                    extra_lines: Vec::new(),
                }
            }
            Some(w) => {
                // Page present, line not fetched: fetch it from slow.
                self.counters.sub_misses += 1;
                let tag_lat = self.probe(now, Some(w), req.addr);
                let done = self
                    .devices
                    .slow
                    .access(now + tag_lat, req.addr & !63, 64, false);
                self.devices
                    .fast
                    .access(done, self.fast_addr(w, req.addr), 64, true);
                self.ways[w].present |= 1 << line;
                self.touch(w);
                self.serve.record_read(false);
                Response {
                    latency: done - now,
                    served_by_fast: false,
                    extra_lines: Vec::new(),
                }
            }
            None => {
                self.counters.page_misses += 1;
                let meta_lat = self.probe(now, None, req.addr);
                let done = self
                    .devices
                    .slow
                    .access(now + meta_lat, req.addr & !63, 64, false);
                // Allocate: evict the LRU way, fetch the predicted footprint.
                let base = self.set_of(block) * self.assoc;
                let victim = (base..base + self.assoc)
                    .min_by_key(|i| match self.ways[*i].block {
                        None => (0, 0),
                        Some(_) => (1, self.ways[*i].stamp),
                    })
                    .expect("assoc > 0");
                self.evict(done, victim);
                let mask = self.predicted_mask(block, line);
                let fetch_lines = mask.count_ones() as usize;
                self.counters.predicted_lines += fetch_lines as u64;
                self.devices
                    .slow
                    .access(done, block * BLOCK, fetch_lines * 64, false);
                self.devices
                    .fast
                    .access(done, self.fast_addr(victim, 0), fetch_lines * 64, true);
                self.ways[victim] = Way {
                    block: Some(block),
                    present: mask,
                    dirty: 0,
                    stamp: 0,
                    mru: false,
                };
                self.touch(victim);
                self.serve.record_read(false);
                Response {
                    latency: done - now,
                    served_by_fast: false,
                    extra_lines: Vec::new(),
                }
            }
        }
    }

    fn writeback(&mut self, now: Cycle, addr: u64, _mem: &mut MemoryContents) -> Cycle {
        self.serve.record_writeback();
        let block = addr / BLOCK;
        let line = ((addr % BLOCK) / 64) as usize;
        if let Some(w) = self.find(block) {
            let done = self
                .devices
                .fast
                .access(now, self.fast_addr(w, addr), 64, true);
            self.ways[w].present |= 1 << line;
            self.ways[w].dirty |= 1 << line;
            self.touch(w);
            done
        } else {
            self.devices.slow.access(now, addr & !63, 64, true)
        }
    }

    fn serve_stats(&self) -> ServeStats {
        self.serve.finish(&self.devices)
    }

    fn export(&self, reg: &mut Registry) {
        reg.set_counter("hits", self.counters.hits);
        reg.set_counter("sub_misses", self.counters.sub_misses);
        reg.set_counter("page_misses", self.counters.page_misses);
        reg.set_counter("way_mispredicts", self.counters.way_mispredicts);
        reg.set_counter("predicted_lines", self.counters.predicted_lines);
        self.devices.export(reg);
    }

    fn reset_stats(&mut self) {
        self.serve.reset();
        self.counters = UnisonCounters::default();
        self.devices.reset_stats();
    }

    fn name(&self) -> &str {
        "unison"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ctrl::test_contents;

    fn ctrl() -> UnisonCache {
        UnisonCache::new(Scale { divisor: 2048 })
    }

    #[test]
    fn page_miss_fetches_footprint_not_whole_page() {
        let mut c = ctrl();
        let mut mem = test_contents();
        c.read(0, Request { addr: 0, core: 0 }, &mut mem);
        let s = c.serve_stats();
        // Default prediction: 4-line group, not the whole 2 kB page.
        assert!(s.slow_bytes <= 64 + 4 * 64, "slow bytes {}", s.slow_bytes);
        assert_eq!(c.counters().page_misses, 1);
    }

    #[test]
    fn line_hit_after_fill() {
        let mut c = ctrl();
        let mut mem = test_contents();
        c.read(0, Request { addr: 0, core: 0 }, &mut mem);
        let r = c.read(10_000, Request { addr: 64, core: 0 }, &mut mem);
        assert!(r.served_by_fast, "line 1 was in the default 4-line group");
        assert_eq!(c.counters().hits, 1);
    }

    #[test]
    fn sub_miss_fetches_single_line() {
        let mut c = ctrl();
        let mut mem = test_contents();
        c.read(0, Request { addr: 0, core: 0 }, &mut mem);
        let r = c.read(
            10_000,
            Request {
                addr: 1024,
                core: 0,
            },
            &mut mem,
        );
        assert!(!r.served_by_fast);
        assert_eq!(c.counters().sub_misses, 1);
        // The line is now present.
        let r2 = c.read(
            20_000,
            Request {
                addr: 1024,
                core: 0,
            },
            &mut mem,
        );
        assert!(r2.served_by_fast);
    }

    #[test]
    fn footprint_learned_from_residency() {
        let mut c = ctrl();
        let mut mem = test_contents();
        let sets = c.sets as u64;
        // Touch lines 0 and 16 of block 0.
        c.read(0, Request { addr: 0, core: 0 }, &mut mem);
        c.read(
            1000,
            Request {
                addr: 1024,
                core: 0,
            },
            &mut mem,
        );
        // Evict block 0 by filling its set.
        for i in 1..=4u64 {
            c.read(
                i * 10_000,
                Request {
                    addr: i * sets * BLOCK,
                    core: 0,
                },
                &mut mem,
            );
        }
        // Refetch block 0: both previously-touched lines come back at once.
        c.read(100_000, Request { addr: 0, core: 0 }, &mut mem);
        let r = c.read(
            200_000,
            Request {
                addr: 1024,
                core: 0,
            },
            &mut mem,
        );
        assert!(r.served_by_fast, "footprint prediction refetched line 16");
    }

    #[test]
    fn dirty_lines_written_back_on_eviction() {
        let mut c = ctrl();
        let mut mem = test_contents();
        c.read(0, Request { addr: 0, core: 0 }, &mut mem);
        c.writeback(10, 0, &mut mem);
        let before = c.serve_stats().slow_bytes;
        let sets = c.sets as u64;
        for i in 1..=4u64 {
            c.read(
                i * 10_000,
                Request {
                    addr: i * sets * BLOCK,
                    core: 0,
                },
                &mut mem,
            );
        }
        let after = c.serve_stats().slow_bytes;
        assert!(after > before, "dirty line written to slow on eviction");
    }
}

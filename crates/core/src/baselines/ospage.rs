//! An OS-based page-migration baseline (§II-A's software design point).
//!
//! The paper's §II-A contrasts hardware-managed hybrid memory against
//! OS-based solutions that "directly change the physical addresses in the
//! page table", citing their limitations: substantial software overheads
//! and coarse 4 kB page granularity. This controller models that design
//! point so the contrast is measurable:
//!
//! * the OS samples access counts per 4 kB page;
//! * every `epoch_accesses` memory accesses it migrates the hottest slow
//!   pages into fast memory (demoting the coldest fast pages), paying a
//!   whole-page swap plus a software cost (page-table update + TLB
//!   shootdown) per migration;
//! * between epochs placement is static — there is no fine-grained
//!   caching at all.
//!
//! This is deliberately *not* one of the paper's evaluated baselines; it is
//! the motivating strawman of §II, included for completeness (and used by
//! the `extra` bench narrative).

use crate::ctrl::{Devices, MemoryController, Request, Response, ServeCounter, ServeStats};
use baryon_sim::telemetry::Registry;
use baryon_sim::wire::{Reader, WireError, Writer};
use baryon_sim::Cycle;
use baryon_workloads::{MemoryContents, Scale};
use std::collections::BTreeMap;

const PAGE: u64 = 4096;

/// Software cost of one page migration: page-table update, TLB shootdown
/// IPIs and the OS bookkeeping, charged to the epoch boundary (~2 µs at
/// 3.2 GHz, a common figure in OS-migration literature).
const MIGRATION_SW_CYCLES: Cycle = 6400;

/// OS-paging specific counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OsPageCounters {
    /// Accesses served by fast-memory pages.
    pub fast_hits: u64,
    /// Accesses served by slow-memory pages.
    pub slow_serves: u64,
    /// Pages migrated (promotions = demotions).
    pub migrations: u64,
    /// Migration epochs executed.
    pub epochs: u64,
}

/// The OS page-migration controller.
#[derive(Debug, Clone)]
pub struct OsPaging {
    /// Pages resident in fast memory (page id -> fast frame). Ordered so
    /// demotion-victim choice (and checkpointing) is deterministic.
    fast_map: BTreeMap<u64, u64>,
    /// Free fast frames.
    free_frames: Vec<u64>,
    /// Per-page access counts this epoch. Ordered so sort ties at the
    /// epoch boundary resolve deterministically.
    heat: BTreeMap<u64, u32>,
    /// Accesses since the last epoch boundary.
    since_epoch: u64,
    /// Epoch length in memory accesses.
    epoch_accesses: u64,
    /// Max pages migrated per epoch.
    migrations_per_epoch: usize,
    devices: Devices,
    serve: ServeCounter,
    counters: OsPageCounters,
    /// Pending software-cost stall charged to the next access's latency.
    pending_sw_cycles: Cycle,
}

impl OsPaging {
    /// Builds the controller over the scaled memories.
    ///
    /// # Panics
    ///
    /// Panics if the scaled fast memory holds no 4 kB pages.
    pub fn new(scale: Scale) -> Self {
        let frames = scale.fast_bytes() / PAGE;
        assert!(frames > 0, "fast memory too small for one page");
        OsPaging {
            fast_map: BTreeMap::new(),
            free_frames: (0..frames).rev().collect(),
            heat: BTreeMap::new(),
            since_epoch: 0,
            epoch_accesses: 50_000,
            migrations_per_epoch: 256,
            devices: Devices::table1(),
            serve: ServeCounter::default(),
            counters: OsPageCounters::default(),
            pending_sw_cycles: 0,
        }
    }

    /// Event counters.
    pub fn counters(&self) -> &OsPageCounters {
        &self.counters
    }

    fn fast_addr(&self, frame: u64, addr: u64) -> u64 {
        frame * PAGE + addr % PAGE
    }

    fn run_epoch(&mut self, now: Cycle) {
        self.counters.epochs += 1;
        // Hottest pages first; ties resolve by page id (BTreeMap order +
        // stable sort), keeping epochs deterministic.
        let mut pages: Vec<(u64, u32)> = std::mem::take(&mut self.heat).into_iter().collect();
        pages.sort_by_key(|(_, h)| std::cmp::Reverse(*h));
        let mut migrated = 0usize;
        for (page, heat) in pages {
            if migrated >= self.migrations_per_epoch {
                break;
            }
            if self.fast_map.contains_key(&page) {
                continue;
            }
            // Find a frame: free, or demote the coldest resident.
            let frame = match self.free_frames.pop() {
                Some(f) => f,
                None => {
                    // Demote the lowest-numbered resident page (heat was
                    // already drained: everything resident counts as cold,
                    // and the OS uses approximate LRU too).
                    let Some((&victim, &frame)) = self.fast_map.iter().next() else {
                        break;
                    };
                    if heat < 2 {
                        break; // not worth displacing anything
                    }
                    self.fast_map.remove(&victim);
                    // Demotion: whole page fast -> slow.
                    self.devices
                        .fast
                        .access(now, frame * PAGE, PAGE as usize, false);
                    self.devices
                        .slow
                        .access(now, victim * PAGE, PAGE as usize, true);
                    frame
                }
            };
            // Promotion: whole page slow -> fast.
            self.devices
                .slow
                .access(now, page * PAGE, PAGE as usize, false);
            self.devices
                .fast
                .access(now, self.fast_addr(frame, 0), PAGE as usize, true);
            self.fast_map.insert(page, frame);
            self.counters.migrations += 1;
            self.pending_sw_cycles += MIGRATION_SW_CYCLES;
            migrated += 1;
        }
    }

    fn account(&mut self, now: Cycle, addr: u64) -> (bool, u64) {
        let page = addr / PAGE;
        *self.heat.entry(page).or_insert(0) += 1;
        self.since_epoch += 1;
        if self.since_epoch >= self.epoch_accesses {
            self.since_epoch = 0;
            self.run_epoch(now);
        }
        match self.fast_map.get(&page) {
            Some(frame) => (true, self.fast_addr(*frame, addr)),
            None => (false, addr & !63),
        }
    }

    /// Serializes mutable state for checkpointing. The epoch parameters
    /// are included because tests (and future tuning knobs) mutate them.
    pub fn save_state(&self, w: &mut Writer) {
        w.seq(self.fast_map.len());
        for (page, frame) in &self.fast_map {
            w.u64(*page);
            w.u64(*frame);
        }
        w.seq(self.free_frames.len());
        for f in &self.free_frames {
            w.u64(*f);
        }
        w.seq(self.heat.len());
        for (page, h) in &self.heat {
            w.u64(*page);
            w.u32(*h);
        }
        w.u64(self.since_epoch);
        w.u64(self.epoch_accesses);
        w.usize(self.migrations_per_epoch);
        self.devices.save_state(w);
        self.serve.save_state(w);
        w.u64(self.counters.fast_hits);
        w.u64(self.counters.slow_serves);
        w.u64(self.counters.migrations);
        w.u64(self.counters.epochs);
        w.u64(self.pending_sw_cycles);
    }

    /// Overlays checkpointed state onto this freshly constructed
    /// controller.
    ///
    /// # Errors
    ///
    /// Returns [`WireError`] on a truncated payload.
    pub fn load_state(&mut self, r: &mut Reader<'_>) -> Result<(), WireError> {
        self.fast_map = (0..r.seq()?)
            .map(|_| Ok((r.u64()?, r.u64()?)))
            .collect::<Result<_, WireError>>()?;
        self.free_frames = (0..r.seq()?).map(|_| r.u64()).collect::<Result<_, _>>()?;
        self.heat = (0..r.seq()?)
            .map(|_| Ok((r.u64()?, r.u32()?)))
            .collect::<Result<_, WireError>>()?;
        self.since_epoch = r.u64()?;
        self.epoch_accesses = r.u64()?;
        self.migrations_per_epoch = r.usize()?;
        self.devices.load_state(r)?;
        self.serve.load_state(r)?;
        self.counters.fast_hits = r.u64()?;
        self.counters.slow_serves = r.u64()?;
        self.counters.migrations = r.u64()?;
        self.counters.epochs = r.u64()?;
        self.pending_sw_cycles = r.u64()?;
        Ok(())
    }
}

impl MemoryController for OsPaging {
    fn read(&mut self, now: Cycle, req: Request, _mem: &mut MemoryContents) -> Response {
        let sw = std::mem::take(&mut self.pending_sw_cycles);
        let (fast, addr) = self.account(now, req.addr);
        let done = if fast {
            self.counters.fast_hits += 1;
            self.devices.fast.access(now + sw, addr, 64, false)
        } else {
            self.counters.slow_serves += 1;
            self.devices.slow.access(now + sw, addr, 64, false)
        };
        self.serve.record_read(fast);
        Response {
            latency: done - now,
            served_by_fast: fast,
            extra_lines: Vec::new(),
        }
    }

    fn writeback(&mut self, now: Cycle, addr: u64, _mem: &mut MemoryContents) -> Cycle {
        self.serve.record_writeback();
        let page = addr / PAGE;
        match self.fast_map.get(&page) {
            Some(frame) => {
                let a = self.fast_addr(*frame, addr);
                self.devices.fast.access(now, a, 64, true)
            }
            None => self.devices.slow.access(now, addr & !63, 64, true),
        }
    }

    fn serve_stats(&self) -> ServeStats {
        self.serve.finish(&self.devices)
    }

    fn export(&self, reg: &mut Registry) {
        reg.set_counter("fast_hits", self.counters.fast_hits);
        reg.set_counter("slow_serves", self.counters.slow_serves);
        reg.set_counter("migrations", self.counters.migrations);
        reg.set_counter("epochs", self.counters.epochs);
        self.devices.export(reg);
    }

    fn reset_stats(&mut self) {
        self.serve.reset();
        self.counters = OsPageCounters::default();
        self.devices.reset_stats();
    }

    fn name(&self) -> &str {
        "os-paging"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ctrl::test_contents;

    fn ctrl() -> OsPaging {
        OsPaging::new(Scale { divisor: 2048 })
    }

    #[test]
    fn cold_accesses_serve_slow() {
        let mut c = ctrl();
        let mut mem = test_contents();
        let r = c.read(0, Request { addr: 0, core: 0 }, &mut mem);
        assert!(!r.served_by_fast, "nothing migrated yet");
        assert_eq!(c.counters().slow_serves, 1);
    }

    #[test]
    fn hot_pages_migrate_at_epoch() {
        let mut c = ctrl();
        c.epoch_accesses = 100;
        let mut mem = test_contents();
        let mut now = 0;
        // Hammer one page past the epoch boundary.
        for i in 0..120u64 {
            now += 1000;
            c.read(
                now,
                Request {
                    addr: (i % 64) * 64,
                    core: 0,
                },
                &mut mem,
            );
        }
        assert!(c.counters().epochs >= 1);
        assert!(c.counters().migrations >= 1);
        let r = c.read(now + 1000, Request { addr: 0, core: 0 }, &mut mem);
        assert!(r.served_by_fast, "hot page now lives in fast memory");
    }

    #[test]
    fn migration_charges_whole_pages() {
        let mut c = ctrl();
        c.epoch_accesses = 10;
        let mut mem = test_contents();
        for i in 0..12u64 {
            c.read(
                i * 1000,
                Request {
                    addr: 64 * (i % 8),
                    core: 0,
                },
                &mut mem,
            );
        }
        let s = c.serve_stats();
        // At least one 4 kB promotion moved through both devices.
        assert!(s.slow_bytes >= PAGE);
        assert!(s.fast_bytes >= PAGE);
    }

    #[test]
    fn demotion_when_full() {
        let mut c = ctrl();
        c.epoch_accesses = 50;
        c.migrations_per_epoch = 1 << 20;
        let frames = c.free_frames.len() as u64;
        let mut mem = test_contents();
        let mut now = 0;
        // Touch more distinct pages than there are frames, repeatedly and
        // hot enough (heat >= 2 per epoch) to justify displacement.
        for round in 0..6u64 {
            for p in 0..frames + 8 {
                for rep in 0..3u64 {
                    now += 500;
                    c.read(
                        now,
                        Request {
                            addr: p * PAGE + round * 64 + rep * 128,
                            core: 0,
                        },
                        &mut mem,
                    );
                }
            }
        }
        assert!(
            c.counters().migrations > frames,
            "demotions must have occurred"
        );
        assert!(c.fast_map.len() as u64 <= frames);
    }

    #[test]
    fn writebacks_follow_placement() {
        let mut c = ctrl();
        let mut mem = test_contents();
        c.writeback(0, 0, &mut mem);
        assert_eq!(
            c.serve_stats().slow_bytes,
            64,
            "cold page writeback goes slow"
        );
    }
}

//! The baseline controllers the paper compares Baryon against (§IV-A):
//!
//! * [`simple::SimpleCache`] — a 2 kB-block, 4-way DRAM cache with neither
//!   compression nor sub-blocking (the normalization baseline of Fig 9),
//! * [`unison::UnisonCache`] — Unison Cache [31]: 2 kB pages, 64 B
//!   footprint-predicted sub-blocking, in-DRAM tags with way prediction,
//! * [`dice::DiceCache`] — DICE [74]: a direct-mapped compressed DRAM cache
//!   with 64 B blocks, spatial (bandwidth-efficient) indexing, and a
//!   perfect way predictor (the paper's optimistic configuration),
//! * [`hybrid2::Hybrid2`] — Hybrid2 [67]: a flat-mode hybrid memory with a
//!   reserved sub-block cache zone (256 B sub-blocks, no compression) plus
//!   full-block migration.
//!
//! Two further design points beyond the paper's evaluated baselines:
//!
//! * [`microsector::MicroSector`] — the micro-sector cache [12], Baryon's
//!   closest sub-blocking prior (§V),
//! * [`ospage::OsPaging`] — the OS page-migration strawman of §II-A.

pub mod dice;
pub mod hybrid2;
pub mod microsector;
pub mod ospage;
pub mod simple;
pub mod unison;

pub use dice::DiceCache;
pub use hybrid2::Hybrid2;
pub use microsector::MicroSector;
pub use ospage::OsPaging;
pub use simple::SimpleCache;
pub use unison::UnisonCache;

use baryon_cache::{CacheConfig, SetAssocCache};
use baryon_mem::MemDevice;
use baryon_sim::wire::{Reader, WireError, Writer};
use baryon_sim::Cycle;

/// A small on-chip metadata cache in front of an off-chip (fast-memory)
/// metadata table, shared by the baselines: hits cost the SRAM latency,
/// misses additionally cost a fast-memory access.
#[derive(Debug, Clone)]
pub(crate) struct MetaModel {
    cache: SetAssocCache,
    hit_latency: Cycle,
    table_base: u64,
}

impl MetaModel {
    /// `bytes` of SRAM caching 64 B metadata lines; the off-chip table
    /// lives at `table_base` in fast memory.
    pub(crate) fn new(bytes: u64, hit_latency: Cycle, table_base: u64) -> Self {
        let sets = (bytes / 64 / 8).max(4).next_power_of_two() as usize;
        MetaModel {
            cache: SetAssocCache::new(CacheConfig::new(sets, 8, 64, hit_latency)),
            hit_latency,
            table_base,
        }
    }

    /// Looks up the metadata line for `key` (e.g. a block index); returns
    /// the metadata latency.
    pub(crate) fn lookup(&mut self, now: Cycle, key: u64, fast: &mut MemDevice) -> Cycle {
        let line = key * 64;
        if self.cache.access(line, false).hit {
            self.hit_latency
        } else {
            let done = fast.access(now + self.hit_latency, self.table_base + line, 64, false);
            done - now
        }
    }

    /// Serializes the metadata-cache contents for checkpointing.
    pub(crate) fn save_state(&self, w: &mut Writer) {
        self.cache.save_state(w);
    }

    /// Restores the metadata-cache contents from a checkpoint.
    pub(crate) fn load_state(&mut self, r: &mut Reader<'_>) -> Result<(), WireError> {
        self.cache.load_state(r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use baryon_mem::DeviceConfig;

    #[test]
    fn meta_model_miss_costs_more() {
        let mut m = MetaModel::new(32 << 10, 3, 0);
        let mut fast = MemDevice::new(DeviceConfig::ddr4_3200());
        let miss = m.lookup(0, 7, &mut fast);
        let hit = m.lookup(1000, 7, &mut fast);
        assert!(miss > hit);
        assert_eq!(hit, 3);
    }
}

//! Micro-sector cache [12] — the closest sub-blocking prior to Baryon.
//!
//! Chaudhuri et al.'s micro-sector cache lets 256 B sectors from *multiple*
//! blocks share one physical DRAM-cache block (unlike Footprint
//! Cache/Unison, which waste the space of absent sub-blocks), "in order to
//! save capacity as well as bandwidth. But it had significant metadata tag
//! overheads" (§V) — every sector slot carries its own full tag.
//!
//! Model: 4-way sets of 2 kB physical blocks, each split into eight 256 B
//! sector slots; any slot can hold any sector of any block mapping to the
//! set (per-slot tags). Sectors are fetched on demand, replaced slot-FIFO
//! within the set, with no compression. The per-slot tag store is charged
//! through the shared on-chip metadata-cache model at 4x the footprint of
//! Baryon's remap metadata.

use super::MetaModel;
use crate::ctrl::{Devices, MemoryController, Request, Response, ServeCounter, ServeStats};
use baryon_sim::telemetry::Registry;
use baryon_sim::wire::{Reader, WireError, Writer};
use baryon_sim::Cycle;
use baryon_workloads::{MemoryContents, Scale};

const BLOCK: u64 = 2048;
const SUB: u64 = 256;
const SUBS_PER_BLOCK: usize = 8;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Sector {
    /// Owning data block.
    block: u64,
    /// Sub-block index within the block.
    sub: u8,
    dirty: bool,
}

/// Micro-sector specific counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MicroSectorCounters {
    /// Sector hits.
    pub hits: u64,
    /// Sector misses (on-demand fetches).
    pub misses: u64,
    /// Dirty sector writebacks to slow memory.
    pub dirty_evictions: u64,
}

/// The micro-sector cache baseline.
#[derive(Debug, Clone)]
pub struct MicroSector {
    sets: usize,
    slots_per_set: usize,
    slots: Vec<Option<Sector>>,
    fifo: Vec<usize>,
    devices: Devices,
    meta: MetaModel,
    serve: ServeCounter,
    counters: MicroSectorCounters,
}

impl MicroSector {
    /// Builds the cache over the scaled fast memory (4-way sets of 2 kB
    /// blocks, eight sector slots each).
    ///
    /// # Panics
    ///
    /// Panics if the scaled fast memory holds fewer than 4 blocks.
    pub fn new(scale: Scale) -> Self {
        let assoc = 4;
        // The per-slot tag store is the design's cost: reserve 4x Baryon's
        // remap-table footprint out of the fast memory.
        let tag_bytes = (scale.fast_bytes() + scale.slow_bytes()) / BLOCK * 8;
        let data_blocks =
            ((scale.fast_bytes() - tag_bytes.min(scale.fast_bytes() / 2)) / BLOCK) as usize;
        let sets = (data_blocks / assoc).max(1);
        MicroSector {
            sets,
            slots_per_set: assoc * SUBS_PER_BLOCK,
            slots: vec![None; sets * assoc * SUBS_PER_BLOCK],
            fifo: vec![0; sets],
            devices: Devices::table1(),
            meta: MetaModel::new(32 << 10, 3, 0),
            serve: ServeCounter::default(),
            counters: MicroSectorCounters::default(),
        }
    }

    /// Event counters.
    pub fn counters(&self) -> &MicroSectorCounters {
        &self.counters
    }

    fn set_of(&self, block: u64) -> usize {
        (block % self.sets as u64) as usize
    }

    fn find(&self, block: u64, sub: u8) -> Option<usize> {
        let base = self.set_of(block) * self.slots_per_set;
        (base..base + self.slots_per_set)
            .find(|i| self.slots[*i].is_some_and(|s| s.block == block && s.sub == sub))
    }

    fn slot_addr(&self, slot: usize, addr: u64) -> u64 {
        slot as u64 * SUB + addr % SUB
    }

    fn fill(&mut self, now: Cycle, block: u64, sub: u8) -> usize {
        let set = self.set_of(block);
        let base = set * self.slots_per_set;
        // Free slot, else slot-FIFO within the set.
        let idx = (base..base + self.slots_per_set)
            .find(|i| self.slots[*i].is_none())
            .unwrap_or_else(|| {
                let victim = base + self.fifo[set];
                self.fifo[set] = (self.fifo[set] + 1) % self.slots_per_set;
                victim
            });
        if let Some(old) = self.slots[idx] {
            if old.dirty {
                self.counters.dirty_evictions += 1;
                self.devices
                    .fast
                    .access(now, self.slot_addr(idx, 0), SUB as usize, false);
                self.devices.slow.access(
                    now,
                    old.block * BLOCK + old.sub as u64 * SUB,
                    SUB as usize,
                    true,
                );
            }
        }
        // Fetch the whole 256 B sector.
        self.devices
            .slow
            .access(now, block * BLOCK + sub as u64 * SUB, SUB as usize, false);
        self.devices
            .fast
            .access(now, self.slot_addr(idx, 0), SUB as usize, true);
        self.slots[idx] = Some(Sector {
            block,
            sub,
            dirty: false,
        });
        idx
    }

    /// Serializes mutable state for checkpointing; geometry is rebuilt by
    /// [`MicroSector::new`].
    pub fn save_state(&self, w: &mut Writer) {
        w.seq(self.slots.len());
        for slot in &self.slots {
            w.opt(slot.is_some());
            if let Some(s) = slot {
                w.u64(s.block);
                w.u8(s.sub);
                w.bool(s.dirty);
            }
        }
        w.seq(self.fifo.len());
        for f in &self.fifo {
            w.usize(*f);
        }
        self.devices.save_state(w);
        self.meta.save_state(w);
        self.serve.save_state(w);
        w.u64(self.counters.hits);
        w.u64(self.counters.misses);
        w.u64(self.counters.dirty_evictions);
    }

    /// Overlays checkpointed state onto this freshly constructed cache.
    ///
    /// # Errors
    ///
    /// Returns [`WireError`] on a truncated payload or geometry mismatch.
    pub fn load_state(&mut self, r: &mut Reader<'_>) -> Result<(), WireError> {
        let n = r.seq()?;
        if n != self.slots.len() {
            return Err(WireError::BadLength(n as u64));
        }
        for slot in &mut self.slots {
            *slot = if r.opt()? {
                Some(Sector {
                    block: r.u64()?,
                    sub: r.u8()?,
                    dirty: r.bool()?,
                })
            } else {
                None
            };
        }
        let n = r.seq()?;
        if n != self.fifo.len() {
            return Err(WireError::BadLength(n as u64));
        }
        for f in &mut self.fifo {
            *f = r.usize()?;
        }
        self.devices.load_state(r)?;
        self.meta.load_state(r)?;
        self.serve.load_state(r)?;
        self.counters.hits = r.u64()?;
        self.counters.misses = r.u64()?;
        self.counters.dirty_evictions = r.u64()?;
        Ok(())
    }
}

impl MemoryController for MicroSector {
    fn read(&mut self, now: Cycle, req: Request, _mem: &mut MemoryContents) -> Response {
        let block = req.addr / BLOCK;
        let sub = ((req.addr % BLOCK) / SUB) as u8;
        let meta_lat = self.meta.lookup(now, block, &mut self.devices.fast);
        if let Some(slot) = self.find(block, sub) {
            self.counters.hits += 1;
            let done =
                self.devices
                    .fast
                    .access(now + meta_lat, self.slot_addr(slot, req.addr), 64, false);
            self.serve.record_read(true);
            return Response {
                latency: done - now,
                served_by_fast: true,
                extra_lines: Vec::new(),
            };
        }
        self.counters.misses += 1;
        let done = self
            .devices
            .slow
            .access(now + meta_lat, req.addr & !63, 64, false);
        self.fill(done, block, sub);
        self.serve.record_read(false);
        Response {
            latency: done - now,
            served_by_fast: false,
            extra_lines: Vec::new(),
        }
    }

    fn writeback(&mut self, now: Cycle, addr: u64, _mem: &mut MemoryContents) -> Cycle {
        self.serve.record_writeback();
        let block = addr / BLOCK;
        let sub = ((addr % BLOCK) / SUB) as u8;
        if let Some(slot) = self.find(block, sub) {
            let done = self
                .devices
                .fast
                .access(now, self.slot_addr(slot, addr), 64, true);
            if let Some(s) = self.slots[slot].as_mut() {
                s.dirty = true;
            }
            done
        } else {
            self.devices.slow.access(now, addr & !63, 64, true)
        }
    }

    fn serve_stats(&self) -> ServeStats {
        self.serve.finish(&self.devices)
    }

    fn export(&self, reg: &mut Registry) {
        reg.set_counter("hits", self.counters.hits);
        reg.set_counter("misses", self.counters.misses);
        reg.set_counter("dirty_evictions", self.counters.dirty_evictions);
        self.devices.export(reg);
    }

    fn reset_stats(&mut self) {
        self.serve.reset();
        self.counters = MicroSectorCounters::default();
        self.devices.reset_stats();
    }

    fn name(&self) -> &str {
        "micro-sector"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ctrl::test_contents;

    fn ctrl() -> MicroSector {
        MicroSector::new(Scale { divisor: 2048 })
    }

    #[test]
    fn sector_miss_then_hit() {
        let mut c = ctrl();
        let mut mem = test_contents();
        assert!(
            !c.read(0, Request { addr: 100, core: 0 }, &mut mem)
                .served_by_fast
        );
        // Same sector (within 256 B) now hits.
        assert!(
            c.read(10_000, Request { addr: 200, core: 0 }, &mut mem)
                .served_by_fast
        );
        // A different sector of the same block still misses (no footprint
        // prefetch in micro-sector).
        assert!(
            !c.read(20_000, Request { addr: 512, core: 0 }, &mut mem)
                .served_by_fast
        );
    }

    #[test]
    fn sectors_of_different_blocks_share_a_set() {
        let mut c = ctrl();
        let mut mem = test_contents();
        let sets = c.sets as u64;
        // Two blocks in the same set: both sectors coexist (the capacity
        // advantage over one-block-per-frame designs).
        c.read(0, Request { addr: 0, core: 0 }, &mut mem);
        c.read(
            1_000,
            Request {
                addr: sets * BLOCK,
                core: 0,
            },
            &mut mem,
        );
        assert!(
            c.read(2_000, Request { addr: 0, core: 0 }, &mut mem)
                .served_by_fast
        );
        assert!(
            c.read(
                3_000,
                Request {
                    addr: sets * BLOCK,
                    core: 0
                },
                &mut mem
            )
            .served_by_fast
        );
    }

    #[test]
    fn slot_fifo_replaces_when_full() {
        let mut c = ctrl();
        let mut mem = test_contents();
        let sets = c.sets as u64;
        let slots = c.slots_per_set as u64;
        // Fill every slot of set 0 with distinct sectors, then one more.
        for i in 0..=slots {
            c.read(
                i * 1_000,
                Request {
                    addr: i * sets * BLOCK,
                    core: 0,
                },
                &mut mem,
            );
        }
        // The first sector was FIFO-evicted.
        assert!(
            !c.read(99_000, Request { addr: 0, core: 0 }, &mut mem)
                .served_by_fast
        );
    }

    #[test]
    fn dirty_sector_written_back_on_eviction() {
        let mut c = ctrl();
        let mut mem = test_contents();
        let sets = c.sets as u64;
        let slots = c.slots_per_set as u64;
        c.read(0, Request { addr: 0, core: 0 }, &mut mem);
        c.writeback(100, 0, &mut mem);
        let before = c.serve_stats().slow_bytes;
        for i in 1..=slots {
            c.read(
                i * 1_000,
                Request {
                    addr: i * sets * BLOCK,
                    core: 0,
                },
                &mut mem,
            );
        }
        assert!(c.counters().dirty_evictions >= 1);
        assert!(c.serve_stats().slow_bytes > before);
    }

    #[test]
    fn fetch_granularity_is_one_sector() {
        let mut c = ctrl();
        let mut mem = test_contents();
        c.read(0, Request { addr: 0, core: 0 }, &mut mem);
        let s = c.serve_stats();
        // 64 B demand + 256 B sector fetch from slow; 256 B install + one
        // 64 B metadata line on the fast side.
        assert_eq!(s.slow_bytes, 64 + 256);
        assert_eq!(s.fast_bytes, 256 + 64);
    }
}

//! The Simple DRAM-cache baseline: 2 kB blocks, 4-way, LRU, whole-block
//! fills and writebacks, no compression, no sub-blocking (§IV-A).

use super::MetaModel;
use crate::ctrl::{Devices, MemoryController, Request, Response, ServeCounter, ServeStats};
use baryon_sim::telemetry::Registry;
use baryon_sim::wire::{Reader, WireError, Writer};
use baryon_sim::Cycle;
use baryon_workloads::{MemoryContents, Scale};

const BLOCK: u64 = 2048;

#[derive(Debug, Clone, Copy, Default)]
struct Way {
    block: Option<u64>,
    dirty: bool,
    stamp: u64,
}

/// Event counters specific to the Simple cache.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SimpleCounters {
    /// Block hits.
    pub hits: u64,
    /// Block misses (whole-block fills).
    pub misses: u64,
    /// Dirty whole-block writebacks to slow memory.
    pub dirty_evictions: u64,
}

/// The Simple 2 kB-block DRAM cache.
///
/// # Examples
///
/// ```
/// use baryon_core::baselines::SimpleCache;
/// use baryon_core::ctrl::{MemoryController, Request};
/// use baryon_workloads::Scale;
///
/// let mut ctrl = SimpleCache::new(Scale { divisor: 2048 });
/// let mut mem = baryon_core::ctrl::test_contents();
/// let r = ctrl.read(0, Request { addr: 0, core: 0 }, &mut mem);
/// assert!(!r.served_by_fast);
/// ```
#[derive(Debug, Clone)]
pub struct SimpleCache {
    sets: usize,
    assoc: usize,
    ways: Vec<Way>,
    devices: Devices,
    meta: MetaModel,
    serve: ServeCounter,
    counters: SimpleCounters,
    tick: u64,
    data_base: u64,
}

impl SimpleCache {
    /// Builds the cache over the scaled fast memory.
    ///
    /// # Panics
    ///
    /// Panics if the scaled fast memory holds fewer than 4 blocks.
    pub fn new(scale: Scale) -> Self {
        let fast = scale.fast_bytes();
        let table_bytes = (fast + scale.slow_bytes()) / BLOCK * 2;
        let data_blocks = ((fast - table_bytes) / BLOCK) as usize;
        let assoc = 4;
        let sets = data_blocks / assoc;
        assert!(sets > 0, "fast memory too small");
        SimpleCache {
            sets,
            assoc,
            ways: vec![Way::default(); sets * assoc],
            devices: Devices::table1(),
            meta: MetaModel::new(32 << 10, 3, 0),
            serve: ServeCounter::default(),
            counters: SimpleCounters::default(),
            tick: 0,
            data_base: table_bytes,
        }
    }

    /// Event counters.
    pub fn counters(&self) -> &SimpleCounters {
        &self.counters
    }

    fn set_of(&self, block: u64) -> usize {
        (block % self.sets as u64) as usize
    }

    fn find(&self, block: u64) -> Option<usize> {
        let base = self.set_of(block) * self.assoc;
        (base..base + self.assoc).find(|i| self.ways[*i].block == Some(block))
    }

    fn fast_addr(&self, way: usize, addr: u64) -> u64 {
        self.data_base + way as u64 * BLOCK + addr % BLOCK
    }

    fn fill(&mut self, now: Cycle, block: u64) -> usize {
        let base = self.set_of(block) * self.assoc;
        let victim = (base..base + self.assoc)
            .min_by_key(|i| match self.ways[*i].block {
                None => (0, 0),
                Some(_) => (1, self.ways[*i].stamp),
            })
            .expect("assoc > 0");
        if let Some(old) = self.ways[victim].block {
            if self.ways[victim].dirty {
                self.counters.dirty_evictions += 1;
                self.devices
                    .fast
                    .access(now, self.fast_addr(victim, 0), BLOCK as usize, false);
                self.devices
                    .slow
                    .access(now, old * BLOCK, BLOCK as usize, true);
            }
        }
        // Whole-block fill from slow memory.
        self.devices
            .slow
            .access(now, block * BLOCK, BLOCK as usize, false);
        self.devices
            .fast
            .access(now, self.fast_addr(victim, 0), BLOCK as usize, true);
        self.tick += 1;
        self.ways[victim] = Way {
            block: Some(block),
            dirty: false,
            stamp: self.tick,
        };
        victim
    }

    /// Serializes mutable state for checkpointing; geometry is rebuilt by
    /// [`SimpleCache::new`].
    pub fn save_state(&self, w: &mut Writer) {
        w.seq(self.ways.len());
        for way in &self.ways {
            w.opt(way.block.is_some());
            if let Some(b) = way.block {
                w.u64(b);
            }
            w.bool(way.dirty);
            w.u64(way.stamp);
        }
        self.devices.save_state(w);
        self.meta.save_state(w);
        self.serve.save_state(w);
        w.u64(self.counters.hits);
        w.u64(self.counters.misses);
        w.u64(self.counters.dirty_evictions);
        w.u64(self.tick);
    }

    /// Overlays checkpointed state onto this freshly constructed cache.
    ///
    /// # Errors
    ///
    /// Returns [`WireError`] on a truncated payload or geometry mismatch.
    pub fn load_state(&mut self, r: &mut Reader<'_>) -> Result<(), WireError> {
        let n = r.seq()?;
        if n != self.ways.len() {
            return Err(WireError::BadLength(n as u64));
        }
        for way in &mut self.ways {
            way.block = if r.opt()? { Some(r.u64()?) } else { None };
            way.dirty = r.bool()?;
            way.stamp = r.u64()?;
        }
        self.devices.load_state(r)?;
        self.meta.load_state(r)?;
        self.serve.load_state(r)?;
        self.counters.hits = r.u64()?;
        self.counters.misses = r.u64()?;
        self.counters.dirty_evictions = r.u64()?;
        self.tick = r.u64()?;
        Ok(())
    }
}

impl MemoryController for SimpleCache {
    fn read(&mut self, now: Cycle, req: Request, _mem: &mut MemoryContents) -> Response {
        let block = req.addr / BLOCK;
        let meta_lat = self.meta.lookup(now, block, &mut self.devices.fast);
        if let Some(way) = self.find(block) {
            self.counters.hits += 1;
            self.tick += 1;
            self.ways[way].stamp = self.tick;
            let done =
                self.devices
                    .fast
                    .access(now + meta_lat, self.fast_addr(way, req.addr), 64, false);
            self.serve.record_read(true);
            return Response {
                latency: done - now,
                served_by_fast: true,
                extra_lines: Vec::new(),
            };
        }
        self.counters.misses += 1;
        // Demanded line first, block fill in the background.
        let done = self
            .devices
            .slow
            .access(now + meta_lat, req.addr & !63, 64, false);
        self.fill(done, block);
        self.serve.record_read(false);
        Response {
            latency: done - now,
            served_by_fast: false,
            extra_lines: Vec::new(),
        }
    }

    fn writeback(&mut self, now: Cycle, addr: u64, _mem: &mut MemoryContents) -> Cycle {
        self.serve.record_writeback();
        let block = addr / BLOCK;
        if let Some(way) = self.find(block) {
            self.tick += 1;
            self.ways[way].stamp = self.tick;
            self.ways[way].dirty = true;
            self.devices
                .fast
                .access(now, self.fast_addr(way, addr), 64, true)
        } else {
            self.devices.slow.access(now, addr & !63, 64, true)
        }
    }

    fn serve_stats(&self) -> ServeStats {
        self.serve.finish(&self.devices)
    }

    fn export(&self, reg: &mut Registry) {
        reg.set_counter("hits", self.counters.hits);
        reg.set_counter("misses", self.counters.misses);
        reg.set_counter("dirty_evictions", self.counters.dirty_evictions);
        self.devices.export(reg);
    }

    fn reset_stats(&mut self) {
        self.serve.reset();
        self.counters = SimpleCounters::default();
        self.devices.reset_stats();
    }

    fn name(&self) -> &str {
        "simple"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ctrl::test_contents;

    fn ctrl() -> SimpleCache {
        SimpleCache::new(Scale { divisor: 2048 })
    }

    #[test]
    fn miss_then_hit() {
        let mut c = ctrl();
        let mut mem = test_contents();
        let r1 = c.read(0, Request { addr: 100, core: 0 }, &mut mem);
        assert!(!r1.served_by_fast);
        let r2 = c.read(100_000, Request { addr: 200, core: 0 }, &mut mem);
        assert!(r2.served_by_fast, "same block now cached");
        assert_eq!(c.counters().hits, 1);
        assert_eq!(c.counters().misses, 1);
    }

    #[test]
    fn whole_block_fill_traffic() {
        let mut c = ctrl();
        let mut mem = test_contents();
        c.read(0, Request { addr: 0, core: 0 }, &mut mem);
        let s = c.serve_stats();
        // 64 B demand + 2048 B block fill from slow.
        assert_eq!(s.slow_bytes, 64 + 2048);
        // Block installed into fast, plus one 64 B metadata-table read.
        assert_eq!(s.fast_bytes, 2048 + 64);
    }

    #[test]
    fn dirty_eviction_writes_block_back() {
        let mut c = ctrl();
        let mut mem = test_contents();
        c.read(0, Request { addr: 0, core: 0 }, &mut mem);
        c.writeback(10, 0, &mut mem);
        // Conflict-fill the same set until block 0 is evicted.
        let sets = c.sets as u64;
        for i in 1..=4u64 {
            c.read(
                i * 1000,
                Request {
                    addr: i * sets * BLOCK,
                    core: 0,
                },
                &mut mem,
            );
        }
        assert_eq!(c.counters().dirty_evictions, 1);
    }

    #[test]
    fn lru_within_set() {
        let mut c = ctrl();
        let mut mem = test_contents();
        let sets = c.sets as u64;
        // Fill a set with 4 blocks, touch the first, add a 5th.
        for i in 0..4u64 {
            c.read(
                i,
                Request {
                    addr: i * sets * BLOCK,
                    core: 0,
                },
                &mut mem,
            );
        }
        c.read(10, Request { addr: 0, core: 0 }, &mut mem); // touch block 0
        c.read(
            20,
            Request {
                addr: 4 * sets * BLOCK,
                core: 0,
            },
            &mut mem,
        );
        // Block 0 must still be present (block sets*BLOCK was LRU).
        let r = c.read(30, Request { addr: 0, core: 0 }, &mut mem);
        assert!(r.served_by_fast);
    }

    #[test]
    fn writeback_to_uncached_goes_slow() {
        let mut c = ctrl();
        let mut mem = test_contents();
        c.writeback(0, 4096, &mut mem);
        assert_eq!(c.serve_stats().slow_bytes, 64);
        assert_eq!(c.serve_stats().fast_bytes, 0);
    }
}

//! DICE [74]: a compressed DRAM cache with 64 B blocks (§IV-A).
//!
//! Modelled at the paper's configuration: direct-mapped with a *perfect*
//! way predictor (no tag-probe cost) and bandwidth-efficient *spatial
//! indexing* — the four lines of a 256 B group share one bucket, so one
//! 64 B fast-memory access can return several compressed neighbours, and a
//! fill packs as many group lines as compress into the bucket. Dirty lines
//! write back individually. Decompression costs the same 5 cycles as
//! Baryon (§IV-A).

use crate::ctrl::{Devices, MemoryController, Request, Response, ServeCounter, ServeStats};
use baryon_compress::best_compressed_size;
use baryon_sim::telemetry::Registry;
use baryon_sim::wire::{Reader, WireError, Writer};
use baryon_sim::Cycle;
use baryon_workloads::{MemoryContents, Scale};

const GROUP_LINES: usize = 4;

#[derive(Debug, Clone, Copy, Default)]
struct Bucket {
    group: Option<u64>,
    /// Which of the group's four lines are packed here.
    packed: u8,
    dirty: u8,
}

/// DICE-specific counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DiceCounters {
    /// Line hits.
    pub hits: u64,
    /// Misses (bucket refills).
    pub misses: u64,
    /// Lines delivered per hit beyond the demanded one (compression
    /// bandwidth benefit).
    pub free_neighbours: u64,
    /// Decompressions on the critical path.
    pub decompressions: u64,
}

/// The DICE compressed DRAM cache baseline.
#[derive(Debug, Clone)]
pub struct DiceCache {
    buckets: Vec<Bucket>,
    devices: Devices,
    serve: ServeCounter,
    counters: DiceCounters,
    decompress_cycles: Cycle,
}

impl DiceCache {
    /// Builds the cache over the scaled fast memory.
    ///
    /// # Panics
    ///
    /// Panics if the scaled fast memory holds no buckets.
    pub fn new(scale: Scale) -> Self {
        let n = (scale.fast_bytes() / 64) as usize;
        assert!(n > 0, "fast memory too small");
        DiceCache {
            buckets: vec![Bucket::default(); n],
            devices: Devices::table1(),
            serve: ServeCounter::default(),
            counters: DiceCounters::default(),
            decompress_cycles: 5,
        }
    }

    /// Event counters.
    pub fn counters(&self) -> &DiceCounters {
        &self.counters
    }

    fn bucket_of(&self, group: u64) -> usize {
        (group % self.buckets.len() as u64) as usize
    }

    /// Greedily packs the group's lines around `line` into ≤ 64 B.
    fn pack(&mut self, group: u64, line: usize, mem: &MemoryContents) -> u8 {
        let sizes: Vec<usize> = (0..GROUP_LINES)
            .map(|l| best_compressed_size(&mem.line(group * 256 + l as u64 * 64)))
            .collect();
        let mut total = sizes[line];
        let mut mask = 1u8 << line;
        // Spatial indexing packs forward neighbours first (the direction a
        // sequential stream will touch next), then wraps to earlier lines.
        for l in (line + 1..GROUP_LINES).chain(0..line) {
            if total + sizes[l] <= 64 {
                total += sizes[l];
                mask |= 1 << l;
            }
        }
        mask
    }

    /// Serializes mutable state for checkpointing; geometry is rebuilt by
    /// [`DiceCache::new`].
    pub fn save_state(&self, w: &mut Writer) {
        w.seq(self.buckets.len());
        for b in &self.buckets {
            w.opt(b.group.is_some());
            if let Some(g) = b.group {
                w.u64(g);
            }
            w.u8(b.packed);
            w.u8(b.dirty);
        }
        self.devices.save_state(w);
        self.serve.save_state(w);
        w.u64(self.counters.hits);
        w.u64(self.counters.misses);
        w.u64(self.counters.free_neighbours);
        w.u64(self.counters.decompressions);
    }

    /// Overlays checkpointed state onto this freshly constructed cache.
    ///
    /// # Errors
    ///
    /// Returns [`WireError`] on a truncated payload or geometry mismatch.
    pub fn load_state(&mut self, r: &mut Reader<'_>) -> Result<(), WireError> {
        let n = r.seq()?;
        if n != self.buckets.len() {
            return Err(WireError::BadLength(n as u64));
        }
        for b in &mut self.buckets {
            b.group = if r.opt()? { Some(r.u64()?) } else { None };
            b.packed = r.u8()?;
            b.dirty = r.u8()?;
        }
        self.devices.load_state(r)?;
        self.serve.load_state(r)?;
        self.counters.hits = r.u64()?;
        self.counters.misses = r.u64()?;
        self.counters.free_neighbours = r.u64()?;
        self.counters.decompressions = r.u64()?;
        Ok(())
    }
}

impl MemoryController for DiceCache {
    fn read(&mut self, now: Cycle, req: Request, mem: &mut MemoryContents) -> Response {
        let line_addr = req.addr & !63;
        let group = line_addr / 256;
        let line = ((line_addr % 256) / 64) as usize;
        let idx = self.bucket_of(group);
        let fast_addr = idx as u64 * 64;

        if self.buckets[idx].group == Some(group) && self.buckets[idx].packed >> line & 1 == 1 {
            self.counters.hits += 1;
            let done = self.devices.fast.access(now, fast_addr, 64, false);
            let packed = self.buckets[idx].packed;
            let mut latency = done - now;
            let extras: Vec<u64> = if packed.count_ones() > 1 {
                self.counters.decompressions += 1;
                latency += self.decompress_cycles;
                (0..GROUP_LINES)
                    .filter(|l| *l != line && packed >> *l & 1 == 1)
                    .map(|l| group * 256 + l as u64 * 64)
                    .collect()
            } else {
                Vec::new()
            };
            self.counters.free_neighbours += extras.len() as u64;
            self.serve.record_read(true);
            self.serve.record_prefetch_lines(extras.len());
            return Response {
                latency,
                served_by_fast: true,
                extra_lines: extras,
            };
        }

        // Miss: DICE's miss predictor launches the slow access in parallel
        // with the in-DRAM tag probe (Alloy-style), so only the slow
        // latency is on the critical path; the probe still costs bandwidth.
        self.counters.misses += 1;
        self.devices.fast.access(now, fast_addr, 64, false);
        let done = self.devices.slow.access(now, line_addr, 64, false);
        // Write back dirty lines of the displaced content.
        let old = self.buckets[idx];
        if let Some(og) = old.group {
            let dirty = old.dirty.count_ones() as usize;
            if dirty > 0 {
                self.devices.fast.access(done, fast_addr, 64, false);
                self.devices.slow.access(done, og * 256, dirty * 64, true);
            }
        }
        let mask = self.pack(group, line, mem);
        let fetch = mask.count_ones() as usize;
        if fetch > 1 {
            // Fetch the co-packed neighbours.
            self.devices
                .slow
                .access(done, group * 256, (fetch - 1) * 64, false);
        }
        self.devices.fast.access(done, fast_addr, 64, true);
        self.buckets[idx] = Bucket {
            group: Some(group),
            packed: mask,
            dirty: 0,
        };
        self.serve.record_read(false);
        Response {
            latency: done - now,
            served_by_fast: false,
            extra_lines: Vec::new(),
        }
    }

    fn writeback(&mut self, now: Cycle, addr: u64, mem: &mut MemoryContents) -> Cycle {
        self.serve.record_writeback();
        let line_addr = addr & !63;
        let group = line_addr / 256;
        let line = ((line_addr % 256) / 64) as usize;
        let idx = self.bucket_of(group);
        if self.buckets[idx].group == Some(group) && self.buckets[idx].packed >> line & 1 == 1 {
            // Re-check packing: the updated line may not fit anymore.
            let mask = self.pack(group, line, mem);
            let b = &mut self.buckets[idx];
            let evicted = b.packed & !mask;
            if evicted != 0 {
                // Lines squeezed out by growth: write dirty ones to slow.
                let dirty_evicted = (evicted & b.dirty).count_ones() as usize;
                b.packed = mask & b.packed | 1 << line;
                b.dirty &= b.packed;
                if dirty_evicted > 0 {
                    self.devices
                        .slow
                        .access(now, group * 256, dirty_evicted * 64, true);
                }
            }
            self.buckets[idx].dirty |= 1 << line;
            self.devices.fast.access(now, idx as u64 * 64, 64, true)
        } else {
            self.devices.slow.access(now, line_addr, 64, true)
        }
    }

    fn serve_stats(&self) -> ServeStats {
        self.serve.finish(&self.devices)
    }

    fn export(&self, reg: &mut Registry) {
        reg.set_counter("hits", self.counters.hits);
        reg.set_counter("misses", self.counters.misses);
        reg.set_counter("free_neighbours", self.counters.free_neighbours);
        reg.set_counter("decompressions", self.counters.decompressions);
        self.devices.export(reg);
    }

    fn reset_stats(&mut self) {
        self.serve.reset();
        self.counters = DiceCounters::default();
        self.devices.reset_stats();
    }

    fn name(&self) -> &str {
        "dice"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use baryon_workloads::{ProfileMix, ValueProfile};

    fn ctrl() -> DiceCache {
        DiceCache::new(Scale { divisor: 2048 })
    }

    fn compressible_mem() -> MemoryContents {
        MemoryContents::new(ProfileMix::pure(ValueProfile::NarrowInt), 7)
    }

    fn random_mem() -> MemoryContents {
        MemoryContents::new(ProfileMix::pure(ValueProfile::Random), 7)
    }

    #[test]
    fn compressible_group_packs_multiple_lines() {
        let mut c = ctrl();
        let mut mem = compressible_mem();
        c.read(0, Request { addr: 0, core: 0 }, &mut mem);
        // The neighbour lines were packed: hitting them is fast.
        let r = c.read(10_000, Request { addr: 64, core: 0 }, &mut mem);
        assert!(r.served_by_fast);
        assert!(
            !r.extra_lines.is_empty(),
            "co-packed lines decompress for free"
        );
    }

    #[test]
    fn incompressible_group_holds_one_line() {
        let mut c = ctrl();
        let mut mem = random_mem();
        c.read(0, Request { addr: 0, core: 0 }, &mut mem);
        let r = c.read(10_000, Request { addr: 64, core: 0 }, &mut mem);
        assert!(!r.served_by_fast, "random data cannot pack neighbours");
    }

    #[test]
    fn hit_after_fill() {
        let mut c = ctrl();
        let mut mem = random_mem();
        assert!(
            !c.read(0, Request { addr: 0, core: 0 }, &mut mem)
                .served_by_fast
        );
        assert!(
            c.read(1000, Request { addr: 0, core: 0 }, &mut mem)
                .served_by_fast
        );
        assert_eq!(c.counters().hits, 1);
    }

    #[test]
    fn conflicting_groups_evict() {
        let mut c = ctrl();
        let mut mem = random_mem();
        let n = c.buckets.len() as u64;
        c.read(0, Request { addr: 0, core: 0 }, &mut mem);
        c.read(
            1000,
            Request {
                addr: n * 256,
                core: 0,
            },
            &mut mem,
        ); // same bucket
        let r = c.read(2000, Request { addr: 0, core: 0 }, &mut mem);
        assert!(!r.served_by_fast, "direct-mapped conflict");
    }

    #[test]
    fn dirty_writeback_on_conflict() {
        let mut c = ctrl();
        let mut mem = random_mem();
        let n = c.buckets.len() as u64;
        c.read(0, Request { addr: 0, core: 0 }, &mut mem);
        c.writeback(10, 0, &mut mem);
        let before = c.serve_stats().slow_bytes;
        c.read(
            1000,
            Request {
                addr: n * 256,
                core: 0,
            },
            &mut mem,
        );
        assert!(c.serve_stats().slow_bytes > before + 64);
    }

    #[test]
    fn uncached_writeback_goes_slow() {
        let mut c = ctrl();
        let mut mem = random_mem();
        c.writeback(0, 512, &mut mem);
        assert_eq!(c.serve_stats().fast_bytes, 0);
        assert_eq!(c.serve_stats().slow_bytes, 64);
    }
}

//! Hybrid2 [67]: the flat-mode state-of-the-art baseline (§IV-A).
//!
//! Hybrid2 provisions a fixed slice of the fast memory as a sub-blocked
//! cache zone (256 B sub-blocks, one data block per cache block, no
//! compression) and uses the rest as OS-visible flat memory; hot blocks are
//! *migrated* (full-block swap) from slow to fast. The migration trigger is
//! an access-count threshold, approximating Hybrid2's write-cost-driven
//! policy (the `k = 0` point of Baryon's Eq. 1); see DESIGN.md.

use super::MetaModel;
use crate::ctrl::{Devices, MemoryController, Request, Response, ServeCounter, ServeStats};
use baryon_sim::telemetry::Registry;
use baryon_sim::wire::{Reader, WireError, Writer};
use baryon_sim::Cycle;
use baryon_workloads::{MemoryContents, Scale};
use std::collections::HashMap;

const BLOCK: u64 = 2048;
const SUB: u64 = 256;

/// Accesses to a slow block before it is migrated into the flat area.
const MIGRATE_THRESHOLD: u32 = 32;

#[derive(Debug, Clone, Copy, Default)]
struct CacheBlock {
    block: Option<u64>,
    present: u8,
    dirty: u8,
}

/// Hybrid2-specific counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Hybrid2Counters {
    /// Served from the fast flat area (original or migrated).
    pub flat_hits: u64,
    /// Served from the sub-block cache zone.
    pub cache_hits: u64,
    /// Sub-block fetches into the cache zone.
    pub sub_fetches: u64,
    /// Full-block migrations (swaps).
    pub migrations: u64,
    /// Served from slow memory.
    pub slow_serves: u64,
}

/// The Hybrid2 flat-mode baseline.
#[derive(Debug, Clone)]
pub struct Hybrid2 {
    /// OS blocks resident in the fast flat area initially.
    flat_blocks: u64,
    /// Sub-block cache zone (fully associative, FIFO).
    cache: Vec<CacheBlock>,
    cache_fifo: usize,
    /// block -> cache zone index.
    cache_map: HashMap<u64, usize>,
    /// Migrated slow block -> flat slot (the displaced original moved to
    /// the migrated block's slow home).
    migrated: HashMap<u64, u64>,
    /// Displaced original block -> the slow home it now occupies.
    displaced: HashMap<u64, u64>,
    /// Access counters for the migration trigger.
    heat: HashMap<u64, u32>,
    /// Round-robin cursor over flat slots for migration victims.
    flat_cursor: u64,
    devices: Devices,
    meta: MetaModel,
    serve: ServeCounter,
    counters: Hybrid2Counters,
    slow_base_blocks: u64,
}

impl Hybrid2 {
    /// Builds the controller over the scaled memories: 1/8 of fast memory
    /// is the cache zone, the rest is OS-visible flat space.
    ///
    /// # Panics
    ///
    /// Panics if the scaled fast memory holds fewer than 16 blocks.
    pub fn new(scale: Scale) -> Self {
        let fast_blocks = scale.fast_bytes() / BLOCK;
        assert!(fast_blocks >= 16, "fast memory too small");
        let cache_blocks = (fast_blocks / 8).max(1) as usize;
        let flat_blocks = fast_blocks - cache_blocks as u64;
        Hybrid2 {
            flat_blocks,
            cache: vec![CacheBlock::default(); cache_blocks],
            cache_fifo: 0,
            cache_map: HashMap::new(),
            migrated: HashMap::new(),
            displaced: HashMap::new(),
            heat: HashMap::new(),
            flat_cursor: 0,
            devices: Devices::table1(),
            meta: MetaModel::new(32 << 10, 3, 0),
            serve: ServeCounter::default(),
            counters: Hybrid2Counters::default(),
            slow_base_blocks: flat_blocks,
        }
    }

    /// Event counters.
    pub fn counters(&self) -> &Hybrid2Counters {
        &self.counters
    }

    /// The number of OS blocks initially resident in fast memory.
    pub fn flat_blocks(&self) -> u64 {
        self.flat_blocks
    }

    fn slow_addr(&self, block: u64, offset: u64) -> u64 {
        (block.saturating_sub(self.slow_base_blocks)) * BLOCK + offset
    }

    fn cache_zone_addr(&self, idx: usize, offset: u64) -> u64 {
        self.flat_blocks * BLOCK + idx as u64 * BLOCK + offset
    }

    /// Is `block` currently served by the fast flat area?
    fn in_flat(&self, block: u64) -> bool {
        if self.migrated.contains_key(&block) {
            return true;
        }
        block < self.flat_blocks && !self.displaced.contains_key(&block)
    }

    fn flat_addr(&self, block: u64, offset: u64) -> u64 {
        match self.migrated.get(&block) {
            Some(slot) => slot * BLOCK + offset,
            None => block * BLOCK + offset,
        }
    }

    /// Migrates hot slow `block` into the flat area by swapping it with a
    /// FIFO-chosen original.
    fn migrate(&mut self, now: Cycle, block: u64) {
        // Pick the next flat slot whose original still lives there: a slot
        // hosting a migrated block has its identity original displaced, so
        // `displaced` doubles as the "slot taken" set.
        let mut slot = None;
        for k in 0..self.flat_blocks {
            let cand = (self.flat_cursor + k) % self.flat_blocks;
            if !self.displaced.contains_key(&cand) {
                slot = Some(cand);
                self.flat_cursor = (cand + 1) % self.flat_blocks;
                break;
            }
        }
        let Some(slot) = slot else {
            return; // everything already migrated/displaced
        };
        self.counters.migrations += 1;
        // Full-block swap: both directions.
        let sa = self.slow_addr(block, 0);
        self.devices.slow.access(now, sa, BLOCK as usize, false);
        self.devices
            .fast
            .access(now, slot * BLOCK, BLOCK as usize, false);
        self.devices
            .fast
            .access(now, slot * BLOCK, BLOCK as usize, true);
        self.devices.slow.access(now, sa, BLOCK as usize, true);
        self.migrated.insert(block, slot);
        self.displaced.insert(slot, block);
        // Drop any cached sub-blocks of the migrated block.
        if let Some(idx) = self.cache_map.remove(&block) {
            self.cache[idx] = CacheBlock::default();
        }
        self.heat.remove(&block);
    }

    /// Fetches `sub` of slow `block` into the cache zone.
    fn cache_fill(&mut self, now: Cycle, block: u64, sub: usize) {
        self.counters.sub_fetches += 1;
        let idx = match self.cache_map.get(&block) {
            Some(i) => *i,
            None => {
                let victim = self.cache_fifo;
                self.cache_fifo = (self.cache_fifo + 1) % self.cache.len();
                if let Some(old) = self.cache[victim].block {
                    self.cache_map.remove(&old);
                    let dirty = self.cache[victim].dirty.count_ones() as usize;
                    if dirty > 0 {
                        self.devices.fast.access(
                            now,
                            self.cache_zone_addr(victim, 0),
                            dirty * (SUB as usize),
                            false,
                        );
                        self.devices.slow.access(
                            now,
                            self.slow_addr(old, 0),
                            dirty * (SUB as usize),
                            true,
                        );
                    }
                }
                self.cache[victim] = CacheBlock {
                    block: Some(block),
                    present: 0,
                    dirty: 0,
                };
                self.cache_map.insert(block, victim);
                victim
            }
        };
        self.devices.slow.access(
            now,
            self.slow_addr(block, sub as u64 * SUB),
            SUB as usize,
            false,
        );
        self.devices.fast.access(
            now,
            self.cache_zone_addr(idx, sub as u64 * SUB),
            SUB as usize,
            true,
        );
        self.cache[idx].present |= 1 << sub;
    }

    /// Serializes mutable state for checkpointing; geometry is rebuilt by
    /// [`Hybrid2::new`]. The lookup maps are emitted in sorted key order
    /// so identical states produce identical bytes (the maps are never
    /// iterated during simulation, so a `HashMap` is otherwise fine).
    pub fn save_state(&self, w: &mut Writer) {
        w.seq(self.cache.len());
        for b in &self.cache {
            w.opt(b.block.is_some());
            if let Some(blk) = b.block {
                w.u64(blk);
            }
            w.u8(b.present);
            w.u8(b.dirty);
        }
        w.usize(self.cache_fifo);
        save_sorted_map(w, &self.cache_map, |w, v| w.usize(*v));
        save_sorted_map(w, &self.migrated, |w, v| w.u64(*v));
        save_sorted_map(w, &self.displaced, |w, v| w.u64(*v));
        save_sorted_map(w, &self.heat, |w, v| w.u32(*v));
        w.u64(self.flat_cursor);
        self.devices.save_state(w);
        self.meta.save_state(w);
        self.serve.save_state(w);
        w.u64(self.counters.flat_hits);
        w.u64(self.counters.cache_hits);
        w.u64(self.counters.sub_fetches);
        w.u64(self.counters.migrations);
        w.u64(self.counters.slow_serves);
    }

    /// Overlays checkpointed state onto this freshly constructed
    /// controller.
    ///
    /// # Errors
    ///
    /// Returns [`WireError`] on a truncated payload or geometry mismatch.
    pub fn load_state(&mut self, r: &mut Reader<'_>) -> Result<(), WireError> {
        let n = r.seq()?;
        if n != self.cache.len() {
            return Err(WireError::BadLength(n as u64));
        }
        for b in &mut self.cache {
            b.block = if r.opt()? { Some(r.u64()?) } else { None };
            b.present = r.u8()?;
            b.dirty = r.u8()?;
        }
        self.cache_fifo = r.usize()?;
        self.cache_map = load_map(r, |r| r.usize())?;
        self.migrated = load_map(r, |r| r.u64())?;
        self.displaced = load_map(r, |r| r.u64())?;
        self.heat = load_map(r, |r| r.u32())?;
        self.flat_cursor = r.u64()?;
        self.devices.load_state(r)?;
        self.meta.load_state(r)?;
        self.serve.load_state(r)?;
        self.counters.flat_hits = r.u64()?;
        self.counters.cache_hits = r.u64()?;
        self.counters.sub_fetches = r.u64()?;
        self.counters.migrations = r.u64()?;
        self.counters.slow_serves = r.u64()?;
        Ok(())
    }
}

fn save_sorted_map<V>(w: &mut Writer, map: &HashMap<u64, V>, save: impl Fn(&mut Writer, &V)) {
    let mut keys: Vec<&u64> = map.keys().collect();
    keys.sort_unstable();
    w.seq(map.len());
    for k in keys {
        w.u64(*k);
        save(w, &map[k]);
    }
}

fn load_map<V>(
    r: &mut Reader<'_>,
    load: impl Fn(&mut Reader<'_>) -> Result<V, WireError>,
) -> Result<HashMap<u64, V>, WireError> {
    let n = r.seq()?;
    let mut map = HashMap::with_capacity(n);
    for _ in 0..n {
        let k = r.u64()?;
        map.insert(k, load(r)?);
    }
    Ok(map)
}

impl MemoryController for Hybrid2 {
    fn read(&mut self, now: Cycle, req: Request, _mem: &mut MemoryContents) -> Response {
        let block = req.addr / BLOCK;
        let sub = ((req.addr % BLOCK) / SUB) as usize;
        let meta_lat = self.meta.lookup(now, block, &mut self.devices.fast);

        if self.in_flat(block) {
            self.counters.flat_hits += 1;
            let addr = self.flat_addr(block, req.addr % BLOCK);
            let done = self.devices.fast.access(now + meta_lat, addr, 64, false);
            self.serve.record_read(true);
            return Response {
                latency: done - now,
                served_by_fast: true,
                extra_lines: Vec::new(),
            };
        }

        // Displaced originals live at the migrated partner's slow home.
        if let Some(partner) = self.displaced.get(&block).copied() {
            self.counters.slow_serves += 1;
            let addr = self.slow_addr(partner, req.addr % BLOCK);
            let done = self.devices.slow.access(now + meta_lat, addr, 64, false);
            self.serve.record_read(false);
            return Response {
                latency: done - now,
                served_by_fast: false,
                extra_lines: Vec::new(),
            };
        }

        // Slow-home block: cache zone?
        if let Some(idx) = self.cache_map.get(&block).copied() {
            if self.cache[idx].present >> sub & 1 == 1 {
                self.counters.cache_hits += 1;
                let addr = self.cache_zone_addr(idx, req.addr % BLOCK);
                let done = self.devices.fast.access(now + meta_lat, addr, 64, false);
                // Cached activity heats the block towards migration.
                let heat = self.heat.entry(block).or_insert(0);
                *heat += 1;
                if *heat >= MIGRATE_THRESHOLD {
                    self.migrate(done, block);
                }
                self.serve.record_read(true);
                return Response {
                    latency: done - now,
                    served_by_fast: true,
                    extra_lines: Vec::new(),
                };
            }
        }

        // Slow serve + heat accounting + background fill/migration.
        self.counters.slow_serves += 1;
        let done = self.devices.slow.access(
            now + meta_lat,
            self.slow_addr(block, req.addr % BLOCK),
            64,
            false,
        );
        let heat = self.heat.entry(block).or_insert(0);
        *heat += 1;
        let hot = *heat >= MIGRATE_THRESHOLD;
        if hot {
            self.migrate(done, block);
        } else {
            self.cache_fill(done, block, sub);
        }
        self.serve.record_read(false);
        Response {
            latency: done - now,
            served_by_fast: false,
            extra_lines: Vec::new(),
        }
    }

    fn writeback(&mut self, now: Cycle, addr: u64, _mem: &mut MemoryContents) -> Cycle {
        self.serve.record_writeback();
        let block = addr / BLOCK;
        let sub = ((addr % BLOCK) / SUB) as usize;
        if self.in_flat(block) {
            let a = self.flat_addr(block, addr % BLOCK);
            return self.devices.fast.access(now, a, 64, true);
        }
        if let Some(partner) = self.displaced.get(&block).copied() {
            let a = self.slow_addr(partner, addr % BLOCK);
            return self.devices.slow.access(now, a, 64, true);
        }
        if let Some(idx) = self.cache_map.get(&block).copied() {
            if self.cache[idx].present >> sub & 1 == 1 {
                let a = self.cache_zone_addr(idx, addr % BLOCK);
                let done = self.devices.fast.access(now, a, 64, true);
                self.cache[idx].dirty |= 1 << sub;
                return done;
            }
        }
        self.devices
            .slow
            .access(now, self.slow_addr(block, addr % BLOCK), 64, true)
    }

    fn serve_stats(&self) -> ServeStats {
        self.serve.finish(&self.devices)
    }

    fn export(&self, reg: &mut Registry) {
        reg.set_counter("flat_hits", self.counters.flat_hits);
        reg.set_counter("cache_hits", self.counters.cache_hits);
        reg.set_counter("sub_fetches", self.counters.sub_fetches);
        reg.set_counter("migrations", self.counters.migrations);
        reg.set_counter("slow_serves", self.counters.slow_serves);
        self.devices.export(reg);
    }

    fn reset_stats(&mut self) {
        self.serve.reset();
        self.counters = Hybrid2Counters::default();
        self.devices.reset_stats();
    }

    fn name(&self) -> &str {
        "hybrid2"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ctrl::test_contents;

    fn ctrl() -> Hybrid2 {
        Hybrid2::new(Scale { divisor: 2048 })
    }

    #[test]
    fn flat_blocks_serve_fast() {
        let mut c = ctrl();
        let mut mem = test_contents();
        let r = c.read(0, Request { addr: 0, core: 0 }, &mut mem);
        assert!(r.served_by_fast);
        assert_eq!(c.counters().flat_hits, 1);
    }

    #[test]
    fn slow_block_cached_after_miss() {
        let mut c = ctrl();
        let mut mem = test_contents();
        let slow_addr = c.flat_blocks() * BLOCK + 4096;
        let r1 = c.read(
            0,
            Request {
                addr: slow_addr,
                core: 0,
            },
            &mut mem,
        );
        assert!(!r1.served_by_fast);
        let r2 = c.read(
            100_000,
            Request {
                addr: slow_addr,
                core: 0,
            },
            &mut mem,
        );
        assert!(r2.served_by_fast, "sub-block now in the cache zone");
        assert_eq!(c.counters().cache_hits, 1);
    }

    #[test]
    fn sub_blocking_fetches_256b() {
        let mut c = ctrl();
        let mut mem = test_contents();
        let slow_addr = c.flat_blocks() * BLOCK;
        c.read(
            0,
            Request {
                addr: slow_addr,
                core: 0,
            },
            &mut mem,
        );
        // Another sub-block of the same block still misses.
        let r = c.read(
            50_000,
            Request {
                addr: slow_addr + 1024,
                core: 0,
            },
            &mut mem,
        );
        assert!(!r.served_by_fast);
    }

    #[test]
    fn hot_block_migrates() {
        let mut c = ctrl();
        let mut mem = test_contents();
        let block = c.flat_blocks() + 5;
        // Hammer different sub-blocks so cache-zone hits do not absorb all
        // accesses and the heat counter rises.
        let mut t = 0;
        for i in 0..(MIGRATE_THRESHOLD as u64 * 16) {
            let sub = (i % 8) * SUB;
            // Alternate blocks to evict cache-zone state occasionally.
            c.read(
                t,
                Request {
                    addr: block * BLOCK + sub,
                    core: 0,
                },
                &mut mem,
            );
            t += 1000;
            if c.counters().migrations > 0 {
                break;
            }
        }
        assert!(c.counters().migrations > 0, "hot block should migrate");
        let r = c.read(
            t + 1000,
            Request {
                addr: block * BLOCK,
                core: 0,
            },
            &mut mem,
        );
        assert!(r.served_by_fast, "migrated block serves from fast");
    }

    #[test]
    fn displaced_original_serves_slow() {
        let mut c = ctrl();
        let mut mem = test_contents();
        let block = c.flat_blocks() + 5;
        let mut t = 0;
        while c.counters().migrations == 0 {
            let sub = (t / 1000 % 8) * SUB;
            c.read(
                t,
                Request {
                    addr: block * BLOCK + sub,
                    core: 0,
                },
                &mut mem,
            );
            t += 1000;
            assert!(t < 10_000_000, "migration never happened");
        }
        let displaced = *c.migrated.get(&block).expect("migrated");
        let r = c.read(
            t,
            Request {
                addr: displaced * BLOCK,
                core: 0,
            },
            &mut mem,
        );
        assert!(!r.served_by_fast, "displaced original now lives in slow");
    }

    #[test]
    fn dirty_cache_zone_writes_back() {
        let mut c = ctrl();
        let mut mem = test_contents();
        let block = c.flat_blocks() + 3;
        c.read(
            0,
            Request {
                addr: block * BLOCK,
                core: 0,
            },
            &mut mem,
        );
        c.writeback(10, block * BLOCK, &mut mem);
        let before = c.serve_stats().slow_bytes;
        // Evict by filling the FIFO cache zone with other blocks.
        for i in 0..c.cache.len() as u64 + 2 {
            let b = c.flat_blocks() + 100 + i;
            c.read(
                1000 * (i + 1),
                Request {
                    addr: b * BLOCK,
                    core: 0,
                },
                &mut mem,
            );
        }
        assert!(
            c.serve_stats().slow_bytes > before,
            "dirty sub written back"
        );
    }
}

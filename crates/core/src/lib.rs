#![warn(missing_docs)]

//! The Baryon hybrid-memory architecture (HPCA 2023) and its baselines.
//!
//! This crate is the heart of the reproduction. It implements:
//!
//! * the **Baryon controller** ([`controller::BaryonController`]): 2 kB blocks
//!   split into 256 B sub-blocks, FPC/BDI compression at CF ∈ {1, 2, 4},
//!   the **stage area** with two-level replacement and selective commit,
//!   the **dual-format metadata** scheme (stage tag entries + compact remap
//!   entries), cacheline-aligned compression with memory-to-LLC prefetch,
//!   compressed fast-to-slow writeback, and both **cache** and **flat**
//!   hybrid-memory schemes (flat with spread-swap / three-way slow swap);
//! * the **baselines** the paper compares against: a Simple 2 kB DRAM cache,
//!   Unison Cache, DICE, and Hybrid2 ([`baselines`]);
//! * the **system driver** ([`system::System`]) that ties together the trace
//!   generators, the cache hierarchy and a memory controller and measures
//!   end-to-end performance.
//!
//! # Quick start
//!
//! ```
//! use baryon_core::config::BaryonConfig;
//! use baryon_core::system::{System, SystemConfig};
//! use baryon_workloads::{by_name, Scale};
//!
//! let scale = Scale { divisor: 2048 };
//! let workload = by_name("505.mcf_r", scale).expect("workload exists");
//! let cfg = SystemConfig::baryon_cache_mode(scale);
//! let mut system = System::new(cfg, &workload, 42);
//! let result = system.run(20_000);
//! assert!(result.total_cycles > 0);
//! let _ = BaryonConfig::default_cache_mode(scale);
//! ```

pub mod addr;
pub mod baselines;
pub mod budget;
pub mod checkpoint;
pub mod config;
pub mod controller;
pub mod ctrl;
pub mod family;
pub mod metadata;
pub mod metrics;
pub mod policy;
pub mod remap;
pub mod stage;
pub mod system;

pub use addr::Geometry;
pub use config::{BaryonConfig, HybridMode, RemapKind};
pub use ctrl::{MemoryController, Request, Response};
pub use family::FamilyId;
pub use metrics::RunResult;
pub use policy::FleetPolicy;

//! End-to-end run results.

use crate::ctrl::ServeStats;
use baryon_sim::histogram::Histogram;
use baryon_sim::json::Json;
use baryon_sim::telemetry::{Registry, Value};
use std::collections::BTreeMap;

/// The outcome of one measured simulation run.
#[derive(Debug, Clone, PartialEq)]
pub struct RunResult {
    /// Controller name (e.g. `"baryon"`).
    pub controller: String,
    /// Workload name.
    pub workload: String,
    /// Cycles elapsed in the measured phase (max over cores).
    pub total_cycles: u64,
    /// Instructions executed in the measured phase (sum over cores).
    pub instructions: u64,
    /// Memory reads that reached the controller (LLC misses).
    pub llc_misses: u64,
    /// Serve-rate / traffic summary.
    pub serve: ServeStats,
    /// Distribution of memory-side read latencies (cycles per LLC miss).
    pub read_latency: Histogram,
    /// The unified telemetry registry: every counter, gauge and summary
    /// published by the hierarchy, controller and devices. Read through
    /// [`RunResult::snapshot`] or [`Registry`] accessors — the per-crate
    /// stats structs are internal publishers only.
    pub telemetry: Registry,
    /// The fleet config generation the run executed under (0 = the
    /// built-in baseline; stamped by policy-aware execution paths so
    /// results produced under different rollout generations are
    /// distinguishable).
    pub config_generation: u64,
}

impl RunResult {
    /// Aggregate instructions per cycle across all cores.
    pub fn ipc(&self) -> f64 {
        if self.total_cycles == 0 {
            0.0
        } else {
            self.instructions as f64 / self.total_cycles as f64
        }
    }

    /// Speedup of this run over a baseline run of the same workload
    /// (ratio of cycles, both having executed the same instruction count).
    ///
    /// # Panics
    ///
    /// Panics if the instruction counts differ by more than 1% (the runs
    /// would not be comparable).
    pub fn speedup_over(&self, baseline: &RunResult) -> f64 {
        let a = self.instructions as f64;
        let b = baseline.instructions as f64;
        assert!(
            (a - b).abs() / b.max(1.0) < 0.01,
            "speedup between runs of different lengths ({a} vs {b} instructions)"
        );
        baseline.total_cycles as f64 / self.total_cycles.max(1) as f64
    }

    /// Misses per kilo-instruction at the LLC (memory pressure indicator).
    pub fn llc_mpki(&self) -> f64 {
        if self.instructions == 0 {
            0.0
        } else {
            self.llc_misses as f64 * 1000.0 / self.instructions as f64
        }
    }

    /// Memory-system energy in millijoules.
    pub fn energy_mj(&self) -> f64 {
        self.serve.energy_pj / 1e9
    }

    /// Freezes the unified telemetry registry into the single read API:
    /// one ordered map of `component.metric` name to [`Value`].
    pub fn snapshot(&self) -> BTreeMap<String, Value> {
        self.telemetry.snapshot()
    }

    /// Reads one telemetry counter; missing counters read as zero.
    pub fn counter(&self, name: &str) -> u64 {
        self.telemetry.counter(name)
    }

    /// The full result as a JSON document (headline metrics, serve/traffic
    /// summary, latency percentiles, and the unified telemetry registry)
    /// for machine consumption, e.g. `baryon-cli run --json`.
    pub fn to_json(&self) -> Json {
        let doc = Json::obj([
            ("controller", Json::from(self.controller.as_str())),
            ("workload", Json::from(self.workload.as_str())),
            ("cycles", Json::from(self.total_cycles)),
            ("instructions", Json::from(self.instructions)),
            ("ipc", Json::from(self.ipc())),
            ("llc_misses", Json::from(self.llc_misses)),
            ("llc_mpki", Json::from(self.llc_mpki())),
            ("energy_mj", Json::from(self.energy_mj())),
            (
                "serve",
                Json::obj([
                    ("reads", Json::from(self.serve.reads)),
                    ("fast_served", Json::from(self.serve.fast_served)),
                    ("fast_serve_rate", Json::from(self.serve.fast_serve_rate())),
                    ("writebacks", Json::from(self.serve.writebacks)),
                    ("useful_bytes", Json::from(self.serve.useful_bytes)),
                    ("fast_bytes", Json::from(self.serve.fast_bytes)),
                    ("slow_bytes", Json::from(self.serve.slow_bytes)),
                    ("bloat_factor", Json::from(self.serve.bloat_factor())),
                    ("energy_pj", Json::from(self.serve.energy_pj)),
                ]),
            ),
            (
                "read_latency",
                Json::obj([
                    ("count", Json::from(self.read_latency.count())),
                    ("mean", Json::from(self.read_latency.mean())),
                    ("p50", Json::from(self.read_latency.percentile(50.0))),
                    ("p90", Json::from(self.read_latency.percentile(90.0))),
                    ("p99", Json::from(self.read_latency.percentile(99.0))),
                ]),
            ),
            ("telemetry", self.telemetry.to_json()),
        ]);
        // Stamped only when non-zero so baseline (generation 0) documents
        // stay byte-identical with or without the rollout machinery.
        if self.config_generation == 0 {
            return doc;
        }
        let Json::Obj(mut pairs) = doc else {
            unreachable!("Json::obj builds an object");
        };
        pairs.push((
            "config_generation".to_owned(),
            Json::U64(self.config_generation),
        ));
        Json::Obj(pairs)
    }
}

impl std::fmt::Display for RunResult {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "controller      : {}", self.controller)?;
        writeln!(f, "workload        : {}", self.workload)?;
        writeln!(f, "cycles          : {}", self.total_cycles)?;
        writeln!(f, "instructions    : {}", self.instructions)?;
        writeln!(f, "IPC             : {:.4}", self.ipc())?;
        writeln!(f, "LLC MPKI        : {:.2}", self.llc_mpki())?;
        writeln!(
            f,
            "fast serve rate : {:.1}%",
            100.0 * self.serve.fast_serve_rate()
        )?;
        writeln!(f, "bloat factor    : {:.2}", self.serve.bloat_factor())?;
        writeln!(
            f,
            "read latency    : mean {:.0} cyc, p50 {} / p90 {} / p99 {}",
            self.read_latency.mean(),
            self.read_latency.percentile(50.0),
            self.read_latency.percentile(90.0),
            self.read_latency.percentile(99.0)
        )?;
        write!(f, "energy          : {:.3} mJ", self.energy_mj())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn result(cycles: u64, insts: u64) -> RunResult {
        RunResult {
            controller: "x".into(),
            workload: "w".into(),
            total_cycles: cycles,
            instructions: insts,
            llc_misses: 50,
            serve: ServeStats::default(),
            read_latency: Histogram::new(),
            telemetry: Registry::new(),
            config_generation: 0,
        }
    }

    #[test]
    fn ipc_and_mpki() {
        let r = result(1000, 4000);
        assert!((r.ipc() - 4.0).abs() < 1e-12);
        assert!((r.llc_mpki() - 12.5).abs() < 1e-12);
    }

    #[test]
    fn speedup_is_cycle_ratio() {
        let fast = result(500, 4000);
        let slow = result(1000, 4000);
        assert!((fast.speedup_over(&slow) - 2.0).abs() < 1e-12);
        assert!((slow.speedup_over(&fast) - 0.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "different lengths")]
    fn speedup_rejects_mismatched_runs() {
        result(1000, 4000).speedup_over(&result(1000, 8000));
    }

    #[test]
    fn zero_cycles_is_zero_ipc() {
        assert_eq!(result(0, 100).ipc(), 0.0);
    }

    #[test]
    fn json_includes_headline_metrics_and_is_stable() {
        let mut r = result(1000, 4000);
        r.telemetry.add("cache.llc.read_misses", 50);
        r.telemetry.set_gauge("ctrl.avg_cf", 1.5);
        r.telemetry.observe("sim.read_latency", 100);
        let text = r.to_json().render();
        for needle in [
            "\"controller\":\"x\"",
            "\"cycles\":1000",
            "\"ipc\":4",
            "\"serve\":{",
            "\"read_latency\":{",
            "\"telemetry\":{",
            "\"cache.llc.read_misses\":50",
            "\"ctrl.avg_cf\":1.5",
            "\"sim.read_latency\":{\"count\":1",
        ] {
            assert!(text.contains(needle), "missing {needle} in:\n{text}");
        }
        // Deterministic output for identical results.
        assert_eq!(text, r.to_json().render());
    }

    #[test]
    fn config_generation_stamped_only_when_non_zero() {
        let mut r = result(1000, 4000);
        let baseline = r.to_json().render();
        assert!(
            !baseline.contains("config_generation"),
            "generation 0 must not perturb baseline documents:\n{baseline}"
        );
        r.config_generation = 3;
        let stamped = r.to_json().render();
        assert!(
            stamped.contains("\"config_generation\":3"),
            "missing stamp in:\n{stamped}"
        );
    }

    #[test]
    fn snapshot_is_the_single_read_api() {
        let mut r = result(1000, 4000);
        r.telemetry.add("ctrl.commits", 3);
        let snap = r.snapshot();
        assert_eq!(snap["ctrl.commits"], Value::Counter(3));
        assert_eq!(r.counter("ctrl.commits"), 3);
        assert_eq!(r.counter("ctrl.nope"), 0);
    }

    #[test]
    fn display_mentions_every_headline_metric() {
        let text = result(1000, 4000).to_string();
        for needle in ["IPC", "MPKI", "serve rate", "latency", "energy"] {
            assert!(text.contains(needle), "missing {needle} in:\n{text}");
        }
    }
}

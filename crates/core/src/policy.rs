//! Fleet-wide configuration policy: the unit of A/B rollout.
//!
//! A [`FleetPolicy`] is a sparse overlay over [`BaryonConfig`]: every field
//! is optional, and an absent field means "keep the controller's default
//! for the run's scale". This keeps a staged policy meaningful across runs
//! at different scales (the overlay is applied on top of the design point
//! the run would have used anyway) and makes the empty policy exactly the
//! baseline — generation 0 results are byte-identical with or without the
//! rollout machinery.
//!
//! Validation goes through [`BaryonConfig::builder`], so a bad policy is
//! rejected at *stage* time with the same typed [`ConfigError`] a direct
//! misconfiguration would produce, never at job-execution time on a live
//! shard.

use crate::config::{BaryonConfig, ConfigError};
use baryon_sim::json::Json;
use baryon_sim::wire::{Reader, WireError, Writer};
use baryon_workloads::Scale;

/// A versioned, sparse overlay of operator-tunable controller knobs plus
/// serving limits, distributed to shards by the fleet's rollout engine.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FleetPolicy {
    /// The fleet config generation that produced this policy (0 = the
    /// built-in baseline; stamped by the coordinator's slot machine).
    pub generation: u64,
    /// Overrides the selective-commit weight `k` (Eq. 1).
    pub commit_k: Option<f64>,
    /// Overrides the commit-all ablation switch.
    pub commit_all: Option<bool>,
    /// Overrides cacheline-aligned compression.
    pub cacheline_aligned: Option<bool>,
    /// Overrides the `Z`-bit all-zero range optimization.
    pub zero_opt: Option<bool>,
    /// Overrides the C-Pack compressor toggle.
    pub use_cpack: Option<bool>,
    /// Overrides compressed fast-to-slow writeback.
    pub compressed_writeback: Option<bool>,
    /// Overrides block-level stage replacement.
    pub two_level_replacement: Option<bool>,
    /// Overrides the metadata-scrub interval.
    pub scrub_interval: Option<u64>,
    /// Overrides the stage-area associativity.
    pub stage_ways: Option<usize>,
    /// Per-job wall-clock deadline on shards, in milliseconds.
    pub job_deadline_ms: Option<u64>,
    /// Checkpoint cadence (instructions) on shards.
    pub checkpoint_every: Option<u64>,
}

/// The scale every staged policy is validated against. Controller knobs are
/// scale-independent (they overlay whatever design point a run uses), so
/// one canonical scale suffices to catch illegal values at stage time.
pub const VALIDATION_SCALE: Scale = Scale { divisor: 256 };

impl FleetPolicy {
    /// True when the policy overrides nothing — the built-in baseline.
    pub fn is_baseline(&self) -> bool {
        self.commit_k.is_none()
            && self.commit_all.is_none()
            && self.cacheline_aligned.is_none()
            && self.zero_opt.is_none()
            && self.use_cpack.is_none()
            && self.compressed_writeback.is_none()
            && self.two_level_replacement.is_none()
            && self.scrub_interval.is_none()
            && self.stage_ways.is_none()
            && self.job_deadline_ms.is_none()
            && self.checkpoint_every.is_none()
    }

    /// Applies the controller overrides on top of `cfg`.
    pub fn apply(&self, mut cfg: BaryonConfig) -> BaryonConfig {
        if let Some(k) = self.commit_k {
            cfg.commit_k = k;
        }
        if let Some(v) = self.commit_all {
            cfg.commit_all = v;
        }
        if let Some(v) = self.cacheline_aligned {
            cfg.cacheline_aligned = v;
        }
        if let Some(v) = self.zero_opt {
            cfg.zero_opt = v;
        }
        if let Some(v) = self.use_cpack {
            cfg.use_cpack = v;
        }
        if let Some(v) = self.compressed_writeback {
            cfg.compressed_writeback = v;
        }
        if let Some(v) = self.two_level_replacement {
            cfg.two_level_replacement = v;
        }
        if let Some(v) = self.scrub_interval {
            cfg.scrub_interval = v;
        }
        if let Some(v) = self.stage_ways {
            cfg.stage_ways = v;
        }
        cfg
    }

    /// Validates the policy through [`BaryonConfig::builder`] at
    /// [`VALIDATION_SCALE`], returning the resolved configuration.
    ///
    /// # Errors
    ///
    /// The typed [`ConfigError`] for the first violated invariant.
    pub fn validate(&self) -> Result<BaryonConfig, ConfigError> {
        let mut b = BaryonConfig::builder(VALIDATION_SCALE);
        if let Some(k) = self.commit_k {
            b = b.commit_k(k);
        }
        if let Some(v) = self.commit_all {
            b = b.commit_all(v);
        }
        if let Some(v) = self.cacheline_aligned {
            b = b.cacheline_aligned(v);
        }
        if let Some(v) = self.zero_opt {
            b = b.zero_opt(v);
        }
        if let Some(v) = self.use_cpack {
            b = b.use_cpack(v);
        }
        if let Some(v) = self.compressed_writeback {
            b = b.compressed_writeback(v);
        }
        if let Some(v) = self.two_level_replacement {
            b = b.two_level_replacement(v);
        }
        if let Some(v) = self.scrub_interval {
            b = b.scrub_interval(v);
        }
        if let Some(v) = self.stage_ways {
            b = b.stage_ways(v);
        }
        b.build()
    }

    /// Per-knob differences from `base` (the currently active policy) to
    /// `self` (the staged candidate): `(knob, from, to)` triples in
    /// declaration order, where an absent override renders as
    /// `"default"`. Knobs identical on both sides are omitted, so an
    /// empty vec means the rollout would change nothing.
    pub fn diff_from(&self, base: &FleetPolicy) -> Vec<(&'static str, String, String)> {
        fn side<T: std::fmt::Display>(v: &Option<T>) -> String {
            match v {
                Some(v) => v.to_string(),
                None => "default".to_owned(),
            }
        }
        macro_rules! knobs {
            ($($field:ident),* $(,)?) => {{
                let mut out = Vec::new();
                $(
                    let (from, to) = (side(&base.$field), side(&self.$field));
                    if from != to {
                        out.push((stringify!($field), from, to));
                    }
                )*
                out
            }};
        }
        knobs!(
            commit_k,
            commit_all,
            cacheline_aligned,
            zero_opt,
            use_cpack,
            compressed_writeback,
            two_level_replacement,
            scrub_interval,
            stage_ways,
            job_deadline_ms,
            checkpoint_every,
        )
    }

    /// Renders the policy as a JSON document (absent overrides omitted).
    pub fn to_json(&self) -> Json {
        let mut pairs = vec![("generation".to_owned(), Json::U64(self.generation))];
        if let Some(k) = self.commit_k {
            pairs.push(("commit_k".to_owned(), Json::F64(k)));
        }
        if let Some(v) = self.commit_all {
            pairs.push(("commit_all".to_owned(), Json::Bool(v)));
        }
        if let Some(v) = self.cacheline_aligned {
            pairs.push(("cacheline_aligned".to_owned(), Json::Bool(v)));
        }
        if let Some(v) = self.zero_opt {
            pairs.push(("zero_opt".to_owned(), Json::Bool(v)));
        }
        if let Some(v) = self.use_cpack {
            pairs.push(("use_cpack".to_owned(), Json::Bool(v)));
        }
        if let Some(v) = self.compressed_writeback {
            pairs.push(("compressed_writeback".to_owned(), Json::Bool(v)));
        }
        if let Some(v) = self.two_level_replacement {
            pairs.push(("two_level_replacement".to_owned(), Json::Bool(v)));
        }
        if let Some(v) = self.scrub_interval {
            pairs.push(("scrub_interval".to_owned(), Json::U64(v)));
        }
        if let Some(v) = self.stage_ways {
            pairs.push(("stage_ways".to_owned(), Json::U64(v as u64)));
        }
        if let Some(v) = self.job_deadline_ms {
            pairs.push(("job_deadline_ms".to_owned(), Json::U64(v)));
        }
        if let Some(v) = self.checkpoint_every {
            pairs.push(("checkpoint_every".to_owned(), Json::U64(v)));
        }
        Json::Obj(pairs)
    }

    /// Parses a policy document. Unknown keys are rejected — an operator
    /// typo must fail at stage time, not silently no-op on the fleet.
    ///
    /// # Errors
    ///
    /// A message naming the offending key or value.
    pub fn from_json(doc: &Json) -> Result<FleetPolicy, String> {
        let Json::Obj(pairs) = doc else {
            return Err("policy must be a JSON object".to_owned());
        };
        let mut p = FleetPolicy::default();
        for (key, value) in pairs {
            match key.as_str() {
                "generation" => p.generation = expect_u64(key, value)?,
                "commit_k" => p.commit_k = Some(expect_f64(key, value)?),
                "commit_all" => p.commit_all = Some(expect_bool(key, value)?),
                "cacheline_aligned" => p.cacheline_aligned = Some(expect_bool(key, value)?),
                "zero_opt" => p.zero_opt = Some(expect_bool(key, value)?),
                "use_cpack" => p.use_cpack = Some(expect_bool(key, value)?),
                "compressed_writeback" => p.compressed_writeback = Some(expect_bool(key, value)?),
                "two_level_replacement" => {
                    p.two_level_replacement = Some(expect_bool(key, value)?);
                }
                "scrub_interval" => p.scrub_interval = Some(expect_u64(key, value)?),
                "stage_ways" => p.stage_ways = Some(expect_u64(key, value)? as usize),
                "job_deadline_ms" => {
                    let ms = expect_u64(key, value)?;
                    if ms == 0 {
                        return Err("job_deadline_ms must be non-zero".to_owned());
                    }
                    p.job_deadline_ms = Some(ms);
                }
                "checkpoint_every" => {
                    let every = expect_u64(key, value)?;
                    if every == 0 {
                        return Err("checkpoint_every must be non-zero".to_owned());
                    }
                    p.checkpoint_every = Some(every);
                }
                other => return Err(format!("unknown policy field {other:?}")),
            }
        }
        Ok(p)
    }

    /// Serializes the policy over the wire codec.
    pub fn save_state(&self, w: &mut Writer) {
        w.u64(self.generation);
        opt_f64(w, self.commit_k);
        opt_bool(w, self.commit_all);
        opt_bool(w, self.cacheline_aligned);
        opt_bool(w, self.zero_opt);
        opt_bool(w, self.use_cpack);
        opt_bool(w, self.compressed_writeback);
        opt_bool(w, self.two_level_replacement);
        opt_u64(w, self.scrub_interval);
        opt_u64(w, self.stage_ways.map(|v| v as u64));
        opt_u64(w, self.job_deadline_ms);
        opt_u64(w, self.checkpoint_every);
    }

    /// Deserializes a policy written by [`FleetPolicy::save_state`].
    ///
    /// # Errors
    ///
    /// [`WireError`] on a truncated or malformed buffer.
    pub fn load_state(r: &mut Reader<'_>) -> Result<FleetPolicy, WireError> {
        Ok(FleetPolicy {
            generation: r.u64()?,
            commit_k: read_opt_f64(r)?,
            commit_all: read_opt_bool(r)?,
            cacheline_aligned: read_opt_bool(r)?,
            zero_opt: read_opt_bool(r)?,
            use_cpack: read_opt_bool(r)?,
            compressed_writeback: read_opt_bool(r)?,
            two_level_replacement: read_opt_bool(r)?,
            scrub_interval: read_opt_u64(r)?,
            stage_ways: read_opt_u64(r)?.map(|v| v as usize),
            job_deadline_ms: read_opt_u64(r)?,
            checkpoint_every: read_opt_u64(r)?,
        })
    }

    /// Reads, parses, and validates a policy file.
    ///
    /// # Errors
    ///
    /// A message describing the I/O, parse, or validation failure.
    pub fn load(path: &std::path::Path) -> Result<FleetPolicy, String> {
        let text =
            std::fs::read_to_string(path).map_err(|e| format!("read {}: {e}", path.display()))?;
        let doc =
            baryon_sim::json::parse(&text).map_err(|e| format!("parse {}: {e}", path.display()))?;
        let policy = FleetPolicy::from_json(&doc)?;
        policy.validate().map_err(|e| e.to_string())?;
        Ok(policy)
    }
}

fn expect_u64(key: &str, value: &Json) -> Result<u64, String> {
    match value {
        Json::U64(n) => Ok(*n),
        _ => Err(format!("{key} must be a non-negative integer")),
    }
}

fn expect_f64(key: &str, value: &Json) -> Result<f64, String> {
    match value {
        Json::F64(x) => Ok(*x),
        Json::U64(n) => Ok(*n as f64),
        Json::I64(n) => Ok(*n as f64),
        _ => Err(format!("{key} must be a number")),
    }
}

fn expect_bool(key: &str, value: &Json) -> Result<bool, String> {
    match value {
        Json::Bool(b) => Ok(*b),
        _ => Err(format!("{key} must be a boolean")),
    }
}

fn opt_u64(w: &mut Writer, v: Option<u64>) {
    w.opt(v.is_some());
    if let Some(v) = v {
        w.u64(v);
    }
}

fn opt_f64(w: &mut Writer, v: Option<f64>) {
    w.opt(v.is_some());
    if let Some(v) = v {
        w.f64(v);
    }
}

fn opt_bool(w: &mut Writer, v: Option<bool>) {
    w.opt(v.is_some());
    if let Some(v) = v {
        w.bool(v);
    }
}

fn read_opt_u64(r: &mut Reader<'_>) -> Result<Option<u64>, WireError> {
    Ok(if r.opt()? { Some(r.u64()?) } else { None })
}

fn read_opt_f64(r: &mut Reader<'_>) -> Result<Option<f64>, WireError> {
    Ok(if r.opt()? { Some(r.f64()?) } else { None })
}

fn read_opt_bool(r: &mut Reader<'_>) -> Result<Option<bool>, WireError> {
    Ok(if r.opt()? { Some(r.bool()?) } else { None })
}

#[cfg(test)]
mod tests {
    use super::*;
    use baryon_sim::json;

    #[test]
    fn default_is_baseline_and_applies_nothing() {
        let p = FleetPolicy::default();
        assert!(p.is_baseline());
        let base = BaryonConfig::default_cache_mode(VALIDATION_SCALE);
        assert_eq!(p.apply(base.clone()), base);
        assert_eq!(p.validate().expect("baseline valid"), base);
    }

    #[test]
    fn overrides_apply_and_validate() {
        let p = FleetPolicy {
            commit_k: Some(2.0),
            zero_opt: Some(false),
            scrub_interval: Some(1000),
            ..FleetPolicy::default()
        };
        assert!(!p.is_baseline());
        let cfg = p.validate().expect("valid");
        assert_eq!(cfg.commit_k, 2.0);
        assert!(!cfg.zero_opt);
        assert_eq!(cfg.scrub_interval, 1000);
        let applied = p.apply(BaryonConfig::default_flat_fa(VALIDATION_SCALE));
        assert_eq!(applied.commit_k, 2.0);
        assert_eq!(applied.mode, crate::config::HybridMode::Flat, "mode kept");
    }

    #[test]
    fn invalid_overrides_surface_builder_errors() {
        let p = FleetPolicy {
            commit_k: Some(-1.0),
            ..FleetPolicy::default()
        };
        assert_eq!(
            p.validate().expect_err("bad k"),
            ConfigError::NegativeCommitK
        );
        let p = FleetPolicy {
            stage_ways: Some(0),
            ..FleetPolicy::default()
        };
        assert_eq!(
            p.validate().expect_err("bad ways"),
            ConfigError::ZeroStageWays
        );
    }

    #[test]
    fn json_round_trip_and_unknown_keys() {
        let p = FleetPolicy {
            generation: 3,
            commit_k: Some(2.5),
            commit_all: Some(true),
            use_cpack: Some(false),
            stage_ways: Some(8),
            job_deadline_ms: Some(5000),
            checkpoint_every: Some(20_000),
            ..FleetPolicy::default()
        };
        let doc = json::parse(&p.to_json().render()).expect("rendered JSON parses");
        assert_eq!(FleetPolicy::from_json(&doc).expect("round trip"), p);
        let bad = json::parse(r#"{"comit_k": 2.0}"#).expect("parses");
        let err = FleetPolicy::from_json(&bad).expect_err("typo rejected");
        assert!(err.contains("comit_k"), "{err}");
        let zero = json::parse(r#"{"job_deadline_ms": 0}"#).expect("parses");
        assert!(FleetPolicy::from_json(&zero).is_err());
    }

    #[test]
    fn diff_names_changed_knobs_with_default_for_absent() {
        let active = FleetPolicy {
            commit_k: Some(2.0),
            zero_opt: Some(false),
            ..FleetPolicy::default()
        };
        let staged = FleetPolicy {
            commit_k: Some(2.5),
            scrub_interval: Some(1000),
            ..FleetPolicy::default()
        };
        assert_eq!(
            staged.diff_from(&active),
            vec![
                ("commit_k", "2".to_owned(), "2.5".to_owned()),
                ("zero_opt", "false".to_owned(), "default".to_owned()),
                ("scrub_interval", "default".to_owned(), "1000".to_owned()),
            ]
        );
        assert!(
            staged.diff_from(&staged).is_empty(),
            "identical policies diff to nothing"
        );
    }

    #[test]
    fn wire_round_trip() {
        for p in [
            FleetPolicy::default(),
            FleetPolicy {
                generation: 9,
                commit_k: Some(0.5),
                cacheline_aligned: Some(false),
                compressed_writeback: Some(true),
                two_level_replacement: Some(false),
                scrub_interval: Some(77),
                job_deadline_ms: Some(1),
                ..FleetPolicy::default()
            },
        ] {
            let mut w = Writer::new();
            p.save_state(&mut w);
            let bytes = w.into_bytes();
            let mut r = Reader::new(&bytes);
            let back = FleetPolicy::load_state(&mut r).expect("decodes");
            r.finish().expect("fully consumed");
            assert_eq!(back, p);
        }
    }

    #[test]
    fn load_rejects_invalid_files() {
        let dir = std::env::temp_dir().join(format!("baryon-policy-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("tmp dir");
        let good = dir.join("good.json");
        std::fs::write(&good, r#"{"commit_k": 2.0}"#).expect("write");
        assert_eq!(FleetPolicy::load(&good).expect("loads").commit_k, Some(2.0));
        let bad = dir.join("bad.json");
        std::fs::write(&bad, r#"{"commit_k": -3.0}"#).expect("write");
        let err = FleetPolicy::load(&bad).expect_err("invalid config rejected");
        assert!(err.contains("commit_k"), "{err}");
        let missing = dir.join("nope.json");
        assert!(FleetPolicy::load(&missing).is_err());
        let _ = std::fs::remove_dir_all(&dir);
    }
}

//! Metadata-budget arithmetic for the §II-B / §III-B cost arguments.
//!
//! The paper's case for the dual-format scheme is quantitative:
//!
//! * naive fine-grained remapping (one entry per compressed sub-block)
//!   grows the remap table "up to 32x", reaching GBs;
//! * Baryon's compact entry is 2 B/block, making the whole table "only
//!   0.1% of the total system memory capacity";
//! * the stage tag array is 448 kB and the remap cache 32 kB, for a total
//!   controller SRAM of 480 kB, "comparable with previous works".
//!
//! [`MetadataBudget`] computes all of these from a configuration so the
//! claims are checkable (and printed by the `table1` bench).

use crate::config::BaryonConfig;

/// The metadata cost breakdown of a configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MetadataBudget {
    /// Off-chip remap table, Baryon's 2 B-per-block format.
    pub remap_table_bytes: u64,
    /// The same table under naive per-sub-block entries (the §II-B
    /// strawman: one block-sized entry per compressed sub-block).
    pub naive_subblock_table_bytes: u64,
    /// On-chip stage tag array.
    pub stage_tag_bytes: u64,
    /// On-chip remap cache.
    pub remap_cache_bytes: u64,
    /// Total memory capacity (fast + slow).
    pub total_memory_bytes: u64,
}

impl MetadataBudget {
    /// Computes the budget of a configuration.
    pub fn of(cfg: &BaryonConfig) -> Self {
        let total_memory_bytes = cfg.fast_bytes + cfg.slow_bytes;
        let blocks = total_memory_bytes / cfg.geometry.block_bytes;
        // Naive scheme: one remap entry per *sub-block* instead of per
        // block; the entry itself also grows (full sub-block pointer
        // instead of a within-set way index): model it at 4 B.
        let subs = blocks * cfg.geometry.subs_per_block() as u64;
        let (stage_tag_bytes, remap_cache_bytes) = cfg.sram_budget();
        MetadataBudget {
            remap_table_bytes: cfg.remap_table_bytes(),
            naive_subblock_table_bytes: subs * 4,
            stage_tag_bytes,
            remap_cache_bytes,
            total_memory_bytes,
        }
    }

    /// Remap table as a fraction of total memory (paper: ~0.001).
    pub fn table_fraction(&self) -> f64 {
        self.remap_table_bytes as f64 / self.total_memory_bytes as f64
    }

    /// Size blow-up of the naive per-sub-block table over Baryon's
    /// (paper: "up to 32x growth").
    pub fn naive_blowup(&self) -> f64 {
        self.naive_subblock_table_bytes as f64 / self.remap_table_bytes as f64
    }

    /// Total controller SRAM (stage tags + remap cache; paper: 480 kB).
    pub fn total_sram_bytes(&self) -> u64 {
        self.stage_tag_bytes + self.remap_cache_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use baryon_workloads::Scale;

    fn paper() -> MetadataBudget {
        MetadataBudget::of(&BaryonConfig::default_cache_mode(Scale { divisor: 1 }))
    }

    #[test]
    fn paper_scale_sram_is_480kb() {
        let b = paper();
        assert_eq!(b.stage_tag_bytes, 448 << 10);
        assert_eq!(b.remap_cache_bytes, 32 << 10);
        assert_eq!(b.total_sram_bytes(), 480 << 10);
    }

    #[test]
    fn remap_table_is_a_tenth_of_a_percent() {
        let f = paper().table_fraction();
        assert!((0.0008..0.0011).contains(&f), "fraction {f}");
    }

    #[test]
    fn naive_scheme_blows_up_an_order_of_magnitude() {
        // 8 sub-blocks per block and a 2x bigger entry: 16x here; the
        // paper's "up to 32x" covers 64 B sub-blocking.
        let blowup = paper().naive_blowup();
        assert!((15.9..16.1).contains(&blowup), "blowup {blowup}");
        // With 64 B sub-blocks (Baryon-64B geometry) it reaches the
        // paper's headline factor.
        let mut cfg = BaryonConfig::default_cache_mode(Scale { divisor: 1 });
        cfg.geometry = crate::addr::Geometry::baryon_64b();
        let b64 = MetadataBudget::of(&cfg);
        assert!(
            b64.naive_blowup() >= 32.0,
            "64B blowup {}",
            b64.naive_blowup()
        );
    }

    #[test]
    fn naive_table_reaches_gigabytes_at_paper_scale() {
        // "can easily reach a few GB for even moderately large memory
        // capacities": 36 GB with 64 B sub-blocking.
        let mut cfg = BaryonConfig::default_cache_mode(Scale { divisor: 1 });
        cfg.geometry = crate::addr::Geometry::baryon_64b();
        let b = MetadataBudget::of(&cfg);
        assert!(
            b.naive_subblock_table_bytes >= 1 << 30,
            "naive table {} bytes",
            b.naive_subblock_table_bytes
        );
    }

    #[test]
    fn budget_scales_with_memory() {
        let big = paper();
        let small = MetadataBudget::of(&BaryonConfig::default_cache_mode(Scale { divisor: 256 }));
        assert!(big.remap_table_bytes > small.remap_table_bytes);
        // The table fraction is scale-invariant.
        assert!((big.table_fraction() - small.table_fraction()).abs() < 1e-4);
    }
}

//! Crash-consistent checkpoint files for simulation runs.
//!
//! A checkpoint captures everything needed to continue a run
//! bit-identically: the run spec (carried verbatim as JSON so the restorer
//! can rebuild an identical [`System`](crate::system::System)), the
//! workload name and seed, the operation count, and the serialized system
//! state from [`System::save_state`](crate::system::System::save_state).
//!
//! File layout (little-endian):
//!
//! ```text
//! magic  b"BCKP"        4 bytes
//! version u8            currently 1
//! len    u64            payload length in bytes
//! crc    u32            CRC-32 of the payload
//! payload               wire-encoded Checkpoint
//! ```
//!
//! The CRC framing detects torn and bit-flipped files; `frame::seal` from
//! the compress crate is not reusable here because its u16 length field
//! cannot carry multi-megabyte system states. Writes go through
//! [`atomic_write`] (temp file + rename), so a crash mid-write leaves
//! either the old checkpoint or none — never a half-written one that
//! parses.

use baryon_compress::crc::crc32;
use baryon_sim::faultfs;
use baryon_sim::wire::{Reader, WireError, Writer};
use std::fmt;
use std::io;
use std::path::{Path, PathBuf};

const MAGIC: &[u8; 4] = b"BCKP";
const VERSION: u8 = 1;
const HEADER_LEN: usize = 4 + 1 + 8 + 4;

/// Why a checkpoint could not be restored.
#[derive(Debug)]
pub enum RestoreError {
    /// The file could not be read (or written, for save paths).
    Io(io::Error),
    /// The file is not a checkpoint (wrong magic).
    BadMagic([u8; 4]),
    /// The checkpoint was written by an incompatible format version.
    BadVersion(u8),
    /// The file ends before the declared payload length (torn write).
    Truncated {
        /// Bytes the header declared.
        declared: u64,
        /// Bytes actually present.
        actual: u64,
    },
    /// The payload CRC does not match (bit rot or tampering).
    Corrupt {
        /// CRC stored in the header.
        stored: u32,
        /// CRC computed over the payload.
        computed: u32,
    },
    /// The payload failed to decode.
    Decode(WireError),
    /// The checkpoint's spec/workload/seed do not match the restorer's.
    SpecMismatch(String),
}

impl fmt::Display for RestoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RestoreError::Io(e) => write!(f, "checkpoint I/O error: {e}"),
            RestoreError::BadMagic(m) => {
                write!(
                    f,
                    "not a checkpoint file (magic {m:02x?}, expected {MAGIC:02x?})"
                )
            }
            RestoreError::BadVersion(v) => {
                write!(f, "unsupported checkpoint version {v} (expected {VERSION})")
            }
            RestoreError::Truncated { declared, actual } => {
                write!(f, "torn checkpoint: header declares {declared} payload bytes, file holds {actual}")
            }
            RestoreError::Corrupt { stored, computed } => {
                write!(
                    f,
                    "corrupt checkpoint: stored CRC {stored:#010x}, computed {computed:#010x}"
                )
            }
            RestoreError::Decode(e) => write!(f, "checkpoint payload malformed: {e}"),
            RestoreError::SpecMismatch(why) => {
                write!(f, "checkpoint does not match this run: {why}")
            }
        }
    }
}

impl std::error::Error for RestoreError {}

impl From<io::Error> for RestoreError {
    fn from(e: io::Error) -> Self {
        RestoreError::Io(e)
    }
}

impl From<WireError> for RestoreError {
    fn from(e: WireError) -> Self {
        RestoreError::Decode(e)
    }
}

/// A complete run checkpoint.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Checkpoint {
    /// The run spec as JSON, carried verbatim (the core crate treats it as
    /// opaque; the sim binary parses it to rebuild config + workload).
    pub spec_json: String,
    /// Workload name (cross-checked on restore).
    pub workload: String,
    /// Trace/content seed (cross-checked on restore).
    pub seed: u64,
    /// Operations executed when the checkpoint was taken.
    pub ops: u64,
    /// Serialized [`System`](crate::system::System) state.
    pub state: Vec<u8>,
}

impl Checkpoint {
    /// Encodes into the framed file format.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut w = Writer::new();
        w.str(&self.spec_json);
        w.str(&self.workload);
        w.u64(self.seed);
        w.u64(self.ops);
        w.bytes(&self.state);
        let payload = w.into_bytes();
        let mut out = Vec::with_capacity(HEADER_LEN + payload.len());
        out.extend_from_slice(MAGIC);
        out.push(VERSION);
        out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
        out.extend_from_slice(&crc32(&payload).to_le_bytes());
        out.extend_from_slice(&payload);
        out
    }

    /// Decodes from the framed file format, verifying magic, version,
    /// length, and CRC.
    ///
    /// # Errors
    ///
    /// Returns the precise [`RestoreError`] variant for each failure mode;
    /// never panics on hostile input.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, RestoreError> {
        if bytes.len() < HEADER_LEN {
            return Err(RestoreError::Truncated {
                declared: HEADER_LEN as u64,
                actual: bytes.len() as u64,
            });
        }
        let magic: [u8; 4] = bytes[..4].try_into().expect("4 bytes");
        if &magic != MAGIC {
            return Err(RestoreError::BadMagic(magic));
        }
        let version = bytes[4];
        if version != VERSION {
            return Err(RestoreError::BadVersion(version));
        }
        let declared = u64::from_le_bytes(bytes[5..13].try_into().expect("8 bytes"));
        let stored = u32::from_le_bytes(bytes[13..17].try_into().expect("4 bytes"));
        let payload = &bytes[HEADER_LEN..];
        if (payload.len() as u64) < declared {
            return Err(RestoreError::Truncated {
                declared,
                actual: payload.len() as u64,
            });
        }
        let payload = &payload[..declared as usize];
        let computed = crc32(payload);
        if computed != stored {
            return Err(RestoreError::Corrupt { stored, computed });
        }
        let mut r = Reader::new(payload);
        let ckpt = Checkpoint {
            spec_json: r.str()?,
            workload: r.str()?,
            seed: r.u64()?,
            ops: r.u64()?,
            state: r.bytes()?,
        };
        r.finish()?;
        Ok(ckpt)
    }

    /// Writes the checkpoint atomically to `path`.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn write_to(&self, path: &Path) -> Result<(), RestoreError> {
        atomic_write(path, &self.to_bytes())?;
        Ok(())
    }

    /// Reads and validates a checkpoint from `path`. The read goes
    /// through [`baryon_sim::faultfs`], so chaos runs exercise read-side
    /// bit flips here.
    ///
    /// # Errors
    ///
    /// Returns [`RestoreError`] for I/O failures and every malformation.
    pub fn read_from(path: &Path) -> Result<Self, RestoreError> {
        Self::from_bytes(&faultfs::read_file(path)?)
    }

    /// Writes this checkpoint into `dir` as `<prefix>-<ops>.ckpt` and
    /// prunes older rotation members beyond `keep` (newest by op count
    /// survive). Returns the written path.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors; pruning failures of individual stale
    /// files are ignored (the next rotation retries).
    pub fn save_rotating(
        &self,
        dir: &Path,
        prefix: &str,
        keep: usize,
    ) -> Result<PathBuf, RestoreError> {
        std::fs::create_dir_all(dir)?;
        let path = dir.join(format!("{prefix}-{:020}.ckpt", self.ops));
        self.write_to(&path)?;
        let mut members = rotation_members(dir, prefix)?;
        members.sort();
        let stale = members.len().saturating_sub(keep.max(1));
        for old in &members[..stale] {
            let _ = std::fs::remove_file(old);
        }
        Ok(path)
    }

    /// The newest rotation member in `dir` for `prefix` that actually
    /// parses, if any. Unreadable or corrupt members are skipped (left in
    /// place), never returned and never an error: a rotting newest
    /// checkpoint must cost at most some replay, not the restore.
    ///
    /// # Errors
    ///
    /// Propagates directory-read failures (a missing directory is `None`).
    pub fn latest_in(dir: &Path, prefix: &str) -> Result<Option<PathBuf>, RestoreError> {
        Ok(Self::latest_valid_in_impl(dir, prefix, false)?.newest_valid)
    }

    /// The fallback ladder: like [`Checkpoint::latest_in`], but corrupt
    /// members newer than the returned one are *quarantined* — renamed
    /// with a `.bad` suffix so they leave the rotation and can be
    /// inspected post-mortem — and counted in the returned
    /// [`ValidScan::quarantined`].
    ///
    /// # Errors
    ///
    /// Propagates directory-read failures (a missing directory is an
    /// empty scan).
    pub fn latest_valid_in(dir: &Path, prefix: &str) -> Result<ValidScan, RestoreError> {
        Self::latest_valid_in_impl(dir, prefix, true)
    }

    fn latest_valid_in_impl(
        dir: &Path,
        prefix: &str,
        quarantine: bool,
    ) -> Result<ValidScan, RestoreError> {
        let mut scan = ValidScan::default();
        if !dir.exists() {
            return Ok(scan);
        }
        let mut members = rotation_members(dir, prefix)?;
        members.sort();
        for path in members.into_iter().rev() {
            match Checkpoint::read_from(&path) {
                Ok(_) => {
                    scan.newest_valid = Some(path);
                    return Ok(scan);
                }
                Err(_) => {
                    scan.quarantined += 1;
                    if quarantine {
                        let bad = path.with_file_name(format!(
                            "{}.bad",
                            path.file_name().and_then(|n| n.to_str()).unwrap_or("ckpt")
                        ));
                        // Best effort: a failed rename still skips the file.
                        let _ = std::fs::rename(&path, &bad);
                    }
                }
            }
        }
        Ok(scan)
    }
}

/// Result of a [`Checkpoint::latest_valid_in`] ladder scan.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ValidScan {
    /// The newest member that parsed, if any survived.
    pub newest_valid: Option<PathBuf>,
    /// How many newer members failed validation (and, for
    /// `latest_valid_in`, were renamed `.bad`).
    pub quarantined: u64,
}

fn rotation_members(dir: &Path, prefix: &str) -> Result<Vec<PathBuf>, RestoreError> {
    let mut members = Vec::new();
    for entry in std::fs::read_dir(dir)? {
        let path = entry?.path();
        let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
        if name.starts_with(prefix) && name.ends_with(".ckpt") {
            members.push(path);
        }
    }
    Ok(members)
}

/// Writes `bytes` to `path` via a temporary sibling file and an atomic
/// rename, so readers never observe a partially written file. Shared by
/// checkpoints and the result-JSON writers.
///
/// # Errors
///
/// Propagates filesystem errors (the temp file is cleaned up on failure).
pub fn atomic_write(path: &Path, bytes: &[u8]) -> io::Result<()> {
    let tmp = match path.file_name().and_then(|n| n.to_str()) {
        Some(name) => path.with_file_name(format!("{name}.tmp")),
        None => {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                format!("not a file path: {}", path.display()),
            ))
        }
    };
    // Through faultfs: chaos runs inject ENOSPC / short writes / silent
    // corruption here, underneath every checkpoint and result-JSON write.
    faultfs::write_file(&tmp, bytes).inspect_err(|_| {
        let _ = std::fs::remove_file(&tmp);
    })?;
    std::fs::rename(&tmp, path).inspect_err(|_| {
        let _ = std::fs::remove_file(&tmp);
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Checkpoint {
        Checkpoint {
            spec_json: r#"{"workload":"505.mcf_r"}"#.to_owned(),
            workload: "505.mcf_r".to_owned(),
            seed: 12345,
            ops: 40_000,
            state: (0..=255u8).cycle().take(4096).collect(),
        }
    }

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("baryon-ckpt-test-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("create temp dir");
        dir
    }

    #[test]
    fn roundtrip() {
        let c = sample();
        let loaded = Checkpoint::from_bytes(&c.to_bytes()).expect("own output loads");
        assert_eq!(loaded, c);
    }

    #[test]
    fn truncation_at_every_boundary_is_detected() {
        let bytes = sample().to_bytes();
        for cut in 0..bytes.len() {
            let err = Checkpoint::from_bytes(&bytes[..cut]).expect_err("torn file");
            assert!(
                matches!(err, RestoreError::Truncated { .. }),
                "cut at {cut}: {err}"
            );
        }
    }

    #[test]
    fn every_single_byte_flip_in_payload_is_detected() {
        let c = sample();
        let base = c.to_bytes();
        for i in (HEADER_LEN..base.len()).step_by(97) {
            let mut bytes = base.clone();
            bytes[i] ^= 0x40;
            assert!(
                matches!(
                    Checkpoint::from_bytes(&bytes),
                    Err(RestoreError::Corrupt { .. })
                ),
                "flip at {i} undetected"
            );
        }
    }

    #[test]
    fn bad_magic_and_version_rejected() {
        let mut bytes = sample().to_bytes();
        bytes[0] = b'X';
        assert!(matches!(
            Checkpoint::from_bytes(&bytes),
            Err(RestoreError::BadMagic(_))
        ));
        let mut bytes = sample().to_bytes();
        bytes[4] = 99;
        assert!(matches!(
            Checkpoint::from_bytes(&bytes),
            Err(RestoreError::BadVersion(99))
        ));
    }

    #[test]
    fn trailing_garbage_after_payload_rejected() {
        let mut bytes = sample().to_bytes();
        bytes.push(0xAB);
        // The declared length bounds the payload, so trailing bytes are
        // ignored by design (rotation-safe); the CRC still covers the
        // declared payload exactly.
        assert!(Checkpoint::from_bytes(&bytes).is_ok());
    }

    #[test]
    fn atomic_write_replaces_and_leaves_no_temp() {
        let dir = tmp_dir("atomic");
        let path = dir.join("out.bin");
        atomic_write(&path, b"first").expect("write");
        atomic_write(&path, b"second").expect("overwrite");
        assert_eq!(std::fs::read(&path).expect("read"), b"second");
        let names: Vec<String> = std::fs::read_dir(&dir)
            .expect("dir")
            .map(|e| e.expect("entry").file_name().to_string_lossy().into_owned())
            .collect();
        assert_eq!(names, ["out.bin"], "no temp files left behind");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn rotation_keeps_newest_k() {
        let dir = tmp_dir("rotate");
        let mut c = sample();
        for ops in [100u64, 200, 300, 400] {
            c.ops = ops;
            c.save_rotating(&dir, "run", 2).expect("save");
        }
        let latest = Checkpoint::latest_in(&dir, "run")
            .expect("scan")
            .expect("exists");
        assert_eq!(Checkpoint::read_from(&latest).expect("load").ops, 400);
        let count = std::fs::read_dir(&dir).expect("dir").count();
        assert_eq!(count, 2, "older members pruned");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn latest_in_missing_dir_is_none() {
        let dir = std::env::temp_dir().join("baryon-ckpt-test-definitely-missing");
        assert!(Checkpoint::latest_in(&dir, "run").expect("ok").is_none());
    }

    /// Writes rotation members at the given op counts, then corrupts the
    /// members whose op counts appear in `rot`.
    fn seeded_rotation(dir: &Path, ops_list: &[u64], rot: &[u64]) {
        let mut c = sample();
        for &ops in ops_list {
            c.ops = ops;
            c.save_rotating(dir, "run", ops_list.len()).expect("save");
        }
        for &ops in rot {
            let path = dir.join(format!("run-{ops:020}.ckpt"));
            let mut bytes = std::fs::read(&path).expect("member exists");
            let mid = bytes.len() / 2;
            bytes[mid] ^= 0xFF;
            std::fs::write(&path, &bytes).expect("corrupt");
        }
    }

    #[test]
    fn latest_in_skips_corrupt_members_without_touching_them() {
        let dir = tmp_dir("skip-corrupt");
        seeded_rotation(&dir, &[100, 200, 300], &[300]);
        let latest = Checkpoint::latest_in(&dir, "run")
            .expect("scan")
            .expect("an older member parses");
        assert_eq!(Checkpoint::read_from(&latest).expect("load").ops, 200);
        // Non-quarantining scan leaves the corrupt file in place.
        assert!(dir.join(format!("run-{:020}.ckpt", 300u64)).exists());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn latest_in_skips_garbage_files_in_rotation() {
        let dir = tmp_dir("skip-garbage");
        seeded_rotation(&dir, &[100], &[]);
        // A zero-byte file and a non-checkpoint blob sort newest.
        std::fs::write(dir.join(format!("run-{:020}.ckpt", 500u64)), b"").expect("empty");
        std::fs::write(dir.join(format!("run-{:020}.ckpt", 400u64)), b"not a ckpt")
            .expect("garbage");
        let latest = Checkpoint::latest_in(&dir, "run")
            .expect("scan")
            .expect("valid member found");
        assert_eq!(Checkpoint::read_from(&latest).expect("load").ops, 100);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn latest_valid_in_quarantines_newer_corruption() {
        let dir = tmp_dir("quarantine");
        seeded_rotation(&dir, &[100, 200, 300, 400], &[300, 400]);
        let scan = Checkpoint::latest_valid_in(&dir, "run").expect("scan");
        assert_eq!(scan.quarantined, 2);
        let survivor = scan.newest_valid.expect("gen 200 survives");
        assert_eq!(Checkpoint::read_from(&survivor).expect("load").ops, 200);
        // The corrupt members left the rotation under a .bad suffix …
        assert!(dir.join(format!("run-{:020}.ckpt.bad", 400u64)).exists());
        assert!(dir.join(format!("run-{:020}.ckpt.bad", 300u64)).exists());
        // … so the next scan is clean.
        let rescan = Checkpoint::latest_valid_in(&dir, "run").expect("rescan");
        assert_eq!(rescan.quarantined, 0);
        assert_eq!(rescan.newest_valid.as_deref(), Some(survivor.as_path()));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn fully_rotten_rotation_scans_to_empty() {
        let dir = tmp_dir("all-rotten");
        seeded_rotation(&dir, &[100, 200], &[100, 200]);
        let scan = Checkpoint::latest_valid_in(&dir, "run").expect("scan");
        assert_eq!(scan.newest_valid, None);
        assert_eq!(scan.quarantined, 2, "both members quarantined");
        let _ = std::fs::remove_dir_all(&dir);
    }
}

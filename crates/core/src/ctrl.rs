//! The memory-controller interface shared by Baryon and all baselines.

use baryon_mem::{DeviceConfig, MemDevice};
use baryon_sim::telemetry::Registry;
use baryon_sim::wire::{Reader, WireError, Writer};
use baryon_sim::Cycle;
use baryon_workloads::MemoryContents;

/// A demand read reaching the memory controller (an LLC fill request).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Request {
    /// OS-physical byte address (64 B aligned by the driver).
    pub addr: u64,
    /// Issuing core (for statistics only).
    pub core: usize,
}

/// The controller's answer to a demand read.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Response {
    /// Memory-side latency of the demanded 64 B line, in cycles.
    pub latency: Cycle,
    /// True if the demanded line was served from fast memory.
    pub served_by_fast: bool,
    /// Additional 64 B line addresses that arrived "for free" (e.g.
    /// co-decompressed neighbours) and should be installed into the LLC.
    pub extra_lines: Vec<u64>,
}

/// A hybrid-memory controller: Baryon or one of the baselines.
///
/// The driver calls [`MemoryController::read`] for every LLC miss and
/// [`MemoryController::writeback`] for every dirty 64 B line the LLC evicts.
/// Writebacks are posted (they do not stall cores) but consume device
/// bandwidth and may trigger overflow handling.
pub trait MemoryController {
    /// Handles a demand read of the 64 B line at `req.addr`.
    fn read(&mut self, now: Cycle, req: Request, mem: &mut MemoryContents) -> Response;

    /// Handles a dirty 64 B line written back from the LLC. Returns the
    /// cycle at which the write's device work completes: writebacks are
    /// posted (they do not stall the issuing load path) but the driver
    /// bounds how many may be outstanding per core, so sustained write
    /// streams feel memory bandwidth.
    fn writeback(&mut self, now: Cycle, addr: u64, mem: &mut MemoryContents) -> Cycle;

    /// Aggregate serve/traffic statistics.
    fn serve_stats(&self) -> ServeStats;

    /// Publishes every internal counter into the unified telemetry
    /// registry under `component.metric` names (the driver absorbs the
    /// result under a `ctrl.` prefix).
    fn export(&self, reg: &mut Registry);

    /// Resets statistics after warm-up (state is kept).
    fn reset_stats(&mut self);

    /// Short display name (e.g. `"baryon"`, `"unison"`).
    fn name(&self) -> &str;
}

/// Serve-rate and traffic summary used by Fig 9–11.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ServeStats {
    /// Demand reads handled.
    pub reads: u64,
    /// Demand reads served by fast memory.
    pub fast_served: u64,
    /// Dirty line writebacks received.
    pub writebacks: u64,
    /// Useful bytes exchanged with the LLC (64 B per read/writeback plus
    /// prefetched lines actually installed).
    pub useful_bytes: u64,
    /// Total fast-memory device traffic in bytes.
    pub fast_bytes: u64,
    /// Total slow-memory device traffic in bytes.
    pub slow_bytes: u64,
    /// Total memory-system energy in picojoules.
    pub energy_pj: f64,
}

impl ServeStats {
    /// Fraction of demand reads served by fast memory (Fig 11 left).
    pub fn fast_serve_rate(&self) -> f64 {
        if self.reads == 0 {
            0.0
        } else {
            self.fast_served as f64 / self.reads as f64
        }
    }

    /// Fast-memory bandwidth bloat factor (Fig 11 right): total fast traffic
    /// over useful LLC traffic.
    pub fn bloat_factor(&self) -> f64 {
        if self.useful_bytes == 0 {
            0.0
        } else {
            self.fast_bytes as f64 / self.useful_bytes as f64
        }
    }

    /// Publishes into the unified telemetry [`Registry`] (the driver
    /// absorbs the result under `ctrl.serve.`).
    pub fn export(&self, reg: &mut Registry) {
        reg.set_counter("reads", self.reads);
        reg.set_counter("fast_served", self.fast_served);
        reg.set_counter("writebacks", self.writebacks);
        reg.set_counter("useful_bytes", self.useful_bytes);
        reg.set_counter("fast_bytes", self.fast_bytes);
        reg.set_counter("slow_bytes", self.slow_bytes);
        reg.set_gauge("energy_pj", self.energy_pj);
        reg.set_gauge("fast_serve_rate", self.fast_serve_rate());
        reg.set_gauge("bloat_factor", self.bloat_factor());
    }
}

/// The fast + slow device pair owned by every controller.
#[derive(Debug, Clone)]
pub struct Devices {
    /// DDR4 fast memory.
    pub fast: MemDevice,
    /// NVM slow memory.
    pub slow: MemDevice,
}

impl Devices {
    /// Creates the Table I device pair.
    pub fn table1() -> Self {
        Devices {
            fast: MemDevice::new(DeviceConfig::ddr4_3200()),
            slow: MemDevice::new(DeviceConfig::nvm()),
        }
    }

    /// Total energy across both devices.
    pub fn energy_pj(&self) -> f64 {
        self.fast.stats().energy_pj + self.slow.stats().energy_pj
    }

    /// Resets both devices' statistics.
    pub fn reset_stats(&mut self) {
        self.fast.reset_stats();
        self.slow.reset_stats();
    }

    /// Publishes both devices' statistics under `fast.` / `slow.` prefixes.
    pub fn export(&self, reg: &mut Registry) {
        let mut f = Registry::new();
        self.fast.stats().export(&mut f);
        reg.absorb("fast", &f);
        let mut s = Registry::new();
        self.slow.stats().export(&mut s);
        reg.absorb("slow", &s);
    }

    /// Serializes both devices' mutable state for checkpointing.
    pub fn save_state(&self, w: &mut Writer) {
        self.fast.save_state(w);
        self.slow.save_state(w);
    }

    /// Overlays checkpointed state onto this freshly constructed pair.
    ///
    /// # Errors
    ///
    /// Returns [`WireError`] on a truncated payload or geometry mismatch.
    pub fn load_state(&mut self, r: &mut Reader<'_>) -> Result<(), WireError> {
        self.fast.load_state(r)?;
        self.slow.load_state(r)
    }
}

/// Convenience used by controllers to keep `ServeStats` consistent.
#[derive(Debug, Clone, Copy, Default)]
pub struct ServeCounter {
    pub(crate) reads: u64,
    pub(crate) fast_served: u64,
    pub(crate) writebacks: u64,
    pub(crate) useful_bytes: u64,
}

impl ServeCounter {
    /// Records a demand read and whether fast memory served it.
    pub fn record_read(&mut self, fast: bool) {
        self.reads += 1;
        self.useful_bytes += 64;
        if fast {
            self.fast_served += 1;
        }
    }

    /// Records extra prefetched lines delivered to the LLC.
    pub fn record_prefetch_lines(&mut self, n: usize) {
        self.useful_bytes += 64 * n as u64;
    }

    /// Records a dirty writeback from the LLC.
    pub fn record_writeback(&mut self) {
        self.writebacks += 1;
        self.useful_bytes += 64;
    }

    /// Combines with device traffic into a [`ServeStats`].
    pub fn finish(&self, devices: &Devices) -> ServeStats {
        ServeStats {
            reads: self.reads,
            fast_served: self.fast_served,
            writebacks: self.writebacks,
            useful_bytes: self.useful_bytes,
            fast_bytes: devices.fast.stats().total_bytes(),
            slow_bytes: devices.slow.stats().total_bytes(),
            energy_pj: devices.energy_pj(),
        }
    }

    /// Clears the counters.
    pub fn reset(&mut self) {
        *self = ServeCounter::default();
    }

    /// Serializes the counters for checkpointing.
    pub fn save_state(&self, w: &mut Writer) {
        w.u64(self.reads);
        w.u64(self.fast_served);
        w.u64(self.writebacks);
        w.u64(self.useful_bytes);
    }

    /// Restores the counters from a checkpoint.
    ///
    /// # Errors
    ///
    /// Returns [`WireError`] on a truncated payload.
    pub fn load_state(&mut self, r: &mut Reader<'_>) -> Result<(), WireError> {
        self.reads = r.u64()?;
        self.fast_served = r.u64()?;
        self.writebacks = r.u64()?;
        self.useful_bytes = r.u64()?;
        Ok(())
    }
}

/// A placeholder contents object for unit tests that do not care about data.
#[doc(hidden)]
pub fn test_contents() -> MemoryContents {
    use baryon_workloads::{ProfileMix, ValueProfile};
    MemoryContents::new(ProfileMix::pure(ValueProfile::NarrowInt), 7)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serve_rate_and_bloat() {
        let s = ServeStats {
            reads: 10,
            fast_served: 7,
            writebacks: 0,
            useful_bytes: 640,
            fast_bytes: 1920,
            slow_bytes: 0,
            energy_pj: 0.0,
        };
        assert!((s.fast_serve_rate() - 0.7).abs() < 1e-12);
        assert!((s.bloat_factor() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn empty_stats_are_zero() {
        let s = ServeStats::default();
        assert_eq!(s.fast_serve_rate(), 0.0);
        assert_eq!(s.bloat_factor(), 0.0);
    }

    #[test]
    fn counter_tracks_useful_bytes() {
        let mut c = ServeCounter::default();
        c.record_read(true);
        c.record_read(false);
        c.record_prefetch_lines(3);
        c.record_writeback();
        let d = Devices::table1();
        let s = c.finish(&d);
        assert_eq!(s.reads, 2);
        assert_eq!(s.fast_served, 1);
        assert_eq!(s.writebacks, 1);
        assert_eq!(s.useful_bytes, 64 * (2 + 3 + 1));
    }

    #[test]
    fn devices_energy_sums() {
        let mut d = Devices::table1();
        d.fast.access(0, 0, 64, false);
        d.slow.access(0, 0, 64, false);
        let total = d.energy_pj();
        assert!(total > 0.0);
        assert!((total - d.fast.stats().energy_pj - d.slow.stats().energy_pj).abs() < 1e-9);
    }
}

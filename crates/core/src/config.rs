//! Baryon controller configuration.

use crate::addr::Geometry;
use baryon_mem::FaultConfig;
use baryon_sim::Cycle;
use baryon_workloads::Scale;
use std::error::Error;
use std::fmt;

/// How the fast memory is exposed (§II-A).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HybridMode {
    /// Fast memory is an OS-invisible cache; the OS-physical space equals
    /// the slow memory.
    Cache,
    /// Fast memory is part of the OS-physical space (fully-associative in
    /// this implementation, matching the paper's evaluated Baryon-FA/Hybrid2
    /// flat configurations).
    Flat,
    /// A static combination: part of the fast data area is OS-visible flat
    /// space, the rest is an OS-invisible cache (§III-A: the fast memory
    /// "can be flexibly (but statically) partitioned into cache and flat
    /// areas"). Fully-associative, like the flat scheme.
    Mixed,
}

/// Victim selection for the cache/flat data area (§III-E notes the choice
/// is orthogonal to Baryon; the paper uses LRU for low-associative
/// configurations and FIFO for high-associative ones).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VictimPolicy {
    /// The paper's default: LRU when low-associative, FIFO when
    /// fully-associative.
    Auto,
    /// Least-recently-used.
    Lru,
    /// Insertion-order FIFO.
    Fifo,
    /// Deterministic pseudo-random.
    Random,
    /// CLOCK (second-chance) approximation of LRU.
    Clock,
    /// Least-frequently-used (decayed access counts).
    Lfu,
}

/// A violated configuration invariant, typed so callers can branch on the
/// exact constraint instead of grepping message text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ConfigError {
    /// The block/sub-block/super-block geometry is inconsistent.
    Geometry(String),
    /// `fast_bytes` or `slow_bytes` is zero.
    ZeroCapacity,
    /// A capacity is not a multiple of the block size.
    MisalignedCapacity,
    /// A non-zero stage area holds fewer blocks than one set.
    StageSmallerThanSet,
    /// `stage_ways` is zero.
    ZeroStageWays,
    /// `assoc` is zero.
    ZeroAssoc,
    /// Stage area plus metadata consume the whole fast memory.
    NoDataArea,
    /// `commit_k` is negative.
    NegativeCommitK,
    /// A flat or mixed mode with set-associative (non-FA) organization.
    LowAssocFlat,
    /// A mixed mode whose `flat_fraction` is not strictly inside (0, 1).
    BadFlatFraction,
    /// A fault-injection config is invalid; `device` is `"fault_fast"` or
    /// `"fault_slow"`.
    Fault {
        /// Which device's fault config failed.
        device: &'static str,
        /// The underlying fault-config error.
        reason: String,
    },
    /// A multi-level remap `region_blocks` that is zero, not a power of
    /// two, or not a multiple of `blocks_per_super`.
    BadRemapRegion,
    /// A multi-level remap with a zero-byte hot-level cache.
    ZeroHotCache,
    /// A controller-family name with no entry in the
    /// [`FamilyId`](crate::family::FamilyId) registry.
    UnknownFamily(String),
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid configuration: ")?;
        match self {
            ConfigError::Geometry(reason) => f.write_str(reason),
            ConfigError::ZeroCapacity => f.write_str("memory capacities must be non-zero"),
            ConfigError::MisalignedCapacity => f.write_str("capacities must be block-aligned"),
            ConfigError::StageSmallerThanSet => f.write_str("stage area smaller than one set"),
            ConfigError::ZeroStageWays => f.write_str("stage_ways must be non-zero"),
            ConfigError::ZeroAssoc => f.write_str("assoc must be non-zero"),
            ConfigError::NoDataArea => {
                f.write_str("metadata and stage area leave no fast memory for data")
            }
            ConfigError::NegativeCommitK => f.write_str("commit_k must be non-negative"),
            ConfigError::LowAssocFlat => f.write_str(
                "flat/mixed modes are only supported fully-associative \
                 (the paper's evaluated configuration)",
            ),
            ConfigError::BadFlatFraction => {
                f.write_str("mixed mode needs flat_fraction strictly between 0 and 1")
            }
            ConfigError::Fault { device, reason } => write!(f, "{device}: {reason}"),
            ConfigError::BadRemapRegion => f.write_str(
                "multi-level remap region_blocks must be a power of two \
                 and a multiple of blocks_per_super",
            ),
            ConfigError::ZeroHotCache => {
                f.write_str("multi-level remap needs a non-zero hot-level cache")
            }
            ConfigError::UnknownFamily(name) => {
                write!(f, "unknown controller family `{name}`")
            }
        }
    }
}

/// Which remap metadata structure the controller embeds (the
/// [`RemapStore`](crate::remap::RemapStore) family).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RemapKind {
    /// Baryon's flat table: one 2 B entry per OS block, fully
    /// provisioned in fast memory (§III-C).
    Flat,
    /// The Trimma-style non-uniform multi-level structure: a coarse
    /// root level covers unmigrated regions with one entry; fine leaf
    /// tables exist only where blocks have actually moved.
    MultiLevel {
        /// OS blocks per leaf region (power of two, multiple of
        /// `blocks_per_super`).
        region_blocks: u64,
        /// Hot-level cache capacity in bytes (split between root and
        /// leaf lines).
        hot_bytes: u64,
        /// Hot-level cache hit latency in cycles.
        hot_latency: Cycle,
    },
}

impl RemapKind {
    /// The default Trimma-style parameters: 512-block regions (1 MB of
    /// OS space in the default geometry), an 8 kB hot-level cache, and
    /// a 2-cycle hot hit.
    pub fn default_multi_level() -> Self {
        RemapKind::MultiLevel {
            region_blocks: 512,
            hot_bytes: 8 << 10,
            hot_latency: 2,
        }
    }
}

impl Error for ConfigError {}

/// Full configuration of the Baryon controller.
///
/// Every Fig 12/Fig 13 ablation is a field here; the `default_*`
/// constructors give the paper's default design points.
#[derive(Debug, Clone, PartialEq)]
pub struct BaryonConfig {
    /// Block / sub-block / super-block sizes.
    pub geometry: Geometry,
    /// Cache or flat scheme.
    pub mode: HybridMode,
    /// Total fast-memory capacity (stage area + metadata + data area).
    pub fast_bytes: u64,
    /// Total slow-memory capacity.
    pub slow_bytes: u64,
    /// Stage-area capacity (paper default 64 MB at 4 GB fast; scaled here).
    /// Zero disables the stage area (the Fig 13(c) "no stage" ablation).
    pub stage_bytes: u64,
    /// Stage-area associativity (paper: 4).
    pub stage_ways: usize,
    /// Cache/flat-area associativity: fast blocks per set (paper: 4).
    /// `usize::MAX` selects the fully-associative Baryon-FA organization.
    pub assoc: usize,
    /// Selective-commit weight `k` (Eq. 1; paper default 4).
    /// `f64::INFINITY` selects the stability-only policy.
    pub commit_k: f64,
    /// Commit every stage victim regardless of the cost model (Fig 13(d)).
    pub commit_all: bool,
    /// Enforce cacheline-aligned compression (§III-E; default true).
    pub cacheline_aligned: bool,
    /// Enable the `Z`-bit all-zero range optimization (default true).
    pub zero_opt: bool,
    /// Also try the C-Pack compressor next to FPC/BDI (default false; an
    /// extension beyond the paper's hardware, §III-B "alternative schemes").
    pub use_cpack: bool,
    /// Keep data compressed on fast-to-slow writeback (§III-F; default true).
    pub compressed_writeback: bool,
    /// Allow block-level stage replacements (default true; false restricts
    /// the stage area to sub-block-only replacement, the Fig 13(a) ablation).
    pub two_level_replacement: bool,
    /// Decompression latency on the critical path (paper: 5 cycles).
    pub decompress_cycles: Cycle,
    /// Stage tag array lookup latency (Table I: 5 cycles).
    pub stage_tag_latency: Cycle,
    /// Remap cache hit latency (Table I: 3 cycles).
    pub remap_cache_latency: Cycle,
    /// Remap cache capacity in bytes (paper: 32 kB; fixed SRAM, not scaled).
    pub remap_cache_bytes: u64,
    /// Counter-aging period for the selective-commit counters (per-set
    /// accesses between right-shifts; paper: 10000).
    pub aging_period: u64,
    /// Cache/flat-area victim selection policy.
    pub victim_policy: VictimPolicy,
    /// Fraction of the data area that is OS-visible flat space in
    /// [`HybridMode::Mixed`] (ignored otherwise).
    pub flat_fraction: f64,
    /// Fault injection on the fast (DDR4) device. Disabled by default;
    /// enabling it activates the controller's detection/recovery paths.
    pub fault_fast: FaultConfig,
    /// Fault injection on the slow (NVM) device.
    pub fault_slow: FaultConfig,
    /// Demand reads between metadata-scrub passes (0 disables scrubbing).
    pub scrub_interval: u64,
    /// Remap metadata structure: the classic flat table, or the
    /// Trimma-style multi-level store (the `trimma` family).
    pub remap: RemapKind,
}

impl BaryonConfig {
    /// The default stage-area size at a scale. The paper uses 64 MB of the
    /// 4 GB fast memory; when capacities scale down the core count does
    /// not, so stage *residency time* (what Fig 4 shows stabilizing
    /// layouts) must be protected with a floor of `min(2 MB, fast/8)`
    /// (see DESIGN.md, "Scaling").
    pub fn default_stage_bytes(scale: Scale) -> u64 {
        let proportional = (64 << 20) / scale.divisor;
        let floor = (2 << 20).min(scale.fast_bytes() / 8);
        proportional.max(floor) & !2047
    }

    /// The paper's default cache-mode design point at a given scale:
    /// 4-way cache area, 256 B sub-blocks, 64 MB-equivalent stage area,
    /// k = 4, all optimizations on.
    pub fn default_cache_mode(scale: Scale) -> Self {
        BaryonConfig {
            geometry: Geometry::baryon_default(),
            mode: HybridMode::Cache,
            fast_bytes: scale.fast_bytes(),
            slow_bytes: scale.slow_bytes(),
            stage_bytes: Self::default_stage_bytes(scale),
            // Table I uses 4-way staging over 8192 sets. Scaled-down stage
            // areas have far fewer sets for the same 16 cores, so active
            // streams collide and commit mid-fill; 8 ways at the same
            // capacity removes that artifact (see DESIGN.md).
            stage_ways: if scale.divisor > 4 { 8 } else { 4 },
            assoc: 4,
            commit_k: 4.0,
            commit_all: false,
            cacheline_aligned: true,
            zero_opt: true,
            use_cpack: false,
            compressed_writeback: true,
            two_level_replacement: true,
            decompress_cycles: 5,
            stage_tag_latency: 5,
            remap_cache_latency: 3,
            remap_cache_bytes: 32 << 10,
            aging_period: 10_000,
            victim_policy: VictimPolicy::Auto,
            flat_fraction: 0.0,
            fault_fast: FaultConfig::default(),
            fault_slow: FaultConfig::default(),
            scrub_interval: 0,
            remap: RemapKind::Flat,
        }
    }

    /// The `trimma` design point: the cache-mode controller with the
    /// flat remap table swapped for the Trimma-style multi-level store.
    /// Regions of 512 blocks (1 MB of OS space in the default geometry)
    /// keep the root level tiny; an 8 kB hot-level cache resolves both
    /// levels on-chip in 2 cycles — smaller and faster than the 32 kB /
    /// 3-cycle flat remap cache because it only needs reach over live
    /// leaves plus root lines.
    pub fn default_trimma(scale: Scale) -> Self {
        BaryonConfig {
            remap: RemapKind::default_multi_level(),
            ..Self::default_cache_mode(scale)
        }
    }

    /// The fully-associative flat-mode design point (Baryon-FA, Fig 10).
    pub fn default_flat_fa(scale: Scale) -> Self {
        BaryonConfig {
            mode: HybridMode::Flat,
            assoc: usize::MAX,
            flat_fraction: 1.0,
            ..Self::default_cache_mode(scale)
        }
    }

    /// A static cache + flat combination (§III-A): `flat_fraction` of the
    /// data area is OS-visible, the rest serves as a cache.
    ///
    /// # Panics
    ///
    /// Panics unless `flat_fraction` is within (0, 1). Use
    /// [`BaryonConfig::builder`] with [`BaryonConfigBuilder::mixed`] for
    /// the fallible version.
    pub fn default_mixed(scale: Scale, flat_fraction: f64) -> Self {
        Self::builder(scale)
            .mixed(flat_fraction)
            .build()
            .expect("mixed mode needs a flat fraction strictly between 0 and 1")
    }

    /// True if the cache/flat area is fully associative.
    pub fn is_fully_associative(&self) -> bool {
        self.assoc == usize::MAX || self.assoc >= self.data_blocks()
    }

    /// Stage-area capacity in 2 kB physical blocks.
    pub fn stage_blocks(&self) -> usize {
        (self.stage_bytes / self.geometry.block_bytes) as usize
    }

    /// Stage-area sets.
    pub fn stage_sets(&self) -> usize {
        (self.stage_blocks() / self.stage_ways).max(1)
    }

    /// Bytes of fast memory consumed by the off-chip remap table
    /// (2 B per data block over the whole OS-physical space).
    pub fn remap_table_bytes(&self) -> u64 {
        let total_blocks = (self.fast_bytes + self.slow_bytes) / self.geometry.block_bytes;
        total_blocks * 2
    }

    /// Bytes of fast memory *reserved* for the remap structure. The flat
    /// table reserves exactly [`BaryonConfig::remap_table_bytes`]; the
    /// multi-level store additionally reserves its root level (and sizes
    /// the leaf pool for the worst case where every region has a leaf,
    /// padded to whole super-block lines). The runtime footprint of the
    /// multi-level store is usually far below this reservation — that
    /// delta is what `BENCH_metadata.json` measures.
    pub fn remap_reserved_bytes(&self) -> u64 {
        match self.remap {
            RemapKind::Flat => self.remap_table_bytes(),
            RemapKind::MultiLevel { region_blocks, .. } => {
                let bps = self.geometry.blocks_per_super.max(1);
                let line = (bps * 2).next_power_of_two().max(16);
                let total_blocks = (self.fast_bytes + self.slow_bytes) / self.geometry.block_bytes;
                let regions = total_blocks.div_ceil(region_blocks.max(1));
                let leaf_bytes = region_blocks.max(1) / bps * line;
                (regions * 2).next_multiple_of(64) + regions * leaf_bytes
            }
        }
    }

    /// Fast-memory bytes left for the cache/flat data area.
    pub fn data_area_bytes(&self) -> u64 {
        let meta = self.stage_bytes + self.remap_reserved_bytes();
        self.fast_bytes.saturating_sub(meta) / self.geometry.block_bytes * self.geometry.block_bytes
    }

    /// Fast data-area capacity in blocks.
    pub fn data_blocks(&self) -> usize {
        (self.data_area_bytes() / self.geometry.block_bytes) as usize
    }

    /// Number of cache/flat-area sets.
    pub fn num_sets(&self) -> usize {
        if self.is_fully_associative() {
            1
        } else {
            (self.data_blocks() / self.assoc).max(1)
        }
    }

    /// Effective associativity (ways per set).
    pub fn effective_assoc(&self) -> usize {
        if self.is_fully_associative() {
            self.data_blocks()
        } else {
            self.assoc
        }
    }

    /// Fast data-area blocks that are OS-visible flat space.
    pub fn flat_blocks(&self) -> u64 {
        match self.mode {
            HybridMode::Cache => 0,
            HybridMode::Flat => self.data_blocks() as u64,
            HybridMode::Mixed => (self.data_blocks() as f64 * self.flat_fraction).floor() as u64,
        }
    }

    /// OS-physical space in bytes: slow memory only (cache mode) or the
    /// flat fast area plus slow memory (flat/mixed modes).
    pub fn os_space_bytes(&self) -> u64 {
        self.flat_blocks() * self.geometry.block_bytes + self.slow_bytes
    }

    /// Total OS-visible blocks.
    pub fn os_blocks(&self) -> u64 {
        self.os_space_bytes() / self.geometry.block_bytes
    }

    /// On-chip SRAM budget: (stage tag array bytes, remap cache bytes).
    ///
    /// Stage tag entries are 14 B each in the default geometry (§III-B);
    /// with other geometries the entry grows/shrinks with the number of
    /// sub-block slots (1 B per slot field plus the 6 B of tag/valid/LRU/
    /// FIFO/MissCnt bookkeeping).
    pub fn sram_budget(&self) -> (u64, u64) {
        let slot_fields = self.geometry.subs_per_block() as u64;
        let entry_bytes = 6 + slot_fields;
        (
            self.stage_blocks() as u64 * entry_bytes,
            self.remap_cache_bytes,
        )
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] describing the first violated constraint.
    pub fn validate(&self) -> Result<(), ConfigError> {
        self.geometry.validate().map_err(ConfigError::Geometry)?;
        if self.fast_bytes == 0 || self.slow_bytes == 0 {
            return Err(ConfigError::ZeroCapacity);
        }
        if !self.fast_bytes.is_multiple_of(self.geometry.block_bytes)
            || !self.slow_bytes.is_multiple_of(self.geometry.block_bytes)
        {
            return Err(ConfigError::MisalignedCapacity);
        }
        if self.stage_bytes > 0 && self.stage_blocks() < self.stage_ways {
            return Err(ConfigError::StageSmallerThanSet);
        }
        if self.stage_ways == 0 {
            return Err(ConfigError::ZeroStageWays);
        }
        if self.assoc == 0 {
            return Err(ConfigError::ZeroAssoc);
        }
        if self.data_blocks() == 0 {
            return Err(ConfigError::NoDataArea);
        }
        if self.commit_k < 0.0 {
            return Err(ConfigError::NegativeCommitK);
        }
        if matches!(self.mode, HybridMode::Flat | HybridMode::Mixed) && !self.is_fully_associative()
        {
            return Err(ConfigError::LowAssocFlat);
        }
        if matches!(self.mode, HybridMode::Mixed)
            && !(self.flat_fraction > 0.0 && self.flat_fraction < 1.0)
        {
            return Err(ConfigError::BadFlatFraction);
        }
        if let RemapKind::MultiLevel {
            region_blocks,
            hot_bytes,
            ..
        } = self.remap
        {
            if !region_blocks.is_power_of_two()
                || !region_blocks.is_multiple_of(self.geometry.blocks_per_super)
            {
                return Err(ConfigError::BadRemapRegion);
            }
            if hot_bytes == 0 {
                return Err(ConfigError::ZeroHotCache);
            }
        }
        self.fault_fast.validate().map_err(|e| ConfigError::Fault {
            device: "fault_fast",
            reason: e,
        })?;
        self.fault_slow.validate().map_err(|e| ConfigError::Fault {
            device: "fault_slow",
            reason: e,
        })?;
        Ok(())
    }

    /// Starts a builder pre-filled with [`BaryonConfig::default_cache_mode`]
    /// at the given scale. Finish with [`BaryonConfigBuilder::build`], which
    /// validates and returns the typed [`ConfigError`] for any violated
    /// invariant — the fallible mirror of the panicking `default_*`
    /// constructors.
    pub fn builder(scale: Scale) -> BaryonConfigBuilder {
        BaryonConfigBuilder {
            cfg: Self::default_cache_mode(scale),
        }
    }
}

/// Fluent, validating construction of a [`BaryonConfig`].
///
/// ```
/// use baryon_core::config::{BaryonConfig, ConfigError};
/// use baryon_workloads::Scale;
///
/// let cfg = BaryonConfig::builder(Scale { divisor: 1024 })
///     .commit_k(2.0)
///     .zero_opt(false)
///     .build()
///     .expect("valid");
/// assert_eq!(cfg.commit_k, 2.0);
///
/// let err = BaryonConfig::builder(Scale { divisor: 1024 })
///     .stage_ways(0)
///     .build()
///     .expect_err("invalid");
/// assert_eq!(err, ConfigError::ZeroStageWays);
/// ```
#[derive(Debug, Clone)]
pub struct BaryonConfigBuilder {
    cfg: BaryonConfig,
}

macro_rules! builder_setters {
    ($($(#[$doc:meta])* $name:ident: $ty:ty),* $(,)?) => {
        $(
            $(#[$doc])*
            #[must_use]
            pub fn $name(mut self, $name: $ty) -> Self {
                self.cfg.$name = $name;
                self
            }
        )*
    };
}

impl BaryonConfigBuilder {
    builder_setters! {
        /// Sets the hybrid mode (cache / flat / mixed).
        mode: HybridMode,
        /// Sets the total fast-memory capacity.
        fast_bytes: u64,
        /// Sets the total slow-memory capacity.
        slow_bytes: u64,
        /// Sets the stage-area capacity (0 disables the stage area).
        stage_bytes: u64,
        /// Sets the stage-area associativity.
        stage_ways: usize,
        /// Sets the data-area associativity (`usize::MAX` for FA).
        assoc: usize,
        /// Sets the selective-commit weight `k`.
        commit_k: f64,
        /// Commits every stage victim regardless of the cost model.
        commit_all: bool,
        /// Enforces cacheline-aligned compression.
        cacheline_aligned: bool,
        /// Enables the `Z`-bit all-zero range optimization.
        zero_opt: bool,
        /// Also tries the C-Pack compressor.
        use_cpack: bool,
        /// Keeps data compressed on fast-to-slow writeback.
        compressed_writeback: bool,
        /// Allows block-level stage replacements.
        two_level_replacement: bool,
        /// Sets the data-area victim-selection policy.
        victim_policy: VictimPolicy,
        /// Sets the OS-visible fraction of the data area (mixed mode).
        flat_fraction: f64,
        /// Sets fault injection on the fast device.
        fault_fast: FaultConfig,
        /// Sets fault injection on the slow device.
        fault_slow: FaultConfig,
        /// Sets the metadata-scrub interval (0 disables scrubbing).
        scrub_interval: u64,
        /// Sets the remap metadata structure (flat or multi-level).
        remap: RemapKind,
    }

    /// Switches the remap structure to the Trimma-style multi-level
    /// store with the [`BaryonConfig::default_trimma`] parameters.
    #[must_use]
    pub fn trimma(mut self) -> Self {
        self.cfg.remap = RemapKind::default_multi_level();
        self
    }

    /// Switches to the fully-associative flat organization
    /// (the [`BaryonConfig::default_flat_fa`] design point).
    #[must_use]
    pub fn flat_fa(mut self) -> Self {
        self.cfg.mode = HybridMode::Flat;
        self.cfg.assoc = usize::MAX;
        self.cfg.flat_fraction = 1.0;
        self
    }

    /// Switches to the mixed cache + flat organization with the given
    /// OS-visible fraction ([`BaryonConfig::default_mixed`], but fallible:
    /// an out-of-range fraction surfaces as
    /// [`ConfigError::BadFlatFraction`] from [`BaryonConfigBuilder::build`]
    /// instead of a panic).
    #[must_use]
    pub fn mixed(mut self, flat_fraction: f64) -> Self {
        self.cfg.mode = HybridMode::Mixed;
        self.cfg.assoc = usize::MAX;
        self.cfg.flat_fraction = flat_fraction;
        self
    }

    /// Validates and returns the finished configuration.
    ///
    /// # Errors
    ///
    /// The typed [`ConfigError`] for the first violated invariant.
    pub fn build(self) -> Result<BaryonConfig, ConfigError> {
        self.cfg.validate()?;
        Ok(self.cfg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scale() -> Scale {
        Scale::default()
    }

    #[test]
    fn default_cache_mode_valid() {
        let c = BaryonConfig::default_cache_mode(scale());
        c.validate().expect("valid");
        assert_eq!(c.mode, HybridMode::Cache);
        assert!(!c.is_fully_associative());
        // 64 MB / 256 = 256 kB proportional, floored at min(2 MB, fast/8).
        assert_eq!(c.stage_bytes, 2 << 20);
    }

    #[test]
    fn stage_scaling_rule() {
        // Paper scale: exactly 64 MB.
        assert_eq!(
            BaryonConfig::default_stage_bytes(Scale { divisor: 1 }),
            64 << 20
        );
        // Moderate scale: proportional wins.
        assert_eq!(
            BaryonConfig::default_stage_bytes(Scale { divisor: 16 }),
            4 << 20
        );
        // Deep scale: the residency floor wins, capped at fast/8.
        assert_eq!(
            BaryonConfig::default_stage_bytes(Scale { divisor: 1024 }),
            512 << 10
        );
    }

    #[test]
    fn default_flat_fa_valid() {
        let c = BaryonConfig::default_flat_fa(scale());
        c.validate().expect("valid");
        assert!(c.is_fully_associative());
        assert_eq!(c.num_sets(), 1);
        assert_eq!(c.effective_assoc(), c.data_blocks());
    }

    #[test]
    fn data_area_excludes_metadata() {
        let c = BaryonConfig::default_cache_mode(scale());
        assert!(c.data_area_bytes() < c.fast_bytes);
        assert!(c.fast_bytes - c.data_area_bytes() >= c.stage_bytes + c.remap_table_bytes() - 2047);
    }

    #[test]
    fn remap_table_is_tiny_fraction() {
        // Paper: "the full remap table occupies only 0.1% of the total
        // system memory capacity".
        let c = BaryonConfig::default_cache_mode(scale());
        let frac = c.remap_table_bytes() as f64 / (c.fast_bytes + c.slow_bytes) as f64;
        assert!(frac < 0.0011, "remap table fraction {frac}");
    }

    #[test]
    fn stage_tag_entry_is_14_bytes_default() {
        let c = BaryonConfig::default_cache_mode(scale());
        let (stage_tag, remap_cache) = c.sram_budget();
        assert_eq!(stage_tag / c.stage_blocks() as u64, 14);
        assert_eq!(remap_cache, 32 << 10);
    }

    #[test]
    fn paper_scale_sram_budget() {
        // At the paper's scale the stage tag array must be 448 kB.
        let c = BaryonConfig::default_cache_mode(Scale { divisor: 1 });
        let (stage_tag, _) = c.sram_budget();
        assert_eq!(stage_tag, 448 << 10);
        assert_eq!(c.stage_sets(), 8192);
    }

    #[test]
    fn os_space_depends_on_mode() {
        let cache = BaryonConfig::default_cache_mode(scale());
        let flat = BaryonConfig::default_flat_fa(scale());
        assert_eq!(cache.os_space_bytes(), cache.slow_bytes);
        assert!(flat.os_space_bytes() > flat.slow_bytes);
    }

    #[test]
    fn low_assoc_flat_rejected() {
        let mut c = BaryonConfig::default_flat_fa(scale());
        c.assoc = 4;
        assert!(c.validate().is_err());
    }

    #[test]
    fn zero_stage_is_valid_ablation() {
        let mut c = BaryonConfig::default_cache_mode(scale());
        c.stage_bytes = 0;
        c.validate().expect("no-stage ablation is valid");
        assert_eq!(c.stage_blocks(), 0);
    }

    #[test]
    fn invalid_configs_rejected() {
        let mut c = BaryonConfig::default_cache_mode(scale());
        c.assoc = 0;
        assert!(c.validate().is_err());
        let mut c = BaryonConfig::default_cache_mode(scale());
        c.fast_bytes = 0;
        assert!(c.validate().is_err());
        let mut c = BaryonConfig::default_cache_mode(scale());
        c.commit_k = -1.0;
        assert!(c.validate().is_err());
        let mut c = BaryonConfig::default_cache_mode(scale());
        c.fast_bytes = 12345; // not block aligned
        assert!(c.validate().is_err());
    }

    #[test]
    fn fault_rates_are_validated() {
        let mut c = BaryonConfig::default_cache_mode(scale());
        c.validate().expect("disabled faults are valid");
        c.fault_fast.bit_flip_rate = 1.5;
        let err = c.validate().expect_err("invalid rate");
        assert!(err.to_string().contains("fault_fast"));
        c.fault_fast.bit_flip_rate = 1e-4;
        c.fault_slow.stuck_at_rate = -0.1;
        let err = c.validate().expect_err("invalid rate");
        assert!(err.to_string().contains("fault_slow"));
        c.fault_slow.stuck_at_rate = 1e-6;
        c.validate().expect("valid rates accepted");
    }

    #[test]
    fn error_display_is_meaningful() {
        let mut c = BaryonConfig::default_cache_mode(scale());
        c.stage_ways = 0;
        let err = c.validate().expect_err("invalid");
        assert_eq!(err, ConfigError::ZeroStageWays);
        assert!(err.to_string().contains("stage_ways"));
    }

    #[test]
    fn builder_defaults_match_default_cache_mode() {
        let built = BaryonConfig::builder(scale()).build().expect("valid");
        assert_eq!(built, BaryonConfig::default_cache_mode(scale()));
        let fa = BaryonConfig::builder(scale())
            .flat_fa()
            .build()
            .expect("valid");
        assert_eq!(fa, BaryonConfig::default_flat_fa(scale()));
        let mixed = BaryonConfig::builder(scale())
            .mixed(0.5)
            .build()
            .expect("valid");
        assert_eq!(mixed, BaryonConfig::default_mixed(scale(), 0.5));
    }

    #[test]
    fn builder_returns_typed_errors_instead_of_asserting() {
        let err = BaryonConfig::builder(scale())
            .mixed(1.5)
            .build()
            .expect_err("fraction out of range");
        assert_eq!(err, ConfigError::BadFlatFraction);
        let err = BaryonConfig::builder(scale())
            .assoc(0)
            .build()
            .expect_err("zero assoc");
        assert_eq!(err, ConfigError::ZeroAssoc);
        let err = BaryonConfig::builder(scale())
            .fast_bytes(0)
            .build()
            .expect_err("zero capacity");
        assert_eq!(err, ConfigError::ZeroCapacity);
        let err = BaryonConfig::builder(scale())
            .commit_k(-1.0)
            .build()
            .expect_err("negative k");
        assert_eq!(err, ConfigError::NegativeCommitK);
        let bad = baryon_mem::FaultConfig {
            bit_flip_rate: 2.0,
            ..Default::default()
        };
        let err = BaryonConfig::builder(scale())
            .fault_fast(bad)
            .build()
            .expect_err("bad rate");
        assert!(matches!(
            err,
            ConfigError::Fault {
                device: "fault_fast",
                ..
            }
        ));
    }

    #[test]
    fn builder_applies_every_setter() {
        let cfg = BaryonConfig::builder(scale())
            .stage_bytes(0)
            .stage_ways(2)
            .commit_all(true)
            .cacheline_aligned(false)
            .zero_opt(false)
            .use_cpack(true)
            .compressed_writeback(false)
            .two_level_replacement(false)
            .victim_policy(VictimPolicy::Clock)
            .scrub_interval(500)
            .build()
            .expect("valid");
        assert_eq!(cfg.stage_bytes, 0);
        assert_eq!(cfg.stage_ways, 2);
        assert!(cfg.commit_all);
        assert!(!cfg.cacheline_aligned);
        assert!(!cfg.zero_opt);
        assert!(cfg.use_cpack);
        assert!(!cfg.compressed_writeback);
        assert!(!cfg.two_level_replacement);
        assert_eq!(cfg.victim_policy, VictimPolicy::Clock);
        assert_eq!(cfg.scrub_interval, 500);
    }
}

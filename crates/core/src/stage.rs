//! The stage area: the reserved fast-memory region that absorbs and
//! stabilizes freshly fetched compressed/sub-blocked layouts (§III-B, §III-E).
//!
//! [`StageArea`] owns the set-associative array of [`StageEntry`] tags, the
//! per-way LRU stamps, and the selective-commit counters (`MissCnt` per
//! entry, `MRUMissCnt` per set, both aged by right-shift every
//! `aging_period` accesses to the set). The replacement *policies* live in
//! the controller; this module provides the mechanics.

use crate::metadata::stage_entry::{RangeRef, StageEntry, SubHit};
use baryon_compress::Cf;
use baryon_sim::wire::{Reader, WireError, Writer};

/// Identifies one stage-area physical block: `(set, way)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct StageSlot {
    /// Set index.
    pub set: usize,
    /// Way index within the set.
    pub way: usize,
}

/// Aggregate stage-area statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StageStats {
    /// Blocks newly staged (entry allocations).
    pub stagings: u64,
    /// Sub-block-level (FIFO) replacements.
    pub sub_replacements: u64,
    /// Block-level (LRU) replacements.
    pub block_replacements: u64,
}

impl StageStats {
    /// Publishes into the unified telemetry [`Registry`]
    /// (absorbed by the controller under `stage.`).
    ///
    /// [`Registry`]: baryon_sim::telemetry::Registry
    pub fn export(&self, reg: &mut baryon_sim::telemetry::Registry) {
        reg.set_counter("stagings", self.stagings);
        reg.set_counter("sub_replacements", self.sub_replacements);
        reg.set_counter("block_replacements", self.block_replacements);
    }
}

/// Tag value of an unallocated way in the struct-of-arrays tag lane.
/// Super-block indices are derived from physical capacity and can never
/// reach it (asserted in [`StageArea::allocate`]).
const NO_TAG: u64 = u64::MAX;

/// The stage area tag mechanics.
///
/// Hot-path layout: the fields every probe touches — `tags` (one `u64`
/// per way) and `stamps` — are flat parallel arrays indexed by
/// `set * ways + way`, so `stage_probe` walks one contiguous cacheline-
/// sized strip per set instead of chasing per-entry allocations. The
/// full [`StageEntry`] payloads (range slots, FIFO cursor, MissCnt) live
/// in the parallel `entries` lane and are only dereferenced after a tag
/// match. The `tags` lane is maintained exclusively by
/// [`StageArea::allocate`], [`StageArea::evict`] and
/// [`StageArea::load_state`]; everything else reads it.
#[derive(Debug, Clone)]
pub struct StageArea {
    sets: usize,
    ways: usize,
    slots_per_block: usize,
    tags: Vec<u64>,
    entries: Vec<Option<StageEntry>>,
    stamps: Vec<u64>,
    mru_miss_cnt: Vec<u16>,
    set_accesses: Vec<u64>,
    aging_period: u64,
    tick: u64,
    stats: StageStats,
}

impl StageArea {
    /// Creates an empty stage area.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero.
    pub fn new(sets: usize, ways: usize, slots_per_block: usize, aging_period: u64) -> Self {
        assert!(
            sets > 0 && ways > 0 && slots_per_block > 0,
            "empty stage area"
        );
        StageArea {
            sets,
            ways,
            slots_per_block,
            tags: vec![NO_TAG; sets * ways],
            entries: vec![None; sets * ways],
            stamps: vec![0; sets * ways],
            mru_miss_cnt: vec![0; sets],
            set_accesses: vec![0; sets],
            aging_period: aging_period.max(1),
            tick: 0,
            stats: StageStats::default(),
        }
    }

    /// Number of sets.
    pub fn sets(&self) -> usize {
        self.sets
    }

    /// Ways per set.
    pub fn ways(&self) -> usize {
        self.ways
    }

    /// Sub-block slots per stage physical block.
    pub fn slots_per_block(&self) -> usize {
        self.slots_per_block
    }

    /// The set a super-block stages into.
    pub fn set_of(&self, sb: u64) -> usize {
        (sb % self.sets as u64) as usize
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &StageStats {
        &self.stats
    }

    /// Resets statistics (contents are kept).
    pub fn reset_stats(&mut self) {
        self.stats = StageStats::default();
    }

    fn idx(&self, slot: StageSlot) -> usize {
        debug_assert!(slot.set < self.sets && slot.way < self.ways);
        slot.set * self.ways + slot.way
    }

    /// The entry at `slot`, if allocated.
    pub fn entry(&self, slot: StageSlot) -> Option<&StageEntry> {
        self.entries[self.idx(slot)].as_ref()
    }

    /// Mutable entry access.
    pub fn entry_mut(&mut self, slot: StageSlot) -> Option<&mut StageEntry> {
        let i = self.idx(slot);
        self.entries[i].as_mut()
    }

    /// All ways in `sb`'s set currently staging super-block `sb`.
    pub fn blocks_of(&self, sb: u64) -> Vec<StageSlot> {
        let set = self.set_of(sb);
        let base = set * self.ways;
        (0..self.ways)
            .filter(|w| self.tags[base + w] == sb)
            .map(|way| StageSlot { set, way })
            .collect()
    }

    /// Finds the slot and hit info of `(sb, blk_off, sub)` if staged.
    /// Allocation-free: probes the contiguous tag lane of `sb`'s set and
    /// dereferences an entry only on a tag match.
    pub fn lookup(&self, sb: u64, blk_off: usize, sub: usize) -> Option<(StageSlot, SubHit)> {
        let set = self.set_of(sb);
        let base = set * self.ways;
        for way in 0..self.ways {
            if self.tags[base + way] != sb {
                continue;
            }
            let entry = self.entries[base + way].as_ref().expect("tagged way");
            if let Some(hit) = entry.find(blk_off, sub) {
                return Some((StageSlot { set, way }, hit));
            }
        }
        None
    }

    /// The slot among `sb`'s blocks that holds ranges of `blk_off`, if any
    /// (Rule 3: a data block's staged sub-blocks live in one physical block).
    /// Allocation-free, same probe sequence as [`StageArea::lookup`].
    pub fn block_home(&self, sb: u64, blk_off: usize) -> Option<StageSlot> {
        let set = self.set_of(sb);
        let base = set * self.ways;
        (0..self.ways).find_map(|way| {
            if self.tags[base + way] != sb {
                return None;
            }
            self.entries[base + way]
                .as_ref()
                .expect("tagged way")
                .has_block(blk_off)
                .then_some(StageSlot { set, way })
        })
    }

    /// Marks `slot` most-recently-used.
    pub fn touch(&mut self, slot: StageSlot) {
        self.tick += 1;
        let i = self.idx(slot);
        self.stamps[i] = self.tick;
    }

    /// The LRU *allocated* way of `set`, if any entry exists.
    pub fn lru_way(&self, set: usize) -> Option<StageSlot> {
        (0..self.ways)
            .filter(|w| self.tags[set * self.ways + w] != NO_TAG)
            .min_by_key(|w| self.stamps[set * self.ways + w])
            .map(|way| StageSlot { set, way })
    }

    /// True if `slot` is the LRU allocated entry of its set.
    pub fn is_lru(&self, slot: StageSlot) -> bool {
        self.lru_way(slot.set) == Some(slot)
    }

    /// A free (unallocated) way in `set`, if any.
    pub fn free_way(&self, set: usize) -> Option<StageSlot> {
        (0..self.ways)
            .find(|w| self.tags[set * self.ways + w] == NO_TAG)
            .map(|way| StageSlot { set, way })
    }

    /// Allocates a fresh entry for super-block `sb` at `slot`
    /// (which must be free) and marks it MRU.
    ///
    /// # Panics
    ///
    /// Panics if the slot is occupied.
    pub fn allocate(&mut self, slot: StageSlot, sb: u64) {
        let i = self.idx(slot);
        assert!(self.entries[i].is_none(), "slot {slot:?} is occupied");
        assert_ne!(sb, NO_TAG, "super-block index collides with NO_TAG");
        self.tags[i] = sb;
        self.entries[i] = Some(StageEntry::new(sb, self.slots_per_block));
        self.stats.stagings += 1;
        self.touch(slot);
    }

    /// Removes and returns the entry at `slot`.
    ///
    /// # Panics
    ///
    /// Panics if the slot is empty.
    pub fn evict(&mut self, slot: StageSlot) -> StageEntry {
        let i = self.idx(slot);
        self.stats.block_replacements += 1;
        self.tags[i] = NO_TAG;
        self.entries[i]
            .take()
            .expect("evicting an empty stage slot")
    }

    /// Records a sub-block-level replacement (for statistics).
    pub fn note_sub_replacement(&mut self) {
        self.stats.sub_replacements += 1;
    }

    /// Records an access to `set` for counter aging; call once per stage-set
    /// access. Ages all MissCnt counters of the set and the MRUMissCnt by
    /// right-shifting every `aging_period` accesses (§III-E).
    pub fn record_set_access(&mut self, set: usize) {
        self.set_accesses[set] += 1;
        if self.set_accesses[set].is_multiple_of(self.aging_period) {
            self.mru_miss_cnt[set] >>= 1;
            for w in 0..self.ways {
                if let Some(e) = self.entries[set * self.ways + w].as_mut() {
                    e.miss_cnt >>= 1;
                }
            }
        }
    }

    /// Increments the per-set MRU miss counter (block misses and sub-block
    /// misses to the MRU entry).
    pub fn bump_mru_miss(&mut self, set: usize) {
        self.mru_miss_cnt[set] = self.mru_miss_cnt[set].saturating_add(1);
    }

    /// Current MRU miss counter of `set`.
    pub fn mru_miss_cnt(&self, set: usize) -> u16 {
        self.mru_miss_cnt[set]
    }

    /// True if `slot` is currently the MRU allocated entry of its set.
    pub fn is_mru(&self, slot: StageSlot) -> bool {
        let set = slot.set;
        (0..self.ways)
            .filter(|w| self.tags[set * self.ways + w] != NO_TAG)
            .max_by_key(|w| self.stamps[set * self.ways + w])
            == Some(slot.way)
    }

    /// Iterates all allocated slots (for drain/inspection).
    pub fn occupied_slots(&self) -> Vec<StageSlot> {
        (0..self.sets * self.ways)
            .filter(|i| self.tags[*i] != NO_TAG)
            .map(|i| StageSlot {
                set: i / self.ways,
                way: i % self.ways,
            })
            .collect()
    }

    /// Serializes the mutable state (entries, stamps, counters) for
    /// checkpointing; geometry is rebuilt by [`StageArea::new`].
    pub fn save_state(&self, w: &mut Writer) {
        w.seq(self.entries.len());
        for entry in &self.entries {
            w.opt(entry.is_some());
            if let Some(e) = entry {
                w.u64(e.tag);
                w.seq(e.slots.len());
                for slot in &e.slots {
                    w.opt(slot.is_some());
                    if let Some(r) = slot {
                        save_range(w, r);
                    }
                }
                w.seq(e.zero_ranges.len());
                for r in &e.zero_ranges {
                    save_range(w, r);
                }
                w.u8(e.fifo);
                w.u16(e.miss_cnt);
            }
        }
        w.seq(self.stamps.len());
        for s in &self.stamps {
            w.u64(*s);
        }
        w.seq(self.mru_miss_cnt.len());
        for c in &self.mru_miss_cnt {
            w.u16(*c);
        }
        w.seq(self.set_accesses.len());
        for a in &self.set_accesses {
            w.u64(*a);
        }
        w.u64(self.tick);
        w.u64(self.stats.stagings);
        w.u64(self.stats.sub_replacements);
        w.u64(self.stats.block_replacements);
    }

    /// Overlays checkpointed state onto this freshly constructed area.
    ///
    /// # Errors
    ///
    /// Returns [`WireError`] on a truncated payload or geometry mismatch.
    pub fn load_state(&mut self, r: &mut Reader<'_>) -> Result<(), WireError> {
        let n = r.seq()?;
        if n != self.entries.len() {
            return Err(WireError::BadLength(n as u64));
        }
        for i in 0..self.entries.len() {
            self.entries[i] = if r.opt()? {
                let tag = r.u64()?;
                if tag == NO_TAG {
                    return Err(WireError::BadTag(0xFF));
                }
                let slots = r.seq()?;
                if slots != self.slots_per_block {
                    return Err(WireError::BadLength(slots as u64));
                }
                let mut e = StageEntry::new(tag, slots);
                for slot in &mut e.slots {
                    *slot = if r.opt()? { Some(load_range(r)?) } else { None };
                }
                let zeros = r.seq()?;
                e.zero_ranges = (0..zeros)
                    .map(|_| load_range(r))
                    .collect::<Result<_, _>>()?;
                e.fifo = r.u8()?;
                e.miss_cnt = r.u16()?;
                self.tags[i] = tag;
                Some(e)
            } else {
                self.tags[i] = NO_TAG;
                None
            };
        }
        load_u64_exact(r, &mut self.stamps)?;
        let n = r.seq()?;
        if n != self.mru_miss_cnt.len() {
            return Err(WireError::BadLength(n as u64));
        }
        for c in &mut self.mru_miss_cnt {
            *c = r.u16()?;
        }
        load_u64_exact(r, &mut self.set_accesses)?;
        self.tick = r.u64()?;
        self.stats.stagings = r.u64()?;
        self.stats.sub_replacements = r.u64()?;
        self.stats.block_replacements = r.u64()?;
        Ok(())
    }
}

fn save_range(w: &mut Writer, r: &RangeRef) {
    w.u8(r.blk_off);
    w.u8(r.sub_off);
    w.u8(r.cf.sub_blocks() as u8);
    w.bool(r.dirty);
}

fn load_range(r: &mut Reader<'_>) -> Result<RangeRef, WireError> {
    let blk_off = r.u8()?;
    let sub_off = r.u8()?;
    let cf = match r.u8()? {
        1 => Cf::X1,
        2 => Cf::X2,
        4 => Cf::X4,
        t => return Err(WireError::BadTag(t)),
    };
    let dirty = r.bool()?;
    Ok(RangeRef {
        blk_off,
        sub_off,
        cf,
        dirty,
    })
}

fn load_u64_exact(r: &mut Reader<'_>, out: &mut [u64]) -> Result<(), WireError> {
    let n = r.seq()?;
    if n != out.len() {
        return Err(WireError::BadLength(n as u64));
    }
    for v in out {
        *v = r.u64()?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metadata::stage_entry::RangeRef;
    use baryon_compress::Cf;

    fn area() -> StageArea {
        StageArea::new(4, 2, 8, 100)
    }

    fn put_range(a: &mut StageArea, slot: StageSlot, blk: u8, sub: u8, cf: Cf) {
        let free = a
            .entry(slot)
            .expect("allocated")
            .free_slot()
            .expect("has space");
        a.entry_mut(slot).expect("allocated").slots[free] = Some(RangeRef {
            blk_off: blk,
            sub_off: sub,
            cf,
            dirty: false,
        });
    }

    #[test]
    fn set_mapping_wraps() {
        let a = area();
        assert_eq!(a.set_of(0), 0);
        assert_eq!(a.set_of(5), 1);
        assert_eq!(a.set_of(7), 3);
    }

    #[test]
    fn allocate_lookup_evict() {
        let mut a = area();
        let slot = a.free_way(a.set_of(9)).expect("free");
        a.allocate(slot, 9);
        put_range(&mut a, slot, 2, 4, Cf::X2);
        let (found, hit) = a.lookup(9, 2, 5).expect("staged");
        assert_eq!(found, slot);
        assert_eq!(hit.cf, Cf::X2);
        assert!(a.lookup(9, 2, 6).is_none());
        assert!(a.lookup(13, 2, 5).is_none(), "same set, different tag");
        let e = a.evict(slot);
        assert_eq!(e.tag, 9);
        assert!(a.lookup(9, 2, 5).is_none());
    }

    #[test]
    fn multiple_blocks_per_super() {
        let mut a = area();
        let set = a.set_of(4);
        let s0 = StageSlot { set, way: 0 };
        let s1 = StageSlot { set, way: 1 };
        a.allocate(s0, 4);
        a.allocate(s1, 4);
        assert_eq!(a.blocks_of(4).len(), 2);
        put_range(&mut a, s1, 3, 0, Cf::X1);
        assert_eq!(a.block_home(4, 3), Some(s1));
        assert_eq!(a.block_home(4, 5), None);
    }

    #[test]
    fn lru_ordering() {
        let mut a = area();
        let set = 0;
        let s0 = StageSlot { set, way: 0 };
        let s1 = StageSlot { set, way: 1 };
        a.allocate(s0, 0);
        a.allocate(s1, 4);
        assert!(a.is_lru(s0));
        assert!(a.is_mru(s1));
        a.touch(s0);
        assert!(a.is_lru(s1));
        assert!(a.is_mru(s0));
    }

    #[test]
    fn aging_shifts_counters() {
        let mut a = StageArea::new(2, 2, 8, 10);
        let slot = StageSlot { set: 0, way: 0 };
        a.allocate(slot, 0);
        a.entry_mut(slot).expect("allocated").miss_cnt = 8;
        a.bump_mru_miss(0);
        a.bump_mru_miss(0);
        for _ in 0..10 {
            a.record_set_access(0);
        }
        assert_eq!(a.entry(slot).expect("allocated").miss_cnt, 4);
        assert_eq!(a.mru_miss_cnt(0), 1);
        // Other set untouched.
        assert_eq!(a.mru_miss_cnt(1), 0);
    }

    #[test]
    fn free_way_exhaustion() {
        let mut a = area();
        assert!(a.free_way(0).is_some());
        a.allocate(StageSlot { set: 0, way: 0 }, 0);
        a.allocate(StageSlot { set: 0, way: 1 }, 4);
        assert!(a.free_way(0).is_none());
        assert!(a.free_way(1).is_some());
    }

    #[test]
    fn stats_track_operations() {
        let mut a = area();
        let s = StageSlot { set: 0, way: 0 };
        a.allocate(s, 0);
        a.evict(s);
        a.note_sub_replacement();
        assert_eq!(a.stats().stagings, 1);
        assert_eq!(a.stats().block_replacements, 1);
        assert_eq!(a.stats().sub_replacements, 1);
    }

    #[test]
    #[should_panic(expected = "occupied")]
    fn double_allocate_panics() {
        let mut a = area();
        a.allocate(StageSlot { set: 0, way: 0 }, 0);
        a.allocate(StageSlot { set: 0, way: 0 }, 4);
    }

    #[test]
    #[should_panic(expected = "empty stage slot")]
    fn evict_empty_panics() {
        area().evict(StageSlot { set: 0, way: 0 });
    }

    #[test]
    fn occupied_slots_lists_all() {
        let mut a = area();
        a.allocate(StageSlot { set: 0, way: 1 }, 0);
        a.allocate(StageSlot { set: 2, way: 0 }, 2);
        let occ = a.occupied_slots();
        assert_eq!(occ.len(), 2);
        assert!(occ.contains(&StageSlot { set: 2, way: 0 }));
    }

    #[test]
    fn wire_state_round_trips() {
        let mut a = area();
        let slot = a.free_way(a.set_of(9)).expect("free");
        a.allocate(slot, 9);
        put_range(&mut a, slot, 2, 4, Cf::X2);
        a.entry_mut(slot)
            .expect("allocated")
            .zero_ranges
            .push(RangeRef {
                blk_off: 1,
                sub_off: 0,
                cf: Cf::X4,
                dirty: true,
            });
        a.lookup(9, 2, 5);
        a.lookup(9, 2, 6); // miss
        a.note_sub_replacement();
        let mut w = Writer::new();
        a.save_state(&mut w);
        let bytes = w.into_bytes();
        let mut fresh = area();
        let mut r = Reader::new(&bytes);
        fresh.load_state(&mut r).expect("well-formed");
        r.finish().expect("no trailing bytes");
        assert_eq!(fresh.entry(slot), a.entry(slot));
        assert_eq!(fresh.stats(), a.stats());
        assert_eq!(fresh.occupied_slots(), a.occupied_slots());
        let (found, hit) = fresh.lookup(9, 2, 5).expect("staged range survives");
        assert_eq!(found, slot);
        assert_eq!(hit.cf, Cf::X2);
    }

    #[test]
    fn wire_state_rejects_geometry_mismatch() {
        let a = area();
        let mut w = Writer::new();
        a.save_state(&mut w);
        let bytes = w.into_bytes();
        let mut other = StageArea::new(8, 2, 8, 100);
        let mut r = Reader::new(&bytes);
        assert!(other.load_state(&mut r).is_err());
    }
}

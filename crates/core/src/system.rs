//! The end-to-end system driver: trace generators -> cache hierarchy ->
//! memory controller, with a simple multi-core timing model.
//!
//! Cores are trace-driven with a fixed non-memory CPI; loads block the
//! issuing core while stores are posted (they retire through the cache
//! hierarchy and surface at the memory controller as dirty writebacks).
//! Cores are interleaved in timestamp order so that device-level contention
//! (banks, channel buses) is shared realistically.

use crate::baselines::{DiceCache, Hybrid2, MicroSector, OsPaging, SimpleCache, UnisonCache};
use crate::config::BaryonConfig;
use crate::controller::BaryonController;
use crate::ctrl::{MemoryController, Request, ServeStats};
use crate::metrics::RunResult;
use baryon_cache::{Hierarchy, HierarchyConfig, HitLevel};
use baryon_sim::telemetry::Registry;
use baryon_sim::Cycle;
use baryon_workloads::{MemoryContents, Scale, TraceGen, Workload};

/// Which memory controller a system runs.
#[derive(Debug, Clone, PartialEq)]
pub enum ControllerKind {
    /// The Baryon controller with the given configuration.
    Baryon(BaryonConfig),
    /// Simple 2 kB DRAM cache.
    Simple,
    /// Unison Cache.
    Unison,
    /// DICE compressed DRAM cache.
    Dice,
    /// Hybrid2 flat-mode hybrid memory.
    Hybrid2,
    /// Micro-sector cache (Baryon's closest sub-blocking prior, §V).
    MicroSector,
    /// OS-based 4 kB page migration (the §II-A software design point).
    OsPaging,
}

/// One of the concrete controllers (static dispatch with an accessor for
/// Baryon-specific instrumentation).
#[derive(Debug)]
pub enum AnyController {
    /// Baryon.
    Baryon(Box<BaryonController>),
    /// Simple DRAM cache.
    Simple(SimpleCache),
    /// Unison Cache.
    Unison(UnisonCache),
    /// DICE.
    Dice(DiceCache),
    /// Hybrid2.
    Hybrid2(Hybrid2),
    /// Micro-sector cache.
    MicroSector(MicroSector),
    /// OS page migration.
    OsPaging(OsPaging),
}

macro_rules! delegate {
    ($self:ident, $c:ident => $body:expr) => {
        match $self {
            AnyController::Baryon($c) => $body,
            AnyController::Simple($c) => $body,
            AnyController::Unison($c) => $body,
            AnyController::Dice($c) => $body,
            AnyController::Hybrid2($c) => $body,
            AnyController::MicroSector($c) => $body,
            AnyController::OsPaging($c) => $body,
        }
    };
}

impl MemoryController for AnyController {
    fn read(
        &mut self,
        now: Cycle,
        req: Request,
        mem: &mut MemoryContents,
    ) -> crate::ctrl::Response {
        delegate!(self, c => c.read(now, req, mem))
    }

    fn writeback(&mut self, now: Cycle, addr: u64, mem: &mut MemoryContents) -> Cycle {
        delegate!(self, c => c.writeback(now, addr, mem))
    }

    fn serve_stats(&self) -> ServeStats {
        delegate!(self, c => c.serve_stats())
    }

    fn export(&self, reg: &mut Registry) {
        delegate!(self, c => c.export(reg))
    }

    fn reset_stats(&mut self) {
        delegate!(self, c => c.reset_stats())
    }

    fn name(&self) -> &str {
        delegate!(self, c => c.name())
    }
}

impl AnyController {
    /// The Baryon controller, if that is what this system runs.
    pub fn as_baryon(&self) -> Option<&BaryonController> {
        match self {
            AnyController::Baryon(b) => Some(b),
            _ => None,
        }
    }

    /// Mutable Baryon access (to enable phase tracking).
    pub fn as_baryon_mut(&mut self) -> Option<&mut BaryonController> {
        match self {
            AnyController::Baryon(b) => Some(b),
            _ => None,
        }
    }
}

/// System-level configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct SystemConfig {
    /// Cache hierarchy geometry.
    pub hierarchy: HierarchyConfig,
    /// The memory controller under test.
    pub controller: ControllerKind,
    /// Capacity scale shared with the workload registry.
    pub scale: Scale,
    /// Cycles per non-memory instruction (4-wide cores: 0.25).
    pub cpi_nonmem: f64,
    /// Warm-up instructions per core before measurement starts.
    pub warmup_insts: u64,
    /// Outstanding read misses a core may overlap (memory-level
    /// parallelism). 1 models a blocking core (the default used by all
    /// recorded experiments); OoO cores overlap several misses.
    pub mlp: usize,
    /// Outstanding posted writebacks a core may have before it stalls
    /// (write bandwidth back-pressure). Without a bound, pure-store
    /// workloads would never feel the memory system at all.
    pub store_buffer: usize,
    /// Enables wall-clock span telemetry (access-flow and phase timings).
    /// Off by default: disabled runs never read the host clock, so golden
    /// results stay bit-identical.
    pub telemetry: bool,
}

impl SystemConfig {
    /// Baryon in the paper's default cache mode.
    pub fn baryon_cache_mode(scale: Scale) -> Self {
        Self::with_controller(
            scale,
            ControllerKind::Baryon(BaryonConfig::default_cache_mode(scale)),
        )
    }

    /// Baryon-FA in flat mode (Fig 10).
    pub fn baryon_flat_fa(scale: Scale) -> Self {
        Self::with_controller(
            scale,
            ControllerKind::Baryon(BaryonConfig::default_flat_fa(scale)),
        )
    }

    /// A system around any controller kind, with scaled-hierarchy defaults.
    pub fn with_controller(scale: Scale, controller: ControllerKind) -> Self {
        SystemConfig {
            hierarchy: HierarchyConfig::table1_scaled(scale.divisor),
            controller,
            scale,
            cpi_nonmem: 0.25,
            warmup_insts: 30_000,
            mlp: 1,
            store_buffer: 32,
            telemetry: false,
        }
    }

    fn build_controller(&self) -> AnyController {
        match &self.controller {
            ControllerKind::Baryon(cfg) => {
                AnyController::Baryon(Box::new(BaryonController::new(cfg.clone())))
            }
            ControllerKind::Simple => AnyController::Simple(SimpleCache::new(self.scale)),
            ControllerKind::Unison => AnyController::Unison(UnisonCache::new(self.scale)),
            ControllerKind::Dice => AnyController::Dice(DiceCache::new(self.scale)),
            ControllerKind::Hybrid2 => AnyController::Hybrid2(Hybrid2::new(self.scale)),
            ControllerKind::MicroSector => AnyController::MicroSector(MicroSector::new(self.scale)),
            ControllerKind::OsPaging => AnyController::OsPaging(OsPaging::new(self.scale)),
        }
    }
}

/// The simulated 16-core system.
pub struct System {
    cfg: SystemConfig,
    workload_name: String,
    hierarchy: Hierarchy,
    controller: AnyController,
    contents: MemoryContents,
    gens: Vec<Box<dyn TraceGen>>,
    core_time: Vec<Cycle>,
    core_insts: Vec<u64>,
    /// Per-core completion times of in-flight read misses (MLP window).
    outstanding: Vec<Vec<Cycle>>,
    /// Per-core completion times of posted writebacks (store buffer).
    wb_queue: Vec<Vec<Cycle>>,
    llc_misses: u64,
    read_latency: baryon_sim::histogram::Histogram,
    /// System-level spans (warm-up / measure phases); live only when
    /// `SystemConfig::telemetry` is set.
    telemetry: Registry,
}

impl std::fmt::Debug for System {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("System")
            .field("workload", &self.workload_name)
            .field("controller", &self.controller.name())
            .field("cores", &self.core_time.len())
            .finish_non_exhaustive()
    }
}

impl System {
    /// Builds a system running `workload` with the given seed.
    pub fn new(cfg: SystemConfig, workload: &Workload, seed: u64) -> Self {
        let cores = cfg.hierarchy.cores;
        let gens = (0..cores)
            .map(|c| workload.spawn_core(c, cores, seed))
            .collect();
        let mut controller = cfg.build_controller();
        let mut telemetry = Registry::new();
        if cfg.telemetry {
            telemetry.enable_spans();
            if let Some(b) = controller.as_baryon_mut() {
                b.enable_telemetry_spans();
            }
        }
        System {
            hierarchy: Hierarchy::new(cfg.hierarchy),
            controller,
            contents: workload.contents(seed),
            gens,
            core_time: vec![0; cores],
            core_insts: vec![0; cores],
            outstanding: vec![Vec::new(); cores],
            wb_queue: vec![Vec::new(); cores],
            llc_misses: 0,
            read_latency: baryon_sim::histogram::Histogram::new(),
            telemetry,
            workload_name: workload.name.to_owned(),
            cfg,
        }
    }

    /// The controller (for counters and Baryon-specific instrumentation).
    pub fn controller(&self) -> &AnyController {
        &self.controller
    }

    /// Mutable controller access.
    pub fn controller_mut(&mut self) -> &mut AnyController {
        &mut self.controller
    }

    /// Runs warm-up (if configured) followed by `insts_per_core` measured
    /// instructions per core, and returns the measured results.
    pub fn run(&mut self, insts_per_core: u64) -> RunResult {
        if self.cfg.warmup_insts > 0 {
            // Phase spans are coarse one-shot events: always sample.
            let t = self.telemetry.phase_timer();
            self.run_phase(self.cfg.warmup_insts);
            self.telemetry.record_span("sim.span.warmup", t);
            self.reset_measurement();
        }
        let start: Vec<Cycle> = self.core_time.clone();
        let insts_before: u64 = self.core_insts.iter().sum();
        let t = self.telemetry.phase_timer();
        self.run_phase(insts_per_core);
        self.telemetry.record_span("sim.span.measure", t);
        let cycles = self
            .core_time
            .iter()
            .zip(&start)
            .map(|(t, s)| t - s)
            .max()
            .unwrap_or(0);
        let instructions = self.core_insts.iter().sum::<u64>() - insts_before;
        let serve = self.controller.serve_stats();
        let mut reg = Registry::new();
        self.hierarchy.export(&mut reg);
        let mut ctrl_reg = Registry::new();
        self.controller.export(&mut ctrl_reg);
        let mut serve_reg = Registry::new();
        serve.export(&mut serve_reg);
        ctrl_reg.absorb("serve", &serve_reg);
        reg.absorb("ctrl", &ctrl_reg);
        reg.set_counter("sim.cycles", cycles);
        reg.set_counter("sim.instructions", instructions);
        reg.set_counter("sim.llc_misses", self.llc_misses);
        reg.observe_histogram("sim.read_latency", &self.read_latency);
        reg.merge(&self.telemetry);
        RunResult {
            controller: self.controller.name().to_owned(),
            workload: self.workload_name.clone(),
            total_cycles: cycles,
            instructions,
            llc_misses: self.llc_misses,
            serve,
            read_latency: self.read_latency.clone(),
            telemetry: reg,
        }
    }

    fn reset_measurement(&mut self) {
        self.hierarchy.reset_stats();
        self.controller.reset_stats();
        self.llc_misses = 0;
        self.read_latency = baryon_sim::histogram::Histogram::new();
    }

    /// Advances every core by `insts_per_core` instructions, interleaving
    /// cores in timestamp order.
    fn run_phase(&mut self, insts_per_core: u64) {
        let cores = self.core_time.len();
        let targets: Vec<u64> = self.core_insts.iter().map(|i| i + insts_per_core).collect();
        let mut live = cores;
        while live > 0 {
            // The lagging unfinished core goes next.
            let core = (0..cores)
                .filter(|c| self.core_insts[*c] < targets[*c])
                .min_by_key(|c| self.core_time[*c])
                .expect("live > 0");
            self.step(core);
            if self.core_insts[core] >= targets[core] {
                live -= 1;
            }
        }
    }

    fn step(&mut self, core: usize) {
        let op = self.gens[core].next_op();
        self.core_insts[core] += op.instructions();
        let mut t = self.core_time[core] + (op.gap as f64 * self.cfg.cpi_nonmem).ceil() as Cycle;
        if op.write {
            // The store's value changes memory contents now; the data moves
            // to memory later via the write-back path.
            self.contents.write_line(op.addr);
        }
        let access = self.hierarchy.access(core, op.addr, op.write);
        for wb in &access.writebacks {
            let done = self.controller.writeback(t, *wb, &mut self.contents);
            t = self.post_writeback(core, t, done);
        }
        if access.level == HitLevel::Memory {
            self.llc_misses += 1;
            let resp = self.controller.read(
                t + access.latency,
                Request {
                    addr: op.addr,
                    core,
                },
                &mut self.contents,
            );
            if !op.write {
                self.read_latency.record(resp.latency);
            }
            if !resp.extra_lines.is_empty() {
                let wbs = self.hierarchy.install_llc_lines(&resp.extra_lines);
                for wb in wbs {
                    let done = self.controller.writeback(t, wb, &mut self.contents);
                    t = self.post_writeback(core, t, done);
                }
            }
            if op.write {
                // Stores retire into the store buffer: the miss latency is
                // overlapped, only the on-chip path stalls the core.
                t += access.latency;
            } else if self.cfg.mlp <= 1 {
                t += access.latency + resp.latency;
            } else {
                // Overlap up to `mlp` read misses: the core only stalls
                // when the MLP window is full, waiting for the oldest
                // in-flight miss to complete.
                let completion = t + access.latency + resp.latency;
                let window = &mut self.outstanding[core];
                window.retain(|c| *c > t);
                if window.len() >= self.cfg.mlp {
                    let oldest = window.iter().copied().min().expect("window full");
                    t = t.max(oldest);
                    window.retain(|c| *c > t);
                }
                window.push(completion);
                t += access.latency;
            }
        } else {
            t += access.latency;
        }
        // A memory instruction costs at least one issue cycle.
        self.core_time[core] = t.max(self.core_time[core] + 1);
    }

    /// Tracks a posted writeback completing at `done`; returns the (possibly
    /// stalled) core time: the store buffer holds `store_buffer` entries and
    /// a full buffer blocks until the oldest drains.
    fn post_writeback(&mut self, core: usize, mut t: Cycle, done: Cycle) -> Cycle {
        let cap = self.cfg.store_buffer.max(1);
        let q = &mut self.wb_queue[core];
        q.retain(|c| *c > t);
        if q.len() >= cap {
            let oldest = q.iter().copied().min().expect("buffer full");
            t = t.max(oldest);
            q.retain(|c| *c > t);
        }
        q.push(done);
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use baryon_workloads::by_name;

    fn scale() -> Scale {
        Scale { divisor: 2048 }
    }

    fn run(kind: ControllerKind, workload: &str, insts: u64) -> RunResult {
        let w = by_name(workload, scale()).expect("workload");
        let mut cfg = SystemConfig::with_controller(scale(), kind);
        cfg.warmup_insts = 5_000;
        System::new(cfg, &w, 7).run(insts)
    }

    #[test]
    fn all_controllers_run_end_to_end() {
        for kind in [
            ControllerKind::Baryon(BaryonConfig::default_cache_mode(scale())),
            ControllerKind::Simple,
            ControllerKind::Unison,
            ControllerKind::Dice,
            ControllerKind::Hybrid2,
        ] {
            let r = run(kind.clone(), "505.mcf_r", 20_000);
            assert!(r.total_cycles > 0, "{kind:?} produced no cycles");
            assert!(r.instructions >= 20_000 * 16);
            assert!(r.ipc() > 0.0);
            let s = &r.serve;
            assert!(s.fast_serve_rate() >= 0.0 && s.fast_serve_rate() <= 1.0);
        }
    }

    #[test]
    fn runs_are_deterministic() {
        let a = run(ControllerKind::Simple, "519.lbm_r", 10_000);
        let b = run(ControllerKind::Simple, "519.lbm_r", 10_000);
        assert_eq!(a.total_cycles, b.total_cycles);
        assert_eq!(a.serve, b.serve);
    }

    #[test]
    fn flat_fa_baryon_runs() {
        let r = run(
            ControllerKind::Baryon(BaryonConfig::default_flat_fa(scale())),
            "505.mcf_r",
            20_000,
        );
        assert!(r.total_cycles > 0);
        assert_eq!(r.controller, "baryon-fa");
    }

    #[test]
    fn traffic_conservation() {
        // Controller traffic must be at least the useful bytes served from
        // each device class (sanity of the accounting).
        let r = run(ControllerKind::Simple, "505.mcf_r", 20_000);
        assert!(r.serve.fast_bytes + r.serve.slow_bytes >= 64 * r.serve.reads);
    }

    #[test]
    fn mlp_overlap_speeds_latency_bound_reads_up() {
        // A latency-bound scenario: the footprint fits in fast memory, so
        // after warm-up every read is a fixed-latency fast hit that an MLP
        // window can overlap (bandwidth-bound runs are a wash by design).
        let mut w = by_name("505.mcf_r", scale()).expect("workload");
        w.footprint = 1 << 20; // 1 MB vs 2 MB fast memory
        let mut blocking = SystemConfig::with_controller(scale(), ControllerKind::Simple);
        blocking.warmup_insts = 20_000;
        let mut overlapped = blocking.clone();
        overlapped.mlp = 8;
        let b = System::new(blocking, &w, 7).run(15_000);
        let o = System::new(overlapped, &w, 7).run(15_000);
        assert!(
            o.total_cycles < b.total_cycles,
            "overlapping 8 hits must beat a blocking core ({} vs {})",
            o.total_cycles,
            b.total_cycles
        );
    }

    #[test]
    fn warmup_resets_measured_stats() {
        let w = by_name("505.mcf_r", scale()).expect("workload");
        let mut with_warmup = SystemConfig::with_controller(scale(), ControllerKind::Simple);
        with_warmup.warmup_insts = 10_000;
        let r = System::new(with_warmup, &w, 3).run(10_000);
        // The measured instruction count must reflect only the measured
        // phase (16 cores x 10k, +- the per-op rounding of the last op).
        let per_core = r.instructions / 16;
        assert!(
            (10_000..11_000).contains(&per_core),
            "measured {per_core} instructions per core"
        );
    }

    #[test]
    fn store_buffer_throttles_pure_write_streams() {
        // ycsb-load writes every line; with a tiny store buffer the cores
        // must run slower than with a large one.
        let w = by_name("ycsb-load", scale()).expect("workload");
        let mut tight = SystemConfig::with_controller(scale(), ControllerKind::Simple);
        tight.warmup_insts = 2_000;
        tight.store_buffer = 1;
        let mut roomy = tight.clone();
        roomy.store_buffer = 1024;
        let t = System::new(tight, &w, 5).run(10_000);
        let r = System::new(roomy, &w, 5).run(10_000);
        assert!(
            t.total_cycles > r.total_cycles,
            "a 1-entry store buffer must be slower ({} vs {})",
            t.total_cycles,
            r.total_cycles
        );
    }

    #[test]
    fn read_latency_histogram_populates() {
        let w = by_name("505.mcf_r", scale()).expect("workload");
        let mut cfg = SystemConfig::with_controller(scale(), ControllerKind::Simple);
        cfg.warmup_insts = 1_000;
        let r = System::new(cfg, &w, 3).run(10_000);
        assert!(r.read_latency.count() > 0, "misses must record latencies");
        assert!(r.read_latency.percentile(99.0) >= r.read_latency.percentile(50.0));
        // Loads are a strict subset of LLC misses (stores miss too but are
        // posted and unsampled).
        assert!(r.read_latency.count() <= r.llc_misses);
    }

    #[test]
    fn baryon_accessor_works() {
        let w = by_name("505.mcf_r", scale()).expect("workload");
        let cfg = SystemConfig::baryon_cache_mode(scale());
        let mut sys = System::new(cfg, &w, 7);
        assert!(sys.controller().as_baryon().is_some());
        sys.controller_mut()
            .as_baryon_mut()
            .expect("baryon")
            .enable_phase_tracking(64, 100);
    }
}

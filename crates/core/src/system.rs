//! The end-to-end system driver: trace generators -> cache hierarchy ->
//! memory controller, with a simple multi-core timing model.
//!
//! Cores are trace-driven with a fixed non-memory CPI; loads block the
//! issuing core while stores are posted (they retire through the cache
//! hierarchy and surface at the memory controller as dirty writebacks).
//! Cores are interleaved in timestamp order so that device-level contention
//! (banks, channel buses) is shared realistically.
//!
//! # Deterministic parallel execution
//!
//! Every run is split into a *shard* stage and a *merge* stage. Each
//! core's trace generation and private L1D/L2 simulation depend only on
//! that core's own stream, so they are precomputed into per-core
//! lookahead buffers of [`ShardStep`]s — concurrently across
//! [`SystemConfig::threads`] worker threads when asked to, but with
//! results that cannot depend on the thread count. The single merge
//! stage then consumes buffered steps in the canonical
//! lagging-core-first order, applying everything shared (memory
//! contents, LLC, the memory controller, statistics). `threads = 1` and
//! `threads = N` therefore produce bit-identical [`RunResult`]s and
//! telemetry by construction, and checkpoints capture the buffers so a
//! restore resumes mid-lookahead exactly.

use crate::baselines::{DiceCache, Hybrid2, MicroSector, OsPaging, SimpleCache, UnisonCache};
use crate::config::BaryonConfig;
use crate::controller::BaryonController;
use crate::ctrl::{MemoryController, Request, ServeStats};
use crate::metrics::RunResult;
use baryon_cache::hierarchy::private_access;
use baryon_cache::{Hierarchy, HierarchyConfig, HitLevel, PrivateAccess, SetAssocCache};
use baryon_sim::telemetry::Registry;
use baryon_sim::wire::{Reader, WireError, Writer};
use baryon_sim::Cycle;
use baryon_workloads::{MemoryContents, Op, Scale, TraceGen, Workload};
use std::collections::VecDeque;

/// Which memory controller a system runs.
// Constructed once per run; the config payload is not worth boxing.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone, PartialEq)]
pub enum ControllerKind {
    /// The Baryon controller with the given configuration.
    Baryon(BaryonConfig),
    /// Simple 2 kB DRAM cache.
    Simple,
    /// Unison Cache.
    Unison,
    /// DICE compressed DRAM cache.
    Dice,
    /// Hybrid2 flat-mode hybrid memory.
    Hybrid2,
    /// Micro-sector cache (Baryon's closest sub-blocking prior, §V).
    MicroSector,
    /// OS-based 4 kB page migration (the §II-A software design point).
    OsPaging,
}

/// One of the concrete controllers (static dispatch with an accessor for
/// Baryon-specific instrumentation).
#[derive(Debug)]
pub enum AnyController {
    /// Baryon.
    Baryon(Box<BaryonController>),
    /// Simple DRAM cache.
    Simple(SimpleCache),
    /// Unison Cache.
    Unison(UnisonCache),
    /// DICE.
    Dice(DiceCache),
    /// Hybrid2.
    Hybrid2(Hybrid2),
    /// Micro-sector cache.
    MicroSector(MicroSector),
    /// OS page migration.
    OsPaging(OsPaging),
}

macro_rules! delegate {
    ($self:ident, $c:ident => $body:expr) => {
        match $self {
            AnyController::Baryon($c) => $body,
            AnyController::Simple($c) => $body,
            AnyController::Unison($c) => $body,
            AnyController::Dice($c) => $body,
            AnyController::Hybrid2($c) => $body,
            AnyController::MicroSector($c) => $body,
            AnyController::OsPaging($c) => $body,
        }
    };
}

impl MemoryController for AnyController {
    fn read(
        &mut self,
        now: Cycle,
        req: Request,
        mem: &mut MemoryContents,
    ) -> crate::ctrl::Response {
        delegate!(self, c => c.read(now, req, mem))
    }

    fn writeback(&mut self, now: Cycle, addr: u64, mem: &mut MemoryContents) -> Cycle {
        delegate!(self, c => c.writeback(now, addr, mem))
    }

    fn serve_stats(&self) -> ServeStats {
        delegate!(self, c => c.serve_stats())
    }

    fn export(&self, reg: &mut Registry) {
        delegate!(self, c => c.export(reg))
    }

    fn reset_stats(&mut self) {
        delegate!(self, c => c.reset_stats())
    }

    fn name(&self) -> &str {
        delegate!(self, c => c.name())
    }
}

impl AnyController {
    /// The Baryon controller, if that is what this system runs.
    pub fn as_baryon(&self) -> Option<&BaryonController> {
        match self {
            AnyController::Baryon(b) => Some(b),
            _ => None,
        }
    }

    /// Mutable Baryon access (to enable phase tracking).
    pub fn as_baryon_mut(&mut self) -> Option<&mut BaryonController> {
        match self {
            AnyController::Baryon(b) => Some(b),
            _ => None,
        }
    }

    fn variant_tag(&self) -> u8 {
        match self {
            AnyController::Baryon(_) => 0,
            AnyController::Simple(_) => 1,
            AnyController::Unison(_) => 2,
            AnyController::Dice(_) => 3,
            AnyController::Hybrid2(_) => 4,
            AnyController::MicroSector(_) => 5,
            AnyController::OsPaging(_) => 6,
        }
    }

    /// Serializes the controller's mutable state (prefixed with a variant
    /// tag so a checkpoint cannot be overlaid onto a different kind).
    pub fn save_state(&self, w: &mut Writer) {
        w.u8(self.variant_tag());
        delegate!(self, c => c.save_state(w))
    }

    /// Overlays checkpointed state onto this freshly constructed
    /// controller.
    ///
    /// # Errors
    ///
    /// Returns [`WireError::BadTag`] if the checkpoint was taken with a
    /// different controller kind, and propagates truncation/geometry
    /// errors from the inner controller.
    pub fn load_state(&mut self, r: &mut Reader<'_>) -> Result<(), WireError> {
        let tag = r.u8()?;
        if tag != self.variant_tag() {
            return Err(WireError::BadTag(tag));
        }
        delegate!(self, c => c.load_state(r))
    }
}

/// System-level configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct SystemConfig {
    /// Cache hierarchy geometry.
    pub hierarchy: HierarchyConfig,
    /// The memory controller under test.
    pub controller: ControllerKind,
    /// Capacity scale shared with the workload registry.
    pub scale: Scale,
    /// Cycles per non-memory instruction (4-wide cores: 0.25).
    pub cpi_nonmem: f64,
    /// Warm-up instructions per core before measurement starts.
    pub warmup_insts: u64,
    /// Outstanding read misses a core may overlap (memory-level
    /// parallelism). 1 models a blocking core (the default used by all
    /// recorded experiments); OoO cores overlap several misses.
    pub mlp: usize,
    /// Outstanding posted writebacks a core may have before it stalls
    /// (write bandwidth back-pressure). Without a bound, pure-store
    /// workloads would never feel the memory system at all.
    pub store_buffer: usize,
    /// Enables wall-clock span telemetry (access-flow and phase timings).
    /// Off by default: disabled runs never read the host clock, so golden
    /// results stay bit-identical.
    pub telemetry: bool,
    /// Worker threads for the shard stage (per-core trace + private-cache
    /// lookahead). Purely a host-side throughput knob: any value yields
    /// bit-identical results. 1 (the default) runs the shard stage inline.
    pub threads: usize,
}

impl SystemConfig {
    /// Baryon in the paper's default cache mode.
    pub fn baryon_cache_mode(scale: Scale) -> Self {
        Self::with_controller(
            scale,
            ControllerKind::Baryon(BaryonConfig::default_cache_mode(scale)),
        )
    }

    /// Baryon-FA in flat mode (Fig 10).
    pub fn baryon_flat_fa(scale: Scale) -> Self {
        Self::with_controller(
            scale,
            ControllerKind::Baryon(BaryonConfig::default_flat_fa(scale)),
        )
    }

    /// A system around any controller kind, with scaled-hierarchy defaults.
    pub fn with_controller(scale: Scale, controller: ControllerKind) -> Self {
        SystemConfig {
            hierarchy: HierarchyConfig::table1_scaled(scale.divisor),
            controller,
            scale,
            cpi_nonmem: 0.25,
            warmup_insts: 30_000,
            mlp: 1,
            store_buffer: 32,
            telemetry: false,
            threads: 1,
        }
    }

    fn build_controller(&self) -> AnyController {
        match &self.controller {
            ControllerKind::Baryon(cfg) => {
                AnyController::Baryon(Box::new(BaryonController::new(cfg.clone())))
            }
            ControllerKind::Simple => AnyController::Simple(SimpleCache::new(self.scale)),
            ControllerKind::Unison => AnyController::Unison(UnisonCache::new(self.scale)),
            ControllerKind::Dice => AnyController::Dice(DiceCache::new(self.scale)),
            ControllerKind::Hybrid2 => AnyController::Hybrid2(Hybrid2::new(self.scale)),
            ControllerKind::MicroSector => AnyController::MicroSector(MicroSector::new(self.scale)),
            ControllerKind::OsPaging => AnyController::OsPaging(OsPaging::new(self.scale)),
        }
    }
}

const PHASE_WARMUP: u8 = 0;
const PHASE_MEASURE: u8 = 1;
const PHASE_DONE: u8 = 2;

/// Steps a shard worker precomputes per core before the merge stage asks
/// for more. Bounds lookahead memory (cores × `LOOKAHEAD` × ~40 B) and
/// sets the parallel grain; the value is behavior-invisible — only the
/// refill batching changes with it.
const LOOKAHEAD: usize = 256;

/// One precomputed core step: the trace operation plus the core-private
/// cache outcome. Produced by shard workers, consumed by the merge stage.
#[derive(Debug, Clone, Copy)]
struct ShardStep {
    op: Op,
    private: PrivateAccess,
}

impl ShardStep {
    fn save(&self, w: &mut Writer) {
        w.u64(self.op.addr);
        w.bool(self.op.write);
        w.u32(self.op.gap);
        w.bool(self.private.l1_hit);
        w.bool(self.private.l2_hit);
        w.opt(self.private.to_llc_victim.is_some());
        if let Some(a) = self.private.to_llc_victim {
            w.u64(a);
        }
        w.opt(self.private.to_llc_demand.is_some());
        if let Some(a) = self.private.to_llc_demand {
            w.u64(a);
        }
    }

    fn load(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let op = Op {
            addr: r.u64()?,
            write: r.bool()?,
            gap: r.u32()?,
        };
        let l1_hit = r.bool()?;
        let l2_hit = r.bool()?;
        let to_llc_victim = if r.opt()? { Some(r.u64()?) } else { None };
        let to_llc_demand = if r.opt()? { Some(r.u64()?) } else { None };
        Ok(ShardStep {
            op,
            private: PrivateAccess {
                l1_hit,
                l2_hit,
                to_llc_victim,
                to_llc_demand,
            },
        })
    }
}

/// One core's worth of shard work: everything a worker thread needs to
/// extend that core's lookahead buffer, borrowed disjointly from the
/// [`System`].
struct ShardCtx<'a> {
    gen: &'a mut Box<dyn TraceGen>,
    l1: &'a mut SetAssocCache,
    l2: &'a mut SetAssocCache,
    buf: &'a mut VecDeque<ShardStep>,
    /// The core's cumulative instruction target for the current phase.
    target: u64,
    /// Instructions already *consumed* by the merge stage for this core.
    consumed_insts: u64,
}

/// Tops up one core's lookahead buffer: generates trace ops and simulates
/// the private L1D/L2 until the phase target or the buffer bound is
/// reached. Generation stops exactly where merge consumption will stop
/// (both walk the same op stream accumulating `Op::instructions`), so
/// buffers drain precisely at phase boundaries.
fn refill_shard(ctx: &mut ShardCtx<'_>) {
    let mut insts = ctx.consumed_insts + ctx.buf.iter().map(|s| s.op.instructions()).sum::<u64>();
    while insts < ctx.target && ctx.buf.len() < LOOKAHEAD {
        let op = ctx.gen.next_op();
        insts += op.instructions();
        let private = private_access(ctx.l1, ctx.l2, op.addr, op.write);
        ctx.buf.push_back(ShardStep { op, private });
    }
}

/// Progress of an incremental run ([`System::begin`] /
/// [`System::advance`] / [`System::finish`]): which phase the run is in,
/// the per-core instruction targets of that phase, and the measurement
/// baselines captured at the warm-up/measure boundary. Serialized inside
/// checkpoints so a restored system resumes mid-phase.
#[derive(Debug, Clone)]
struct RunCursor {
    phase: u8,
    /// Measured instructions per core (fixed at [`System::begin`]).
    measure_insts: u64,
    /// Per-core cumulative instruction targets of the current phase.
    targets: Vec<u64>,
    /// Per-core cycle counts when measurement started.
    start: Vec<Cycle>,
    /// Total instructions executed when measurement started.
    insts_before: u64,
    /// Operations (trace steps) executed since [`System::begin`] — the
    /// unit the periodic checkpointer counts.
    ops: u64,
}

/// Which phase an incremental run is in (see [`System::run_progress`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunPhase {
    /// Executing warm-up instructions; measurement has not started.
    Warmup,
    /// Executing measured instructions.
    Measure,
    /// The run is complete; [`System::finish`] will succeed.
    Done,
}

impl RunPhase {
    /// The wire name of the phase (`"warmup"`, `"measure"`, `"done"`).
    pub fn as_str(self) -> &'static str {
        match self {
            RunPhase::Warmup => "warmup",
            RunPhase::Measure => "measure",
            RunPhase::Done => "done",
        }
    }
}

/// A read-only snapshot of an in-progress run — the progress event hook
/// on the run cursor. Streaming endpoints serialize these between
/// [`System::advance`] chunks; `ops` is strictly monotonic over a run, so
/// consumers can order events without wall clocks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunProgress {
    /// Current phase.
    pub phase: RunPhase,
    /// Trace operations executed since [`System::begin`] (monotonic).
    pub ops: u64,
    /// Cumulative instructions executed toward `insts_target`.
    pub insts_done: u64,
    /// Cumulative instruction target of the current phase.
    pub insts_target: u64,
    /// Simulated cycles elapsed in the measure phase so far (0 during
    /// warm-up) — the partial-telemetry figure streamed to clients.
    pub cycles: u64,
}

/// The simulated 16-core system.
pub struct System {
    cfg: SystemConfig,
    workload_name: String,
    hierarchy: Hierarchy,
    controller: AnyController,
    contents: MemoryContents,
    gens: Vec<Box<dyn TraceGen>>,
    core_time: Vec<Cycle>,
    core_insts: Vec<u64>,
    /// Per-core completion times of in-flight read misses (MLP window).
    outstanding: Vec<Vec<Cycle>>,
    /// Per-core completion times of posted writebacks (store buffer).
    wb_queue: Vec<Vec<Cycle>>,
    /// Per-core lookahead buffers of precomputed shard steps (see the
    /// module docs on deterministic parallel execution).
    shards: Vec<VecDeque<ShardStep>>,
    llc_misses: u64,
    read_latency: baryon_sim::histogram::Histogram,
    /// In-progress incremental run, if any.
    cursor: Option<RunCursor>,
    /// System-level spans (warm-up / measure phases); live only when
    /// `SystemConfig::telemetry` is set.
    telemetry: Registry,
}

impl std::fmt::Debug for System {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("System")
            .field("workload", &self.workload_name)
            .field("controller", &self.controller.name())
            .field("cores", &self.core_time.len())
            .finish_non_exhaustive()
    }
}

impl System {
    /// Builds a system running `workload` with the given seed.
    pub fn new(cfg: SystemConfig, workload: &Workload, seed: u64) -> Self {
        let cores = cfg.hierarchy.cores;
        let gens = (0..cores)
            .map(|c| workload.spawn_core(c, cores, seed))
            .collect();
        let mut controller = cfg.build_controller();
        let mut telemetry = Registry::new();
        if cfg.telemetry {
            telemetry.enable_spans();
            if let Some(b) = controller.as_baryon_mut() {
                b.enable_telemetry_spans();
            }
        }
        System {
            hierarchy: Hierarchy::new(cfg.hierarchy),
            controller,
            contents: workload.contents(seed),
            gens,
            core_time: vec![0; cores],
            core_insts: vec![0; cores],
            outstanding: vec![Vec::new(); cores],
            wb_queue: vec![Vec::new(); cores],
            shards: vec![VecDeque::new(); cores],
            llc_misses: 0,
            read_latency: baryon_sim::histogram::Histogram::new(),
            cursor: None,
            telemetry,
            workload_name: workload.name.to_owned(),
            cfg,
        }
    }

    /// The controller (for counters and Baryon-specific instrumentation).
    pub fn controller(&self) -> &AnyController {
        &self.controller
    }

    /// Mutable controller access.
    pub fn controller_mut(&mut self) -> &mut AnyController {
        &mut self.controller
    }

    /// Runs warm-up (if configured) followed by `insts_per_core` measured
    /// instructions per core, and returns the measured results.
    pub fn run(&mut self, insts_per_core: u64) -> RunResult {
        self.begin(insts_per_core);
        self.advance(u64::MAX);
        self.finish()
    }

    /// Starts an incremental run: warm-up (if configured) followed by
    /// `insts_per_core` measured instructions per core. Drive it with
    /// [`System::advance`] and collect results with [`System::finish`].
    ///
    /// # Panics
    ///
    /// Panics if a run is already in progress.
    pub fn begin(&mut self, insts_per_core: u64) {
        assert!(self.cursor.is_none(), "a run is already in progress");
        let cursor = if self.cfg.warmup_insts > 0 {
            RunCursor {
                phase: PHASE_WARMUP,
                measure_insts: insts_per_core,
                targets: self
                    .core_insts
                    .iter()
                    .map(|i| i + self.cfg.warmup_insts)
                    .collect(),
                start: Vec::new(),
                insts_before: 0,
                ops: 0,
            }
        } else {
            RunCursor {
                phase: PHASE_MEASURE,
                measure_insts: insts_per_core,
                targets: self.core_insts.iter().map(|i| i + insts_per_core).collect(),
                start: self.core_time.clone(),
                insts_before: self.core_insts.iter().sum(),
                ops: 0,
            }
        };
        self.cursor = Some(cursor);
    }

    /// Executes up to `max_ops` trace operations of the in-progress run,
    /// crossing the warm-up/measure boundary as needed. Returns `true`
    /// once the run is complete (then call [`System::finish`]).
    ///
    /// # Panics
    ///
    /// Panics if no run is in progress.
    pub fn advance(&mut self, max_ops: u64) -> bool {
        assert!(self.cursor.is_some(), "no run in progress");
        let mut budget = max_ops;
        loop {
            let phase = self.cursor.as_ref().expect("cursor").phase;
            match phase {
                PHASE_WARMUP => {
                    let targets = self.cursor.as_ref().expect("cursor").targets.clone();
                    // Phase spans are coarse events: always sample.
                    let t = self.telemetry.phase_timer();
                    let (done, ops) = self.run_phase_chunk(&targets, &mut budget);
                    self.telemetry.record_span("sim.span.warmup", t);
                    self.cursor.as_mut().expect("cursor").ops += ops;
                    if !done {
                        return false;
                    }
                    self.reset_measurement();
                    let start = self.core_time.clone();
                    let insts_before = self.core_insts.iter().sum();
                    let measure_insts = self.cursor.as_ref().expect("cursor").measure_insts;
                    let targets = self.core_insts.iter().map(|i| i + measure_insts).collect();
                    let cur = self.cursor.as_mut().expect("cursor");
                    cur.phase = PHASE_MEASURE;
                    cur.targets = targets;
                    cur.start = start;
                    cur.insts_before = insts_before;
                }
                PHASE_MEASURE => {
                    let targets = self.cursor.as_ref().expect("cursor").targets.clone();
                    let t = self.telemetry.phase_timer();
                    let (done, ops) = self.run_phase_chunk(&targets, &mut budget);
                    self.telemetry.record_span("sim.span.measure", t);
                    let cur = self.cursor.as_mut().expect("cursor");
                    cur.ops += ops;
                    if !done {
                        return false;
                    }
                    cur.phase = PHASE_DONE;
                    return true;
                }
                _ => return true,
            }
        }
    }

    /// Operations executed so far by the in-progress run (0 if none).
    pub fn run_ops(&self) -> u64 {
        self.cursor.as_ref().map_or(0, |c| c.ops)
    }

    /// A snapshot of the in-progress run's cursor — the progress event
    /// hook that feeds streaming status endpoints. Returns `None` when no
    /// run is in progress. Reading progress never perturbs the run.
    pub fn run_progress(&self) -> Option<RunProgress> {
        let cur = self.cursor.as_ref()?;
        let insts: u64 = self.core_insts.iter().sum();
        let target: u64 = cur.targets.iter().sum();
        let cycles = match cur.phase {
            PHASE_MEASURE | PHASE_DONE => self
                .core_time
                .iter()
                .zip(&cur.start)
                .map(|(t, s)| t - s)
                .max()
                .unwrap_or(0),
            _ => 0,
        };
        Some(RunProgress {
            phase: match cur.phase {
                PHASE_WARMUP => RunPhase::Warmup,
                PHASE_MEASURE => RunPhase::Measure,
                _ => RunPhase::Done,
            },
            ops: cur.ops,
            // Both counts are cumulative since system construction, so
            // `insts_done` is monotonic across the whole run; the target
            // steps up once at the warm-up/measure boundary.
            insts_done: insts.min(target),
            insts_target: target,
            cycles,
        })
    }

    /// True while a [`System::begin`] run has not been [`System::finish`]ed.
    pub fn run_in_progress(&self) -> bool {
        self.cursor.is_some()
    }

    /// Assembles the results of a completed incremental run.
    ///
    /// # Panics
    ///
    /// Panics if no run is in progress or the run has not completed.
    pub fn finish(&mut self) -> RunResult {
        let cur = self.cursor.take().expect("no run in progress");
        assert!(
            cur.phase == PHASE_DONE,
            "run not complete: keep calling advance()"
        );
        let cycles = self
            .core_time
            .iter()
            .zip(&cur.start)
            .map(|(t, s)| t - s)
            .max()
            .unwrap_or(0);
        let instructions = self.core_insts.iter().sum::<u64>() - cur.insts_before;
        let serve = self.controller.serve_stats();
        let mut reg = Registry::new();
        self.hierarchy.export(&mut reg);
        let mut ctrl_reg = Registry::new();
        self.controller.export(&mut ctrl_reg);
        let mut serve_reg = Registry::new();
        serve.export(&mut serve_reg);
        ctrl_reg.absorb("serve", &serve_reg);
        reg.absorb("ctrl", &ctrl_reg);
        reg.set_counter("sim.cycles", cycles);
        reg.set_counter("sim.instructions", instructions);
        reg.set_counter("sim.llc_misses", self.llc_misses);
        reg.observe_histogram("sim.read_latency", &self.read_latency);
        reg.merge(&self.telemetry);
        RunResult {
            controller: self.controller.name().to_owned(),
            workload: self.workload_name.clone(),
            total_cycles: cycles,
            instructions,
            llc_misses: self.llc_misses,
            serve,
            read_latency: self.read_latency.clone(),
            telemetry: reg,
            config_generation: 0,
        }
    }

    fn reset_measurement(&mut self) {
        self.hierarchy.reset_stats();
        self.controller.reset_stats();
        self.llc_misses = 0;
        self.read_latency = baryon_sim::histogram::Histogram::new();
    }

    /// Advances cores toward the per-core cumulative instruction
    /// `targets`, interleaving cores in timestamp order and spending at
    /// most `budget` operations. Returns whether every core reached its
    /// target, plus the operations executed.
    ///
    /// This is the merge stage: each scheduled step is popped from the
    /// core's lookahead buffer (refilled — possibly in parallel — when
    /// the scheduled core runs dry). The refill trigger depends only on
    /// consumption counts, so chunked `advance` calls, thread counts, and
    /// checkpoint cuts cannot shift it.
    fn run_phase_chunk(&mut self, targets: &[u64], budget: &mut u64) -> (bool, u64) {
        let cores = self.core_time.len();
        let mut ops = 0;
        loop {
            // The lagging unfinished core goes next.
            let Some(core) = (0..cores)
                .filter(|c| self.core_insts[*c] < targets[*c])
                .min_by_key(|c| self.core_time[*c])
            else {
                return (true, ops);
            };
            if *budget == 0 {
                return (false, ops);
            }
            if self.shards[core].is_empty() {
                self.refill_shards(targets);
            }
            let step = self.shards[core]
                .pop_front()
                .expect("refilled buffer of an unfinished core");
            self.step_merged(core, step);
            ops += 1;
            *budget -= 1;
        }
    }

    /// Tops up every core's lookahead buffer toward its phase target,
    /// fanning the independent per-core work out over
    /// [`SystemConfig::threads`] scoped worker threads (inline when 1).
    fn refill_shards(&mut self, targets: &[u64]) {
        let core_insts = &self.core_insts;
        let mut ctxs: Vec<ShardCtx<'_>> = self
            .gens
            .iter_mut()
            .zip(self.hierarchy.private_shards())
            .zip(self.shards.iter_mut())
            .enumerate()
            .map(|(core, ((gen, (l1, l2)), buf))| ShardCtx {
                gen,
                l1,
                l2,
                buf,
                target: targets[core],
                consumed_insts: core_insts[core],
            })
            .collect();
        let threads = self.cfg.threads.max(1);
        if threads == 1 {
            for ctx in &mut ctxs {
                refill_shard(ctx);
            }
        } else {
            let chunk = ctxs.len().div_ceil(threads);
            std::thread::scope(|s| {
                for batch in ctxs.chunks_mut(chunk) {
                    s.spawn(move || {
                        for ctx in batch {
                            refill_shard(ctx);
                        }
                    });
                }
            });
        }
    }

    /// Applies one precomputed shard step in merge order: memory-contents
    /// writes, shared-cache and controller effects, statistics, timing.
    fn step_merged(&mut self, core: usize, step: ShardStep) {
        let op = step.op;
        self.core_insts[core] += op.instructions();
        let mut t = self.core_time[core] + (op.gap as f64 * self.cfg.cpi_nonmem).ceil() as Cycle;
        if op.write {
            // The store's value changes memory contents now; the data moves
            // to memory later via the write-back path.
            self.contents.write_line(op.addr);
        }
        let access = self
            .hierarchy
            .access_shared(op.addr, op.write, &step.private);
        for wb in &access.writebacks {
            let done = self.controller.writeback(t, *wb, &mut self.contents);
            t = self.post_writeback(core, t, done);
        }
        if access.level == HitLevel::Memory {
            self.llc_misses += 1;
            let resp = self.controller.read(
                t + access.latency,
                Request {
                    addr: op.addr,
                    core,
                },
                &mut self.contents,
            );
            if !op.write {
                self.read_latency.record(resp.latency);
            }
            if !resp.extra_lines.is_empty() {
                let wbs = self.hierarchy.install_llc_lines(&resp.extra_lines);
                for wb in wbs {
                    let done = self.controller.writeback(t, wb, &mut self.contents);
                    t = self.post_writeback(core, t, done);
                }
            }
            if op.write {
                // Stores retire into the store buffer: the miss latency is
                // overlapped, only the on-chip path stalls the core.
                t += access.latency;
            } else if self.cfg.mlp <= 1 {
                t += access.latency + resp.latency;
            } else {
                // Overlap up to `mlp` read misses: the core only stalls
                // when the MLP window is full, waiting for the oldest
                // in-flight miss to complete.
                let completion = t + access.latency + resp.latency;
                let window = &mut self.outstanding[core];
                window.retain(|c| *c > t);
                if window.len() >= self.cfg.mlp {
                    let oldest = window.iter().copied().min().expect("window full");
                    t = t.max(oldest);
                    window.retain(|c| *c > t);
                }
                window.push(completion);
                t += access.latency;
            }
        } else {
            t += access.latency;
        }
        // A memory instruction costs at least one issue cycle.
        self.core_time[core] = t.max(self.core_time[core] + 1);
    }

    /// Tracks a posted writeback completing at `done`; returns the (possibly
    /// stalled) core time: the store buffer holds `store_buffer` entries and
    /// a full buffer blocks until the oldest drains.
    fn post_writeback(&mut self, core: usize, mut t: Cycle, done: Cycle) -> Cycle {
        let cap = self.cfg.store_buffer.max(1);
        let q = &mut self.wb_queue[core];
        q.retain(|c| *c > t);
        if q.len() >= cap {
            let oldest = q.iter().copied().min().expect("buffer full");
            t = t.max(oldest);
            q.retain(|c| *c > t);
        }
        q.push(done);
        t
    }

    /// Serializes the complete mutable system state — run cursor, cache
    /// hierarchy, controller, memory contents, trace-generator RNGs,
    /// per-core timing, and telemetry — for crash-consistent
    /// checkpointing. Configuration is not serialized: the restorer
    /// rebuilds an identical [`System`] via [`System::new`] first.
    pub fn save_state(&self, w: &mut Writer) {
        w.opt(self.cursor.is_some());
        if let Some(cur) = &self.cursor {
            w.u8(cur.phase);
            w.u64(cur.measure_insts);
            w.seq(cur.targets.len());
            for t in &cur.targets {
                w.u64(*t);
            }
            w.seq(cur.start.len());
            for s in &cur.start {
                w.u64(*s);
            }
            w.u64(cur.insts_before);
            w.u64(cur.ops);
        }
        self.hierarchy.save_state(w);
        self.controller.save_state(w);
        self.contents.save_state(w);
        w.seq(self.gens.len());
        for g in &self.gens {
            g.save_state(w);
        }
        // The lookahead buffers belong to the generators' checkpoint
        // moment: `gens` (and the private caches) have already produced
        // these steps, so a restore must re-consume, not re-generate them.
        w.seq(self.shards.len());
        for buf in &self.shards {
            w.seq(buf.len());
            for step in buf {
                step.save(w);
            }
        }
        w.seq(self.core_time.len());
        for t in &self.core_time {
            w.u64(*t);
        }
        w.seq(self.core_insts.len());
        for i in &self.core_insts {
            w.u64(*i);
        }
        save_queues(w, &self.outstanding);
        save_queues(w, &self.wb_queue);
        w.u64(self.llc_misses);
        self.read_latency.save_state(w);
        self.telemetry.save_state(w);
    }

    /// Overlays checkpointed state onto this freshly constructed system.
    /// The system must have been built with the same configuration,
    /// workload, and seed as the checkpointed one; continuing the run
    /// afterwards is bit-identical to never having stopped.
    ///
    /// # Errors
    ///
    /// Returns [`WireError`] on a truncated or corrupt payload, or when
    /// the state shape does not match this system (wrong controller kind,
    /// core count, or geometry).
    pub fn load_state(&mut self, r: &mut Reader<'_>) -> Result<(), WireError> {
        let cores = self.core_time.len();
        self.cursor = if r.opt()? {
            let phase = r.u8()?;
            if phase > PHASE_DONE {
                return Err(WireError::BadTag(phase));
            }
            let measure_insts = r.u64()?;
            let n = r.seq()?;
            if n != cores {
                return Err(WireError::BadLength(n as u64));
            }
            let targets = (0..n).map(|_| r.u64()).collect::<Result<_, _>>()?;
            let n = r.seq()?;
            if n != cores && n != 0 {
                return Err(WireError::BadLength(n as u64));
            }
            let start = (0..n).map(|_| r.u64()).collect::<Result<_, _>>()?;
            Some(RunCursor {
                phase,
                measure_insts,
                targets,
                start,
                insts_before: r.u64()?,
                ops: r.u64()?,
            })
        } else {
            None
        };
        self.hierarchy.load_state(r)?;
        self.controller.load_state(r)?;
        self.contents.load_state(r)?;
        let n = r.seq()?;
        if n != self.gens.len() {
            return Err(WireError::BadLength(n as u64));
        }
        for g in &mut self.gens {
            g.load_state(r)?;
        }
        let n = r.seq()?;
        if n != cores {
            return Err(WireError::BadLength(n as u64));
        }
        for buf in &mut self.shards {
            let steps = r.seq()?;
            buf.clear();
            for _ in 0..steps {
                buf.push_back(ShardStep::load(r)?);
            }
        }
        load_u64_exact(r, &mut self.core_time)?;
        load_u64_exact(r, &mut self.core_insts)?;
        self.outstanding = load_queues(r, cores)?;
        self.wb_queue = load_queues(r, cores)?;
        self.llc_misses = r.u64()?;
        self.read_latency = baryon_sim::histogram::Histogram::load_state(r)?;
        self.telemetry = Registry::load_state(r)?;
        Ok(())
    }
}

fn save_queues(w: &mut Writer, queues: &[Vec<Cycle>]) {
    w.seq(queues.len());
    for q in queues {
        w.seq(q.len());
        for c in q {
            w.u64(*c);
        }
    }
}

fn load_queues(r: &mut Reader<'_>, cores: usize) -> Result<Vec<Vec<Cycle>>, WireError> {
    let n = r.seq()?;
    if n != cores {
        return Err(WireError::BadLength(n as u64));
    }
    (0..n)
        .map(|_| (0..r.seq()?).map(|_| r.u64()).collect())
        .collect()
}

fn load_u64_exact(r: &mut Reader<'_>, out: &mut [u64]) -> Result<(), WireError> {
    let n = r.seq()?;
    if n != out.len() {
        return Err(WireError::BadLength(n as u64));
    }
    for v in out {
        *v = r.u64()?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use baryon_workloads::by_name;

    fn scale() -> Scale {
        Scale { divisor: 2048 }
    }

    fn run(kind: ControllerKind, workload: &str, insts: u64) -> RunResult {
        let w = by_name(workload, scale()).expect("workload");
        let mut cfg = SystemConfig::with_controller(scale(), kind);
        cfg.warmup_insts = 5_000;
        System::new(cfg, &w, 7).run(insts)
    }

    #[test]
    fn all_controllers_run_end_to_end() {
        for kind in [
            ControllerKind::Baryon(BaryonConfig::default_cache_mode(scale())),
            ControllerKind::Simple,
            ControllerKind::Unison,
            ControllerKind::Dice,
            ControllerKind::Hybrid2,
        ] {
            let r = run(kind.clone(), "505.mcf_r", 20_000);
            assert!(r.total_cycles > 0, "{kind:?} produced no cycles");
            assert!(r.instructions >= 20_000 * 16);
            assert!(r.ipc() > 0.0);
            let s = &r.serve;
            assert!(s.fast_serve_rate() >= 0.0 && s.fast_serve_rate() <= 1.0);
        }
    }

    #[test]
    fn runs_are_deterministic() {
        let a = run(ControllerKind::Simple, "519.lbm_r", 10_000);
        let b = run(ControllerKind::Simple, "519.lbm_r", 10_000);
        assert_eq!(a.total_cycles, b.total_cycles);
        assert_eq!(a.serve, b.serve);
    }

    #[test]
    fn flat_fa_baryon_runs() {
        let r = run(
            ControllerKind::Baryon(BaryonConfig::default_flat_fa(scale())),
            "505.mcf_r",
            20_000,
        );
        assert!(r.total_cycles > 0);
        assert_eq!(r.controller, "baryon-fa");
    }

    #[test]
    fn traffic_conservation() {
        // Controller traffic must be at least the useful bytes served from
        // each device class (sanity of the accounting).
        let r = run(ControllerKind::Simple, "505.mcf_r", 20_000);
        assert!(r.serve.fast_bytes + r.serve.slow_bytes >= 64 * r.serve.reads);
    }

    #[test]
    fn mlp_overlap_speeds_latency_bound_reads_up() {
        // A latency-bound scenario: the footprint fits in fast memory, so
        // after warm-up every read is a fixed-latency fast hit that an MLP
        // window can overlap (bandwidth-bound runs are a wash by design).
        let mut w = by_name("505.mcf_r", scale()).expect("workload");
        w.footprint = 1 << 20; // 1 MB vs 2 MB fast memory
        let mut blocking = SystemConfig::with_controller(scale(), ControllerKind::Simple);
        blocking.warmup_insts = 20_000;
        let mut overlapped = blocking.clone();
        overlapped.mlp = 8;
        let b = System::new(blocking, &w, 7).run(15_000);
        let o = System::new(overlapped, &w, 7).run(15_000);
        assert!(
            o.total_cycles < b.total_cycles,
            "overlapping 8 hits must beat a blocking core ({} vs {})",
            o.total_cycles,
            b.total_cycles
        );
    }

    #[test]
    fn warmup_resets_measured_stats() {
        let w = by_name("505.mcf_r", scale()).expect("workload");
        let mut with_warmup = SystemConfig::with_controller(scale(), ControllerKind::Simple);
        with_warmup.warmup_insts = 10_000;
        let r = System::new(with_warmup, &w, 3).run(10_000);
        // The measured instruction count must reflect only the measured
        // phase (16 cores x 10k, +- the per-op rounding of the last op).
        let per_core = r.instructions / 16;
        assert!(
            (10_000..11_000).contains(&per_core),
            "measured {per_core} instructions per core"
        );
    }

    #[test]
    fn store_buffer_throttles_pure_write_streams() {
        // ycsb-load writes every line; with a tiny store buffer the cores
        // must run slower than with a large one.
        let w = by_name("ycsb-load", scale()).expect("workload");
        let mut tight = SystemConfig::with_controller(scale(), ControllerKind::Simple);
        tight.warmup_insts = 2_000;
        tight.store_buffer = 1;
        let mut roomy = tight.clone();
        roomy.store_buffer = 1024;
        let t = System::new(tight, &w, 5).run(10_000);
        let r = System::new(roomy, &w, 5).run(10_000);
        assert!(
            t.total_cycles > r.total_cycles,
            "a 1-entry store buffer must be slower ({} vs {})",
            t.total_cycles,
            r.total_cycles
        );
    }

    #[test]
    fn read_latency_histogram_populates() {
        let w = by_name("505.mcf_r", scale()).expect("workload");
        let mut cfg = SystemConfig::with_controller(scale(), ControllerKind::Simple);
        cfg.warmup_insts = 1_000;
        let r = System::new(cfg, &w, 3).run(10_000);
        assert!(r.read_latency.count() > 0, "misses must record latencies");
        assert!(r.read_latency.percentile(99.0) >= r.read_latency.percentile(50.0));
        // Loads are a strict subset of LLC misses (stores miss too but are
        // posted and unsampled).
        assert!(r.read_latency.count() <= r.llc_misses);
    }

    #[test]
    fn incremental_run_matches_one_shot() {
        let w = by_name("505.mcf_r", scale()).expect("workload");
        let mut cfg = SystemConfig::with_controller(scale(), ControllerKind::Simple);
        cfg.warmup_insts = 5_000;
        let golden = System::new(cfg.clone(), &w, 7).run(10_000);
        let mut sys = System::new(cfg, &w, 7);
        sys.begin(10_000);
        while !sys.advance(1_000) {}
        let chunked = sys.finish();
        assert_eq!(golden.total_cycles, chunked.total_cycles);
        assert_eq!(golden.serve, chunked.serve);
        assert_eq!(
            golden.telemetry.snapshot(),
            chunked.telemetry.snapshot(),
            "chunked execution must be invisible in telemetry"
        );
    }

    #[test]
    fn save_restore_resumes_bit_identically() {
        let w = by_name("505.mcf_r", scale()).expect("workload");
        let mut cfg = SystemConfig::baryon_cache_mode(scale());
        cfg.warmup_insts = 5_000;
        let golden = System::new(cfg.clone(), &w, 7).run(10_000);

        let mut sys = System::new(cfg.clone(), &w, 7);
        sys.begin(10_000);
        let done = sys.advance(8_000); // stop mid-run
        assert!(!done && sys.run_in_progress());
        let mut wr = Writer::new();
        sys.save_state(&mut wr);
        let bytes = wr.into_bytes();
        drop(sys); // the original "crashes"

        let mut restored = System::new(cfg, &w, 7);
        let mut rd = Reader::new(&bytes);
        restored.load_state(&mut rd).expect("well-formed state");
        rd.finish().expect("no trailing bytes");
        assert_eq!(restored.run_ops(), 8_000);
        restored.advance(u64::MAX);
        let resumed = restored.finish();
        assert_eq!(golden.total_cycles, resumed.total_cycles);
        assert_eq!(golden.llc_misses, resumed.llc_misses);
        assert_eq!(golden.serve, resumed.serve);
        assert_eq!(golden.telemetry.snapshot(), resumed.telemetry.snapshot());
    }

    #[test]
    fn load_state_rejects_wrong_controller() {
        let w = by_name("505.mcf_r", scale()).expect("workload");
        let cfg = SystemConfig::with_controller(scale(), ControllerKind::Simple);
        let mut wr = Writer::new();
        System::new(cfg, &w, 7).save_state(&mut wr);
        let bytes = wr.into_bytes();
        let other = SystemConfig::with_controller(scale(), ControllerKind::Dice);
        let mut sys = System::new(other, &w, 7);
        let mut rd = Reader::new(&bytes);
        assert!(sys.load_state(&mut rd).is_err());
    }

    #[test]
    fn baryon_accessor_works() {
        let w = by_name("505.mcf_r", scale()).expect("workload");
        let cfg = SystemConfig::baryon_cache_mode(scale());
        let mut sys = System::new(cfg, &w, 7);
        assert!(sys.controller().as_baryon().is_some());
        sys.controller_mut()
            .as_baryon_mut()
            .expect("baryon")
            .enable_phase_tracking(64, 100);
    }
}

//! Address geometry: blocks, sub-blocks, super-blocks, sets.
//!
//! Baryon's default geometry (§III):
//!
//! * 64 B cachelines,
//! * 256 B sub-blocks (8 per block),
//! * 2 kB data blocks (aligned with DRAM pages),
//! * 16 kB super-blocks (8 blocks).
//!
//! Addresses flowing through the controller are *OS-physical* byte addresses;
//! [`Geometry`] provides all index arithmetic plus validation.

/// Index arithmetic for the block/sub-block/super-block hierarchy.
///
/// # Examples
///
/// ```
/// use baryon_core::Geometry;
///
/// let g = Geometry::baryon_default();
/// assert_eq!(g.subs_per_block(), 8);
/// assert_eq!(g.block_of(0x1234), 2);           // 0x1234 / 2048
/// assert_eq!(g.sub_of(0x1234), 2);             // byte 0x234 / 256
/// assert_eq!(g.super_of_block(11), 1);         // block 11 / 8
/// assert_eq!(g.blk_off(11), 3);                // block 11 % 8
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Geometry {
    /// Data block size in bytes (2048 by default).
    pub block_bytes: u64,
    /// Sub-block size in bytes (256 by default; 64 for Baryon-64B).
    pub sub_bytes: u64,
    /// Blocks per super-block (8 by default; swept in Fig 13(b)).
    pub blocks_per_super: u64,
}

impl Geometry {
    /// The paper's default geometry: 2 kB blocks, 256 B sub-blocks,
    /// 8-block super-blocks.
    pub fn baryon_default() -> Self {
        Geometry {
            block_bytes: 2048,
            sub_bytes: 256,
            blocks_per_super: 8,
        }
    }

    /// The Baryon-64B variant (Fig 9): 64 B sub-blocks.
    pub fn baryon_64b() -> Self {
        Geometry {
            sub_bytes: 64,
            ..Self::baryon_default()
        }
    }

    /// Validates internal consistency.
    ///
    /// # Errors
    ///
    /// Returns a message describing the first invalid relationship.
    pub fn validate(&self) -> Result<(), String> {
        if !self.block_bytes.is_power_of_two() || self.block_bytes < 256 {
            return Err(format!(
                "block_bytes {} must be a power of two >= 256",
                self.block_bytes
            ));
        }
        if !self.sub_bytes.is_power_of_two() || self.sub_bytes < 64 {
            return Err(format!(
                "sub_bytes {} must be a power of two >= 64",
                self.sub_bytes
            ));
        }
        if self.sub_bytes > self.block_bytes {
            return Err("sub-blocks cannot exceed the block size".to_owned());
        }
        if !self.blocks_per_super.is_power_of_two() || self.blocks_per_super == 0 {
            return Err(format!(
                "blocks_per_super {} must be a positive power of two",
                self.blocks_per_super
            ));
        }
        Ok(())
    }

    /// Sub-blocks per block (8 in the default geometry).
    pub fn subs_per_block(&self) -> usize {
        (self.block_bytes / self.sub_bytes) as usize
    }

    /// Cachelines per sub-block (4 in the default geometry).
    pub fn lines_per_sub(&self) -> usize {
        (self.sub_bytes / 64) as usize
    }

    /// Super-block size in bytes (16 kB in the default geometry).
    pub fn super_bytes(&self) -> u64 {
        self.block_bytes * self.blocks_per_super
    }

    /// Block index of a byte address.
    pub fn block_of(&self, addr: u64) -> u64 {
        addr / self.block_bytes
    }

    /// Sub-block index (within its block) of a byte address.
    pub fn sub_of(&self, addr: u64) -> usize {
        ((addr % self.block_bytes) / self.sub_bytes) as usize
    }

    /// Super-block index of a block index.
    pub fn super_of_block(&self, block: u64) -> u64 {
        block / self.blocks_per_super
    }

    /// Offset of a block within its super-block.
    pub fn blk_off(&self, block: u64) -> usize {
        (block % self.blocks_per_super) as usize
    }

    /// Byte address of sub-block `sub` of block `block`.
    pub fn sub_addr(&self, block: u64, sub: usize) -> u64 {
        block * self.block_bytes + sub as u64 * self.sub_bytes
    }

    /// Byte address of block `block`.
    pub fn block_addr(&self, block: u64) -> u64 {
        block * self.block_bytes
    }

    /// The 64 B-aligned cacheline addresses of sub-block `sub` of `block`.
    pub fn sub_lines(&self, block: u64, sub: usize) -> impl Iterator<Item = u64> {
        let base = self.sub_addr(block, sub);
        (0..self.lines_per_sub() as u64).map(move |i| base + i * 64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_geometry_matches_paper() {
        let g = Geometry::baryon_default();
        g.validate().expect("valid");
        assert_eq!(g.subs_per_block(), 8);
        assert_eq!(g.lines_per_sub(), 4);
        assert_eq!(g.super_bytes(), 16 << 10);
    }

    #[test]
    fn baryon_64b_geometry() {
        let g = Geometry::baryon_64b();
        g.validate().expect("valid");
        assert_eq!(g.subs_per_block(), 32);
        assert_eq!(g.lines_per_sub(), 1);
    }

    #[test]
    fn address_math_roundtrip() {
        let g = Geometry::baryon_default();
        for addr in [0u64, 64, 2047, 2048, 16383, 16384, 1 << 30] {
            let b = g.block_of(addr);
            let s = g.sub_of(addr);
            let sub_base = g.sub_addr(b, s);
            assert!(sub_base <= addr && addr < sub_base + g.sub_bytes);
            assert_eq!(
                g.super_of_block(b) * g.blocks_per_super + g.blk_off(b) as u64,
                b
            );
        }
    }

    #[test]
    fn sub_lines_cover_sub_block() {
        let g = Geometry::baryon_default();
        let lines: Vec<u64> = g.sub_lines(3, 5).collect();
        assert_eq!(lines.len(), 4);
        assert_eq!(lines[0], 3 * 2048 + 5 * 256);
        assert_eq!(lines[3], 3 * 2048 + 5 * 256 + 192);
    }

    #[test]
    fn invalid_geometries_rejected() {
        let mut g = Geometry::baryon_default();
        g.sub_bytes = 100;
        assert!(g.validate().is_err());
        let mut g = Geometry::baryon_default();
        g.sub_bytes = 4096;
        assert!(g.validate().is_err());
        let mut g = Geometry::baryon_default();
        g.blocks_per_super = 3;
        assert!(g.validate().is_err());
    }

    #[test]
    fn super_block_sweep_sizes() {
        for bps in [2u64, 4, 8, 16, 32] {
            let g = Geometry {
                blocks_per_super: bps,
                ..Geometry::baryon_default()
            };
            g.validate().expect("valid");
            assert_eq!(g.super_bytes(), 2048 * bps);
        }
    }
}

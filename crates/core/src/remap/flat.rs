//! The flat off-chip remap table and its on-chip remap cache.
//!
//! The remap table lives in fast memory (one 2 B [`RemapEntry`] per OS
//! block) and is accessed at super-block granularity: one 16 B line holds
//! all eight entries of a super-block, which the locator needs anyway
//! (§III-C). The on-chip remap cache (32 kB, Table I) caches those lines.

use super::{RemapStats, RemapStore};
use crate::metadata::RemapEntry;
use baryon_cache::{CacheConfig, SetAssocCache};
use baryon_mem::MemDevice;
use baryon_sim::wire::{Reader, WireError, Writer};
use baryon_sim::Cycle;

/// The flat remap table plus its cache model.
#[derive(Debug, Clone)]
pub struct RemapTable {
    entries: Vec<RemapEntry>,
    blocks_per_super: usize,
    cache: SetAssocCache,
    hit_latency: Cycle,
    /// Device address of the table inside fast memory.
    table_base: u64,
    /// Bytes reserved for the table in fast memory (the footprint). The
    /// controller provisions the table over the full fast+slow block space,
    /// which can exceed `entries.len() * 2`.
    provisioned_bytes: u64,
    stats: RemapStats,
}

impl RemapTable {
    /// Creates a table for `os_blocks` blocks.
    ///
    /// `cache_bytes` sizes the on-chip remap cache; each cache line covers
    /// one super-block (16 B of entries in the default geometry).
    ///
    /// # Panics
    ///
    /// Panics if `os_blocks` or `blocks_per_super` is zero.
    pub fn new(
        os_blocks: u64,
        blocks_per_super: usize,
        cache_bytes: u64,
        hit_latency: Cycle,
        table_base: u64,
    ) -> Self {
        assert!(os_blocks > 0 && blocks_per_super > 0, "empty remap table");
        let line_bytes = (blocks_per_super * 2).next_power_of_two().max(16) as u64;
        let ways = 8;
        let sets = (cache_bytes / line_bytes / ways as u64)
            .max(4)
            .next_power_of_two() as usize;
        RemapTable {
            entries: vec![RemapEntry::empty(); os_blocks as usize],
            blocks_per_super,
            cache: SetAssocCache::new(CacheConfig::new(sets, ways, line_bytes, hit_latency)),
            hit_latency,
            table_base,
            provisioned_bytes: os_blocks * 2,
            stats: RemapStats::default(),
        }
    }

    /// Sets the provisioned table size (the flat footprint reported by
    /// [`RemapStore::footprint_bytes`] and streamed by the metadata scrub).
    /// The controller reserves the table over the full fast+slow block
    /// space, which can exceed the OS-visible `os_blocks * 2`.
    #[must_use]
    pub fn with_provisioned_bytes(mut self, bytes: u64) -> Self {
        self.provisioned_bytes = bytes;
        self
    }

    /// The entry of `block`.
    ///
    /// # Panics
    ///
    /// Panics if `block` is out of range.
    pub fn entry(&self, block: u64) -> &RemapEntry {
        &self.entries[block as usize]
    }

    /// Mutable access to the entry of `block`; counts a table update.
    pub fn entry_mut(&mut self, block: u64) -> &mut RemapEntry {
        self.stats.table_updates += 1;
        &mut self.entries[block as usize]
    }

    /// All entries of super-block `sb`, in block order.
    pub fn super_entries(&self, sb: u64) -> &[RemapEntry] {
        let start = sb as usize * self.blocks_per_super;
        &self.entries[start..start + self.blocks_per_super]
    }

    /// Simulates the metadata lookup for super-block `sb`: probes the remap
    /// cache, fetching the table line from fast memory on a miss. Returns
    /// the metadata latency.
    pub fn lookup(&mut self, now: Cycle, sb: u64, fast: &mut MemDevice) -> Cycle {
        let line_addr = sb * self.cache.config().line_bytes;
        if self.cache.access(line_addr, false).hit {
            self.stats.cache_hits += 1;
            self.hit_latency
        } else {
            self.stats.cache_misses += 1;
            let done = fast.access(
                now + self.hit_latency,
                self.table_base + line_addr,
                64, // minimum burst
                false,
            );
            done - now
        }
    }

    /// Records a metadata write for super-block `sb` (on commit/evict).
    /// Updates go through the cache; a miss also costs a fast-memory write.
    pub fn record_update(&mut self, now: Cycle, sb: u64, fast: &mut MemDevice) {
        let line_addr = sb * self.cache.config().line_bytes;
        self.stats.table_updates += 1;
        if !self.cache.access(line_addr, true).hit {
            fast.access(now, self.table_base + line_addr, 64, true);
        }
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &RemapStats {
        &self.stats
    }

    /// Remap-cache hit rate.
    pub fn cache_hit_rate(&self) -> f64 {
        self.stats.cache_hit_rate()
    }

    /// Resets statistics only.
    pub fn reset_stats(&mut self) {
        self.stats = RemapStats::default();
    }

    /// Serializes the mutable state (entries, cache contents, stats) for
    /// checkpointing; geometry is rebuilt by [`RemapTable::new`].
    pub fn save_state(&self, w: &mut Writer) {
        w.seq(self.entries.len());
        for e in &self.entries {
            w.u32(e.remap);
            w.u32(e.pointer);
            w.u32(e.cf2);
            w.u32(e.cf4);
            w.bool(e.zero);
        }
        self.cache.save_state(w);
        w.u64(self.stats.cache_hits);
        w.u64(self.stats.cache_misses);
        w.u64(self.stats.table_updates);
    }

    /// Overlays checkpointed state onto this freshly constructed table.
    ///
    /// # Errors
    ///
    /// Returns [`WireError`] on a truncated payload or geometry mismatch.
    pub fn load_state(&mut self, r: &mut Reader<'_>) -> Result<(), WireError> {
        let n = r.seq()?;
        if n != self.entries.len() {
            return Err(WireError::BadLength(n as u64));
        }
        for e in &mut self.entries {
            *e = RemapEntry {
                remap: r.u32()?,
                pointer: r.u32()?,
                cf2: r.u32()?,
                cf4: r.u32()?,
                zero: r.bool()?,
            };
        }
        self.cache.load_state(r)?;
        self.stats.cache_hits = r.u64()?;
        self.stats.cache_misses = r.u64()?;
        self.stats.table_updates = r.u64()?;
        Ok(())
    }
}

impl RemapStore for RemapTable {
    fn entry(&self, block: u64) -> RemapEntry {
        self.entries[block as usize]
    }

    fn set_entry(&mut self, block: u64, entry: RemapEntry) {
        *self.entry_mut(block) = entry;
    }

    fn super_entries(&self, sb: u64) -> &[RemapEntry] {
        RemapTable::super_entries(self, sb)
    }

    fn lookup(&mut self, now: Cycle, sb: u64, fast: &mut MemDevice) -> Cycle {
        RemapTable::lookup(self, now, sb, fast)
    }

    fn record_update(&mut self, now: Cycle, sb: u64, fast: &mut MemDevice) {
        RemapTable::record_update(self, now, sb, fast)
    }

    fn stats(&self) -> &RemapStats {
        &self.stats
    }

    fn reset_stats(&mut self) {
        RemapTable::reset_stats(self)
    }

    fn footprint_bytes(&self) -> u64 {
        self.provisioned_bytes
    }

    fn export(&self, reg: &mut baryon_sim::telemetry::Registry) {
        // The flat store publishes exactly the classic stat triple; the
        // differential goldens pin this metric set.
        self.stats.export(reg);
    }

    fn save_state(&self, w: &mut Writer) {
        RemapTable::save_state(self, w)
    }

    fn load_state(&mut self, r: &mut Reader<'_>) -> Result<(), WireError> {
        RemapTable::load_state(self, r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use baryon_compress::Cf;
    use baryon_mem::DeviceConfig;

    fn table() -> RemapTable {
        RemapTable::new(1024, 8, 32 << 10, 3, 0)
    }

    fn fast() -> MemDevice {
        MemDevice::new(DeviceConfig::ddr4_3200())
    }

    #[test]
    fn entries_start_empty() {
        let t = table();
        assert!(t.entry(0).is_empty());
        assert!(t.entry(1023).is_empty());
    }

    #[test]
    fn super_entries_are_contiguous() {
        let mut t = table();
        t.entry_mut(17).set_range(0, Cf::X2);
        let entries = t.super_entries(2); // blocks 16..24
        assert_eq!(entries.len(), 8);
        assert!(entries[1].has_sub(0));
    }

    #[test]
    fn cold_lookup_misses_then_hits() {
        let mut t = table();
        let mut f = fast();
        let miss_lat = t.lookup(0, 5, &mut f);
        let hit_lat = t.lookup(1000, 5, &mut f);
        assert!(miss_lat > hit_lat, "miss {miss_lat} <= hit {hit_lat}");
        assert_eq!(hit_lat, 3);
        assert_eq!(t.stats().cache_misses, 1);
        assert_eq!(t.stats().cache_hits, 1);
    }

    #[test]
    fn hit_rate_computation() {
        let mut t = table();
        let mut f = fast();
        for _ in 0..9 {
            t.lookup(0, 7, &mut f);
        }
        assert!((t.cache_hit_rate() - 8.0 / 9.0).abs() < 1e-12);
    }

    #[test]
    fn update_on_miss_writes_fast_memory() {
        let mut t = table();
        let mut f = fast();
        t.record_update(0, 3, &mut f);
        assert_eq!(f.stats().writes, 1);
        // Second update hits the cache: no more device writes.
        t.record_update(100, 3, &mut f);
        assert_eq!(f.stats().writes, 1);
    }

    #[test]
    fn reset_clears_stats_not_entries() {
        let mut t = table();
        let mut f = fast();
        t.entry_mut(4).set_range(0, Cf::X1);
        t.lookup(0, 0, &mut f);
        t.reset_stats();
        assert_eq!(t.stats().cache_misses, 0);
        assert!(t.entry(4).has_sub(0));
    }

    #[test]
    #[should_panic]
    fn out_of_range_block_panics() {
        table().entry(99999);
    }

    #[test]
    fn wire_state_round_trips() {
        let mut t = table();
        let mut f = fast();
        t.entry_mut(17).set_range(0, Cf::X2);
        t.entry_mut(17).pointer = 3;
        t.lookup(0, 2, &mut f);
        t.lookup(100, 2, &mut f);
        let mut w = baryon_sim::wire::Writer::new();
        t.save_state(&mut w);
        let bytes = w.into_bytes();
        let mut fresh = table();
        let mut r = baryon_sim::wire::Reader::new(&bytes);
        fresh.load_state(&mut r).expect("well-formed");
        r.finish().expect("no trailing bytes");
        assert_eq!(*fresh.entry(17), *t.entry(17));
        assert_eq!(fresh.stats(), t.stats());
        // The restored remap cache must hit exactly where the original does.
        let lat_orig = t.lookup(1000, 2, &mut fast());
        let lat_restored = fresh.lookup(1000, 2, &mut fast());
        assert_eq!(lat_orig, lat_restored);
    }
}

//! Remap metadata stores: the translation layer between OS blocks and
//! their current physical placement.
//!
//! Two stores implement the one [`RemapStore`] contract the controller
//! hot path dispatches through:
//!
//! - [`RemapTable`] (`flat`) — Baryon's classic layout: one 2 B
//!   [`RemapEntry`] per OS block in fast memory behind a 32 kB on-chip
//!   remap cache (§III-C).
//! - [`MultiLevelRemap`] (`multilevel`) — the Trimma-style non-uniform
//!   structure: a coarse root level covers unmigrated regions with a
//!   single identity entry, and fine leaf tables exist only for regions
//!   where blocks have actually moved, behind a small hot-level cache.
//!
//! The controller holds a concrete [`RemapStoreImpl`] so dispatch stays
//! static (the serve hot path is floor-gated), while both stores remain
//! usable through the trait for tests and tooling.

mod flat;
mod multilevel;

pub use flat::RemapTable;
pub use multilevel::{MultiLevelRemap, MultiLevelStats};

use crate::metadata::RemapEntry;
use baryon_mem::MemDevice;
use baryon_sim::telemetry::Registry;
use baryon_sim::wire::{Reader, WireError, Writer};
use baryon_sim::Cycle;

/// Statistics of the remap metadata path, common to every store.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RemapStats {
    /// Remap cache hits (the lookup was fully served on-chip).
    pub cache_hits: u64,
    /// Remap cache misses (each costs at least one fast-memory read).
    pub cache_misses: u64,
    /// Metadata write traffic events (table updates).
    pub table_updates: u64,
}

impl RemapStats {
    /// Publishes into the unified telemetry [`Registry`]
    /// (absorbed by the controller under `remap.`).
    pub fn export(&self, reg: &mut Registry) {
        reg.set_counter("cache_hits", self.cache_hits);
        reg.set_counter("cache_misses", self.cache_misses);
        reg.set_counter("table_updates", self.table_updates);
    }

    /// Remap-cache hit rate in `[0, 1]`; 0 with no lookups.
    pub fn cache_hit_rate(&self) -> f64 {
        let total = self.cache_hits + self.cache_misses;
        if total == 0 {
            0.0
        } else {
            self.cache_hits as f64 / total as f64
        }
    }
}

/// The remap metadata contract the controller dispatches through.
///
/// Translations are whole-entry: production code reads entries by value
/// and replaces them atomically with [`RemapStore::set_entry`] (or clears
/// them with [`RemapStore::invalidate`]), which is what lets a store
/// drop per-block state for regions that hold no mappings. Timing is
/// modelled by [`RemapStore::lookup`] / [`RemapStore::record_update`],
/// which charge the hot-level cache and any fast-memory walk traffic.
pub trait RemapStore: std::fmt::Debug {
    /// The current translation of `block` (empty if unmigrated).
    ///
    /// # Panics
    ///
    /// Panics if `block` is out of range.
    fn entry(&self, block: u64) -> RemapEntry;

    /// Replaces the translation of `block`; counts a table update.
    ///
    /// Entries with no remapped sub-blocks (`entry.is_empty()`) may be
    /// canonicalized to [`RemapEntry::empty`] — a store is free to drop
    /// per-block state for regions holding no live mappings.
    fn set_entry(&mut self, block: u64, entry: RemapEntry);

    /// Clears the translation of `block` back to empty.
    fn invalidate(&mut self, block: u64) {
        self.set_entry(block, RemapEntry::empty());
    }

    /// All entries of super-block `sb`, in block order.
    fn super_entries(&self, sb: u64) -> &[RemapEntry];

    /// Simulates the metadata walk for super-block `sb`: probes the
    /// hot-level cache, walking the in-memory structure on a miss.
    /// Returns the metadata latency.
    fn lookup(&mut self, now: Cycle, sb: u64, fast: &mut MemDevice) -> Cycle;

    /// Records a metadata write for super-block `sb` (on commit/evict).
    /// Updates go through the cache; a miss also costs a fast-memory
    /// write.
    fn record_update(&mut self, now: Cycle, sb: u64, fast: &mut MemDevice);

    /// Accumulated common statistics.
    fn stats(&self) -> &RemapStats;

    /// Hot-level cache hit rate.
    fn cache_hit_rate(&self) -> f64 {
        self.stats().cache_hit_rate()
    }

    /// Resets statistics only; translations are untouched.
    fn reset_stats(&mut self);

    /// Bytes of fast memory the structure currently occupies. Flat
    /// stores report their full provisioned table; multi-level stores
    /// report the root plus only the live leaves.
    fn footprint_bytes(&self) -> u64;

    /// Publishes store metrics (absorbed by the controller under
    /// `remap.`). Every store exports the [`RemapStats`] triple;
    /// stores may add their own metrics after it.
    fn export(&self, reg: &mut Registry);

    /// Serializes the mutable state (translations, cache contents,
    /// stats) for checkpointing; geometry is rebuilt by the constructor.
    fn save_state(&self, w: &mut Writer);

    /// Overlays checkpointed state onto this freshly constructed store.
    ///
    /// # Errors
    ///
    /// Returns [`WireError`] on a truncated payload or geometry mismatch.
    fn load_state(&mut self, r: &mut Reader<'_>) -> Result<(), WireError>;
}

/// The concrete store the controller embeds: static dispatch over the
/// [`RemapStore`] families so the serve hot path stays branch-predictable
/// and inlinable (the sim-throughput floors gate this path).
// One instance per controller, never moved on the hot path: boxing the
// large variant would add a pointer chase to every translation for no
// memory win.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone)]
pub enum RemapStoreImpl {
    /// Baryon's flat table (`RemapKind::Flat`).
    Flat(RemapTable),
    /// The Trimma-style multi-level store (`RemapKind::MultiLevel`).
    MultiLevel(MultiLevelRemap),
}

/// Wire discriminants for [`RemapStoreImpl::save_state`].
const TAG_FLAT: u8 = 0;
const TAG_MULTI_LEVEL: u8 = 1;

macro_rules! delegate {
    ($self:ident, $inner:ident => $body:expr) => {
        match $self {
            RemapStoreImpl::Flat($inner) => $body,
            RemapStoreImpl::MultiLevel($inner) => $body,
        }
    };
}

impl RemapStore for RemapStoreImpl {
    fn entry(&self, block: u64) -> RemapEntry {
        delegate!(self, s => RemapStore::entry(s, block))
    }

    fn set_entry(&mut self, block: u64, entry: RemapEntry) {
        delegate!(self, s => RemapStore::set_entry(s, block, entry))
    }

    fn super_entries(&self, sb: u64) -> &[RemapEntry] {
        delegate!(self, s => RemapStore::super_entries(s, sb))
    }

    fn lookup(&mut self, now: Cycle, sb: u64, fast: &mut MemDevice) -> Cycle {
        delegate!(self, s => RemapStore::lookup(s, now, sb, fast))
    }

    fn record_update(&mut self, now: Cycle, sb: u64, fast: &mut MemDevice) {
        delegate!(self, s => RemapStore::record_update(s, now, sb, fast))
    }

    fn stats(&self) -> &RemapStats {
        delegate!(self, s => RemapStore::stats(s))
    }

    fn reset_stats(&mut self) {
        delegate!(self, s => RemapStore::reset_stats(s))
    }

    fn footprint_bytes(&self) -> u64 {
        delegate!(self, s => s.footprint_bytes())
    }

    fn export(&self, reg: &mut Registry) {
        delegate!(self, s => s.export(reg))
    }

    /// Prefixes a kind tag so a checkpoint cannot be restored into a
    /// store of the wrong family.
    fn save_state(&self, w: &mut Writer) {
        match self {
            RemapStoreImpl::Flat(s) => {
                w.u8(TAG_FLAT);
                s.save_state(w);
            }
            RemapStoreImpl::MultiLevel(s) => {
                w.u8(TAG_MULTI_LEVEL);
                s.save_state(w);
            }
        }
    }

    fn load_state(&mut self, r: &mut Reader<'_>) -> Result<(), WireError> {
        let tag = r.u8()?;
        match (tag, self) {
            (TAG_FLAT, RemapStoreImpl::Flat(s)) => s.load_state(r),
            (TAG_MULTI_LEVEL, RemapStoreImpl::MultiLevel(s)) => s.load_state(r),
            (tag, _) => Err(WireError::BadTag(tag)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use baryon_mem::DeviceConfig;

    fn flat() -> RemapStoreImpl {
        RemapStoreImpl::Flat(RemapTable::new(1024, 8, 32 << 10, 3, 0))
    }

    fn multi() -> RemapStoreImpl {
        RemapStoreImpl::MultiLevel(MultiLevelRemap::new(1024, 8, 128, 8 << 10, 2, 0))
    }

    #[test]
    fn kind_tag_guards_cross_family_restore() {
        let mut w = Writer::new();
        flat().save_state(&mut w);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        let err = multi().load_state(&mut r).unwrap_err();
        assert!(matches!(err, WireError::BadTag(0)), "got {err:?}");
    }

    #[test]
    fn same_family_restore_round_trips_through_the_enum() {
        let mut store = flat();
        let mut f = MemDevice::new(DeviceConfig::ddr4_3200());
        store.set_entry(17, RemapEntry::empty());
        store.lookup(0, 2, &mut f);
        let mut w = Writer::new();
        store.save_state(&mut w);
        let bytes = w.into_bytes();
        let mut fresh = flat();
        let mut r = Reader::new(&bytes);
        fresh.load_state(&mut r).expect("well-formed");
        r.finish().expect("no trailing bytes");
        assert_eq!(fresh.stats(), store.stats());
    }

    #[test]
    fn invalidate_clears_to_empty() {
        for mut store in [flat(), multi()] {
            let mut e = RemapEntry::empty();
            e.remap = 1;
            e.pointer = 7;
            store.set_entry(12, e);
            store.invalidate(12);
            assert!(store.entry(12).is_empty());
        }
    }
}

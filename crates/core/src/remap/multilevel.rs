//! The Trimma-style non-uniform multi-level remap store.
//!
//! Instead of provisioning one flat 2 B entry per OS block, the address
//! space is carved into fixed regions. A coarse **root** level holds one
//! 2 B slot per region: identity while the region has no migrated
//! blocks, or a pointer to a fine **leaf** table otherwise. Leaves are
//! allocated from a pool behind the root on first migration into a
//! region and freed when the last mapping in the region is cleared, so
//! the fast-memory footprint tracks the *live* migration set instead of
//! the full block space — the Trimma insight (PAPERS.md, same authors
//! as Baryon).
//!
//! A small **hot-level cache** splits its budget between root lines
//! (one 64 B line covers 32 regions, giving sparse workloads enormous
//! reach) and leaf lines (one line per super-block, as in the flat
//! remap cache). A lookup that resolves on-chip costs `hot_latency`;
//! a miss walks the root line and, if the region has a leaf, the leaf
//! line in fast memory — the two reads serialize, which is the walk
//! cost Trimma trims by keeping most regions leafless.

use super::{RemapStats, RemapStore};
use crate::metadata::RemapEntry;
use baryon_cache::{CacheConfig, SetAssocCache};
use baryon_mem::MemDevice;
use baryon_sim::telemetry::Registry;
use baryon_sim::wire::{Reader, WireError, Writer};
use baryon_sim::Cycle;

/// Counters specific to the multi-level walk, exported beside the
/// common [`RemapStats`] triple.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MultiLevelStats {
    /// Fast-memory reads of root-level lines (walk step 1 misses).
    pub root_reads: u64,
    /// Fast-memory reads of leaf-level lines (walk step 2 misses).
    pub leaf_reads: u64,
    /// Leaf tables allocated (first migration into a region).
    pub leaves_allocated: u64,
    /// Leaf tables freed (last mapping in a region cleared).
    pub leaves_freed: u64,
}

/// One fine-grained leaf table covering a single region.
#[derive(Debug, Clone)]
struct Leaf {
    /// One entry per OS block of the region.
    entries: Vec<RemapEntry>,
    /// How many entries currently hold a live mapping.
    non_empty: u32,
    /// The leaf pool slot (fixes the leaf's fast-memory address).
    slot: u32,
}

/// The multi-level remap store plus its hot-level cache model.
#[derive(Debug, Clone)]
pub struct MultiLevelRemap {
    blocks_per_super: usize,
    region_blocks: u64,
    supers_per_region: u64,
    /// Leaf tables, indexed by region; `None` = identity (unmigrated).
    leaves: Vec<Option<Leaf>>,
    /// Recycled leaf pool slots, reused LIFO.
    free_slots: Vec<u32>,
    /// High-water mark of the leaf pool.
    next_slot: u32,
    root_cache: SetAssocCache,
    leaf_cache: SetAssocCache,
    hit_latency: Cycle,
    /// Device address of the root level inside fast memory; the leaf
    /// pool starts at `table_base + root_bytes`.
    table_base: u64,
    root_bytes: u64,
    /// Bytes of one leaf line (all entries of one super-block).
    line_bytes: u64,
    /// Canonical all-empty super-block slice for leafless regions.
    empty_super: Vec<RemapEntry>,
    stats: RemapStats,
    ml: MultiLevelStats,
}

impl MultiLevelRemap {
    /// Creates a store for `os_blocks` blocks carved into regions of
    /// `region_blocks`. `hot_bytes` sizes the hot-level cache (split
    /// between root and leaf lines); `hot_latency` is its hit latency.
    ///
    /// # Panics
    ///
    /// Panics if any count is zero, or if `region_blocks` is not a
    /// power of two or not a multiple of `blocks_per_super`.
    pub fn new(
        os_blocks: u64,
        blocks_per_super: usize,
        region_blocks: u64,
        hot_bytes: u64,
        hot_latency: Cycle,
        table_base: u64,
    ) -> Self {
        assert!(os_blocks > 0 && blocks_per_super > 0, "empty remap store");
        assert!(
            region_blocks.is_power_of_two()
                && region_blocks.is_multiple_of(blocks_per_super as u64),
            "region_blocks {region_blocks} must be a power of two and a \
             multiple of blocks_per_super {blocks_per_super}"
        );
        assert!(hot_bytes > 0, "zero hot-level cache");
        let line_bytes = (blocks_per_super * 2).next_power_of_two().max(16) as u64;
        let num_regions = os_blocks.div_ceil(region_blocks);
        let root_bytes = (num_regions * 2).next_multiple_of(64);
        let ways = 8;
        let root_sets = (hot_bytes / 2 / 64 / ways as u64)
            .max(2)
            .next_power_of_two() as usize;
        let leaf_sets = (hot_bytes / 2 / line_bytes / ways as u64)
            .max(4)
            .next_power_of_two() as usize;
        MultiLevelRemap {
            blocks_per_super,
            region_blocks,
            supers_per_region: region_blocks / blocks_per_super as u64,
            leaves: vec![None; num_regions as usize],
            free_slots: Vec::new(),
            next_slot: 0,
            root_cache: SetAssocCache::new(CacheConfig::new(root_sets, ways, 64, hot_latency)),
            leaf_cache: SetAssocCache::new(CacheConfig::new(
                leaf_sets,
                ways,
                line_bytes,
                hot_latency,
            )),
            hit_latency: hot_latency,
            table_base,
            root_bytes,
            line_bytes,
            empty_super: vec![RemapEntry::empty(); blocks_per_super],
            stats: RemapStats::default(),
            ml: MultiLevelStats::default(),
        }
    }

    /// Multi-level walk counters.
    pub fn multilevel_stats(&self) -> &MultiLevelStats {
        &self.ml
    }

    /// Number of regions currently backed by a leaf table.
    pub fn live_leaves(&self) -> u64 {
        self.leaves.iter().filter(|l| l.is_some()).count() as u64
    }

    /// Bytes of one leaf table in fast memory (super-block lines).
    fn leaf_bytes(&self) -> u64 {
        self.supers_per_region * self.line_bytes
    }

    /// Fast-memory address of the leaf line holding super-block `sb`.
    fn leaf_line_addr(&self, slot: u32, sb: u64) -> u64 {
        let off = (sb % self.supers_per_region) * self.line_bytes;
        self.table_base + self.root_bytes + u64::from(slot) * self.leaf_bytes() + off
    }

    fn alloc_slot(&mut self) -> u32 {
        self.ml.leaves_allocated += 1;
        if let Some(slot) = self.free_slots.pop() {
            slot
        } else {
            let slot = self.next_slot;
            self.next_slot += 1;
            slot
        }
    }
}

impl RemapStore for MultiLevelRemap {
    fn entry(&self, block: u64) -> RemapEntry {
        let region = (block / self.region_blocks) as usize;
        match &self.leaves[region] {
            Some(leaf) => leaf.entries[(block % self.region_blocks) as usize],
            None => RemapEntry::empty(),
        }
    }

    fn set_entry(&mut self, block: u64, entry: RemapEntry) {
        self.stats.table_updates += 1;
        let region = (block / self.region_blocks) as usize;
        if self.leaves[region].is_none() {
            if entry.is_empty() {
                // Clearing inside an identity region: nothing to store.
                return;
            }
            let slot = self.alloc_slot();
            self.leaves[region] = Some(Leaf {
                entries: vec![RemapEntry::empty(); self.region_blocks as usize],
                non_empty: 0,
                slot,
            });
        }
        let leaf = self.leaves[region].as_mut().expect("leaf just ensured");
        let idx = (block % self.region_blocks) as usize;
        let was_live = !leaf.entries[idx].is_empty();
        let is_live = !entry.is_empty();
        leaf.entries[idx] = entry;
        match (was_live, is_live) {
            (false, true) => leaf.non_empty += 1,
            (true, false) => leaf.non_empty -= 1,
            _ => {}
        }
        if leaf.non_empty == 0 {
            // Last mapping gone: collapse the region back to identity.
            let slot = leaf.slot;
            self.leaves[region] = None;
            self.free_slots.push(slot);
            self.ml.leaves_freed += 1;
        }
    }

    fn super_entries(&self, sb: u64) -> &[RemapEntry] {
        let region = (sb / self.supers_per_region) as usize;
        match &self.leaves[region] {
            Some(leaf) => {
                let start = (sb % self.supers_per_region) as usize * self.blocks_per_super;
                &leaf.entries[start..start + self.blocks_per_super]
            }
            None => &self.empty_super,
        }
    }

    fn lookup(&mut self, now: Cycle, sb: u64, fast: &mut MemDevice) -> Cycle {
        let region = sb / self.supers_per_region;
        let leaf_slot = self.leaves[region as usize].as_ref().map(|l| l.slot);
        if self.root_cache.access(region * 2, false).hit {
            match leaf_slot {
                // Identity region resolved entirely on-chip.
                None => {
                    self.stats.cache_hits += 1;
                    self.hit_latency
                }
                Some(slot) => {
                    if self.leaf_cache.access(sb * self.line_bytes, false).hit {
                        self.stats.cache_hits += 1;
                        self.hit_latency
                    } else {
                        self.stats.cache_misses += 1;
                        self.ml.leaf_reads += 1;
                        let done = fast.access(
                            now + self.hit_latency,
                            self.leaf_line_addr(slot, sb),
                            64, // minimum burst
                            false,
                        );
                        done - now
                    }
                }
            }
        } else {
            self.stats.cache_misses += 1;
            self.ml.root_reads += 1;
            let mut done = fast.access(
                now + self.hit_latency,
                self.table_base + region * 2,
                64,
                false,
            );
            if let Some(slot) = leaf_slot {
                // The leaf read serializes behind the root read.
                self.ml.leaf_reads += 1;
                self.leaf_cache.access(sb * self.line_bytes, false);
                done = fast.access(done, self.leaf_line_addr(slot, sb), 64, false);
            }
            done - now
        }
    }

    fn record_update(&mut self, now: Cycle, sb: u64, fast: &mut MemDevice) {
        self.stats.table_updates += 1;
        let region = sb / self.supers_per_region;
        match self.leaves[region as usize].as_ref().map(|l| l.slot) {
            Some(slot) => {
                if !self.leaf_cache.access(sb * self.line_bytes, true).hit {
                    fast.access(now, self.leaf_line_addr(slot, sb), 64, true);
                }
            }
            None => {
                // The region collapsed to identity: the root line itself
                // is what changed.
                if !self.root_cache.access(region * 2, true).hit {
                    fast.access(now, self.table_base + region * 2, 64, true);
                }
            }
        }
    }

    fn stats(&self) -> &RemapStats {
        &self.stats
    }

    fn reset_stats(&mut self) {
        self.stats = RemapStats::default();
        self.ml = MultiLevelStats::default();
    }

    fn footprint_bytes(&self) -> u64 {
        self.root_bytes + self.live_leaves() * self.leaf_bytes()
    }

    fn export(&self, reg: &mut Registry) {
        self.stats.export(reg);
        reg.set_counter("root_reads", self.ml.root_reads);
        reg.set_counter("leaf_reads", self.ml.leaf_reads);
        reg.set_counter("leaves_allocated", self.ml.leaves_allocated);
        reg.set_counter("leaves_freed", self.ml.leaves_freed);
        reg.set_gauge("live_leaves", self.live_leaves() as f64);
        reg.set_gauge("footprint_bytes", self.footprint_bytes() as f64);
    }

    fn save_state(&self, w: &mut Writer) {
        w.seq(self.leaves.len());
        for leaf in &self.leaves {
            w.opt(leaf.is_some());
            if let Some(leaf) = leaf {
                w.u32(leaf.slot);
                w.u32(leaf.non_empty);
                for e in &leaf.entries {
                    w.u32(e.remap);
                    w.u32(e.pointer);
                    w.u32(e.cf2);
                    w.u32(e.cf4);
                    w.bool(e.zero);
                }
            }
        }
        w.seq(self.free_slots.len());
        for s in &self.free_slots {
            w.u32(*s);
        }
        w.u32(self.next_slot);
        self.root_cache.save_state(w);
        self.leaf_cache.save_state(w);
        w.u64(self.stats.cache_hits);
        w.u64(self.stats.cache_misses);
        w.u64(self.stats.table_updates);
        w.u64(self.ml.root_reads);
        w.u64(self.ml.leaf_reads);
        w.u64(self.ml.leaves_allocated);
        w.u64(self.ml.leaves_freed);
    }

    fn load_state(&mut self, r: &mut Reader<'_>) -> Result<(), WireError> {
        let n = r.seq()?;
        if n != self.leaves.len() {
            return Err(WireError::BadLength(n as u64));
        }
        for leaf in &mut self.leaves {
            *leaf = if r.opt()? {
                let slot = r.u32()?;
                let non_empty = r.u32()?;
                let mut entries = vec![RemapEntry::empty(); self.region_blocks as usize];
                for e in &mut entries {
                    *e = RemapEntry {
                        remap: r.u32()?,
                        pointer: r.u32()?,
                        cf2: r.u32()?,
                        cf4: r.u32()?,
                        zero: r.bool()?,
                    };
                }
                Some(Leaf {
                    entries,
                    non_empty,
                    slot,
                })
            } else {
                None
            };
        }
        let n = r.seq()?;
        self.free_slots = (0..n).map(|_| r.u32()).collect::<Result<_, _>>()?;
        self.next_slot = r.u32()?;
        self.root_cache.load_state(r)?;
        self.leaf_cache.load_state(r)?;
        self.stats.cache_hits = r.u64()?;
        self.stats.cache_misses = r.u64()?;
        self.stats.table_updates = r.u64()?;
        self.ml.root_reads = r.u64()?;
        self.ml.leaf_reads = r.u64()?;
        self.ml.leaves_allocated = r.u64()?;
        self.ml.leaves_freed = r.u64()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use baryon_compress::Cf;
    use baryon_mem::DeviceConfig;

    fn store() -> MultiLevelRemap {
        // 1024 blocks, 8 per super, regions of 128 -> 8 regions.
        MultiLevelRemap::new(1024, 8, 128, 8 << 10, 2, 0)
    }

    fn fast() -> MemDevice {
        MemDevice::new(DeviceConfig::ddr4_3200())
    }

    fn live_entry() -> RemapEntry {
        let mut e = RemapEntry::empty();
        e.set_range(0, Cf::X2);
        e.pointer = 5;
        e
    }

    #[test]
    fn starts_fully_identity() {
        let s = store();
        assert_eq!(s.live_leaves(), 0);
        assert!(s.entry(0).is_empty());
        assert!(s.entry(1023).is_empty());
        assert!(s.super_entries(100).iter().all(|e| e.is_empty()));
        assert_eq!(s.footprint_bytes(), 64); // root only (8 regions -> 16 B, padded)
    }

    #[test]
    fn leaf_allocates_on_first_mapping_and_frees_on_last_clear() {
        let mut s = store();
        s.set_entry(200, live_entry());
        assert_eq!(s.live_leaves(), 1);
        assert!(s.entry(200).has_sub(0));
        assert_eq!(s.footprint_bytes(), 64 + 128 * 2);
        s.set_entry(201, live_entry());
        assert_eq!(s.live_leaves(), 1, "same region shares one leaf");
        s.invalidate(200);
        assert_eq!(s.live_leaves(), 1);
        s.invalidate(201);
        assert_eq!(s.live_leaves(), 0, "empty leaf must be freed");
        assert_eq!(s.multilevel_stats().leaves_allocated, 1);
        assert_eq!(s.multilevel_stats().leaves_freed, 1);
        assert_eq!(s.footprint_bytes(), 64);
    }

    #[test]
    fn freed_slots_are_recycled() {
        let mut s = store();
        s.set_entry(0, live_entry());
        s.invalidate(0);
        s.set_entry(500, live_entry());
        // The second leaf reuses slot 0 instead of growing the pool.
        assert_eq!(s.next_slot, 1);
        assert!(s.free_slots.is_empty());
    }

    #[test]
    fn super_entries_match_per_block_entries() {
        let mut s = store();
        s.set_entry(17, live_entry());
        let entries = s.super_entries(2); // blocks 16..24
        assert_eq!(entries.len(), 8);
        assert!(entries[1].has_sub(0));
        assert!(entries[0].is_empty());
    }

    #[test]
    fn identity_region_lookup_hits_after_root_warmup() {
        let mut s = store();
        let mut f = fast();
        let cold = s.lookup(0, 5, &mut f);
        let warm = s.lookup(1000, 5, &mut f);
        assert!(cold > warm, "cold {cold} <= warm {warm}");
        assert_eq!(warm, 2, "identity region resolves at hot latency");
        assert_eq!(s.multilevel_stats().root_reads, 1);
        assert_eq!(s.multilevel_stats().leaf_reads, 0);
    }

    #[test]
    fn migrated_region_walk_serializes_root_and_leaf() {
        let mut s = store();
        let mut f = fast();
        s.set_entry(40, live_entry()); // region 0, super-block 5
        let walk = s.lookup(0, 5, &mut f);
        // Two serialized fast reads: strictly slower than the identity walk.
        let mut ident = store();
        let cold_ident = ident.lookup(0, 5, &mut fast());
        assert!(walk > cold_ident, "walk {walk} <= identity {cold_ident}");
        assert_eq!(s.multilevel_stats().root_reads, 1);
        assert_eq!(s.multilevel_stats().leaf_reads, 1);
        // Warm: both levels now cached on-chip.
        assert_eq!(s.lookup(5000, 5, &mut f), 2);
    }

    #[test]
    fn record_update_writes_through_on_cold_miss() {
        let mut s = store();
        let mut f = fast();
        s.set_entry(40, live_entry());
        s.record_update(0, 5, &mut f);
        assert_eq!(f.stats().writes, 1);
        s.record_update(100, 5, &mut f);
        assert_eq!(f.stats().writes, 1, "second update hits the hot cache");
    }

    #[test]
    fn reset_clears_stats_not_translations() {
        let mut s = store();
        let mut f = fast();
        s.set_entry(4, live_entry());
        s.lookup(0, 0, &mut f);
        s.reset_stats();
        assert_eq!(s.stats().cache_misses, 0);
        assert_eq!(s.multilevel_stats().root_reads, 0);
        assert!(s.entry(4).has_sub(0));
    }

    #[test]
    #[should_panic]
    fn out_of_range_block_panics() {
        store().entry(99999);
    }

    #[test]
    fn wire_state_round_trips_bit_identically() {
        let mut s = store();
        let mut f = fast();
        s.set_entry(17, live_entry());
        s.set_entry(900, live_entry());
        s.invalidate(900);
        s.lookup(0, 2, &mut f);
        s.lookup(100, 60, &mut f);
        let mut w = Writer::new();
        s.save_state(&mut w);
        let bytes = w.into_bytes();
        let mut fresh = store();
        let mut r = Reader::new(&bytes);
        fresh.load_state(&mut r).expect("well-formed");
        r.finish().expect("no trailing bytes");
        assert_eq!(fresh.entry(17), s.entry(17));
        assert_eq!(fresh.stats(), s.stats());
        assert_eq!(fresh.multilevel_stats(), s.multilevel_stats());
        assert_eq!(fresh.free_slots, s.free_slots);
        assert_eq!(fresh.next_slot, s.next_slot);
        // The restored hot cache must hit exactly where the original does.
        let lat_orig = s.lookup(1000, 2, &mut fast());
        let lat_restored = fresh.lookup(1000, 2, &mut fast());
        assert_eq!(lat_orig, lat_restored);
        // And re-saving produces byte-identical state.
        let mut w2 = Writer::new();
        fresh.save_state(&mut w2);
        let mut w1 = Writer::new();
        s.save_state(&mut w1);
        assert_eq!(w1.into_bytes(), w2.into_bytes());
    }

    #[test]
    fn geometry_mismatch_is_a_wire_error() {
        let mut w = Writer::new();
        store().save_state(&mut w);
        let bytes = w.into_bytes();
        let mut other = MultiLevelRemap::new(2048, 8, 128, 8 << 10, 2, 0);
        let mut r = Reader::new(&bytes);
        assert!(other.load_state(&mut r).is_err());
    }
}

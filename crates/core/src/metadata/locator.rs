//! The prefix-sum sub-block locator (§III-C).
//!
//! Committed layouts are sorted and dense (Rule 4), so the physical slot of
//! a sub-block inside its fast block is fully determined by the remap
//! entries of its super-block: sum the slots used by every *earlier* block
//! of the super-block that shares the same `Pointer`, then add the
//! sub-block's slot index within its own entry.
//!
//! In hardware this is the remap cache's "eight parallel decoders and a
//! prefix sum unit"; here it is the same computation in software.

use crate::metadata::remap_entry::RemapEntry;

/// Computes the physical sub-block slot of `(blk_off, sub)` inside the fast
/// block pointed to by its entry's `Pointer`.
///
/// `entries` are the remap entries of the whole super-block in block order.
/// Returns `None` if the sub-block is not remapped or is an all-zero (`Z`)
/// sub-block (which occupies no slot).
///
/// # Examples
///
/// Fig 5(e): A0, A2, A4-A7 (CF4) and B1, B3 share physical block Z; B3 is in
/// the 5th slot (index 4... the paper counts from 1; we count from 0).
///
/// ```
/// use baryon_core::metadata::{locate_sub_block, RemapEntry};
/// use baryon_compress::Cf;
///
/// let mut a = RemapEntry::empty();
/// a.set_range(0, Cf::X1);
/// a.set_range(2, Cf::X1);
/// a.set_range(4, Cf::X4);
/// let mut b = RemapEntry::empty();
/// b.set_range(1, Cf::X1);
/// b.set_range(3, Cf::X1);
/// let entries = vec![a, b, RemapEntry::empty()];
/// assert_eq!(locate_sub_block(&entries, 1, 3), Some(4));
/// ```
///
/// # Panics
///
/// Panics if `blk_off` is out of range.
pub fn locate_sub_block(entries: &[RemapEntry], blk_off: usize, sub: usize) -> Option<usize> {
    assert!(blk_off < entries.len(), "blk_off out of range");
    let target = &entries[blk_off];
    if !target.has_sub(sub) {
        return None;
    }
    let own = target.slot_of(sub)?; // None for Z entries
    let pointer = target.pointer;
    let before: usize = entries[..blk_off]
        .iter()
        .filter(|e| !e.is_empty() && e.pointer == pointer)
        .map(RemapEntry::slots_used)
        .sum();
    Some(before + own)
}

/// Total sub-block slots consumed in the physical block pointed to by
/// `pointer` by all entries of the super-block.
pub fn slots_in_block(entries: &[RemapEntry], pointer: u32) -> usize {
    entries
        .iter()
        .filter(|e| !e.is_empty() && e.pointer == pointer)
        .map(RemapEntry::slots_used)
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use baryon_compress::Cf;

    fn entry(ranges: &[(usize, Cf)], pointer: u32) -> RemapEntry {
        let mut e = RemapEntry::empty();
        for (start, cf) in ranges {
            e.set_range(*start, *cf);
        }
        e.pointer = pointer;
        e
    }

    #[test]
    fn paper_example_b3_is_fifth_slot() {
        // "The Remap and CF2/CF4 bits say A0, A2, A4-A7, and B1 each takes
        // one sub-block space. So B3 is in the 5th sub-block of Z."
        let a = entry(&[(0, Cf::X1), (2, Cf::X1), (4, Cf::X4)], 0);
        let b = entry(&[(1, Cf::X1), (3, Cf::X1)], 0);
        let entries = vec![a, b];
        assert_eq!(locate_sub_block(&entries, 1, 3), Some(4));
        assert_eq!(locate_sub_block(&entries, 1, 1), Some(3));
        assert_eq!(locate_sub_block(&entries, 0, 6), Some(2));
    }

    #[test]
    fn different_pointer_not_counted() {
        // Blocks remapped to another physical block do not shift the layout.
        let a = entry(&[(0, Cf::X4), (4, Cf::X4)], 1); // elsewhere
        let b = entry(&[(0, Cf::X1)], 0);
        let entries = vec![a, b];
        assert_eq!(locate_sub_block(&entries, 1, 0), Some(0));
    }

    #[test]
    fn unmapped_sub_is_none() {
        let entries = vec![entry(&[(0, Cf::X1)], 0)];
        assert_eq!(locate_sub_block(&entries, 0, 5), None);
    }

    #[test]
    fn zero_entries_take_no_space() {
        let mut z = entry(&[(0, Cf::X4)], 0);
        z.zero = true;
        let b = entry(&[(2, Cf::X2)], 0);
        let entries = vec![z, b];
        assert_eq!(locate_sub_block(&entries, 1, 2), Some(0));
        assert_eq!(locate_sub_block(&entries, 0, 0), None, "Z data has no slot");
    }

    #[test]
    fn matches_naive_layout_builder() {
        // Build a layout naively (walk blocks in order, assign slots) and
        // check the locator agrees, across a spread of configurations.
        let configs: Vec<Vec<Vec<(usize, Cf)>>> = vec![
            vec![
                vec![(0, Cf::X2), (4, Cf::X1)],
                vec![],
                vec![(0, Cf::X4), (4, Cf::X4)],
                vec![(6, Cf::X2)],
            ],
            vec![
                vec![(0, Cf::X1)],
                vec![(2, Cf::X1), (4, Cf::X2)],
                vec![(0, Cf::X2), (2, Cf::X2), (4, Cf::X2), (6, Cf::X2)],
            ],
        ];
        for blocks in configs {
            let entries: Vec<RemapEntry> = blocks.iter().map(|rs| entry(rs, 0)).collect();
            // Naive: assign slots in (block, sub) order.
            let mut slot = 0usize;
            for (blk, ranges) in blocks.iter().enumerate() {
                let mut sorted = ranges.clone();
                sorted.sort_by_key(|(s, _)| *s);
                for (start, cf) in sorted {
                    for s in start..start + cf.sub_blocks() {
                        assert_eq!(
                            locate_sub_block(&entries, blk, s),
                            Some(slot),
                            "block {blk} sub {s}"
                        );
                    }
                    slot += 1;
                }
            }
            assert_eq!(slots_in_block(&entries, 0), slot);
        }
    }

    #[test]
    fn slots_in_block_by_pointer() {
        let a = entry(&[(0, Cf::X4)], 0);
        let b = entry(&[(0, Cf::X2)], 1);
        let c = entry(&[(0, Cf::X1), (1, Cf::X1)], 0);
        let entries = vec![a, b, c];
        assert_eq!(slots_in_block(&entries, 0), 3);
        assert_eq!(slots_in_block(&entries, 1), 1);
        assert_eq!(slots_in_block(&entries, 2), 0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_blk_off_panics() {
        locate_sub_block(&[RemapEntry::empty()], 3, 0);
    }
}

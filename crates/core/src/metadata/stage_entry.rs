//! The flexible stage-tag-array entry format (Fig 5(a)).
//!
//! One entry per stage-area physical block. The entry carries the
//! super-block tag (Rule 1: one super-block per physical block) and, for
//! each of the physical sub-block slots, an 8-bit field describing the
//! contiguous aligned range stored there (Rule 2): CF code, dirty bit, block
//! offset within the super-block, and starting sub-block offset. Two more
//! fields support the policies: a FIFO pointer for sub-block-level
//! replacement and a 2 B `MissCnt` for selective commit.
//!
//! **Bit-packing note** (documented deviation, see DESIGN.md): the paper's
//! field list needs 9 bits for a CF = 1 slot; we use a variable-length type
//! prefix (`0` = CF1, `10` = CF2, `110` = CF4, `111` = empty) so every slot
//! field fits exactly 8 bits, preserving the 14 B entry. All-zero (`Z`)
//! ranges occupy no data slot and are tracked in a side list charged at the
//! paper's metadata budget.

use baryon_compress::Cf;

/// A contiguous aligned range of sub-blocks from one block of the entry's
/// super-block, compressed into a single sub-block slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RangeRef {
    /// Block offset within the super-block (0–7 by default).
    pub blk_off: u8,
    /// Starting sub-block offset within the block; aligned to the CF.
    pub sub_off: u8,
    /// Compression factor: how many sub-blocks the range covers.
    pub cf: Cf,
    /// True if the range holds data newer than the slow-memory copy.
    pub dirty: bool,
}

impl RangeRef {
    /// True if the range covers sub-block `sub` of block `blk_off`.
    pub fn covers(&self, blk_off: usize, sub: usize) -> bool {
        self.blk_off as usize == blk_off
            && (self.sub_off as usize..self.sub_off as usize + self.cf.sub_blocks()).contains(&sub)
    }

    /// Encodes into the 8-bit slot field (default geometry).
    ///
    /// # Panics
    ///
    /// Panics if the offsets exceed the default geometry (8 blocks of
    /// 8 sub-blocks) or are misaligned.
    pub fn encode8(&self) -> u8 {
        assert!(
            self.blk_off < 8 && self.sub_off < 8,
            "default geometry only"
        );
        assert_eq!(
            self.sub_off as usize % self.cf.sub_blocks(),
            0,
            "range must be CF-aligned"
        );
        let d = self.dirty as u8;
        match self.cf {
            // 0 D BBB SSS
            Cf::X1 => (d << 6) | (self.blk_off << 3) | self.sub_off,
            // 1 0 D BBB SS
            Cf::X2 => 0b1000_0000 | (d << 5) | (self.blk_off << 2) | (self.sub_off >> 1),
            // 1 1 0 D BBB S
            Cf::X4 => 0b1100_0000 | (d << 4) | (self.blk_off << 1) | (self.sub_off >> 2),
        }
    }

    /// Decodes an 8-bit slot field; `None` for the empty encoding.
    pub fn decode8(bits: u8) -> Option<Self> {
        if bits >> 5 == 0b111 {
            return None; // empty
        }
        if bits >> 7 == 0 {
            Some(RangeRef {
                cf: Cf::X1,
                dirty: bits >> 6 & 1 == 1,
                blk_off: bits >> 3 & 0b111,
                sub_off: bits & 0b111,
            })
        } else if bits >> 6 == 0b10 {
            Some(RangeRef {
                cf: Cf::X2,
                dirty: bits >> 5 & 1 == 1,
                blk_off: bits >> 2 & 0b111,
                sub_off: (bits & 0b11) << 1,
            })
        } else {
            Some(RangeRef {
                cf: Cf::X4,
                dirty: bits >> 4 & 1 == 1,
                blk_off: bits >> 1 & 0b111,
                sub_off: (bits & 0b1) << 2,
            })
        }
    }
}

/// Marker value for the empty slot encoding (`111` prefix).
pub const EMPTY_SLOT: u8 = 0b1110_0000;

/// Where a sub-block was found inside a stage entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SubHit {
    /// Slot index, or `None` for a zero (Z) range.
    pub slot: Option<usize>,
    /// CF of the containing range.
    pub cf: Cf,
    /// Dirty bit of the containing range.
    pub dirty: bool,
}

/// One stage tag array entry = one stage-area physical block.
#[derive(Debug, Clone, PartialEq)]
pub struct StageEntry {
    /// Super-block index this physical block stages (Rule 1).
    pub tag: u64,
    /// Contents of each physical sub-block slot.
    pub slots: Vec<Option<RangeRef>>,
    /// All-zero ranges (occupy no slot).
    pub zero_ranges: Vec<RangeRef>,
    /// Sub-block-level FIFO replacement pointer.
    pub fifo: u8,
    /// Sub-block miss counter for selective commit (aged by the set).
    pub miss_cnt: u16,
}

impl StageEntry {
    /// Creates an empty entry for super-block `tag` with `slots` slots.
    pub fn new(tag: u64, slots: usize) -> Self {
        StageEntry {
            tag,
            slots: vec![None; slots],
            zero_ranges: Vec::new(),
            fifo: 0,
            miss_cnt: 0,
        }
    }

    /// Looks up sub-block `sub` of block `blk_off`.
    pub fn find(&self, blk_off: usize, sub: usize) -> Option<SubHit> {
        for (i, slot) in self.slots.iter().enumerate() {
            if let Some(r) = slot {
                if r.covers(blk_off, sub) {
                    return Some(SubHit {
                        slot: Some(i),
                        cf: r.cf,
                        dirty: r.dirty,
                    });
                }
            }
        }
        self.zero_ranges
            .iter()
            .find(|r| r.covers(blk_off, sub))
            .map(|r| SubHit {
                slot: None,
                cf: r.cf,
                dirty: r.dirty,
            })
    }

    /// True if any range (slot or zero) belongs to block `blk_off`.
    pub fn has_block(&self, blk_off: usize) -> bool {
        self.slots
            .iter()
            .flatten()
            .chain(self.zero_ranges.iter())
            .any(|r| r.blk_off as usize == blk_off)
    }

    /// First free slot index, if any.
    pub fn free_slot(&self) -> Option<usize> {
        self.slots.iter().position(|s| s.is_none())
    }

    /// Number of occupied slots.
    pub fn used_slots(&self) -> usize {
        self.slots.iter().flatten().count()
    }

    /// Number of dirty sub-blocks (each dirty range counts its CF
    /// sub-blocks, since all of them must be written back).
    pub fn dirty_subs(&self) -> usize {
        self.slots
            .iter()
            .flatten()
            .chain(self.zero_ranges.iter())
            .filter(|r| r.dirty)
            .map(|r| r.cf.sub_blocks())
            .sum()
    }

    /// The sub-block bitmask currently staged for block `blk_off`.
    pub fn sub_mask_of(&self, blk_off: usize) -> u32 {
        let mut mask = 0;
        for r in self.slots.iter().flatten().chain(self.zero_ranges.iter()) {
            if r.blk_off as usize == blk_off {
                for s in r.sub_off as usize..r.sub_off as usize + r.cf.sub_blocks() {
                    mask |= 1 << s;
                }
            }
        }
        mask
    }

    /// All ranges (slot index, range) of block `blk_off`.
    pub fn ranges_of(&self, blk_off: usize) -> Vec<(Option<usize>, RangeRef)> {
        let mut out: Vec<(Option<usize>, RangeRef)> = self
            .slots
            .iter()
            .enumerate()
            .filter_map(|(i, s)| {
                s.filter(|r| r.blk_off as usize == blk_off)
                    .map(|r| (Some(i), r))
            })
            .collect();
        out.extend(
            self.zero_ranges
                .iter()
                .filter(|r| r.blk_off as usize == blk_off)
                .map(|r| (None, *r)),
        );
        out
    }

    /// Packs the slot fields into bytes (metadata size verification).
    pub fn encode_slots(&self) -> Vec<u8> {
        self.slots
            .iter()
            .map(|s| s.map_or(EMPTY_SLOT, |r| r.encode8()))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(blk: u8, sub: u8, cf: Cf, dirty: bool) -> RangeRef {
        RangeRef {
            blk_off: blk,
            sub_off: sub,
            cf,
            dirty,
        }
    }

    #[test]
    fn encode8_paper_example() {
        // Fig 5(d): slot holding H2-H3 encoded as CF=2, clean, block 7 (H),
        // 2nd aligned pair.
        let range = r(7, 2, Cf::X2, false);
        let bits = range.encode8();
        assert_eq!(bits >> 6, 0b10, "CF2 prefix");
        assert_eq!(bits & 0b11, 0b01, "2nd aligned pair");
        assert_eq!(RangeRef::decode8(bits), Some(range));
    }

    #[test]
    fn encode8_roundtrip_all_variants() {
        for blk in 0..8u8 {
            for dirty in [false, true] {
                for sub in 0..8u8 {
                    let cases = [
                        Some(r(blk, sub, Cf::X1, dirty)),
                        (sub % 2 == 0).then(|| r(blk, sub, Cf::X2, dirty)),
                        (sub % 4 == 0).then(|| r(blk, sub, Cf::X4, dirty)),
                    ];
                    for range in cases.into_iter().flatten() {
                        assert_eq!(RangeRef::decode8(range.encode8()), Some(range), "{range:?}");
                    }
                }
            }
        }
    }

    #[test]
    fn empty_slot_decodes_to_none() {
        assert_eq!(RangeRef::decode8(EMPTY_SLOT), None);
    }

    #[test]
    fn covers_range_extent() {
        let range = r(3, 4, Cf::X4, false);
        assert!(range.covers(3, 4) && range.covers(3, 7));
        assert!(!range.covers(3, 3));
        assert!(!range.covers(2, 5));
    }

    #[test]
    fn find_in_slots_and_zero() {
        let mut e = StageEntry::new(9, 8);
        e.slots[2] = Some(r(1, 0, Cf::X2, true));
        e.zero_ranges.push(r(4, 4, Cf::X4, false));
        let hit = e.find(1, 1).expect("covered by slot 2");
        assert_eq!(hit.slot, Some(2));
        assert!(hit.dirty);
        let zhit = e.find(4, 6).expect("covered by zero range");
        assert_eq!(zhit.slot, None);
        assert!(e.find(0, 0).is_none());
    }

    #[test]
    fn sub_mask_accumulates() {
        let mut e = StageEntry::new(0, 8);
        e.slots[0] = Some(r(2, 0, Cf::X1, false));
        e.slots[1] = Some(r(2, 4, Cf::X4, false));
        e.zero_ranges.push(r(2, 2, Cf::X2, false));
        assert_eq!(e.sub_mask_of(2), 0b1111_1101);
        assert_eq!(e.sub_mask_of(3), 0);
    }

    #[test]
    fn dirty_subs_counts_range_widths() {
        let mut e = StageEntry::new(0, 8);
        e.slots[0] = Some(r(0, 0, Cf::X4, true));
        e.slots[1] = Some(r(1, 0, Cf::X1, true));
        e.slots[2] = Some(r(1, 2, Cf::X2, false));
        assert_eq!(e.dirty_subs(), 5);
    }

    #[test]
    fn free_slot_and_used() {
        let mut e = StageEntry::new(0, 4);
        assert_eq!(e.free_slot(), Some(0));
        e.slots[0] = Some(r(0, 0, Cf::X1, false));
        e.slots[1] = Some(r(0, 1, Cf::X1, false));
        assert_eq!(e.free_slot(), Some(2));
        assert_eq!(e.used_slots(), 2);
    }

    #[test]
    fn encode_slots_width() {
        let mut e = StageEntry::new(0, 8);
        e.slots[3] = Some(r(5, 2, Cf::X1, true));
        let bytes = e.encode_slots();
        assert_eq!(bytes.len(), 8);
        assert_eq!(RangeRef::decode8(bytes[3]), e.slots[3]);
        assert_eq!(bytes[0], EMPTY_SLOT);
    }

    #[test]
    fn ranges_of_returns_all() {
        let mut e = StageEntry::new(0, 8);
        e.slots[0] = Some(r(1, 0, Cf::X1, false));
        e.slots[5] = Some(r(1, 4, Cf::X2, true));
        e.zero_ranges.push(r(1, 6, Cf::X2, false));
        let ranges = e.ranges_of(1);
        assert_eq!(ranges.len(), 3);
        assert!(ranges.iter().any(|(s, _)| *s == Some(5)));
        assert!(ranges.iter().any(|(s, _)| s.is_none()));
    }

    #[test]
    #[should_panic(expected = "CF-aligned")]
    fn misaligned_encode_panics() {
        r(0, 1, Cf::X2, false).encode8();
    }
}

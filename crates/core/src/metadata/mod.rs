//! Baryon's dual-format metadata scheme (§III-C).
//!
//! Two formats with different flexibility/size trade-offs:
//!
//! * [`stage_entry::StageEntry`] — the flexible 14 B format of the on-chip
//!   stage tag array: one entry per stage-area physical block, able to hold
//!   arbitrary compressed ranges from any blocks of one super-block (Rule 1),
//! * [`remap_entry::RemapEntry`] — the compact 2 B format of the off-chip
//!   remap table: one entry per data block, a sorted/fixed layout (Rule 4)
//!   located via the prefix-sum computation in [`locator`].

pub mod locator;
pub mod remap_entry;
pub mod stage_entry;

pub use locator::locate_sub_block;
pub use remap_entry::RemapEntry;
pub use stage_entry::{RangeRef, StageEntry};

//! The compact remap-table entry format (Fig 5(b)).
//!
//! One entry per data block: eight `Remap` bits say which sub-blocks are
//! cached/migrated into fast memory, a single short `Pointer` names the fast
//! physical block holding all of them (Rule 3), and the `CF2`/`CF4` bitmaps
//! mark which aligned pairs/quads of remapped sub-blocks are stored
//! compressed in a single sub-block slot (Rule 2). The layout is sorted and
//! dense (Rule 4), so a sub-block's slot index is recoverable by counting.
//!
//! The all-ones `CF2`+`CF4` state is architecturally invalid (a quad cannot
//! simultaneously be two pairs and one quad) and encodes the all-zero block
//! (the paper's `Z` optimization): remapped sub-blocks are known-zero and
//! occupy **no** data space.
//!
//! In the default geometry (8 sub-blocks, 4-way associativity) the entry
//! packs into exactly 2 bytes: `Remap[8] | Pointer[2] | CF2[4] | CF4[2]`.

use baryon_compress::Cf;

/// A remap-table entry for one data block.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RemapEntry {
    /// Bit `i` set: sub-block `i` lives in fast memory.
    pub remap: u32,
    /// The fast physical block (way index within the set, or pool index in
    /// the fully-associative organization) holding the remapped sub-blocks.
    pub pointer: u32,
    /// Bit `j` set: the aligned pair `(2j, 2j+1)` is one CF = 2 range.
    pub cf2: u32,
    /// Bit `j` set: the aligned quad `(4j .. 4j+4)` is one CF = 4 range.
    pub cf4: u32,
    /// The `Z` state: remapped sub-blocks are all-zero, occupying no space.
    pub zero: bool,
}

impl RemapEntry {
    /// An entry with nothing remapped.
    pub fn empty() -> Self {
        Self::default()
    }

    /// True if no sub-block is remapped.
    pub fn is_empty(&self) -> bool {
        self.remap == 0
    }

    /// True if sub-block `sub` is in fast memory.
    pub fn has_sub(&self, sub: usize) -> bool {
        self.remap >> sub & 1 == 1
    }

    /// Number of physical sub-block slots this entry occupies in its fast
    /// block: each remapped sub-block takes a slot, minus one per CF2 pair,
    /// minus three per CF4 quad; zero entries occupy none.
    pub fn slots_used(&self) -> usize {
        if self.zero {
            return 0;
        }
        (self.remap.count_ones() - self.cf2.count_ones() - 3 * self.cf4.count_ones()) as usize
    }

    /// The compressed range containing `sub`, if remapped:
    /// `(range start sub index, CF)`.
    pub fn range_of(&self, sub: usize) -> Option<(usize, Cf)> {
        if !self.has_sub(sub) {
            return None;
        }
        if self.cf4 >> (sub / 4) & 1 == 1 {
            return Some((sub / 4 * 4, Cf::X4));
        }
        if self.cf2 >> (sub / 2) & 1 == 1 {
            return Some((sub / 2 * 2, Cf::X2));
        }
        Some((sub, Cf::X1))
    }

    /// The slot index (within this entry's sorted contribution) of the range
    /// containing `sub`. Ranges are sorted by starting sub-block offset, one
    /// slot each. Returns `None` if `sub` is not remapped or the entry is
    /// all-zero (zero data occupies no slot).
    pub fn slot_of(&self, sub: usize) -> Option<usize> {
        if self.zero {
            return None;
        }
        let (start, _) = self.range_of(sub)?;
        let mut slot = 0;
        let mut s = 0;
        while s < start {
            match self.range_of(s) {
                Some((_, cf)) => {
                    slot += 1;
                    s += cf.sub_blocks();
                }
                None => s += 1,
            }
        }
        Some(slot)
    }

    /// Marks the aligned range `(start, cf)` as remapped (used at commit).
    ///
    /// # Panics
    ///
    /// Panics if the range is misaligned or overlaps an existing CF range
    /// inconsistently.
    pub fn set_range(&mut self, start: usize, cf: Cf) {
        assert_eq!(start % cf.sub_blocks(), 0, "range must be aligned");
        for s in start..start + cf.sub_blocks() {
            assert!(!self.has_sub(s), "range overlaps remapped sub-block {s}");
            self.remap |= 1 << s;
        }
        match cf {
            Cf::X1 => {}
            Cf::X2 => self.cf2 |= 1 << (start / 2),
            Cf::X4 => self.cf4 |= 1 << (start / 4),
        }
    }

    /// Checks structural invariants for a geometry with `subs` sub-blocks.
    ///
    /// # Errors
    ///
    /// Returns a description of the violated invariant.
    pub fn check(&self, subs: usize) -> Result<(), String> {
        if self.remap >> subs != 0 {
            return Err("remap bits beyond geometry".into());
        }
        for j in 0..subs / 2 {
            if self.cf2 >> j & 1 == 1 {
                let pair = 0b11u32 << (2 * j);
                if self.remap & pair != pair {
                    return Err(format!("cf2 range {j} without both remap bits"));
                }
                if self.cf4 >> (j / 2) & 1 == 1 {
                    return Err(format!("cf2 range {j} inside a cf4 quad"));
                }
            }
        }
        for j in 0..subs / 4 {
            if self.cf4 >> j & 1 == 1 {
                let quad = 0b1111u32 << (4 * j);
                if self.remap & quad != quad {
                    return Err(format!("cf4 range {j} without all four remap bits"));
                }
            }
        }
        Ok(())
    }

    /// Packs into the 16-bit wire format of the default geometry
    /// (8 sub-blocks, pointer ≤ 3).
    ///
    /// # Panics
    ///
    /// Panics if the entry does not fit the default geometry.
    pub fn encode16(&self) -> u16 {
        assert!(
            self.remap < 256 && self.pointer < 4,
            "entry exceeds the 2 B format"
        );
        assert!(self.cf2 < 16 && self.cf4 < 4);
        let (cf2, cf4) = if self.zero {
            (0xF, 0x3) // the invalid all-ones state encodes Z
        } else {
            assert!(
                !(self.cf2 == 0xF && self.cf4 == 0x3),
                "non-zero entry collides with the Z encoding"
            );
            (self.cf2 as u16, self.cf4 as u16)
        };
        self.remap as u16 | (self.pointer as u16) << 8 | cf2 << 10 | cf4 << 14
    }

    /// Unpacks the 16-bit wire format.
    pub fn decode16(bits: u16) -> Self {
        let cf2 = (bits >> 10 & 0xF) as u32;
        let cf4 = (bits >> 14 & 0x3) as u32;
        let zero = cf2 == 0xF && cf4 == 0x3;
        RemapEntry {
            remap: (bits & 0xFF) as u32,
            pointer: (bits >> 8 & 0x3) as u32,
            cf2: if zero { 0 } else { cf2 },
            cf4: if zero { 0 } else { cf4 },
            zero,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_entry() {
        let e = RemapEntry::empty();
        assert!(e.is_empty());
        assert_eq!(e.slots_used(), 0);
        assert_eq!(e.range_of(0), None);
    }

    #[test]
    fn figure5e_block_a() {
        // Fig 5(e): Block A has A0, A2 uncompressed and A4-A7 at CF4:
        // Remap = 10101111 (bits 0,2,4,5,6,7), CF4 quad 1.
        let mut e = RemapEntry::empty();
        e.set_range(0, Cf::X1);
        e.set_range(2, Cf::X1);
        e.set_range(4, Cf::X4);
        assert_eq!(e.remap, 0b1111_0101);
        assert_eq!(e.slots_used(), 3); // A0, A2, A4-A7
        assert_eq!(e.range_of(5), Some((4, Cf::X4)));
        assert_eq!(e.slot_of(0), Some(0));
        assert_eq!(e.slot_of(2), Some(1));
        assert_eq!(e.slot_of(6), Some(2));
        e.check(8).expect("valid");
    }

    #[test]
    fn cf2_range_slots() {
        let mut e = RemapEntry::empty();
        e.set_range(2, Cf::X2);
        e.set_range(6, Cf::X2);
        assert_eq!(e.slots_used(), 2);
        assert_eq!(e.slot_of(3), Some(0));
        assert_eq!(e.slot_of(7), Some(1));
        assert_eq!(e.range_of(6), Some((6, Cf::X2)));
        e.check(8).expect("valid");
    }

    #[test]
    fn zero_entry_occupies_nothing() {
        let mut e = RemapEntry::empty();
        e.set_range(0, Cf::X4);
        e.zero = true;
        assert_eq!(e.slots_used(), 0);
        assert_eq!(e.slot_of(0), None);
    }

    #[test]
    fn encode16_roundtrip() {
        let mut e = RemapEntry::empty();
        e.set_range(0, Cf::X2);
        e.set_range(4, Cf::X1);
        e.pointer = 3;
        let bits = e.encode16();
        assert_eq!(RemapEntry::decode16(bits), e);
    }

    #[test]
    fn encode16_zero_state() {
        let mut e = RemapEntry::empty();
        e.set_range(0, Cf::X1);
        e.zero = true;
        let decoded = RemapEntry::decode16(e.encode16());
        assert!(decoded.zero);
        assert_eq!(decoded.remap, e.remap);
        assert_eq!(decoded.cf2, 0);
    }

    #[test]
    fn encode16_exhaustive_roundtrip() {
        // Every decodable 16-bit pattern must re-encode to itself when its
        // decoded form is structurally valid.
        for bits in 0..=u16::MAX {
            let e = RemapEntry::decode16(bits);
            if e.check(8).is_ok() {
                assert_eq!(e.encode16(), bits, "pattern {bits:#06x}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "aligned")]
    fn misaligned_range_panics() {
        RemapEntry::empty().set_range(1, Cf::X2);
    }

    #[test]
    #[should_panic(expected = "overlaps")]
    fn overlapping_range_panics() {
        let mut e = RemapEntry::empty();
        e.set_range(0, Cf::X2);
        e.set_range(0, Cf::X4);
    }

    #[test]
    fn check_catches_inconsistency() {
        let e = RemapEntry {
            remap: 0b01,
            cf2: 0b1,
            ..RemapEntry::empty()
        };
        assert!(e.check(8).is_err(), "cf2 without both remap bits");
        let e = RemapEntry {
            remap: 0xFF,
            cf2: 0b0001,
            cf4: 0b01,
            ..RemapEntry::empty()
        };
        assert!(e.check(8).is_err(), "cf2 inside cf4 quad");
    }

    #[test]
    fn slots_formula_matches_paper() {
        // "the remapped location is equal to the number of valid remap bits,
        // minus valid CF2 bits, and minus 3x valid CF4 bits".
        let mut e = RemapEntry::empty();
        e.set_range(0, Cf::X4); // 4 bits, 1 slot
        e.set_range(4, Cf::X2); // 2 bits, 1 slot
        e.set_range(6, Cf::X1); // 1 bit, 1 slot
        e.set_range(7, Cf::X1); // 1 bit, 1 slot
        assert_eq!(e.slots_used(), 8 - 1 - 3);
    }
}

//! Version-keyed memoization of compression verdicts.
//!
//! The controller hot path re-renders memory ranges and re-runs FPC/BDI
//! trials on every fill and every writeback to a compressed range. But
//! rendered bytes are a pure function of `(content salt, address,
//! per-line versions)` — see [`MemoryContents::salt`] — so a verdict
//! computed once stays valid for as long as the covered lines' versions
//! do not change.
//!
//! Memoization happens at **chunk** granularity: in cacheline-aligned
//! mode (the paper's hardware), every trial — `fits`, `best_range`,
//! `chunk_still_fits`, the zero-range check — decomposes into verdicts
//! over `64 * factor`-byte chunks of at most four lines. That is the
//! level where the memo pays: a write invalidates only the chunks whose
//! lines it touched, so when a range is re-tried after an update, the
//! untouched chunks still hit. (The `whole_range` ablation mode trials
//! entire 1 kB ranges at once; it opts out of the memo and simply
//! recomputes.)
//!
//! The memo is a direct-mapped table whose key embeds the *entire* input
//! of the verdict: probe kind, chunk base and length, the content salt,
//! and the full version vector of every covered line. A hit therefore
//! reproduces the exact value the trial would compute — the memo is
//! behavior-invisible by construction, which is what lets the
//! differential goldens pin it. It is deliberately *not* serialized: a
//! restored run starts cold and re-fills it on demand.

use baryon_sim::rng::mix64;
use baryon_workloads::MemoryContents;

/// Maximum lines a memoized chunk may cover (a CF4 chunk: 4 × 64 B).
pub(crate) const MEMO_LINES: usize = 4;

/// Direct-mapped slot count. The hot set of a zipfian workload spans
/// hundreds of thousands of distinct chunks; at 48 B per slot this is a
/// ~12 MB table, small enough to be irrelevant on a host and large
/// enough that the hot set mostly avoids aliasing.
const MEMO_SLOTS: usize = 262_144;

/// What question the memoized verdict answers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Probe {
    /// Does this `64 * factor`-byte chunk compress into one cacheline?
    ChunkFits {
        /// The CF factor (2 or 4) that sets the chunk width.
        factor: u8,
    },
    /// Is this chunk all zero bytes when rendered?
    Zero,
}

impl Probe {
    fn code(self) -> u64 {
        match self {
            Probe::ChunkFits { factor } => 0x100 | factor as u64,
            Probe::Zero => 0x200,
        }
    }
}

/// A fully-built lookup key: everything the verdict depends on.
#[derive(Debug, Clone, Copy)]
pub(crate) struct MemoKey {
    hash: u64,
    base: u64,
    meta: u64,
    lines: usize,
    vers: [u32; MEMO_LINES],
}

impl MemoKey {
    /// Builds the key for a `len`-byte chunk at line-aligned `base`, or
    /// `None` when the chunk spans more than [`MEMO_LINES`] lines (fall
    /// back to the direct computation; no correctness impact).
    pub(crate) fn build(mem: &MemoryContents, base: u64, len: usize, probe: Probe) -> Option<Self> {
        let mut vers = [0u32; MEMO_LINES];
        let lines = mem.versions_into(base, len, &mut vers)?;
        let meta = (len as u64) << 16 | probe.code();
        let mut hash = mix64(mem.salt() ^ base, meta);
        for v in &vers[..lines] {
            hash = mix64(hash, *v as u64);
        }
        Some(MemoKey {
            // Reserve 0 as the empty-slot tag.
            hash: hash | 1,
            base,
            meta: meta ^ mem.salt().rotate_left(17),
            lines,
            vers,
        })
    }

    fn matches(&self, slot: &Slot) -> bool {
        slot.tag == self.hash
            && slot.base == self.base
            && slot.meta == self.meta
            && slot.vers[..self.lines] == self.vers[..self.lines]
    }
}

#[derive(Debug, Clone, Copy)]
struct Slot {
    tag: u64,
    base: u64,
    meta: u64,
    vers: [u32; MEMO_LINES],
    value: u32,
}

const EMPTY: Slot = Slot {
    tag: 0,
    base: 0,
    meta: 0,
    vers: [0; MEMO_LINES],
    value: 0,
};

/// The memo table. Collisions simply overwrite (direct-mapped): stale or
/// evicted entries cost a recompute, never a wrong answer, because a hit
/// requires the full key — versions included — to match.
#[derive(Debug, Clone)]
pub(crate) struct CompressMemo {
    slots: Vec<Slot>,
    hits: u64,
    misses: u64,
}

impl CompressMemo {
    pub(crate) fn new() -> Self {
        CompressMemo {
            slots: vec![EMPTY; MEMO_SLOTS],
            hits: 0,
            misses: 0,
        }
    }

    /// Drops every entry (used after a checkpoint restore: correctness
    /// never requires this, but a cold start keeps restored runs
    /// trivially equivalent to fresh ones).
    pub(crate) fn clear(&mut self) {
        self.slots.fill(EMPTY);
        self.hits = 0;
        self.misses = 0;
    }

    pub(crate) fn lookup(&mut self, key: &MemoKey) -> Option<u32> {
        let slot = &self.slots[key.hash as usize % MEMO_SLOTS];
        if key.matches(slot) {
            self.hits += 1;
            Some(slot.value)
        } else {
            self.misses += 1;
            None
        }
    }

    pub(crate) fn insert(&mut self, key: &MemoKey, value: u32) {
        self.slots[key.hash as usize % MEMO_SLOTS] = Slot {
            tag: key.hash,
            base: key.base,
            meta: key.meta,
            vers: key.vers,
            value,
        };
    }

    /// `(hits, misses)` since construction or [`CompressMemo::clear`].
    #[cfg(test)]
    pub(crate) fn stats(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use baryon_workloads::{MemoryContents, ProfileMix, ValueProfile};

    fn mem() -> MemoryContents {
        MemoryContents::new(ProfileMix::pure(ValueProfile::NarrowInt), 7)
    }

    #[test]
    fn hit_requires_identical_versions() {
        let mut m = mem();
        let mut memo = CompressMemo::new();
        let probe = Probe::ChunkFits { factor: 4 };
        let k1 = MemoKey::build(&m, 0, 256, probe).expect("4 lines fit");
        assert_eq!(memo.lookup(&k1), None);
        memo.insert(&k1, 1);
        assert_eq!(memo.lookup(&k1), Some(1));
        // A write inside the chunk changes a version: the old entry can
        // never satisfy the new key.
        m.write_line(128);
        let k2 = MemoKey::build(&m, 0, 256, probe).expect("4 lines fit");
        assert_eq!(memo.lookup(&k2), None);
        memo.insert(&k2, 0);
        assert_eq!(memo.lookup(&k2), Some(0));
        assert_eq!(memo.stats(), (2, 2));
    }

    #[test]
    fn distinct_probes_do_not_alias() {
        let m = mem();
        let mut memo = CompressMemo::new();
        let a = MemoKey::build(&m, 0, 128, Probe::ChunkFits { factor: 2 }).expect("fits");
        let b = MemoKey::build(&m, 0, 128, Probe::Zero).expect("fits");
        memo.insert(&a, 1);
        assert_eq!(memo.lookup(&b), None);
        assert_eq!(memo.lookup(&a), Some(1));
    }

    #[test]
    fn oversized_ranges_opt_out() {
        let m = mem();
        assert!(MemoKey::build(&m, 0, 64 * (MEMO_LINES + 1), Probe::Zero).is_none());
        assert!(MemoKey::build(&m, 0, 64 * MEMO_LINES, Probe::Zero).is_some());
    }

    #[test]
    fn different_salts_do_not_alias() {
        let m1 = mem();
        let m2 = MemoryContents::new(ProfileMix::pure(ValueProfile::NarrowInt), 8);
        assert_ne!(m1.salt(), m2.salt());
        let mut memo = CompressMemo::new();
        let k1 = MemoKey::build(&m1, 0, 256, Probe::Zero).expect("fits");
        let k2 = MemoKey::build(&m2, 0, 256, Probe::Zero).expect("fits");
        memo.insert(&k1, 1);
        assert_eq!(memo.lookup(&k2), None);
    }
}

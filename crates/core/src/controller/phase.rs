//! Stage-phase instrumentation backing Fig 3 and Fig 4 of the paper.
//!
//! * **Fig 3** classifies accesses to a block during a window right after it
//!   is *staged* (the "S" bars) and right after it is *committed* (the "C"
//!   bars) into hits, read/write sub-block misses, and write overflows.
//! * **Fig 4** tracks the miss ratio of each staged block across its stage
//!   phase, normalized to the phase length, showing layouts stabilizing.

use crate::stage::StageSlot;
use std::collections::HashMap;

/// Outcome classes of Fig 3.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessKind {
    /// Data present in fast memory.
    Hit,
    /// Demanded sub-block missing (read or write).
    Miss,
    /// Updated data no longer fits its compressed slot.
    Overflow,
}

/// Counters of one Fig 3 window.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WindowCounts {
    /// Hits observed.
    pub hits: u64,
    /// Sub-block misses observed.
    pub misses: u64,
    /// Write overflows observed.
    pub overflows: u64,
}

impl WindowCounts {
    /// Total classified accesses.
    pub fn total(&self) -> u64 {
        self.hits + self.misses + self.overflows
    }

    fn add(&mut self, kind: AccessKind) {
        match kind {
            AccessKind::Hit => self.hits += 1,
            AccessKind::Miss => self.misses += 1,
            AccessKind::Overflow => self.overflows += 1,
        }
    }
}

/// Number of time buckets the normalized stage phase is split into (Fig 4).
pub const PHASE_BUCKETS: usize = 10;

/// One completed stage phase: per-bucket access/miss counts over the
/// phase's (normalized) wall-clock span.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PhaseRecord {
    /// Accesses per normalized-time bucket.
    pub accesses: [u64; PHASE_BUCKETS],
    /// Misses per normalized-time bucket.
    pub misses: [u64; PHASE_BUCKETS],
    /// Phase length in cycles.
    pub span: u64,
    /// Whether the phase ended in a commit (vs eviction to slow).
    pub committed: bool,
}

#[derive(Debug, Clone, Default)]
struct ActivePhase {
    /// Cycle at which the block was staged.
    start: u64,
    /// (cycle, was it a miss) events.
    events: Vec<(u64, bool)>,
}

/// The tracker. Disabled by default (zero overhead beyond a branch).
#[derive(Debug, Clone, Default)]
pub struct PhaseTracker {
    enabled: bool,
    window: u64,
    max_phases: usize,
    /// One phase per (stage slot, data block): the paper's Fig 4 tracks
    /// each *block's* stage phase, not the physical entry's lifetime.
    active: HashMap<(StageSlot, u64), ActivePhase>,
    phases: Vec<PhaseRecord>,
    /// Blocks inside their post-stage window: remaining access budget.
    staged_window: HashMap<u64, u64>,
    /// Blocks inside their post-commit window.
    committed_window: HashMap<u64, u64>,
    staged_counts: WindowCounts,
    committed_counts: WindowCounts,
}

impl PhaseTracker {
    /// Creates an enabled tracker. `window` is the number of accesses
    /// classified after each stage/commit event (Fig 3); `max_phases`
    /// bounds the Fig 4 sample (the paper samples 1k blocks).
    pub fn enabled(window: u64, max_phases: usize) -> Self {
        PhaseTracker {
            enabled: true,
            window,
            max_phases,
            ..Self::default()
        }
    }

    /// Creates a disabled tracker.
    pub fn disabled() -> Self {
        Self::default()
    }

    /// Whether instrumentation is active.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// A new stage phase began for `block` at `slot` at cycle `now`.
    pub fn on_stage(&mut self, slot: StageSlot, block: u64, now: u64) {
        if !self.enabled {
            return;
        }
        self.active.entry((slot, block)).or_insert(ActivePhase {
            start: now,
            events: Vec::new(),
        });
        self.staged_window.insert(block, self.window);
    }

    /// An access touched `block`, staged at `slot`, at cycle `now`.
    pub fn on_stage_access(&mut self, slot: StageSlot, block: u64, now: u64, miss: bool) {
        if !self.enabled {
            return;
        }
        let p = self.active.entry((slot, block)).or_insert(ActivePhase {
            start: now,
            events: Vec::new(),
        });
        if p.events.len() < 4096 {
            p.events.push((now, miss));
        }
    }

    /// The stage phase of `slot` ended (commit or eviction) at cycle `now`.
    pub fn on_phase_end(&mut self, slot: StageSlot, now: u64, committed: bool, blocks: &[u64]) {
        if !self.enabled {
            return;
        }
        for block in blocks {
            let Some(p) = self.active.remove(&(slot, *block)) else {
                continue;
            };
            let span = now.saturating_sub(p.start);
            if self.phases.len() < self.max_phases && !p.events.is_empty() && span > 0 {
                let mut rec = PhaseRecord {
                    committed,
                    span,
                    ..PhaseRecord::default()
                };
                for (t, miss) in p.events {
                    let rel = t.saturating_sub(p.start).min(span - 1);
                    let bucket = ((rel * PHASE_BUCKETS as u64) / span).min(PHASE_BUCKETS as u64 - 1)
                        as usize;
                    rec.accesses[bucket] += 1;
                    if miss {
                        rec.misses[bucket] += 1;
                    }
                }
                self.phases.push(rec);
            }
        }
        if committed {
            for b in blocks {
                self.staged_window.remove(b);
                self.committed_window.insert(*b, self.window);
            }
        } else {
            for b in blocks {
                self.staged_window.remove(b);
            }
        }
    }

    /// True if `block` is currently inside its post-commit window.
    pub fn in_committed_window(&self, block: u64) -> bool {
        self.committed_window.contains_key(&block)
    }

    /// A committed block was evicted back to slow memory: its windows no
    /// longer describe fast-memory behaviour and are cancelled.
    pub fn on_evict_committed(&mut self, block: u64) {
        if !self.enabled {
            return;
        }
        self.committed_window.remove(&block);
        self.staged_window.remove(&block);
    }

    /// Classifies an access to data block `block` into the S/C windows.
    pub fn classify(&mut self, block: u64, kind: AccessKind) {
        if !self.enabled {
            return;
        }
        if let Some(left) = self.staged_window.get_mut(&block) {
            self.staged_counts.add(kind);
            *left -= 1;
            if *left == 0 {
                self.staged_window.remove(&block);
            }
        } else if let Some(left) = self.committed_window.get_mut(&block) {
            self.committed_counts.add(kind);
            *left -= 1;
            if *left == 0 {
                self.committed_window.remove(&block);
            }
        }
    }

    /// Fig 3 "S" window counters.
    pub fn staged_counts(&self) -> WindowCounts {
        self.staged_counts
    }

    /// Fig 3 "C" window counters.
    pub fn committed_counts(&self) -> WindowCounts {
        self.committed_counts
    }

    /// Fig 4 completed phase records.
    pub fn phases(&self) -> &[PhaseRecord] {
        &self.phases
    }

    /// Per-bucket miss-rate samples across completed phases (Fig 4's
    /// distribution input): element `i` collects, for each sampled phase,
    /// the block's stage misses per kilocycle in normalized-time bucket `i`
    /// (the analogue of the paper's per-block stage-area MPKI). Phases with
    /// fewer than 4 total misses are skipped as too short to bucket.
    pub fn bucket_miss_ratios(&self) -> [Vec<f64>; PHASE_BUCKETS] {
        let mut out: [Vec<f64>; PHASE_BUCKETS] = Default::default();
        for p in &self.phases {
            let total: u64 = p.misses.iter().sum();
            if total < 4 || p.span == 0 {
                continue;
            }
            let bucket_kilocycles = p.span as f64 / PHASE_BUCKETS as f64 / 1000.0;
            for (acc, misses) in out.iter_mut().zip(&p.misses) {
                acc.push(*misses as f64 / bucket_kilocycles);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn slot() -> StageSlot {
        StageSlot { set: 0, way: 0 }
    }

    #[test]
    fn disabled_tracker_is_inert() {
        let mut t = PhaseTracker::disabled();
        t.on_stage(slot(), 1, 0);
        t.on_stage_access(slot(), 1, 5, true);
        t.on_phase_end(slot(), 10, true, &[1]);
        t.classify(1, AccessKind::Hit);
        assert!(t.phases().is_empty());
        assert_eq!(t.committed_counts().total(), 0);
    }

    #[test]
    fn phase_bucketing_by_time() {
        let mut t = PhaseTracker::enabled(8, 100);
        t.on_stage(slot(), 1, 0);
        // Misses early in wall-clock time, hits later.
        for i in 0..5u64 {
            t.on_stage_access(slot(), 1, i * 10, true);
        }
        for i in 0..5u64 {
            t.on_stage_access(slot(), 1, 900 + i * 10, false);
        }
        t.on_phase_end(slot(), 1000, true, &[1]);
        let p = &t.phases()[0];
        assert!(p.committed);
        assert_eq!(p.span, 1000);
        assert_eq!(p.misses[0], 5, "all misses land in the first bucket");
        assert_eq!(p.misses[9], 0);
        assert_eq!(p.accesses[9], 5, "late hits land in the last bucket");
    }

    #[test]
    fn windows_classify_s_then_c() {
        let mut t = PhaseTracker::enabled(2, 10);
        t.on_stage(slot(), 7, 0);
        t.classify(7, AccessKind::Miss);
        t.classify(7, AccessKind::Hit);
        // Window exhausted: further accesses unclassified.
        t.classify(7, AccessKind::Hit);
        assert_eq!(t.staged_counts().total(), 2);
        assert_eq!(t.staged_counts().misses, 1);

        t.on_stage(slot(), 7, 100);
        t.on_phase_end(slot(), 200, true, &[7]);
        t.classify(7, AccessKind::Overflow);
        assert_eq!(t.committed_counts().overflows, 1);
    }

    #[test]
    fn eviction_cancels_windows() {
        let mut t = PhaseTracker::enabled(4, 10);
        t.on_stage(slot(), 3, 0);
        t.on_phase_end(slot(), 10, false, &[3]);
        t.classify(3, AccessKind::Hit);
        assert_eq!(t.staged_counts().total(), 0);
        assert_eq!(t.committed_counts().total(), 0);
    }

    #[test]
    fn max_phases_caps_memory() {
        let mut t = PhaseTracker::enabled(1, 2);
        for i in 0..5u64 {
            let s = StageSlot {
                set: 0,
                way: i as usize % 4,
            };
            t.on_stage(s, i, 0);
            t.on_stage_access(s, i, 1, true);
            t.on_phase_end(s, 10, false, &[i]);
        }
        assert_eq!(t.phases().len(), 2);
    }

    #[test]
    fn bucket_rates_decay_with_stabilizing_block() {
        let mut t = PhaseTracker::enabled(1, 10);
        t.on_stage(slot(), 0, 0);
        // Cold misses in the first 10% of the phase, then silence (hits
        // absorbed upstream), a couple of late hits visible.
        for i in 0..8u64 {
            t.on_stage_access(slot(), 0, i * 10, true);
        }
        t.on_stage_access(slot(), 0, 5000, false);
        t.on_stage_access(slot(), 0, 9000, false);
        t.on_phase_end(slot(), 10_000, true, &[0]);
        let rates = t.bucket_miss_ratios();
        assert!(rates[0][0] > 0.0, "early bucket has misses");
        assert_eq!(rates[9][0], 0.0, "late buckets are quiet");
    }

    #[test]
    fn short_phases_excluded_from_distribution() {
        let mut t = PhaseTracker::enabled(1, 10);
        t.on_stage(slot(), 0, 0);
        t.on_stage_access(slot(), 0, 1, true);
        t.on_phase_end(slot(), 10, true, &[0]);
        let rates = t.bucket_miss_ratios();
        assert!(rates.iter().all(|b| b.is_empty()), "1-miss phase skipped");
    }
}

//! The Baryon memory controller (§III).
//!
//! State is split between the *architectural* metadata structures — the
//! [`StageArea`](crate::stage::StageArea) tag array and the
//! [`RemapStore`](crate::remap::RemapStore) — and the *functional* residency
//! bookkeeping (`PhysBlock`, `BlockMeta`) a real machine would carry in the
//! data itself. The access flow implements the five cases of Fig 6; the
//! replacement/commit policies implement §III-E; flat-mode spread-swap and
//! three-way slow swap implement §III-F.

mod fill;
mod memo;
pub mod phase;
mod serve;

use crate::addr::Geometry;
use crate::config::RemapKind;
use crate::config::{BaryonConfig, HybridMode};
use crate::ctrl::{Devices, MemoryController, Request, Response, ServeCounter, ServeStats};
use crate::remap::{MultiLevelRemap, RemapStore, RemapStoreImpl, RemapTable};
use crate::stage::StageArea;
use baryon_compress::RangeCompressor;
use baryon_sim::rng::SimRng;
use baryon_sim::telemetry::Registry;
use baryon_sim::wire::{Reader, WireError, Writer};
use baryon_sim::Cycle;
use baryon_workloads::MemoryContents;
use phase::PhaseTracker;

/// State of one fast-memory data-area physical block.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) enum PhysState {
    /// Unused (cache mode before warm-up).
    Free,
    /// Flat mode: the identity OS block resides here uncompressed.
    Original,
    /// Holds committed compressed data of one super-block.
    Committed {
        /// The super-block (Rule 1).
        sb: u64,
        /// Data blocks whose remap entries point here, in block order.
        residents: Vec<u64>,
    },
}

#[derive(Debug, Clone)]
pub(crate) struct PhysBlock {
    pub(crate) state: PhysState,
    /// LRU stamp (refreshed on every touch).
    pub(crate) stamp: u64,
    /// Allocation stamp (set when the block is (re)filled; FIFO order).
    pub(crate) alloc_stamp: u64,
    /// CLOCK reference bit (set on touch, cleared by the sweeping hand).
    pub(crate) ref_bit: bool,
    /// Decayed access count (LFU).
    pub(crate) freq: u32,
}

/// Per-OS-block functional metadata.
#[derive(Debug, Clone, Default)]
pub(crate) struct BlockMeta {
    /// Sub-blocks dirty in fast memory (committed state).
    pub(crate) dirty_mask: u32,
    /// Slow-copy compression hints from compressed writeback (§III-F):
    /// CF2 pair mask and CF4 quad mask of ranges stored compressed in slow.
    pub(crate) slow_cf2: u32,
    pub(crate) slow_cf4: u32,
    /// Flat mode: this identity-fast block's content is spread into slow.
    pub(crate) displaced: bool,
    /// Degraded mode (fault recovery): a stuck fast cell was found under
    /// this block's data, so future fills avoid compression (CF1 only) and
    /// keep the layout trivially re-fetchable from the slow copy.
    pub(crate) degraded: bool,
}

/// Event counters of the Baryon access flow.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BaryonCounters {
    /// Case 1: staged, sub-block hit.
    pub case1_stage_hits: u64,
    /// Case 2: committed, sub-block hit.
    pub case2_commit_hits: u64,
    /// Case 3: staged block, sub-block miss.
    pub case3_stage_misses: u64,
    /// Case 4: committed block, sub-block miss (bypass to slow).
    pub case4_bypasses: u64,
    /// Case 5: block miss.
    pub case5_block_misses: u64,
    /// Reads served with no data movement thanks to the Z encoding.
    pub zero_serves: u64,
    /// Write overflows inside the stage area (range re-inserted).
    pub stage_overflows: u64,
    /// Write overflows on committed blocks (block evicted).
    pub committed_overflows: u64,
    /// Stage blocks committed into the cache/flat area.
    pub commits: u64,
    /// Stage blocks evicted back to slow memory.
    pub stage_evictions: u64,
    /// Flat-mode commits aborted for lack of freed slow slots.
    pub commit_aborts: u64,
    /// Flat-mode spread swaps (original block spread into slow).
    pub spread_swaps: u64,
    /// Flat-mode three-way slow swaps.
    pub three_way_swaps: u64,
    /// Accesses served from flat-mode original fast blocks.
    pub flat_original_hits: u64,
    /// Accesses to displaced (spread) blocks.
    pub displaced_accesses: u64,
    /// Decompressions on the critical path.
    pub decompressions: u64,
    /// Sub-blocks covered by staged ranges (CF statistics).
    pub cf_subs: u64,
    /// Physical slots used by staged ranges (CF statistics).
    pub cf_slots: u64,
    /// Debug: case-4 bypasses landing in a post-commit window.
    pub dbg_case4_in_cwindow: u64,
    /// Debug: writeback misses landing in a post-commit window.
    pub dbg_wbmiss_in_cwindow: u64,
    /// Debug: blocks committed with a full sub-block footprint.
    pub dbg_commit_full: u64,
    /// Debug: blocks committed with a partial footprint.
    pub dbg_commit_partial: u64,
    /// Debug: sub-blocks missing from partial commits.
    pub dbg_commit_missing_subs: u64,
    /// Integrity faults detected on checked read paths.
    pub faults_detected: u64,
    /// Faults corrected by a clean retry (transient transfer errors).
    pub faults_corrected: u64,
    /// Faults recovered by re-fetching the slow copy and poisoning the
    /// fast copy; the block enters degraded (uncompressed-fill) mode.
    pub faults_degraded: u64,
    /// Faults with no clean copy anywhere (dirty fast data over a stuck
    /// cell, or a stuck slow home).
    pub faults_unrecoverable: u64,
    /// Metadata-scrub passes completed.
    pub scrub_passes: u64,
    /// Inconsistencies repaired by scrub passes (0 in a healthy run).
    pub scrub_repairs: u64,
}

impl BaryonCounters {
    /// Average achieved compression factor (sub-blocks per slot; zero
    /// ranges contribute coverage at no slot cost).
    pub fn avg_cf(&self) -> f64 {
        if self.cf_slots == 0 {
            1.0
        } else {
            self.cf_subs as f64 / self.cf_slots as f64
        }
    }
}

/// The Baryon hybrid-memory controller.
///
/// See the crate docs for a usage example; normally constructed through
/// [`crate::system::SystemConfig`].
#[derive(Debug)]
pub struct BaryonController {
    pub(crate) cfg: BaryonConfig,
    pub(crate) geom: Geometry,
    pub(crate) rc: RangeCompressor,
    pub(crate) devices: Devices,
    pub(crate) remap: RemapStoreImpl,
    pub(crate) stage: StageArea,
    pub(crate) phys: Vec<PhysBlock>,
    pub(crate) meta: Vec<BlockMeta>,
    pub(crate) serve: ServeCounter,
    pub(crate) counters: BaryonCounters,
    pub(crate) tracker: PhaseTracker,
    pub(crate) rng: SimRng,
    pub(crate) tick: u64,
    /// Rotating victim cursor for the fully-associative pool.
    pub(crate) fifo_cursor: usize,
    /// CLOCK hands, one per cache/flat set.
    pub(crate) clock_hands: Vec<usize>,
    /// Free data-area physical blocks (kept exact; avoids pool scans).
    pub(crate) free_list: Vec<usize>,
    /// Device-address base of the data area inside fast memory.
    pub(crate) data_base: u64,
    /// Flat mode: number of OS blocks resident in the fast flat area.
    pub(crate) flat_blocks: u64,
    /// Demand reads since the last metadata-scrub pass.
    pub(crate) reads_since_scrub: u64,
    /// Version-keyed cache of compression verdicts (pure memo: never
    /// serialized, cannot change behaviour — see [`memo::CompressMemo`]).
    pub(crate) memo: memo::CompressMemo,
    /// Unified telemetry: span timings of the access flow (and any future
    /// controller-local metrics). Spans are off unless enabled.
    pub(crate) telemetry: Registry,
}

impl BaryonController {
    /// Builds a controller from a validated configuration.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid.
    pub fn new(cfg: BaryonConfig) -> Self {
        cfg.validate().expect("invalid Baryon configuration");
        let geom = cfg.geometry;
        let mut rc = if cfg.cacheline_aligned {
            RangeCompressor::cacheline_aligned()
        } else {
            RangeCompressor::whole_range()
        }
        .with_sub_bytes(geom.sub_bytes as usize);
        if cfg.use_cpack {
            rc = rc.with_cpack();
        }
        let stage = StageArea::new(
            cfg.stage_sets().max(1),
            cfg.stage_ways,
            geom.subs_per_block(),
            cfg.aging_period,
        );
        let remap_base = cfg.stage_bytes;
        let data_base = cfg.stage_bytes + cfg.remap_reserved_bytes();
        let os_blocks = cfg.os_blocks();
        let remap = match cfg.remap {
            RemapKind::Flat => RemapStoreImpl::Flat(
                RemapTable::new(
                    os_blocks,
                    geom.blocks_per_super as usize,
                    cfg.remap_cache_bytes,
                    cfg.remap_cache_latency,
                    remap_base,
                )
                .with_provisioned_bytes(cfg.remap_table_bytes()),
            ),
            RemapKind::MultiLevel {
                region_blocks,
                hot_bytes,
                hot_latency,
            } => RemapStoreImpl::MultiLevel(MultiLevelRemap::new(
                os_blocks,
                geom.blocks_per_super as usize,
                region_blocks,
                hot_bytes,
                hot_latency,
                remap_base,
            )),
        };
        let flat_blocks = cfg.flat_blocks();
        // Flat slots (indices below flat_blocks) start as identity-mapped
        // originals; cache slots start free.
        let free_list: Vec<usize> = (flat_blocks as usize..cfg.data_blocks()).rev().collect();
        let mut devices = Devices::table1();
        devices.fast.set_fault_injector(cfg.fault_fast);
        devices.slow.set_fault_injector(cfg.fault_slow);
        BaryonController {
            rc,
            geom,
            devices,
            remap,
            stage,
            phys: (0..cfg.data_blocks())
                .map(|i| PhysBlock {
                    state: if (i as u64) < flat_blocks {
                        PhysState::Original
                    } else {
                        PhysState::Free
                    },
                    stamp: 0,
                    alloc_stamp: 0,
                    ref_bit: false,
                    freq: 0,
                })
                .collect(),
            meta: (0..os_blocks).map(|_| BlockMeta::default()).collect(),
            serve: ServeCounter::default(),
            counters: BaryonCounters::default(),
            tracker: PhaseTracker::disabled(),
            rng: SimRng::from_seed(0xBA_17_0A),
            tick: 0,
            fifo_cursor: 0,
            clock_hands: vec![0; cfg.num_sets()],
            free_list,
            data_base,
            flat_blocks,
            reads_since_scrub: 0,
            memo: memo::CompressMemo::new(),
            telemetry: Registry::new(),
            cfg,
        }
    }

    /// Enables wall-clock span recording through the access flow
    /// (stage probe, remap walk, fill, commit, writeback). Off by
    /// default so golden runs never observe the host clock.
    pub fn enable_telemetry_spans(&mut self) {
        self.telemetry.enable_spans();
    }

    /// Enables the Fig 3 / Fig 4 stage-phase instrumentation.
    pub fn enable_phase_tracking(&mut self, window: u64, max_phases: usize) {
        self.tracker = PhaseTracker::enabled(window, max_phases);
    }

    /// The phase tracker (Fig 3 / Fig 4 data).
    pub fn phase_tracker(&self) -> &PhaseTracker {
        &self.tracker
    }

    /// Access-flow counters.
    pub fn counters(&self) -> &BaryonCounters {
        &self.counters
    }

    /// The configuration this controller runs.
    pub fn config(&self) -> &BaryonConfig {
        &self.cfg
    }

    /// Remap-cache hit rate (paper: >90%).
    pub fn remap_cache_hit_rate(&self) -> f64 {
        self.remap.cache_hit_rate()
    }

    // ---- geometry / address helpers -------------------------------------

    /// Whether the stage area exists (Fig 13(c) "no stage" ablation).
    pub(crate) fn stage_enabled(&self) -> bool {
        self.cfg.stage_bytes > 0
    }

    /// Cache/flat-area set of a super-block.
    pub(crate) fn set_of_super(&self, sb: u64) -> usize {
        (sb % self.cfg.num_sets() as u64) as usize
    }

    /// The range of physical data blocks belonging to a set.
    pub(crate) fn phys_of_set(&self, set: usize) -> std::ops::Range<usize> {
        if self.cfg.is_fully_associative() {
            0..self.phys.len()
        } else {
            let assoc = self.cfg.assoc;
            set * assoc..(set + 1) * assoc
        }
    }

    /// Physical data block index from a remap pointer.
    pub(crate) fn phys_of_pointer(&self, sb: u64, pointer: u32) -> usize {
        if self.cfg.is_fully_associative() {
            pointer as usize
        } else {
            self.set_of_super(sb) * self.cfg.assoc + pointer as usize
        }
    }

    /// Remap pointer encoding of a physical block for a super-block.
    pub(crate) fn pointer_of_phys(&self, sb: u64, phys: usize) -> u32 {
        if self.cfg.is_fully_associative() {
            phys as u32
        } else {
            (phys - self.set_of_super(sb) * self.cfg.assoc) as u32
        }
    }

    /// Fast device address of slot `slot` in data-area block `phys`.
    pub(crate) fn data_slot_addr(&self, phys: usize, slot: usize) -> u64 {
        self.data_base + phys as u64 * self.geom.block_bytes + slot as u64 * self.geom.sub_bytes
    }

    /// Fast device address of slot `slot` in stage block `(set, way)`.
    pub(crate) fn stage_slot_addr(&self, slot: crate::stage::StageSlot, sub_slot: usize) -> u64 {
        (slot.set * self.stage.ways() + slot.way) as u64 * self.geom.block_bytes
            + sub_slot as u64 * self.geom.sub_bytes
    }

    /// Slow device address of the home of `(block, sub)`.
    ///
    /// In flat/mixed modes only blocks beyond the flat fast area have slow
    /// homes.
    ///
    /// # Panics
    ///
    /// Panics if the block's home is in fast memory.
    pub(crate) fn slow_home_addr(&self, block: u64, sub: usize) -> u64 {
        assert!(block >= self.flat_blocks, "block {block} has a fast home");
        let b = block - self.flat_blocks;
        b * self.geom.block_bytes + sub as u64 * self.geom.sub_bytes
    }

    /// True if `block`'s OS home is in the flat fast area.
    pub(crate) fn has_fast_home(&self, block: u64) -> bool {
        block < self.flat_blocks
    }

    /// True if physical data-area slot `phys` belongs to the OS-visible
    /// flat partition (commits there displace an identity original and
    /// must swap); cache-partition slots evict normally.
    pub(crate) fn is_flat_slot(&self, phys: usize) -> bool {
        (phys as u64) < self.flat_blocks
    }

    /// Marks a physical block most-recently-used.
    pub(crate) fn touch_phys(&mut self, phys: usize) {
        self.tick += 1;
        let p = &mut self.phys[phys];
        p.stamp = self.tick;
        p.ref_bit = true;
        p.freq = p.freq.saturating_add(1);
    }

    /// Records a (re)allocation of a physical block (FIFO ordering).
    pub(crate) fn stamp_alloc(&mut self, phys: usize) {
        self.tick += 1;
        self.phys[phys].alloc_stamp = self.tick;
    }

    /// The slow-copy compression hint for `(block, sub)`: the compressed
    /// range containing `sub`, if the slow copy stores it compressed.
    pub(crate) fn slow_hint(&self, block: u64, sub: usize) -> Option<(usize, baryon_compress::Cf)> {
        let m = &self.meta[block as usize];
        if m.slow_cf4 >> (sub / 4) & 1 == 1 {
            Some((sub / 4 * 4, baryon_compress::Cf::X4))
        } else if m.slow_cf2 >> (sub / 2) & 1 == 1 {
            Some((sub / 2 * 2, baryon_compress::Cf::X2))
        } else {
            None
        }
    }

    /// Clears any slow-copy hint overlapping `sub`.
    pub(crate) fn clear_slow_hint(&mut self, block: u64, sub: usize) {
        let m = &mut self.meta[block as usize];
        m.slow_cf4 &= !(1 << (sub / 4));
        m.slow_cf2 &= !(1 << (sub / 2));
    }

    // ---- fault recovery / metadata scrub --------------------------------

    /// Runs one metadata-scrub pass: audits the remap table against the
    /// physical residency bookkeeping and the stage tag array, repairing
    /// (and counting) every inconsistency found. A healthy controller
    /// repairs nothing — the `scrub_repairs` counter is the chaos suite's
    /// canary for metadata corruption. Returns this pass's repair count.
    ///
    /// Scrubbing streams the resident remap structure out of fast memory
    /// ([`RemapStore::footprint_bytes`] — the full table for the flat
    /// store, root plus live leaves for the multi-level store), so passes
    /// cost device bandwidth; they only run when
    /// [`BaryonConfig::scrub_interval`](crate::config::BaryonConfig) is
    /// non-zero (or when called directly, e.g. from tests).
    pub fn scrub_metadata(&mut self, now: Cycle) -> u64 {
        let mut repairs = 0u64;
        let table_bytes = self.remap.footprint_bytes() as usize;
        if table_bytes > 0 {
            self.devices
                .fast
                .access(now, self.cfg.stage_bytes, table_bytes, false);
        }

        // Every non-empty remap entry must point at a committed physical
        // block that lists it as a resident.
        for b in 0..self.cfg.os_blocks() {
            let entry = self.remap.entry(b);
            if entry.is_empty() {
                continue;
            }
            let sb = self.geom.super_of_block(b);
            let phys = self.phys_of_pointer(sb, entry.pointer);
            let resident = phys < self.phys.len()
                && matches!(
                    &self.phys[phys].state,
                    PhysState::Committed { sb: s, residents } if *s == sb && residents.contains(&b)
                );
            if !resident {
                self.remap.invalidate(b);
                self.meta[b as usize].dirty_mask = 0;
                repairs += 1;
            }
        }

        // Every committed resident must have a remap entry pointing back.
        for phys in 0..self.phys.len() {
            let PhysState::Committed { sb, residents } = self.phys[phys].state.clone() else {
                continue;
            };
            let keep: Vec<u64> = residents
                .iter()
                .copied()
                .filter(|r| {
                    let e = self.remap.entry(*r);
                    !e.is_empty()
                        && self.geom.super_of_block(*r) == sb
                        && self.phys_of_pointer(sb, e.pointer) == phys
                })
                .collect();
            if keep.len() != residents.len() {
                repairs += (residents.len() - keep.len()) as u64;
                if keep.is_empty() {
                    self.release_phys(phys);
                } else if let PhysState::Committed { residents, .. } = &mut self.phys[phys].state {
                    *residents = keep;
                }
            }
        }

        // Stage entries: per-block range masks must be in-bounds and
        // non-overlapping; an entry violating that cannot be trusted.
        let nsubs = self.geom.subs_per_block();
        for slot in self.stage.occupied_slots() {
            let Some(entry) = self.stage.entry(slot) else {
                continue;
            };
            let mut bad = false;
            for off in 0..self.geom.blocks_per_super as usize {
                let mut seen = 0u32;
                for (_, r) in entry.ranges_of(off) {
                    let mask = serve::range_mask(&r);
                    if r.sub_off as usize + r.cf.sub_blocks() > nsubs || seen & mask != 0 {
                        bad = true;
                    }
                    seen |= mask;
                }
            }
            if bad {
                let _ = self.stage.evict(slot);
                repairs += 1;
            }
        }

        self.counters.scrub_passes += 1;
        self.counters.scrub_repairs += repairs;
        repairs
    }

    /// Scrub trigger, charged once per demand read.
    pub(crate) fn maybe_scrub(&mut self, now: Cycle) {
        if self.cfg.scrub_interval == 0 {
            return;
        }
        self.reads_since_scrub += 1;
        if self.reads_since_scrub >= self.cfg.scrub_interval {
            self.reads_since_scrub = 0;
            self.scrub_metadata(now);
        }
    }

    /// Serializes all mutable state for checkpointing. Geometry, config
    /// and the pure range compressor are rebuilt by the constructor;
    /// `data_base`/`flat_blocks` are derived from them.
    ///
    /// The phase tracker is deliberately not serialized (only its enabled
    /// flag, which must be off): checkpointed runs never enable tracking.
    pub fn save_state(&self, w: &mut Writer) {
        self.devices.save_state(w);
        self.remap.save_state(w);
        self.stage.save_state(w);
        w.seq(self.phys.len());
        for p in &self.phys {
            match &p.state {
                PhysState::Free => w.u8(0),
                PhysState::Original => w.u8(1),
                PhysState::Committed { sb, residents } => {
                    w.u8(2);
                    w.u64(*sb);
                    w.seq(residents.len());
                    for r in residents {
                        w.u64(*r);
                    }
                }
            }
            w.u64(p.stamp);
            w.u64(p.alloc_stamp);
            w.bool(p.ref_bit);
            w.u32(p.freq);
        }
        w.seq(self.meta.len());
        for m in &self.meta {
            w.u32(m.dirty_mask);
            w.u32(m.slow_cf2);
            w.u32(m.slow_cf4);
            w.bool(m.displaced);
            w.bool(m.degraded);
        }
        self.serve.save_state(w);
        let c = &self.counters;
        for v in [
            c.case1_stage_hits,
            c.case2_commit_hits,
            c.case3_stage_misses,
            c.case4_bypasses,
            c.case5_block_misses,
            c.zero_serves,
            c.stage_overflows,
            c.committed_overflows,
            c.commits,
            c.stage_evictions,
            c.commit_aborts,
            c.spread_swaps,
            c.three_way_swaps,
            c.flat_original_hits,
            c.displaced_accesses,
            c.decompressions,
            c.cf_subs,
            c.cf_slots,
            c.dbg_case4_in_cwindow,
            c.dbg_wbmiss_in_cwindow,
            c.dbg_commit_full,
            c.dbg_commit_partial,
            c.dbg_commit_missing_subs,
            c.faults_detected,
            c.faults_corrected,
            c.faults_degraded,
            c.faults_unrecoverable,
            c.scrub_passes,
            c.scrub_repairs,
        ] {
            w.u64(v);
        }
        w.bool(self.tracker.is_enabled());
        for s in self.rng.state() {
            w.u64(s);
        }
        w.u64(self.tick);
        w.usize(self.fifo_cursor);
        w.seq(self.clock_hands.len());
        for h in &self.clock_hands {
            w.usize(*h);
        }
        w.seq(self.free_list.len());
        for f in &self.free_list {
            w.usize(*f);
        }
        w.u64(self.reads_since_scrub);
        self.telemetry.save_state(w);
    }

    /// Overlays checkpointed state onto this freshly constructed
    /// controller.
    ///
    /// # Errors
    ///
    /// Returns [`WireError`] on a truncated payload, a geometry mismatch,
    /// or a checkpoint taken with phase tracking enabled (unsupported).
    pub fn load_state(&mut self, r: &mut Reader<'_>) -> Result<(), WireError> {
        self.devices.load_state(r)?;
        self.remap.load_state(r)?;
        self.stage.load_state(r)?;
        let n = r.seq()?;
        if n != self.phys.len() {
            return Err(WireError::BadLength(n as u64));
        }
        for p in &mut self.phys {
            p.state = match r.u8()? {
                0 => PhysState::Free,
                1 => PhysState::Original,
                2 => {
                    let sb = r.u64()?;
                    let residents = (0..r.seq()?).map(|_| r.u64()).collect::<Result<_, _>>()?;
                    PhysState::Committed { sb, residents }
                }
                t => return Err(WireError::BadTag(t)),
            };
            p.stamp = r.u64()?;
            p.alloc_stamp = r.u64()?;
            p.ref_bit = r.bool()?;
            p.freq = r.u32()?;
        }
        let n = r.seq()?;
        if n != self.meta.len() {
            return Err(WireError::BadLength(n as u64));
        }
        for m in &mut self.meta {
            m.dirty_mask = r.u32()?;
            m.slow_cf2 = r.u32()?;
            m.slow_cf4 = r.u32()?;
            m.displaced = r.bool()?;
            m.degraded = r.bool()?;
        }
        self.serve.load_state(r)?;
        let c = &mut self.counters;
        for v in [
            &mut c.case1_stage_hits,
            &mut c.case2_commit_hits,
            &mut c.case3_stage_misses,
            &mut c.case4_bypasses,
            &mut c.case5_block_misses,
            &mut c.zero_serves,
            &mut c.stage_overflows,
            &mut c.committed_overflows,
            &mut c.commits,
            &mut c.stage_evictions,
            &mut c.commit_aborts,
            &mut c.spread_swaps,
            &mut c.three_way_swaps,
            &mut c.flat_original_hits,
            &mut c.displaced_accesses,
            &mut c.decompressions,
            &mut c.cf_subs,
            &mut c.cf_slots,
            &mut c.dbg_case4_in_cwindow,
            &mut c.dbg_wbmiss_in_cwindow,
            &mut c.dbg_commit_full,
            &mut c.dbg_commit_partial,
            &mut c.dbg_commit_missing_subs,
            &mut c.faults_detected,
            &mut c.faults_corrected,
            &mut c.faults_degraded,
            &mut c.faults_unrecoverable,
            &mut c.scrub_passes,
            &mut c.scrub_repairs,
        ] {
            *v = r.u64()?;
        }
        if r.bool()? {
            // Phase tracking carries unserializable analysis state.
            return Err(WireError::BadTag(1));
        }
        let mut rng_state = [0u64; 4];
        for s in &mut rng_state {
            *s = r.u64()?;
        }
        self.rng = SimRng::from_state(rng_state);
        self.tick = r.u64()?;
        self.fifo_cursor = r.usize()?;
        let n = r.seq()?;
        if n != self.clock_hands.len() {
            return Err(WireError::BadLength(n as u64));
        }
        for h in &mut self.clock_hands {
            *h = r.usize()?;
        }
        let n = r.seq()?;
        if n > self.phys.len() {
            return Err(WireError::BadLength(n as u64));
        }
        self.free_list = (0..n).map(|_| r.usize()).collect::<Result<_, _>>()?;
        self.reads_since_scrub = r.u64()?;
        self.telemetry = Registry::load_state(r)?;
        // The memo would stay *correct* across a restore (its keys embed
        // line versions), but a cold start keeps restored runs trivially
        // equivalent to fresh ones.
        self.memo.clear();
        Ok(())
    }
}

impl MemoryController for BaryonController {
    fn read(&mut self, now: Cycle, req: Request, mem: &mut MemoryContents) -> Response {
        let t = self.telemetry.timer();
        let r = self.read_impl(now, req, mem);
        self.telemetry.record_span("span.read", t);
        r
    }

    fn writeback(&mut self, now: Cycle, addr: u64, mem: &mut MemoryContents) -> Cycle {
        let t = self.telemetry.timer();
        let done = self.writeback_impl(now, addr, mem);
        self.telemetry.record_span("span.writeback", t);
        done
    }

    fn serve_stats(&self) -> ServeStats {
        self.serve.finish(&self.devices)
    }

    fn export(&self, reg: &mut Registry) {
        let c = &self.counters;
        reg.set_counter("case1_stage_hits", c.case1_stage_hits);
        reg.set_counter("case2_commit_hits", c.case2_commit_hits);
        reg.set_counter("case3_stage_misses", c.case3_stage_misses);
        reg.set_counter("case4_bypasses", c.case4_bypasses);
        reg.set_counter("case5_block_misses", c.case5_block_misses);
        reg.set_counter("zero_serves", c.zero_serves);
        reg.set_counter("stage_overflows", c.stage_overflows);
        reg.set_counter("committed_overflows", c.committed_overflows);
        reg.set_counter("commits", c.commits);
        reg.set_counter("stage_evictions", c.stage_evictions);
        reg.set_counter("commit_aborts", c.commit_aborts);
        reg.set_counter("spread_swaps", c.spread_swaps);
        reg.set_counter("three_way_swaps", c.three_way_swaps);
        reg.set_counter("flat_original_hits", c.flat_original_hits);
        reg.set_counter("displaced_accesses", c.displaced_accesses);
        reg.set_counter("decompressions", c.decompressions);
        reg.set_counter("faults_detected", c.faults_detected);
        reg.set_counter("faults_corrected", c.faults_corrected);
        reg.set_counter("faults_degraded", c.faults_degraded);
        reg.set_counter("faults_unrecoverable", c.faults_unrecoverable);
        reg.set_counter("scrub_passes", c.scrub_passes);
        reg.set_counter("scrub_repairs", c.scrub_repairs);
        reg.set_gauge("avg_cf", c.avg_cf());
        let mut sub = Registry::new();
        self.stage.stats().export(&mut sub);
        reg.absorb("stage", &sub);
        let mut sub = Registry::new();
        self.remap.export(&mut sub);
        reg.absorb("remap", &sub);
        reg.set_gauge("remap.cache_hit_rate", self.remap.cache_hit_rate());
        self.devices.export(reg);
        reg.merge(&self.telemetry);
    }

    fn reset_stats(&mut self) {
        self.serve.reset();
        self.counters = BaryonCounters::default();
        self.devices.reset_stats();
        self.remap.reset_stats();
        self.stage.reset_stats();
        self.telemetry.reset();
    }

    fn name(&self) -> &str {
        // The multi-level remap store defines the trimma family
        // regardless of the hybrid mode it rides on.
        if matches!(self.cfg.remap, RemapKind::MultiLevel { .. }) {
            return "trimma";
        }
        match (self.cfg.mode, self.cfg.is_fully_associative()) {
            (HybridMode::Cache, false) => "baryon",
            (HybridMode::Cache, true) => "baryon-fa-cache",
            (HybridMode::Flat, _) => "baryon-fa",
            (HybridMode::Mixed, _) => "baryon-mixed",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ctrl::test_contents;
    use baryon_workloads::Scale;

    fn small_scale() -> Scale {
        Scale { divisor: 2048 }
    }

    fn controller() -> BaryonController {
        BaryonController::new(BaryonConfig::default_cache_mode(small_scale()))
    }

    #[test]
    fn constructs_with_defaults() {
        let c = controller();
        assert_eq!(c.name(), "baryon");
        assert!(c.stage_enabled());
        assert!(!c.phys.is_empty());
    }

    #[test]
    fn geometry_helpers_consistent() {
        let c = controller();
        let sb = 5u64;
        let set = c.set_of_super(sb);
        let range = c.phys_of_set(set);
        let phys = range.start;
        let ptr = c.pointer_of_phys(sb, phys);
        assert_eq!(c.phys_of_pointer(sb, ptr), phys);
    }

    #[test]
    fn fa_pointer_is_global() {
        let c = BaryonController::new(BaryonConfig::default_flat_fa(small_scale()));
        assert_eq!(c.phys_of_pointer(3, 17), 17);
        assert_eq!(c.pointer_of_phys(9, 17), 17);
    }

    #[test]
    fn flat_mode_initializes_originals() {
        let c = BaryonController::new(BaryonConfig::default_flat_fa(small_scale()));
        assert!(c.phys.iter().all(|p| p.state == PhysState::Original));
        assert!(c.has_fast_home(0));
        assert!(!c.has_fast_home(c.flat_blocks));
    }

    #[test]
    fn cache_mode_slow_home_is_identity() {
        let c = controller();
        assert_eq!(c.slow_home_addr(3, 2), 3 * 2048 + 2 * 256);
    }

    #[test]
    #[should_panic(expected = "fast home")]
    fn flat_slow_home_of_fast_block_panics() {
        let c = BaryonController::new(BaryonConfig::default_flat_fa(small_scale()));
        c.slow_home_addr(0, 0);
    }

    #[test]
    fn first_read_misses_then_hits() {
        let mut c = controller();
        let mut mem = test_contents();
        let r1 = c.read(
            0,
            Request {
                addr: 4096,
                core: 0,
            },
            &mut mem,
        );
        assert!(!r1.served_by_fast, "cold miss goes to slow memory");
        assert_eq!(c.counters().case5_block_misses, 1);
        // After staging, the same sub-block hits in the stage area.
        let r2 = c.read(
            r1.latency + 10_000,
            Request {
                addr: 4096,
                core: 0,
            },
            &mut mem,
        );
        assert!(r2.served_by_fast, "staged data serves from fast");
        assert_eq!(c.counters().case1_stage_hits, 1);
        assert!(r2.latency < r1.latency);
    }

    #[test]
    fn slow_hints_roundtrip() {
        let mut c = controller();
        c.meta[3].slow_cf2 = 0b0010;
        assert_eq!(c.slow_hint(3, 2), Some((2, baryon_compress::Cf::X2)));
        assert_eq!(c.slow_hint(3, 4), None);
        c.clear_slow_hint(3, 3);
        assert_eq!(c.slow_hint(3, 2), None);
    }

    #[test]
    fn export_has_counters() {
        let mut c = controller();
        let mut mem = test_contents();
        c.read(0, Request { addr: 0, core: 0 }, &mut mem);
        let mut s = Registry::new();
        c.export(&mut s);
        assert_eq!(s.counter("case5_block_misses"), 1);
        assert_eq!(s.counter("remap.cache_misses"), 1);
        assert!(s.gauge("avg_cf") >= 1.0);
    }

    #[test]
    fn reset_stats_clears_counts() {
        let mut c = controller();
        let mut mem = test_contents();
        c.read(0, Request { addr: 0, core: 0 }, &mut mem);
        c.reset_stats();
        assert_eq!(c.counters().case5_block_misses, 0);
        assert_eq!(c.serve_stats().reads, 0);
    }
}

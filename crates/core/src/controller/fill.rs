//! Staging, replacement, commit and eviction machinery (§III-E, §III-F).

use super::memo::{MemoKey, Probe, MEMO_LINES};
use super::serve::range_mask;
use super::{BaryonController, PhysState};
use crate::metadata::stage_entry::RangeRef;
use crate::metadata::RemapEntry;
use crate::remap::RemapStore;
use crate::stage::StageSlot;
use baryon_compress::{is_all_zero, Cf};
use baryon_sim::Cycle;
use baryon_workloads::MemoryContents;

/// Per-block commit plan: `(blk_off, [(stage slot index, range)])`.
type BlockRanges = Vec<(usize, Vec<(Option<usize>, RangeRef)>)>;

impl BaryonController {
    /// Fetches the maximal compressible range around `(b, sub)` from slow
    /// memory and stages it (cases 3 and 5; slow-to-stage prefetch).
    pub(crate) fn stage_fill(&mut self, at: Cycle, b: u64, sub: usize, mem: &mut MemoryContents) {
        let t = self.telemetry.timer();
        self.stage_fill_inner(at, b, sub, mem);
        self.telemetry.record_span("span.fill", t);
    }

    fn stage_fill_inner(&mut self, at: Cycle, b: u64, sub: usize, mem: &mut MemoryContents) {
        let sb = self.geom.super_of_block(b);
        let off = self.geom.blk_off(b);
        let existing = self
            .stage
            .block_home(sb, off)
            .and_then(|s| self.stage.entry(s).map(|e| e.sub_mask_of(off)))
            .unwrap_or(0);
        if existing >> sub & 1 == 1 {
            return; // already staged meanwhile
        }

        let (start, cf, compressed_src) = self.choose_range(b, sub, existing, mem);
        let range = RangeRef {
            blk_off: off as u8,
            sub_off: start as u8,
            cf,
            dirty: false,
        };

        // Background fetch of the rest of the range (the demanded 64 B was
        // already transferred by the demand read).
        let total_bytes = if compressed_src {
            self.geom.sub_bytes as usize
        } else {
            cf.sub_blocks() * self.geom.sub_bytes as usize
        };
        if total_bytes > 64 {
            let addr = self.slow_home_addr(b, start);
            self.devices.slow.access(at, addr, total_bytes - 64, false);
        }

        let zero = self.cfg.zero_opt
            && self.range_is_zero(
                self.geom.sub_addr(b, start),
                cf.sub_blocks() * self.geom.sub_bytes as usize,
                mem,
            );
        self.stage_put(at, b, range, zero, mem);
    }

    /// Memoized per-chunk compression verdict: does the `64 * factor`-byte
    /// chunk at `chunk_base` compress into one cacheline? This is the
    /// atom every cacheline-aligned trial decomposes into, and the level
    /// where memoization pays: a write invalidates only the chunks whose
    /// lines it touched, so the other chunks of a re-tried range still hit.
    pub(crate) fn chunk_fits_memoized(
        &mut self,
        chunk_base: u64,
        factor: usize,
        mem: &MemoryContents,
    ) -> bool {
        let len = 64 * factor;
        let probe = Probe::ChunkFits {
            factor: factor as u8,
        };
        let key = MemoKey::build(mem, chunk_base, len, probe);
        if let Some(k) = &key {
            if let Some(v) = self.memo.lookup(k) {
                return v != 0;
            }
        }
        // Render into a stack buffer: chunks are at most 4 lines.
        let mut buf = [0u8; 256];
        for i in 0..len / 64 {
            buf[i * 64..(i + 1) * 64].copy_from_slice(&mem.line(chunk_base + i as u64 * 64));
        }
        let fits = self.rc.chunk_size(&buf[..len]) <= 64;
        if let Some(k) = &key {
            self.memo.insert(k, fits as u32);
        }
        fits
    }

    /// Memoized cacheline-aligned [`baryon_compress::RangeCompressor::fits`]:
    /// every `64 * factor`-byte chunk of the `cf`-range at `base` must
    /// compress into one cacheline. Identical chunking to the compressor's
    /// own aligned mode, evaluated chunk by chunk through the memo.
    pub(crate) fn range_fits_aligned(&mut self, base: u64, cf: Cf, mem: &MemoryContents) -> bool {
        let chunk = 64 * cf.factor();
        let len = cf.sub_blocks() * self.geom.sub_bytes as usize;
        (0..len / chunk)
            .all(|i| self.chunk_fits_memoized(base + (i * chunk) as u64, cf.factor(), mem))
    }

    /// Memoized `is_all_zero` over a rendered range, decomposed into
    /// [`MEMO_LINES`]-line pieces so a write re-checks only the piece it
    /// touched (versions unchanged means bytes unchanged).
    fn range_is_zero(&mut self, base: u64, len: usize, mem: &MemoryContents) -> bool {
        const PIECE: usize = 64 * MEMO_LINES;
        let mut off = 0;
        while off < len {
            let n = PIECE.min(len - off);
            if !self.piece_is_zero(base + off as u64, n, mem) {
                return false;
            }
            off += n;
        }
        true
    }

    fn piece_is_zero(&mut self, base: u64, len: usize, mem: &MemoryContents) -> bool {
        let key = MemoKey::build(mem, base, len, Probe::Zero);
        if let Some(k) = &key {
            if let Some(v) = self.memo.lookup(k) {
                return v != 0;
            }
        }
        let zero = (0..len / 64).all(|i| is_all_zero(&mem.line(base + i as u64 * 64)));
        if let Some(k) = &key {
            self.memo.insert(k, zero as u32);
        }
        zero
    }

    /// Chooses the fetch range for a demand miss: slow-copy hints first
    /// (they skip compression trials, §III-D), otherwise the maximal
    /// contiguous aligned range that compresses into one slot, shrunk to
    /// avoid overlapping already-staged sub-blocks.
    pub(crate) fn choose_range(
        &mut self,
        b: u64,
        sub: usize,
        existing_mask: u32,
        mem: &MemoryContents,
    ) -> (usize, Cf, bool) {
        if self.meta[b as usize].degraded {
            // Degraded block (a stuck fast cell was found under its data):
            // no compression trials, single raw sub-block fetches only.
            return (sub, Cf::X1, false);
        }
        if let Some((start, cf)) = self.slow_hint(b, sub) {
            let mask = range_mask(&RangeRef {
                blk_off: 0,
                sub_off: start as u8,
                cf,
                dirty: false,
            });
            if mask & existing_mask == 0 {
                return (start, cf, true);
            }
        }
        let window = sub / 4 * 4;
        let base = self.geom.sub_addr(b, window);
        let len = 4 * self.geom.sub_bytes as usize;
        let pos = sub - window;
        // `RangeCompressor::best_range`, decomposed so each trial runs
        // through the chunk memo: CF4 over the whole window, else CF2
        // over the aligned half holding `pos`, else CF1.
        let (mut cf, mut rel) = if self.cfg.cacheline_aligned {
            if self.range_fits_aligned(base, Cf::X4, mem) {
                (Cf::X4, 0)
            } else {
                let half = pos / 2;
                let half_base = base + (half * 2 * self.geom.sub_bytes as usize) as u64;
                if self.range_fits_aligned(half_base, Cf::X2, mem) {
                    (Cf::X2, half * 2)
                } else {
                    (Cf::X1, pos)
                }
            }
        } else {
            // whole_range ablation: trials span the full window, so chunk
            // memoization does not apply — compute directly.
            let data = mem.range(base, len);
            self.rc.best_range(&data, pos)
        };
        // Shrink on overlap with already-staged sub-blocks of this block.
        loop {
            let start = window + rel;
            let overlap = (start..start + cf.sub_blocks()).any(|s| existing_mask >> s & 1 == 1);
            if !overlap {
                return (start, cf, false);
            }
            match cf {
                Cf::X4 => {
                    cf = Cf::X2;
                    rel = (sub - window) / 2 * 2;
                }
                Cf::X2 => {
                    cf = Cf::X1;
                    rel = sub - window;
                }
                Cf::X1 => unreachable!("the demanded sub-block itself is not staged"),
            }
        }
    }

    /// Places a range into the stage area, making room as needed.
    pub(crate) fn stage_put(
        &mut self,
        at: Cycle,
        b: u64,
        range: RangeRef,
        zero: bool,
        mem: &mut MemoryContents,
    ) {
        let sb = self.geom.super_of_block(b);
        let off = self.geom.blk_off(b);
        let was_empty = self.stage.block_home(sb, off).is_none();
        let slot = self.stage_make_room(at, sb, off, mem);
        self.counters.cf_subs += range.cf.sub_blocks() as u64;
        if zero {
            let entry = self.stage.entry_mut(slot).expect("allocated");
            if entry.zero_ranges.len() >= entry.slots.len() {
                entry.zero_ranges.remove(0);
            }
            entry.zero_ranges.push(range);
        } else {
            self.counters.cf_slots += 1;
            let entry = self.stage.entry_mut(slot).expect("allocated");
            let free = entry.free_slot().expect("make_room guarantees a slot");
            entry.slots[free] = Some(range);
            let addr = self.stage_slot_addr(slot, free);
            self.devices
                .fast
                .access(at, addr, self.geom.sub_bytes as usize, true);
        }
        self.stage.touch(slot);
        if was_empty {
            self.tracker.on_stage(slot, b, at);
        }
    }

    /// Re-inserts the sub-blocks of a broken range (write overflow) at the
    /// best CFs their current contents allow.
    pub(crate) fn restage_subs(
        &mut self,
        at: Cycle,
        b: u64,
        mut mask: u32,
        dirty: bool,
        mem: &mut MemoryContents,
    ) {
        let off = self.geom.blk_off(b);
        while mask != 0 {
            let s = mask.trailing_zeros() as usize;
            let cf = self.best_cf_for_group(b, s, mask, mem);
            let range = RangeRef {
                blk_off: off as u8,
                sub_off: (s / cf.sub_blocks() * cf.sub_blocks()) as u8,
                cf,
                dirty,
            };
            for covered in range.sub_off as usize..range.sub_off as usize + cf.sub_blocks() {
                mask &= !(1 << covered);
            }
            let zero = self.cfg.zero_opt
                && !dirty
                && self.range_is_zero(
                    self.geom.sub_addr(b, range.sub_off as usize),
                    cf.sub_blocks() * self.geom.sub_bytes as usize,
                    mem,
                );
            self.stage_put(at, b, range, zero, mem);
        }
    }

    /// The widest aligned CF whose whole group is in `mask` and compresses.
    fn best_cf_for_group(&mut self, b: u64, s: usize, mask: u32, mem: &MemoryContents) -> Cf {
        if self.meta[b as usize].degraded {
            return Cf::X1;
        }
        for cf in [Cf::X4, Cf::X2] {
            let n = cf.sub_blocks();
            let start = s / n * n;
            let group: u32 = ((1u32 << n) - 1) << start;
            if mask & group == group && self.fits_memoized(b, start, cf, mem) {
                return cf;
            }
        }
        Cf::X1
    }

    /// Memoized `RangeCompressor::fits` over the group starting at
    /// sub-block `start` of block `b`.
    fn fits_memoized(&mut self, b: u64, start: usize, cf: Cf, mem: &MemoryContents) -> bool {
        let base = self.geom.sub_addr(b, start);
        if self.cfg.cacheline_aligned {
            return self.range_fits_aligned(base, cf, mem);
        }
        let len = cf.sub_blocks() * self.geom.sub_bytes as usize;
        self.rc.fits(&mem.range(base, len), cf)
    }

    /// Finds (or makes) a stage slot with a free sub-block slot for block
    /// `(sb, off)`, implementing the two-level replacement heuristic (Fig 8).
    fn stage_make_room(
        &mut self,
        at: Cycle,
        sb: u64,
        off: usize,
        mem: &mut MemoryContents,
    ) -> StageSlot {
        let set = self.stage.set_of(sb);

        // Rule 3: if the block already has a home, the range must join it.
        if let Some(home) = self.stage.block_home(sb, off) {
            if self
                .stage
                .entry(home)
                .is_some_and(|e| e.free_slot().is_some())
            {
                return home;
            }
            if !self.cfg.two_level_replacement || self.stage.is_lru(home) {
                self.sub_fifo_evict(at, home, mem);
                return home;
            }
            // Block-level: evict the set LRU, open a new physical block for
            // this super-block, and move the block's ranges there (Fig 8
            // bottom: de-fragmentation by re-grouping).
            let victim = self.stage.lru_way(set).expect("home exists, set non-empty");
            if victim == home {
                self.sub_fifo_evict(at, home, mem);
                return home;
            }
            self.evict_or_commit(at, victim, mem);
            self.stage.allocate(victim, sb);
            self.move_block_ranges(at, home, victim, off);
            let block = sb * self.geom.blocks_per_super + off as u64;
            self.tracker.on_stage(victim, block, at);
            return victim;
        }

        // First range of this block: join any stage block of the
        // super-block with room (the paper picks randomly among them).
        let candidates = self.stage.blocks_of(sb);
        let with_room: Vec<StageSlot> = candidates
            .iter()
            .copied()
            .filter(|s| {
                self.stage
                    .entry(*s)
                    .is_some_and(|e| e.free_slot().is_some())
            })
            .collect();
        if !with_room.is_empty() {
            let pick = self.rng.gen_range(0, with_room.len() as u64) as usize;
            return with_room[pick];
        }
        if !candidates.is_empty() {
            if let Some(lru_cand) = candidates.iter().copied().find(|c| self.stage.is_lru(*c)) {
                self.sub_fifo_evict(at, lru_cand, mem);
                return lru_cand;
            }
            if !self.cfg.two_level_replacement {
                let c = candidates[0];
                self.sub_fifo_evict(at, c, mem);
                return c;
            }
            let victim = self.stage.lru_way(set).expect("set non-empty");
            self.evict_or_commit(at, victim, mem);
            self.stage.allocate(victim, sb);
            return victim;
        }

        // No stage block for this super-block at all.
        if let Some(free) = self.stage.free_way(set) {
            self.stage.allocate(free, sb);
            return free;
        }
        let victim = self.stage.lru_way(set).expect("full set");
        self.evict_or_commit(at, victim, mem);
        self.stage.allocate(victim, sb);
        victim
    }

    /// Moves all of `(off)`'s ranges from `from` to the freshly allocated
    /// `to` (Rule 3 preservation during a block-level replacement).
    fn move_block_ranges(&mut self, at: Cycle, from: StageSlot, to: StageSlot, off: usize) {
        let ranges = self
            .stage
            .entry(from)
            .map(|e| e.ranges_of(off))
            .unwrap_or_default();
        for (slot_idx, r) in ranges {
            match slot_idx {
                Some(i) => {
                    // Data move inside fast memory.
                    let src = self.stage_slot_addr(from, i);
                    self.devices
                        .fast
                        .access(at, src, self.geom.sub_bytes as usize, false);
                    if let Some(e) = self.stage.entry_mut(from) {
                        e.slots[i] = None;
                    }
                    let free = self
                        .stage
                        .entry(to)
                        .and_then(|e| e.free_slot())
                        .expect("fresh entry has room");
                    let dst = self.stage_slot_addr(to, free);
                    self.devices
                        .fast
                        .access(at, dst, self.geom.sub_bytes as usize, true);
                    if let Some(e) = self.stage.entry_mut(to) {
                        e.slots[free] = Some(r);
                    }
                }
                None => {
                    if let Some(e) = self.stage.entry_mut(from) {
                        e.zero_ranges.retain(|zr| zr != &r);
                    }
                    if let Some(e) = self.stage.entry_mut(to) {
                        e.zero_ranges.push(r);
                    }
                }
            }
        }
    }

    /// Evicts the sub-block slot at the FIFO pointer (§III-E): new ranges
    /// are appended sequentially and wrap, so the pointer always names the
    /// next victim (or an already-free slot).
    fn sub_fifo_evict(&mut self, at: Cycle, slot: StageSlot, mem: &mut MemoryContents) {
        let nslots = self.stage.slots_per_block();
        let sb = self.stage.entry(slot).expect("allocated").tag;
        let (idx, victim) = {
            let e = self.stage.entry_mut(slot).expect("allocated");
            let idx = e.fifo as usize % nslots;
            e.fifo = (idx as u8 + 1) % nslots as u8;
            (idx, e.slots[idx])
        };
        let Some(r) = victim else {
            return; // the pointed slot is already free
        };
        self.stage.note_sub_replacement();
        if r.dirty {
            let src = self.stage_slot_addr(slot, idx);
            self.devices
                .fast
                .access(at, src, self.geom.sub_bytes as usize, false);
            let b = sb * self.geom.blocks_per_super + r.blk_off as u64;
            self.write_range_to_slow(at, b, &r, mem);
        }
        if let Some(e) = self.stage.entry_mut(slot) {
            e.slots[idx] = None;
        }
    }

    /// Writes a (dirty) range back to its slow home, compressed if the
    /// optimization is on (§III-F), and records the prefetch hints.
    pub(crate) fn write_range_to_slow(
        &mut self,
        at: Cycle,
        b: u64,
        r: &RangeRef,
        _mem: &MemoryContents,
    ) {
        let addr = self.slow_home_addr(b, r.sub_off as usize);
        if self.cfg.compressed_writeback && r.cf != Cf::X1 {
            self.devices
                .slow
                .access(at, addr, self.geom.sub_bytes as usize, true);
            let m = &mut self.meta[b as usize];
            match r.cf {
                Cf::X2 => m.slow_cf2 |= 1 << (r.sub_off / 2),
                Cf::X4 => m.slow_cf4 |= 1 << (r.sub_off / 4),
                Cf::X1 => unreachable!(),
            }
        } else {
            self.devices.slow.access(
                at,
                addr,
                r.cf.sub_blocks() * self.geom.sub_bytes as usize,
                true,
            );
            // The slow copy is raw now: clear stale hints.
            for s in r.sub_off as usize..r.sub_off as usize + r.cf.sub_blocks() {
                self.clear_slow_hint(b, s);
            }
        }
    }

    /// Block-level stage replacement: decide commit vs. eviction for the
    /// victim entry via the stability-aware cost model (Eq. 1).
    pub(crate) fn evict_or_commit(
        &mut self,
        at: Cycle,
        victim: StageSlot,
        mem: &mut MemoryContents,
    ) {
        let t = self.telemetry.timer();
        self.evict_or_commit_inner(at, victim, mem);
        self.telemetry.record_span("span.commit", t);
    }

    fn evict_or_commit_inner(&mut self, at: Cycle, victim: StageSlot, mem: &mut MemoryContents) {
        let entry = self.stage.evict(victim);
        let sb = entry.tag;
        let blocks: Vec<u64> = {
            let mut offs: Vec<usize> = (0..self.geom.blocks_per_super as usize)
                .filter(|o| entry.has_block(*o))
                .collect();
            offs.sort_unstable();
            offs.iter()
                .map(|o| sb * self.geom.blocks_per_super + *o as u64)
                .collect()
        };

        let commit = if entry.used_slots() == 0 && entry.zero_ranges.is_empty() {
            false
        } else if self.cfg.commit_all {
            true
        } else {
            let set = self.stage.set_of(sb);
            let miss_term = self.stage.mru_miss_cnt(set) as f64 / self.stage.ways() as f64
                - entry.miss_cnt as f64;
            if self.cfg.commit_k.is_infinite() {
                miss_term >= 0.0
            } else {
                let dirty_stage = entry.dirty_subs() as f64;
                let dirty_victim = self.prospective_victim_dirty(sb);
                self.cfg.commit_k * miss_term + (dirty_stage - dirty_victim) >= 0.0
            }
        };

        let committed = if commit {
            self.try_commit(at, &entry, mem)
        } else {
            false
        };
        if !committed {
            self.evict_entry_to_slow(at, &entry, mem);
        }
        self.tracker.on_phase_end(victim, at, committed, &blocks);
    }

    /// True if `sb`'s set has a free physical block (O(1) in the FA pool).
    fn has_free_phys(&self, set: usize) -> bool {
        if self.cfg.is_fully_associative() {
            !self.free_list.is_empty()
        } else {
            self.phys_of_set(set)
                .any(|i| self.phys[i].state == PhysState::Free)
        }
    }

    /// Pops a free physical block of `set`, if any.
    fn take_free_phys(&mut self, set: usize) -> Option<usize> {
        if self.cfg.is_fully_associative() {
            while let Some(i) = self.free_list.pop() {
                if self.phys[i].state == PhysState::Free {
                    return Some(i);
                }
            }
            None
        } else {
            self.phys_of_set(set)
                .find(|i| self.phys[*i].state == PhysState::Free)
        }
    }

    /// Marks a physical block free and returns it to the pool.
    pub(crate) fn release_phys(&mut self, phys: usize) {
        self.phys[phys].state = PhysState::Free;
        if self.cfg.is_fully_associative() {
            self.free_list.push(phys);
        }
    }

    /// Dirty sub-blocks of the prospective cache/flat victim (Eq. 1's
    /// second term): zero if a free physical block exists. In flat mode all
    /// sub-blocks of a victim must be swapped, so all count as dirty.
    fn prospective_victim_dirty(&self, sb: u64) -> f64 {
        let set = self.set_of_super(sb);
        if self.has_free_phys(set) {
            return 0.0;
        }
        let Some(victim) = self.peek_fast_victim(set) else {
            return 0.0;
        };
        match (&self.phys[victim].state, self.is_flat_slot(victim)) {
            (PhysState::Free, _) => 0.0,
            // Flat-partition victims are swapped wholesale (paper: "all are
            // treated as dirty"); originals always move entirely.
            (_, true) | (PhysState::Original, false) => self.geom.subs_per_block() as f64,
            (PhysState::Committed { residents, .. }, false) => residents
                .iter()
                .map(|r| self.meta[*r as usize].dirty_mask.count_ones() as f64)
                .sum(),
        }
    }

    /// The next fast victim of `set` without mutating state, per the
    /// configured policy. The paper's default (`Auto`) uses LRU for
    /// low-associative sets and a FIFO cursor for the fully-associative
    /// pool; LFU/CLOCK/random are noted as orthogonal alternatives.
    fn peek_fast_victim(&self, set: usize) -> Option<usize> {
        use crate::config::VictimPolicy;
        let policy = match self.cfg.victim_policy {
            VictimPolicy::Auto => {
                if self.cfg.is_fully_associative() {
                    VictimPolicy::Fifo
                } else {
                    VictimPolicy::Lru
                }
            }
            p => p,
        };
        let occupied = |i: &usize| self.phys[*i].state != PhysState::Free;
        match policy {
            VictimPolicy::Auto => unreachable!("resolved above"),
            VictimPolicy::Fifo => {
                if self.cfg.is_fully_associative() {
                    let n = self.phys.len();
                    (0..n)
                        .map(|k| (self.fifo_cursor + k) % n)
                        .find(|i| occupied(i))
                } else {
                    self.phys_of_set(set)
                        .filter(occupied)
                        .min_by_key(|i| self.phys[*i].alloc_stamp)
                }
            }
            VictimPolicy::Lru => self
                .phys_of_set(set)
                .filter(occupied)
                .min_by_key(|i| self.phys[*i].stamp),
            VictimPolicy::Random => {
                let candidates: Vec<usize> = self.phys_of_set(set).filter(occupied).collect();
                if candidates.is_empty() {
                    None
                } else {
                    let h = baryon_sim::rng::splitmix64(self.tick) as usize;
                    Some(candidates[h % candidates.len()])
                }
            }
            VictimPolicy::Clock => {
                // Non-mutating approximation for prospective queries: the
                // first unreferenced block in hand order; the real sweep
                // (which clears reference bits) happens in
                // `select_victim`.
                let range: Vec<usize> = self.phys_of_set(set).filter(occupied).collect();
                if range.is_empty() {
                    return None;
                }
                let hand = self.clock_hands[set] % range.len();
                range
                    .iter()
                    .cycle()
                    .skip(hand)
                    .take(range.len())
                    .copied()
                    .find(|i| !self.phys[*i].ref_bit)
                    .or(Some(range[hand]))
            }
            VictimPolicy::Lfu => self
                .phys_of_set(set)
                .filter(occupied)
                .min_by_key(|i| (self.phys[*i].freq, self.phys[*i].stamp)),
        }
    }

    /// Selects (and commits to) the victim of `set`, applying the policy's
    /// state updates: the FIFO cursor advances, the CLOCK hand sweeps and
    /// clears reference bits, and LFU decays its counters.
    fn select_victim(&mut self, set: usize) -> Option<usize> {
        use crate::config::VictimPolicy;
        let policy = match self.cfg.victim_policy {
            VictimPolicy::Auto => {
                if self.cfg.is_fully_associative() {
                    VictimPolicy::Fifo
                } else {
                    VictimPolicy::Lru
                }
            }
            p => p,
        };
        match policy {
            VictimPolicy::Clock => {
                let range: Vec<usize> = self
                    .phys_of_set(set)
                    .filter(|i| self.phys[*i].state != PhysState::Free)
                    .collect();
                if range.is_empty() {
                    return None;
                }
                let mut hand = self.clock_hands[set] % range.len();
                // Two full sweeps guarantee an unreferenced block appears.
                for _ in 0..2 * range.len() {
                    let i = range[hand];
                    hand = (hand + 1) % range.len();
                    if self.phys[i].ref_bit {
                        self.phys[i].ref_bit = false;
                    } else {
                        self.clock_hands[set] = hand;
                        return Some(i);
                    }
                }
                self.clock_hands[set] = hand;
                Some(range[hand])
            }
            VictimPolicy::Lfu => {
                let victim = self.peek_fast_victim(set);
                // Periodic decay keeps the counters adaptive.
                for i in self.phys_of_set(set) {
                    self.phys[i].freq >>= 1;
                }
                victim
            }
            _ => {
                let victim = self.peek_fast_victim(set)?;
                if self.cfg.is_fully_associative() {
                    self.fifo_cursor = (victim + 1) % self.phys.len();
                }
                Some(victim)
            }
        }
    }

    /// Acquires a physical block in `sb`'s set, evicting/swapping the
    /// current occupant. Returns `None` when a flat-mode swap is impossible
    /// (not enough freed slow slots, §III-F), in which case nothing changed.
    fn acquire_phys(
        &mut self,
        at: Cycle,
        sb: u64,
        freed_slow_subs: usize,
        mem: &mut MemoryContents,
    ) -> Option<usize> {
        let set = self.set_of_super(sb);
        if let Some(free) = self.take_free_phys(set) {
            return Some(free);
        }
        let victim = self.select_victim(set)?;
        match self.phys[victim].state.clone() {
            PhysState::Free => unreachable!("handled above"),
            PhysState::Original => {
                // Flat spread-swap: the original block's content goes into
                // the slow sub-block slots freed by the incoming commit.
                if freed_slow_subs < self.geom.subs_per_block() {
                    return None;
                }
                self.counters.spread_swaps += 1;
                let block_bytes = self.geom.block_bytes as usize;
                self.devices.fast.access(
                    at,
                    self.data_base + victim as u64 * self.geom.block_bytes,
                    block_bytes,
                    false,
                );
                self.devices.slow.access(
                    at,
                    self.displaced_slow_addr(victim as u64, 0),
                    block_bytes,
                    true,
                );
                self.meta[victim].displaced = true;
                Some(victim)
            }
            PhysState::Committed { sb: sb2, residents } => {
                if !self.is_flat_slot(victim) {
                    // Cache-partition slot: ordinary eviction.
                    for r in residents {
                        self.evict_committed_resident(at, r, victim, mem);
                    }
                    self.remap.record_update(at, sb2, &mut self.devices.fast);
                    Some(victim)
                } else {
                    {
                        // Three-way slow swap (§III-F): relocate the
                        // displaced original into the NEW commit's freed
                        // slots, then return the old residents to their
                        // (just vacated) homes.
                        if freed_slow_subs < self.geom.subs_per_block() {
                            return None;
                        }
                        self.counters.three_way_swaps += 1;
                        let block_bytes = self.geom.block_bytes as usize;
                        let z = victim as u64;
                        self.devices.slow.access(
                            at,
                            self.displaced_slow_addr(z, 0),
                            block_bytes,
                            false,
                        );
                        self.devices.slow.access(
                            at,
                            self.displaced_slow_addr(z, 1024),
                            block_bytes,
                            true,
                        );
                        for r in residents {
                            self.evict_committed_resident(at, r, victim, mem);
                        }
                        self.remap.record_update(at, sb2, &mut self.devices.fast);
                        Some(victim)
                    }
                }
            }
        }
    }

    /// Writes one committed resident's data back to its slow home and
    /// clears its remap entry. In flat mode everything is swapped (all
    /// sub-blocks written); in cache mode only dirty ranges are.
    fn evict_committed_resident(&mut self, at: Cycle, b: u64, phys: usize, mem: &MemoryContents) {
        let entry = self.remap.entry(b);
        if entry.is_empty() {
            return;
        }
        let dirty_mask = self.meta[b as usize].dirty_mask;
        let force_all = self.is_flat_slot(phys);
        // One fast-memory read of the block's occupied slots if anything
        // needs writing back (Z entries hold no data).
        let needs_data = !entry.zero && (force_all || dirty_mask != 0);
        if needs_data && entry.slots_used() > 0 {
            let addr = self.data_slot_addr(phys, 0);
            self.devices.fast.access(
                at,
                addr,
                entry.slots_used() * self.geom.sub_bytes as usize,
                false,
            );
        }
        let mut sub = 0;
        while sub < self.geom.subs_per_block() {
            match entry.range_of(sub) {
                Some((start, cf)) => {
                    let r = RangeRef {
                        blk_off: self.geom.blk_off(b) as u8,
                        sub_off: start as u8,
                        cf,
                        dirty: true,
                    };
                    let range_dirty = dirty_mask & range_mask(&r) != 0;
                    if !entry.zero && (force_all || range_dirty) {
                        self.write_range_to_slow(at, b, &r, mem);
                    }
                    sub = start + cf.sub_blocks();
                }
                None => sub += 1,
            }
        }
        self.remap.invalidate(b);
        self.meta[b as usize].dirty_mask = 0;
        self.tracker.on_evict_committed(b);
    }

    /// Commits a stage entry into the cache/flat area (§III-E). Returns
    /// false if a flat-mode swap was impossible.
    fn try_commit(
        &mut self,
        at: Cycle,
        entry: &crate::metadata::StageEntry,
        mem: &mut MemoryContents,
    ) -> bool {
        let sb = entry.tag;
        // Gather all ranges per block, sorted (Rule 4's fixed sorted layout).
        let mut per_block: BlockRanges = Vec::new();
        for off in 0..self.geom.blocks_per_super as usize {
            let ranges = entry.ranges_of(off);
            if !ranges.is_empty() {
                per_block.push((off, ranges));
            }
        }
        if per_block.is_empty() {
            return false;
        }
        let freed_slow_subs: usize = per_block
            .iter()
            .flat_map(|(_, rs)| rs.iter())
            .map(|(_, r)| r.cf.sub_blocks())
            .sum();
        let Some(target) = self.acquire_phys(at, sb, freed_slow_subs, mem) else {
            self.counters.commit_aborts += 1;
            return false;
        };

        let mut residents = Vec::new();
        // Real (non-zero) ranges are guaranteed slots (a stage entry holds
        // at most one physical block's worth); zero materialization only
        // uses whatever room is left.
        let nonzero_total: usize = per_block
            .iter()
            .flat_map(|(_, rs)| rs.iter())
            .filter(|(slot, _)| slot.is_some())
            .count();
        let mut zero_budget = self.geom.subs_per_block().saturating_sub(nonzero_total);
        let mut stage_bytes_moved = 0usize;
        let mut zero_bytes_written = 0usize;
        for (off, mut ranges) in per_block {
            let b = sb * self.geom.blocks_per_super + off as u64;
            debug_assert!(self.remap.entry(b).is_empty(), "block staged and committed");
            ranges.sort_by_key(|(_, r)| r.sub_off);
            let all_zero = ranges.iter().all(|(slot, _)| slot.is_none());
            let mut re = RemapEntry::empty();
            let mut dirty = 0u32;
            if all_zero {
                // Whole-block zero: the Z remap encoding, no data slots.
                for (_, r) in &ranges {
                    re.set_range(r.sub_off as usize, r.cf);
                }
                re.zero = true;
            } else {
                for (slot, r) in &ranges {
                    match slot {
                        None => {
                            // A zero range inside a mixed block: the compact
                            // remap format cannot mark it Z, so materialize
                            // literal zero data into a slot while the
                            // physical block has room (dropping it instead
                            // would turn every later access into a case-4
                            // bypass).
                            if zero_budget > 0 {
                                re.set_range(r.sub_off as usize, r.cf);
                                zero_budget -= 1;
                                zero_bytes_written += self.geom.sub_bytes as usize;
                            }
                        }
                        Some(_) => {
                            re.set_range(r.sub_off as usize, r.cf);
                            if r.dirty {
                                dirty |= range_mask(r);
                            }
                            stage_bytes_moved += self.geom.sub_bytes as usize;
                        }
                    }
                }
            }
            let full_mask = (1u32 << self.geom.subs_per_block()) - 1;
            if re.remap == full_mask {
                self.counters.dbg_commit_full += 1;
            } else {
                self.counters.dbg_commit_partial += 1;
                self.counters.dbg_commit_missing_subs +=
                    (full_mask & !re.remap).count_ones() as u64;
            }
            re.pointer = self.pointer_of_phys(sb, target);
            self.remap.set_entry(b, re);
            self.meta[b as usize].dirty_mask = dirty;
            // Committed data supersedes any slow-copy hints.
            self.meta[b as usize].slow_cf2 = 0;
            self.meta[b as usize].slow_cf4 = 0;
            residents.push(b);
        }
        if zero_bytes_written > 0 {
            self.devices.fast.access(
                at,
                self.data_base + target as u64 * self.geom.block_bytes,
                zero_bytes_written,
                true,
            );
        }
        if stage_bytes_moved > 0 {
            // Move data stage -> data area (both in fast memory).
            self.devices.fast.access(at, 0, stage_bytes_moved, false);
            self.devices.fast.access(
                at,
                self.data_base + target as u64 * self.geom.block_bytes,
                stage_bytes_moved,
                true,
            );
        }
        self.remap.record_update(at, sb, &mut self.devices.fast);
        self.phys[target].state = PhysState::Committed { sb, residents };
        self.touch_phys(target);
        self.stamp_alloc(target);
        self.counters.commits += 1;
        true
    }

    /// Puts a stage entry's dirty data back to slow memory (non-commit path).
    fn evict_entry_to_slow(
        &mut self,
        at: Cycle,
        entry: &crate::metadata::StageEntry,
        mem: &MemoryContents,
    ) {
        let sb = entry.tag;
        self.counters.stage_evictions += 1;
        for (i, slot) in entry.slots.iter().enumerate() {
            if let Some(r) = slot {
                if r.dirty {
                    let b = sb * self.geom.blocks_per_super + r.blk_off as u64;
                    // Read from the stage block, write to slow.
                    let _ = i;
                    self.devices
                        .fast
                        .access(at, 0, self.geom.sub_bytes as usize, false);
                    self.write_range_to_slow(at, b, r, mem);
                }
            }
        }
        debug_assert!(
            entry.zero_ranges.iter().all(|r| !r.dirty),
            "dirty zero ranges must have been materialized"
        );
    }

    /// Evicts a committed data block after a write overflow (§III-D case 2).
    /// Cache mode: the block leaves and later residents are compacted.
    /// Flat mode: the whole physical block is restored to its original.
    pub(crate) fn evict_committed_block(&mut self, at: Cycle, b: u64, mem: &mut MemoryContents) {
        let sb = self.geom.super_of_block(b);
        let entry = self.remap.entry(b);
        if entry.is_empty() {
            return;
        }
        let phys = self.phys_of_pointer(sb, entry.pointer);
        match self.is_flat_slot(phys) {
            false => {
                let evicted_slots = entry.slots_used();
                self.evict_committed_resident(at, b, phys, mem);
                // Compact later residents sharing the physical block: the
                // sorted dense layout (Rule 4) shifts their data down.
                let remaining: Vec<u64> = match &self.phys[phys].state {
                    PhysState::Committed { residents, .. } => {
                        residents.iter().copied().filter(|r| *r != b).collect()
                    }
                    _ => Vec::new(),
                };
                let moved_slots: usize = remaining
                    .iter()
                    .filter(|r| **r > b)
                    .map(|r| self.remap.entry(*r).slots_used())
                    .sum();
                if moved_slots > 0 && evicted_slots > 0 {
                    let bytes = moved_slots * self.geom.sub_bytes as usize;
                    let base = self.data_base + phys as u64 * self.geom.block_bytes;
                    self.devices.fast.access(at, base, bytes, false);
                    self.devices.fast.access(at, base, bytes, true);
                }
                if remaining.is_empty() {
                    self.release_phys(phys);
                } else if let PhysState::Committed { residents, .. } = &mut self.phys[phys].state {
                    *residents = remaining;
                }
                self.remap.record_update(at, sb, &mut self.devices.fast);
            }
            true => self.restore_phys(at, phys, mem),
        }
    }

    /// Flat mode: dissolves a committed physical block, returning the
    /// displaced original to its identity location and all residents to
    /// their slow homes.
    pub(crate) fn restore_phys(&mut self, at: Cycle, phys: usize, mem: &mut MemoryContents) {
        let PhysState::Committed { sb, residents } = self.phys[phys].state.clone() else {
            return;
        };
        let block_bytes = self.geom.block_bytes as usize;
        let z = phys as u64;
        // Move the displaced original back home (slow -> fast).
        self.devices
            .slow
            .access(at, self.displaced_slow_addr(z, 0), block_bytes, false);
        self.devices.fast.access(
            at,
            self.data_base + z * self.geom.block_bytes,
            block_bytes,
            true,
        );
        self.meta[phys].displaced = false;
        for r in residents {
            self.evict_committed_resident(at, r, phys, mem);
        }
        self.remap.record_update(at, sb, &mut self.devices.fast);
        self.phys[phys].state = PhysState::Original;
    }

    /// The no-stage-area ablation (Fig 13(c)): fetched ranges are inserted
    /// straight into the committed area, re-sorting the block layout on
    /// every insertion.
    pub(crate) fn direct_fill(&mut self, at: Cycle, b: u64, sub: usize, mem: &mut MemoryContents) {
        let t = self.telemetry.timer();
        self.direct_fill_inner(at, b, sub, mem);
        self.telemetry.record_span("span.fill", t);
    }

    fn direct_fill_inner(&mut self, at: Cycle, b: u64, sub: usize, mem: &mut MemoryContents) {
        let sb = self.geom.super_of_block(b);
        let mut entry = self.remap.entry(b);
        if entry.has_sub(sub) {
            return;
        }
        if entry.zero {
            // A Z entry cannot be extended in place: evict it first.
            self.evict_committed_block(at, b, mem);
            entry = self.remap.entry(b);
        }
        let (start, cf, compressed_src) = self.choose_range(b, sub, entry.remap, mem);
        // Fetch from slow.
        let bytes = if compressed_src {
            self.geom.sub_bytes as usize
        } else {
            cf.sub_blocks() * self.geom.sub_bytes as usize
        };
        if bytes > 64 {
            self.devices
                .slow
                .access(at, self.slow_home_addr(b, start), bytes - 64, false);
        }

        // Find the physical block: the block's existing pointer, another
        // committed block of the super-block with room, or a new one.
        let target = if !entry.is_empty() {
            Some(self.phys_of_pointer(sb, entry.pointer))
        } else {
            let set = self.set_of_super(sb);
            self.phys_of_set(set).find(|i| {
                matches!(&self.phys[*i].state, PhysState::Committed { sb: s, .. } if *s == sb)
                    && self.phys_has_room(*i, 1)
            })
        };
        let target = match target {
            Some(t) if self.phys_has_room(t, 1) => t,
            Some(_) => return, // committed block is full: keep bypassing
            None => match self.acquire_phys(at, sb, cf.sub_blocks(), mem) {
                Some(t) => t,
                None => return,
            },
        };

        // Update the remap entry and charge the re-sort.
        let mut re = self.remap.entry(b);
        re.set_range(start, cf);
        re.zero = false;
        re.pointer = self.pointer_of_phys(sb, target);
        self.remap.set_entry(b, re);
        match &mut self.phys[target].state {
            PhysState::Committed { residents, .. } => {
                if !residents.contains(&b) {
                    residents.push(b);
                    residents.sort_unstable();
                }
            }
            state => {
                *state = PhysState::Committed {
                    sb,
                    residents: vec![b],
                };
            }
        }
        self.touch_phys(target);
        self.stamp_alloc(target);
        self.counters.cf_subs += cf.sub_blocks() as u64;
        self.counters.cf_slots += 1;
        // Re-sort: rewrite the occupied portion of the physical block.
        let used: usize = match &self.phys[target].state {
            PhysState::Committed { residents, .. } => residents
                .iter()
                .map(|r| self.remap.entry(*r).slots_used())
                .sum(),
            _ => 0,
        };
        let bytes = used * self.geom.sub_bytes as usize;
        if bytes > 0 {
            let base = self.data_base + target as u64 * self.geom.block_bytes;
            self.devices.fast.access(at, base, bytes, false);
            self.devices.fast.access(at, base, bytes, true);
        }
        self.remap.record_update(at, sb, &mut self.devices.fast);
    }

    /// Does the physical block have room for `extra` more sub-block slots?
    fn phys_has_room(&self, phys: usize, extra: usize) -> bool {
        match &self.phys[phys].state {
            PhysState::Committed { residents, .. } => {
                let used: usize = residents
                    .iter()
                    .map(|r| self.remap.entry(*r).slots_used())
                    .sum();
                used + extra <= self.geom.subs_per_block()
            }
            PhysState::Free => true,
            PhysState::Original => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::BaryonConfig;
    use crate::controller::BaryonController;
    use crate::ctrl::MemoryController;
    use baryon_workloads::{MemoryContents, ProfileMix, Scale, ValueProfile};

    fn ctrl() -> BaryonController {
        BaryonController::new(BaryonConfig::default_cache_mode(Scale { divisor: 2048 }))
    }

    fn mem(profile: ValueProfile) -> MemoryContents {
        MemoryContents::new(ProfileMix::pure(profile), 7)
    }

    #[test]
    fn choose_range_prefers_widest_compressible() {
        let mut c = ctrl();
        let m = mem(ValueProfile::Zero);
        let (start, cf, compressed) = c.choose_range(5, 2, 0, &m);
        assert_eq!(
            (start, cf),
            (0, Cf::X4),
            "zeros compress at CF4 from the window base"
        );
        assert!(!compressed, "no slow-copy hint yet");
    }

    #[test]
    fn choose_range_shrinks_on_overlap() {
        let mut c = ctrl();
        let m = mem(ValueProfile::Zero);
        // Sub 1 already staged: a CF4 range over 0..4 would overlap, and so
        // would the 0..2 half; the fetch shrinks to just sub 2... which is
        // demanded. CF4 -> CF2 (half 2..4) is overlap-free though.
        let (start, cf, _) = c.choose_range(5, 2, 0b0010, &m);
        assert_eq!((start, cf), (2, Cf::X2));
        // Everything but sub 2 staged: only the single sub remains.
        let (start, cf, _) = c.choose_range(5, 2, 0b1111_1011, &m);
        assert_eq!((start, cf), (2, Cf::X1));
    }

    #[test]
    fn choose_range_uses_hints_and_skips_trials() {
        let mut c = ctrl();
        c.meta[5].slow_cf4 = 0b01; // subs 0..4 stored compressed in slow
        let m = mem(ValueProfile::Zero);
        let (start, cf, compressed) = c.choose_range(5, 1, 0, &m);
        assert_eq!((start, cf), (0, Cf::X4));
        assert!(compressed, "the hint marks a compressed slow copy");
    }

    #[test]
    fn degraded_blocks_fill_uncompressed() {
        let mut c = ctrl();
        let m = mem(ValueProfile::Zero);
        let (_, cf, _) = c.choose_range(5, 2, 0, &m);
        assert_eq!(cf, Cf::X4, "healthy zeros compress");
        c.meta[5].degraded = true;
        let (start, cf, compressed) = c.choose_range(5, 2, 0, &m);
        assert_eq!((start, cf, compressed), (2, Cf::X1, false));
        assert_eq!(c.best_cf_for_group(5, 0, 0xFF, &m), Cf::X1);
    }

    #[test]
    fn best_cf_for_group_respects_mask_and_content() {
        let mut c = ctrl();
        let zeros = mem(ValueProfile::Zero);
        // Full mask: zeros group at CF4.
        assert_eq!(c.best_cf_for_group(9, 0, 0xFF, &zeros), Cf::X4);
        // Mask missing sub 3: the quad is incomplete, the pair 0-1 works.
        assert_eq!(c.best_cf_for_group(9, 0, 0b0111, &zeros), Cf::X2);
        // Random data never groups.
        let rnd = mem(ValueProfile::Random);
        assert_eq!(c.best_cf_for_group(9, 0, 0xFF, &rnd), Cf::X1);
    }

    #[test]
    fn restage_covers_whole_mask() {
        let mut c = ctrl();
        let mut m = mem(ValueProfile::NarrowInt);
        c.restage_subs(0, 7, 0b0011_1100, false, &mut m);
        let sb = c.geom.super_of_block(7);
        let off = c.geom.blk_off(7);
        let staged = c
            .stage
            .block_home(sb, off)
            .and_then(|s| c.stage.entry(s).map(|e| e.sub_mask_of(off)))
            .unwrap_or(0);
        assert_eq!(staged, 0b0011_1100, "every masked sub must be staged");
    }

    #[test]
    fn release_phys_returns_to_free_list() {
        let mut c = BaryonController::new(BaryonConfig {
            assoc: usize::MAX,
            ..BaryonConfig::default_cache_mode(Scale { divisor: 2048 })
        });
        let before = c.free_list.len();
        let slot = c.free_list[before - 1];
        let taken = c.take_free_phys(0).expect("free pool");
        assert_eq!(taken, slot);
        assert_eq!(c.free_list.len(), before - 1);
        c.release_phys(taken);
        assert_eq!(c.free_list.len(), before);
    }

    #[test]
    fn write_range_to_slow_sets_hints_only_when_compressed() {
        let mut c = ctrl();
        let m = mem(ValueProfile::NarrowInt);
        let r2 = RangeRef {
            blk_off: 0,
            sub_off: 2,
            cf: Cf::X2,
            dirty: true,
        };
        c.write_range_to_slow(0, 3, &r2, &m);
        assert_eq!(c.meta[3].slow_cf2, 0b0010);
        // A CF1 writeback is raw and clears overlapping hints.
        let r1 = RangeRef {
            blk_off: 0,
            sub_off: 2,
            cf: Cf::X1,
            dirty: true,
        };
        c.write_range_to_slow(100, 3, &r1, &m);
        assert_eq!(c.meta[3].slow_cf2, 0, "raw write invalidates the hint");
    }

    #[test]
    fn direct_fill_grows_committed_blocks() {
        let mut cfg = BaryonConfig::default_cache_mode(Scale { divisor: 2048 });
        cfg.stage_bytes = 0; // the no-stage ablation uses direct fills
        let mut c = BaryonController::new(cfg);
        let mut m = mem(ValueProfile::NarrowInt);
        c.direct_fill(0, 11, 0, &mut m);
        let e0 = c.remap.entry(11);
        assert!(e0.has_sub(0), "first fill commits the range");
        c.direct_fill(1_000, 11, 6, &mut m);
        let e1 = c.remap.entry(11);
        assert!(
            e1.has_sub(6),
            "later fills extend the entry (with a re-sort)"
        );
        assert!(e1.remap.count_ones() > e0.remap.count_ones());
    }

    #[test]
    fn evict_committed_block_clears_remap_and_frees_phys() {
        let mut cfg = BaryonConfig::default_cache_mode(Scale { divisor: 2048 });
        cfg.stage_bytes = 0;
        let mut c = BaryonController::new(cfg);
        let mut m = mem(ValueProfile::NarrowInt);
        c.direct_fill(0, 11, 0, &mut m);
        assert!(!c.remap.entry(11).is_empty());
        c.evict_committed_block(10_000, 11, &mut m);
        assert!(c.remap.entry(11).is_empty());
        // The block serves from slow again.
        let r = c.read(
            20_000,
            crate::ctrl::Request {
                addr: 11 * 2048,
                core: 0,
            },
            &mut m,
        );
        assert!(!r.served_by_fast);
    }
}

//! The demand access flow (Fig 6): reads and dirty writebacks.

use super::phase::AccessKind;
use super::{BaryonController, PhysState};
use crate::ctrl::{Request, Response};
use crate::metadata::locate_sub_block;
use crate::metadata::stage_entry::RangeRef;
use crate::remap::RemapStore;
use baryon_compress::{Cf, CACHELINE_BYTES};
use baryon_mem::FaultKind;
use baryon_sim::Cycle;
use baryon_workloads::MemoryContents;

/// Where a fast-memory serve's data lives. Fault recovery needs to know
/// what to poison when the read observes an injected fault.
#[derive(Debug, Clone, Copy)]
pub(crate) enum FastData {
    /// A `Z`-encoded zero range: no device access at all.
    Zero,
    /// A stage-area data slot.
    Stage {
        /// Device address of the slot.
        addr: u64,
        /// The stage entry holding the range.
        slot: crate::stage::StageSlot,
        /// Index of the range in the entry's slot array.
        idx: usize,
    },
    /// A committed data-area slot.
    Committed {
        /// Device address of the slot.
        addr: u64,
    },
}

impl FastData {
    fn addr(&self) -> Option<u64> {
        match self {
            FastData::Zero => None,
            FastData::Stage { addr, .. } | FastData::Committed { addr } => Some(*addr),
        }
    }
}

impl BaryonController {
    pub(crate) fn read_impl(
        &mut self,
        now: Cycle,
        req: Request,
        mem: &mut MemoryContents,
    ) -> Response {
        let line = req.addr & !(CACHELINE_BYTES as u64 - 1);
        let b = self.geom.block_of(line);
        assert!(
            b < self.cfg.os_blocks(),
            "read address {:#x} beyond the OS-physical space",
            req.addr
        );
        let sb = self.geom.super_of_block(b);
        let off = self.geom.blk_off(b);
        let sub = self.geom.sub_of(line);
        let meta_lat = self.cfg.stage_tag_latency;
        self.maybe_scrub(now);

        if self.stage_enabled() {
            let sset = self.stage.set_of(sb);
            self.stage.record_set_access(sset);

            let t = self.telemetry.timer();
            let probe = self.stage.lookup(sb, off, sub);
            self.telemetry.record_span("span.stage_probe", t);

            // Case 1: block staged, sub-block hit.
            if let Some((slot, hit)) = probe {
                self.counters.case1_stage_hits += 1;
                self.tracker.classify(b, AccessKind::Hit);
                self.tracker.on_stage_access(slot, b, now, false);
                self.stage.touch(slot);
                let range = self.staged_range_of(slot, off, sub, hit.slot);
                let data = match hit.slot {
                    Some(i) => FastData::Stage {
                        addr: self.stage_slot_addr(slot, i),
                        slot,
                        idx: i,
                    },
                    None => FastData::Zero,
                };
                let (lat, extras) =
                    self.serve_fast_chunk(now + meta_lat, data, b, range, line, mem);
                self.serve.record_read(true);
                self.serve.record_prefetch_lines(extras.len());
                return Response {
                    latency: meta_lat + lat,
                    served_by_fast: true,
                    extra_lines: extras,
                };
            }

            // Case 3: block staged, sub-block miss.
            if let Some(home) = self.stage.block_home(sb, off) {
                self.counters.case3_stage_misses += 1;
                self.tracker.classify(b, AccessKind::Miss);
                self.tracker.on_stage_access(home, b, now, true);
                if let Some(e) = self.stage.entry_mut(home) {
                    e.miss_cnt = e.miss_cnt.saturating_add(1);
                }
                if self.stage.is_mru(home) {
                    self.stage.bump_mru_miss(self.stage.set_of(sb));
                }
                let (lat, extras) = self.slow_demand_read(now + meta_lat, b, sub, line);
                let done = now + meta_lat + lat;
                self.stage_fill(done, b, sub, mem);
                self.serve.record_read(false);
                self.serve.record_prefetch_lines(extras.len());
                return Response {
                    latency: meta_lat + lat,
                    served_by_fast: false,
                    extra_lines: extras,
                };
            }
        }

        // Remap metadata path (stage tag array probed in parallel).
        let t = self.telemetry.timer();
        let remap_lat = self.remap.lookup(now, sb, &mut self.devices.fast);
        let entry = self.remap.entry(b);
        self.telemetry.record_span("span.remap_walk", t);
        let meta_lat = meta_lat.max(remap_lat);

        if !entry.is_empty() {
            if entry.has_sub(sub) {
                // Case 2: committed, sub-block hit.
                self.counters.case2_commit_hits += 1;
                self.tracker.classify(b, AccessKind::Hit);
                let phys = self.phys_of_pointer(sb, entry.pointer);
                self.touch_phys(phys);
                let (start, cf) = entry.range_of(sub).expect("has_sub");
                let range = RangeRef {
                    blk_off: off as u8,
                    sub_off: start as u8,
                    cf,
                    dirty: false,
                };
                let data = if entry.zero {
                    FastData::Zero
                } else {
                    let slot = locate_sub_block(self.remap.super_entries(sb), off, start)
                        .expect("remapped sub must locate");
                    FastData::Committed {
                        addr: self.data_slot_addr(phys, slot),
                    }
                };
                let (lat, extras) =
                    self.serve_fast_chunk(now + meta_lat, data, b, range, line, mem);
                self.serve.record_read(true);
                self.serve.record_prefetch_lines(extras.len());
                return Response {
                    latency: meta_lat + lat,
                    served_by_fast: true,
                    extra_lines: extras,
                };
            }
            // Case 4: committed block, absent sub-block: bypass to slow
            // (Rule 3 forbids staging it; Rule 4 forbids extending).
            self.counters.case4_bypasses += 1;
            if self.tracker.in_committed_window(b) {
                self.counters.dbg_case4_in_cwindow += 1;
            }
            self.tracker.classify(b, AccessKind::Miss);
            let (lat, extras) = self.slow_demand_read(now + meta_lat, b, sub, line);
            if !self.stage_enabled() {
                // No-stage ablation: insertions go directly into the
                // committed area, paying the re-sort cost.
                let done = now + meta_lat + lat;
                self.direct_fill(done, b, sub, mem);
            }
            self.serve.record_read(false);
            self.serve.record_prefetch_lines(extras.len());
            return Response {
                latency: meta_lat + lat,
                served_by_fast: false,
                extra_lines: extras,
            };
        }

        // Flat mode: original or displaced fast-home blocks.
        if self.has_fast_home(b) {
            if matches!(self.phys[b as usize].state, PhysState::Original) {
                self.counters.flat_original_hits += 1;
                self.touch_phys(b as usize);
                let addr = self.data_base + line;
                let done = self.devices.fast.access(now + meta_lat, addr, 64, false);
                self.serve.record_read(true);
                return Response {
                    latency: meta_lat + (done - now - meta_lat),
                    served_by_fast: true,
                    extra_lines: Vec::new(),
                };
            }
            // Displaced: content spread over slow memory (§III-F).
            self.counters.displaced_accesses += 1;
            let spread_addr = self.displaced_slow_addr(b, line);
            let done = self
                .devices
                .slow
                .access(now + meta_lat, spread_addr, 64, false);
            self.serve.record_read(false);
            return Response {
                latency: done - now,
                served_by_fast: false,
                extra_lines: Vec::new(),
            };
        }

        // Case 5: block miss.
        self.counters.case5_block_misses += 1;
        if self.stage_enabled() {
            self.stage.bump_mru_miss(self.stage.set_of(sb));
        }
        let (lat, extras) = self.slow_demand_read(now + meta_lat, b, sub, line);
        let done = now + meta_lat + lat;
        if self.stage_enabled() {
            self.stage_fill(done, b, sub, mem);
        } else {
            self.direct_fill(done, b, sub, mem);
        }
        self.serve.record_read(false);
        self.serve.record_prefetch_lines(extras.len());
        Response {
            latency: meta_lat + lat,
            served_by_fast: false,
            extra_lines: extras,
        }
    }

    pub(crate) fn writeback_impl(
        &mut self,
        now: Cycle,
        addr: u64,
        mem: &mut MemoryContents,
    ) -> Cycle {
        let line = addr & !(CACHELINE_BYTES as u64 - 1);
        let b = self.geom.block_of(line);
        assert!(
            b < self.cfg.os_blocks(),
            "writeback address {addr:#x} beyond the OS-physical space"
        );
        let sb = self.geom.super_of_block(b);
        let off = self.geom.blk_off(b);
        let sub = self.geom.sub_of(line);
        self.serve.record_writeback();

        if self.stage_enabled() {
            self.stage.record_set_access(self.stage.set_of(sb));
            if let Some((slot, hit)) = self.stage.lookup(sb, off, sub) {
                self.stage.touch(slot);
                match hit.slot {
                    Some(i) => {
                        let r = self
                            .stage
                            .entry(slot)
                            .and_then(|e| e.slots[i])
                            .expect("hit");
                        if r.cf == Cf::X1 || self.chunk_still_fits(b, r, sub, mem) {
                            self.tracker.classify(b, AccessKind::Hit);
                            let chunk =
                                self.chunk_addr_in_slot(self.stage_slot_addr(slot, i), r, line);
                            let done = self.devices.fast.access(now, chunk, 64, true);
                            if let Some(e) = self.stage.entry_mut(slot) {
                                if let Some(sr) = e.slots[i].as_mut() {
                                    sr.dirty = true;
                                }
                            }
                            return done;
                        }
                        // Stage write overflow: remove and re-insert.
                        self.counters.stage_overflows += 1;
                        self.tracker.classify(b, AccessKind::Overflow);
                        let mask = range_mask(&r);
                        if let Some(e) = self.stage.entry_mut(slot) {
                            e.slots[i] = None;
                        }
                        self.restage_subs(now, b, mask, true, mem);
                    }
                    None => {
                        // A write to a staged zero range materializes data.
                        self.counters.stage_overflows += 1;
                        self.tracker.classify(b, AccessKind::Overflow);
                        let zr = self
                            .stage
                            .entry(slot)
                            .map(|e| {
                                e.zero_ranges
                                    .iter()
                                    .position(|r| r.covers(off, sub))
                                    .expect("zero hit")
                            })
                            .expect("entry");
                        let r = self
                            .stage
                            .entry_mut(slot)
                            .map(|e| e.zero_ranges.remove(zr))
                            .expect("entry");
                        self.restage_subs(now, b, range_mask(&r), true, mem);
                    }
                }
                // Overflow re-staging: the device work was issued at `now`
                // by restage_subs; treat the writeback as retired then.
                return now;
            }
        }

        let entry = self.remap.entry(b);
        if entry.has_sub(sub) {
            if entry.zero {
                // Writing a Z block materializes it: evict to slow.
                self.counters.committed_overflows += 1;
                self.tracker.classify(b, AccessKind::Overflow);
                self.evict_committed_block(now, b, mem);
                return self.slow_home_write(now, b, sub, line, mem);
            }
            let (start, cf) = entry.range_of(sub).expect("has_sub");
            let r = RangeRef {
                blk_off: off as u8,
                sub_off: start as u8,
                cf,
                dirty: true,
            };
            if cf == Cf::X1 || self.chunk_still_fits(b, r, sub, mem) {
                self.tracker.classify(b, AccessKind::Hit);
                let phys = self.phys_of_pointer(sb, entry.pointer);
                self.touch_phys(phys);
                let slot = locate_sub_block(self.remap.super_entries(sb), off, start)
                    .expect("remapped sub must locate");
                let chunk = self.chunk_addr_in_slot(self.data_slot_addr(phys, slot), r, line);
                let done = self.devices.fast.access(now, chunk, 64, true);
                self.meta[b as usize].dirty_mask |= range_mask(&r);
                return done;
            }
            // Committed write overflow: the sorted dense layout cannot
            // change (Rule 4), so the whole block is evicted (§III-D).
            self.counters.committed_overflows += 1;
            self.tracker.classify(b, AccessKind::Overflow);
            self.evict_committed_block(now, b, mem);
            return self.slow_home_write(now, b, sub, line, mem);
        }

        if self.has_fast_home(b) {
            return if matches!(self.phys[b as usize].state, PhysState::Original) {
                self.devices
                    .fast
                    .access(now, self.data_base + line, 64, true)
            } else {
                // Writebacks to displaced blocks go to their spread slow
                // location (displaced_accesses tracks demand reads only).
                let spread = self.displaced_slow_addr(b, line);
                self.devices.slow.access(now, spread, 64, true)
            };
        }

        if self.tracker.in_committed_window(b) {
            self.counters.dbg_wbmiss_in_cwindow += 1;
        }
        self.tracker.classify(b, AccessKind::Miss);
        self.slow_home_write(now, b, sub, line, mem)
    }

    // ---- helpers ---------------------------------------------------------

    /// The staged range covering `(off, sub)` at `slot` (data or zero).
    fn staged_range_of(
        &self,
        slot: crate::stage::StageSlot,
        off: usize,
        sub: usize,
        data_slot: Option<usize>,
    ) -> RangeRef {
        let entry = self.stage.entry(slot).expect("staged");
        match data_slot {
            Some(i) => entry.slots[i].expect("slot filled"),
            None => *entry
                .zero_ranges
                .iter()
                .find(|r| r.covers(off, sub))
                .expect("zero range"),
        }
    }

    /// Serves a line from a (possibly compressed) fast-memory slot.
    /// Returns (latency, extra lines to install in the LLC).
    ///
    /// Reads go through the integrity-checked path: an injected fault is
    /// counted, retried (transient), or recovered from the slow copy with
    /// the faulty fast copy poisoned and the block degraded to CF1 fills
    /// (see [`BaryonController::resolve_fast_fault`]).
    pub(crate) fn serve_fast_chunk(
        &mut self,
        at: Cycle,
        data: FastData,
        block: u64,
        range: RangeRef,
        line: u64,
        mem: &mut MemoryContents,
    ) -> (Cycle, Vec<u64>) {
        let range_base = self.geom.sub_addr(block, range.sub_off as usize);
        let cf = range.cf.factor() as u64;
        let li = (line - range_base) / 64;
        let chunk_id = li / cf;
        let chunk_lines = |chunk_id: u64| -> Vec<u64> {
            (0..cf)
                .map(|j| range_base + (chunk_id * cf + j) * 64)
                .filter(|l| *l != line)
                .collect()
        };
        let Some(base) = data.addr() else {
            // Z range: no data movement at all.
            self.counters.zero_serves += 1;
            return (0, chunk_lines(chunk_id));
        };
        if range.cf == Cf::X1 {
            let done =
                self.checked_fast_read(at, base + li * 64, 64, block, range, data, line, mem);
            (done - at, Vec::new())
        } else if self.cfg.cacheline_aligned {
            let done =
                self.checked_fast_read(at, base + chunk_id * 64, 64, block, range, data, line, mem);
            self.counters.decompressions += 1;
            (
                done - at + self.cfg.decompress_cycles,
                chunk_lines(chunk_id),
            )
        } else {
            // Without cacheline alignment the whole slot must be
            // fetched and decompressed (Fig 7 left).
            let done = self.checked_fast_read(
                at,
                base,
                self.geom.sub_bytes as usize,
                block,
                range,
                data,
                line,
                mem,
            );
            self.counters.decompressions += 1;
            let range_lines = (range.cf.sub_blocks() * self.geom.lines_per_sub()) as u64;
            let extras = (0..range_lines)
                .map(|j| range_base + j * 64)
                .filter(|l| *l != line)
                .collect();
            (done - at + self.cfg.decompress_cycles, extras)
        }
    }

    /// A fast-memory read with end-to-end integrity checking: on a fault
    /// the recovery path runs and the returned completion cycle includes
    /// the recovery work.
    #[allow(clippy::too_many_arguments)]
    fn checked_fast_read(
        &mut self,
        at: Cycle,
        addr: u64,
        bytes: usize,
        block: u64,
        range: RangeRef,
        data: FastData,
        line: u64,
        mem: &mut MemoryContents,
    ) -> Cycle {
        let o = self.devices.fast.access_outcome(at, addr, bytes, false);
        match o.fault {
            None => o.done,
            Some(kind) => {
                self.resolve_fast_fault(o.done, addr, bytes, block, range, data, line, kind, mem)
            }
        }
    }

    /// Recovery for a faulted fast-memory read (the tentpole of the fault
    /// model, see ARCHITECTURE.md "Fault model & recovery"):
    ///
    /// 1. transient fault → retry once; a clean retry *corrects* it;
    /// 2. stuck fault (or failed retry) over clean data with a slow home →
    ///    re-fetch the line from the slow copy, poison and evict the fast
    ///    copy, and *degrade* the block to uncompressed (CF1) fills;
    /// 3. otherwise (dirty data over a bad cell, a fast-home block with no
    ///    second copy, or a stuck slow home) the fault is *unrecoverable*.
    ///
    /// Every detected fault lands in exactly one of those counters, so
    /// `faults_detected == corrected + degraded + unrecoverable` holds by
    /// construction.
    #[allow(clippy::too_many_arguments)]
    fn resolve_fast_fault(
        &mut self,
        done: Cycle,
        addr: u64,
        bytes: usize,
        block: u64,
        range: RangeRef,
        data: FastData,
        line: u64,
        kind: FaultKind,
        mem: &mut MemoryContents,
    ) -> Cycle {
        self.counters.faults_detected += 1;
        if kind == FaultKind::Transient {
            let retry = self.devices.fast.access_outcome(done, addr, bytes, false);
            if retry.fault.is_none() {
                self.counters.faults_corrected += 1;
                return retry.done;
            }
            // The retry faulted too: fall through to the stuck path.
        }
        let dirty = match data {
            FastData::Stage { slot, idx, .. } => self
                .stage
                .entry(slot)
                .and_then(|e| e.slots[idx])
                .is_some_and(|r| r.dirty),
            FastData::Committed { .. } => {
                self.meta[block as usize].dirty_mask & range_mask(&range) != 0
            }
            FastData::Zero => false,
        };
        if self.has_fast_home(block) || dirty {
            // The faulty fast copy is the only current one: data loss.
            self.counters.faults_unrecoverable += 1;
            return done;
        }
        // Re-fetch the demanded line from the clean slow copy (one retry
        // on a transient fault during recovery).
        let sub = self.geom.sub_of(line);
        let slow_addr = self.slow_home_addr(block, sub) + (line - self.geom.sub_addr(block, sub));
        let mut refetch = self.devices.slow.access_outcome(done, slow_addr, 64, false);
        if refetch.fault == Some(FaultKind::Transient) {
            refetch = self
                .devices
                .slow
                .access_outcome(refetch.done, slow_addr, 64, false);
        }
        if refetch.fault.is_some() {
            self.counters.faults_unrecoverable += 1;
            return refetch.done;
        }
        // Poison and evict the faulty fast copy; the block degrades to
        // uncompressed fills so future recovery stays trivial.
        self.counters.faults_degraded += 1;
        self.meta[block as usize].degraded = true;
        match data {
            FastData::Stage { slot, idx, .. } => {
                if let Some(e) = self.stage.entry_mut(slot) {
                    e.slots[idx] = None;
                }
            }
            FastData::Committed { .. } => self.evict_committed_block(refetch.done, block, mem),
            FastData::Zero => {}
        }
        refetch.done
    }

    /// A slow-memory read with integrity checking: transient faults retry
    /// once; anything else is unrecoverable (the slow home has no second
    /// copy behind it).
    fn checked_slow_read(&mut self, at: Cycle, addr: u64, bytes: usize) -> Cycle {
        let o = self.devices.slow.access_outcome(at, addr, bytes, false);
        let Some(kind) = o.fault else {
            return o.done;
        };
        self.counters.faults_detected += 1;
        if kind == FaultKind::Transient {
            let retry = self.devices.slow.access_outcome(o.done, addr, bytes, false);
            if retry.fault.is_none() {
                self.counters.faults_corrected += 1;
            } else {
                self.counters.faults_unrecoverable += 1;
            }
            return retry.done;
        }
        self.counters.faults_unrecoverable += 1;
        o.done
    }

    /// Reads the demanded line from slow memory, honouring compressed-slow
    /// hints (which also yield free co-decompressed neighbours).
    pub(crate) fn slow_demand_read(
        &mut self,
        at: Cycle,
        b: u64,
        sub: usize,
        line: u64,
    ) -> (Cycle, Vec<u64>) {
        if let Some((start, cf)) = self.slow_hint(b, sub) {
            let range_base = self.geom.sub_addr(b, start);
            let cfn = cf.factor() as u64;
            let li = (line - range_base) / 64;
            let chunk_id = li / cfn;
            let addr = self.slow_home_addr(b, start) + chunk_id * 64;
            let done = self.checked_slow_read(at, addr, 64);
            self.counters.decompressions += 1;
            let extras = (0..cfn)
                .map(|j| range_base + (chunk_id * cfn + j) * 64)
                .filter(|l| *l != line)
                .collect();
            (done - at + self.cfg.decompress_cycles, extras)
        } else {
            let addr = self.slow_home_addr(b, sub) + (line - self.geom.sub_addr(b, sub));
            let done = self.checked_slow_read(at, addr, 64);
            (done - at, Vec::new())
        }
    }

    /// Writes a dirty line to its slow home, keeping compressed-slow hints
    /// consistent: if the update breaks the hinted CF, the range is
    /// re-expanded to raw storage.
    pub(crate) fn slow_home_write(
        &mut self,
        now: Cycle,
        b: u64,
        sub: usize,
        line: u64,
        mem: &MemoryContents,
    ) -> Cycle {
        if let Some((start, cf)) = self.slow_hint(b, sub) {
            let r = RangeRef {
                blk_off: self.geom.blk_off(b) as u8,
                sub_off: start as u8,
                cf,
                dirty: true,
            };
            if !self.chunk_still_fits(b, r, sub, mem) {
                // Re-expand: read the compressed slot, write raw data back.
                self.clear_slow_hint(b, sub);
                let base = self.slow_home_addr(b, start);
                self.devices
                    .slow
                    .access(now, base, self.geom.sub_bytes as usize, false);
                return self.devices.slow.access(
                    now,
                    base,
                    cf.sub_blocks() * self.geom.sub_bytes as usize,
                    true,
                );
            }
        }
        let addr = self.slow_home_addr(b, sub) + (line - self.geom.sub_addr(b, sub));
        self.devices.slow.access(now, addr, 64, true)
    }

    /// Does the chunk containing `sub`'s updated line still compress into
    /// its slot at the range's CF?
    pub(crate) fn chunk_still_fits(
        &mut self,
        b: u64,
        r: RangeRef,
        _sub: usize,
        mem: &MemoryContents,
    ) -> bool {
        if r.cf == Cf::X1 {
            return true;
        }
        let range_base = self.geom.sub_addr(b, r.sub_off as usize);
        if self.cfg.cacheline_aligned {
            // Check every chunk through the chunk memo (the common case
            // is one changed chunk; the untouched ones hit).
            return self.range_fits_aligned(range_base, r.cf, mem);
        }
        let len = r.cf.sub_blocks() * self.geom.sub_bytes as usize;
        let data = mem.range(range_base, len);
        self.rc.chunk_size(&data) <= self.geom.sub_bytes as usize
    }

    /// Device address of the 64 B compressed chunk holding `line` within a
    /// slot at `slot_addr`.
    pub(crate) fn chunk_addr_in_slot(&self, slot_addr: u64, r: RangeRef, line: u64) -> u64 {
        let range_base = self
            .geom
            .sub_addr(line / self.geom.block_bytes, r.sub_off as usize);
        let li = (line - range_base) / 64;
        if r.cf == Cf::X1 {
            slot_addr + li * 64
        } else {
            slot_addr + (li / r.cf.factor() as u64) * 64
        }
    }

    /// Approximate slow device address for displaced (spread) block data.
    pub(crate) fn displaced_slow_addr(&self, b: u64, line: u64) -> u64 {
        let slow_blocks = self.cfg.slow_bytes / self.geom.block_bytes;
        (b % slow_blocks) * self.geom.block_bytes + line % self.geom.block_bytes
    }
}

/// Sub-block bitmask covered by a range.
pub(crate) fn range_mask(r: &RangeRef) -> u32 {
    let mut mask = 0;
    for s in r.sub_off as usize..r.sub_off as usize + r.cf.sub_blocks() {
        mask |= 1 << s;
    }
    mask
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::BaryonConfig;
    use crate::controller::BaryonController;
    use crate::ctrl::MemoryController;
    use baryon_workloads::{MemoryContents, ProfileMix, Scale, ValueProfile};

    fn ctrl() -> BaryonController {
        BaryonController::new(BaryonConfig::default_cache_mode(Scale { divisor: 2048 }))
    }

    fn mem(profile: ValueProfile) -> MemoryContents {
        MemoryContents::new(ProfileMix::pure(profile), 7)
    }

    #[test]
    fn range_mask_covers_cf_width() {
        let r = RangeRef {
            blk_off: 0,
            sub_off: 4,
            cf: Cf::X4,
            dirty: false,
        };
        assert_eq!(range_mask(&r), 0b1111_0000);
        let r1 = RangeRef {
            blk_off: 0,
            sub_off: 3,
            cf: Cf::X1,
            dirty: false,
        };
        assert_eq!(range_mask(&r1), 0b1000);
    }

    #[test]
    fn chunk_addr_maps_lines_to_compressed_chunks() {
        let c = ctrl();
        // CF2 range starting at sub 2 of block 0: raw bytes 512..1024,
        // eight 64 B lines in four 128 B chunks -> slot offsets 0..3 * 64.
        let r = RangeRef {
            blk_off: 0,
            sub_off: 2,
            cf: Cf::X2,
            dirty: false,
        };
        let slot_addr = 10_000;
        // Line 512 (first of the range) -> chunk 0.
        assert_eq!(c.chunk_addr_in_slot(slot_addr, r, 512), slot_addr);
        // Line 640 (index 2) -> chunk 1 (2 lines per 128 B chunk).
        assert_eq!(c.chunk_addr_in_slot(slot_addr, r, 640), slot_addr + 64);
        // Last line of the range -> chunk 3.
        assert_eq!(c.chunk_addr_in_slot(slot_addr, r, 960), slot_addr + 192);
    }

    #[test]
    fn chunk_addr_cf1_is_line_offset() {
        let c = ctrl();
        let r = RangeRef {
            blk_off: 0,
            sub_off: 1,
            cf: Cf::X1,
            dirty: false,
        };
        // Sub-block 1 spans 256..512: its third line sits 128 B in.
        assert_eq!(c.chunk_addr_in_slot(5_000, r, 256 + 128), 5_000 + 128);
    }

    #[test]
    fn serve_fast_chunk_returns_co_decompressed_neighbours() {
        let mut c = ctrl();
        let mut m = mem(ValueProfile::NarrowInt);
        let r = RangeRef {
            blk_off: 0,
            sub_off: 0,
            cf: Cf::X2,
            dirty: false,
        };
        let data = FastData::Committed { addr: 0 };
        let (lat, extras) = c.serve_fast_chunk(0, data, 0, r, 64, &mut m);
        assert!(lat > 0);
        // The 128 B chunk holding line 64 also holds line 0.
        assert_eq!(extras, vec![0]);
    }

    #[test]
    fn serve_fast_chunk_zero_is_free() {
        let mut c = ctrl();
        let mut m = mem(ValueProfile::NarrowInt);
        let r = RangeRef {
            blk_off: 0,
            sub_off: 0,
            cf: Cf::X4,
            dirty: false,
        };
        let (lat, extras) = c.serve_fast_chunk(0, FastData::Zero, 0, r, 128, &mut m);
        assert_eq!(lat, 0, "Z ranges cost no device time");
        assert_eq!(extras.len(), 3, "the rest of the 4-line chunk comes free");
        assert_eq!(c.counters().zero_serves, 1);
    }

    #[test]
    fn slow_demand_read_uses_hints() {
        let mut c = ctrl();
        // No hint: plain 64 B read, no extras.
        let (_, extras) = c.slow_demand_read(0, 3, 0, 3 * 2048);
        assert!(extras.is_empty());
        // With a CF2 hint over subs 0-1 the chunk co-delivers a neighbour.
        c.meta[3].slow_cf2 = 0b0001;
        let (lat, extras) = c.slow_demand_read(1_000_000, 3, 0, 3 * 2048);
        assert_eq!(extras.len(), 1);
        assert!(lat > c.cfg.decompress_cycles, "decompression charged");
        assert!(c.counters().decompressions > 0);
    }

    #[test]
    fn chunk_still_fits_tracks_content_changes() {
        let mut m = mem(ValueProfile::NarrowInt);
        let mut c = ctrl();
        let r = RangeRef {
            blk_off: 0,
            sub_off: 0,
            cf: Cf::X2,
            dirty: false,
        };
        assert!(
            c.chunk_still_fits(0, r, 0, &m),
            "narrow ints compress at CF2"
        );
        // Degenerate every line of the range (writes with high entropy
        // eventually produce random bytes).
        for _ in 0..8 {
            for line in 0..8u64 {
                m.write_line(line * 64);
            }
            if !c.chunk_still_fits(0, r, 0, &m) {
                return; // expected outcome reached
            }
        }
        panic!("repeatedly rewritten data never broke the CF2 fit");
    }

    #[test]
    fn cf1_always_fits() {
        let m = mem(ValueProfile::Random);
        let mut c = ctrl();
        let r = RangeRef {
            blk_off: 0,
            sub_off: 0,
            cf: Cf::X1,
            dirty: true,
        };
        assert!(c.chunk_still_fits(0, r, 0, &m));
    }

    #[test]
    fn persistent_fast_faults_poison_and_degrade() {
        // A flip rate this high faults (and re-faults on retry) every fast
        // read; the slow device stays clean, so recovery must refetch,
        // poison the staged range, and degrade the block.
        let mut cfg = BaryonConfig::default_cache_mode(Scale { divisor: 2048 });
        cfg.fault_fast = baryon_mem::FaultConfig {
            bit_flip_rate: 0.5,
            stuck_at_rate: 0.0,
            seed: 3,
        };
        let mut c = BaryonController::new(cfg);
        let mut m = mem(ValueProfile::NarrowInt);
        let addr = 4 * 2048;
        c.read(0, crate::ctrl::Request { addr, core: 0 }, &mut m); // stage it
        c.read(100_000, crate::ctrl::Request { addr, core: 0 }, &mut m);
        let k = c.counters();
        assert!(k.faults_detected >= 1);
        assert!(k.faults_degraded >= 1, "clean staged data recovers: {k:?}");
        assert_eq!(k.faults_unrecoverable, 0);
        assert!(c.meta[4].degraded, "the block enters degraded mode");
    }

    #[test]
    fn dirty_data_over_faulty_cells_is_unrecoverable() {
        let mut cfg = BaryonConfig::default_cache_mode(Scale { divisor: 2048 });
        cfg.fault_fast = baryon_mem::FaultConfig {
            bit_flip_rate: 0.5,
            stuck_at_rate: 0.0,
            seed: 3,
        };
        let mut c = BaryonController::new(cfg);
        let mut m = mem(ValueProfile::NarrowInt);
        let addr = 4 * 2048;
        c.read(0, crate::ctrl::Request { addr, core: 0 }, &mut m);
        // Dirty the staged range: the slow copy is now stale, so a faulty
        // fast read has no clean source left.
        c.writeback(50_000, addr, &mut m);
        c.read(100_000, crate::ctrl::Request { addr, core: 0 }, &mut m);
        let k = c.counters();
        assert!(
            k.faults_unrecoverable >= 1,
            "dirty data cannot recover: {k:?}"
        );
    }

    #[test]
    fn displaced_addr_stays_in_slow_space() {
        let c = BaryonController::new(BaryonConfig::default_flat_fa(Scale { divisor: 2048 }));
        let slow_bytes = c.cfg.slow_bytes;
        for b in [0u64, 1, 100] {
            let a = c.displaced_slow_addr(b, b * 2048 + 64);
            assert!(
                a < slow_bytes,
                "displaced address {a:#x} beyond slow memory"
            );
        }
    }
}

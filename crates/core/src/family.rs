//! The typed controller-family registry: one id ↔ name ↔ constructor
//! table shared by the config builder, the CLI `--controller` flag,
//! `RunSpec` JSON, and the differential-golden fixture.
//!
//! Every place that selects a controller goes through [`FamilyId`]:
//! [`FamilyId::parse`] turns an external name into a typed id (unknown
//! names become [`ConfigError::UnknownFamily`], never a panic), and
//! [`FamilyId::kind`] builds the family's default design point at a
//! scale. Adding a family means adding a variant here — the compiler
//! then walks you through the name table and constructor, and the
//! golden gate and CLI pick it up automatically.

use crate::config::{BaryonConfig, ConfigError};
use crate::system::ControllerKind;
use baryon_workloads::Scale;

/// A first-class controller family.
///
/// The order of [`FamilyId::ALL`] is the presentation order used by the
/// CLI and the golden fixture; new families append to the end so the
/// fixture stays append-only across PRs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FamilyId {
    /// Baryon, cache mode (the paper's default design point).
    Baryon,
    /// Baryon, fully-associative flat mode (Fig 10).
    BaryonFa,
    /// Baryon, static cache + flat mixed mode (§III-A).
    BaryonMixed,
    /// Simple 2 kB DRAM cache.
    Simple,
    /// Unison Cache.
    Unison,
    /// DICE compressed DRAM cache.
    Dice,
    /// Hybrid2 flat-mode hybrid memory.
    Hybrid2,
    /// Micro-sector cache (Baryon's closest sub-blocking prior, §V).
    MicroSector,
    /// OS-based 4 kB page migration (the §II-A software design point).
    OsPaging,
    /// Baryon with the Trimma-style multi-level remap store.
    Trimma,
}

impl FamilyId {
    /// Every family, in presentation order.
    pub const ALL: [FamilyId; 10] = [
        FamilyId::Baryon,
        FamilyId::BaryonFa,
        FamilyId::BaryonMixed,
        FamilyId::Simple,
        FamilyId::Unison,
        FamilyId::Dice,
        FamilyId::Hybrid2,
        FamilyId::MicroSector,
        FamilyId::OsPaging,
        FamilyId::Trimma,
    ];

    /// The external name (CLI `--controller`, `RunSpec` JSON, golden
    /// fixture keys, `RunResult::controller`).
    pub const fn name(self) -> &'static str {
        match self {
            FamilyId::Baryon => "baryon",
            FamilyId::BaryonFa => "baryon-fa",
            FamilyId::BaryonMixed => "baryon-mixed",
            FamilyId::Simple => "simple",
            FamilyId::Unison => "unison",
            FamilyId::Dice => "dice",
            FamilyId::Hybrid2 => "hybrid2",
            FamilyId::MicroSector => "micro-sector",
            FamilyId::OsPaging => "os-paging",
            FamilyId::Trimma => "trimma",
        }
    }

    /// The external names of every family, in [`FamilyId::ALL`] order.
    pub const NAMES: [&'static str; 10] = [
        FamilyId::ALL[0].name(),
        FamilyId::ALL[1].name(),
        FamilyId::ALL[2].name(),
        FamilyId::ALL[3].name(),
        FamilyId::ALL[4].name(),
        FamilyId::ALL[5].name(),
        FamilyId::ALL[6].name(),
        FamilyId::ALL[7].name(),
        FamilyId::ALL[8].name(),
        FamilyId::ALL[9].name(),
    ];

    /// Resolves an external name.
    ///
    /// # Errors
    ///
    /// [`ConfigError::UnknownFamily`] when no family carries the name.
    pub fn parse(name: &str) -> Result<FamilyId, ConfigError> {
        Self::ALL
            .into_iter()
            .find(|f| f.name() == name)
            .ok_or_else(|| ConfigError::UnknownFamily(name.to_owned()))
    }

    /// Builds the family's default design point at `scale`.
    pub fn kind(self, scale: Scale) -> ControllerKind {
        match self {
            FamilyId::Baryon => ControllerKind::Baryon(BaryonConfig::default_cache_mode(scale)),
            FamilyId::BaryonFa => ControllerKind::Baryon(BaryonConfig::default_flat_fa(scale)),
            FamilyId::BaryonMixed => {
                ControllerKind::Baryon(BaryonConfig::default_mixed(scale, 0.5))
            }
            FamilyId::Trimma => ControllerKind::Baryon(BaryonConfig::default_trimma(scale)),
            FamilyId::Simple => ControllerKind::Simple,
            FamilyId::Unison => ControllerKind::Unison,
            FamilyId::Dice => ControllerKind::Dice,
            FamilyId::Hybrid2 => ControllerKind::Hybrid2,
            FamilyId::MicroSector => ControllerKind::MicroSector,
            FamilyId::OsPaging => ControllerKind::OsPaging,
        }
    }
}

impl std::fmt::Display for FamilyId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_round_trip_through_parse() {
        for family in FamilyId::ALL {
            assert_eq!(FamilyId::parse(family.name()), Ok(family));
        }
    }

    #[test]
    fn names_table_matches_all_order() {
        for (family, name) in FamilyId::ALL.iter().zip(FamilyId::NAMES) {
            assert_eq!(family.name(), name);
        }
    }

    #[test]
    fn unknown_name_is_a_typed_error() {
        assert_eq!(
            FamilyId::parse("warp-drive"),
            Err(ConfigError::UnknownFamily("warp-drive".to_owned()))
        );
    }

    #[test]
    fn every_family_builds_a_valid_kind() {
        let scale = Scale { divisor: 2048 };
        for family in FamilyId::ALL {
            if let ControllerKind::Baryon(cfg) = family.kind(scale) {
                cfg.validate().expect("registry constructors stay valid");
            }
        }
    }

    #[test]
    fn trimma_selects_the_multilevel_store() {
        let ControllerKind::Baryon(cfg) = FamilyId::Trimma.kind(Scale { divisor: 2048 }) else {
            panic!("trimma is a Baryon-family controller");
        };
        assert!(matches!(
            cfg.remap,
            crate::config::RemapKind::MultiLevel { .. }
        ));
    }
}

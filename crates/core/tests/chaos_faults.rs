//! Chaos suite: the controller under aggressive fault injection.
//!
//! Drives a 100k-operation mixed read/writeback workload with per-bit
//! fault rates far above anything a real part would ship with, and checks
//! the robustness contract of the fault model (ARCHITECTURE.md, "Fault
//! model & recovery"):
//!
//! * no panics anywhere in the access flow,
//! * every detected fault resolves into exactly one of
//!   corrected / degraded / unrecoverable,
//! * the remap/stage/residency metadata stays self-consistent (the scrub
//!   pass never has anything to repair),
//! * the whole run is deterministic for a fixed seed.
//!
//! Everything is seeded; failures reproduce exactly.

use baryon_core::config::BaryonConfig;
use baryon_core::controller::BaryonController;
use baryon_core::ctrl::{MemoryController, Request};
use baryon_mem::FaultConfig;
use baryon_sim::rng::SimRng;
use baryon_workloads::{MemoryContents, ProfileMix, Scale, ValueProfile};

fn chaos_controller(bit_flip: f64, stuck: f64, seed: u64) -> BaryonController {
    let mut cfg = BaryonConfig::default_cache_mode(Scale { divisor: 2048 });
    cfg.fault_fast = FaultConfig {
        bit_flip_rate: bit_flip,
        stuck_at_rate: stuck,
        seed,
    };
    cfg.fault_slow = FaultConfig {
        bit_flip_rate: bit_flip / 2.0,
        stuck_at_rate: stuck / 2.0,
        seed: seed ^ 0x5EED,
    };
    cfg.scrub_interval = 2_000;
    BaryonController::new(cfg)
}

/// Runs `ops` mixed operations (~30% dirty writebacks) over a skewed
/// working set and returns the final controller.
fn run_mixed(mut c: BaryonController, ops: usize, seed: u64) -> BaryonController {
    let mut mem = MemoryContents::new(ProfileMix::pure(ValueProfile::NarrowInt), 7);
    let mut rng = SimRng::from_seed(seed);
    let lines = c.config().os_space_bytes() / 64;
    let hot = (lines / 64).max(1);
    let mut now = 0u64;
    for _ in 0..ops {
        // 80% of traffic hits a hot 1/64th of the space so blocks are
        // staged, committed, overflowed and evicted; the cold tail keeps
        // fresh block misses coming.
        let line = if rng.gen_bool(0.8) {
            rng.gen_range(0, hot)
        } else {
            rng.gen_range(0, lines)
        } * 64;
        if rng.gen_bool(0.3) {
            mem.write_line(line);
            c.writeback(now, line, &mut mem);
        } else {
            c.read(
                now,
                Request {
                    addr: line,
                    core: 0,
                },
                &mut mem,
            );
        }
        now += 64;
    }
    c
}

#[test]
fn chaos_mixed_workload_survives_aggressive_faults() {
    // 1e-4 per bit is roughly one transient fault per twenty 64 B reads;
    // 1e-5 per bit of stuck cells peppers the fast array with bad lines.
    let c = run_mixed(chaos_controller(1e-4, 1e-5, 0xC0FFEE), 100_000, 42);
    let k = *c.counters();

    assert!(
        k.faults_detected > 0,
        "aggressive rates must surface faults"
    );
    assert_eq!(
        k.faults_detected,
        k.faults_corrected + k.faults_degraded + k.faults_unrecoverable,
        "every detected fault resolves exactly one way: {k:?}"
    );
    assert!(k.faults_corrected > 0, "transient retries must succeed");
    assert!(k.faults_degraded > 0, "stuck lines must degrade blocks");
    assert!(k.scrub_passes > 0, "periodic scrubbing ran");
    assert_eq!(
        k.scrub_repairs, 0,
        "metadata must stay self-consistent under faults"
    );
}

#[test]
fn final_audit_finds_consistent_metadata() {
    let mut c = run_mixed(chaos_controller(1e-4, 1e-5, 0xBADC0DE), 20_000, 7);
    // An explicit audit beyond the periodic passes: nothing to repair.
    assert_eq!(c.scrub_metadata(u64::MAX / 2), 0);
}

#[test]
fn chaos_runs_are_deterministic() {
    let a = run_mixed(chaos_controller(1e-4, 1e-5, 99), 10_000, 3);
    let b = run_mixed(chaos_controller(1e-4, 1e-5, 99), 10_000, 3);
    assert_eq!(a.counters(), b.counters());
    assert_eq!(
        a.serve_stats().fast_bytes,
        b.serve_stats().fast_bytes,
        "device traffic must replay bit-identically"
    );
}

#[test]
fn disabled_faults_keep_counters_silent() {
    // The default configuration injects nothing: the whole fault/scrub
    // machinery must be invisible.
    let c = run_mixed(
        BaryonController::new(BaryonConfig::default_cache_mode(Scale { divisor: 2048 })),
        5_000,
        3,
    );
    let k = *c.counters();
    assert_eq!(k.faults_detected, 0);
    assert_eq!(
        k.faults_corrected + k.faults_degraded + k.faults_unrecoverable,
        0
    );
    assert_eq!(k.scrub_passes, 0);
}

//! Directed tests for the Baryon controller's corner paths: write
//! overflows, commit/evict decisions, compressed-writeback hints,
//! super-block co-location, flat-mode swaps, and alternate geometries.

use baryon_core::config::BaryonConfig;
use baryon_core::controller::BaryonController;
use baryon_core::ctrl::{MemoryController, Request};
use baryon_workloads::{MemoryContents, ProfileMix, Scale, ValueProfile};

fn scale() -> Scale {
    Scale { divisor: 2048 }
}

fn ctrl() -> BaryonController {
    BaryonController::new(BaryonConfig::default_cache_mode(scale()))
}

fn read(c: &mut BaryonController, now: u64, addr: u64, mem: &mut MemoryContents) -> bool {
    c.read(now, Request { addr, core: 0 }, mem).served_by_fast
}

fn contents(profile: ValueProfile) -> MemoryContents {
    MemoryContents::new(ProfileMix::pure(profile), 7)
}

#[test]
fn mixed_mode_combines_cache_and_flat() {
    // A static cache + flat split (§III-A): flat-partition originals serve
    // fast, slow-home blocks get committed into the cache partition first
    // (no swaps needed), and flat swaps only start once the cache
    // partition is exhausted.
    let cfg = BaryonConfig::default_mixed(scale(), 0.5);
    cfg.validate().expect("valid mixed config");
    let mut c = BaryonController::new(cfg.clone());
    let mut mem = contents(ValueProfile::NarrowInt);

    // A flat-partition original serves from fast immediately.
    assert!(read(&mut c, 0, 0, &mut mem), "flat original is fast");
    assert!(c.counters().flat_original_hits > 0);

    // A slow-home block misses, stages, and can commit into the cache
    // partition without any spread swap.
    let slow_addr = cfg.flat_blocks() * 2048;
    assert!(!read(&mut c, 1_000, slow_addr, &mut mem));
    let mut now = 2_000;
    // Churn enough distinct slow-home super-blocks to force commits
    // (the scaled stage area has 16 sets x 8 ways).
    for i in 1..=400u64 {
        now += 5_000;
        read(&mut c, now, slow_addr + i * 16384, &mut mem);
    }
    let cnt = c.counters();
    assert!(cnt.commits > 0, "commits into the cache partition");
    assert_eq!(
        cnt.spread_swaps, 0,
        "free cache-partition slots absorb commits without swaps"
    );

    // The OS space covers flat + slow.
    assert_eq!(
        cfg.os_space_bytes(),
        cfg.flat_blocks() * 2048 + cfg.slow_bytes
    );
}

#[test]
fn mixed_mode_swaps_once_cache_partition_full() {
    let mut cfg = BaryonConfig::default_mixed(scale(), 0.5);
    cfg.fast_bytes = 256 << 10;
    cfg.slow_bytes = 2 << 20;
    cfg.stage_bytes = 16 << 10;
    cfg.validate().expect("valid");
    let mut c = BaryonController::new(cfg.clone());
    let mut mem = contents(ValueProfile::NarrowInt);
    let first_slow = cfg.flat_blocks();
    let slow_blocks = cfg.slow_bytes / 2048;
    let mut now = 0;
    for visit in 0..4_000u64 {
        let block = first_slow + (visit * 7) % (slow_blocks - 8);
        for sub in 0..8u64 {
            now += 100;
            read(&mut c, now, block * 2048 + sub * 256, &mut mem);
        }
    }
    let cnt = c.counters();
    assert!(cnt.commits > 0);
    assert!(
        cnt.spread_swaps > 0,
        "after the cache partition fills, commits displace flat originals"
    );
}

#[test]
fn all_victim_policies_run_cleanly() {
    use baryon_core::config::VictimPolicy;
    for policy in [
        VictimPolicy::Auto,
        VictimPolicy::Lru,
        VictimPolicy::Fifo,
        VictimPolicy::Random,
        VictimPolicy::Clock,
        VictimPolicy::Lfu,
    ] {
        let mut cfg = BaryonConfig::default_cache_mode(scale());
        cfg.victim_policy = policy;
        let mut c = BaryonController::new(cfg);
        let mut mem = contents(ValueProfile::NarrowInt);
        let mut now = 0;
        for i in 0..3_000u64 {
            now += 300;
            let addr = (i * 2048 * 13) % (12 << 20);
            read(&mut c, now, addr, &mut mem);
        }
        let cnt = c.counters();
        assert!(
            cnt.commits > 0,
            "{policy:?}: churn must trigger commits (and thus victim selection)"
        );
        let reads = cnt.case1_stage_hits
            + cnt.case2_commit_hits
            + cnt.case3_stage_misses
            + cnt.case4_bypasses
            + cnt.case5_block_misses;
        assert_eq!(reads, 3_000, "{policy:?}: cases must partition reads");
    }
}

/// Drives enough distinct super-blocks through one stage set to force the
/// victim block out (commit or eviction).
fn churn_stage_set(
    c: &mut BaryonController,
    mem: &mut MemoryContents,
    base_sb: u64,
    now: &mut u64,
) {
    let sets = c.config().stage_sets() as u64;
    for i in 1..=8u64 {
        let sb = base_sb + i * sets; // same stage set, different super-block
        let addr = sb * 16384;
        *now += 10_000;
        read(c, *now, addr, mem);
    }
}

#[test]
fn stage_write_overflow_restages_range() {
    // NarrowInt data compresses at CF2; repeated writes eventually
    // degenerate a line to random bytes (dirty entropy), breaking the CF.
    let mut c = ctrl();
    let mut mem = contents(ValueProfile::NarrowInt);
    let mut now = 0;
    read(&mut c, now, 0, &mut mem);
    assert!(
        read(&mut c, 10_000, 0, &mut mem),
        "staged after first touch"
    );

    // Write the line until its content degenerates.
    for i in 0..60 {
        now = 20_000 + i * 1_000;
        mem.write_line(0);
        c.writeback(now, 0, &mut mem);
        if c.counters().stage_overflows > 0 {
            break;
        }
    }
    assert!(
        c.counters().stage_overflows > 0,
        "degenerated data must overflow its compressed slot"
    );
    // The data is still served from the stage area after re-staging.
    assert!(read(&mut c, now + 10_000, 0, &mut mem));
}

#[test]
fn committed_write_overflow_evicts_block() {
    let mut c = ctrl();
    let mut mem = contents(ValueProfile::NarrowInt);
    let mut now = 0;
    read(&mut c, now, 0, &mut mem);
    churn_stage_set(&mut c, &mut mem, 0, &mut now);
    // Block 0 should now be committed (or evicted); make sure committed.
    if !read(&mut c, now + 1_000, 0, &mut mem) {
        // Was evicted to slow: stage and churn again.
        read(&mut c, now + 2_000, 0, &mut mem);
        churn_stage_set(&mut c, &mut mem, 0, &mut now);
    }
    let committed_before = c.counters().case2_commit_hits;
    assert!(read(&mut c, now + 5_000, 0, &mut mem));
    assert!(
        c.counters().case2_commit_hits > committed_before,
        "block is committed"
    );

    // Degenerate the committed compressed line with writes.
    let mut overflowed = false;
    for i in 0..60 {
        mem.write_line(0);
        c.writeback(now + 10_000 + i * 500, 0, &mut mem);
        if c.counters().committed_overflows > 0 {
            overflowed = true;
            break;
        }
    }
    assert!(overflowed, "committed block must eventually overflow");
}

#[test]
fn compressed_writeback_leaves_hints() {
    // Force a staged dirty range to be evicted to slow memory; with the
    // optimization on, the next fetch reads the compressed copy.
    let mut c = ctrl();
    let mut mem = contents(ValueProfile::NarrowInt);
    let mut now = 0;
    // Stage block 0 and dirty it.
    read(&mut c, now, 0, &mut mem);
    mem.write_line(0);
    c.writeback(1_000, 0, &mut mem);

    // Push k = 0-style eviction: make the stage victim decision pick
    // eviction by flooding the set and relying on the cost model...
    // Deterministically simpler: use a controller with commit disabled via
    // k = 0 and dirty victim pressure. Instead, drive churn and accept
    // either path; if the block ended up in slow with hints, the second
    // fetch is a compressed read with co-decompressed extras.
    churn_stage_set(&mut c, &mut mem, 0, &mut now);
    let r = c.read(now + 50_000, Request { addr: 0, core: 0 }, &mut mem);
    let _ = r;
    // Whichever path was taken, the bookkeeping must stay coherent: every
    // staging eventually ends in at most one commit or eviction (blocks
    // still resident keep the inequality strict).
    let mut reg = baryon_sim::telemetry::Registry::new();
    c.export(&mut reg);
    let stagings = reg.counter("stage.stagings");
    let cnt = c.counters();
    assert!(
        cnt.commits + cnt.stage_evictions <= stagings,
        "more commits+evictions ({} + {}) than stagings ({stagings})",
        cnt.commits,
        cnt.stage_evictions
    );
    assert!(stagings > 0);
}

#[test]
fn super_block_blocks_share_committed_physical_block() {
    let mut c = ctrl();
    let mut mem = contents(ValueProfile::NarrowInt);
    let mut now = 0;
    // Touch two blocks of the same super-block so they stage together.
    read(&mut c, now, 0, &mut mem);
    read(&mut c, 1_000, 2048, &mut mem);
    churn_stage_set(&mut c, &mut mem, 0, &mut now);
    // Both blocks hit in the committed area; their remap entries share a
    // pointer, which the counters reflect as case-2 hits for both.
    let before = c.counters().case2_commit_hits;
    let a = read(&mut c, now + 1_000, 0, &mut mem);
    let b = read(&mut c, now + 2_000, 2048, &mut mem);
    if a && b {
        assert!(c.counters().case2_commit_hits >= before + 2);
    }
}

#[test]
fn zero_blocks_serve_without_data_traffic() {
    let mut c = ctrl();
    let mut mem = contents(ValueProfile::Zero);
    read(&mut c, 0, 0, &mut mem);
    let fast_before = c.serve_stats().fast_bytes;
    let r = c.read(10_000, Request { addr: 64, core: 0 }, &mut mem);
    assert!(r.served_by_fast);
    assert!(c.counters().zero_serves > 0);
    assert_eq!(
        c.serve_stats().fast_bytes,
        fast_before,
        "Z serves move no data"
    );
    assert!(
        !r.extra_lines.is_empty(),
        "zero chunks co-deliver neighbours"
    );
}

#[test]
fn baryon_64b_geometry_runs() {
    let mut cfg = BaryonConfig::default_cache_mode(scale());
    cfg.geometry = baryon_core::Geometry::baryon_64b();
    let mut c = BaryonController::new(cfg);
    let mut mem = contents(ValueProfile::NarrowInt);
    let mut now = 0;
    for i in 0..200u64 {
        now += 500;
        read(&mut c, now, (i * 64) % (1 << 20), &mut mem);
    }
    let cnt = c.counters();
    assert!(cnt.case1_stage_hits + cnt.case5_block_misses > 0);
}

#[test]
fn flat_three_way_swap_exercised() {
    // A deliberately tiny flat pool so commits wrap the FIFO cursor onto
    // previously-committed slots, forcing three-way slow swaps.
    let mut cfg = BaryonConfig::default_flat_fa(scale());
    cfg.fast_bytes = 256 << 10;
    cfg.slow_bytes = 2 << 20;
    cfg.stage_bytes = 16 << 10;
    cfg.validate().expect("valid shrunken config");
    let mut c = BaryonController::new(cfg.clone());
    let mut mem = contents(ValueProfile::NarrowInt);
    // Visit slow-home blocks sub-block by sub-block so each stage entry
    // accumulates full coverage (flat commits need >= 8 freed slow slots).
    let first_slow_block = cfg.data_blocks() as u64;
    let slow_blocks = cfg.slow_bytes / 2048;
    let mut now = 0;
    for visit in 0..6_000u64 {
        let block = first_slow_block + (visit * 7) % (slow_blocks - 8);
        for sub in 0..8u64 {
            now += 100;
            read(&mut c, now, block * 2048 + sub * 256, &mut mem);
        }
    }
    let cnt = c.counters();
    assert!(cnt.commits > 0, "flat commits must happen");
    assert!(cnt.spread_swaps > 0, "commits must displace originals");
    assert!(
        cnt.three_way_swaps > 0,
        "recommitting over committed slots must use the three-way slow swap \
         (commits {}, spreads {})",
        cnt.commits,
        cnt.spread_swaps
    );
}

#[test]
fn selective_commit_k_zero_evicts_clean_blocks() {
    // With k = 0 the decision is dirty-cost only: a clean stage victim
    // facing a dirty fast victim should be evicted, not committed.
    let mut cfg = BaryonConfig::default_cache_mode(scale());
    cfg.commit_k = 0.0;
    let mut c = BaryonController::new(cfg);
    let mut mem = contents(ValueProfile::NarrowInt);
    let mut now = 0;
    // Read-only churn: every staged block is clean and every committed
    // block is clean, so B = 0 - 0 = 0 -> still commits (B >= 0). Dirty the
    // committed victims by writing them.
    for i in 0..2_000u64 {
        now += 300;
        let addr = (i * 2048 * 37) % (16 << 20);
        read(&mut c, now, addr, &mut mem);
        if i % 3 == 0 {
            mem.write_line(addr);
            c.writeback(now + 50, addr, &mut mem);
        }
    }
    let cnt = c.counters();
    assert!(
        cnt.stage_evictions > 0,
        "k=0 with dirty fast victims must sometimes prefer eviction"
    );
}

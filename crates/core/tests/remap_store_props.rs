//! Property tests of the [`RemapStore`] contract: the flat table and the
//! Trimma-style multi-level store must be observationally identical as
//! translation maps under arbitrary migrate/evict/update churn — the
//! multi-level store only changes *where* the metadata lives (and how
//! much of it exists), never *what* it says.
//!
//! Timing is deliberately not compared: the two stores have different
//! hot-level cache geometries, which is the whole point.

use baryon_core::config::BaryonConfig;
use baryon_core::controller::BaryonController;
use baryon_core::ctrl::{MemoryController, Request};
use baryon_core::metadata::RemapEntry;
use baryon_core::remap::{MultiLevelRemap, RemapStore, RemapTable};
use baryon_mem::{DeviceConfig, MemDevice};
use baryon_sim::check::{props, Gen};
use baryon_sim::rng::SimRng;
use baryon_workloads::{MemoryContents, ProfileMix, Scale, ValueProfile};

#[derive(Debug, Clone)]
enum Op {
    /// Migrate: install a live translation (remap != 0).
    Set { block: u64, entry: RemapEntry },
    /// Evict/scrub-repair: clear the translation back to empty.
    Invalidate { block: u64 },
    /// Commit/evict metadata write-through.
    RecordUpdate { sb: u64 },
    /// Demand translation walk.
    Lookup { sb: u64 },
}

/// A live entry: the store contract only canonicalizes entries with
/// `remap == 0`, so churn generates either live entries or explicit
/// invalidates — exactly what the controller produces.
fn gen_live_entry(g: &mut Gen) -> RemapEntry {
    let mut e = RemapEntry::empty();
    e.remap = g.range(1, u32::MAX as u64) as u32;
    e.pointer = g.u64() as u32;
    e.cf2 = g.u64() as u32;
    e.cf4 = g.u64() as u32;
    e.zero = g.bool();
    e
}

fn gen_op(g: &mut Gen, blocks: u64, supers: u64) -> Op {
    match g.choice(8) {
        // Weight toward Set/Invalidate so leaves churn through their
        // allocate → live → free lifecycle many times per case.
        0..=2 => Op::Set {
            block: g.range(0, blocks),
            entry: gen_live_entry(g),
        },
        3 | 4 => Op::Invalidate {
            block: g.range(0, blocks),
        },
        5 => Op::RecordUpdate {
            sb: g.range(0, supers),
        },
        _ => Op::Lookup {
            sb: g.range(0, supers),
        },
    }
}

#[test]
fn multilevel_translations_match_flat_under_churn() {
    props("multilevel_matches_flat").cases(48).run(|g| {
        const BPS: u64 = 8;
        let blocks = [64u64, 256, 1024][g.choice(3)];
        let region_blocks = [16u64, 64, 256][g.choice(3)];
        let supers = blocks / BPS;
        g.note(format!("blocks={blocks} region_blocks={region_blocks}"));

        let mut flat = RemapTable::new(blocks, BPS as usize, 32 << 10, 3, 0);
        let mut ml = MultiLevelRemap::new(blocks, BPS as usize, region_blocks, 8 << 10, 2, 0);
        let mut dev_a = MemDevice::new(DeviceConfig::ddr4_3200());
        let mut dev_b = MemDevice::new(DeviceConfig::ddr4_3200());

        let ops = g.vec(1, 300, |g| gen_op(g, blocks, supers));
        let mut now = 0u64;
        for op in ops {
            now += 64;
            match op {
                Op::Set { block, entry } => {
                    RemapStore::set_entry(&mut flat, block, entry);
                    ml.set_entry(block, entry);
                }
                Op::Invalidate { block } => {
                    RemapStore::invalidate(&mut flat, block);
                    ml.invalidate(block);
                }
                Op::RecordUpdate { sb } => {
                    RemapStore::record_update(&mut flat, now, sb, &mut dev_a);
                    ml.record_update(now, sb, &mut dev_b);
                }
                Op::Lookup { sb } => {
                    RemapStore::lookup(&mut flat, now, sb, &mut dev_a);
                    ml.lookup(now, sb, &mut dev_b);
                }
            }
        }

        // Translation equivalence: every block, and every super-block
        // slice the serve path reads, must agree.
        for b in 0..blocks {
            assert_eq!(
                RemapStore::entry(&flat, b),
                ml.entry(b),
                "entry({b}) diverged"
            );
        }
        for sb in 0..supers {
            assert_eq!(
                RemapStore::super_entries(&flat, sb),
                ml.super_entries(sb),
                "super_entries({sb}) diverged"
            );
        }
        // Metadata write traffic is counted identically.
        assert_eq!(
            RemapStore::stats(&flat).table_updates,
            ml.stats().table_updates,
            "table_updates diverged"
        );
        // The root level always exists, even with every leaf freed.
        assert!(ml.footprint_bytes() >= 64, "root level always exists");
    });
}

#[test]
fn multilevel_footprint_shrinks_back_after_full_invalidate() {
    props("multilevel_footprint_shrinks").cases(24).run(|g| {
        let blocks = 512u64;
        let mut ml = MultiLevelRemap::new(blocks, 8, 64, 8 << 10, 2, 0);
        let base = ml.footprint_bytes();
        let touched = g.vec(1, 64, |g| g.range(0, blocks));
        for &b in &touched {
            let mut e = RemapEntry::empty();
            e.remap = 1 + (b as u32);
            ml.set_entry(b, e);
        }
        assert!(
            ml.footprint_bytes() > base,
            "live translations must allocate leaves"
        );
        for &b in &touched {
            ml.invalidate(b);
        }
        assert_eq!(
            ml.footprint_bytes(),
            base,
            "freeing the last translation of every region reclaims its leaf"
        );
    });
}

/// The trimma controller end-to-end: heavy staged/committed/evicted churn
/// with the multi-level store, then a metadata scrub audit — the scrub
/// pass must find nothing to repair, proving the store stays consistent
/// with the stage area and residency map through leaf allocate/free
/// cycles.
#[test]
fn trimma_scrub_finds_consistent_metadata_after_churn() {
    let mut c = BaryonController::new(BaryonConfig::default_trimma(Scale { divisor: 2048 }));
    let mut mem = MemoryContents::new(ProfileMix::pure(ValueProfile::NarrowInt), 7);
    let mut rng = SimRng::from_seed(0x7211_44A7);
    let lines = c.config().os_space_bytes() / 64;
    let hot = (lines / 64).max(1);
    let mut now = 0u64;
    for _ in 0..20_000 {
        let line = if rng.gen_bool(0.8) {
            rng.gen_range(0, hot)
        } else {
            rng.gen_range(0, lines)
        } * 64;
        if rng.gen_bool(0.3) {
            mem.write_line(line);
            c.writeback(now, line, &mut mem);
        } else {
            c.read(
                now,
                Request {
                    addr: line,
                    core: 0,
                },
                &mut mem,
            );
        }
        now += 64;
    }
    assert_eq!(
        c.scrub_metadata(now),
        0,
        "multi-level metadata must stay self-consistent under churn"
    );
}

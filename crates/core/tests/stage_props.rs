//! Property tests of the stage-area mechanics: Rule 1 (one super-block per
//! physical block), LRU/MRU coherence, counter aging, and lookup/insert
//! consistency under arbitrary operation sequences — on the in-repo
//! `baryon_sim::check` harness.

use baryon_compress::Cf;
use baryon_core::metadata::stage_entry::RangeRef;
use baryon_core::stage::StageArea;
use baryon_sim::check::{props, Gen};

#[derive(Debug, Clone)]
enum Op {
    Allocate {
        sb: u64,
    },
    Touch {
        sb: u64,
    },
    Insert {
        sb: u64,
        blk: u8,
        sub: u8,
        cf_idx: u8,
    },
    Evict {
        sb: u64,
    },
    Access {
        set: u8,
    },
    BumpMru {
        set: u8,
    },
}

fn gen_op(g: &mut Gen) -> Op {
    match g.choice(6) {
        0 => Op::Allocate { sb: g.range(0, 64) },
        1 => Op::Touch { sb: g.range(0, 64) },
        2 => Op::Insert {
            sb: g.range(0, 64),
            blk: g.range(0, 8) as u8,
            sub: g.range(0, 8) as u8,
            cf_idx: g.range(0, 3) as u8,
        },
        3 => Op::Evict { sb: g.range(0, 64) },
        4 => Op::Access {
            set: g.range(0, 4) as u8,
        },
        _ => Op::BumpMru {
            set: g.range(0, 4) as u8,
        },
    }
}

fn check_invariants(area: &StageArea) {
    for slot in area.occupied_slots() {
        let entry = area.entry(slot).expect("occupied");
        // Rule 1: a physical block only stages one super-block — implied by
        // construction, but every range must stay within the geometry.
        for r in entry.slots.iter().flatten().chain(entry.zero_ranges.iter()) {
            assert!(r.blk_off < 8, "blk_off {r:?}");
            assert!(
                r.sub_off as usize + r.cf.sub_blocks() <= 8,
                "range beyond block: {r:?}"
            );
            assert_eq!(
                r.sub_off as usize % r.cf.sub_blocks(),
                0,
                "range misaligned: {r:?}"
            );
        }
        // The set mapping is stable.
        assert_eq!(area.set_of(entry.tag), slot.set);
        // LRU and MRU agree with the stamps.
        if area.is_lru(slot) {
            assert!(area.lru_way(slot.set) == Some(slot));
        }
    }
}

#[test]
fn random_operation_sequences_hold_invariants() {
    props("random_operation_sequences_hold_invariants").run(|g| {
        let ops = g.vec(1, 120, gen_op);
        let mut area = StageArea::new(4, 4, 8, 16);
        for op in ops {
            match op {
                Op::Allocate { sb } => {
                    let set = area.set_of(sb);
                    if let Some(slot) = area.free_way(set) {
                        area.allocate(slot, sb);
                    }
                }
                Op::Touch { sb } => {
                    if let Some(slot) = area.blocks_of(sb).first().copied() {
                        area.touch(slot);
                        assert!(area.is_mru(slot), "touched slot must be MRU");
                    }
                }
                Op::Insert {
                    sb,
                    blk,
                    sub,
                    cf_idx,
                } => {
                    let cf = [Cf::X1, Cf::X2, Cf::X4][cf_idx as usize];
                    let sub_off = (sub as usize / cf.sub_blocks() * cf.sub_blocks()) as u8;
                    if let Some(slot) = area.blocks_of(sb).first().copied() {
                        // Skip overlapping inserts (the controller never
                        // creates them; the raw mechanics would allow it).
                        let covered = area
                            .entry(slot)
                            .map(|e| e.sub_mask_of(blk as usize))
                            .unwrap_or(0);
                        let mask: u32 = ((1u32 << cf.sub_blocks()) - 1) << sub_off;
                        if covered & mask != 0 {
                            continue;
                        }
                        if let Some(free) = area.entry(slot).and_then(|e| e.free_slot()) {
                            area.entry_mut(slot).expect("occupied").slots[free] = Some(RangeRef {
                                blk_off: blk,
                                sub_off,
                                cf,
                                dirty: false,
                            });
                            // Lookup finds every covered sub.
                            for s in sub_off as usize..sub_off as usize + cf.sub_blocks() {
                                let hit = area.lookup(sb, blk as usize, s);
                                assert!(hit.is_some(), "inserted sub not found");
                            }
                        }
                    }
                }
                Op::Evict { sb } => {
                    if let Some(slot) = area.blocks_of(sb).first().copied() {
                        let entry = area.evict(slot);
                        assert_eq!(entry.tag, sb);
                        assert!(area.entry(slot).is_none());
                    }
                }
                Op::Access { set } => area.record_set_access(set as usize % 4),
                Op::BumpMru { set } => area.bump_mru_miss(set as usize % 4),
            }
            check_invariants(&area);
        }
    });
}

#[test]
fn aging_halves_counters() {
    props("aging_halves_counters").run(|g| {
        let accesses = g.range(16, 200);
        let bumps = g.range(1, 400) as u16;
        let mut area = StageArea::new(2, 2, 8, 16);
        for _ in 0..bumps {
            area.bump_mru_miss(0);
        }
        let before = area.mru_miss_cnt(0);
        for _ in 0..accesses {
            area.record_set_access(0);
        }
        let agings = accesses / 16;
        let expected = before >> agings.min(15);
        assert_eq!(area.mru_miss_cnt(0), expected);
    });
}

#[test]
fn lookup_misses_for_untracked_subs() {
    props("lookup_misses_for_untracked_subs").run(|g| {
        let sb = g.range(0, 32);
        let blk = g.usize_range(0, 8);
        let sub = g.usize_range(0, 8);
        let area = StageArea::new(4, 4, 8, 16);
        assert!(area.lookup(sb, blk, sub).is_none());
        assert!(area.block_home(sb, blk).is_none());
    });
}

//! Property tests of the stage-area mechanics: Rule 1 (one super-block per
//! physical block), LRU/MRU coherence, counter aging, and lookup/insert
//! consistency under arbitrary operation sequences — on the in-repo
//! `baryon_sim::check` harness.

use baryon_compress::Cf;
use baryon_core::metadata::stage_entry::RangeRef;
use baryon_core::stage::{StageArea, StageSlot};
use baryon_sim::check::{props, Gen};

#[derive(Debug, Clone)]
enum Op {
    Allocate {
        sb: u64,
    },
    Touch {
        sb: u64,
    },
    Insert {
        sb: u64,
        blk: u8,
        sub: u8,
        cf_idx: u8,
    },
    Evict {
        sb: u64,
    },
    Access {
        set: u8,
    },
    BumpMru {
        set: u8,
    },
}

fn gen_op(g: &mut Gen) -> Op {
    match g.choice(6) {
        0 => Op::Allocate { sb: g.range(0, 64) },
        1 => Op::Touch { sb: g.range(0, 64) },
        2 => Op::Insert {
            sb: g.range(0, 64),
            blk: g.range(0, 8) as u8,
            sub: g.range(0, 8) as u8,
            cf_idx: g.range(0, 3) as u8,
        },
        3 => Op::Evict { sb: g.range(0, 64) },
        4 => Op::Access {
            set: g.range(0, 4) as u8,
        },
        _ => Op::BumpMru {
            set: g.range(0, 4) as u8,
        },
    }
}

fn check_invariants(area: &StageArea) {
    for slot in area.occupied_slots() {
        let entry = area.entry(slot).expect("occupied");
        // Rule 1: a physical block only stages one super-block — implied by
        // construction, but every range must stay within the geometry.
        for r in entry.slots.iter().flatten().chain(entry.zero_ranges.iter()) {
            assert!(r.blk_off < 8, "blk_off {r:?}");
            assert!(
                r.sub_off as usize + r.cf.sub_blocks() <= 8,
                "range beyond block: {r:?}"
            );
            assert_eq!(
                r.sub_off as usize % r.cf.sub_blocks(),
                0,
                "range misaligned: {r:?}"
            );
        }
        // The set mapping is stable.
        assert_eq!(area.set_of(entry.tag), slot.set);
        // LRU and MRU agree with the stamps.
        if area.is_lru(slot) {
            assert!(area.lru_way(slot.set) == Some(slot));
        }
    }
}

#[test]
fn random_operation_sequences_hold_invariants() {
    props("random_operation_sequences_hold_invariants").run(|g| {
        let ops = g.vec(1, 120, gen_op);
        let mut area = StageArea::new(4, 4, 8, 16);
        for op in ops {
            match op {
                Op::Allocate { sb } => {
                    let set = area.set_of(sb);
                    if let Some(slot) = area.free_way(set) {
                        area.allocate(slot, sb);
                    }
                }
                Op::Touch { sb } => {
                    if let Some(slot) = area.blocks_of(sb).first().copied() {
                        area.touch(slot);
                        assert!(area.is_mru(slot), "touched slot must be MRU");
                    }
                }
                Op::Insert {
                    sb,
                    blk,
                    sub,
                    cf_idx,
                } => {
                    let cf = [Cf::X1, Cf::X2, Cf::X4][cf_idx as usize];
                    let sub_off = (sub as usize / cf.sub_blocks() * cf.sub_blocks()) as u8;
                    if let Some(slot) = area.blocks_of(sb).first().copied() {
                        // Skip overlapping inserts (the controller never
                        // creates them; the raw mechanics would allow it).
                        let covered = area
                            .entry(slot)
                            .map(|e| e.sub_mask_of(blk as usize))
                            .unwrap_or(0);
                        let mask: u32 = ((1u32 << cf.sub_blocks()) - 1) << sub_off;
                        if covered & mask != 0 {
                            continue;
                        }
                        if let Some(free) = area.entry(slot).and_then(|e| e.free_slot()) {
                            area.entry_mut(slot).expect("occupied").slots[free] = Some(RangeRef {
                                blk_off: blk,
                                sub_off,
                                cf,
                                dirty: false,
                            });
                            // Lookup finds every covered sub.
                            for s in sub_off as usize..sub_off as usize + cf.sub_blocks() {
                                let hit = area.lookup(sb, blk as usize, s);
                                assert!(hit.is_some(), "inserted sub not found");
                            }
                        }
                    }
                }
                Op::Evict { sb } => {
                    if let Some(slot) = area.blocks_of(sb).first().copied() {
                        let entry = area.evict(slot);
                        assert_eq!(entry.tag, sb);
                        assert!(area.entry(slot).is_none());
                    }
                }
                Op::Access { set } => area.record_set_access(set as usize % 4),
                Op::BumpMru { set } => area.bump_mru_miss(set as usize % 4),
            }
            check_invariants(&area);
        }
    });
}

#[test]
fn aging_halves_counters() {
    props("aging_halves_counters").run(|g| {
        let accesses = g.range(16, 200);
        let bumps = g.range(1, 400) as u16;
        let mut area = StageArea::new(2, 2, 8, 16);
        for _ in 0..bumps {
            area.bump_mru_miss(0);
        }
        let before = area.mru_miss_cnt(0);
        for _ in 0..accesses {
            area.record_set_access(0);
        }
        let agings = accesses / 16;
        let expected = before >> agings.min(15);
        assert_eq!(area.mru_miss_cnt(0), expected);
    });
}

/// A naive reference model of the stage area for the differential
/// property below: one record per (set, way), no tag lane, every query
/// recomputed from first principles. The struct-of-arrays refactor keeps
/// a separate `tags` lane beside the entry array; this model pins the
/// invariant that the lane is always an exact projection of the entries.
struct Model {
    sets: usize,
    ways: usize,
    slots: Vec<Option<(u64, Vec<RangeRef>)>>,
    stamps: Vec<u64>,
    tick: u64,
}

impl Model {
    fn new(sets: usize, ways: usize) -> Self {
        Model {
            sets,
            ways,
            slots: (0..sets * ways).map(|_| None).collect(),
            stamps: vec![0; sets * ways],
            tick: 0,
        }
    }

    fn idx(&self, s: StageSlot) -> usize {
        s.set * self.ways + s.way
    }

    fn touch(&mut self, s: StageSlot) {
        self.tick += 1;
        let i = self.idx(s);
        self.stamps[i] = self.tick;
    }

    fn allocate(&mut self, s: StageSlot, sb: u64) {
        let i = self.idx(s);
        assert!(self.slots[i].is_none());
        self.slots[i] = Some((sb, Vec::new()));
        self.touch(s);
    }

    fn evict(&mut self, s: StageSlot) -> u64 {
        let i = self.idx(s);
        self.slots[i].take().expect("occupied").0
    }

    fn free_way(&self, set: usize) -> Option<StageSlot> {
        (0..self.ways)
            .find(|w| self.slots[set * self.ways + w].is_none())
            .map(|way| StageSlot { set, way })
    }

    fn lru_way(&self, set: usize) -> Option<StageSlot> {
        (0..self.ways)
            .filter(|w| self.slots[set * self.ways + w].is_some())
            .min_by_key(|w| self.stamps[set * self.ways + w])
            .map(|way| StageSlot { set, way })
    }

    fn mru_way(&self, set: usize) -> Option<StageSlot> {
        (0..self.ways)
            .filter(|w| self.slots[set * self.ways + w].is_some())
            .max_by_key(|w| self.stamps[set * self.ways + w])
            .map(|way| StageSlot { set, way })
    }

    fn blocks_of(&self, sb: u64) -> Vec<StageSlot> {
        let set = (sb % self.sets as u64) as usize;
        (0..self.ways)
            .filter(|w| {
                self.slots[set * self.ways + w]
                    .as_ref()
                    .is_some_and(|(tag, _)| *tag == sb)
            })
            .map(|way| StageSlot { set, way })
            .collect()
    }

    fn lookup(&self, sb: u64, blk: usize, sub: usize) -> Option<(StageSlot, Cf)> {
        let set = (sb % self.sets as u64) as usize;
        for way in 0..self.ways {
            let Some((tag, ranges)) = self.slots[set * self.ways + way].as_ref() else {
                continue;
            };
            if *tag != sb {
                continue;
            }
            if let Some(r) = ranges.iter().find(|r| r.covers(blk, sub)) {
                return Some((StageSlot { set, way }, r.cf));
            }
        }
        None
    }

    fn block_home(&self, sb: u64, blk: usize) -> Option<StageSlot> {
        let set = (sb % self.sets as u64) as usize;
        (0..self.ways)
            .find(|w| {
                self.slots[set * self.ways + w]
                    .as_ref()
                    .is_some_and(|(tag, ranges)| {
                        *tag == sb && ranges.iter().any(|r| r.blk_off as usize == blk)
                    })
            })
            .map(|way| StageSlot { set, way })
    }

    fn occupied_slots(&self) -> Vec<StageSlot> {
        (0..self.sets * self.ways)
            .filter(|i| self.slots[*i].is_some())
            .map(|i| StageSlot {
                set: i / self.ways,
                way: i % self.ways,
            })
            .collect()
    }
}

#[test]
fn stage_area_matches_naive_model() {
    props("stage_soa_vs_model").cases(48).run(|g| {
        let sets = g.usize_range(2, 8);
        let ways = g.usize_range(1, 4);
        g.note(format!("{sets} sets x {ways} ways"));
        let mut area = StageArea::new(sets, ways, 8, 100);
        let mut model = Model::new(sets, ways);
        let sb_universe = (sets * ways * 2) as u64;

        for _ in 0..g.usize_range(40, 400) {
            let sb = g.u64() % sb_universe;
            let set = area.set_of(sb);
            match g.choice(5) {
                0 | 1 => {
                    assert_eq!(area.free_way(set), model.free_way(set));
                    if let Some(slot) = area.free_way(set) {
                        area.allocate(slot, sb);
                        model.allocate(slot, sb);
                    }
                }
                2 => {
                    let occ = model.occupied_slots();
                    if !occ.is_empty() {
                        let slot = occ[g.choice(occ.len())];
                        area.touch(slot);
                        model.touch(slot);
                    }
                }
                3 => {
                    // Evict the LRU of the set, as the controller does.
                    assert_eq!(area.lru_way(set), model.lru_way(set));
                    if let Some(slot) = area.lru_way(set) {
                        let entry = area.evict(slot);
                        assert_eq!(entry.tag, model.evict(slot), "evicted wrong tag");
                    }
                }
                _ => {
                    // Stage a range into a random block of this super-block.
                    if let Some(&slot) = model.blocks_of(sb).first() {
                        let cf = [Cf::X1, Cf::X2, Cf::X4][g.choice(3)];
                        let r = RangeRef {
                            blk_off: g.u8() % 8,
                            sub_off: (g.u8() % 8) / cf.sub_blocks() as u8 * cf.sub_blocks() as u8,
                            cf,
                            dirty: g.bool(),
                        };
                        let e = area.entry_mut(slot).expect("occupied");
                        if let Some(free) = e.free_slot() {
                            e.slots[free] = Some(r);
                            let i = model.idx(slot);
                            model.slots[i].as_mut().expect("occupied").1.push(r);
                        }
                    }
                }
            }

            // Cross-check every query the hot path relies on.
            let blk = g.u8() as usize % 8;
            let sub = g.u8() as usize % 8;
            assert_eq!(
                area.lookup(sb, blk, sub).map(|(s, h)| (s, h.cf)),
                model.lookup(sb, blk, sub),
                "lookup(sb={sb}, blk={blk}, sub={sub})"
            );
            assert_eq!(area.block_home(sb, blk), model.block_home(sb, blk));
            assert_eq!(area.blocks_of(sb), model.blocks_of(sb));
            assert_eq!(area.free_way(set), model.free_way(set));
            assert_eq!(area.lru_way(set), model.lru_way(set));
            if let Some(mru) = model.mru_way(set) {
                assert!(area.is_mru(mru), "model MRU not MRU in area");
            }
            assert_eq!(area.occupied_slots(), model.occupied_slots());
        }
    });
}

#[test]
fn lookup_misses_for_untracked_subs() {
    props("lookup_misses_for_untracked_subs").run(|g| {
        let sb = g.range(0, 32);
        let blk = g.usize_range(0, 8);
        let sub = g.usize_range(0, 8);
        let area = StageArea::new(4, 4, 8, 16);
        assert!(area.lookup(sb, blk, sub).is_none());
        assert!(area.block_home(sb, blk).is_none());
    });
}

//! Golden determinism pins: a fixed tiny simulation must produce exactly
//! these counters, byte for byte, forever. If a change is *intended* to
//! alter behaviour (a policy fix, a timing change), regenerate the golden
//! values below and explain why in the commit; if a refactor trips this
//! test unintentionally, it has silently changed the simulation.

use baryon_core::config::BaryonConfig;
use baryon_core::system::{ControllerKind, System, SystemConfig};
use baryon_workloads::{by_name, Scale};

fn run_fixed(kind: ControllerKind) -> (u64, u64, u64, u64) {
    let scale = Scale { divisor: 2048 };
    let w = by_name("505.mcf_r", scale).expect("workload");
    let mut cfg = SystemConfig::with_controller(scale, kind);
    cfg.warmup_insts = 5_000;
    let mut sys = System::new(cfg, &w, 12345);
    let r = sys.run(10_000);
    (
        r.total_cycles,
        r.llc_misses,
        r.serve.fast_bytes,
        r.serve.slow_bytes,
    )
}

#[test]
fn golden_run_is_bit_stable() {
    // Two runs of the same configuration must agree exactly — this part
    // can never legitimately fail.
    let scale = Scale { divisor: 2048 };
    let kind = ControllerKind::Baryon(BaryonConfig::default_cache_mode(scale));
    assert_eq!(run_fixed(kind.clone()), run_fixed(kind));
}

#[test]
fn golden_counters_differ_between_controllers() {
    // The pinned configuration must actually discriminate controllers
    // (guards against a refactor accidentally short-circuiting the
    // controller dispatch).
    let scale = Scale { divisor: 2048 };
    let baryon = run_fixed(ControllerKind::Baryon(BaryonConfig::default_cache_mode(
        scale,
    )));
    let simple = run_fixed(ControllerKind::Simple);
    assert_ne!(baryon.0, simple.0, "cycle counts must differ");
    assert_ne!(baryon.2, simple.2, "fast traffic must differ");
}

#[test]
fn golden_telemetry_off_and_on_agree_bit_for_bit() {
    // Enabling telemetry spans may add wall-clock span summaries, but it
    // must not perturb the simulation itself: every cycle count, byte
    // counter and latency bucket is identical, and the disabled run never
    // records a single span.
    let scale = Scale { divisor: 2048 };
    let w = by_name("505.mcf_r", scale).expect("workload");
    let run = |telemetry: bool| {
        let mut cfg = SystemConfig::baryon_cache_mode(scale);
        cfg.warmup_insts = 5_000;
        cfg.telemetry = telemetry;
        System::new(cfg, &w, 12345).run(10_000)
    };
    let off = run(false);
    let on = run(true);
    assert_eq!(off.total_cycles, on.total_cycles);
    assert_eq!(off.instructions, on.instructions);
    assert_eq!(off.llc_misses, on.llc_misses);
    assert_eq!(off.serve, on.serve);
    assert_eq!(off.read_latency, on.read_latency);
    // Stripped of span summaries, the registries match metric for metric.
    let strip = |r: &baryon_core::metrics::RunResult| {
        r.snapshot()
            .into_iter()
            .filter(|(k, _)| !k.contains("span."))
            .collect::<Vec<_>>()
    };
    assert_eq!(strip(&off), strip(&on));
    assert!(
        off.snapshot().keys().all(|k| !k.contains("span.")),
        "telemetry-off must never record spans"
    );
    assert!(
        on.snapshot().keys().any(|k| k.contains("span.")),
        "telemetry-on must record spans"
    );
}

#[test]
fn golden_seed_sensitivity() {
    // Different seeds explore different traces but identical machinery:
    // cycle counts differ while the configuration-level invariants hold.
    let scale = Scale { divisor: 2048 };
    let w = by_name("505.mcf_r", scale).expect("workload");
    let mut cycles = Vec::new();
    for seed in [1u64, 2, 3] {
        let mut cfg = SystemConfig::baryon_cache_mode(scale);
        cfg.warmup_insts = 2_000;
        let r = System::new(cfg, &w, seed).run(8_000);
        assert!(r.serve.fast_serve_rate() > 0.0 && r.serve.fast_serve_rate() < 1.0);
        cycles.push(r.total_cycles);
    }
    cycles.dedup();
    assert!(cycles.len() > 1, "seeds must change outcomes");
}

//! `baryon-fleet` — sharded multi-process serving for Baryon.
//!
//! One coordinator process fronts N `baryon-serve` worker shards (child
//! processes, each with its own journal directory), giving the simulator
//! a horizontally scaled, crash-tolerant job service:
//!
//! * **Routing** — single runs hash onto one shard
//!   ([`shard::route`]); grid sweeps scatter cell-by-cell across every
//!   shard ([`baryon_bench::batch::BatchPlan`]) and gather back into the
//!   byte-identical single-process result document.
//! * **QoS** — per-client in-flight quotas (`429 quota_exceeded`) and a
//!   two-level interactive/batch dispatch queue with per-class bounds and
//!   `Retry-After` ([`quota`]).
//! * **Supervision** — shards are health-checked and restarted in place;
//!   a restarted shard replays its write-ahead journal and resumes
//!   interrupted runs from checkpoints, so a mid-sweep `SIGKILL` costs
//!   latency, never results ([`shard::ShardSet`]).
//! * **Streaming** — `GET /v1/jobs/<id>/events` at the coordinator
//!   proxies the executing shard's chunked progress stream for single
//!   runs (IDs rewritten, monotonicity preserved across restarts) and
//!   synthesizes cell-completion progress for batches.
//! * **Telemetry** — `GET /v1/metrics` merges every shard's
//!   full-fidelity wire registry into one fleet document under
//!   `shard<i>.` namespaces, alongside the coordinator's own `fleet.*`
//!   counters.
//! * **Fleet ops** — a versioned A/B config subsystem ([`config`]): stage
//!   a validated [`baryon_core::policy::FleetPolicy`] into the non-active
//!   slot, commit it with a rolling shard restart (drain → respawn with
//!   `--policy` → health probe → canary), and roll back the same way. A
//!   failed probe or canary auto-rolls the fleet back; every generation
//!   is stamped into results and telemetry.
//!
//! # HTTP surface (coordinator)
//!
//! | Method | Path                        | Purpose                               |
//! |--------|-----------------------------|---------------------------------------|
//! | GET    | `/v1/healthz`               | liveness + shard count                |
//! | GET    | `/v1/metrics`               | fleet + per-shard merged registry     |
//! | POST   | `/v1/jobs`                  | submit (headers: `x-baryon-class`, `x-baryon-client`) |
//! | GET    | `/v1/jobs/<id>`             | fleet job status / result             |
//! | GET    | `/v1/jobs/<id>/events`      | chunked progress event stream         |
//! | POST   | `/v1/jobs/<id>/cancel`      | cancel a still-queued fleet job       |
//! | POST   | `/v1/shutdown`              | drain and stop coordinator + shards   |
//! | GET    | `/v1/admin/config`          | config slots, generations, history    |
//! | POST   | `/v1/admin/config/stage`    | validate + persist a candidate policy |
//! | POST   | `/v1/admin/config/commit`   | rolling restart onto the staged slot  |
//! | POST   | `/v1/admin/config/rollback` | rolling restart onto the previous slot|

pub mod config;
pub mod coordinator;
pub mod harness;
pub mod quota;
pub mod router;
pub mod shard;

pub use config::SlotMachine;
pub use coordinator::{Fleet, FleetConfig, FleetController};
pub use shard::ShardLauncher;

//! `fleet_gate` — the fleet determinism CI gate.
//!
//! Proves the fleet's headline invariant end to end, across real process
//! boundaries and a real `SIGKILL`:
//!
//! 1. compute the golden result of a grid sweep in-process
//!    (`JobSpec::execute`),
//! 2. boot a coordinator over 3 worker shards (this binary re-invoked in
//!    `--shard` mode, each shard on its own journal directory),
//! 3. submit the same sweep as a batched fleet job and open its
//!    `/v1/jobs/<id>/events` stream,
//! 4. `SIGKILL` one shard once the first cells have landed but the sweep
//!    is still running (so it dies with cells in flight),
//! 5. require the supervisor to restart it, the sweep to finish, and the
//!    gathered result to be **byte-identical** to the golden document,
//! 6. require `/v1/metrics` to report every shard under its `shard<i>.`
//!    namespace plus the restart, and the event stream to have delivered
//!    monotonic progress and a final `end`.
//!
//! ```text
//! cargo run --release -p baryon-fleet --bin fleet_gate
//! ```
//!
//! Exits non-zero with a diagnostic on any divergence; `scripts/ci.sh`
//! runs it as the fleet e2e gate.

use baryon_bench::spec::{GridSpec, JobSpec, RunSpec};
use baryon_fleet::coordinator::{Fleet, FleetConfig};
use baryon_fleet::harness;
use baryon_serve::client::Client;
use baryon_sim::json::{self, Json};
use std::net::SocketAddr;
use std::process::ExitCode;
use std::time::{Duration, Instant};

const SHARDS: usize = 3;
const POLL: Duration = Duration::from_millis(10);
const DEADLINE: Duration = Duration::from_secs(180);

/// The sweep: 8 cells over 3 shards, each long enough that a shard dies
/// with cells genuinely in flight when killed after the first completions.
fn gate_grid() -> GridSpec {
    GridSpec {
        workloads: vec![
            "505.mcf_r".into(),
            "557.xz_r".into(),
            "pr.twi".into(),
            "ycsb-a".into(),
        ],
        controllers: vec!["simple".into(), "baryon".into()],
        base: RunSpec {
            insts: 250_000,
            warmup: 20_000,
            scale: 1024,
            seed: 7,
            ..RunSpec::default()
        },
    }
}

fn obj_get<'a>(doc: &'a Json, key: &str) -> Option<&'a Json> {
    match doc {
        Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
        _ => None,
    }
}

fn get_u64(doc: &Json, key: &str) -> Option<u64> {
    match obj_get(doc, key)? {
        Json::U64(n) => Some(*n),
        _ => None,
    }
}

fn get_str<'a>(doc: &'a Json, key: &str) -> Option<&'a str> {
    match obj_get(doc, key)? {
        Json::Str(s) => Some(s.as_str()),
        _ => None,
    }
}

fn client(addr: SocketAddr) -> Client {
    Client::new(addr).read_timeout(Duration::from_secs(60))
}

/// Polls the fleet job until `predicate` holds on its status document.
fn await_status(
    addr: SocketAddr,
    id: u64,
    what: &str,
    predicate: impl Fn(&Json) -> bool,
) -> Result<Json, String> {
    let deadline = Instant::now() + DEADLINE;
    loop {
        let r = client(addr)
            .request("GET", &format!("/v1/jobs/{id}"), None)
            .map_err(|e| format!("job status: {e}"))?;
        if r.status != 200 {
            return Err(format!("job status {}: {}", r.status, r.body));
        }
        let doc = json::parse(&r.body).map_err(|e| format!("status not JSON ({e}): {}", r.body))?;
        if predicate(&doc) {
            return Ok(doc);
        }
        if let Some("failed") = get_str(&doc, "state") {
            return Err(format!("job failed while waiting for {what}: {}", r.body));
        }
        if Instant::now() > deadline {
            return Err(format!("timed out waiting for {what}: {}", r.body));
        }
        std::thread::sleep(POLL);
    }
}

/// Asserts the collected stream lines are well-formed, monotonic in
/// `cells_done`, and terminated by `end` with the expected state.
fn check_stream(lines: &[String], id: u64) -> Result<(), String> {
    let mut last_cells_done = 0;
    let mut saw_progress = false;
    let mut end_state = None;
    for line in lines {
        let doc = json::parse(line).map_err(|e| format!("bad event ({e}): {line}"))?;
        match get_str(&doc, "event") {
            Some("progress") => {
                saw_progress = true;
                if get_u64(&doc, "id") != Some(id) {
                    return Err(format!("progress for the wrong job: {line}"));
                }
                let done = get_u64(&doc, "cells_done").unwrap_or(0);
                if done < last_cells_done {
                    return Err(format!(
                        "cells_done went backwards ({last_cells_done} -> {done}): {line}"
                    ));
                }
                last_cells_done = done;
            }
            Some("end") => end_state = get_str(&doc, "state").map(str::to_owned),
            Some("alive") => {}
            _ => return Err(format!("unknown event: {line}")),
        }
    }
    if !saw_progress {
        return Err("stream delivered no progress events".to_owned());
    }
    if end_state.as_deref() != Some("done") {
        return Err(format!("stream ended with {end_state:?}, expected done"));
    }
    Ok(())
}

fn run_gate() -> Result<(), String> {
    let journal_root =
        std::env::temp_dir().join(format!("baryon-fleet-gate-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&journal_root);

    let grid = gate_grid();
    let cells = grid.expand().len();
    let golden = JobSpec::Grid(grid.clone())
        .execute()
        .map_err(|e| format!("golden run: {e}"))?
        .render();

    // Frequent checkpoints so a killed shard's in-flight cells resume
    // instead of restarting from scratch (child shards inherit this).
    std::env::set_var("BARYON_SERVE_CHECKPOINT_EVERY", "10000");
    let launcher = harness::self_launcher(1, 16).map_err(|e| format!("launcher: {e}"))?;
    let fleet = Fleet::bind(
        FleetConfig {
            port: 0,
            shards: SHARDS,
            workers_per_shard: 1,
            shard_queue_depth: 16,
            queue_cap: 64,
            max_in_flight_per_client: 4,
            journal_root: journal_root.clone(),
        },
        launcher,
    )
    .map_err(|e| format!("fleet bind: {e}"))?;
    let addr = fleet.local_addr();
    let controller = fleet.controller();
    let serving = std::thread::spawn(move || fleet.run());

    let outcome = (|| -> Result<(), String> {
        // Submit the sweep (grids default to the batch class).
        let body = JobSpec::Grid(grid).to_json().render();
        let accepted = client(addr)
            .request("POST", "/v1/jobs", Some(&body))
            .map_err(|e| format!("submit: {e}"))?;
        if accepted.status != 202 {
            return Err(format!("submit {}: {}", accepted.status, accepted.body));
        }
        let accepted_doc =
            json::parse(&accepted.body).map_err(|e| format!("202 body not JSON: {e}"))?;
        let id = get_u64(&accepted_doc, "id").ok_or("202 body has no id")?;
        if get_u64(&accepted_doc, "cells") != Some(cells as u64) {
            return Err(format!("expected {cells} cells: {}", accepted.body));
        }

        // Stream events concurrently with the chaos below.
        let streamer = std::thread::spawn(move || {
            let mut lines = Vec::new();
            client(addr)
                .stream(&format!("/v1/jobs/{id}/events"), &mut |line| {
                    lines.push(line.to_owned());
                })
                .map(|()| lines)
        });

        // Kill shard 1 once the sweep is demonstrably mid-flight: some
        // cells done, some not, job still running.
        await_status(addr, id, "the mid-sweep kill window", |doc| {
            get_u64(doc, "cells_done").is_some_and(|d| d >= 1 && d < cells as u64)
                && get_str(doc, "state") == Some("running")
        })?;
        controller
            .kill_shard(1)
            .map_err(|e| format!("SIGKILL shard 1: {e}"))?;
        println!("killed shard 1 mid-sweep; awaiting supervised restart and completion");

        // The supervisor must restart it and the sweep must finish.
        let status = await_status(addr, id, "completion", |doc| {
            get_str(doc, "state") == Some("done")
        })?;
        let result = obj_get(&status, "result").ok_or("done job has no result")?;
        if result.render() != golden {
            return Err(format!(
                "fleet sweep diverged from the single-process run\n  golden: {golden}\n  fleet:  {}",
                result.render()
            ));
        }
        if controller.restarts() < 1 {
            return Err("shard 1 was never restarted".to_owned());
        }
        let stream_lines = streamer
            .join()
            .map_err(|_| "stream collector panicked".to_owned())?
            .map_err(|e| format!("event stream: {e}"))?;
        check_stream(&stream_lines, id)?;

        // Fleet metrics must carry every shard under its namespace, and
        // the restart.
        let metrics = client(addr)
            .request("GET", "/v1/metrics", None)
            .map_err(|e| format!("metrics: {e}"))?;
        for i in 0..SHARDS {
            let needle = format!("\"shard{i}.serve.jobs.done\"");
            if !metrics.body.contains(&needle) {
                return Err(format!("metrics missing {needle}: {}", metrics.body));
            }
        }
        if !metrics.body.contains("\"fleet.shards.restarts\":") {
            return Err(format!("metrics missing restart count: {}", metrics.body));
        }

        let r = client(addr)
            .request("POST", "/v1/shutdown", None)
            .map_err(|e| format!("shutdown: {e}"))?;
        if r.status != 200 {
            return Err(format!("shutdown {}: {}", r.status, r.body));
        }
        Ok(())
    })();

    // Always bring the fleet down before reporting.
    if outcome.is_err() {
        let _ = client(addr).request("POST", "/v1/shutdown", None);
    }
    serving
        .join()
        .map_err(|_| "serving thread panicked".to_owned())?
        .map_err(|e| format!("fleet run: {e}"))?;
    outcome?;

    std::fs::remove_dir_all(&journal_root)
        .map_err(|e| format!("cleanup {}: {e}", journal_root.display()))?;
    println!(
        "fleet gate OK: {cells}-cell sweep over {SHARDS} shards (one SIGKILLed and restarted) \
         matches the single-process run byte-for-byte"
    );
    Ok(())
}

fn main() -> ExitCode {
    if let Some(code) = harness::maybe_run_shard() {
        return code;
    }
    match run_gate() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("fleet gate failed: {e}");
            ExitCode::FAILURE
        }
    }
}

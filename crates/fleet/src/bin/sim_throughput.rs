//! `sim_throughput` — the simulator profiling harness.
//!
//! Runs a small matrix of workloads through the baryon controller twice —
//! telemetry spans off and on — and measures wall-clock simulation
//! throughput (instructions simulated per second of host time). The result
//! document `BENCH_sim_throughput.json` is written at the repository root
//! and carries, per workload, the ops/sec of both configurations, the
//! telemetry overhead, and a per-phase breakdown extracted from the
//! `ctrl.span.*` / `sim.span.*` summaries of the unified registry — plus a
//! `fleet_submit` figure: end-to-end jobs/sec for trivial specs pushed
//! through a live coordinator over real shard processes.
//!
//! The process exits non-zero when the aggregate telemetry-on overhead
//! exceeds the budget (default 5%) **or** any workload's telemetry-off
//! throughput falls below its per-workload regression floor, so CI gates
//! on both:
//!
//! ```text
//! cargo run --release -p baryon-fleet --bin sim_throughput
//! BARYON_BENCH_MAX_OVERHEAD_PCT=10 BARYON_BENCH_REPEATS=5 ... sim_throughput
//! BARYON_BENCH_FLOOR_SCALE=0.5 ... sim_throughput   # relax floors on slow hosts
//! ```
//!
//! Wall-clock times are the minimum over `BARYON_BENCH_REPEATS` runs
//! (default 3): the minimum is the standard noise-robust estimator for
//! "how fast can this go", which is what an overhead gate needs. The
//! `fleet_submit` figure is informational (no floor): it measures control
//! plane plus scheduling latency across process boundaries, which varies
//! with host load far more than the in-process simulator does.

use baryon_bench::spec::RunSpec;
use baryon_core::checkpoint::atomic_write;
use baryon_core::metrics::RunResult;
use baryon_fleet::coordinator::{Fleet, FleetConfig};
use baryon_fleet::harness;
use baryon_serve::client::Client;
use baryon_sim::json::{self, Json};
use std::path::PathBuf;
use std::process::ExitCode;
use std::time::{Duration, Instant};

/// The profiling matrix: one workload per access-pattern family, paired
/// with its regression floor (minimum telemetry-off ops/sec).
///
/// Floors sit well under the measured throughput of the arena-backed hot
/// path so host noise cannot trip them, but the `ycsb-a` floor is
/// deliberately above 2× the pre-refactor map-backed baseline
/// (1.43 M ops/s on the reference host): the speedup is a gated
/// deliverable, not a one-off observation. Scale all floors with
/// `BARYON_BENCH_FLOOR_SCALE` (e.g. `0` to disable on untrusted hosts).
const WORKLOADS: [(&str, f64); 4] = [
    ("505.mcf_r", 3.0e6),
    ("557.xz_r", 4.3e6),
    ("pr.twi", 4.0e6),
    ("ycsb-a", 2.9e6),
];

const SCALE: u64 = 1024;
const INSTS: u64 = 200_000;
const WARMUP: u64 = 40_000;

/// Fleet submit figure: how many trivial jobs, over how many shards.
const FLEET_JOBS: usize = 32;
const FLEET_SHARDS: usize = 2;

fn env_f64(key: &str, default: f64) -> f64 {
    std::env::var(key)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn env_u64(key: &str, default: u64) -> u64 {
    std::env::var(key)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn spec(workload: &str, telemetry: bool) -> RunSpec {
    RunSpec {
        workload: workload.to_owned(),
        controller: "baryon".to_owned(),
        insts: INSTS,
        warmup: WARMUP,
        scale: SCALE,
        seed: 42,
        mlp: 1,
        telemetry,
        threads: 1,
    }
}

/// One timed configuration: the fastest wall time over `repeats` runs,
/// plus the result of the last run (identical across repeats — the
/// simulation is deterministic).
struct Timed {
    wall_us: f64,
    result: RunResult,
}

fn run_timed(workload: &str, telemetry: bool, repeats: u64) -> Result<Timed, String> {
    let s = spec(workload, telemetry);
    // One untimed run to warm caches and the page allocator.
    let mut result = s.execute()?;
    let mut wall_us = f64::INFINITY;
    for _ in 0..repeats {
        let t = Instant::now();
        result = s.execute()?;
        wall_us = wall_us.min(t.elapsed().as_secs_f64() * 1e6);
    }
    Ok(Timed { wall_us, result })
}

fn ops_per_sec(r: &RunResult, wall_us: f64) -> f64 {
    if wall_us <= 0.0 {
        0.0
    } else {
        r.instructions as f64 / (wall_us / 1e6)
    }
}

/// The per-phase breakdown: every `*.span.*` summary of the telemetry-on
/// run, with its share of the total span time.
fn phase_breakdown(r: &RunResult) -> Json {
    let spans: Vec<(&str, u64, f64)> = r
        .telemetry
        .summaries()
        .filter(|(name, _)| name.contains(".span."))
        .map(|(name, h)| (name, h.count(), h.mean() * h.count() as f64))
        .collect();
    let total_ns: f64 = spans.iter().map(|(_, _, t)| t).sum();
    Json::Obj(
        spans
            .into_iter()
            .map(|(name, count, ns)| {
                (
                    name.to_owned(),
                    Json::obj([
                        ("count", Json::from(count)),
                        ("total_ms", Json::from(ns / 1e6)),
                        (
                            "share_pct",
                            Json::from(if total_ns > 0.0 {
                                100.0 * ns / total_ns
                            } else {
                                0.0
                            }),
                        ),
                    ]),
                )
            })
            .collect(),
    )
}

fn overhead_pct(off_us: f64, on_us: f64) -> f64 {
    if off_us <= 0.0 {
        0.0
    } else {
        100.0 * (on_us - off_us) / off_us
    }
}

/// Times one workload with periodic checkpointing enabled (telemetry off),
/// for the `checkpoint` section of the result document. Returns the
/// fastest wall time, the run result, the number of checkpoint files
/// left on disk by the final repeat, and the number of checkpoints each
/// run wrote (recovered from the newest checkpoint's op counter).
fn run_timed_checkpointed(
    workload: &str,
    every_ops: u64,
    keep: usize,
    repeats: u64,
) -> Result<(Timed, usize, u64), String> {
    let s = spec(workload, false);
    let dir =
        std::env::temp_dir().join(format!("baryon-sim-throughput-ckpt-{}", std::process::id()));
    // Reset the directory once, before any timing: tearing it down inside
    // the loop made every timed repeat recreate the directory and its
    // checkpoint files cold, charging ~25% of filesystem setup cost to
    // "checkpoint overhead". The run is deterministic, so repeats
    // overwrite the same file names along the same warm path instead.
    let _ = std::fs::remove_dir_all(&dir);
    let mut result = None;
    let mut wall_us = f64::INFINITY;
    let mut files = 0;
    for _ in 0..=repeats {
        // First pass warms caches and populates the directory (untimed),
        // like `run_timed`.
        let t = Instant::now();
        let r = s.execute_with_checkpoints(&dir, every_ops, keep)?;
        if result.is_some() {
            wall_us = wall_us.min(t.elapsed().as_secs_f64() * 1e6);
        }
        files = std::fs::read_dir(&dir).map(|d| d.count()).unwrap_or(0);
        result = Some(r);
    }
    let written =
        baryon_core::checkpoint::Checkpoint::latest_in(&dir, baryon_bench::spec::CHECKPOINT_PREFIX)
            .ok()
            .flatten()
            .and_then(|p| baryon_core::checkpoint::Checkpoint::read_from(&p).ok())
            .map(|c| c.ops / every_ops.max(1))
            .unwrap_or(0);
    let _ = std::fs::remove_dir_all(&dir);
    Ok((
        Timed {
            wall_us,
            result: result.expect("at least one run"),
        },
        files,
        written,
    ))
}

fn fleet_get_u64(doc: &Json, key: &str) -> Option<u64> {
    match doc {
        Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).and_then(|(_, v)| {
            if let Json::U64(n) = v {
                Some(*n)
            } else {
                None
            }
        }),
        _ => None,
    }
}

fn fleet_get_str<'a>(doc: &'a Json, key: &str) -> Option<&'a str> {
    match doc {
        Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).and_then(|(_, v)| {
            if let Json::Str(s) = v {
                Some(s.as_str())
            } else {
                None
            }
        }),
        _ => None,
    }
}

/// The `fleet_submit` figure: wall-clock jobs/sec for trivial single-run
/// specs pushed end to end through a live coordinator — submit, QoS
/// admission, hash-routing, dispatch over HTTP to a real shard process,
/// execution, poll-back, settle. Measures the control plane, not the
/// simulator.
fn fleet_submit_figure() -> Result<Json, String> {
    let journal_root = std::env::temp_dir().join(format!(
        "baryon-sim-throughput-fleet-{}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&journal_root);
    let launcher = harness::self_launcher(2, FLEET_JOBS.max(16))
        .map_err(|e| format!("fleet launcher: {e}"))?;
    let fleet = Fleet::bind(
        FleetConfig {
            port: 0,
            shards: FLEET_SHARDS,
            workers_per_shard: 2,
            shard_queue_depth: FLEET_JOBS.max(16),
            queue_cap: FLEET_JOBS.max(16),
            // The whole burst comes from one client; admission control is
            // not what this figure measures.
            max_in_flight_per_client: FLEET_JOBS,
            journal_root: journal_root.clone(),
        },
        launcher,
    )
    .map_err(|e| format!("fleet bind: {e}"))?;
    let addr = fleet.local_addr();
    let serving = std::thread::spawn(move || fleet.run());
    let client = Client::new(addr).read_timeout(Duration::from_secs(30));

    // Trivial spec: the cheapest meaningful run, so wall time is
    // dominated by coordination rather than simulation.
    let trivial = RunSpec {
        workload: "ycsb-a".to_owned(),
        controller: "simple".to_owned(),
        insts: 2_000,
        warmup: 500,
        scale: SCALE,
        seed: 42,
        mlp: 1,
        telemetry: false,
        threads: 1,
    }
    .to_json()
    .render();

    let outcome = (|| -> Result<f64, String> {
        let t = Instant::now();
        let mut ids = Vec::with_capacity(FLEET_JOBS);
        for _ in 0..FLEET_JOBS {
            let r = client
                .request("POST", "/v1/jobs", Some(&trivial))
                .map_err(|e| format!("fleet submit: {e}"))?;
            if r.status != 202 {
                return Err(format!("fleet submit {}: {}", r.status, r.body));
            }
            let doc = json::parse(&r.body).map_err(|e| format!("202 body: {e}"))?;
            ids.push(fleet_get_u64(&doc, "id").ok_or("202 body has no id")?);
        }
        let deadline = Instant::now() + Duration::from_secs(120);
        for id in ids {
            loop {
                let r = client
                    .request("GET", &format!("/v1/jobs/{id}"), None)
                    .map_err(|e| format!("fleet poll: {e}"))?;
                let doc = json::parse(&r.body).map_err(|e| format!("status body: {e}"))?;
                match fleet_get_str(&doc, "state") {
                    Some("done") => break,
                    Some("failed") => return Err(format!("fleet job {id} failed: {}", r.body)),
                    _ => {}
                }
                if Instant::now() > deadline {
                    return Err(format!("fleet job {id} did not finish: {}", r.body));
                }
                std::thread::sleep(Duration::from_millis(5));
            }
        }
        Ok(t.elapsed().as_secs_f64() * 1e6)
    })();

    let _ = client.request("POST", "/v1/shutdown", None);
    serving
        .join()
        .map_err(|_| "fleet serving thread panicked".to_owned())?
        .map_err(|e| format!("fleet run: {e}"))?;
    let _ = std::fs::remove_dir_all(&journal_root);
    let wall_us = outcome?;
    let jobs_per_sec = FLEET_JOBS as f64 / (wall_us / 1e6);
    println!(
        "fleet_submit  {FLEET_JOBS} trivial jobs over {FLEET_SHARDS} shards: {jobs_per_sec:.1} jobs/s"
    );
    Ok(Json::obj([
        ("shards", Json::from(FLEET_SHARDS as u64)),
        ("jobs", Json::from(FLEET_JOBS as u64)),
        ("wall_us", Json::from(wall_us)),
        ("jobs_per_sec", Json::from(jobs_per_sec)),
    ]))
}

fn out_path() -> PathBuf {
    // crates/fleet -> repository root.
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_sim_throughput.json")
}

fn main() -> ExitCode {
    // This binary doubles as its own fleet shard for the `fleet_submit`
    // section (re-invoked with `--shard`).
    if let Some(code) = harness::maybe_run_shard() {
        return code;
    }
    let budget_pct = env_f64("BARYON_BENCH_MAX_OVERHEAD_PCT", 5.0);
    let repeats = env_u64("BARYON_BENCH_REPEATS", 3).max(1);
    let floor_scale = env_f64("BARYON_BENCH_FLOOR_SCALE", 1.0).max(0.0);

    let mut rows = Vec::new();
    let (mut total_off_us, mut total_on_us) = (0.0_f64, 0.0_f64);
    let mut first_off: Option<Timed> = None;
    let mut floor_failures = Vec::new();
    for (workload, base_floor) in WORKLOADS {
        let off = match run_timed(workload, false, repeats) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("sim_throughput: {workload}: {e}");
                return ExitCode::FAILURE;
            }
        };
        let on = match run_timed(workload, true, repeats) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("sim_throughput: {workload}: {e}");
                return ExitCode::FAILURE;
            }
        };
        total_off_us += off.wall_us;
        total_on_us += on.wall_us;
        if first_off.is_none() {
            first_off = Some(Timed {
                wall_us: off.wall_us,
                result: off.result.clone(),
            });
        }
        let oh = overhead_pct(off.wall_us, on.wall_us);
        let off_ops = ops_per_sec(&off.result, off.wall_us);
        let floor = base_floor * floor_scale;
        let floor_pass = off_ops >= floor;
        if !floor_pass {
            floor_failures.push(format!(
                "{workload}: {off_ops:.0} ops/s below floor {floor:.0}"
            ));
        }
        println!(
            "{workload:<12} off {off_ops:>9.0} ops/s  on {:>9.0} ops/s  overhead {oh:+.2}%  floor {floor:>9.0} [{}]",
            ops_per_sec(&on.result, on.wall_us),
            if floor_pass { "ok" } else { "FAIL" },
        );
        rows.push(Json::obj([
            ("workload", Json::from(workload)),
            ("instructions", Json::from(off.result.instructions)),
            ("floor_ops_per_sec", Json::from(floor)),
            ("floor_pass", Json::Bool(floor_pass)),
            (
                "telemetry_off",
                Json::obj([
                    ("wall_us", Json::from(off.wall_us)),
                    (
                        "ops_per_sec",
                        Json::from(ops_per_sec(&off.result, off.wall_us)),
                    ),
                ]),
            ),
            (
                "telemetry_on",
                Json::obj([
                    ("wall_us", Json::from(on.wall_us)),
                    (
                        "ops_per_sec",
                        Json::from(ops_per_sec(&on.result, on.wall_us)),
                    ),
                ]),
            ),
            ("overhead_pct", Json::from(oh)),
            ("phases", phase_breakdown(&on.result)),
        ]));
    }

    // Checkpoint overhead: the first workload once more with periodic
    // checkpointing, against its plain telemetry-off timing. The result
    // must be bit-identical — checkpointing observes the run, it never
    // perturbs it — so a mismatch is a hard failure, not a statistic.
    let ckpt_every = env_u64("BARYON_BENCH_CHECKPOINT_EVERY", 25_000);
    let ckpt_keep = 2;
    let (ckpt, ckpt_files, ckpt_written) =
        match run_timed_checkpointed(WORKLOADS[0].0, ckpt_every, ckpt_keep, repeats) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("sim_throughput: checkpointed {}: {e}", WORKLOADS[0].0);
                return ExitCode::FAILURE;
            }
        };
    let baseline = first_off.expect("at least one workload timed");
    if ckpt.result != baseline.result {
        eprintln!(
            "sim_throughput: checkpointed run of {} diverged from the plain run",
            WORKLOADS[0].0
        );
        return ExitCode::FAILURE;
    }
    let ckpt_oh = overhead_pct(baseline.wall_us, ckpt.wall_us);
    // The relative overhead is dominated by the bench's deliberately
    // extreme cadence (a full state snapshot every few milliseconds of
    // host time); the cost per checkpoint is the portable number.
    let per_ckpt_ms = if ckpt_written > 0 {
        (ckpt.wall_us - baseline.wall_us) / 1e3 / ckpt_written as f64
    } else {
        0.0
    };
    println!(
        "{:<12} checkpointing every {ckpt_every} ops: {:>9.0} ops/s  overhead {ckpt_oh:+.2}%  \
         ({ckpt_written} snapshots, {per_ckpt_ms:.2} ms each, {ckpt_files} files kept)",
        WORKLOADS[0].0,
        ops_per_sec(&ckpt.result, ckpt.wall_us),
    );
    let checkpoint_doc = Json::obj([
        ("workload", Json::from(WORKLOADS[0].0)),
        ("every_ops", Json::from(ckpt_every)),
        ("keep", Json::from(ckpt_keep as u64)),
        ("wall_us", Json::from(ckpt.wall_us)),
        (
            "ops_per_sec",
            Json::from(ops_per_sec(&ckpt.result, ckpt.wall_us)),
        ),
        ("overhead_pct", Json::from(ckpt_oh)),
        ("checkpoints_written", Json::from(ckpt_written)),
        ("per_checkpoint_ms", Json::from(per_ckpt_ms)),
        ("files_on_disk", Json::from(ckpt_files as u64)),
        ("result_matches", Json::Bool(true)),
    ]);

    // Control-plane throughput: trivial jobs through a live coordinator
    // over real shard processes.
    let fleet_doc = match fleet_submit_figure() {
        Ok(doc) => doc,
        Err(e) => {
            eprintln!("sim_throughput: fleet_submit: {e}");
            return ExitCode::FAILURE;
        }
    };

    let aggregate_pct = overhead_pct(total_off_us, total_on_us);
    let pass = aggregate_pct <= budget_pct && floor_failures.is_empty();
    let doc = Json::obj([
        ("bench", Json::from("sim_throughput")),
        ("controller", Json::from("baryon")),
        ("scale", Json::from(SCALE)),
        ("insts", Json::from(INSTS)),
        ("warmup", Json::from(WARMUP)),
        ("repeats", Json::from(repeats)),
        ("max_overhead_pct", Json::from(budget_pct)),
        ("floor_scale", Json::from(floor_scale)),
        ("aggregate_overhead_pct", Json::from(aggregate_pct)),
        ("pass", Json::from(pass)),
        ("checkpoint", checkpoint_doc),
        ("fleet_submit", fleet_doc),
        ("workloads", Json::Arr(rows)),
    ]);

    let path = out_path();
    let mut body = doc.render();
    body.push('\n');
    // Atomic (temp file + rename) so a crash mid-write never leaves a
    // torn result document for CI to misread.
    if let Err(e) = atomic_write(&path, body.as_bytes()) {
        eprintln!("sim_throughput: cannot write {}: {e}", path.display());
        return ExitCode::FAILURE;
    }
    println!(
        "aggregate overhead {aggregate_pct:+.2}% (budget {budget_pct}%) -> {}",
        path.display()
    );
    let mut failed = false;
    if aggregate_pct > budget_pct {
        eprintln!(
            "sim_throughput: telemetry overhead {aggregate_pct:.2}% exceeds budget {budget_pct}%"
        );
        failed = true;
    }
    for f in &floor_failures {
        eprintln!("sim_throughput: regression: {f}");
        failed = true;
    }
    if failed {
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

//! `chaos_gate` — the fleet degradation-ladder CI gate.
//!
//! Runs the fleet under *aggressive* seeded fault injection
//! ([`baryon_sim::faultfs`], enabled on every shard via the launcher's
//! environment, never in the coordinator) and proves the graceful-
//! degradation ladder end to end:
//!
//! 1. compute clean goldens in-process (chaos is per-process and this
//!    process sets no `BARYON_CHAOS_*` variables),
//! 2. boot a coordinator over 3 worker shards, each with hostile-disk and
//!    lying-shard injection: torn/failed journal appends, silent
//!    post-write corruption, read flips, fsync failures, and post-CRC
//!    response-body flips,
//! 3. force one shard into a crash loop until its crash-loop budget
//!    (`BARYON_FLEET_QUARANTINE_AFTER=2`) quarantines it with singles in
//!    flight — they must fail over to healthy shards and still settle
//!    byte-identical to the clean run (`fleet.shards.quarantined`,
//!    `fleet.cells.failover`),
//! 4. rot every checkpoint rotation member of an in-flight run on a
//!    healthy shard, crash that shard once, and require the resumed
//!    incarnation to quarantine the rotten rungs and descend the fallback
//!    ladder to a cold run (`shard<k>.serve.ckpt.quarantined`), again
//!    byte-identical,
//! 5. run an 8-cell sweep over the degraded fleet (one shard out of
//!    rotation, chaos still live) and require the gathered document to be
//!    byte-identical to the golden, with zero failed jobs,
//! 6. require the coordinator to have rejected at least one corrupt shard
//!    reply along the way (`fleet.shard.reply_errors`).
//!
//! Every rate knob and the seed come from the environment when set
//! (`BARYON_CHAOS_SEED`, `BARYON_CHAOS_*_PPM`) so a failure reproduces
//! exactly; the defaults below are the CI configuration.
//!
//! ```text
//! cargo run --release -p baryon-fleet --bin chaos_gate
//! ```

use baryon_bench::spec::{GridSpec, JobSpec, RunSpec};
use baryon_fleet::coordinator::{Fleet, FleetConfig, FleetController};
use baryon_fleet::harness;
use baryon_fleet::shard::route;
use baryon_serve::client::Client;
use baryon_sim::json::{self, Json};
use std::net::SocketAddr;
use std::path::Path;
use std::process::ExitCode;
use std::time::{Duration, Instant};

const SHARDS: usize = 3;
const POLL: Duration = Duration::from_millis(10);
const DEADLINE: Duration = Duration::from_secs(240);

/// The default (CI) chaos configuration: aggressive enough that every
/// rung of the ladder is exercised in one run, convergent enough that
/// retries always make progress. Overridable knob by knob from the
/// caller's environment.
const CHAOS_KNOBS: &[(&str, &str)] = &[
    ("BARYON_CHAOS_SEED", "42"),
    ("BARYON_CHAOS_WRITE_FAIL_PPM", "20000"),
    ("BARYON_CHAOS_ENOSPC_PPM", "10000"),
    ("BARYON_CHAOS_FSYNC_FAIL_PPM", "20000"),
    ("BARYON_CHAOS_CORRUPT_PPM", "20000"),
    ("BARYON_CHAOS_READ_FLIP_PPM", "20000"),
    ("BARYON_CHAOS_RESPONSE_CORRUPT_PPM", "30000"),
];

/// The 8-cell sweep, run over the fleet after one shard is quarantined.
fn gate_grid() -> GridSpec {
    GridSpec {
        workloads: vec![
            "505.mcf_r".into(),
            "557.xz_r".into(),
            "pr.twi".into(),
            "ycsb-a".into(),
        ],
        controllers: vec!["simple".into(), "baryon".into()],
        base: RunSpec {
            insts: 250_000,
            warmup: 20_000,
            scale: 1024,
            seed: 13,
            ..RunSpec::default()
        },
    }
}

/// The single used to load the crash-looping shard (short enough to keep
/// the gate fast, long enough to still be in flight when the quarantine
/// lands).
fn failover_spec() -> RunSpec {
    RunSpec {
        insts: 400_000,
        warmup: 20_000,
        scale: 1024,
        seed: 17,
        ..RunSpec::default()
    }
}

/// The single whose checkpoints get rotted on disk (long enough that it
/// is reliably mid-run, with rotation members on disk, when its shard is
/// crashed).
fn ladder_spec() -> RunSpec {
    RunSpec {
        insts: 900_000,
        warmup: 20_000,
        scale: 1024,
        seed: 19,
        ..RunSpec::default()
    }
}

fn obj_get<'a>(doc: &'a Json, key: &str) -> Option<&'a Json> {
    match doc {
        Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
        _ => None,
    }
}

fn get_u64(doc: &Json, key: &str) -> Option<u64> {
    match obj_get(doc, key)? {
        Json::U64(n) => Some(*n),
        _ => None,
    }
}

fn get_str<'a>(doc: &'a Json, key: &str) -> Option<&'a str> {
    match obj_get(doc, key)? {
        Json::Str(s) => Some(s.as_str()),
        _ => None,
    }
}

fn client(addr: SocketAddr) -> Client {
    Client::new(addr).read_timeout(Duration::from_secs(60))
}

/// A `fleet./shard<i>.` counter from `/v1/metrics` (0 when absent — a
/// quarantined shard's namespace disappears from the scrape).
fn counter(addr: SocketAddr, key: &str) -> Result<u64, String> {
    let r = client(addr)
        .request("GET", "/v1/metrics", None)
        .map_err(|e| format!("metrics: {e}"))?;
    if r.status != 200 {
        return Err(format!("metrics {}: {}", r.status, r.body));
    }
    let doc = json::parse(&r.body).map_err(|e| format!("metrics not JSON ({e}): {}", r.body))?;
    let counters = obj_get(&doc, "counters").unwrap_or(&doc);
    Ok(get_u64(counters, key).unwrap_or(0))
}

/// Polls a counter until `predicate` holds or `within` elapses; returns
/// the last observed value either way.
fn await_counter(
    addr: SocketAddr,
    key: &str,
    within: Duration,
    predicate: impl Fn(u64) -> bool,
) -> Result<u64, String> {
    let deadline = Instant::now() + within;
    loop {
        let value = counter(addr, key)?;
        if predicate(value) || Instant::now() > deadline {
            return Ok(value);
        }
        std::thread::sleep(Duration::from_millis(100));
    }
}

/// POSTs a job, returning its fleet id.
fn submit(addr: SocketAddr, body: &str, what: &str) -> Result<u64, String> {
    let accepted = client(addr)
        .request("POST", "/v1/jobs", Some(body))
        .map_err(|e| format!("{what} submit: {e}"))?;
    if accepted.status != 202 {
        return Err(format!(
            "{what} submit {}: {}",
            accepted.status, accepted.body
        ));
    }
    let doc = json::parse(&accepted.body).map_err(|e| format!("202 body not JSON: {e}"))?;
    get_u64(&doc, "id").ok_or_else(|| format!("{what}: 202 body has no id"))
}

/// Polls the fleet job until `predicate` holds on its status document.
fn await_status(
    addr: SocketAddr,
    id: u64,
    what: &str,
    predicate: impl Fn(&Json) -> bool,
) -> Result<Json, String> {
    let deadline = Instant::now() + DEADLINE;
    loop {
        let r = client(addr)
            .request("GET", &format!("/v1/jobs/{id}"), None)
            .map_err(|e| format!("job status: {e}"))?;
        if r.status != 200 {
            return Err(format!("job status {}: {}", r.status, r.body));
        }
        let doc = json::parse(&r.body).map_err(|e| format!("status not JSON ({e}): {}", r.body))?;
        if predicate(&doc) {
            return Ok(doc);
        }
        if let Some("failed") = get_str(&doc, "state") {
            return Err(format!("job failed while waiting for {what}: {}", r.body));
        }
        if Instant::now() > deadline {
            return Err(format!("timed out waiting for {what}: {}", r.body));
        }
        std::thread::sleep(POLL);
    }
}

/// Awaits a done job and checks its result renders exactly as `golden`.
fn await_identical(addr: SocketAddr, id: u64, golden: &str, what: &str) -> Result<(), String> {
    let status = await_status(addr, id, &format!("{what} completion"), |doc| {
        get_str(doc, "state") == Some("done")
    })?;
    let result =
        obj_get(&status, "result").ok_or_else(|| format!("{what}: done without result"))?;
    if result.render() != golden {
        return Err(format!(
            "{what} diverged from the clean run\n  golden: {golden}\n  chaos:  {}",
            result.render()
        ));
    }
    Ok(())
}

/// Flips one bit in every checkpoint rotation member under the shard's
/// journal directory (the parent's filesystem view is clean — this is
/// the deterministic "disk rotted at rest" event). Returns how many
/// files were rotted.
fn rot_checkpoints(shard_journal: &Path) -> Result<usize, String> {
    let mut rotted = 0;
    let entries = std::fs::read_dir(shard_journal)
        .map_err(|e| format!("read {}: {e}", shard_journal.display()))?;
    for entry in entries.flatten() {
        let dir = entry.path();
        let is_ckpt_dir = dir.is_dir()
            && entry
                .file_name()
                .to_str()
                .is_some_and(|n| n.starts_with("ckpt-"));
        if !is_ckpt_dir {
            continue;
        }
        for member in std::fs::read_dir(&dir)
            .map_err(|e| format!("read {}: {e}", dir.display()))?
            .flatten()
        {
            let path = member.path();
            if path.extension().is_none_or(|ext| ext != "ckpt") {
                continue;
            }
            let mut bytes =
                std::fs::read(&path).map_err(|e| format!("read {}: {e}", path.display()))?;
            if bytes.is_empty() {
                continue;
            }
            let mid = bytes.len() / 2;
            bytes[mid] ^= 0x10;
            std::fs::write(&path, &bytes).map_err(|e| format!("write {}: {e}", path.display()))?;
            rotted += 1;
        }
    }
    Ok(rotted)
}

/// Waits until the shard's journal holds at least one checkpoint
/// rotation member for some in-flight run.
fn await_checkpoint_on_disk(shard_journal: &Path) -> Result<(), String> {
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        if let Ok(entries) = std::fs::read_dir(shard_journal) {
            for entry in entries.flatten() {
                let dir = entry.path();
                let named_ckpt = entry
                    .file_name()
                    .to_str()
                    .is_some_and(|n| n.starts_with("ckpt-"));
                if !dir.is_dir() || !named_ckpt {
                    continue;
                }
                let has_member = std::fs::read_dir(&dir).is_ok_and(|members| {
                    members
                        .flatten()
                        .any(|m| m.path().extension().is_some_and(|ext| ext == "ckpt"))
                });
                if has_member {
                    return Ok(());
                }
            }
        }
        if Instant::now() > deadline {
            return Err(format!(
                "no checkpoint appeared under {}",
                shard_journal.display()
            ));
        }
        std::thread::sleep(POLL);
    }
}

/// Phase: crash-loop one shard past its quarantine budget with singles
/// in flight on it; every single must fail over and settle identical to
/// `golden`. Returns the quarantined shard's index.
fn crash_loop_phase(
    addr: SocketAddr,
    controller: &FleetController,
    golden: &str,
) -> Result<usize, String> {
    let body = JobSpec::Run(failover_spec()).to_json().render();
    // Submit a batch of identical singles and crash-loop whichever shard
    // the routing hash loaded heaviest — by pigeonhole it holds at least
    // 4, so the quarantine reliably catches cells in flight (the rest
    // land on other shards and just run).
    let ids: Vec<u64> = (0..10)
        .map(|_| submit(addr, &body, "failover single"))
        .collect::<Result<_, _>>()?;
    let mut per_shard = [0usize; SHARDS];
    for &id in &ids {
        per_shard[route(id, SHARDS)] += 1;
    }
    let victim = (0..SHARDS)
        .max_by_key(|&s| per_shard[s])
        .expect("SHARDS > 0");
    for &id in &ids {
        await_status(addr, id, "single dispatch", |doc| {
            matches!(get_str(doc, "state"), Some("running" | "done"))
        })?;
    }

    // Two rapid kills: the first respawns (crash recovery), the second
    // exhausts the budget of 2 and quarantines the shard.
    let restarts_before = controller.restarts();
    controller
        .kill_shard(victim)
        .map_err(|e| format!("kill shard {victim}: {e}"))?;
    let deadline = Instant::now() + Duration::from_secs(30);
    while controller.restarts() <= restarts_before {
        if Instant::now() > deadline {
            return Err(format!("shard {victim} was never respawned"));
        }
        std::thread::sleep(POLL);
    }
    controller
        .kill_shard(victim)
        .map_err(|e| format!("re-kill shard {victim}: {e}"))?;
    let deadline = Instant::now() + Duration::from_secs(30);
    while !controller.shard_is_quarantined(victim) {
        if Instant::now() > deadline {
            return Err(format!("shard {victim} was never quarantined"));
        }
        std::thread::sleep(POLL);
    }
    println!("shard {victim} quarantined after exhausting its crash-loop budget");

    let failover = await_counter(addr, "fleet.cells.failover", Duration::from_secs(10), |n| {
        n >= 1
    })?;
    if failover == 0 {
        return Err("quarantine caught no cells in flight (fleet.cells.failover is 0)".into());
    }
    for &id in &ids {
        await_identical(addr, id, golden, &format!("failed-over single {id}"))?;
    }
    println!(
        "{} singles settled byte-identical through the quarantine ({failover} failed over)",
        ids.len()
    );
    Ok(victim)
}

/// Phase: rot every checkpoint of an in-flight run at rest, crash its
/// (healthy) shard once, and require the respawned incarnation to
/// quarantine the rotten rungs and descend to a cold run. Chaos can eat
/// the shard's journal record (the run then restarts cold without ever
/// touching the rotten checkpoints), so the phase retries with a fresh
/// run until the `serve.ckpt.quarantined` counter moves.
fn ladder_phase(
    addr: SocketAddr,
    controller: &FleetController,
    journal_root: &Path,
    victim: usize,
    golden: &str,
) -> Result<(), String> {
    let body = JobSpec::Run(ladder_spec()).to_json().render();
    for attempt in 0..4 {
        if attempt > 0 {
            // Let the respawn window lapse so the single crash below
            // never eats into the quarantine budget across attempts.
            std::thread::sleep(Duration::from_secs(11));
        }
        // Land a run on any still-healthy shard.
        let id = loop {
            let id = submit(addr, &body, "ladder single")?;
            if route(id, SHARDS) != victim {
                break id;
            }
            await_identical(addr, id, golden, "rerouted ladder single")?;
        };
        let shard = route(id, SHARDS);
        let shard_journal = journal_root.join(format!("shard{shard}"));
        await_status(addr, id, "ladder dispatch", |doc| {
            get_str(doc, "state") == Some("running")
        })?;
        await_checkpoint_on_disk(&shard_journal)?;

        // Freeze the shard (pause blocks the supervisor's respawn), rot
        // the rotation on disk, then let it come back and resume.
        let before = counter(addr, &format!("shard{shard}.serve.ckpt.quarantined"))?;
        controller.pause_shard(shard);
        controller
            .kill_shard(shard)
            .map_err(|e| format!("kill shard {shard}: {e}"))?;
        let rotted = rot_checkpoints(&shard_journal)?;
        controller.unpause_shard(shard);
        await_identical(addr, id, golden, "ladder single")?;
        let after = await_counter(
            addr,
            &format!("shard{shard}.serve.ckpt.quarantined"),
            Duration::from_secs(10),
            |n| n > before,
        )?;
        if after > before {
            println!(
                "shard {shard} quarantined {} rotten checkpoint(s) ({rotted} rotted on disk) \
                 and the run still settled byte-identical",
                after - before
            );
            return Ok(());
        }
        println!(
            "attempt {attempt}: chaos ate the journal record before resume ({rotted} rotted); \
             retrying with a fresh run"
        );
    }
    Err("checkpoint ladder never engaged (serve.ckpt.quarantined never moved)".into())
}

fn run_gate() -> Result<(), String> {
    let journal_root =
        std::env::temp_dir().join(format!("baryon-chaos-gate-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&journal_root);

    // Clean goldens first: this process never sets BARYON_CHAOS_* for
    // itself, so these are fault-free.
    let grid = gate_grid();
    let grid_golden = JobSpec::Grid(grid.clone())
        .execute()
        .map_err(|e| format!("grid golden: {e}"))?
        .render();
    let failover_golden = JobSpec::Run(failover_spec())
        .execute()
        .map_err(|e| format!("failover golden: {e}"))?
        .render();
    let ladder_golden = JobSpec::Run(ladder_spec())
        .execute()
        .map_err(|e| format!("ladder golden: {e}"))?
        .render();

    // Chaos rides into the shards on the launcher environment; the knobs
    // honor the caller's values so failures reproduce exactly.
    std::env::set_var("BARYON_SERVE_CHECKPOINT_EVERY", "10000");
    std::env::set_var("BARYON_FLEET_QUARANTINE_AFTER", "2");
    let mut launcher = harness::self_launcher(1, 16).map_err(|e| format!("launcher: {e}"))?;
    for (name, default) in CHAOS_KNOBS {
        let value = std::env::var(name).unwrap_or_else(|_| (*default).to_owned());
        launcher.extra_env.push(((*name).to_owned(), value));
    }

    let fleet = Fleet::bind(
        FleetConfig {
            port: 0,
            shards: SHARDS,
            workers_per_shard: 1,
            shard_queue_depth: 16,
            queue_cap: 64,
            max_in_flight_per_client: 64,
            journal_root: journal_root.clone(),
        },
        launcher,
    )
    .map_err(|e| format!("fleet bind: {e}"))?;
    let addr = fleet.local_addr();
    let controller = fleet.controller();
    let serving = std::thread::spawn(move || fleet.run());

    let outcome = (|| -> Result<(), String> {
        let victim = crash_loop_phase(addr, &controller, &failover_golden)?;
        ladder_phase(addr, &controller, &journal_root, victim, &ladder_golden)?;

        // The 8-cell sweep over the degraded fleet: one shard out of
        // rotation, disk and response chaos still live on the survivors.
        let sweep_body = JobSpec::Grid(grid.clone()).to_json().render();
        let sweep = submit(addr, &sweep_body, "sweep")?;
        let status = await_status(addr, sweep, "sweep completion", |doc| {
            get_str(doc, "state") == Some("done")
        })?;
        let result = obj_get(&status, "result").ok_or("done sweep has no result")?;
        if result.render() != grid_golden {
            return Err(format!(
                "chaos sweep diverged from the clean run\n  golden: {grid_golden}\n  chaos:  {}",
                result.render()
            ));
        }
        println!("8-cell sweep over the degraded fleet matches the clean run byte-for-byte");

        // Ladder bookkeeping: every degradation counter fired, nothing
        // was lost.
        if counter(addr, "fleet.jobs.failed")? != 0 {
            return Err("jobs were lost under chaos (fleet.jobs.failed != 0)".into());
        }
        if controller.quarantined_shards() != 1 {
            return Err(format!(
                "expected exactly 1 quarantined shard, have {}",
                controller.quarantined_shards()
            ));
        }
        let reply_errors = counter(addr, "fleet.shard.reply_errors")?;
        if reply_errors == 0 {
            return Err("no corrupt shard reply was ever rejected (reply_errors is 0)".into());
        }
        println!("coordinator rejected {reply_errors} corrupt shard replies");

        let r = client(addr)
            .request("POST", "/v1/shutdown", None)
            .map_err(|e| format!("shutdown: {e}"))?;
        if r.status != 200 {
            return Err(format!("shutdown {}: {}", r.status, r.body));
        }
        Ok(())
    })();

    if outcome.is_err() {
        let _ = client(addr).request("POST", "/v1/shutdown", None);
    }
    serving
        .join()
        .map_err(|_| "serving thread panicked".to_owned())?
        .map_err(|e| format!("fleet run: {e}"))?;
    outcome?;

    let _ = std::fs::remove_dir_all(&journal_root);
    println!(
        "chaos gate OK: crash-looped shard quarantined with live failover, rotten checkpoints \
         quarantined down the fallback ladder, and an 8-cell sweep under aggressive disk+response \
         chaos lost zero jobs and gathered byte-identically"
    );
    Ok(())
}

fn main() -> ExitCode {
    if let Some(code) = harness::maybe_run_shard() {
        return code;
    }
    match run_gate() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("chaos gate failed: {e}");
            ExitCode::FAILURE
        }
    }
}

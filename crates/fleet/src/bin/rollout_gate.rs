//! `rollout_gate` — the fleet config-rollout CI gate.
//!
//! Proves the A/B rollout invariants end to end, across real process
//! boundaries, with a sweep in flight:
//!
//! 1. compute the golden result of a grid sweep in-process,
//! 2. boot a coordinator over 3 worker shards (this binary re-invoked in
//!    `--shard` mode),
//! 3. reject an **invalid** policy at stage time (`400 invalid_config`),
//! 4. submit the sweep; once it is demonstrably mid-flight, stage a
//!    **degraded but valid** policy (a 1 ms job deadline) and commit —
//!    the first shard's canary must fail and the fleet must auto-roll
//!    back (`409 rollout_failed`, slot marked bad, rollback counted),
//! 5. require the sweep to finish with **zero lost jobs** and a result
//!    **byte-identical** to the single-process run,
//! 6. require `/v1/metrics` to expose `fleet.config.generation`,
//!    `fleet.config.rollbacks`, and per-shard respawn-backoff gauges,
//! 7. commit a **benign** policy: the rolling restart must succeed, the
//!    generation must bump, results must be stamped with it, and every
//!    shard must report `serve.policy.generation`,
//! 8. roll back: the fleet returns to the baseline and results lose the
//!    stamp,
//! 9. commit a generous 15 s job deadline (generation 3), then commit a
//!    further candidate with a healthy run in flight and an unbounded
//!    run that trips the deadline mid-roll: the failure regression must
//!    auto-roll the commit back, and the healthy run's mid-roll result
//!    must be **quarantined** (`fleet.config.quarantined_results`),
//!    re-dispatched under the restored generation, and settle
//!    byte-identical to a clean run of the same spec.
//!
//! ```text
//! cargo run --release -p baryon-fleet --bin rollout_gate
//! ```
//!
//! Exits non-zero with a diagnostic on any divergence; `scripts/ci.sh`
//! runs it as the fleet-ops e2e gate.

use baryon_bench::spec::{GridSpec, JobSpec, RunSpec};
use baryon_fleet::coordinator::{Fleet, FleetConfig};
use baryon_fleet::harness;
use baryon_serve::client::Client;
use baryon_sim::json::{self, Json};
use std::net::SocketAddr;
use std::process::ExitCode;
use std::time::{Duration, Instant};

const SHARDS: usize = 3;
const POLL: Duration = Duration::from_millis(10);
const DEADLINE: Duration = Duration::from_secs(180);

/// The sweep: 8 cells over 3 shards, long enough that the degraded
/// commit demonstrably begins while cells are still in flight.
fn gate_grid() -> GridSpec {
    GridSpec {
        workloads: vec![
            "505.mcf_r".into(),
            "557.xz_r".into(),
            "pr.twi".into(),
            "ycsb-a".into(),
        ],
        controllers: vec!["simple".into(), "baryon".into()],
        base: RunSpec {
            insts: 150_000,
            warmup: 15_000,
            scale: 1024,
            seed: 11,
            ..RunSpec::default()
        },
    }
}

fn obj_get<'a>(doc: &'a Json, key: &str) -> Option<&'a Json> {
    match doc {
        Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
        _ => None,
    }
}

fn get_u64(doc: &Json, key: &str) -> Option<u64> {
    match obj_get(doc, key)? {
        Json::U64(n) => Some(*n),
        _ => None,
    }
}

fn get_str<'a>(doc: &'a Json, key: &str) -> Option<&'a str> {
    match obj_get(doc, key)? {
        Json::Str(s) => Some(s.as_str()),
        _ => None,
    }
}

fn client(addr: SocketAddr) -> Client {
    Client::new(addr).read_timeout(Duration::from_secs(120))
}

/// Polls the fleet job until `predicate` holds on its status document.
fn await_status(
    addr: SocketAddr,
    id: u64,
    what: &str,
    predicate: impl Fn(&Json) -> bool,
) -> Result<Json, String> {
    let deadline = Instant::now() + DEADLINE;
    loop {
        let r = client(addr)
            .request("GET", &format!("/v1/jobs/{id}"), None)
            .map_err(|e| format!("job status: {e}"))?;
        if r.status != 200 {
            return Err(format!("job status {}: {}", r.status, r.body));
        }
        let doc = json::parse(&r.body).map_err(|e| format!("status not JSON ({e}): {}", r.body))?;
        if predicate(&doc) {
            return Ok(doc);
        }
        if let Some("failed") = get_str(&doc, "state") {
            return Err(format!("job failed while waiting for {what}: {}", r.body));
        }
        if Instant::now() > deadline {
            return Err(format!("timed out waiting for {what}: {}", r.body));
        }
        std::thread::sleep(POLL);
    }
}

/// Submits a single run and returns its settled `result` document.
fn run_single(addr: SocketAddr, what: &str) -> Result<Json, String> {
    const RUN: &str = r#"{"workload":"ycsb-a","controller":"baryon","insts":50000,"warmup":5000,"scale":1024,"seed":13}"#;
    let accepted = client(addr)
        .request("POST", "/v1/jobs", Some(RUN))
        .map_err(|e| format!("{what} submit: {e}"))?;
    if accepted.status != 202 {
        return Err(format!(
            "{what} submit {}: {}",
            accepted.status, accepted.body
        ));
    }
    let doc = json::parse(&accepted.body).map_err(|e| format!("202 body not JSON: {e}"))?;
    let id = get_u64(&doc, "id").ok_or("202 body has no id")?;
    let status = await_status(addr, id, what, |doc| get_str(doc, "state") == Some("done"))?;
    obj_get(&status, "result")
        .cloned()
        .ok_or_else(|| format!("{what}: done job has no result"))
}

/// Submits a single run and returns its job id without waiting for it.
fn submit_single(addr: SocketAddr, spec: &str, what: &str) -> Result<u64, String> {
    let accepted = client(addr)
        .request("POST", "/v1/jobs", Some(spec))
        .map_err(|e| format!("{what} submit: {e}"))?;
    if accepted.status != 202 {
        return Err(format!(
            "{what} submit {}: {}",
            accepted.status, accepted.body
        ));
    }
    let doc = json::parse(&accepted.body).map_err(|e| format!("202 body not JSON: {e}"))?;
    get_u64(&doc, "id").ok_or_else(|| format!("{what}: 202 body has no id"))
}

/// Reads one counter out of `/v1/metrics` (0 when it has not fired yet).
fn counter(addr: SocketAddr, key: &str) -> Result<u64, String> {
    let r = client(addr)
        .request("GET", "/v1/metrics", None)
        .map_err(|e| format!("metrics: {e}"))?;
    if r.status != 200 {
        return Err(format!("metrics {}: {}", r.status, r.body));
    }
    let doc = json::parse(&r.body).map_err(|e| format!("metrics not JSON ({e}): {}", r.body))?;
    let counters = obj_get(&doc, "counters").unwrap_or(&doc);
    Ok(get_u64(counters, key).unwrap_or(0))
}

/// The `GET /v1/admin/config` document.
fn admin_config(addr: SocketAddr) -> Result<Json, String> {
    let r = client(addr)
        .request("GET", "/v1/admin/config", None)
        .map_err(|e| format!("admin config: {e}"))?;
    if r.status != 200 {
        return Err(format!("admin config {}: {}", r.status, r.body));
    }
    json::parse(&r.body).map_err(|e| format!("admin config not JSON ({e}): {}", r.body))
}

fn active_generation(addr: SocketAddr) -> Result<u64, String> {
    let doc = admin_config(addr)?;
    get_u64(&doc, "active_generation").ok_or_else(|| format!("no active_generation: {doc:?}"))
}

fn run_gate() -> Result<(), String> {
    let journal_root =
        std::env::temp_dir().join(format!("baryon-rollout-gate-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&journal_root);

    let grid = gate_grid();
    let cells = grid.expand().len();
    let golden = JobSpec::Grid(grid.clone())
        .execute()
        .map_err(|e| format!("golden run: {e}"))?
        .render();

    let launcher = harness::self_launcher(1, 16).map_err(|e| format!("launcher: {e}"))?;
    let fleet = Fleet::bind(
        FleetConfig {
            port: 0,
            shards: SHARDS,
            workers_per_shard: 1,
            shard_queue_depth: 16,
            queue_cap: 64,
            max_in_flight_per_client: 4,
            journal_root: journal_root.clone(),
        },
        launcher,
    )
    .map_err(|e| format!("fleet bind: {e}"))?;
    let addr = fleet.local_addr();
    let serving = std::thread::spawn(move || fleet.run());

    let outcome = (|| -> Result<(), String> {
        // An invalid policy must be refused at stage time with the typed
        // code — nothing reaches the slots.
        let r = client(addr)
            .request("POST", "/v1/admin/config/stage", Some(r#"{"commit_k":-1}"#))
            .map_err(|e| format!("invalid stage: {e}"))?;
        if r.status != 400 || !r.body.contains("invalid_config") {
            return Err(format!("invalid stage got {}: {}", r.status, r.body));
        }
        if active_generation(addr)? != 0 {
            return Err("an invalid stage moved the active generation".to_owned());
        }

        // Submit the sweep and wait until it is demonstrably mid-flight.
        let body = JobSpec::Grid(grid).to_json().render();
        let accepted = client(addr)
            .request("POST", "/v1/jobs", Some(&body))
            .map_err(|e| format!("submit: {e}"))?;
        if accepted.status != 202 {
            return Err(format!("submit {}: {}", accepted.status, accepted.body));
        }
        let accepted_doc =
            json::parse(&accepted.body).map_err(|e| format!("202 body not JSON: {e}"))?;
        let id = get_u64(&accepted_doc, "id").ok_or("202 body has no id")?;
        await_status(addr, id, "the mid-sweep rollout window", |doc| {
            get_u64(doc, "cells_done").is_some_and(|d| d >= 1 && d < cells as u64)
                && get_str(doc, "state") == Some("running")
        })?;

        // Stage a degraded-but-valid policy: a 1 ms job deadline passes
        // validation but fails every real run. Commit must hit the first
        // shard's canary, auto-roll the fleet back, and answer 409.
        let r = client(addr)
            .request(
                "POST",
                "/v1/admin/config/stage",
                Some(r#"{"job_deadline_ms":1}"#),
            )
            .map_err(|e| format!("degraded stage: {e}"))?;
        if r.status != 200 {
            return Err(format!("degraded stage {}: {}", r.status, r.body));
        }
        println!("staged degraded config mid-sweep; committing");
        let r = client(addr)
            .request("POST", "/v1/admin/config/commit", None)
            .map_err(|e| format!("degraded commit: {e}"))?;
        if r.status != 409 || !r.body.contains("rollout_failed") {
            return Err(format!(
                "degraded commit should roll back with 409 rollout_failed, got {}: {}",
                r.status, r.body
            ));
        }
        println!("degraded commit auto-rolled back: {}", r.body);
        let config = admin_config(addr)?;
        if get_u64(&config, "active_generation") != Some(0) {
            return Err(format!("rollback left the wrong generation: {config:?}"));
        }
        let failed_slot = obj_get(&config, "last_failed").ok_or("no last_failed record")?;
        if get_u64(failed_slot, "generation") != Some(1) {
            return Err(format!("last_failed should name generation 1: {config:?}"));
        }
        if get_u64(&config, "rollbacks") != Some(1) {
            return Err(format!("expected exactly one rollback: {config:?}"));
        }

        // The sweep must finish with zero lost jobs and a byte-identical
        // gathered document.
        let status = await_status(addr, id, "completion", |doc| {
            get_str(doc, "state") == Some("done")
        })?;
        let result = obj_get(&status, "result").ok_or("done job has no result")?;
        if result.render() != golden {
            return Err(format!(
                "sweep diverged after the failed rollout\n  golden: {golden}\n  fleet:  {}",
                result.render()
            ));
        }
        let metrics = client(addr)
            .request("GET", "/v1/metrics", None)
            .map_err(|e| format!("metrics: {e}"))?;
        if !metrics.body.contains("\"fleet.jobs.failed\":0") {
            return Err(format!(
                "jobs were lost during the rollout: {}",
                metrics.body
            ));
        }
        for needle in [
            "\"fleet.config.generation\":",
            "\"fleet.config.rollbacks\":1",
            "\"fleet.shard0.respawn_backoff_ms\":",
        ] {
            if !metrics.body.contains(needle) {
                return Err(format!("metrics missing {needle}: {}", metrics.body));
            }
        }

        // A benign policy must commit cleanly: rolling restart, bumped
        // generation, stamped results, per-shard policy metric.
        let r = client(addr)
            .request(
                "POST",
                "/v1/admin/config/stage",
                Some(r#"{"scrub_interval":100000}"#),
            )
            .map_err(|e| format!("benign stage: {e}"))?;
        if r.status != 200 {
            return Err(format!("benign stage {}: {}", r.status, r.body));
        }
        // While the candidate sits staged, the admin surface must show
        // the per-knob diff an operator would be committing.
        let config = admin_config(addr)?;
        let diff = obj_get(&config, "staged_diff").ok_or("benign stage produced no staged_diff")?;
        if get_u64(diff, "from_generation") != Some(0) || get_u64(diff, "to_generation") != Some(2)
        {
            return Err(format!(
                "staged_diff names the wrong generations: {config:?}"
            ));
        }
        let changes = obj_get(diff, "changes")
            .ok_or("staged_diff has no changes")?
            .render();
        if !changes.contains(r#""scrub_interval":{"from":"default","to":"100000"}"#) {
            return Err(format!("staged_diff missing the scrub knob: {changes}"));
        }
        let r = client(addr)
            .request("POST", "/v1/admin/config/commit", None)
            .map_err(|e| format!("benign commit: {e}"))?;
        if r.status != 200 {
            return Err(format!("benign commit {}: {}", r.status, r.body));
        }
        if active_generation(addr)? != 2 {
            return Err("benign commit should activate generation 2".to_owned());
        }
        println!("benign config committed across the fleet (generation 2)");
        let result = run_single(addr, "post-commit run")?;
        if get_u64(&result, "config_generation") != Some(2) {
            return Err(format!(
                "post-commit result not stamped with generation 2: {}",
                result.render()
            ));
        }
        let metrics = client(addr)
            .request("GET", "/v1/metrics", None)
            .map_err(|e| format!("metrics: {e}"))?;
        for i in 0..SHARDS {
            let needle = format!("\"shard{i}.serve.policy.generation\":2");
            if !metrics.body.contains(&needle) {
                return Err(format!("metrics missing {needle}: {}", metrics.body));
            }
        }

        // Rollback restores the baseline and un-stamps results.
        let r = client(addr)
            .request("POST", "/v1/admin/config/rollback", None)
            .map_err(|e| format!("rollback: {e}"))?;
        if r.status != 200 {
            return Err(format!("rollback {}: {}", r.status, r.body));
        }
        if active_generation(addr)? != 0 {
            return Err("rollback should restore generation 0".to_owned());
        }
        let result = run_single(addr, "post-rollback run")?;
        if obj_get(&result, "config_generation").is_some() {
            return Err(format!(
                "baseline results must not carry a stamp: {}",
                result.render()
            ));
        }

        // Arm a generous job deadline as generation 3. The fleet canary
        // runs in the low seconds on an idle host, so 15 s passes every
        // canary and every run this gate submits — except the deliberately
        // unbounded one below, which is how the next commit is made to
        // fail mid-roll deterministically.
        let r = client(addr)
            .request(
                "POST",
                "/v1/admin/config/stage",
                Some(r#"{"job_deadline_ms":15000}"#),
            )
            .map_err(|e| format!("deadline stage: {e}"))?;
        if r.status != 200 {
            return Err(format!("deadline stage {}: {}", r.status, r.body));
        }
        let r = client(addr)
            .request("POST", "/v1/admin/config/commit", None)
            .map_err(|e| format!("deadline commit: {e}"))?;
        if r.status != 200 {
            return Err(format!("deadline commit {}: {}", r.status, r.body));
        }
        if active_generation(addr)? != 3 {
            return Err("deadline commit should activate generation 3".to_owned());
        }

        // Results that land while a commit is rolling are held back, and a
        // failed commit must quarantine them for re-dispatch rather than
        // release documents produced under a config the fleet rejected.
        // The healthy run below is in flight when the commit starts, so
        // its shard cannot drain before the result lands — staged. The
        // unbounded run trips the active deadline mid-roll, which trips
        // the failure-regression check and rolls the commit back.
        const MID_ROLL: &str = r#"{"workload":"ycsb-a","controller":"baryon","insts":300000,"warmup":20000,"scale":1024,"seed":21}"#;
        const UNBOUNDED: &str = r#"{"workload":"ycsb-a","controller":"baryon","insts":2000000000,"warmup":20000,"scale":1024,"seed":22}"#;
        let quarantined_before = counter(addr, "fleet.config.quarantined_results")?;
        let failed_before = counter(addr, "fleet.jobs.failed")?;
        let mid_roll = submit_single(addr, MID_ROLL, "mid-roll run")?;
        await_status(addr, mid_roll, "mid-roll dispatch", |doc| {
            get_str(doc, "state") == Some("running")
        })?;
        let doomed = submit_single(addr, UNBOUNDED, "unbounded run")?;
        await_status(addr, doomed, "unbounded dispatch", |doc| {
            get_str(doc, "state") == Some("running")
        })?;
        let r = client(addr)
            .request(
                "POST",
                "/v1/admin/config/stage",
                Some(r#"{"job_deadline_ms":15000,"scrub_interval":50000}"#),
            )
            .map_err(|e| format!("mid-roll stage: {e}"))?;
        if r.status != 200 {
            return Err(format!("mid-roll stage {}: {}", r.status, r.body));
        }
        println!("committing with a healthy run and a doomed run in flight");
        let r = client(addr)
            .request("POST", "/v1/admin/config/commit", None)
            .map_err(|e| format!("mid-roll commit: {e}"))?;
        if r.status != 409 || !r.body.contains("rollout_failed") {
            return Err(format!(
                "mid-roll commit should roll back with 409 rollout_failed, got {}: {}",
                r.status, r.body
            ));
        }
        if active_generation(addr)? != 3 {
            return Err("failed mid-roll commit should leave generation 3 active".to_owned());
        }
        let status = await_status(addr, doomed, "deadline kill", |doc| {
            get_str(doc, "state") == Some("failed")
        })?;
        println!("unbounded run killed by the deadline: {}", status.render());
        let failed_after = counter(addr, "fleet.jobs.failed")?;
        if failed_after != failed_before + 1 {
            let mid = client(addr)
                .request("GET", &format!("/v1/jobs/{mid_roll}"), None)
                .map(|r| r.body)
                .unwrap_or_default();
            let metrics = client(addr)
                .request("GET", "/v1/metrics", None)
                .map(|r| r.body)
                .unwrap_or_default();
            return Err(format!(
                "exactly the unbounded run should have failed ({failed_before} -> \
                 {failed_after})\n  mid-roll job: {mid}\n  metrics: {metrics}"
            ));
        }
        let quarantined = counter(addr, "fleet.config.quarantined_results")?;
        if quarantined <= quarantined_before {
            return Err(format!(
                "the mid-roll result was never quarantined ({quarantined_before} -> {quarantined})"
            ));
        }
        // The quarantined cell must be re-dispatched under the restored
        // generation and settle byte-identical to a clean run of the same
        // spec.
        let status = await_status(addr, mid_roll, "requeued completion", |doc| {
            get_str(doc, "state") == Some("done")
        })?;
        let result = obj_get(&status, "result").ok_or("requeued job has no result")?;
        if get_u64(result, "config_generation") != Some(3) {
            return Err(format!(
                "requeued result not stamped with the restored generation: {}",
                result.render()
            ));
        }
        let fresh = submit_single(addr, MID_ROLL, "reference run")?;
        let fresh = await_status(addr, fresh, "reference completion", |doc| {
            get_str(doc, "state") == Some("done")
        })?;
        let fresh = obj_get(&fresh, "result").ok_or("reference job has no result")?;
        if result.render() != fresh.render() {
            return Err(format!(
                "quarantined re-run diverged from a clean run\n  clean: {}\n  requeued: {}",
                fresh.render(),
                result.render()
            ));
        }
        println!(
            "mid-roll result quarantined ({} total), re-dispatched, byte-identical",
            quarantined
        );

        let r = client(addr)
            .request("POST", "/v1/shutdown", None)
            .map_err(|e| format!("shutdown: {e}"))?;
        if r.status != 200 {
            return Err(format!("shutdown {}: {}", r.status, r.body));
        }
        Ok(())
    })();

    // Always bring the fleet down before reporting.
    if outcome.is_err() {
        let _ = client(addr).request("POST", "/v1/shutdown", None);
    }
    serving
        .join()
        .map_err(|_| "serving thread panicked".to_owned())?
        .map_err(|e| format!("fleet run: {e}"))?;
    outcome?;

    std::fs::remove_dir_all(&journal_root)
        .map_err(|e| format!("cleanup {}: {e}", journal_root.display()))?;
    println!(
        "rollout gate OK: bad config auto-rolled back mid-sweep with zero lost jobs and a \
         byte-identical gather; benign config rolled out and back across {SHARDS} shards; \
         mid-roll results quarantined and re-dispatched after a failed commit"
    );
    Ok(())
}

fn main() -> ExitCode {
    if let Some(code) = harness::maybe_run_shard() {
        return code;
    }
    match run_gate() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("rollout gate failed: {e}");
            ExitCode::FAILURE
        }
    }
}

//! The coordinator's job board: fleet-wide job records and their
//! dispatch state.
//!
//! The board is the coordinator's single source of truth. A fleet job is
//! either a **single run** — hash-routed whole onto one shard
//! ([`crate::shard::route`]) — or a **batch** (grid sweep), scattered
//! cell-by-cell across every shard via
//! [`baryon_bench::batch::BatchPlan`] and gathered back into the exact
//! document a single-process execution would have produced. Dispatchers
//! move work from `Pending` to `Dispatched{shard, remote}`; the poller
//! moves it to `Done`/`Failed` as shard-local jobs settle, and a batch
//! settles when its last cell does.

use baryon_bench::batch::BatchPlan;
use baryon_bench::spec::JobSpec;
use baryon_serve::job::JobState;
use baryon_sim::json::Json;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use crate::quota::Class;

/// Where one unit of shard work (a whole single run, or one batch cell)
/// stands.
#[derive(Debug, Clone, PartialEq)]
pub enum CellState {
    /// Waiting for a dispatcher.
    Pending,
    /// Accepted by a shard as shard-local job `remote`.
    Dispatched {
        /// The shard index executing it.
        shard: usize,
        /// The shard-local job ID to poll.
        remote: u64,
    },
    /// Finished on a shard whose config generation is still mid-rollout:
    /// the result is held back (not settled, not gathered) until the roll
    /// commits. [`JobBoard::resolve_staged`] then promotes it to `Done`,
    /// or — if the roll failed and was rolled back — discards it and
    /// returns the cell to `Pending` for re-dispatch under the restored
    /// config.
    Staged(Json),
    /// Settled successfully with its result document.
    Done(Json),
    /// Settled with an error.
    Failed(String),
}

impl CellState {
    /// True once the cell can no longer change.
    pub fn is_settled(&self) -> bool {
        matches!(self, CellState::Done(_) | CellState::Failed(_))
    }
}

/// What kind of fleet job this is and its dispatch bookkeeping.
#[derive(Debug, Clone, PartialEq)]
pub enum FleetJobKind {
    /// One run, routed whole onto `shard`.
    Single {
        /// The shard chosen by [`crate::shard::route`].
        shard: usize,
        /// Its dispatch state.
        cell: CellState,
    },
    /// A grid sweep scattered across the fleet.
    Batch {
        /// The deterministic scatter plan.
        plan: BatchPlan,
        /// Per-cell state, indexed row-major like the plan.
        cells: Vec<CellState>,
    },
}

/// One fleet job.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetJob {
    /// Fleet-wide job ID (independent of any shard-local ID).
    pub id: u64,
    /// The submitted spec, echoed back in status documents.
    pub spec: JobSpec,
    /// The quota identity that submitted it.
    pub client: String,
    /// Its service class.
    pub class: Class,
    /// Lifecycle state, using the serve layer's wire names.
    pub state: JobState,
    /// The result document once `Done`.
    pub result: Option<Json>,
    /// The failure reason once `Failed`.
    pub error: Option<String>,
    /// Dispatch bookkeeping.
    pub kind: FleetJobKind,
}

impl FleetJob {
    /// The status document (`GET /v1/jobs/<id>` at the coordinator).
    /// Mirrors the serve layer's job document, plus fleet-only fields
    /// (`class`, `client`, and batch cell progress).
    pub fn to_json(&self) -> Json {
        let mut pairs = vec![
            ("id".to_owned(), Json::from(self.id)),
            ("state".to_owned(), Json::from(self.state.as_str())),
            ("class".to_owned(), Json::from(self.class.as_str())),
            ("client".to_owned(), Json::from(self.client.as_str())),
            ("spec".to_owned(), self.spec.to_json()),
        ];
        if let FleetJobKind::Batch { cells, .. } = &self.kind {
            let done = cells
                .iter()
                .filter(|c| matches!(c, CellState::Done(_)))
                .count();
            pairs.push(("cells_total".to_owned(), Json::from(cells.len() as u64)));
            pairs.push(("cells_done".to_owned(), Json::from(done as u64)));
        }
        if let Some(result) = &self.result {
            pairs.push(("result".to_owned(), result.clone()));
        }
        if let Some(error) = &self.error {
            pairs.push(("error".to_owned(), Json::from(error.as_str())));
        }
        Json::Obj(pairs)
    }

    /// Whether any cell's result is staged behind an in-flight rollout.
    pub fn has_staged(&self) -> bool {
        match &self.kind {
            FleetJobKind::Single { cell, .. } => matches!(cell, CellState::Staged(_)),
            FleetJobKind::Batch { cells, .. } => {
                cells.iter().any(|c| matches!(c, CellState::Staged(_)))
            }
        }
    }

    /// Count of settled-successful cells (1 for a done single run).
    pub fn cells_done(&self) -> u64 {
        match &self.kind {
            FleetJobKind::Single { cell, .. } => u64::from(matches!(cell, CellState::Done(_))),
            FleetJobKind::Batch { cells, .. } => cells
                .iter()
                .filter(|c| matches!(c, CellState::Done(_)))
                .count() as u64,
        }
    }

    /// Total cells (1 for a single run).
    pub fn cells_total(&self) -> u64 {
        match &self.kind {
            FleetJobKind::Single { .. } => 1,
            FleetJobKind::Batch { cells, .. } => cells.len() as u64,
        }
    }
}

/// What [`JobBoard::resolve_staged`] did, for the caller to act on.
pub struct StagedResolution {
    /// Jobs an accept settled, with the quota slot to release exactly
    /// once per entry.
    pub released: Vec<(u64, String, Class)>,
    /// Cells a reject returned to `Pending`; the caller must requeue each
    /// (`None` cell index means a single run).
    pub requeue: Vec<(u64, Option<usize>)>,
    /// Staged cells resolved either way (the
    /// `fleet.config.quarantined_results` bump on a reject).
    pub count: u64,
}

/// The coordinator's fleet-wide job table.
#[derive(Default)]
pub struct JobBoard {
    next_id: AtomicU64,
    jobs: Mutex<HashMap<u64, FleetJob>>,
}

impl JobBoard {
    /// An empty board; IDs start at 1.
    pub fn new() -> JobBoard {
        JobBoard {
            next_id: AtomicU64::new(1),
            jobs: Mutex::new(HashMap::new()),
        }
    }

    /// Admits a job (already quota-checked) and returns its fleet ID.
    pub fn admit(&self, spec: JobSpec, client: String, class: Class, kind: FleetJobKind) -> u64 {
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        let job = FleetJob {
            id,
            spec,
            client,
            class,
            state: JobState::Queued,
            result: None,
            error: None,
            kind,
        };
        self.jobs
            .lock()
            .expect("job board lock poisoned")
            .insert(id, job);
        id
    }

    /// Removes a job the coordinator decided not to keep (queue overflow
    /// after admit), returning its record.
    pub fn forget(&self, id: u64) -> Option<FleetJob> {
        self.jobs
            .lock()
            .expect("job board lock poisoned")
            .remove(&id)
    }

    /// A clone of the job's record.
    pub fn get(&self, id: u64) -> Option<FleetJob> {
        self.jobs
            .lock()
            .expect("job board lock poisoned")
            .get(&id)
            .cloned()
    }

    /// The job's lifecycle state.
    pub fn state(&self, id: u64) -> Option<JobState> {
        self.jobs
            .lock()
            .expect("job board lock poisoned")
            .get(&id)
            .map(|j| j.state)
    }

    /// Runs `apply` on the job's record under the board lock, then
    /// derives the job-level state from its cells: any failed cell fails
    /// the job (first failure wins), all-done completes it (a batch runs
    /// its gather here), any dispatched cell marks it running. Returns
    /// the `(client, class)` pair when this call settled the job — the
    /// caller must release that quota slot exactly once.
    pub fn update(&self, id: u64, apply: impl FnOnce(&mut FleetJob)) -> Option<(String, Class)> {
        let mut jobs = self.jobs.lock().expect("job board lock poisoned");
        let job = jobs.get_mut(&id)?;
        if job.state.is_settled() {
            return None; // late updates cannot reopen a settled job
        }
        apply(job);
        if job.state.is_settled() {
            // `apply` settled it directly (e.g. cancel).
            return Some((job.client.clone(), job.class));
        }
        let settled = match &job.kind {
            FleetJobKind::Single { cell, .. } => match cell {
                CellState::Pending => None,
                CellState::Dispatched { .. } | CellState::Staged(_) => {
                    job.state = JobState::Running;
                    None
                }
                CellState::Done(doc) => Some((JobState::Done, Some(doc.clone()), None)),
                CellState::Failed(e) => Some((JobState::Failed, None, Some(e.clone()))),
            },
            FleetJobKind::Batch { plan, cells } => {
                if let Some(CellState::Failed(e)) =
                    cells.iter().find(|c| matches!(c, CellState::Failed(_)))
                {
                    Some((JobState::Failed, None, Some(e.clone())))
                } else if cells.iter().all(CellState::is_settled) {
                    let slots = cells
                        .iter()
                        .map(|c| match c {
                            CellState::Done(doc) => Some(doc.clone()),
                            _ => None,
                        })
                        .collect();
                    match plan.gather(slots) {
                        Ok(doc) => Some((JobState::Done, Some(doc), None)),
                        Err(e) => Some((JobState::Failed, None, Some(e))),
                    }
                } else {
                    if cells.iter().any(|c| !matches!(c, CellState::Pending)) {
                        job.state = JobState::Running;
                    }
                    None
                }
            }
        };
        let (state, result, error) = settled?;
        job.state = state;
        job.result = result;
        job.error = error;
        Some((job.client.clone(), job.class))
    }

    /// Cancels a still-queued job (no cell dispatched yet). Mirrors the
    /// serve layer: running or settled jobs answer `TooLate`.
    pub fn cancel(&self, id: u64) -> baryon_serve::job::CancelOutcome {
        use baryon_serve::job::CancelOutcome;
        let mut jobs = self.jobs.lock().expect("job board lock poisoned");
        let Some(job) = jobs.get_mut(&id) else {
            return CancelOutcome::NotFound;
        };
        if job.state != JobState::Queued {
            return CancelOutcome::TooLate(job.state);
        }
        job.state = JobState::Cancelled;
        CancelOutcome::Cancelled
    }

    /// Resolves every staged cell on the board after a rollout settles.
    ///
    /// `accept: true` (the roll committed) promotes staged results to
    /// `Done`, settling jobs whose last cell was waiting on the roll;
    /// `accept: false` (the roll failed and was undone) quarantines the
    /// results — they were computed under a config generation that never
    /// committed — and returns the cells to `Pending` for re-dispatch
    /// under the restored config.
    pub fn resolve_staged(&self, accept: bool) -> StagedResolution {
        let ids: Vec<u64> = {
            let jobs = self.jobs.lock().expect("job board lock poisoned");
            jobs.values()
                .filter(|j| !j.state.is_settled() && j.has_staged())
                .map(|j| j.id)
                .collect()
        };
        let mut out = StagedResolution {
            released: Vec::new(),
            requeue: Vec::new(),
            count: 0,
        };
        for id in ids {
            let mut touched: Vec<Option<usize>> = Vec::new();
            let resolve =
                |cell: &mut CellState, index: Option<usize>, touched: &mut Vec<Option<usize>>| {
                    if let CellState::Staged(doc) = cell {
                        touched.push(index);
                        *cell = if accept {
                            CellState::Done(doc.clone())
                        } else {
                            CellState::Pending
                        };
                    }
                };
            let released = self.update(id, |job| match &mut job.kind {
                FleetJobKind::Single { cell, .. } => resolve(cell, None, &mut touched),
                FleetJobKind::Batch { cells, .. } => {
                    for (i, cell) in cells.iter_mut().enumerate() {
                        resolve(cell, Some(i), &mut touched);
                    }
                }
            });
            out.count += touched.len() as u64;
            if accept {
                out.released
                    .extend(released.map(|(client, class)| (id, client, class)));
            } else {
                out.requeue.extend(touched.into_iter().map(|c| (id, c)));
            }
        }
        out
    }

    /// Snapshot of every unsettled job's ID (the poller's work list).
    pub fn active_ids(&self) -> Vec<u64> {
        self.jobs
            .lock()
            .expect("job board lock poisoned")
            .values()
            .filter(|j| !j.state.is_settled())
            .map(|j| j.id)
            .collect()
    }

    /// Counts of `(total, settled)` jobs on the board.
    pub fn counts(&self) -> (usize, usize) {
        let jobs = self.jobs.lock().expect("job board lock poisoned");
        let settled = jobs.values().filter(|j| j.state.is_settled()).count();
        (jobs.len(), settled)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use baryon_bench::spec::{GridSpec, RunSpec};
    use baryon_serve::job::CancelOutcome;

    fn single_kind() -> FleetJobKind {
        FleetJobKind::Single {
            shard: 0,
            cell: CellState::Pending,
        }
    }

    fn tiny_grid() -> GridSpec {
        GridSpec {
            workloads: vec!["ycsb-a".into(), "pr.twi".into()],
            controllers: vec!["simple".into()],
            base: RunSpec {
                insts: 1_000,
                warmup: 200,
                scale: 2048,
                ..RunSpec::default()
            },
        }
    }

    #[test]
    fn single_job_lifecycle_settles_once() {
        let board = JobBoard::new();
        let id = board.admit(
            JobSpec::Run(RunSpec::default()),
            "alice".into(),
            Class::Interactive,
            single_kind(),
        );
        assert_eq!(board.state(id), Some(JobState::Queued));

        // Dispatch moves it to running, without settling.
        let settled = board.update(id, |j| {
            if let FleetJobKind::Single { cell, .. } = &mut j.kind {
                *cell = CellState::Dispatched {
                    shard: 0,
                    remote: 7,
                };
            }
        });
        assert_eq!(settled, None);
        assert_eq!(board.state(id), Some(JobState::Running));

        // Completion settles it and reports the quota slot to release.
        let settled = board.update(id, |j| {
            if let FleetJobKind::Single { cell, .. } = &mut j.kind {
                *cell = CellState::Done(Json::obj([("ok", Json::Bool(true))]));
            }
        });
        assert_eq!(settled, Some(("alice".into(), Class::Interactive)));
        let job = board.get(id).expect("job");
        assert_eq!(job.state, JobState::Done);
        assert!(job.result.is_some());

        // A late update cannot reopen or re-release.
        let settled = board.update(id, |j| {
            if let FleetJobKind::Single { cell, .. } = &mut j.kind {
                *cell = CellState::Failed("late".into());
            }
        });
        assert_eq!(settled, None);
        assert_eq!(board.state(id), Some(JobState::Done));
    }

    #[test]
    fn batch_gathers_on_last_cell_and_fails_on_first_error() {
        let grid = tiny_grid();
        let plan = BatchPlan::scatter(&grid, 2);
        let n = plan.cells.len();
        let board = JobBoard::new();
        let id = board.admit(
            JobSpec::Grid(grid.clone()),
            "bob".into(),
            Class::Batch,
            FleetJobKind::Batch {
                plan: plan.clone(),
                cells: vec![CellState::Pending; n],
            },
        );

        // Finish all cells but the last; the job stays running.
        for i in 0..n - 1 {
            let settled = board.update(id, |j| {
                if let FleetJobKind::Batch { cells, .. } = &mut j.kind {
                    cells[i] = CellState::Done(Json::from(i as u64));
                }
            });
            assert_eq!(settled, None, "cell {i} must not settle the batch");
        }
        let doc = board.get(id).expect("job").to_json().render();
        assert!(doc.contains("\"cells_total\":2"), "{doc}");
        assert!(doc.contains("\"cells_done\":1"), "{doc}");

        // The last cell settles it; the gather is in row-major order.
        let settled = board.update(id, |j| {
            if let FleetJobKind::Batch { cells, .. } = &mut j.kind {
                cells[n - 1] = CellState::Done(Json::from((n - 1) as u64));
            }
        });
        assert_eq!(settled, Some(("bob".into(), Class::Batch)));
        let job = board.get(id).expect("job");
        assert_eq!(job.state, JobState::Done);
        assert_eq!(job.result.expect("result").render(), r#"{"results":[0,1]}"#);

        // A failing cell fails the whole batch immediately.
        let id2 = board.admit(
            JobSpec::Grid(grid),
            "bob".into(),
            Class::Batch,
            FleetJobKind::Batch {
                plan,
                cells: vec![CellState::Pending; n],
            },
        );
        let settled = board.update(id2, |j| {
            if let FleetJobKind::Batch { cells, .. } = &mut j.kind {
                cells[0] = CellState::Failed("no such workload".into());
            }
        });
        assert_eq!(settled, Some(("bob".into(), Class::Batch)));
        let job = board.get(id2).expect("job");
        assert_eq!(job.state, JobState::Failed);
        assert_eq!(job.error.as_deref(), Some("no such workload"));
    }

    #[test]
    fn staged_cells_hold_the_gather_until_the_roll_commits() {
        let grid = tiny_grid();
        let plan = BatchPlan::scatter(&grid, 2);
        let n = plan.cells.len();
        let board = JobBoard::new();
        let id = board.admit(
            JobSpec::Grid(grid),
            "dana".into(),
            Class::Batch,
            FleetJobKind::Batch {
                plan,
                cells: vec![CellState::Pending; n],
            },
        );

        // One cell settles normally; the other finished on a mid-rollout
        // shard, so its result is staged. The batch must NOT gather yet.
        let settled = board.update(id, |j| {
            if let FleetJobKind::Batch { cells, .. } = &mut j.kind {
                cells[0] = CellState::Done(Json::from(0u64));
                cells[1] = CellState::Staged(Json::from(1u64));
            }
        });
        assert_eq!(settled, None, "a staged cell must not settle the batch");
        assert_eq!(board.state(id), Some(JobState::Running));

        // The roll commits: the staged result is promoted and the batch
        // gathers exactly as if the cell had settled directly.
        let resolution = board.resolve_staged(true);
        assert_eq!(resolution.count, 1);
        assert_eq!(resolution.released, vec![(id, "dana".into(), Class::Batch)]);
        assert!(resolution.requeue.is_empty());
        let job = board.get(id).expect("job");
        assert_eq!(job.state, JobState::Done);
        assert_eq!(job.result.expect("result").render(), r#"{"results":[0,1]}"#);
    }

    #[test]
    fn rejected_staged_cells_go_back_to_pending_for_redispatch() {
        let board = JobBoard::new();
        let id = board.admit(
            JobSpec::Run(RunSpec::default()),
            "erin".into(),
            Class::Interactive,
            single_kind(),
        );
        board.update(id, |j| {
            if let FleetJobKind::Single { cell, .. } = &mut j.kind {
                *cell = CellState::Staged(Json::from(42u64));
            }
        });

        // The roll failed: the staged result is quarantined and the cell
        // returns to Pending — no quota released, job still open.
        let resolution = board.resolve_staged(false);
        assert_eq!(resolution.count, 1);
        assert!(resolution.released.is_empty());
        assert_eq!(resolution.requeue, vec![(id, None)]);
        let job = board.get(id).expect("job");
        assert!(!job.state.is_settled(), "{:?}", job.state);
        assert!(
            matches!(
                job.kind,
                FleetJobKind::Single {
                    cell: CellState::Pending,
                    ..
                }
            ),
            "cell must be re-dispatchable"
        );

        // Nothing staged left: resolving again is a no-op.
        assert_eq!(board.resolve_staged(false).count, 0);
    }

    #[test]
    fn cancel_only_reaches_queued_jobs() {
        let board = JobBoard::new();
        assert_eq!(board.cancel(99), CancelOutcome::NotFound);
        let id = board.admit(
            JobSpec::Run(RunSpec::default()),
            "c".into(),
            Class::Interactive,
            single_kind(),
        );
        assert_eq!(board.cancel(id), CancelOutcome::Cancelled);
        assert_eq!(board.state(id), Some(JobState::Cancelled));
        // Dispatchers skip cancelled jobs; a second cancel is too late.
        assert_eq!(
            board.cancel(id),
            CancelOutcome::TooLate(JobState::Cancelled)
        );

        let running = board.admit(
            JobSpec::Run(RunSpec::default()),
            "c".into(),
            Class::Interactive,
            single_kind(),
        );
        board.update(running, |j| {
            if let FleetJobKind::Single { cell, .. } = &mut j.kind {
                *cell = CellState::Dispatched {
                    shard: 0,
                    remote: 1,
                };
            }
        });
        assert_eq!(
            board.cancel(running),
            CancelOutcome::TooLate(JobState::Running)
        );
    }

    #[test]
    fn active_ids_lists_only_unsettled_jobs() {
        let board = JobBoard::new();
        let a = board.admit(
            JobSpec::Run(RunSpec::default()),
            "x".into(),
            Class::Interactive,
            single_kind(),
        );
        let b = board.admit(
            JobSpec::Run(RunSpec::default()),
            "x".into(),
            Class::Interactive,
            single_kind(),
        );
        board.update(a, |j| {
            if let FleetJobKind::Single { cell, .. } = &mut j.kind {
                *cell = CellState::Done(Json::Null);
            }
        });
        assert_eq!(board.active_ids(), vec![b]);
        assert_eq!(board.counts(), (2, 1));
        board.forget(b);
        assert!(board.active_ids().is_empty());
    }
}
